/** Tests for the mps/util observability subsystem (metrics + trace). */
#include <atomic>
#include <cctype>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mps/util/json.h"
#include "mps/util/metrics.h"
#include "mps/util/trace.h"

namespace mps {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator. Checks well-formedness only;
// enough to assert our exporters emit documents a real parser would load.

class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : text_(text) {}

    bool valid()
    {
        skip_ws();
        if (!value())
            return false;
        skip_ws();
        return pos_ == text_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            if (!string())
                return false;
            skip_ws();
            if (peek() != ':')
                return false;
            ++pos_;
            skip_ws();
            if (!value())
                return false;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            if (!value())
                return false;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                char esc = text_[pos_];
                if (esc == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(esc) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriter, EscapesAndNesting)
{
    JsonWriter w;
    w.begin_object();
    w.key("plain").value("hello");
    w.key("quote\"back\\slash").value(std::string("tab\there\n"));
    w.key("nums").begin_array();
    w.value(int64_t{-3}).value(2.5).value(true).null();
    w.end_array();
    w.end_object();
    std::string text = w.str();
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    EXPECT_NE(text.find("\\\"back\\\\slash"), std::string::npos);
    EXPECT_NE(text.find("\\t"), std::string::npos);
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    JsonWriter w;
    w.begin_array().value(1.0 / 0.0).end_array();
    EXPECT_EQ(w.str(), "[null]");
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, CountersGaugesTimers)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    reg.counter_add("events", 3);
    reg.counter_add("events");
    reg.gauge_set("ratio", 0.25);
    reg.gauge_set("ratio", 0.5); // last write wins
    reg.timer_record_ms("lap", 2.0);
    reg.timer_record_ms("lap", 4.0);

    EXPECT_EQ(reg.counter_value("events"), 4);
    EXPECT_DOUBLE_EQ(reg.gauge_value("ratio"), 0.5);
    MetricSnapshot lap = reg.timer_value("lap");
    EXPECT_EQ(lap.count, 2);
    EXPECT_DOUBLE_EQ(lap.sum, 6.0);
    EXPECT_DOUBLE_EQ(lap.min, 2.0);
    EXPECT_DOUBLE_EQ(lap.max, 4.0);
    EXPECT_DOUBLE_EQ(lap.mean(), 3.0);
}

TEST(Metrics, DisabledMutatorsAreNoOps)
{
    MetricsRegistry reg;
    ASSERT_FALSE(reg.enabled());
    reg.counter_add("events", 7);
    reg.gauge_set("ratio", 1.0);
    reg.timer_record_ms("lap", 1.0);
    EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Metrics, ConcurrentCountersMergeExactly)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    constexpr int kThreads = 8;
    constexpr int kIncrements = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < kIncrements; ++i) {
                reg.counter_add("shared");
                reg.timer_record_ms("work", 0.5);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(reg.counter_value("shared"),
              int64_t{kThreads} * kIncrements);
    MetricSnapshot work = reg.timer_value("work");
    EXPECT_EQ(work.count, int64_t{kThreads} * kIncrements);
    EXPECT_DOUBLE_EQ(work.min, 0.5);
    EXPECT_DOUBLE_EQ(work.max, 0.5);
}

TEST(Metrics, ResetZeroesButKeepsCells)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    reg.counter_add("events", 5);
    reg.gauge_set("ratio", 0.9);
    reg.timer_record_ms("lap", 3.0);
    reg.reset();
    EXPECT_EQ(reg.counter_value("events"), 0);
    EXPECT_DOUBLE_EQ(reg.gauge_value("ratio"), 0.0);
    EXPECT_EQ(reg.timer_value("lap").count, 0);
    // Cells survive a reset: writes after it still land.
    reg.counter_add("events", 2);
    EXPECT_EQ(reg.counter_value("events"), 2);
}

TEST(Metrics, KindsAreSortedAndExportersWellFormed)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    reg.counter_add("z.counter", 1);
    reg.gauge_set("a.gauge", 2.0);
    reg.timer_record_ms("m.timer", 1.5);

    std::vector<MetricSnapshot> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a.gauge");
    EXPECT_EQ(snap[1].name, "m.timer");
    EXPECT_EQ(snap[2].name, "z.counter");

    std::string json = reg.to_json();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);

    std::string csv = reg.to_csv();
    EXPECT_NE(csv.find("name,kind,count,sum,min,max,mean"),
              std::string::npos);
    EXPECT_NE(csv.find("z.counter,counter,1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceSession / ScopedSpan

TEST(Trace, SpanNestingAndOrdering)
{
    TraceSession &session = TraceSession::global();
    session.start();
    {
        ScopedSpan outer("outer", "test");
        {
            ScopedSpan inner("inner", "test");
        }
    }
    session.stop();

    std::vector<TraceEvent> events = session.events();
    ASSERT_EQ(events.size(), 2u);
    // Sorted by start time: outer opens first...
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[1].name, "inner");
    // ...and fully contains inner.
    EXPECT_LE(events[0].ts_us, events[1].ts_us);
    EXPECT_GE(events[0].ts_us + events[0].dur_us,
              events[1].ts_us + events[1].dur_us);
    session.clear();
}

TEST(Trace, InactiveSessionRecordsNothing)
{
    TraceSession &session = TraceSession::global();
    session.clear();
    ASSERT_FALSE(session.active());
    {
        ScopedSpan span("ignored", "test");
    }
    EXPECT_EQ(session.event_count(), 0u);
}

TEST(Trace, ChromeJsonIsWellFormed)
{
    TraceSession &session = TraceSession::global();
    session.start();
    {
        ScopedSpan span("weird \"name\"\n", "cat");
    }
    std::thread worker([] { ScopedSpan span("worker-side", "cat"); });
    worker.join();
    session.stop();

    std::string json = session.to_chrome_json();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("worker-side"), std::string::npos);
    session.clear();
}

TEST(Trace, ClearDropsEvents)
{
    TraceSession &session = TraceSession::global();
    session.start();
    {
        ScopedSpan span("ephemeral", "test");
    }
    session.stop();
    ASSERT_GT(session.event_count(), 0u);
    session.clear();
    EXPECT_EQ(session.event_count(), 0u);
}

// ---------------------------------------------------------------------------
// MetricTimer

TEST(Metrics, MetricTimerRecordsScope)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    {
        MetricTimer t("scope_ms", reg);
    }
    EXPECT_EQ(reg.timer_value("scope_ms").count, 1);
}

// ---------------------------------------------------------------------------
// HistogramLayout / LogHistogram

TEST(Histogram, LayoutIndexIsMonotoneAndSelfConsistent)
{
    // Zero and negatives land in the dedicated bucket 0.
    EXPECT_EQ(HistogramLayout::bucket_index(0.0), 0);
    EXPECT_EQ(HistogramLayout::bucket_index(-3.5), 0);

    int prev = 0;
    for (double v = 1e-7; v < 1e7; v *= 1.03) {
        const int idx = HistogramLayout::bucket_index(v);
        EXPECT_GE(idx, prev) << "index not monotone at " << v;
        EXPECT_LT(idx, HistogramLayout::kNumBuckets);
        prev = idx;
        // The value must fall inside its bucket's bounds.
        EXPECT_LE(v, HistogramLayout::bucket_upper(idx));
        if (idx > 1) {
            EXPECT_GT(v, HistogramLayout::bucket_upper(idx - 1));
        }
    }

    // Extremes clamp into the edge buckets instead of overflowing.
    EXPECT_EQ(HistogramLayout::bucket_index(1e300),
              HistogramLayout::kNumBuckets - 1);
    EXPECT_EQ(HistogramLayout::bucket_index(1e-300), 1);
}

TEST(Histogram, BucketValueBoundsRelativeError)
{
    // The midpoint representative is within 1/64 of any sample in the
    // bucket — the documented ~2% bound (skip the clamped edges).
    for (double v = 1e-5; v < 1e5; v *= 1.017) {
        const int idx = HistogramLayout::bucket_index(v);
        if (idx <= 1 || idx >= HistogramLayout::kNumBuckets - 1)
            continue;
        const double rep = HistogramLayout::bucket_value(idx);
        EXPECT_NEAR(rep, v, v / 32.0)
            << "representative too far from " << v;
    }
}

TEST(Histogram, MomentsAndSingleSampleQuantiles)
{
    LogHistogram h;
    h.record(7.25);
    HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 1);
    EXPECT_DOUBLE_EQ(s.sum, 7.25);
    EXPECT_DOUBLE_EQ(s.min, 7.25);
    EXPECT_DOUBLE_EQ(s.max, 7.25);
    // Quantiles clamp into [min, max]: one sample reports exactly.
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.25);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.25);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.25);
}

TEST(Histogram, QuantilesWithinBucketError)
{
    LogHistogram h;
    // Uniform 1..1000: true quantile q is ~ 1000q.
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    HistogramSnapshot s = h.snapshot();
    ASSERT_EQ(s.count, 1000);
    for (double q : {0.10, 0.50, 0.90, 0.99}) {
        const double expect = 1000.0 * q;
        EXPECT_NEAR(s.quantile(q), expect, expect * 0.04 + 1.0)
            << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);
}

TEST(Histogram, SnapshotMergeMatchesCombinedRecording)
{
    LogHistogram a, b, combined;
    for (int i = 1; i <= 100; ++i) {
        a.record(i);
        combined.record(i);
    }
    for (int i = 500; i <= 600; ++i) {
        b.record(i);
        combined.record(i);
    }
    HistogramSnapshot merged = a.snapshot();
    b.merge_into(merged);
    HistogramSnapshot direct = combined.snapshot();
    EXPECT_EQ(merged.count, direct.count);
    EXPECT_DOUBLE_EQ(merged.sum, direct.sum);
    EXPECT_DOUBLE_EQ(merged.min, direct.min);
    EXPECT_DOUBLE_EQ(merged.max, direct.max);
    EXPECT_DOUBLE_EQ(merged.quantile(0.5), direct.quantile(0.5));
}

// ---------------------------------------------------------------------------
// kHistogram in the registry

TEST(Metrics, HistogramKindRecordsAndExports)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    for (int i = 1; i <= 100; ++i)
        reg.histogram_record("lat_ms", static_cast<double>(i));

    MetricSnapshot snap = reg.histogram_value("lat_ms");
    EXPECT_EQ(snap.kind, MetricKind::kHistogram);
    EXPECT_EQ(snap.count, 100);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 100.0);
    EXPECT_NEAR(snap.p50, 50.0, 3.0);
    EXPECT_NEAR(snap.p99, 99.0, 4.0);
    EXPECT_GE(snap.p999, snap.p99);
    EXPECT_FALSE(snap.buckets.empty());

    std::string json = reg.to_json();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"p999\""), std::string::npos);

    std::string csv = reg.to_csv();
    EXPECT_NE(csv.find("name,kind,count,sum,min,max,mean,p50,p90,p99"),
              std::string::npos);
    EXPECT_NE(csv.find("lat_ms,histogram,100"), std::string::npos);
}

TEST(Metrics, HistogramResetZeroes)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    reg.histogram_record("lat_ms", 5.0);
    reg.reset();
    EXPECT_EQ(reg.histogram_value("lat_ms").count, 0);
    reg.histogram_record("lat_ms", 2.0);
    EXPECT_EQ(reg.histogram_value("lat_ms").count, 1);
}

TEST(Metrics, ConcurrentHistogramsMergeExactly)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    constexpr int kThreads = 8;
    constexpr int kSamples = 5000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            // Distinct per-thread ranges so min/max are known.
            for (int i = 0; i < kSamples; ++i)
                reg.histogram_record(
                    "shared_hist",
                    1.0 + t * 100.0 + (i % 100));
        });
    }
    for (auto &th : threads)
        th.join();

    HistogramSnapshot s = reg.histogram_snapshot("shared_hist");
    EXPECT_EQ(s.count, int64_t{kThreads} * kSamples);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 1.0 + (kThreads - 1) * 100.0 + 99.0);
    // Merged quantiles stay within the documented bucket error: the
    // true median of the union is ~ kThreads*100/2.
    const double p50 = s.quantile(0.5);
    EXPECT_NEAR(p50, kThreads * 100.0 / 2.0, kThreads * 100.0 * 0.05);
}

// ---------------------------------------------------------------------------
// Flow events

TEST(Trace, FlowEventsExportConnectedArrows)
{
    TraceSession &session = TraceSession::global();
    session.start();
    {
        ScopedSpan producer("producer", "flowtest");
        session.record_flow("req", "flowtest", 's', 42);
    }
    std::thread consumer([&session] {
        ScopedSpan span("consumer", "flowtest");
        session.record_flow("req", "flowtest", 't', 42);
        session.record_flow("req", "flowtest", 'f', 42);
    });
    consumer.join();
    session.stop();

    int starts = 0, steps = 0, finishes = 0;
    for (const TraceEvent &ev : session.events()) {
        if (ev.name != "req")
            continue;
        EXPECT_EQ(ev.flow_id, 42u);
        if (ev.phase == 's')
            ++starts;
        else if (ev.phase == 't')
            ++steps;
        else if (ev.phase == 'f')
            ++finishes;
    }
    EXPECT_EQ(starts, 1);
    EXPECT_EQ(steps, 1);
    EXPECT_EQ(finishes, 1);

    std::string json = session.to_chrome_json();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":42"), std::string::npos);
    session.clear();
}

TEST(Trace, FlowRecordingIsInactiveNoOp)
{
    TraceSession &session = TraceSession::global();
    session.clear();
    ASSERT_FALSE(session.active());
    session.record_flow("req", "flowtest", 's', 7);
    EXPECT_EQ(session.event_count(), 0u);
}

} // namespace
} // namespace mps
