/** Deeper coherence-protocol behaviour tests for the multicore model. */
#include <gtest/gtest.h>

#include <memory>

#include "mps/multicore/system.h"

namespace mps {
namespace {

class VectorTraceSource final : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceOp> ops)
        : ops_(std::move(ops))
    {
    }

    bool
    next(TraceOp &op) override
    {
        if (pos_ >= ops_.size())
            return false;
        op = ops_[pos_++];
        return true;
    }

  private:
    std::vector<TraceOp> ops_;
    size_t pos_ = 0;
};

std::vector<std::unique_ptr<TraceSource>>
idle_sources(int cores)
{
    std::vector<std::unique_ptr<TraceSource>> s;
    for (int i = 0; i < cores; ++i)
        s.push_back(std::make_unique<VectorTraceSource>(
            std::vector<TraceOp>{}));
    return s;
}

TEST(MulticoreProtocol, WritebackServesLaterReadersFromL2)
{
    // Core 0 dirties a line and then evicts it by filling its (tiny)
    // L1 set with conflicting lines; a later reader must be served by
    // the home L2 slice, not DRAM.
    MulticoreConfig cfg = MulticoreConfig::table1(); // 4 KB L1
    cfg = cfg.scaled_to(64);
    // Shrink L1 back to 4 KB so eviction is easy to force.
    cfg.l1_bytes = 4 * 1024;

    const uint64_t target = 0x1000000; // some line
    std::vector<TraceOp> writer{{TraceOpKind::kStore, 0, target}};
    // L1: 4KB/64B = 64 lines, 4-way, 16 sets. Lines that collide with
    // `target` are target + k * (16 * 64).
    for (int k = 1; k <= 8; ++k) {
        writer.push_back({TraceOpKind::kLoad, 0,
                          target + static_cast<uint64_t>(k) * 16 * 64});
    }
    std::vector<TraceOp> reader{{TraceOpKind::kCompute, 50000, 0},
                                {TraceOpKind::kLoad, 0, target}};

    auto sources = idle_sources(64);
    sources[0] = std::make_unique<VectorTraceSource>(writer);
    sources[1] = std::make_unique<VectorTraceSource>(reader);
    MulticoreSystem sys(cfg);
    MulticoreResult r = sys.run(std::move(sources));

    // DRAM was touched only by the cold misses (9 distinct lines from
    // the writer, none from the reader: its load hits the L2 copy left
    // by the writeback).
    EXPECT_EQ(r.total_dram_lines, 9);
    EXPECT_EQ(r.total_forwards, 0); // no dirty-forward: line was clean
    // Reader's single load is far cheaper than a DRAM round trip.
    EXPECT_LT(r.cores[1].memory_cycles,
              cfg.dram_latency_cycles());
}

TEST(MulticoreProtocol, ReadSharedLineCachedEverywhereAfterBroadcastMode)
{
    // 10 cores read one line twice (with compute in between); every
    // second read must be an L1 hit even after the directory's pointer
    // set overflowed into broadcast mode.
    MulticoreConfig cfg = MulticoreConfig::table1().scaled_to(64);
    auto sources = idle_sources(64);
    for (int c = 0; c < 10; ++c) {
        sources[static_cast<size_t>(c)] =
            std::make_unique<VectorTraceSource>(std::vector<TraceOp>{
                {TraceOpKind::kCompute,
                 static_cast<uint32_t>(100 * (c + 1)), 0},
                {TraceOpKind::kLoad, 0, 0x2000000},
                {TraceOpKind::kCompute, 100000, 0},
                {TraceOpKind::kLoad, 0, 0x2000000}});
    }
    MulticoreSystem sys(cfg);
    MulticoreResult r = sys.run(std::move(sources));
    int64_t hits = 0, misses = 0;
    for (const auto &c : r.cores) {
        hits += c.l1_hits;
        misses += c.l1_misses;
    }
    EXPECT_EQ(misses, 10); // only the first read per core misses
    EXPECT_EQ(hits, 10);
    EXPECT_EQ(r.total_invalidations, 0);
    EXPECT_EQ(r.total_dram_lines, 1); // one fill serves everyone via L2
}

TEST(MulticoreProtocol, WriteAfterReadUpgradesWithoutDataFetch)
{
    // A core holding a Shared copy that writes it should pay an
    // upgrade (no DRAM, no data transfer), not a full miss.
    MulticoreConfig cfg = MulticoreConfig::table1().scaled_to(64);
    auto sources = idle_sources(64);
    sources[0] = std::make_unique<VectorTraceSource>(std::vector<TraceOp>{
        {TraceOpKind::kLoad, 0, 0x3000000},
        {TraceOpKind::kCompute, 10, 0},
        {TraceOpKind::kStore, 0, 0x3000000},
        {TraceOpKind::kStore, 0, 0x3000008}, // same line: L1 hit in M
    });
    MulticoreSystem sys(cfg);
    MulticoreResult r = sys.run(std::move(sources));
    EXPECT_EQ(r.total_dram_lines, 1); // only the initial read
    EXPECT_EQ(r.cores[0].l1_hits, 1); // the second store
    EXPECT_EQ(r.cores[0].l1_misses, 2); // cold read + upgrade
}

TEST(MulticoreProtocol, DirectoryOccupancySerializesSameHomeBursts)
{
    // Many cores missing on lines with the same home slice at the same
    // instant queue on the directory's occupancy.
    MulticoreConfig cfg = MulticoreConfig::table1().scaled_to(64);
    auto burst = idle_sources(64);
    // All lines with (line % 64 == 0) are homed at core 0.
    for (int c = 1; c <= 32; ++c) {
        burst[static_cast<size_t>(c)] =
            std::make_unique<VectorTraceSource>(std::vector<TraceOp>{
                {TraceOpKind::kLoad, 0,
                 0x4000000 + static_cast<uint64_t>(c) * 64 * 64}});
    }
    MulticoreSystem sys(cfg);
    MulticoreResult r = sys.run(std::move(burst));
    // The last-served request waits at least 32 occupancy slots.
    double slowest = 0.0;
    for (const auto &c : r.cores)
        slowest = std::max(slowest, c.memory_cycles);
    EXPECT_GT(slowest, 32 * cfg.directory_occupancy);
}

} // namespace
} // namespace mps
