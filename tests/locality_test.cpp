/**
 * Tests for the cache-locality layer: column-tiled merge-path
 * traversal, software prefetch on the gather path, and reorder-aware
 * (row-permuted) execution with commit-time scatter.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mps/core/locality.h"
#include "mps/core/schedule_cache.h"
#include "mps/core/spmm.h"
#include "mps/kernels/adaptive.h"
#include "mps/kernels/mergepath_kernel.h"
#include "mps/sparse/generate.h"
#include "mps/sparse/reorder.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

DenseMatrix
random_dense(index_t rows, index_t cols, uint64_t seed)
{
    DenseMatrix m(rows, cols);
    Pcg32 rng(seed);
    m.fill_random(rng);
    return m;
}

CsrMatrix
evil_graph(index_t nodes, index_t nnz, index_t max_degree, uint64_t seed)
{
    PowerLawParams p;
    p.nodes = nodes;
    p.target_nnz = nnz;
    p.max_degree = max_degree;
    p.seed = seed;
    return power_law_graph(p);
}

testing::AssertionResult
bit_identical(const DenseMatrix &got, const DenseMatrix &expect)
{
    if (got.rows() != expect.rows() || got.cols() != expect.cols())
        return testing::AssertionFailure() << "shape mismatch";
    for (index_t r = 0; r < got.rows(); ++r) {
        for (index_t d = 0; d < got.cols(); ++d) {
            if (got(r, d) != expect(r, d)) {
                return testing::AssertionFailure()
                       << "(" << r << ", " << d << "): got " << got(r, d)
                       << " expect " << expect(r, d);
            }
        }
    }
    return testing::AssertionSuccess();
}

// ---------------------------------------------------------------------
// Auto-tuning math.
// ---------------------------------------------------------------------

TEST(LocalityConfig, L2DetectionYieldsPlausibleSize)
{
    int64_t l2 = detected_l2_bytes();
    EXPECT_GE(l2, 64 << 10);  // nothing ships less than 64 KiB
    EXPECT_LE(l2, 512 << 20); // or more than half a GiB per core
    EXPECT_EQ(l2, detected_l2_bytes()); // cached, stable
    EXPECT_GE(detected_llc_bytes(), l2); // outermost level dominates
}

TEST(LocalityConfig, SmallOperandIsNeverTiled)
{
    // 64 rows x 32 cols x 4 B = 8 KiB: fits any L2, so auto tiling
    // must degenerate to one full-width sweep.
    EXPECT_EQ(auto_tile_d(64, 32), 32);
    SpmmLocality loc;
    loc.tile_d = auto_tile_d(64, 32);
    EXPECT_FALSE(loc.tiled(32));
}

TEST(LocalityConfig, AutoWidthIsFullWidthOrSimdAlignedPanel)
{
    // Whatever regime each shape lands in on this host, the result is
    // either "don't tile" (== dim) or a SIMD-aligned width in
    // [32, 256].
    for (index_t n_cols : {1 << 10, 1 << 14, 1 << 17, 1 << 20}) {
        for (index_t dim : {64, 256, 1024}) {
            index_t w = auto_tile_d(n_cols, dim);
            if (w != dim) {
                EXPECT_GE(w, 32) << n_cols << "x" << dim;
                EXPECT_LE(w, 256) << n_cols << "x" << dim;
                EXPECT_EQ(w % 16, 0)
                    << "panel width must stay SIMD-block aligned";
                EXPECT_LT(w, dim);
            }
        }
    }
}

TEST(LocalityConfig, FullResidencyRegimeTilesStreamingDoesNot)
{
    const int64_t budget =
        std::min<int64_t>(detected_llc_bytes(), 64 << 20) / 2;
    // 128k rows: a 64-element panel costs 32 MB — resident on hosts
    // with a big LLC, streaming on small ones. The policy must tile
    // exactly when residency is affordable and the operand overflows
    // the LLC.
    const index_t n_cols = 1 << 17, dim = 1024;
    const int64_t operand = static_cast<int64_t>(n_cols) * dim * 4;
    index_t w = auto_tile_d(n_cols, dim);
    int64_t afford = budget / (static_cast<int64_t>(n_cols) * 4) / 16 * 16;
    if (operand > detected_llc_bytes() && afford >= 32) {
        EXPECT_EQ(w, std::min<int64_t>(afford, 256));
    } else {
        EXPECT_EQ(w, dim) << "outside full residency: never tile";
    }
    // 16M rows can never be panel-resident: streaming regime, no tile.
    EXPECT_EQ(auto_tile_d(1 << 24, 1024), 1024);
}

TEST(LocalityConfig, TileNeverExceedsDimension)
{
    // Operand too big for L2 but a narrow dimension: no tiling.
    index_t w = auto_tile_d(1 << 20, 16);
    EXPECT_EQ(w, 16);
    SpmmLocality loc;
    loc.tile_d = w;
    EXPECT_FALSE(loc.tiled(16));
}

TEST(LocalityConfig, PrefetchDistanceClampsToSaneWindow)
{
    EXPECT_EQ(auto_prefetch_distance(0), 0);
    EXPECT_EQ(auto_prefetch_distance(1), 8); // 1024/1 clamped down
    EXPECT_EQ(auto_prefetch_distance(128), 8);
    EXPECT_EQ(auto_prefetch_distance(256), 4);
    EXPECT_EQ(auto_prefetch_distance(4096), 2); // never below 2
}

TEST(LocalityConfig, TiledPredicate)
{
    SpmmLocality loc;
    EXPECT_FALSE(loc.tiled(128)); // default = pre-locality behavior
    loc.tile_d = 64;
    EXPECT_TRUE(loc.tiled(128));
    EXPECT_FALSE(loc.tiled(64)); // tile >= dim is one sweep
    EXPECT_FALSE(loc.tiled(32));
}

// ---------------------------------------------------------------------
// Column tiling: bit-identity and correctness.
// ---------------------------------------------------------------------

TEST(TiledSpmm, SequentialBitIdenticalToUntiledAcrossOddDims)
{
    CsrMatrix a = evil_graph(300, 2500, 250, 7);
    for (index_t dim : {17, 33, 100}) {
        DenseMatrix b = random_dense(a.cols(), dim, 11);
        MergePathSchedule s = MergePathSchedule::build(a, 64);

        DenseMatrix untiled(a.rows(), dim);
        mergepath_spmm_sequential(a, b, untiled, s);

        // SIMD-block-aligned widths must reproduce the untiled result
        // bit for bit: the panel loop partitions columns, never the
        // non-zero stream.
        for (index_t tile : {16, 32, 48}) {
            SpmmLocality loc;
            loc.tile_d = tile;
            DenseMatrix tiled(a.rows(), dim);
            mergepath_spmm_sequential(a, b, tiled, s, loc);
            EXPECT_TRUE(bit_identical(tiled, untiled))
                << "dim=" << dim << " tile=" << tile;
        }
    }
}

TEST(TiledSpmm, UnalignedTileWidthStaysNumericallyExact)
{
    // A width that cuts SIMD blocks (7) exercises the scalar tails on
    // every panel; correctness must hold even though FMA-vs-mul/add
    // rounding may differ from the untiled run by ulps.
    CsrMatrix a = evil_graph(200, 1500, 150, 9);
    DenseMatrix b = random_dense(a.cols(), 33, 13);
    DenseMatrix expect(a.rows(), 33), got(a.rows(), 33);
    reference_spmm(a, b, expect);
    MergePathSchedule s = MergePathSchedule::build(a, 37);
    SpmmLocality loc;
    loc.tile_d = 7;
    mergepath_spmm_sequential(a, b, got, s, loc);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4))
        << "diff=" << got.max_abs_diff(expect);
}

TEST(TiledSpmm, PrefetchNeverChangesBits)
{
    CsrMatrix a = evil_graph(300, 2500, 250, 7);
    DenseMatrix b = random_dense(a.cols(), 100, 17);
    MergePathSchedule s = MergePathSchedule::build(a, 64);

    DenseMatrix plain(a.rows(), 100);
    mergepath_spmm_sequential(a, b, plain, s);

    SpmmLocality loc;
    loc.tile_d = 32;
    loc.prefetch = 8; // reads ahead of the cursor, ASan-checked
    DenseMatrix prefetched(a.rows(), 100);
    mergepath_spmm_sequential(a, b, prefetched, s, loc);
    EXPECT_TRUE(bit_identical(prefetched, plain));
}

TEST(TiledSpmm, ParallelTiledMatchesReference)
{
    CsrMatrix a = evil_graph(500, 6000, 400, 21);
    WorkStealPool pool(4);
    for (index_t dim : {17, 33, 100}) {
        DenseMatrix b = random_dense(a.cols(), dim, 23);
        DenseMatrix expect(a.rows(), dim), got(a.rows(), dim);
        reference_spmm(a, b, expect);
        MergePathSchedule s = MergePathSchedule::build(a, 256);
        SpmmLocality loc;
        loc.tile_d = 16;
        loc.prefetch = 4;
        mergepath_spmm_parallel(a, b, got, s, pool, loc);
        EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4))
            << "dim=" << dim << " diff=" << got.max_abs_diff(expect);
    }
}

TEST(TiledSpmm, DefaultEntryPointsStillMatchReference)
{
    // The legacy signatures now resolve MPS_TILE_D / MPS_PREFETCH
    // internally; whatever they resolve to must stay correct.
    CsrMatrix a = evil_graph(400, 4000, 300, 31);
    DenseMatrix b = random_dense(a.cols(), 64, 37);
    DenseMatrix expect(a.rows(), 64), got(a.rows(), 64);
    reference_spmm(a, b, expect);
    WorkStealPool pool(4);
    mergepath_spmm(a, b, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4));
}

// ---------------------------------------------------------------------
// Reorder-aware execution: scatter at commit time.
// ---------------------------------------------------------------------

TEST(ReorderedSpmm, PermutedBitIdenticalToIdentityOnOneThread)
{
    // On a 1-thread schedule every row is owned by its thread (plain
    // stores, no atomics), so the permuted traversal + inverse scatter
    // must reproduce the identity-order run bit for bit: each output
    // row sees the same non-zeros in the same order.
    CsrMatrix a = evil_graph(250, 2000, 200, 41);
    DenseMatrix b = random_dense(a.cols(), 33, 43);

    DenseMatrix identity(a.rows(), 33);
    MergePathSchedule s1 = MergePathSchedule::build(a, 1);
    mergepath_spmm_sequential(a, b, identity, s1);

    for (ReorderKind kind :
         {ReorderKind::kDegree, ReorderKind::kBfs, ReorderKind::kRcm}) {
        ReorderPlan plan = build_reorder_plan(a, kind);
        MergePathSchedule sp = MergePathSchedule::build(plan.matrix, 1);
        SpmmLocality loc;
        loc.row_scatter = plan.inverse.data();
        DenseMatrix scattered(a.rows(), 33);
        mergepath_spmm_sequential(plan.matrix, b, scattered, sp, loc);
        EXPECT_TRUE(bit_identical(scattered, identity))
            << "kind=" << reorder_kind_name(kind);
    }
}

TEST(ReorderedSpmm, TiledPermutedParallelMatchesReference)
{
    CsrMatrix a = evil_graph(500, 5000, 400, 47);
    DenseMatrix b = random_dense(a.cols(), 64, 53);
    DenseMatrix expect(a.rows(), 64), got(a.rows(), 64);
    reference_spmm(a, b, expect);

    ReorderPlan plan = build_reorder_plan(a, ReorderKind::kBfs);
    MergePathSchedule s = MergePathSchedule::build(plan.matrix, 128);
    SpmmLocality loc;
    loc.tile_d = 16;
    loc.prefetch = 4;
    loc.row_scatter = plan.inverse.data();
    WorkStealPool pool(4);
    mergepath_spmm_parallel(plan.matrix, b, got, s, pool, loc);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4))
        << "diff=" << got.max_abs_diff(expect);
}

TEST(ReorderedSpmm, KernelWithReorderMatchesKernelWithout)
{
    CsrMatrix a = evil_graph(400, 3500, 300, 59);
    DenseMatrix b = random_dense(a.cols(), 32, 61);
    WorkStealPool pool(4);

    MergePathSpmm plain_kernel;
    plain_kernel.set_reorder(ReorderKind::kNone);
    plain_kernel.prepare(a, 32);
    EXPECT_EQ(plain_kernel.reorder_plan(), nullptr);
    DenseMatrix plain(a.rows(), 32);
    plain_kernel.run(a, b, plain, pool);

    for (ReorderKind kind :
         {ReorderKind::kDegree, ReorderKind::kBfs, ReorderKind::kRcm}) {
        MergePathSpmm kernel;
        kernel.set_reorder(kind);
        kernel.prepare(a, 32);
        ASSERT_NE(kernel.reorder_plan(), nullptr);
        EXPECT_EQ(kernel.reorder_plan()->kind, kind);
        DenseMatrix got(a.rows(), 32);
        kernel.run(a, b, got, pool);
        EXPECT_TRUE(got.approx_equal(plain, 1e-3, 1e-4))
            << "kind=" << reorder_kind_name(kind)
            << " diff=" << got.max_abs_diff(plain);
    }
}

TEST(ReorderedSpmm, RectangularInputFallsBackToIdentity)
{
    // Reorderings are graph relabelings; a rectangular matrix cannot be
    // relabeled symmetrically, so prepare() must keep identity order.
    CsrMatrix a(4, 8, {0, 2, 3, 5, 6}, {0, 7, 3, 1, 6, 2},
                {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f});
    MergePathSpmm kernel;
    kernel.set_reorder(ReorderKind::kDegree);
    kernel.prepare(a, 16);
    EXPECT_EQ(kernel.reorder_plan(), nullptr);

    DenseMatrix b = random_dense(8, 16, 67);
    DenseMatrix expect(4, 16), got(4, 16);
    reference_spmm(a, b, expect);
    WorkStealPool pool(2);
    kernel.run(a, b, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-4, 1e-5));
}

TEST(ReorderedSpmm, PlanCacheSharesAcrossKernels)
{
    ScheduleCache cache;
    CsrMatrix a = evil_graph(300, 2500, 250, 71);
    EXPECT_EQ(cache.reorder_size(), 0u);

    MergePathSpmm first, second;
    first.set_schedule_cache(&cache);
    first.set_reorder(ReorderKind::kBfs);
    first.prepare(a, 32);
    EXPECT_EQ(cache.reorder_size(), 1u);

    second.set_schedule_cache(&cache);
    second.set_reorder(ReorderKind::kBfs);
    second.prepare(a, 64);
    EXPECT_EQ(cache.reorder_size(), 1u); // reused, not rebuilt
    EXPECT_EQ(first.reorder_plan(), second.reorder_plan());

    // A different kind is a different plan.
    MergePathSpmm third;
    third.set_schedule_cache(&cache);
    third.set_reorder(ReorderKind::kDegree);
    third.prepare(a, 32);
    EXPECT_EQ(cache.reorder_size(), 2u);

    cache.clear();
    EXPECT_EQ(cache.reorder_size(), 0u);
}

// ---------------------------------------------------------------------
// Reorder plans and permutation round-trips.
// ---------------------------------------------------------------------

TEST(ReorderPlan, RoundTripsRowsThroughInverse)
{
    CsrMatrix a = evil_graph(200, 1500, 150, 73);
    for (ReorderKind kind :
         {ReorderKind::kDegree, ReorderKind::kBfs, ReorderKind::kRcm}) {
        ReorderPlan plan = build_reorder_plan(a, kind);
        validate_permutation(plan.perm, a.rows());
        validate_permutation(plan.inverse, a.rows());
        EXPECT_EQ(invert_permutation(plan.inverse), plan.perm);

        // Traversal row r of the plan is original row inverse[r],
        // contents preserved verbatim (columns untouched).
        for (index_t r = 0; r < a.rows(); ++r) {
            index_t old = plan.inverse[static_cast<size_t>(r)];
            ASSERT_EQ(plan.matrix.degree(r), a.degree(old));
            index_t pk = plan.matrix.row_begin(r);
            for (index_t k = a.row_begin(old); k < a.row_end(old);
                 ++k, ++pk) {
                ASSERT_EQ(plan.matrix.col_idx()[pk], a.col_idx()[k]);
                ASSERT_EQ(plan.matrix.values()[pk], a.values()[k]);
            }
        }
    }
}

TEST(ReorderPlan, HandlesIsolatedVertices)
{
    // Rows 1, 3 and 5 have no out- or in-edges at all; BFS must still
    // label them and the executed SpMM must still match the reference.
    CsrMatrix a(6, 6, {0, 2, 2, 3, 3, 4, 4}, {2, 4, 0, 2},
                {1.0f, 2.0f, 3.0f, 4.0f});
    for (ReorderKind kind :
         {ReorderKind::kDegree, ReorderKind::kBfs, ReorderKind::kRcm}) {
        ReorderPlan plan = build_reorder_plan(a, kind);
        validate_permutation(plan.perm, 6);

        DenseMatrix b = random_dense(6, 8, 79);
        DenseMatrix expect(6, 8), got(6, 8);
        reference_spmm(a, b, expect);
        MergePathSchedule s = MergePathSchedule::build(plan.matrix, 3);
        SpmmLocality loc;
        loc.row_scatter = plan.inverse.data();
        mergepath_spmm_sequential(plan.matrix, b, got, s, loc);
        EXPECT_TRUE(got.approx_equal(expect, 1e-4, 1e-5))
            << "kind=" << reorder_kind_name(kind);
    }
}

TEST(ReorderPlanDeathTest, RejectsNoneAndRectangular)
{
    CsrMatrix square = erdos_renyi_graph(10, 30, 83);
    EXPECT_DEATH(build_reorder_plan(square, ReorderKind::kNone),
                 "identity");
    CsrMatrix rect(2, 3, {0, 1, 2}, {0, 2}, {1.0f, 1.0f});
    EXPECT_DEATH(build_reorder_plan(rect, ReorderKind::kDegree),
                 "square");
}

TEST(ReorderKindNames, ParseAndNameRoundTrip)
{
    for (ReorderKind kind :
         {ReorderKind::kNone, ReorderKind::kDegree, ReorderKind::kBfs,
          ReorderKind::kRcm}) {
        EXPECT_EQ(parse_reorder_kind(reorder_kind_name(kind)), kind);
    }
    EXPECT_DEATH(parse_reorder_kind("zigzag"), "reorder");
}

// ---------------------------------------------------------------------
// Adaptive strategy selection.
// ---------------------------------------------------------------------

TEST(AdaptiveTiling, WideDimensionSelectsTiledMergePath)
{
    // Skewed graph + a dimension the auto-tuner tiles on this machine
    // -> the adaptive kernel must pick the tiled merge-path variant and
    // still match the reference.
    CsrMatrix a = evil_graph(3000, 30000, 2500, 89);
    const index_t dim = 512;
    AdaptiveSpmm kernel;
    kernel.prepare(a, dim);
    if (default_spmm_locality(a.cols(), dim).tiled(dim)) {
        EXPECT_EQ(kernel.strategy(), AdaptiveStrategy::kMergePathTiled);
    }

    DenseMatrix b = random_dense(a.cols(), dim, 97);
    DenseMatrix expect(a.rows(), dim), got(a.rows(), dim);
    reference_spmm(a, b, expect);
    WorkStealPool pool(4);
    kernel.run(a, b, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4))
        << "diff=" << got.max_abs_diff(expect);
}

TEST(AdaptiveTiling, NarrowDimensionFallsBackUntiled)
{
    // d = 8 never tiles (tile floor is 32): selection must fall back to
    // the skew heuristic, never kMergePathTiled.
    CsrMatrix a = evil_graph(500, 5000, 400, 101);
    AdaptiveSpmm kernel;
    kernel.prepare(a, 8);
    EXPECT_NE(kernel.strategy(), AdaptiveStrategy::kMergePathTiled);

    DenseMatrix b = random_dense(a.cols(), 8, 103);
    DenseMatrix expect(a.rows(), 8), got(a.rows(), 8);
    reference_spmm(a, b, expect);
    WorkStealPool pool(4);
    kernel.run(a, b, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4));
}

} // namespace
} // namespace mps
