/** Tests for edge softmax and the GAT layer. */
#include <gtest/gtest.h>

#include <cmath>

#include "mps/gcn/gat.h"
#include "mps/gcn/gemm.h"
#include "mps/sparse/generate.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

TEST(EdgeSoftmax, RowsSumToOne)
{
    CsrMatrix a = erdos_renyi_graph(80, 500, 1);
    std::vector<value_t> scores(static_cast<size_t>(a.nnz()));
    Pcg32 rng(2);
    for (auto &s : scores)
        s = rng.next_float(-3.0f, 3.0f);
    WorkStealPool pool(3);
    CsrMatrix att = edge_softmax(a, scores, pool);

    EXPECT_EQ(att.row_ptr(), a.row_ptr());
    EXPECT_EQ(att.col_idx(), a.col_idx());
    for (index_t r = 0; r < att.rows(); ++r) {
        if (att.degree(r) == 0)
            continue;
        double sum = 0.0;
        for (index_t k = att.row_begin(r); k < att.row_end(r); ++k) {
            ASSERT_GT(att.values()[k], 0.0f);
            sum += att.values()[k];
        }
        ASSERT_NEAR(sum, 1.0, 1e-4) << "row " << r;
    }
}

TEST(EdgeSoftmax, UniformScoresGiveUniformWeights)
{
    CsrMatrix a = erdos_renyi_graph(40, 200, 4);
    std::vector<value_t> scores(static_cast<size_t>(a.nnz()), 0.7f);
    WorkStealPool pool(2);
    CsrMatrix att = edge_softmax(a, scores, pool);
    for (index_t r = 0; r < att.rows(); ++r) {
        index_t d = att.degree(r);
        for (index_t k = att.row_begin(r); k < att.row_end(r); ++k)
            ASSERT_NEAR(att.values()[k], 1.0f / d, 1e-5);
    }
}

TEST(EdgeSoftmax, LargeScoresAreStable)
{
    CsrMatrix a(1, 1, {0, 1}, {0}, {1.0f});
    std::vector<value_t> scores{500.0f}; // would overflow naive exp
    WorkStealPool pool(2);
    CsrMatrix att = edge_softmax(a, scores, pool);
    EXPECT_FLOAT_EQ(att.values()[0], 1.0f);
}

TEST(GatLayer, MatchesNaiveDenseComputation)
{
    PowerLawParams p;
    p.nodes = 60;
    p.target_nnz = 300;
    p.max_degree = 40;
    p.seed = 5;
    CsrMatrix a = power_law_graph(p);
    const index_t f = 6, d = 4;

    Pcg32 rng(9);
    DenseMatrix h(a.rows(), f), w(f, d);
    h.fill_random(rng);
    w.fill_random(rng);
    std::vector<value_t> a_src(static_cast<size_t>(d)),
        a_dst(static_cast<size_t>(d));
    for (auto &v : a_src)
        v = rng.next_float(-1.0f, 1.0f);
    for (auto &v : a_dst)
        v = rng.next_float(-1.0f, 1.0f);
    const float slope = 0.2f;

    GatLayer layer(w, a_src, a_dst, slope, Activation::kNone);
    WorkStealPool pool(4);
    MergePathSchedule sched = MergePathSchedule::build(a, 37);
    DenseMatrix out(a.rows(), d);
    layer.forward(a, h, sched, out, pool);

    // Naive dense reference.
    DenseMatrix hw(a.rows(), d);
    reference_gemm(h, w, hw);
    DenseMatrix expect(a.rows(), d);
    for (index_t i = 0; i < a.rows(); ++i) {
        index_t begin = a.row_begin(i), end = a.row_end(i);
        if (begin == end)
            continue;
        std::vector<double> e(static_cast<size_t>(end - begin));
        double peak = -1e300;
        for (index_t k = begin; k < end; ++k) {
            index_t j = a.col_idx()[k];
            double s_src = 0.0, s_dst = 0.0;
            for (index_t dd = 0; dd < d; ++dd) {
                s_src += hw(i, dd) * a_src[static_cast<size_t>(dd)];
                s_dst += hw(j, dd) * a_dst[static_cast<size_t>(dd)];
            }
            double score = s_src + s_dst;
            if (score < 0)
                score *= slope;
            e[static_cast<size_t>(k - begin)] = score;
            peak = std::max(peak, score);
        }
        double denom = 0.0;
        for (double &s : e) {
            s = std::exp(s - peak);
            denom += s;
        }
        for (index_t k = begin; k < end; ++k) {
            double alpha = e[static_cast<size_t>(k - begin)] / denom;
            index_t j = a.col_idx()[k];
            for (index_t dd = 0; dd < d; ++dd) {
                expect(i, dd) += static_cast<value_t>(alpha) * hw(j, dd);
            }
        }
    }
    EXPECT_TRUE(out.approx_equal(expect, 2e-3, 2e-3))
        << "diff=" << out.max_abs_diff(expect);
}

TEST(GatLayer, AttentionMatrixExposedAndStochastic)
{
    CsrMatrix a = erdos_renyi_graph(50, 250, 7);
    Pcg32 rng(11);
    DenseMatrix h(a.rows(), 5);
    h.fill_random(rng);
    DenseMatrix w(5, 3);
    w.fill_random(rng);
    GatLayer layer(w, {0.5f, -0.2f, 0.1f}, {0.3f, 0.3f, -0.4f}, 0.2f,
                   Activation::kRelu);
    WorkStealPool pool(2);
    MergePathSchedule sched = MergePathSchedule::build(a, 16);
    DenseMatrix out(a.rows(), 3);
    layer.forward(a, h, sched, out, pool);
    const CsrMatrix &att = layer.last_attention();
    EXPECT_EQ(att.nnz(), a.nnz());
    for (index_t r = 0; r < att.rows(); ++r) {
        if (att.degree(r) == 0)
            continue;
        double sum = 0.0;
        for (index_t k = att.row_begin(r); k < att.row_end(r); ++k)
            sum += att.values()[k];
        ASSERT_NEAR(sum, 1.0, 1e-4);
    }
}

TEST(GatLayer, AttentionRetentionOptOut)
{
    CsrMatrix a = erdos_renyi_graph(40, 200, 9);
    Pcg32 rng(13);
    DenseMatrix h(a.rows(), 5);
    h.fill_random(rng);
    DenseMatrix w(5, 3);
    w.fill_random(rng);
    GatLayer layer(w, {0.5f, -0.2f, 0.1f}, {0.3f, 0.3f, -0.4f}, 0.2f,
                   Activation::kRelu);
    WorkStealPool pool(2);
    MergePathSchedule sched = MergePathSchedule::build(a, 8);
    DenseMatrix retained(a.rows(), 3);

    // Default: retained for inspection, releasable on demand.
    EXPECT_TRUE(layer.retain_attention());
    layer.forward(a, h, sched, retained, pool);
    EXPECT_EQ(layer.last_attention().nnz(), a.nnz());
    layer.release_attention();
    EXPECT_EQ(layer.last_attention().nnz(), 0);
    layer.release_attention(); // idempotent
    EXPECT_EQ(layer.last_attention().nnz(), 0);

    // Opted out (the serving setting): forward keeps nothing, and the
    // output is unchanged.
    layer.set_retain_attention(false);
    DenseMatrix unretained(a.rows(), 3);
    layer.forward(a, h, sched, unretained, pool);
    EXPECT_EQ(layer.last_attention().nnz(), 0);
    EXPECT_DOUBLE_EQ(unretained.max_abs_diff(retained), 0.0);
}

TEST(GatLayerDeathTest, BadAttentionVectorLength)
{
    DenseMatrix w(4, 3);
    EXPECT_DEATH(GatLayer(w, {1.0f}, {1.0f, 1.0f, 1.0f}, 0.2f,
                          Activation::kNone),
                 "length");
}

} // namespace
} // namespace mps
