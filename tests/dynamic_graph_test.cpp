/**
 * Tests for the dynamic-graph subsystem: DeltaCsr overlay semantics
 * (apply / materialize / compact), strict CSR validation, incremental
 * schedule repair against fresh builds, range-decomposable censuses,
 * ScheduleCache migration + LRU capping, and Server::update_graph()
 * snapshot behaviour including concurrent update/serve traffic (the
 * TSan target of check.sh's churn stage).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "mps/core/schedule_cache.h"
#include "mps/core/spmm.h"
#include "mps/gcn/activation.h"
#include "mps/gcn/gemm.h"
#include "mps/gcn/layer.h"
#include "mps/serve/server.h"
#include "mps/sparse/delta_csr.h"
#include "mps/sparse/generate.h"
#include "mps/util/metrics.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

/**
 * Random strictly-valid CSR whose columns are all EVEN, with small
 * integer values. Leaves every odd column free for guaranteed
 * structural inserts, and keeps row sums exactly representable so
 * parallel SpMM is bit-identical to the sequential reference.
 */
CsrMatrix
even_col_csr(Pcg32 &rng, index_t rows, index_t half_cols,
             index_t max_degree)
{
    std::vector<index_t> row_ptr(static_cast<size_t>(rows) + 1, 0);
    std::vector<index_t> cols;
    std::vector<value_t> vals;
    std::vector<uint8_t> used(static_cast<size_t>(half_cols));
    for (index_t r = 0; r < rows; ++r) {
        std::fill(used.begin(), used.end(), 0);
        index_t degree = static_cast<index_t>(
            rng.next_below(static_cast<uint32_t>(max_degree) + 1));
        for (index_t k = 0; k < degree; ++k)
            used[rng.next_below(static_cast<uint32_t>(half_cols))] = 1;
        for (index_t h = 0; h < half_cols; ++h) {
            if (used[static_cast<size_t>(h)] == 0)
                continue;
            cols.push_back(2 * h);
            vals.push_back(
                static_cast<value_t>(1 + rng.next_below(4)));
        }
        row_ptr[static_cast<size_t>(r) + 1] =
            static_cast<index_t>(cols.size());
    }
    return CsrMatrix(rows, 2 * half_cols, std::move(row_ptr),
                     std::move(cols), std::move(vals));
}

void
fill_integers(DenseMatrix &m, Pcg32 &rng)
{
    for (index_t r = 0; r < m.rows(); ++r)
        for (index_t c = 0; c < m.cols(); ++c)
            m(r, c) = static_cast<value_t>(
                static_cast<int32_t>(rng.next_below(7)) - 3);
}

void
expect_bits_equal(const DenseMatrix &got, const DenseMatrix &want,
                  const char *what)
{
    ASSERT_EQ(got.rows(), want.rows()) << what;
    ASSERT_EQ(got.cols(), want.cols()) << what;
    for (index_t r = 0; r < got.rows(); ++r)
        for (index_t c = 0; c < got.cols(); ++c)
            ASSERT_EQ(got(r, c), want(r, c))
                << what << " at (" << r << ", " << c << ")";
}

void
expect_census_equal(const ScheduleCensus &a, const ScheduleCensus &b)
{
    EXPECT_EQ(a.empty_threads, b.empty_threads);
    EXPECT_EQ(a.atomic_commits, b.atomic_commits);
    EXPECT_EQ(a.plain_row_writes, b.plain_row_writes);
    EXPECT_EQ(a.split_rows, b.split_rows);
    EXPECT_EQ(a.atomic_nnz, b.atomic_nnz);
    EXPECT_EQ(a.plain_nnz, b.plain_nnz);
    EXPECT_EQ(a.max_nnz_per_thread, b.max_nnz_per_thread);
    EXPECT_EQ(a.max_items_per_thread, b.max_items_per_thread);
}

// --- DeltaCsr overlay semantics -----------------------------------

TEST(DeltaCsr, InsertTracksLogicalStateAndMaterializes)
{
    // r0: {0:1, 2:2}, r1: {}, r2: {1:3}
    DeltaCsr d(CsrMatrix(3, 4, {0, 2, 2, 3}, {0, 2, 1}, {1, 2, 3}));
    GraphDelta delta;
    delta.upserts = {{1, 3, 5.0f}, {0, 1, 7.0f}};
    d.apply(delta);
    d.validate();

    EXPECT_EQ(d.rows(), 3);
    EXPECT_EQ(d.base().nnz(), 3); // base untouched
    EXPECT_EQ(d.nnz(), 5);
    EXPECT_EQ(d.delta_edges(), 2);
    EXPECT_NEAR(d.delta_fraction(), 2.0 / 3.0, 1e-12);
    ASSERT_EQ(d.num_dirty_rows(), 2);
    EXPECT_EQ(d.dirty_row(0), 0);
    EXPECT_EQ(d.dirty_row(1), 1);

    std::vector<std::pair<index_t, value_t>> row0;
    d.for_each_in_row(0, [&](index_t c, value_t v) {
        row0.emplace_back(c, v);
    });
    std::vector<std::pair<index_t, value_t>> want0 = {
        {0, 1.0f}, {1, 7.0f}, {2, 2.0f}};
    EXPECT_EQ(row0, want0);

    CsrMatrix m = d.materialize();
    m.validate(CsrValidate::kStrict);
    EXPECT_EQ(m.row_ptr(), (std::vector<index_t>{0, 3, 4, 5}));
    EXPECT_EQ(m.col_idx(), (std::vector<index_t>{0, 1, 2, 3, 1}));
    EXPECT_EQ(m.values(),
              (std::vector<value_t>{1.0f, 7.0f, 2.0f, 5.0f, 3.0f}));
}

TEST(DeltaCsr, ValueChangeRemoveAndRevert)
{
    DeltaCsr d(CsrMatrix(3, 4, {0, 2, 2, 3}, {0, 2, 1}, {1, 2, 3}));

    GraphDelta change;
    change.upserts = {{0, 0, 9.0f}}; // value change: corr = 9 - 1
    change.removes = {{0, 2, 0.0f}, {2, 0, 0.0f}}; // (2,0) is absent
    d.apply(change);
    d.validate();
    EXPECT_EQ(d.nnz(), 2); // one removal, no inserts
    EXPECT_EQ(d.delta_edges(), 2);
    ASSERT_EQ(d.num_dirty_rows(), 1);

    bool saw_change = false, saw_remove = false;
    d.for_each_correction(0, [&](index_t c, value_t corr, value_t v,
                                 bool present) {
        if (c == 0) {
            saw_change = true;
            EXPECT_TRUE(present);
            EXPECT_EQ(v, 9.0f);
            EXPECT_EQ(corr, 8.0f);
        } else if (c == 2) {
            saw_remove = true;
            EXPECT_FALSE(present);
            EXPECT_EQ(corr, -2.0f);
        }
    });
    EXPECT_TRUE(saw_change);
    EXPECT_TRUE(saw_remove);

    // Reverting both edges to the base state empties the overlay.
    GraphDelta revert;
    revert.upserts = {{0, 0, 1.0f}, {0, 2, 2.0f}};
    d.apply(revert);
    d.validate();
    EXPECT_EQ(d.delta_edges(), 0);
    EXPECT_EQ(d.num_dirty_rows(), 0);
    EXPECT_EQ(d.nnz(), d.base().nnz());
}

TEST(DeltaCsr, RemovesWinOverUpsertsWithinOneBatch)
{
    DeltaCsr d(CsrMatrix(2, 4, {0, 1, 1}, {0}, {1}));
    GraphDelta delta;
    delta.upserts = {{0, 1, 5.0f}, {0, 1, 6.0f}};
    delta.removes = {{0, 1, 0.0f}};
    d.apply(delta);
    d.validate();
    // Insert-then-remove of an absent edge cancels entirely.
    EXPECT_EQ(d.delta_edges(), 0);
    EXPECT_EQ(d.nnz(), 1);

    // A later batch lands the edge with the last upsert's value.
    GraphDelta again;
    again.upserts = {{0, 1, 4.0f}};
    d.apply(again);
    std::vector<value_t> vals;
    d.for_each_in_row(0, [&](index_t, value_t v) { vals.push_back(v); });
    EXPECT_EQ(vals, (std::vector<value_t>{1.0f, 4.0f}));
}

TEST(DeltaCsr, CompactReportsFirstStructuralDirtyRow)
{
    CsrMatrix base(4, 4, {0, 1, 2, 3, 4}, {0, 1, 2, 3}, {1, 1, 1, 1});
    {
        // Value-only churn never dirties the merge path.
        DeltaCsr d(base);
        GraphDelta delta;
        delta.upserts = {{0, 0, 5.0f}, {3, 3, 7.0f}};
        d.apply(delta);
        DeltaCsr::CompactResult cr = d.compact();
        EXPECT_EQ(cr.first_dirty_row, 4);
        EXPECT_EQ(cr.old_base->row_ptr(), cr.new_base->row_ptr());
        EXPECT_EQ(cr.new_base->values()[0], 5.0f);
        EXPECT_EQ(d.delta_edges(), 0);
        EXPECT_EQ(&d.base(), cr.new_base.get());
    }
    {
        // Value change at row 0 plus an insert at row 2: the first
        // STRUCTURALLY dirty row is 2.
        DeltaCsr d(base);
        GraphDelta delta;
        delta.upserts = {{0, 0, 5.0f}, {2, 0, 1.0f}};
        d.apply(delta);
        CsrMatrix expect = d.materialize();
        DeltaCsr::CompactResult cr = d.compact();
        EXPECT_EQ(cr.first_dirty_row, 2);
        EXPECT_EQ(cr.new_base->row_ptr(), expect.row_ptr());
        EXPECT_EQ(cr.new_base->col_idx(), expect.col_idx());
        EXPECT_EQ(cr.new_base->values(), expect.values());
        cr.new_base->validate(CsrValidate::kStrict);
    }
}

TEST(DeltaCsr, CompactionThresholdFollowsRatio)
{
    Pcg32 rng(11);
    DeltaCsr d(even_col_csr(rng, 10, 10, 4));
    const index_t base_nnz = d.base().nnz();
    ASSERT_GT(base_nnz, 4);
    d.set_compact_ratio(2.0 / static_cast<double>(base_nnz));

    GraphDelta one;
    one.upserts = {{0, 1, 1.0f}};
    d.apply(one);
    EXPECT_FALSE(d.needs_compaction()); // 1/nnz < 2/nnz

    GraphDelta two;
    two.upserts = {{1, 1, 1.0f}, {2, 1, 1.0f}};
    d.apply(two);
    EXPECT_TRUE(d.needs_compaction()); // 3/nnz > 2/nnz
}

TEST(DeltaCsrDeathTest, StrictValidationRejectsMalformedColumns)
{
    // Both pass the structural level (construction) but fail kStrict.
    CsrMatrix unsorted(1, 3, {0, 2}, {2, 1}, {1.0f, 1.0f});
    unsorted.validate(); // structural: fine
    EXPECT_DEATH(unsorted.validate(CsrValidate::kStrict),
                 "unsorted or duplicate");

    CsrMatrix dup(1, 3, {0, 2}, {1, 1}, {1.0f, 1.0f});
    EXPECT_DEATH(dup.validate(CsrValidate::kStrict),
                 "unsorted or duplicate");

    // The delta overlay's merge needs sorted bases: the ctor enforces.
    EXPECT_DEATH(DeltaCsr(CsrMatrix(1, 3, {0, 2}, {2, 1}, {1.0f, 1.0f})),
                 "unsorted or duplicate");
}

// --- Incremental schedule repair ----------------------------------

TEST(ScheduleRepair, SuffixDeltaMatchesFreshBuild)
{
    Pcg32 rng(42);
    CsrMatrix base = even_col_csr(rng, 200, 100, 6);
    const index_t threads = 16;
    MergePathSchedule old_sched = MergePathSchedule::build(base, threads);

    // Structural churn confined to rows >= 120: odd-column inserts
    // (guaranteed absent) and removals of existing edges.
    DeltaCsr d(base);
    GraphDelta delta;
    for (index_t r = 120; r < 200; r += 3)
        delta.upserts.push_back(
            {r, 2 * static_cast<index_t>(rng.next_below(100)) + 1,
             static_cast<value_t>(1 + rng.next_below(3))});
    for (index_t r = 121; r < 200; r += 5)
        if (base.degree(r) > 0)
            delta.removes.push_back(
                {r, base.col_idx()[base.row_begin(r)], 0.0f});
    d.apply(delta);
    DeltaCsr::CompactResult cr = d.compact();
    ASSERT_GE(cr.first_dirty_row, 120);
    ASSERT_LT(cr.first_dirty_row, 200);

    ScheduleRepair rep = repair_schedule(old_sched, *cr.old_base,
                                         *cr.new_base,
                                         cr.first_dirty_row);
    const CsrMatrix &fresh_a = *cr.new_base;
    rep.schedule.validate(fresh_a);
    EXPECT_FALSE(rep.rebuilt); // small suffix delta: no fallback
    EXPECT_GT(rep.dirty_begin, 0);
    EXPECT_EQ(rep.dirty_end, threads);
    for (index_t t = 0; t < rep.dirty_begin; ++t) {
        EXPECT_EQ(rep.schedule.work(t).start.row,
                  old_sched.work(t).start.row);
        EXPECT_EQ(rep.schedule.work(t).start.nz,
                  old_sched.work(t).start.nz);
    }

    // The repaired schedule and a fresh build produce bit-identical
    // SpMM results (integer data makes row sums order-independent).
    WorkStealPool pool(4);
    DenseMatrix b(fresh_a.cols(), 17);
    fill_integers(b, rng);
    DenseMatrix expect(fresh_a.rows(), 17);
    reference_spmm(fresh_a, b, expect);
    DenseMatrix repaired_out(fresh_a.rows(), 17);
    mergepath_spmm_parallel(fresh_a, b, repaired_out, rep.schedule,
                            pool);
    expect_bits_equal(repaired_out, expect, "repaired schedule");
    MergePathSchedule fresh =
        MergePathSchedule::build(fresh_a, threads);
    DenseMatrix fresh_out(fresh_a.rows(), 17);
    mergepath_spmm_parallel(fresh_a, b, fresh_out, fresh, pool);
    expect_bits_equal(fresh_out, repaired_out, "fresh vs repaired");

    // Re-censusing only the dirty range reproduces the full census.
    ScheduleCensusPart clean =
        rep.schedule.census_part(fresh_a, 0, rep.dirty_begin);
    ScheduleCensusPart dirty =
        rep.schedule.census_part(fresh_a, rep.dirty_begin, threads);
    expect_census_equal(clean.merged(dirty).counts,
                        rep.schedule.census(fresh_a));
}

TEST(ScheduleRepair, ValueOnlyDeltaKeepsScheduleVerbatim)
{
    Pcg32 rng(7);
    CsrMatrix base = even_col_csr(rng, 64, 32, 5);
    MergePathSchedule old_sched = MergePathSchedule::build(base, 8);

    CsrMatrix scaled = base;
    for (value_t &v : scaled.values())
        v *= 2.0f;
    ScheduleRepair rep =
        repair_schedule(old_sched, base, scaled, base.rows());
    EXPECT_FALSE(rep.rebuilt);
    EXPECT_EQ(rep.dirty_begin, rep.dirty_end); // nothing to re-census
    ASSERT_EQ(rep.schedule.num_threads(), old_sched.num_threads());
    for (index_t t = 0; t < old_sched.num_threads(); ++t) {
        EXPECT_EQ(rep.schedule.work(t).start.row,
                  old_sched.work(t).start.row);
        EXPECT_EQ(rep.schedule.work(t).start.nz,
                  old_sched.work(t).start.nz);
    }
}

TEST(ScheduleRepair, LeadingDirtyRowFallsBackToRebuild)
{
    Pcg32 rng(13);
    CsrMatrix base = even_col_csr(rng, 64, 32, 5);
    MergePathSchedule old_sched = MergePathSchedule::build(base, 8);

    DeltaCsr d(base);
    GraphDelta delta;
    delta.upserts = {{0, 1, 2.0f}};
    d.apply(delta);
    DeltaCsr::CompactResult cr = d.compact();
    ASSERT_EQ(cr.first_dirty_row, 0);
    ScheduleRepair rep =
        repair_schedule(old_sched, *cr.old_base, *cr.new_base, 0);
    EXPECT_TRUE(rep.rebuilt);
    EXPECT_EQ(rep.dirty_begin, 0);
    EXPECT_EQ(rep.dirty_end, old_sched.num_threads());
    rep.schedule.validate(*cr.new_base);
}

TEST(ScheduleCensus, AdjacentPartsMergeToFullCensus)
{
    Pcg32 rng(99);
    CsrMatrix a = even_col_csr(rng, 120, 60, 7);
    const index_t threads = 37;
    MergePathSchedule sched = MergePathSchedule::build(a, threads);
    ScheduleCensus full = sched.census(a);
    for (index_t split : {index_t{0}, index_t{1}, index_t{17},
                          index_t{36}, threads}) {
        ScheduleCensusPart left = sched.census_part(a, 0, split);
        ScheduleCensusPart right = sched.census_part(a, split, threads);
        expect_census_equal(left.merged(right).counts, full);
    }
}

// --- ScheduleCache migration + LRU cap ----------------------------

TEST(ScheduleCacheDynamic, LruCapEvictsOldestEntries)
{
    Pcg32 rng(3);
    CsrMatrix a = even_col_csr(rng, 80, 40, 5);
    ScheduleCache cache;
    cache.set_max_entries(3);
    for (index_t t = 1; t <= 6; ++t)
        cache.get_or_build(a, t);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.evictions(), 3);

    // The most recent entries survived: re-fetching them hits.
    const int64_t hits_before = cache.hits();
    cache.get_or_build(a, 6);
    cache.get_or_build(a, 5);
    EXPECT_EQ(cache.hits(), hits_before + 2);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(ScheduleCacheDynamic, RepairMigratesEntriesAndBumpsVersion)
{
    Pcg32 rng(21);
    CsrMatrix base = even_col_csr(rng, 150, 75, 6);
    ScheduleCache cache;
    const index_t cost = 64;
    auto sched = cache.get_or_build_with_cost(base, cost);
    ScheduleCensus census_before = cache.census_with_cost(base, cost);
    expect_census_equal(census_before, sched->census(base));
    EXPECT_EQ(cache.version_with_cost(base, cost), 1u);

    // Structural delta away from row 0, then compact + migrate.
    DeltaCsr d(base);
    GraphDelta delta;
    for (index_t r = 100; r < 150; r += 4)
        delta.upserts.push_back({r, 1, 1.0f});
    d.apply(delta);
    DeltaCsr::CompactResult cr = d.compact();
    ASSERT_GE(cr.first_dirty_row, 100);
    EXPECT_EQ(cache.repair_for_update(*cr.old_base, *cr.new_base,
                                      cr.first_dirty_row),
              1u);

    const CsrMatrix &fresh_a = *cr.new_base;
    EXPECT_EQ(cache.version_with_cost(base, cost), 0u); // old key gone
    EXPECT_EQ(cache.version_with_cost(fresh_a, cost), 2u);

    // A lookup on the new matrix hits the migrated entry...
    const int64_t hits_before = cache.hits();
    auto migrated = cache.get_or_build_with_cost(fresh_a, cost);
    EXPECT_EQ(cache.hits(), hits_before + 1);
    EXPECT_EQ(cache.size(), 1u);
    migrated->validate(fresh_a);
    // ...and its chunk-cached census matches a from-scratch count.
    expect_census_equal(cache.census_with_cost(fresh_a, cost),
                        migrated->census(fresh_a));
}

} // namespace

// --- Server integration -------------------------------------------

namespace serve {
namespace {

/** Serving fixture with a shadow DeltaCsr mirroring every update. */
class DynamicServeFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PowerLawParams p;
        p.nodes = 64;
        p.target_nnz = 512;
        p.max_degree = 16;
        p.seed = 5;
        p.value_mode = ValueMode::kGcnNormalized;
        graph_ = power_law_graph(p);
        layers_.emplace_back(random_layer_weights(8, 6, 21),
                             Activation::kRelu);
        layers_.emplace_back(random_layer_weights(6, 4, 22),
                             Activation::kNone);
        Pcg32 rng(77);
        features_ = DenseMatrix(graph_.rows(), 8);
        features_.fill_random(rng);
    }

    /** out = act(A * (x * W)) per layer against @p adjacency. */
    DenseMatrix
    reference_forward(const CsrMatrix &adjacency,
                      const DenseMatrix &x) const
    {
        DenseMatrix cur = x;
        for (const GcnLayer &layer : layers_) {
            DenseMatrix xw(adjacency.rows(), layer.out_features());
            reference_gemm(cur, layer.weights(), xw);
            DenseMatrix out(adjacency.rows(), layer.out_features());
            reference_spmm(adjacency, xw, out);
            apply_activation(out, layer.activation());
            cur = std::move(out);
        }
        return cur;
    }

    GraphDelta
    mixed_delta(uint64_t seed, int edges) const
    {
        Pcg32 rng(seed);
        GraphDelta delta;
        const auto n = static_cast<uint32_t>(graph_.rows());
        for (int i = 0; i < edges; ++i) {
            EdgeUpdate e;
            e.row = static_cast<index_t>(rng.next_below(n));
            e.col = static_cast<index_t>(rng.next_below(n));
            e.value = 0.25f * static_cast<value_t>(1 + rng.next_below(3));
            delta.upserts.push_back(e);
        }
        for (index_t r = 0; r < graph_.rows(); r += 11)
            if (graph_.degree(r) > 0)
                delta.removes.push_back(
                    {r, graph_.col_idx()[graph_.row_begin(r)], 0.0f});
        return delta;
    }

    CsrMatrix graph_;
    std::vector<GcnLayer> layers_;
    DenseMatrix features_;
};

TEST_F(DynamicServeFixture, UpdateGraphChangesInferenceResults)
{
    Server server;
    uint64_t gid = server.register_graph(graph_, layers_);
    EXPECT_TRUE(server.infer(gid, features_)
                    .output.approx_equal(
                        reference_forward(graph_, features_)));

    DeltaCsr shadow(graph_);
    GraphDelta delta = mixed_delta(31, 12);
    shadow.apply(delta);
    ASSERT_TRUE(server.update_graph(gid, delta));
    EXPECT_EQ(server.graph_nnz(gid), shadow.nnz());
    EXPECT_GT(server.graph_delta_fraction(gid), 0.0);

    InferenceResult r = server.infer(gid, features_);
    ASSERT_EQ(r.status, RequestStatus::kOk);
    EXPECT_TRUE(r.output.approx_equal(
        reference_forward(shadow.materialize(), features_)));

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.graph_updates, 1);
    EXPECT_EQ(stats.graph_compactions, 0); // small delta, lazy policy
}

TEST_F(DynamicServeFixture, UpdateGraphRejectsUnknownAndShutdown)
{
    Server server;
    uint64_t gid = server.register_graph(graph_, layers_);
    EXPECT_FALSE(server.update_graph(gid + 99, mixed_delta(1, 2)));
    server.shutdown();
    EXPECT_FALSE(server.update_graph(gid, mixed_delta(1, 2)));
}

TEST_F(DynamicServeFixture, RebuildPolicyCompactsEveryUpdate)
{
    ServeConfig cfg;
    cfg.update_policy = GraphUpdatePolicy::kRebuildEveryUpdate;
    Server server(cfg);
    uint64_t gid = server.register_graph(graph_, layers_);
    DeltaCsr shadow(graph_);
    for (uint64_t i = 0; i < 3; ++i) {
        GraphDelta delta = mixed_delta(40 + i, 6);
        shadow.apply(delta);
        ASSERT_TRUE(server.update_graph(gid, delta));
        EXPECT_EQ(server.graph_delta_fraction(gid), 0.0);
    }
    EXPECT_EQ(server.stats().graph_compactions, 3);
    EXPECT_TRUE(server.infer(gid, features_)
                    .output.approx_equal(reference_forward(
                        shadow.materialize(), features_)));
}

TEST_F(DynamicServeFixture, IncrementalPolicyCompactsPastThreshold)
{
    ServeConfig cfg;
    cfg.delta_compact_ratio = 0.005; // ~3 edges on 512 nnz
    Server server(cfg);
    uint64_t gid = server.register_graph(graph_, layers_);
    DeltaCsr shadow(graph_);
    shadow.set_compact_ratio(cfg.delta_compact_ratio);
    GraphDelta delta = mixed_delta(50, 20);
    shadow.apply(delta);
    shadow.compact();
    ASSERT_TRUE(server.update_graph(gid, delta));
    EXPECT_EQ(server.stats().graph_compactions, 1);
    EXPECT_EQ(server.graph_delta_fraction(gid), 0.0);
    EXPECT_EQ(server.graph_nnz(gid), shadow.nnz());
    EXPECT_TRUE(server.infer(gid, features_)
                    .output.approx_equal(reference_forward(
                        shadow.base(), features_)));
}

TEST_F(DynamicServeFixture, ReorderPlanDroppedOnFirstUpdate)
{
    ServeConfig cfg;
    cfg.reorder = ReorderKind::kDegree;
    Server server(cfg);
    uint64_t gid = server.register_graph(graph_, layers_);
    EXPECT_TRUE(server.infer(gid, features_)
                    .output.approx_equal(
                        reference_forward(graph_, features_)));

    DeltaCsr shadow(graph_);
    GraphDelta delta = mixed_delta(60, 8);
    shadow.apply(delta);
    ASSERT_TRUE(server.update_graph(gid, delta));
    InferenceResult r = server.infer(gid, features_);
    ASSERT_EQ(r.status, RequestStatus::kOk);
    EXPECT_TRUE(r.output.approx_equal(
        reference_forward(shadow.materialize(), features_)));
}

TEST_F(DynamicServeFixture, ReorderPlanRebuiltLazilyAfterCompaction)
{
    auto &metrics = MetricsRegistry::global();
    metrics.set_enabled(true);
    const int64_t rebuilds0 =
        metrics.counter_value("reorder.plan_rebuilds");

    ServeConfig cfg;
    cfg.reorder = ReorderKind::kDegree;
    cfg.delta_compact_ratio = 1e-6; // every update compacts -> clean
    Server server(cfg);
    uint64_t gid = server.register_graph(graph_, layers_);
    EXPECT_TRUE(server.infer(gid, features_)
                    .output.approx_equal(
                        reference_forward(graph_, features_)));

    DeltaCsr shadow(graph_);
    shadow.set_compact_ratio(1e-6);
    GraphDelta delta = mixed_delta(91, 10);
    shadow.apply(delta);
    shadow.compact();
    ASSERT_TRUE(server.update_graph(gid, delta));

    // The update retired the plan but left a clean overlay, so the
    // next batch rebuilds it lazily — and still computes correctly
    // through the rebuilt permutation.
    InferenceResult r = server.infer(gid, features_);
    ASSERT_EQ(r.status, RequestStatus::kOk);
    EXPECT_TRUE(r.output.approx_equal(
        reference_forward(shadow.base(), features_)));
    EXPECT_GE(metrics.counter_value("reorder.plan_rebuilds"),
              rebuilds0 + 1);

    // A second batch reuses the rebuilt plan: no further rebuilds.
    const int64_t after_first =
        metrics.counter_value("reorder.plan_rebuilds");
    ASSERT_EQ(server.infer(gid, features_).status, RequestStatus::kOk);
    EXPECT_EQ(metrics.counter_value("reorder.plan_rebuilds"),
              after_first);
    metrics.set_enabled(false);
}

TEST_F(DynamicServeFixture, CacheCapHoldsUnderRepeatedUpdates)
{
    ServeConfig cfg;
    cfg.delta_compact_ratio = 1e-6; // compact (and migrate) every time
    Server server(cfg);
    server.schedule_cache().set_max_entries(4);
    uint64_t gid = server.register_graph(graph_, layers_);
    for (uint64_t i = 0; i < 12; ++i) {
        ASSERT_TRUE(server.update_graph(gid, mixed_delta(70 + i, 5)));
        ASSERT_EQ(server.infer(gid, features_).status,
                  RequestStatus::kOk);
        EXPECT_LE(server.schedule_cache().size(), 4u);
    }
    // Force churn past the cap with direct builds as well.
    for (index_t t = 1; t <= 8; ++t)
        server.schedule_cache().get_or_build(graph_, t);
    EXPECT_LE(server.schedule_cache().size(), 4u);
    EXPECT_GT(server.schedule_cache().evictions(), 0);
}

/**
 * Concurrent update/serve: clients infer while an updater thread lands
 * zero-valued edge inserts (structure changes, results don't), with a
 * compaction threshold low enough that bases and schedules churn mid-
 * flight. Every result must match the static reference — this is the
 * TSan target of check.sh's churn stage.
 */
TEST_F(DynamicServeFixture, ConcurrentUpdatesAndInference)
{
    // Diagonal adjacency: A = I, so act(XW) is the invariant reference
    // no matter how many zero-valued edges the updater inserts.
    const index_t n = 64;
    std::vector<index_t> row_ptr(static_cast<size_t>(n) + 1);
    std::vector<index_t> cols(static_cast<size_t>(n));
    std::vector<value_t> vals(static_cast<size_t>(n), 1.0f);
    for (index_t r = 0; r <= n; ++r)
        row_ptr[static_cast<size_t>(r)] = r;
    for (index_t r = 0; r < n; ++r)
        cols[static_cast<size_t>(r)] = r;
    CsrMatrix diag(n, n, std::move(row_ptr), std::move(cols),
                   std::move(vals));

    ServeConfig cfg;
    cfg.batch.max_batch = 4;
    cfg.batch.max_delay_us = 200;
    cfg.delta_compact_ratio = 0.02; // compact roughly every other batch
    Server server(cfg);
    uint64_t gid = server.register_graph(diag, layers_);
    DenseMatrix expect = reference_forward(diag, features_);

    std::atomic<int> ok{0};
    constexpr int kClients = 3;
    constexpr int kPerClient = 10;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&] {
            for (int i = 0; i < kPerClient; ++i) {
                InferenceResult r = server.infer(gid, features_);
                if (r.status == RequestStatus::kOk &&
                    r.output.approx_equal(expect))
                    ok.fetch_add(1);
            }
        });
    }
    std::thread updater([&] {
        Pcg32 rng(404);
        for (int u = 0; u < 20; ++u) {
            GraphDelta delta;
            for (int e = 0; e < 4; ++e) {
                index_t r = static_cast<index_t>(
                    rng.next_below(static_cast<uint32_t>(n)));
                index_t c = static_cast<index_t>(
                    1 + rng.next_below(static_cast<uint32_t>(n) - 1));
                delta.upserts.push_back(
                    {r, static_cast<index_t>((r + c) % n), 0.0f});
            }
            ASSERT_TRUE(server.update_graph(gid, delta));
            std::this_thread::yield();
        }
    });
    for (auto &t : clients)
        t.join();
    updater.join();
    server.shutdown();

    EXPECT_EQ(ok.load(), kClients * kPerClient);
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.graph_updates, 20);
    EXPECT_GE(stats.graph_compactions, 1);
}

} // namespace
} // namespace serve
} // namespace mps
