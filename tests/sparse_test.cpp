/** Tests for matrix containers, conversions and file IO. */
#include <gtest/gtest.h>

#include <sstream>

#include "mps/sparse/coo_matrix.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/degree_stats.h"
#include "mps/sparse/dense_matrix.h"
#include "mps/sparse/io.h"
#include "mps/util/rng.h"

namespace mps {
namespace {

CsrMatrix
small_csr()
{
    // 4x5:
    //   [ 1 0 2 0 0 ]
    //   [ 0 0 0 0 0 ]
    //   [ 0 3 0 4 5 ]
    //   [ 6 0 0 0 0 ]
    return CsrMatrix(4, 5, {0, 2, 2, 5, 6}, {0, 2, 1, 3, 4, 0},
                     {1, 2, 3, 4, 5, 6});
}

TEST(DenseMatrix, ConstructionAndAccess)
{
    DenseMatrix m(3, 2);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 2);
    EXPECT_FLOAT_EQ(m(2, 1), 0.0f);
    m(1, 0) = 5.0f;
    EXPECT_FLOAT_EQ(m.row(1)[0], 5.0f);
}

TEST(DenseMatrix, FillAndDiff)
{
    DenseMatrix a(2, 2), b(2, 2);
    a.fill(1.0f);
    b.fill(1.0f);
    EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
    b(1, 1) = 1.5f;
    EXPECT_NEAR(a.max_abs_diff(b), 0.5, 1e-7);
    EXPECT_FALSE(a.approx_equal(b));
    EXPECT_TRUE(a.approx_equal(b, 0.6, 0.0));
}

TEST(DenseMatrix, ApproxEqualUsesRelativeTolerance)
{
    DenseMatrix a(1, 1), b(1, 1);
    a(0, 0) = 1000.0f;
    b(0, 0) = 1000.05f;
    EXPECT_TRUE(a.approx_equal(b, 1e-6, 1e-3));
    EXPECT_FALSE(a.approx_equal(b, 1e-6, 1e-8));
}

TEST(DenseMatrix, RandomFillDeterministic)
{
    Pcg32 r1(9), r2(9);
    DenseMatrix a(4, 4), b(4, 4);
    a.fill_random(r1);
    b.fill_random(r2);
    EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
}

TEST(CooMatrix, SortAndMergeSumsDuplicates)
{
    CooMatrix m(3, 3);
    m.add(2, 1, 1.0f);
    m.add(0, 0, 2.0f);
    m.add(2, 1, 3.0f);
    m.add(1, 2, 4.0f);
    m.sort_and_merge();
    ASSERT_EQ(m.nnz(), 3);
    EXPECT_EQ(m.entries()[0].row, 0);
    EXPECT_EQ(m.entries()[1].row, 1);
    EXPECT_EQ(m.entries()[2].row, 2);
    EXPECT_FLOAT_EQ(m.entries()[2].value, 4.0f);
}

TEST(CsrMatrix, BasicShapeAndDegrees)
{
    CsrMatrix m = small_csr();
    EXPECT_EQ(m.rows(), 4);
    EXPECT_EQ(m.cols(), 5);
    EXPECT_EQ(m.nnz(), 6);
    EXPECT_EQ(m.degree(0), 2);
    EXPECT_EQ(m.degree(1), 0);
    EXPECT_EQ(m.degree(2), 3);
    EXPECT_EQ(m.row_begin(2), 2);
    EXPECT_EQ(m.row_end(2), 5);
}

TEST(CsrMatrix, FromCooMatchesManualBuild)
{
    CooMatrix coo(4, 5);
    coo.add(2, 3, 4.0f);
    coo.add(0, 0, 1.0f);
    coo.add(2, 1, 3.0f);
    coo.add(0, 2, 2.0f);
    coo.add(3, 0, 6.0f);
    coo.add(2, 4, 5.0f);
    CsrMatrix m = CsrMatrix::from_coo(std::move(coo));
    CsrMatrix expect = small_csr();
    EXPECT_EQ(m.row_ptr(), expect.row_ptr());
    EXPECT_EQ(m.col_idx(), expect.col_idx());
    EXPECT_EQ(m.values(), expect.values());
}

TEST(CsrMatrix, CooRoundTrip)
{
    CsrMatrix m = small_csr();
    CsrMatrix back = CsrMatrix::from_coo(m.to_coo());
    EXPECT_EQ(back.row_ptr(), m.row_ptr());
    EXPECT_EQ(back.col_idx(), m.col_idx());
    EXPECT_EQ(back.values(), m.values());
}

TEST(CsrMatrix, TransposeTwiceIsIdentity)
{
    CsrMatrix m = small_csr();
    CsrMatrix tt = m.transposed().transposed();
    EXPECT_EQ(tt.rows(), m.rows());
    EXPECT_EQ(tt.cols(), m.cols());
    EXPECT_EQ(tt.row_ptr(), m.row_ptr());
    EXPECT_EQ(tt.col_idx(), m.col_idx());
    EXPECT_EQ(tt.values(), m.values());
}

TEST(CsrMatrix, TransposeMovesEntries)
{
    CsrMatrix t = small_csr().transposed();
    EXPECT_EQ(t.rows(), 5);
    EXPECT_EQ(t.cols(), 4);
    EXPECT_EQ(t.nnz(), 6);
    // Entry (3, 0) = 6 becomes (0, 3).
    bool found = false;
    for (index_t k = t.row_begin(0); k < t.row_end(0); ++k) {
        if (t.col_idx()[k] == 3) {
            EXPECT_FLOAT_EQ(t.values()[k], 6.0f);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(CsrMatrix, NormalizeGcnSymmetricWeights)
{
    // 2-node cycle: both entries get 1/sqrt(2*2) = 0.5.
    CsrMatrix m(2, 2, {0, 1, 2}, {1, 0}, {1.0f, 1.0f});
    m.normalize_gcn();
    EXPECT_FLOAT_EQ(m.values()[0], 0.5f);
    EXPECT_FLOAT_EQ(m.values()[1], 0.5f);
}

TEST(CsrMatrixDeathTest, ValidateCatchesBadRowPtr)
{
    EXPECT_DEATH(CsrMatrix(2, 2, {0, 2, 1}, {0}, {1.0f}),
                 "non-decreasing");
}

TEST(CsrMatrixDeathTest, ValidateCatchesBadColumn)
{
    EXPECT_DEATH(CsrMatrix(1, 2, {0, 1}, {5}, {1.0f}), "out of range");
}

TEST(DegreeStats, SmallMatrix)
{
    DegreeStats s = compute_degree_stats(small_csr());
    EXPECT_EQ(s.min_degree, 0);
    EXPECT_EQ(s.max_degree, 3);
    EXPECT_NEAR(s.avg_degree, 1.5, 1e-12);
    EXPECT_NEAR(s.empty_row_fraction, 0.25, 1e-12);
    EXPECT_GT(s.degree_cv, 0.0);
    EXPECT_FALSE(to_string(s).empty());
}

TEST(DegreeStats, HistogramCountsRows)
{
    Log2Histogram h = degree_histogram(small_csr());
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.zero_count(), 1u);
}

TEST(MatrixMarketIo, RoundTrip)
{
    CsrMatrix m = small_csr();
    std::ostringstream out;
    write_matrix_market(out, m.to_coo());
    std::istringstream in(out.str());
    CsrMatrix back = CsrMatrix::from_coo(read_matrix_market(in));
    EXPECT_EQ(back.row_ptr(), m.row_ptr());
    EXPECT_EQ(back.col_idx(), m.col_idx());
    EXPECT_EQ(back.values(), m.values());
}

TEST(MatrixMarketIo, PatternAndComments)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% a comment\n"
        "3 3 2\n"
        "1 2\n"
        "3 1\n");
    CooMatrix m = read_matrix_market(in);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_FLOAT_EQ(m.entries()[0].value, 1.0f);
}

TEST(MatrixMarketIo, SymmetricExpansion)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 5.0\n"
        "3 3 7.0\n");
    CsrMatrix m = CsrMatrix::from_coo(read_matrix_market(in));
    // Off-diagonal expands to both triangles; diagonal does not double.
    EXPECT_EQ(m.nnz(), 3);
    EXPECT_EQ(m.degree(0), 1);
    EXPECT_EQ(m.degree(1), 1);
    EXPECT_EQ(m.degree(2), 1);
}

TEST(MatrixMarketIoDeathTest, RejectsBadBanner)
{
    std::istringstream in("%%NotMatrixMarket x y z w\n1 1 0\n");
    EXPECT_EXIT(read_matrix_market(in), testing::ExitedWithCode(1),
                "banner");
}

TEST(EdgeListIo, DirectedAndWeighted)
{
    std::istringstream in(
        "# comment line\n"
        "0 1 2.5\n"
        "4 2\n");
    CsrMatrix m = CsrMatrix::from_coo(read_edge_list(in));
    EXPECT_EQ(m.rows(), 5);
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_FLOAT_EQ(m.values()[0], 2.5f);
    EXPECT_FLOAT_EQ(m.values()[1], 1.0f);
}

TEST(EdgeListIo, UndirectedDoublesEdges)
{
    std::istringstream in("0 1\n1 2\n");
    CooMatrix m = read_edge_list(in, /*undirected=*/true);
    EXPECT_EQ(m.nnz(), 4);
}

} // namespace
} // namespace mps
