/**
 * Cross-module integration tests: the schedule census, the SIMT
 * codegen and the multicore trace generators must tell one consistent
 * story, since they all consume the same schedule objects.
 */
#include <gtest/gtest.h>

#include "mps/core/policy.h"
#include "mps/core/schedule.h"
#include "mps/core/spmm.h"
#include "mps/gcn/model.h"
#include "mps/multicore/tracegen.h"
#include "mps/simt/codegen.h"
#include "mps/simt/gpu_model.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/generate.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

TEST(Integration, CodegenCommitCountMatchesScheduleCensus)
{
    CsrMatrix a = make_dataset("Cora");
    const index_t dim = 16, cost = 20;
    GpuConfig gpu = GpuConfig::rtx6000();

    // The SIMT workload's total atomic commits must equal the
    // schedule census's count for the same launch configuration.
    SimdPolicy policy;
    policy.lanes = gpu.lanes;
    LaunchConfig launch =
        make_launch_config(a.rows(), a.nnz(), dim, cost, policy);
    MergePathSchedule sched =
        MergePathSchedule::build(a, launch.num_threads);
    ScheduleCensus census = sched.census(a);

    KernelWorkload w = build_mergepath_workload(a, dim, cost, gpu);
    EXPECT_DOUBLE_EQ(w.total_commits,
                     static_cast<double>(census.atomic_commits));
}

TEST(Integration, MulticoreAtomicCountMatchesScheduleCensus)
{
    CsrMatrix a = erdos_renyi_graph(400, 2400, 7);
    MulticoreConfig cfg = MulticoreConfig::table1().scaled_to(64);
    MergePathSchedule sched = MergePathSchedule::build(a, 64);
    ScheduleCensus census = sched.census(a);

    MulticoreResult r = run_spmm_on_multicore(a, 16, cfg, "mergepath");
    int64_t atomics = 0, stores = 0;
    for (const auto &c : r.cores) {
        atomics += c.atomics;
        stores += c.stores;
    }
    // d=16 at 2 bytes -> a 32-byte row commit = one line op, so op
    // counts equal commit/row-write counts.
    EXPECT_EQ(atomics, census.atomic_commits);
    EXPECT_EQ(stores, census.plain_row_writes);
}

TEST(Integration, StridedGnnAdvisorSpreadsEvilRowAcrossCores)
{
    // One evil row: under the cyclic distribution its groups must be
    // processed by many different cores (the Figure 9 pathology).
    PowerLawParams p;
    p.nodes = 600;
    p.target_nnz = 3000;
    p.max_degree = 500;
    p.seed = 17;
    CsrMatrix a = power_law_graph(p);
    MulticoreConfig cfg = MulticoreConfig::table1().scaled_to(64);
    SpmmAddressMap map =
        SpmmAddressMap::create(a, 16, cfg.value_bytes, cfg.line_bytes);
    auto sources = make_gnnadvisor_trace_sources(a, map, cfg);

    // Find the evil row and its output line.
    index_t evil = 0;
    for (index_t r = 1; r < a.rows(); ++r) {
        if (a.degree(r) > a.degree(evil))
            evil = r;
    }
    uint64_t lo = map.c_row_addr(evil) / cfg.line_bytes;
    uint64_t hi = (map.c_row_addr(evil) + 16 * cfg.value_bytes - 1) /
                  cfg.line_bytes;
    int cores_touching = 0;
    TraceOp op;
    for (auto &src : sources) {
        bool touches = false;
        while (src->next(op)) {
            if (op.kind == TraceOpKind::kAtomicRmw &&
                op.addr / cfg.line_bytes >= lo &&
                op.addr / cfg.line_bytes <= hi) {
                touches = true;
            }
        }
        cores_touching += touches;
    }
    EXPECT_GE(cores_touching, 8)
        << "evil row groups must spread over many cores";
}

TEST(Integration, SimtModelPrefersMergePathOnLowDegreeGraphs)
{
    // email-Euall-like shape: many short rows. The model must show a
    // clear MergePath-SpMM advantage over GNNAdvisor (paper Fig. 4).
    PowerLawParams p;
    p.nodes = 60000;
    p.target_nnz = 95000;
    p.max_degree = 900;
    p.seed = 23;
    CsrMatrix a = power_law_graph(p);
    GpuConfig gpu = GpuConfig::rtx6000();

    double ga = simulate_gpu(
                    build_gnnadvisor_workload(
                        a, 16, 0, GnnAdvisorVariant::kBaseline, gpu),
                    gpu)
                    .microseconds;
    double mp =
        simulate_gpu(build_mergepath_workload(a, 16, 20, gpu), gpu)
            .microseconds;
    EXPECT_GT(ga / mp, 1.3);
}

TEST(Integration, SimtModelKernelOrderingOnStructuredGraphs)
{
    // Structured graph: cuSPARSE (adaptive row kernel) must beat the
    // all-atomic GNNAdvisor (paper Fig. 4 Type II story).
    StructuredParams p;
    p.nodes = 50000;
    p.target_nnz = 105000;
    p.max_degree = 6;
    p.seed = 29;
    CsrMatrix a = structured_graph(p);
    GpuConfig gpu = GpuConfig::rtx6000();

    double ga = simulate_gpu(
                    build_gnnadvisor_workload(
                        a, 16, 0, GnnAdvisorVariant::kBaseline, gpu),
                    gpu)
                    .microseconds;
    double cus =
        simulate_gpu(build_cusparse_workload(a, 16, gpu), gpu)
            .microseconds;
    EXPECT_GT(ga / cus, 1.2);
}

TEST(Integration, DimensionPolicyRoundTrip)
{
    // The launch policy, schedule and kernel agree for every dimension
    // class (smaller / equal / larger than the SIMD width).
    CsrMatrix a = erdos_renyi_graph(500, 3000, 3);
    WorkStealPool pool(4);
    Pcg32 rng(5);
    for (index_t dim : {2, 8, 16, 32, 64, 128}) {
        DenseMatrix b(a.cols(), dim);
        b.fill_random(rng);
        DenseMatrix gold(a.rows(), dim), got(a.rows(), dim);
        reference_spmm(a, b, gold);

        SimdPolicy policy;
        LaunchConfig launch = make_launch_config(
            a.rows(), a.nnz(), dim, default_merge_path_cost(dim),
            policy);
        MergePathSchedule sched =
            MergePathSchedule::build(a, launch.num_threads);
        sched.validate(a);
        mergepath_spmm_parallel(a, b, got, sched, pool);
        ASSERT_TRUE(got.approx_equal(gold, 1e-3, 1e-3)) << "dim " << dim;
    }
}

TEST(Integration, GcnOnStructuredAndPowerLawAgree)
{
    // The same model weights on the same logical graph data must give
    // identical predictions regardless of aggregation kernel, even
    // when the adaptive kernel picks different strategies.
    WorkStealPool pool(4);
    for (int family = 0; family < 2; ++family) {
        CsrMatrix a;
        if (family == 0) {
            StructuredParams sp;
            sp.nodes = 800;
            sp.target_nnz = 1700;
            sp.max_degree = 6;
            sp.seed = 31;
            a = structured_graph(sp);
        } else {
            PowerLawParams pp;
            pp.nodes = 800;
            pp.target_nnz = 4000;
            pp.max_degree = 300;
            pp.seed = 31;
            a = power_law_graph(pp);
        }
        a.normalize_gcn();
        DenseMatrix x(a.rows(), 24);
        Pcg32 rng(9);
        x.fill_random(rng);

        GcnModel ref_model = GcnModel::two_layer(24, 12, 4, 5,
                                                 "reference");
        DenseMatrix expect = ref_model.infer(a, x, pool);
        GcnModel ada_model = GcnModel::two_layer(24, 12, 4, 5,
                                                 "adaptive");
        DenseMatrix got = ada_model.infer(a, x, pool);
        ASSERT_TRUE(got.approx_equal(expect, 1e-3, 1e-3))
            << "family " << family;
    }
}

} // namespace
} // namespace mps
