/** Tests for the Table II dataset registry. */
#include <gtest/gtest.h>

#include "mps/sparse/datasets.h"
#include "mps/sparse/degree_stats.h"

namespace mps {
namespace {

TEST(Datasets, RegistryHasAll23TableIIGraphs)
{
    const auto &specs = all_dataset_specs();
    ASSERT_EQ(specs.size(), 23u);
    int power_law = 0, structured = 0;
    for (const auto &s : specs) {
        (s.type == GraphType::kPowerLaw ? power_law : structured) += 1;
    }
    EXPECT_EQ(power_law, 17);
    EXPECT_EQ(structured, 6);
}

TEST(Datasets, SpecsMatchPaperNumbers)
{
    const auto &cora = find_dataset_spec("Cora");
    EXPECT_EQ(cora.nodes, 2708);
    EXPECT_EQ(cora.nnz, 10556);
    EXPECT_EQ(cora.max_degree, 168);

    const auto &nell = find_dataset_spec("Nell");
    EXPECT_EQ(nell.nodes, 65755);
    EXPECT_EQ(nell.nnz, 251550);
    EXPECT_EQ(nell.max_degree, 4549);

    const auto &yeast = find_dataset_spec("Yeast");
    EXPECT_EQ(yeast.type, GraphType::kStructured);
    EXPECT_EQ(yeast.nodes, 1710902);
}

TEST(Datasets, AvgDegreeConsistentWithCounts)
{
    for (const auto &s : all_dataset_specs()) {
        double avg = static_cast<double>(s.nnz) / s.nodes;
        // Published averages are rounded to one decimal (Pubmed's true
        // ratio is 5.03, printed as 5.1).
        EXPECT_NEAR(avg, s.avg_degree, 0.08)
            << s.name << ": published avg degree inconsistent";
    }
}

TEST(DatasetsDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(find_dataset_spec("NotAGraph"),
                testing::ExitedWithCode(1), "unknown dataset");
}

TEST(Datasets, CoraGeneratesWithExactPublishedStats)
{
    CsrMatrix m = make_dataset("Cora");
    m.validate();
    const auto &spec = find_dataset_spec("Cora");
    EXPECT_EQ(m.rows(), spec.nodes);
    EXPECT_EQ(m.nnz(), spec.nnz);
    DegreeStats s = compute_degree_stats(m);
    EXPECT_EQ(s.max_degree, spec.max_degree);
}

TEST(Datasets, CiteseerGeneratesWithExactPublishedStats)
{
    CsrMatrix m = make_dataset("Citeseer");
    const auto &spec = find_dataset_spec("Citeseer");
    EXPECT_EQ(m.rows(), spec.nodes);
    EXPECT_EQ(m.nnz(), spec.nnz);
    EXPECT_EQ(compute_degree_stats(m).max_degree, spec.max_degree);
}

TEST(Datasets, StructuredProteinsMatchesStats)
{
    CsrMatrix m = make_dataset("PROTEINS_full");
    const auto &spec = find_dataset_spec("PROTEINS_full");
    EXPECT_EQ(m.rows(), spec.nodes);
    EXPECT_EQ(m.nnz(), spec.nnz);
    DegreeStats s = compute_degree_stats(m);
    EXPECT_EQ(s.max_degree, spec.max_degree);
    EXPECT_LT(s.degree_cv, 0.6);
}

TEST(Datasets, GenerationIsDeterministicPerName)
{
    CsrMatrix a = make_dataset("Wiki-Vote");
    CsrMatrix b = make_dataset("Wiki-Vote");
    EXPECT_EQ(a.row_ptr(), b.row_ptr());
    EXPECT_EQ(a.col_idx(), b.col_idx());
}

TEST(Datasets, DifferentNamesDiffer)
{
    CsrMatrix a = make_dataset("Cora");
    CsrMatrix b = make_dataset("Citeseer");
    EXPECT_NE(a.nnz(), b.nnz());
}

/** Scaled stand-ins must be feasible and preserve the graph family. */
class ScaledDatasetTest : public testing::TestWithParam<size_t>
{
};

TEST_P(ScaledDatasetTest, ScaledVersionIsValidAndTyped)
{
    const auto &spec = all_dataset_specs()[GetParam()];
    CsrMatrix m = make_scaled_dataset(spec, 64);
    m.validate();
    EXPECT_GE(m.rows(), 16);
    EXPECT_LE(m.rows(), spec.nodes);
    DegreeStats s = compute_degree_stats(m);
    if (spec.type == GraphType::kPowerLaw && m.rows() > 1000) {
        EXPECT_GT(s.degree_cv, 0.5) << spec.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, ScaledDatasetTest,
                         testing::Range<size_t>(0, 23),
                         [](const testing::TestParamInfo<size_t> &p) {
                             std::string n =
                                 all_dataset_specs()[p.param].name;
                             for (char &c : n) {
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

} // namespace
} // namespace mps
