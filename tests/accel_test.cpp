/** Tests for the AWB-GCN accelerator model. */
#include <gtest/gtest.h>

#include "mps/accel/awb_gcn.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/generate.h"

namespace mps {
namespace {

TEST(AwbGcn, UniformGraphReachesNearIdealUtilization)
{
    CsrMatrix a = erdos_renyi_graph(20000, 100000, 3);
    AwbGcnResult r = simulate_awb_gcn(a, 16);
    EXPECT_GT(r.utilization, 0.6); // default (bounded) tuner budget
    EXPECT_NEAR(r.ideal_load, 100000.0 * 16 / 4096, 1e-6);
    EXPECT_GE(r.balanced_load, r.ideal_load);

    // A generous tuner budget converges close to the ideal balance.
    AwbGcnConfig generous;
    generous.autotune_rounds = 64;
    generous.moves_per_round = 64;
    AwbGcnResult tuned = simulate_awb_gcn(a, 16, generous);
    EXPECT_GT(tuned.utilization, 0.85);
}

TEST(AwbGcn, AutoTunerImprovesOverStaticAssignment)
{
    CsrMatrix a = make_dataset("Nell");
    AwbGcnConfig with;
    AwbGcnConfig without = with;
    without.autotune_rounds = 0;
    AwbGcnResult tuned = simulate_awb_gcn(a, 16, with);
    AwbGcnResult untuned = simulate_awb_gcn(a, 16, without);
    EXPECT_LT(tuned.balanced_load, untuned.balanced_load);
    EXPECT_GT(tuned.adjustments, 0);
    EXPECT_EQ(untuned.adjustments, 0);
}

TEST(AwbGcn, EvilRowFloorLimitsBalance)
{
    // One row dominates: even a perfect tuner cannot spread a single
    // row over more than max_pes_per_row PEs.
    CsrMatrix a = make_dataset("Nell"); // max degree 4549
    AwbGcnConfig cfg;
    AwbGcnResult r = simulate_awb_gcn(a, 16, cfg);
    double floor = 4549.0 * 16 / cfg.max_pes_per_row;
    EXPECT_GE(r.balanced_load, floor * 0.999);
    EXPECT_LT(r.utilization, 0.5) << "Nell must stay under-utilized";
}

TEST(AwbGcn, CyclesScaleWithDimension)
{
    CsrMatrix a = make_dataset("Cora");
    AwbGcnResult d16 = simulate_awb_gcn(a, 16);
    AwbGcnResult d64 = simulate_awb_gcn(a, 64);
    EXPECT_GT(d64.balanced_load, d16.balanced_load * 3.5);
}

TEST(AwbGcn, MicrosecondsUseAcceleratorClock)
{
    CsrMatrix a = make_dataset("Citeseer");
    AwbGcnConfig cfg;
    AwbGcnResult r = simulate_awb_gcn(a, 16, cfg);
    EXPECT_NEAR(r.microseconds, r.cycles / (cfg.clock_ghz * 1e3), 1e-9);
    EXPECT_GT(r.microseconds, 0.0);
}

TEST(AwbGcn, EmptyGraph)
{
    CsrMatrix a(10, 10, std::vector<index_t>(11, 0), {}, {});
    AwbGcnResult r = simulate_awb_gcn(a, 16);
    EXPECT_DOUBLE_EQ(r.balanced_load, 0.0);
    AwbGcnConfig cfg;
    // Only the fixed overhead plus a few cycles of (empty) operand
    // streaming remain.
    EXPECT_NEAR(r.cycles, cfg.fixed_overhead_cycles, 10.0);
}

} // namespace
} // namespace mps
