/** Tests for the SpGEMM substrate and sparse-feature helpers. */
#include <gtest/gtest.h>

#include "mps/gcn/gemm.h"
#include "mps/sparse/generate.h"
#include "mps/sparse/spgemm.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

TEST(Spgemm, HandExample)
{
    // A = [1 2; 0 3], B = [0 4; 5 0]  ->  A*B = [10 4; 15 0]
    CsrMatrix a(2, 2, {0, 2, 3}, {0, 1, 1}, {1, 2, 3});
    CsrMatrix b(2, 2, {0, 1, 2}, {1, 0}, {4, 5});
    CsrMatrix c = spgemm(a, b);
    DenseMatrix d = densify(c);
    EXPECT_FLOAT_EQ(d(0, 0), 10.0f);
    EXPECT_FLOAT_EQ(d(0, 1), 4.0f);
    EXPECT_FLOAT_EQ(d(1, 0), 15.0f);
    EXPECT_FLOAT_EQ(d(1, 1), 0.0f);
    c.validate();
}

TEST(Spgemm, MatchesDenseReference)
{
    CsrMatrix a = erdos_renyi_graph(60, 300, 1);
    CsrMatrix b = erdos_renyi_graph(60, 400, 2);
    DenseMatrix da = densify(a), db = densify(b);
    DenseMatrix expect(60, 60);
    reference_gemm(da, db, expect);
    DenseMatrix got = densify(spgemm(a, b));
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4));
}

TEST(Spgemm, RectangularShapes)
{
    Pcg32 rng(3);
    DenseMatrix da(7, 13), db(13, 5);
    da.fill_random(rng);
    db.fill_random(rng);
    CsrMatrix a = sparsify(da, 0.5f);
    CsrMatrix b = sparsify(db, 0.5f);
    DenseMatrix expect(7, 5);
    reference_gemm(densify(a), densify(b), expect);
    CsrMatrix c = spgemm(a, b);
    EXPECT_EQ(c.rows(), 7);
    EXPECT_EQ(c.cols(), 5);
    EXPECT_TRUE(densify(c).approx_equal(expect, 1e-3, 1e-4));
}

TEST(Spgemm, OutputColumnsSorted)
{
    CsrMatrix a = erdos_renyi_graph(40, 200, 5);
    CsrMatrix c = spgemm(a, a);
    for (index_t r = 0; r < c.rows(); ++r) {
        for (index_t k = c.row_begin(r) + 1; k < c.row_end(r); ++k)
            ASSERT_LT(c.col_idx()[k - 1], c.col_idx()[k]);
    }
}

TEST(Spgemm, ParallelMatchesSequential)
{
    WorkStealPool pool(4);
    PowerLawParams p;
    p.nodes = 700;
    p.target_nnz = 4000;
    p.max_degree = 400;
    p.seed = 7;
    CsrMatrix a = power_law_graph(p);
    CsrMatrix seq = spgemm(a, a);
    CsrMatrix par = spgemm_parallel(a, a, pool);
    EXPECT_EQ(seq.row_ptr(), par.row_ptr());
    EXPECT_EQ(seq.col_idx(), par.col_idx());
    for (size_t i = 0; i < seq.values().size(); ++i)
        ASSERT_NEAR(seq.values()[i], par.values()[i], 1e-4);
}

TEST(Spgemm, EmptyOperands)
{
    CsrMatrix empty(4, 4, {0, 0, 0, 0, 0}, {}, {});
    CsrMatrix a = erdos_renyi_graph(4, 8, 9);
    EXPECT_EQ(spgemm(empty, a).nnz(), 0);
    EXPECT_EQ(spgemm(a, empty).nnz(), 0);
}

TEST(SpgemmDeathTest, DimensionMismatch)
{
    CsrMatrix a(2, 3, {0, 0, 0}, {}, {});
    CsrMatrix b(2, 2, {0, 0, 0}, {}, {});
    EXPECT_DEATH(spgemm(a, b), "inner dimensions");
}

TEST(SparseDense, MatchesDenseGemm)
{
    WorkStealPool pool(3);
    Pcg32 rng(5);
    DenseMatrix dx(300, 40), w(40, 16);
    dx.fill_random(rng);
    w.fill_random(rng);
    CsrMatrix x = sparsify(dx, 0.6f); // moderately sparse features
    DenseMatrix expect(300, 16), got(300, 16);
    reference_gemm(densify(x), w, expect);
    sparse_dense_matmul(x, w, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4));
}

TEST(Prune, RemovesSmallEntries)
{
    CsrMatrix m(2, 3, {0, 2, 3}, {0, 2, 1}, {0.05f, -2.0f, 0.0f});
    CsrMatrix pruned = prune(m, 0.1f);
    EXPECT_EQ(pruned.nnz(), 1);
    EXPECT_FLOAT_EQ(pruned.values()[0], -2.0f);
    EXPECT_EQ(pruned.rows(), 2);
    EXPECT_EQ(pruned.cols(), 3);
}

TEST(SparsifyDensify, RoundTrip)
{
    Pcg32 rng(8);
    DenseMatrix d(20, 30);
    d.fill_random(rng);
    CsrMatrix s = sparsify(d);
    EXPECT_TRUE(densify(s).approx_equal(d, 1e-7, 1e-7));
    // Thresholded version drops small entries.
    CsrMatrix st = sparsify(d, 0.9f);
    EXPECT_LT(st.nnz(), s.nnz());
}

TEST(Spgemm, TwoHopNeighborhoodInterpretation)
{
    // A^2 of an adjacency matrix counts 2-hop paths: verify on a
    // 3-cycle, where every node reaches itself in 2 hops two ways...
    // (directed cycle: exactly one 2-hop path i -> i+2).
    CsrMatrix cycle(3, 3, {0, 1, 2, 3}, {1, 2, 0}, {1, 1, 1});
    CsrMatrix two_hop = spgemm(cycle, cycle);
    DenseMatrix d = densify(two_hop);
    EXPECT_FLOAT_EQ(d(0, 2), 1.0f);
    EXPECT_FLOAT_EQ(d(1, 0), 1.0f);
    EXPECT_FLOAT_EQ(d(2, 1), 1.0f);
    EXPECT_EQ(two_hop.nnz(), 3);
}

} // namespace
} // namespace mps
