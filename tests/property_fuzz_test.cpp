/**
 * Randomized differential tests: many seeds, random shapes (including
 * degenerate ones), every result checked against a trivially correct
 * reference. These sweep the corner cases the directed tests might
 * miss — empty rows at partition boundaries, single-column matrices,
 * thread counts far above the work size.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numeric>

#include "mps/core/fusion.h"
#include "mps/core/hybrid.h"
#include "mps/core/spmm.h"
#include "mps/core/spmv.h"
#include "mps/gcn/activation.h"
#include "mps/gcn/gemm.h"
#include "mps/sparse/delta_csr.h"
#include "mps/sparse/reorder.h"
#include "mps/sparse/spgemm.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

/** Random CSR with arbitrary (possibly degenerate) shape. */
CsrMatrix
random_csr(Pcg32 &rng, index_t max_rows = 60, index_t max_cols = 60)
{
    index_t rows = 1 + static_cast<index_t>(
                       rng.next_below(static_cast<uint32_t>(max_rows)));
    index_t cols = 1 + static_cast<index_t>(
                       rng.next_below(static_cast<uint32_t>(max_cols)));
    std::vector<index_t> row_ptr(static_cast<size_t>(rows) + 1, 0);
    std::vector<index_t> col_idx;
    std::vector<value_t> values;
    for (index_t r = 0; r < rows; ++r) {
        // Degrees biased toward 0 and occasionally huge (evil row).
        index_t degree = 0;
        uint32_t dice = rng.next_below(10);
        if (dice >= 4 && dice < 9) {
            degree = static_cast<index_t>(rng.next_below(4));
        } else if (dice == 9) {
            degree = static_cast<index_t>(
                rng.next_below(static_cast<uint32_t>(cols)));
        }
        for (index_t k = 0; k < degree; ++k) {
            col_idx.push_back(static_cast<index_t>(
                rng.next_below(static_cast<uint32_t>(cols))));
            values.push_back(rng.next_float(-1.0f, 1.0f));
        }
        row_ptr[static_cast<size_t>(r) + 1] =
            static_cast<index_t>(col_idx.size());
    }
    return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

class FuzzTest : public testing::TestWithParam<int>
{
};

/**
 * Feature dims for SpMM fuzzing: mostly small random widths, but
 * regularly the microkernel specialization boundaries (16/32/64) and
 * their off-by-one neighbours, which exercise the fixed-dimension SIMD
 * tables and the generic path's vector tails.
 */
index_t
fuzz_dim(Pcg32 &rng)
{
    static const index_t boundary[] = {15, 16, 17, 31, 32, 33,
                                       63, 64, 65};
    if (rng.next_below(2) == 0)
        return boundary[rng.next_below(
            static_cast<uint32_t>(std::size(boundary)))];
    return 1 + static_cast<index_t>(rng.next_below(20));
}

TEST_P(FuzzTest, ScheduleAndSpmmAgainstReference)
{
    Pcg32 rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
    WorkStealPool pool(3);
    for (int iter = 0; iter < 8; ++iter) {
        CsrMatrix a = random_csr(rng);
        index_t dim = fuzz_dim(rng);
        DenseMatrix b(a.cols(), dim);
        b.fill_random(rng);
        DenseMatrix expect(a.rows(), dim);
        reference_spmm(a, b, expect);

        index_t threads = 1 + static_cast<index_t>(rng.next_below(300));
        MergePathSchedule sched = MergePathSchedule::build(a, threads);
        sched.validate(a);

        ScheduleCensus census = sched.census(a);
        ASSERT_EQ(census.atomic_nnz + census.plain_nnz, a.nnz());

        DenseMatrix seq(a.rows(), dim), par(a.rows(), dim);
        mergepath_spmm_sequential(a, b, seq, sched);
        ASSERT_TRUE(seq.approx_equal(expect, 1e-3, 1e-3))
            << "seed " << GetParam() << " iter " << iter;
        mergepath_spmm_parallel(a, b, par, sched, pool);
        ASSERT_TRUE(par.approx_equal(expect, 1e-3, 1e-3))
            << "seed " << GetParam() << " iter " << iter;
    }
}

/**
 * Hybrid-dispatch parity across random degree mixes: the two-phase
 * schedule (dense bands + compacted tail) must agree with the
 * reference on arbitrary shapes, including empty rows, evil rows and
 * unsorted columns. Runs under MPS_HYBRID=0 too, where the schedule
 * degenerates to plain merge-path — parity must hold either way.
 */
TEST_P(FuzzTest, HybridSpmmAgainstReference)
{
    Pcg32 rng(static_cast<uint64_t>(GetParam()) * 4099 + 7);
    WorkStealPool pool(3);
    for (int iter = 0; iter < 8; ++iter) {
        CsrMatrix a = random_csr(rng);
        index_t dim = fuzz_dim(rng);
        DenseMatrix b(a.cols(), dim);
        b.fill_random(rng);
        DenseMatrix expect(a.rows(), dim);
        reference_spmm(a, b, expect);

        // Random costs push rows across the long-row threshold and
        // vary the tail share count.
        index_t cost = 1 + static_cast<index_t>(rng.next_below(60));
        HybridSchedule hs = HybridSchedule::build(a, cost);

        // Partition invariants: bands sorted, disjoint, counts add up.
        index_t band_rows = 0;
        int64_t band_nnz = 0;
        index_t prev_end = 0;
        for (const RowBand &band : hs.partition().bands) {
            ASSERT_LE(prev_end, band.begin);
            ASSERT_LT(band.begin, band.end);
            ASSERT_LE(band.end, a.rows());
            band_rows += band.end - band.begin;
            band_nnz += a.row_begin(band.end) - a.row_begin(band.begin);
            prev_end = band.end;
        }
        ASSERT_EQ(band_rows, hs.partition().dense_rows);
        ASSERT_EQ(band_nnz, hs.partition().dense_nnz);
        if (hs.has_tail() && !hs.tail_is_base()) {
            ASSERT_EQ(hs.tail().rows() + hs.partition().dense_rows,
                      a.rows());
            ASSERT_EQ(hs.tail().nnz() + hs.partition().dense_nnz,
                      a.nnz());
        }

        DenseMatrix seq(a.rows(), dim), par(a.rows(), dim);
        hybrid_spmm_sequential(a, hs, b, seq);
        ASSERT_TRUE(seq.approx_equal(expect, 1e-3, 1e-3))
            << "seed " << GetParam() << " iter " << iter;
        hybrid_spmm_parallel(a, hs, b, par, pool);
        ASSERT_TRUE(par.approx_equal(expect, 1e-3, 1e-3))
            << "seed " << GetParam() << " iter " << iter;
    }
}

TEST_P(FuzzTest, SpmvAgainstReference)
{
    Pcg32 rng(static_cast<uint64_t>(GetParam()) * 104729 + 3);
    WorkStealPool pool(2);
    for (int iter = 0; iter < 8; ++iter) {
        CsrMatrix a = random_csr(rng);
        std::vector<value_t> x(static_cast<size_t>(a.cols()));
        for (auto &v : x)
            v = rng.next_float(-1.0f, 1.0f);
        std::vector<value_t> expect, got;
        reference_spmv(a, x, expect);
        index_t threads = 1 + static_cast<index_t>(rng.next_below(100));
        MergePathSchedule sched = MergePathSchedule::build(a, threads);
        mergepath_spmv(a, x, got, sched, pool);
        for (size_t i = 0; i < expect.size(); ++i)
            ASSERT_NEAR(got[i], expect[i], 1e-3)
                << "seed " << GetParam() << " iter " << iter;
    }
}

TEST_P(FuzzTest, SpgemmAgainstDense)
{
    Pcg32 rng(static_cast<uint64_t>(GetParam()) * 31 + 17);
    for (int iter = 0; iter < 4; ++iter) {
        CsrMatrix a = random_csr(rng, 25, 25);
        // b's rows must equal a's cols.
        CsrMatrix b;
        {
            Pcg32 rng2(rng.next_u64());
            CsrMatrix candidate = random_csr(rng2, 25, 25);
            // Rebuild with matching inner dimension.
            std::vector<index_t> row_ptr(
                static_cast<size_t>(a.cols()) + 1, 0);
            std::vector<index_t> cols;
            std::vector<value_t> vals;
            for (index_t r = 0; r < a.cols(); ++r) {
                index_t deg = static_cast<index_t>(rng2.next_below(4));
                for (index_t k = 0; k < deg; ++k) {
                    cols.push_back(static_cast<index_t>(
                        rng2.next_below(
                            static_cast<uint32_t>(candidate.cols()))));
                    vals.push_back(rng2.next_float(-1.0f, 1.0f));
                }
                row_ptr[static_cast<size_t>(r) + 1] =
                    static_cast<index_t>(cols.size());
            }
            b = CsrMatrix(a.cols(), candidate.cols(), std::move(row_ptr),
                          std::move(cols), std::move(vals));
        }
        CsrMatrix c = spgemm(a, b);
        c.validate();
        DenseMatrix dense_expect(a.rows(), b.cols());
        DenseMatrix da = densify(a), db = densify(b);
        for (index_t i = 0; i < a.rows(); ++i) {
            for (index_t j = 0; j < b.cols(); ++j) {
                value_t sum = 0.0f;
                for (index_t k = 0; k < a.cols(); ++k)
                    sum += da(i, k) * db(k, j);
                dense_expect(i, j) = sum;
            }
        }
        ASSERT_TRUE(densify(c).approx_equal(dense_expect, 1e-3, 1e-3))
            << "seed " << GetParam() << " iter " << iter;
    }
}

TEST_P(FuzzTest, PermutationInverseRoundTrip)
{
    Pcg32 rng(static_cast<uint64_t>(GetParam()) * 13 + 5);
    for (int iter = 0; iter < 4; ++iter) {
        // Square matrix for symmetric permutation.
        CsrMatrix raw = random_csr(rng, 40, 40);
        index_t n = std::min(raw.rows(), raw.cols());
        // Crop to square by rebuilding.
        std::vector<index_t> row_ptr(static_cast<size_t>(n) + 1, 0);
        std::vector<index_t> cols;
        std::vector<value_t> vals;
        for (index_t r = 0; r < n; ++r) {
            for (index_t k = raw.row_begin(r); k < raw.row_end(r); ++k) {
                if (raw.col_idx()[k] < n) {
                    cols.push_back(raw.col_idx()[k]);
                    vals.push_back(raw.values()[k]);
                }
            }
            row_ptr[static_cast<size_t>(r) + 1] =
                static_cast<index_t>(cols.size());
        }
        CsrMatrix a(n, n, std::move(row_ptr), std::move(cols),
                    std::move(vals));
        // Normalize row ordering (permute sorts columns per row).
        std::vector<index_t> identity(static_cast<size_t>(n));
        std::iota(identity.begin(), identity.end(), 0);
        a = permute_symmetric(a, identity);

        // Random permutation, apply, apply inverse: back to original.
        std::vector<index_t> perm(static_cast<size_t>(n));
        std::iota(perm.begin(), perm.end(), 0);
        for (size_t i = perm.size(); i > 1; --i)
            std::swap(perm[i - 1],
                      perm[rng.next_below(static_cast<uint32_t>(i))]);
        std::vector<index_t> inverse(perm.size());
        for (index_t old_id = 0; old_id < n; ++old_id)
            inverse[static_cast<size_t>(
                perm[static_cast<size_t>(old_id)])] = old_id;

        CsrMatrix forth = permute_symmetric(a, perm);
        CsrMatrix back = permute_symmetric(forth, inverse);
        ASSERT_EQ(back.row_ptr(), a.row_ptr());
        ASSERT_EQ(back.col_idx(), a.col_idx());
    }
}

/**
 * Random strictly-valid CSR (sorted, duplicate-free columns) with small
 * INTEGER values: every SpMM partial sum is an integer well inside
 * 2^24, so accumulation order cannot change the result and dynamic /
 * repaired execution can be compared bit-for-bit against references.
 */
CsrMatrix
random_strict_csr(Pcg32 &rng, index_t max_rows = 50,
                  index_t max_cols = 50)
{
    index_t rows = 1 + static_cast<index_t>(
                       rng.next_below(static_cast<uint32_t>(max_rows)));
    index_t cols = 1 + static_cast<index_t>(
                       rng.next_below(static_cast<uint32_t>(max_cols)));
    std::vector<index_t> row_ptr(static_cast<size_t>(rows) + 1, 0);
    std::vector<index_t> col_idx;
    std::vector<value_t> values;
    std::vector<uint8_t> used(static_cast<size_t>(cols));
    for (index_t r = 0; r < rows; ++r) {
        std::fill(used.begin(), used.end(), 0);
        index_t degree = static_cast<index_t>(rng.next_below(
            static_cast<uint32_t>(std::min<index_t>(cols, 8)) + 1));
        for (index_t k = 0; k < degree; ++k)
            used[rng.next_below(static_cast<uint32_t>(cols))] = 1;
        for (index_t c = 0; c < cols; ++c) {
            if (used[static_cast<size_t>(c)] == 0)
                continue;
            col_idx.push_back(c);
            values.push_back(static_cast<value_t>(
                static_cast<int32_t>(rng.next_below(7)) - 3));
        }
        row_ptr[static_cast<size_t>(r) + 1] =
            static_cast<index_t>(col_idx.size());
    }
    return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

GraphDelta
random_delta(Pcg32 &rng, index_t rows, index_t cols, int edges)
{
    GraphDelta delta;
    for (int i = 0; i < edges; ++i) {
        EdgeUpdate e;
        e.row = static_cast<index_t>(
            rng.next_below(static_cast<uint32_t>(rows)));
        e.col = static_cast<index_t>(
            rng.next_below(static_cast<uint32_t>(cols)));
        e.value = static_cast<value_t>(
            static_cast<int32_t>(rng.next_below(9)) - 4);
        if (rng.next_below(4) == 0)
            delta.removes.push_back(e);
        else
            delta.upserts.push_back(e);
    }
    return delta;
}

void
fill_integer_dense(DenseMatrix &m, Pcg32 &rng)
{
    for (index_t r = 0; r < m.rows(); ++r)
        for (index_t c = 0; c < m.cols(); ++c)
            m(r, c) = static_cast<value_t>(
                static_cast<int32_t>(rng.next_below(7)) - 3);
}

void
expect_bitwise_equal(const DenseMatrix &got, const DenseMatrix &want,
                     int seed, int iter, const char *what)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (index_t r = 0; r < got.rows(); ++r)
        for (index_t c = 0; c < got.cols(); ++c)
            ASSERT_EQ(got(r, c), want(r, c))
                << what << " differs at (" << r << ", " << c
                << "), seed " << seed << " iter " << iter;
}

/**
 * Dynamic-graph equivalence: base-SpMM + correction pass over a
 * DeltaCsr must be BIT-identical to plain SpMM over the eagerly
 * rebuilt (materialized) CSR, batch after batch, and the incrementally
 * repaired schedule must reproduce a fresh build's results after every
 * compaction.
 */
TEST_P(FuzzTest, DynamicSpmmMatchesMaterializedCsr)
{
    Pcg32 rng(static_cast<uint64_t>(GetParam()) * 6151 + 11);
    WorkStealPool pool(3);
    for (int iter = 0; iter < 4; ++iter) {
        CsrMatrix base = random_strict_csr(rng);
        DeltaCsr dcsr(base);
        index_t dim = fuzz_dim(rng);
        DenseMatrix b(base.cols(), dim);
        fill_integer_dense(b, rng);

        index_t threads = 1 + static_cast<index_t>(rng.next_below(40));
        MergePathSchedule sched = MergePathSchedule::build(base, threads);

        for (int batch = 0; batch < 3; ++batch) {
            dcsr.apply(random_delta(rng, dcsr.rows(), dcsr.cols(),
                                    1 + static_cast<int>(
                                            rng.next_below(10))));
            dcsr.validate();
            CsrMatrix rebuilt = dcsr.materialize();
            rebuilt.validate(CsrValidate::kStrict);
            ASSERT_EQ(rebuilt.nnz(), dcsr.nnz());
            DenseMatrix expect(base.rows(), dim);
            reference_spmm(rebuilt, b, expect);

            // The schedule built for the ORIGINAL base stays valid
            // across every apply(): only compaction swaps the base.
            DenseMatrix seq(base.rows(), dim);
            dynamic_spmm_sequential(dcsr, b, seq, sched);
            expect_bitwise_equal(seq, expect, GetParam(), iter,
                                 "dynamic sequential");
            DenseMatrix par(base.rows(), dim);
            dynamic_spmm_parallel(dcsr, b, par, sched, pool);
            expect_bitwise_equal(par, expect, GetParam(), iter,
                                 "dynamic parallel");
        }

        // Compact, repair the schedule, and check the repaired plan
        // against a fresh build on the new base — bit-for-bit.
        DeltaCsr::CompactResult cr = dcsr.compact();
        EXPECT_EQ(dcsr.delta_edges(), 0);
        ScheduleRepair rep = repair_schedule(
            sched, *cr.old_base, *cr.new_base, cr.first_dirty_row);
        const CsrMatrix &fresh_a = *cr.new_base;
        rep.schedule.validate(fresh_a);
        DenseMatrix expect(fresh_a.rows(), dim);
        reference_spmm(fresh_a, b, expect);
        DenseMatrix repaired(fresh_a.rows(), dim);
        mergepath_spmm_parallel(fresh_a, b, repaired, rep.schedule,
                                pool);
        expect_bitwise_equal(repaired, expect, GetParam(), iter,
                             "repaired schedule");
        MergePathSchedule fresh_sched =
            MergePathSchedule::build(fresh_a, threads);
        DenseMatrix fresh(fresh_a.rows(), dim);
        mergepath_spmm_parallel(fresh_a, b, fresh, fresh_sched, pool);
        expect_bitwise_equal(fresh, repaired, GetParam(), iter,
                             "fresh vs repaired");
        // Census decomposability on the repaired schedule.
        ScheduleCensusPart left = rep.schedule.census_part(
            fresh_a, 0, rep.dirty_begin);
        ScheduleCensusPart right = rep.schedule.census_part(
            fresh_a, rep.dirty_begin, rep.schedule.num_threads());
        ScheduleCensus full = rep.schedule.census(fresh_a);
        ScheduleCensus merged = left.merged(right).counts;
        EXPECT_EQ(merged.atomic_commits, full.atomic_commits);
        EXPECT_EQ(merged.plain_row_writes, full.plain_row_writes);
        EXPECT_EQ(merged.split_rows, full.split_rows);
        EXPECT_EQ(merged.atomic_nnz, full.atomic_nnz);
        EXPECT_EQ(merged.plain_nnz, full.plain_nnz);
    }
}

/**
 * Fused-vs-unfused differential fuzz: random strict graphs, random
 * panel widths (including misaligned ones), random thread counts.
 * Integer-valued operands make every partial sum exact, so panel
 * splits and atomic commit order cannot change the result — the fused
 * pipeline must be BIT-identical to dense_gemm -> SpMM -> activation.
 */
TEST_P(FuzzTest, FusedForwardMatchesUnfused)
{
    Pcg32 rng(static_cast<uint64_t>(GetParam()) * 2017 + 29);
    WorkStealPool pool(3);
    for (int iter = 0; iter < 6; ++iter) {
        CsrMatrix a = random_strict_csr(rng);
        index_t f = 1 + static_cast<index_t>(rng.next_below(24));
        index_t dim = fuzz_dim(rng);
        DenseMatrix x(a.cols(), f), w(f, dim);
        fill_integer_dense(x, rng);
        fill_integer_dense(w, rng);

        DenseMatrix xw(a.cols(), dim);
        dense_gemm(x, w, xw, pool);
        index_t threads = 1 + static_cast<index_t>(rng.next_below(60));
        MergePathSchedule sched = MergePathSchedule::build(a, threads);
        DenseMatrix expect(a.rows(), dim);
        mergepath_spmm_parallel(a, xw, expect, sched, pool);
        apply_activation(expect, Activation::kRelu);

        SpmmLocality loc;
        loc.tile_d = 1 + static_cast<index_t>(rng.next_below(
                             static_cast<uint32_t>(dim) + 4));
        FusedLayerPlan plan(a, dim, borrow_schedule(sched), loc);
        DenseMatrix got(a.rows(), dim);
        plan.run(gemm_panel_source(x, w, pool), got, pool,
                 activation_epilogue(Activation::kRelu));
        expect_bitwise_equal(got, expect, GetParam(), iter,
                             "fused forward");

        // Streaming mode re-derives the same panels.
        DenseMatrix streamed(a.rows(), dim);
        streamed.fill(-1.0f);
        plan.run_streaming(
            gemm_panel_source(x, w, pool),
            [&](index_t col0, index_t width, const DenseMatrix &hp) {
                for (index_t r = 0; r < a.rows(); ++r)
                    for (index_t c = 0; c < width; ++c)
                        streamed(r, col0 + c) = hp(r, c);
            },
            pool, activation_epilogue(Activation::kRelu));
        expect_bitwise_equal(streamed, expect, GetParam(), iter,
                             "fused streaming");
    }
}

/**
 * Quantized SpMM stays within the analytically derived bound: for
 * output element (r, c), |c_f32 - c_quant| <= sum over the row's
 * non-zeros of |a_rk| * |b(col_k, c) - decode(encode(b(col_k, c)))|.
 * The per-element quantization error is computed exactly from the
 * shadow storage, so the only slack needed is fp32 accumulation-order
 * noise. Exercises the full mergepath pipeline at bf16 and int8 on
 * random (degenerate-shape) graphs.
 */
TEST_P(FuzzTest, QuantizedSpmmWithinBound)
{
    Pcg32 rng(static_cast<uint64_t>(GetParam()) * 911 + 13);
    WorkStealPool pool(3);
    for (int iter = 0; iter < 5; ++iter) {
        CsrMatrix a = random_csr(rng);
        index_t dim = fuzz_dim(rng);
        DenseMatrix b(a.cols(), dim);
        b.fill_random(rng);
        DenseMatrix expect(a.rows(), dim);
        reference_spmm(a, b, expect);

        index_t threads = 1 + static_cast<index_t>(rng.next_below(60));
        MergePathSchedule sched = MergePathSchedule::build(a, threads);

        for (StorageMode mode :
             {StorageMode::kBf16, StorageMode::kInt8}) {
            b.quantize(mode);
            // Exact per-element quantization error of the B operand.
            DenseMatrix qerr(b.rows(), dim);
            for (index_t r = 0; r < b.rows(); ++r) {
                for (index_t c = 0; c < dim; ++c) {
                    const value_t decoded =
                        mode == StorageMode::kBf16
                            ? bf16_decode(b.row_bf16(r)[c])
                            : int8_decode(b.row_int8(r)[c],
                                          b.quant_scale(r),
                                          b.quant_zero(r));
                    qerr(r, c) = std::fabs(b(r, c) - decoded);
                }
            }
            DenseMatrix got(a.rows(), dim);
            mergepath_spmm_parallel(a, b, got, sched, pool);
            for (index_t r = 0; r < a.rows(); ++r) {
                for (index_t c = 0; c < dim; ++c) {
                    value_t bound = 0.0f;
                    for (index_t k = a.row_begin(r); k < a.row_end(r);
                         ++k)
                        bound += std::fabs(a.values()[k]) *
                                 qerr(a.col_idx()[k], c);
                    const value_t slack =
                        1e-3f + 1e-3f * std::fabs(expect(r, c));
                    ASSERT_LE(std::fabs(got(r, c) - expect(r, c)),
                              bound + slack)
                        << storage_mode_name(mode) << " at (" << r
                        << ", " << c << "), seed " << GetParam()
                        << " iter " << iter;
                }
            }
        }
        b.quantize(StorageMode::kF32);
    }
}

/**
 * fp32 bit-identity: attaching and releasing narrow shadow storage
 * must leave the fp32 master — and therefore every f32-mode kernel
 * output — BIT-identical to a matrix that was never quantized. This
 * pins the acceptance criterion that the default path's numerics are
 * untouched by the mixed-precision machinery.
 */
TEST_P(FuzzTest, QuantizeRoundTripKeepsF32BitIdentity)
{
    Pcg32 rng(static_cast<uint64_t>(GetParam()) * 977 + 5);
    WorkStealPool pool(3);
    for (int iter = 0; iter < 5; ++iter) {
        CsrMatrix a = random_csr(rng);
        index_t dim = fuzz_dim(rng);
        DenseMatrix b(a.cols(), dim);
        b.fill_random(rng);

        index_t threads = 1 + static_cast<index_t>(rng.next_below(60));
        MergePathSchedule sched = MergePathSchedule::build(a, threads);
        DenseMatrix before(a.rows(), dim);
        mergepath_spmm_parallel(a, b, before, sched, pool);

        // Round-trip through both narrow modes back to f32.
        b.quantize(StorageMode::kBf16);
        b.quantize(StorageMode::kInt8);
        b.quantize(StorageMode::kF32);
        EXPECT_EQ(b.storage(), StorageMode::kF32);

        DenseMatrix after(a.rows(), dim);
        mergepath_spmm_parallel(a, b, after, sched, pool);
        expect_bitwise_equal(after, before, GetParam(), iter,
                             "f32 after quantize round-trip");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, testing::Range(1, 13));

} // namespace
} // namespace mps
