/** Tests for the Table I multicore model: caches, NoC, coherence. */
#include <gtest/gtest.h>

#include <memory>

#include "mps/multicore/cache.h"
#include "mps/multicore/config.h"
#include "mps/multicore/noc.h"
#include "mps/multicore/system.h"
#include "mps/multicore/tracegen.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/generate.h"

namespace mps {
namespace {

/** Replays a pre-built vector of ops (for protocol-level tests). */
class VectorTraceSource final : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceOp> ops)
        : ops_(std::move(ops))
    {
    }

    bool
    next(TraceOp &op) override
    {
        if (pos_ >= ops_.size())
            return false;
        op = ops_[pos_++];
        return true;
    }

  private:
    std::vector<TraceOp> ops_;
    size_t pos_ = 0;
};

MulticoreConfig
tiny_config(int cores = 16)
{
    return MulticoreConfig::table1().scaled_to(cores);
}

std::vector<std::unique_ptr<TraceSource>>
idle_sources(int cores)
{
    std::vector<std::unique_ptr<TraceSource>> s;
    for (int i = 0; i < cores; ++i)
        s.push_back(std::make_unique<VectorTraceSource>(
            std::vector<TraceOp>{}));
    return s;
}

TEST(CacheArray, HitAfterFill)
{
    CacheArray cache(4096, 4, 64);
    EXPECT_EQ(cache.lookup(0x100), LineState::kInvalid);
    cache.fill(0x100, LineState::kShared);
    EXPECT_EQ(cache.lookup(0x100), LineState::kShared);
    EXPECT_EQ(cache.lookup(0x108), LineState::kShared); // same line
    EXPECT_EQ(cache.lookup(0x140), LineState::kInvalid); // next line
}

TEST(CacheArray, LruEvictsOldest)
{
    // 4 sets x 2 ways of 64B lines = 512B cache.
    CacheArray cache(512, 2, 64);
    // Three lines mapping to set 0 (stride = sets * line = 256).
    cache.fill(0x000, LineState::kShared);
    cache.fill(0x100, LineState::kShared);
    cache.touch(0x000); // make 0x100 the LRU way
    CacheFillResult r = cache.fill(0x200, LineState::kShared);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evicted_addr, 0x100u);
    EXPECT_FALSE(r.evicted_dirty);
    EXPECT_EQ(cache.lookup(0x000), LineState::kShared);
}

TEST(CacheArray, DirtyEvictionReported)
{
    CacheArray cache(128, 1, 64); // 2 sets x 1 way
    cache.fill(0x000, LineState::kModified);
    CacheFillResult r = cache.fill(0x080, LineState::kShared); // set 0
    EXPECT_TRUE(r.evicted);
    EXPECT_TRUE(r.evicted_dirty);
    EXPECT_EQ(r.evicted_addr, 0x0u);
}

TEST(CacheArray, InvalidateAndStateChange)
{
    CacheArray cache(4096, 4, 64);
    cache.fill(0x40, LineState::kShared);
    cache.set_state(0x40, LineState::kModified);
    EXPECT_EQ(cache.lookup(0x40), LineState::kModified);
    cache.invalidate(0x40);
    EXPECT_EQ(cache.lookup(0x40), LineState::kInvalid);
    cache.invalidate(0x40); // no-op on absent line
}

TEST(MeshNoc, DistanceAndBaseLatency)
{
    MulticoreConfig cfg = tiny_config(16); // 4x4 mesh
    MeshNoc noc(16, cfg);
    EXPECT_EQ(noc.distance(0, 0), 0);
    EXPECT_EQ(noc.distance(0, 3), 3);  // along the top row
    EXPECT_EQ(noc.distance(0, 15), 6); // opposite corner
    // Uncontended single-flit message: hops * 2 cycles.
    EXPECT_DOUBLE_EQ(noc.route(0, 3, 1, 0.0), 6.0);
    // Local delivery is free.
    EXPECT_DOUBLE_EQ(noc.route(5, 5, 9, 100.0), 100.0);
}

TEST(MeshNoc, LinkContentionSerializes)
{
    MulticoreConfig cfg = tiny_config(16);
    MeshNoc noc(16, cfg);
    // A link carries one flit per cycle. Saturate the first link's
    // 64-cycle bandwidth window with 9-flit messages: the eighth
    // message (flits 64..72) no longer fits and slips to the next
    // window.
    double first = noc.route(0, 1, 9, 0.0);
    EXPECT_DOUBLE_EQ(first, 2.0 + 8.0);
    double last = first;
    for (int i = 0; i < 7; ++i)
        last = noc.route(0, 1, 9, 0.0);
    EXPECT_GE(last, 64.0);
    EXPECT_GT(noc.link_occupancy(), 0.0);
}

TEST(MulticoreConfig, ScalingPreservesTotals)
{
    MulticoreConfig base = MulticoreConfig::table1();
    MulticoreConfig small = base.scaled_to(64);
    EXPECT_EQ(small.num_cores, 64);
    EXPECT_EQ(small.l1_bytes * 64, base.l1_bytes * 1024);
    EXPECT_EQ(small.l2_slice_bytes * 64, base.l2_slice_bytes * 1024);
    EXPECT_EQ(small.num_mem_controllers, 2);
    // Total bandwidth constant: per-controller service scales down.
    double total_base = base.num_mem_controllers /
                        base.dram_line_service_cycles();
    double total_small = small.num_mem_controllers /
                         small.dram_line_service_cycles();
    EXPECT_NEAR(total_base, total_small, 1e-9);
}

TEST(MulticoreSystem, ColdMissThenHit)
{
    MulticoreConfig cfg = tiny_config(16);
    auto sources = idle_sources(16);
    std::vector<TraceOp> ops{
        {TraceOpKind::kLoad, 0, 0x100000},
        {TraceOpKind::kLoad, 0, 0x100008}, // same line: L1 hit
    };
    sources[0] = std::make_unique<VectorTraceSource>(ops);
    MulticoreSystem sys(cfg);
    MulticoreResult r = sys.run(std::move(sources));
    const CoreStats &c0 = r.cores[0];
    EXPECT_EQ(c0.l1_misses, 1);
    EXPECT_EQ(c0.l1_hits, 1);
    EXPECT_EQ(r.total_dram_lines, 1);
    // Cold miss pays at least the DRAM latency; the hit costs 1 cycle.
    EXPECT_GT(c0.memory_cycles, cfg.dram_latency_cycles());
    EXPECT_LT(c0.memory_cycles,
              cfg.dram_latency_cycles() + 200.0);
}

TEST(MulticoreSystem, DirtyForwardBetweenCores)
{
    MulticoreConfig cfg = tiny_config(16);
    auto sources = idle_sources(16);
    // Core 0 writes a line; core 1 then reads it: 3-hop forward.
    sources[0] = std::make_unique<VectorTraceSource>(
        std::vector<TraceOp>{{TraceOpKind::kStore, 0, 0x200000}});
    sources[1] = std::make_unique<VectorTraceSource>(
        std::vector<TraceOp>{{TraceOpKind::kCompute, 2000, 0},
                             {TraceOpKind::kLoad, 0, 0x200000}});
    MulticoreSystem sys(cfg);
    MulticoreResult r = sys.run(std::move(sources));
    EXPECT_EQ(r.total_forwards, 1);
}

TEST(MulticoreSystem, StoreInvalidatesSharers)
{
    MulticoreConfig cfg = tiny_config(16);
    auto sources = idle_sources(16);
    // Cores 1..3 read the line, then core 0 writes it.
    for (int c = 1; c <= 3; ++c) {
        sources[static_cast<size_t>(c)] =
            std::make_unique<VectorTraceSource>(
                std::vector<TraceOp>{{TraceOpKind::kLoad, 0, 0x300000}});
    }
    sources[0] = std::make_unique<VectorTraceSource>(
        std::vector<TraceOp>{{TraceOpKind::kCompute, 5000, 0},
                             {TraceOpKind::kStore, 0, 0x300000}});
    MulticoreSystem sys(cfg);
    MulticoreResult r = sys.run(std::move(sources));
    EXPECT_GE(r.total_invalidations, 3);
}

TEST(MulticoreSystem, AtomicPingPongSerializes)
{
    MulticoreConfig cfg = tiny_config(16);
    auto sources = idle_sources(16);
    // Two cores take turns atomically updating the same line (compute
    // between the atomics forces real interleaving): ownership must
    // bounce (sharing misses), unlike private-line atomics.
    std::vector<TraceOp> hammer, private_ops;
    for (int i = 0; i < 20; ++i) {
        hammer.push_back({TraceOpKind::kAtomicRmw, 0, 0x400000});
        hammer.push_back({TraceOpKind::kCompute, 200, 0});
        private_ops.push_back({TraceOpKind::kAtomicRmw, 0, 0x500000});
        private_ops.push_back({TraceOpKind::kCompute, 200, 0});
    }
    sources[0] = std::make_unique<VectorTraceSource>(hammer);
    sources[1] = std::make_unique<VectorTraceSource>(hammer);
    sources[2] = std::make_unique<VectorTraceSource>(private_ops);

    MulticoreSystem sys(cfg);
    MulticoreResult r = sys.run(std::move(sources));
    double contended = std::max(r.cores[0].memory_cycles,
                                r.cores[1].memory_cycles);
    double isolated = r.cores[2].memory_cycles;
    EXPECT_GT(contended, isolated * 2.0);
    EXPECT_GT(r.total_forwards + r.total_invalidations, 5);
}

TEST(MulticoreSystem, LimitedDirectoryBroadcastsOnOverflowWrite)
{
    MulticoreConfig cfg = tiny_config(16); // directory_pointers = 4
    auto sources = idle_sources(16);
    // Eight cores read the same line at staggered times: the pointer
    // set overflows into broadcast mode WITHOUT dropping copies
    // (read-shared data like the XW matrix must stay cached) ...
    for (int c = 1; c <= 8; ++c) {
        sources[static_cast<size_t>(c)] =
            std::make_unique<VectorTraceSource>(std::vector<TraceOp>{
                {TraceOpKind::kCompute,
                 static_cast<uint32_t>(1000 * c), 0},
                {TraceOpKind::kLoad, 0, 0x600000},
                {TraceOpKind::kCompute, 50000, 0},
                {TraceOpKind::kLoad, 0, 0x600000}});
    }
    // ... and a later writer invalidates every copy by broadcast.
    sources[0] = std::make_unique<VectorTraceSource>(std::vector<TraceOp>{
        {TraceOpKind::kCompute, 20000, 0},
        {TraceOpKind::kStore, 0, 0x600000}});
    MulticoreSystem sys(cfg);
    MulticoreResult r = sys.run(std::move(sources));
    // All 8 readers' copies die at the broadcast write...
    EXPECT_GE(r.total_invalidations, 8);
    // ...so their second read misses; first reads: 8 misses + 1 write.
    EXPECT_GE(r.total_l1_misses, 17);
}

TEST(SegmentTraceSource, EmitsExpectedOpsForOneSegment)
{
    MulticoreConfig cfg = tiny_config(16);
    CsrMatrix a = erdos_renyi_graph(32, 128, 5);
    SpmmAddressMap map =
        SpmmAddressMap::create(a, 16, cfg.value_bytes, cfg.line_bytes);
    std::vector<WorkSegment> segs{
        {0, a.row_begin(0), a.row_end(0), false}};
    index_t nnz = a.degree(0);
    SegmentTraceSource src(a, map, cfg, segs);

    int loads = 0, stores = 0, atomics = 0;
    uint32_t compute = 0;
    TraceOp op;
    while (src.next(op)) {
        switch (op.kind) {
          case TraceOpKind::kLoad: ++loads; break;
          case TraceOpKind::kStore: ++stores; break;
          case TraceOpKind::kAtomicRmw: ++atomics; break;
          case TraceOpKind::kCompute: compute += op.cycles; break;
        }
    }
    // Per nnz: col + value + xw-row loads (>= 3); plus row bounds.
    EXPECT_GE(loads, 3 * nnz);
    EXPECT_EQ(atomics, 0);
    EXPECT_GE(stores, 1); // one 32-byte row commit = one line store
    // d=16 over 4 lanes -> 5 cycles per nnz + 2 commit cycles.
    EXPECT_EQ(compute, static_cast<uint32_t>(5 * nnz + 2));
}

TEST(SegmentTraceSource, AtomicSegmentUsesRmw)
{
    MulticoreConfig cfg = tiny_config(16);
    CsrMatrix a = erdos_renyi_graph(32, 128, 6);
    SpmmAddressMap map =
        SpmmAddressMap::create(a, 16, cfg.value_bytes, cfg.line_bytes);
    SegmentTraceSource src(a, map, cfg,
                           {{3, a.row_begin(3), a.row_end(3), true}});
    TraceOp op;
    int atomics = 0;
    while (src.next(op))
        atomics += op.kind == TraceOpKind::kAtomicRmw;
    EXPECT_GE(atomics, 1);
}

TEST(TraceGen, MergePathSourcesCoverAllNnz)
{
    MulticoreConfig cfg = tiny_config(16);
    CsrMatrix a = erdos_renyi_graph(200, 1000, 7);
    SpmmAddressMap map =
        SpmmAddressMap::create(a, 16, cfg.value_bytes, cfg.line_bytes);
    auto sources = make_mergepath_trace_sources(a, map, cfg);
    ASSERT_EQ(sources.size(), 16u);

    // Count column-index loads across all cores: one per non-zero.
    int64_t col_loads = 0;
    TraceOp op;
    uint64_t col_lo = map.col_idx_base;
    uint64_t col_hi = map.col_addr(a.nnz());
    for (auto &src : sources) {
        while (src->next(op)) {
            if (op.kind == TraceOpKind::kLoad && op.addr >= col_lo &&
                op.addr < col_hi) {
                ++col_loads;
            }
        }
    }
    // Column loads are line-granular in the trace, but each non-zero
    // emits one (possibly duplicate-line) load op.
    EXPECT_EQ(col_loads, a.nnz());
}

TEST(TraceGen, GnnAdvisorAllCommitsAtomic)
{
    MulticoreConfig cfg = tiny_config(16);
    CsrMatrix a = erdos_renyi_graph(100, 600, 8);
    SpmmAddressMap map =
        SpmmAddressMap::create(a, 16, cfg.value_bytes, cfg.line_bytes);
    auto sources = make_gnnadvisor_trace_sources(a, map, cfg);
    TraceOp op;
    int64_t stores = 0, atomics = 0;
    for (auto &src : sources) {
        while (src->next(op)) {
            stores += op.kind == TraceOpKind::kStore;
            atomics += op.kind == TraceOpKind::kAtomicRmw;
        }
    }
    EXPECT_EQ(stores, 0);
    EXPECT_GT(atomics, 0);
}

TEST(Runner, MergePathUsesFewerAtomicsThanGnnAdvisor)
{
    MulticoreConfig cfg = tiny_config(16);
    PowerLawParams p;
    p.nodes = 500;
    p.target_nnz = 3000;
    p.max_degree = 300;
    p.seed = 9;
    CsrMatrix a = power_law_graph(p);

    MulticoreResult mp = run_spmm_on_multicore(a, 16, cfg, "mergepath");
    MulticoreResult ga = run_spmm_on_multicore(a, 16, cfg, "gnnadvisor");
    int64_t mp_atomics = 0, ga_atomics = 0;
    for (const auto &c : mp.cores)
        mp_atomics += c.atomics;
    for (const auto &c : ga.cores)
        ga_atomics += c.atomics;
    EXPECT_LT(mp_atomics, ga_atomics / 4);
    EXPECT_GT(mp.completion_cycles, 0.0);
    EXPECT_GT(ga.completion_cycles, 0.0);
}

TEST(Runner, ScalingUpCoresReducesCompletionTime)
{
    CsrMatrix a = make_scaled_dataset(find_dataset_spec("Pubmed"), 8);
    MulticoreConfig c16 = tiny_config(16);
    MulticoreConfig c64 = tiny_config(64);
    MulticoreResult r16 = run_spmm_on_multicore(a, 16, c16, "mergepath");
    MulticoreResult r64 = run_spmm_on_multicore(a, 16, c64, "mergepath");
    EXPECT_LT(r64.completion_cycles, r16.completion_cycles * 0.6);
}

TEST(RunnerDeathTest, UnknownKernelIsFatal)
{
    CsrMatrix a = erdos_renyi_graph(20, 40, 1);
    MulticoreConfig cfg = tiny_config(16);
    EXPECT_EXIT(run_spmm_on_multicore(a, 16, cfg, "nope"),
                testing::ExitedWithCode(1), "multicore runner");
}

TEST(Runner, Deterministic)
{
    CsrMatrix a = erdos_renyi_graph(150, 900, 11);
    MulticoreConfig cfg = tiny_config(16);
    MulticoreResult r1 = run_spmm_on_multicore(a, 16, cfg, "mergepath");
    MulticoreResult r2 = run_spmm_on_multicore(a, 16, cfg, "mergepath");
    EXPECT_DOUBLE_EQ(r1.completion_cycles, r2.completion_cycles);
    EXPECT_EQ(r1.total_l1_misses, r2.total_l1_misses);
}

} // namespace
} // namespace mps
