/** Tests for the merge-path 2-D diagonal search. */
#include <gtest/gtest.h>

#include <vector>

#include "mps/core/merge_path.h"
#include "mps/sparse/generate.h"

namespace mps {
namespace {

/**
 * The paper's Figure 3 example: 10 rows, 16 non-zeros. Row end offsets
 * chosen so row 0 holds 8 non-zeros (the "evil" head) as described in
 * the walk-through (RP[1] = 8).
 */
struct Fig3
{
    // degrees: 8,1,2,1,0,1,1,0,1,1  -> 16 nnz over 10 rows
    std::vector<index_t> row_ends{8, 9, 11, 12, 12, 13, 14, 14, 15, 16};
    index_t rows = 10;
    index_t nnz = 16;
};

TEST(MergePathSearch, OriginAndTerminus)
{
    Fig3 f;
    MergeCoordinate start =
        merge_path_search(0, f.row_ends.data(), f.rows, f.nnz);
    EXPECT_EQ(start.row, 0);
    EXPECT_EQ(start.nz, 0);

    MergeCoordinate end = merge_path_search(f.rows + f.nnz,
                                            f.row_ends.data(), f.rows,
                                            f.nnz);
    EXPECT_EQ(end.row, f.rows);
    EXPECT_EQ(end.nz, f.nnz);
}

TEST(MergePathSearch, Figure3Thread2Start)
{
    // Thread 2 of 4 searches diagonal 7 (items-per-thread ceil(26/4)=7).
    // Row 0 holds non-zeros [0, 8), so at diagonal 7 the path has
    // consumed 7 of them and no row boundary yet: coordinate (0, 7).
    // Thread 2 therefore starts mid-row ("partial start row"), exactly
    // the situation the paper's walk-through describes (it processes
    // non-zeros starting at index 7).
    Fig3 f;
    MergeCoordinate c =
        merge_path_search(7, f.row_ends.data(), f.rows, f.nnz);
    EXPECT_EQ(c.row, 0);
    EXPECT_EQ(c.nz, 7);
}

TEST(MergePathSearch, RowBoundaryConsumedBeforeNextRowsNnz)
{
    // Degrees 6,5,...: at diagonal 7 the path has consumed all 6
    // non-zeros of row 0 plus its boundary: coordinate (1, 6) — a
    // complete-row start for the thread beginning there.
    std::vector<index_t> ends{6, 11};
    MergeCoordinate c = merge_path_search(7, ends.data(), 2, 11);
    EXPECT_EQ(c.row, 1);
    EXPECT_EQ(c.nz, 6);
}

TEST(MergePathSearch, CoordinateAlwaysOnDiagonal)
{
    Fig3 f;
    for (int64_t d = 0; d <= f.rows + f.nnz; ++d) {
        MergeCoordinate c =
            merge_path_search(d, f.row_ends.data(), f.rows, f.nnz);
        EXPECT_EQ(static_cast<int64_t>(c.row) + c.nz, d);
    }
}

TEST(MergePathSearch, EmptyMatrix)
{
    MergeCoordinate c = merge_path_search(0, nullptr, 0, 0);
    EXPECT_EQ(c.row, 0);
    EXPECT_EQ(c.nz, 0);
}

TEST(MergePathSearch, AllRowsEmpty)
{
    std::vector<index_t> ends{0, 0, 0};
    for (int64_t d = 0; d <= 3; ++d) {
        MergeCoordinate c = merge_path_search(d, ends.data(), 3, 0);
        // With no non-zeros every item is a row transition.
        EXPECT_EQ(c.row, d);
        EXPECT_EQ(c.nz, 0);
    }
}

TEST(MergePathSearch, SingleRowAllNnz)
{
    std::vector<index_t> ends{5};
    // Non-zeros are consumed before the final row transition.
    for (int64_t d = 0; d <= 5; ++d) {
        MergeCoordinate c = merge_path_search(d, ends.data(), 1, 5);
        EXPECT_EQ(c.row, 0);
        EXPECT_EQ(c.nz, d);
    }
    MergeCoordinate c = merge_path_search(6, ends.data(), 1, 5);
    EXPECT_EQ(c.row, 1);
    EXPECT_EQ(c.nz, 5);
}

/**
 * Property sweep over random graphs: the returned coordinate must be a
 * valid merge-path point (consumed nnz fits the consumed rows) and be
 * monotone non-decreasing in the diagonal.
 */
class MergePathPropertyTest
    : public testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MergePathPropertyTest, ValidMonotonePoints)
{
    auto [nodes, nnz, seed] = GetParam();
    CsrMatrix m = erdos_renyi_graph(nodes, nnz, seed);
    const index_t *ends = m.row_ptr().data() + 1;
    const auto &rp = m.row_ptr();

    MergeCoordinate prev{0, 0};
    for (int64_t d = 0; d <= m.rows() + m.nnz(); ++d) {
        MergeCoordinate c = merge_path_search(d, ends, m.rows(), m.nnz());
        ASSERT_EQ(static_cast<int64_t>(c.row) + c.nz, d);
        ASSERT_GE(c.row, prev.row);
        ASSERT_GE(c.nz, prev.nz);
        // Point validity: all fully consumed rows end at or before the
        // next nnz to consume; the current row has not ended yet.
        if (c.row > 0) {
            ASSERT_LE(rp[c.row], c.nz);
        }
        if (c.row < m.rows()) {
            ASSERT_LE(c.nz, rp[static_cast<size_t>(c.row) + 1]);
        }
        prev = c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, MergePathPropertyTest,
    testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(7, 0, 2),
                    std::make_tuple(13, 40, 3),
                    std::make_tuple(50, 200, 4),
                    std::make_tuple(97, 970, 5),
                    std::make_tuple(128, 16, 6)));

} // namespace
} // namespace mps
