/** Tests for the util module: stats, RNG, thread pool, CLI, tables. */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "mps/util/cli.h"
#include "mps/util/rng.h"
#include "mps/util/stats.h"
#include "mps/util/table.h"
#include "mps/util/thread_pool.h"
#include "mps/util/timer.h"

namespace mps {
namespace {

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    // Geomean of reciprocals is the reciprocal of the geomean.
    double g = geomean({1.5, 2.5, 0.4});
    double gr = geomean({1 / 1.5, 1 / 2.5, 1 / 0.4});
    EXPECT_NEAR(g * gr, 1.0, 1e-12);
}

TEST(Stats, StddevAndCv)
{
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0,
                1e-12);
    EXPECT_DOUBLE_EQ(coefficient_of_variation({3.0, 3.0, 3.0}), 0.0);
    EXPECT_GT(coefficient_of_variation({1.0, 100.0}), 0.9);
}

TEST(Stats, Percentile)
{
    std::vector<double> xs{9.0, 1.0, 5.0, 3.0, 7.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 9.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile({42.0}, 73.0), 42.0);
}

TEST(Stats, PercentileInterpolatesBetweenRanks)
{
    // rank = p/100 * (n-1); p=10 over 5 samples -> rank 0.4, so the
    // result interpolates 40% of the way from 1 to 3.
    std::vector<double> xs{1.0, 3.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 10.0), 1.8);
    EXPECT_DOUBLE_EQ(percentile(xs, 90.0), 8.2);
    // Two samples: p50 is their midpoint.
    EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 50.0), 15.0);
    EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 75.0), 17.5);
}

TEST(Stats, PercentileWithTies)
{
    // Ties must not confuse rank selection; every percentile between
    // tied ranks is the tied value.
    std::vector<double> xs{4.0, 4.0, 4.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 99.0), 4.0);
    std::vector<double> ys{1.0, 2.0, 2.0, 2.0, 9.0};
    EXPECT_DOUBLE_EQ(percentile(ys, 50.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile(ys, 25.0), 2.0);
}

TEST(Stats, SummarizePercentilesKnownInputs)
{
    // 1..101 in scrambled order: p-th percentile is exactly p + 1.
    std::vector<double> xs;
    for (int i = 101; i >= 1; --i)
        xs.push_back(static_cast<double>(i));
    PercentileSummary s = summarize_percentiles(xs);
    EXPECT_EQ(s.count, 101);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 101.0);
    EXPECT_DOUBLE_EQ(s.mean, 51.0);
    EXPECT_DOUBLE_EQ(s.p50, 51.0);
    EXPECT_DOUBLE_EQ(s.p95, 96.0);
    EXPECT_DOUBLE_EQ(s.p99, 100.0);
}

TEST(Stats, SummarizePercentilesSingleSampleAndEmpty)
{
    PercentileSummary one = summarize_percentiles({7.5});
    EXPECT_EQ(one.count, 1);
    EXPECT_DOUBLE_EQ(one.mean, 7.5);
    EXPECT_DOUBLE_EQ(one.min, 7.5);
    EXPECT_DOUBLE_EQ(one.max, 7.5);
    EXPECT_DOUBLE_EQ(one.p50, 7.5);
    EXPECT_DOUBLE_EQ(one.p95, 7.5);
    EXPECT_DOUBLE_EQ(one.p99, 7.5);

    PercentileSummary none = summarize_percentiles({});
    EXPECT_EQ(none.count, 0);
    EXPECT_DOUBLE_EQ(none.mean, 0.0);
    EXPECT_DOUBLE_EQ(none.p50, 0.0);
    EXPECT_DOUBLE_EQ(none.p99, 0.0);
}

TEST(Stats, Log2Histogram)
{
    Log2Histogram h;
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(1024);
    EXPECT_EQ(h.zero_count(), 1u);
    EXPECT_EQ(h.bin_count(0), 1u); // [1,1]
    EXPECT_EQ(h.bin_count(1), 2u); // [2,3]
    EXPECT_EQ(h.bin_count(10), 1u);
    EXPECT_EQ(h.max_bin(), 10);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_FALSE(h.to_string().empty());
}

TEST(Rng, DeterministicAcrossInstances)
{
    Pcg32 a(123, 7), b(123, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, StreamsDiffer)
{
    Pcg32 a(123, 1), b(123, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next_u32() == b.next_u32();
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform)
{
    Pcg32 rng(99);
    std::vector<int> counts(10, 0);
    const int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        uint32_t v = rng.next_below(10);
        ASSERT_LT(v, 10u);
        ++counts[v];
    }
    for (int c : counts) {
        EXPECT_GT(c, kDraws / 10 * 0.9);
        EXPECT_LT(c, kDraws / 10 * 1.1);
    }
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Pcg32 rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = rng.next_double();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitmixAdvancesState)
{
    uint64_t s = 42;
    uint64_t a = splitmix64(s);
    uint64_t b = splitmix64(s);
    EXPECT_NE(a, b);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const uint64_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](uint64_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, GrainedDispatchCoversAll)
{
    ThreadPool pool(3);
    std::atomic<uint64_t> sum{0};
    const uint64_t n = 1237; // deliberately not a multiple of the grain
    pool.parallel_for(
        n, [&](uint64_t i) { sum.fetch_add(i); }, /*grain=*/64);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, ZeroTasksIsNoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallel_for(0, [&](uint64_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, Reusable)
{
    ThreadPool pool(2);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> count{0};
        pool.parallel_for(100, [&](uint64_t) { ++count; });
        ASSERT_EQ(count.load(), 100);
    }
}

TEST(ThreadPool, GlobalPoolExists)
{
    EXPECT_GE(ThreadPool::global().size(), 2u);
}

TEST(Cli, ParsesAllTypes)
{
    FlagParser p("test");
    p.add_int("count", 3, "a count");
    p.add_double("ratio", 0.5, "a ratio");
    p.add_string("name", "x", "a name");
    p.add_bool("verbose", false, "a switch");
    const char *argv[] = {"prog",           "--count=7", "--ratio", "2.25",
                          "--name=hello",   "--verbose", "positional"};
    p.parse(7, const_cast<char **>(argv));
    EXPECT_EQ(p.get_int("count"), 7);
    EXPECT_DOUBLE_EQ(p.get_double("ratio"), 2.25);
    EXPECT_EQ(p.get_string("name"), "hello");
    EXPECT_TRUE(p.get_bool("verbose"));
    ASSERT_EQ(p.positional().size(), 1u);
    EXPECT_EQ(p.positional()[0], "positional");
}

TEST(Cli, DefaultsSurviveParse)
{
    FlagParser p("test");
    p.add_int("count", 3, "a count");
    const char *argv[] = {"prog"};
    p.parse(1, const_cast<char **>(argv));
    EXPECT_EQ(p.get_int("count"), 3);
}

TEST(Cli, UsageMentionsFlags)
{
    FlagParser p("my tool");
    p.add_int("alpha", 1, "alpha help");
    std::string u = p.usage("prog");
    EXPECT_NE(u.find("--alpha"), std::string::npos);
    EXPECT_NE(u.find("alpha help"), std::string::npos);
    EXPECT_NE(u.find("my tool"), std::string::npos);
}

TEST(Table, TextRenderingAligns)
{
    Table t({"graph", "speedup"});
    t.new_row();
    t.add("Cora");
    t.add(1.8512, 2);
    t.new_row();
    t.add("a-much-longer-name");
    t.add_int(7);
    std::string text = t.to_text();
    EXPECT_NE(text.find("graph"), std::string::npos);
    EXPECT_NE(text.find("1.85"), std::string::npos);
    EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
    EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t({"name", "note"});
    t.new_row();
    t.add("a,b");
    t.add("say \"hi\"");
    std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Timer, MeasuresForwardTime)
{
    Timer timer;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + std::sqrt(static_cast<double>(i));
    EXPECT_GE(timer.elapsed_seconds(), 0.0);
    EXPECT_GE(timer.elapsed_us(), 0.0);
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(format_double(1.23456, 2), "1.23");
    EXPECT_EQ(format_double(2.0, 0), "2");
}

} // namespace
} // namespace mps
