/** Correctness tests for the MergePath-SpMM kernels. */
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "mps/core/spmm.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/generate.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

DenseMatrix
random_dense(index_t rows, index_t cols, uint64_t seed)
{
    DenseMatrix m(rows, cols);
    Pcg32 rng(seed);
    m.fill_random(rng);
    return m;
}

TEST(ReferenceSpmm, HandComputedExample)
{
    // A = [ 2 0 ]   B = [ 1 10 ]
    //     [ 1 3 ]       [ 2 20 ]
    CsrMatrix a(2, 2, {0, 1, 3}, {0, 0, 1}, {2.0f, 1.0f, 3.0f});
    DenseMatrix b(2, 2);
    b(0, 0) = 1;
    b(0, 1) = 10;
    b(1, 0) = 2;
    b(1, 1) = 20;
    DenseMatrix c(2, 2);
    reference_spmm(a, b, c);
    EXPECT_FLOAT_EQ(c(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 20.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 7.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 70.0f);
}

TEST(MergePathSpmm, SequentialMatchesReferenceOnEvilRows)
{
    PowerLawParams p;
    p.nodes = 400;
    p.target_nnz = 3000;
    p.max_degree = 350;
    p.seed = 5;
    CsrMatrix a = power_law_graph(p);
    DenseMatrix b = random_dense(a.cols(), 16, 11);
    DenseMatrix expect(a.rows(), 16), got(a.rows(), 16);
    reference_spmm(a, b, expect);

    for (index_t threads : {1, 2, 5, 37, 400, 3000}) {
        MergePathSchedule s = MergePathSchedule::build(a, threads);
        mergepath_spmm_sequential(a, b, got, s);
        EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4))
            << "threads=" << threads
            << " diff=" << got.max_abs_diff(expect);
    }
}

TEST(MergePathSpmm, ParallelMatchesReference)
{
    CsrMatrix a = make_scaled_dataset(find_dataset_spec("Nell"), 64);
    DenseMatrix b = random_dense(a.cols(), 16, 3);
    DenseMatrix expect(a.rows(), 16), got(a.rows(), 16);
    reference_spmm(a, b, expect);

    WorkStealPool pool(4);
    MergePathSchedule s = MergePathSchedule::build(a, 512);
    mergepath_spmm_parallel(a, b, got, s, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4))
        << "diff=" << got.max_abs_diff(expect);
}

TEST(MergePathSpmm, ParallelRepeatable)
{
    CsrMatrix a = erdos_renyi_graph(500, 5000, 8);
    DenseMatrix b = random_dense(a.cols(), 8, 9);
    WorkStealPool pool(4);
    MergePathSchedule s = MergePathSchedule::build(a, 333);

    DenseMatrix first(a.rows(), 8);
    mergepath_spmm_parallel(a, b, first, s, pool);
    for (int run = 0; run < 5; ++run) {
        DenseMatrix again(a.rows(), 8);
        mergepath_spmm_parallel(a, b, again, s, pool);
        // Atomic commit order may vary, but each split row receives the
        // same set of partial sums; float reassociation noise only.
        EXPECT_TRUE(again.approx_equal(first, 1e-3, 1e-4));
    }
}

TEST(MergePathSpmm, ConvenienceEntryPoint)
{
    CsrMatrix a = erdos_renyi_graph(200, 1000, 4);
    DenseMatrix b = random_dense(a.cols(), 32, 5);
    DenseMatrix expect(a.rows(), 32), got(a.rows(), 32);
    reference_spmm(a, b, expect);
    WorkStealPool pool(3);
    mergepath_spmm(a, b, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4));
}

TEST(MergePathSpmm, EmptyMatrixProducesZeros)
{
    CsrMatrix a(3, 3, {0, 0, 0, 0}, {}, {});
    DenseMatrix b = random_dense(3, 4, 6);
    DenseMatrix c(3, 4);
    c.fill(42.0f);
    MergePathSchedule s = MergePathSchedule::build(a, 2);
    mergepath_spmm_sequential(a, b, c, s);
    for (index_t r = 0; r < 3; ++r) {
        for (index_t d = 0; d < 4; ++d)
            ASSERT_FLOAT_EQ(c(r, d), 0.0f);
    }
}

TEST(MergePathSpmm, SingleEvilRowHammeredByAllThreads)
{
    // One row holds every non-zero: all threads do atomic commits into
    // the same output row.
    const index_t n = 64, nnz = 4096;
    std::vector<index_t> row_ptr(static_cast<size_t>(n) + 1, nnz);
    row_ptr[0] = 0;
    std::vector<index_t> cols(static_cast<size_t>(nnz));
    std::vector<value_t> vals(static_cast<size_t>(nnz));
    Pcg32 rng(77);
    for (index_t k = 0; k < nnz; ++k) {
        cols[static_cast<size_t>(k)] =
            static_cast<index_t>(rng.next_below(n));
        vals[static_cast<size_t>(k)] = rng.next_float(0.1f, 1.0f);
    }
    std::sort(cols.begin(), cols.end()); // keep CSR canonical-ish
    CsrMatrix a(n, n, std::move(row_ptr), std::move(cols),
                std::move(vals));
    DenseMatrix b = random_dense(n, 16, 10);
    DenseMatrix expect(n, 16), got(n, 16);
    reference_spmm(a, b, expect);

    WorkStealPool pool(8);
    MergePathSchedule s = MergePathSchedule::build(a, 128);
    ScheduleCensus census = s.census(a);
    EXPECT_GE(census.atomic_commits, 64); // genuinely hammered
    mergepath_spmm_parallel(a, b, got, s, pool);
    EXPECT_TRUE(got.approx_equal(expect, 2e-3, 1e-3))
        << "diff=" << got.max_abs_diff(expect);
}

/**
 * Property sweep: sequential and parallel MergePath-SpMM must agree
 * with the reference for every (graph family, dimension, thread count)
 * combination, including dimensions that do not divide or exceed the
 * SIMD width and thread counts around the row/nnz counts.
 */
class SpmmPropertyTest
    : public testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(SpmmPropertyTest, MatchesReference)
{
    auto [family, dim, threads] = GetParam();
    CsrMatrix a;
    switch (family) {
      case 0:
        a = erdos_renyi_graph(257, 2000, 13);
        break;
      case 1: {
        PowerLawParams p;
        p.nodes = 257;
        p.target_nnz = 2000;
        p.max_degree = 200;
        p.seed = 13;
        a = power_law_graph(p);
        break;
      }
      default: {
        StructuredParams p;
        p.nodes = 257;
        p.target_nnz = 1028;
        p.max_degree = 8;
        p.seed = 13;
        a = structured_graph(p);
        break;
      }
    }
    DenseMatrix b = random_dense(a.cols(), static_cast<index_t>(dim), 21);
    DenseMatrix expect(a.rows(), static_cast<index_t>(dim));
    reference_spmm(a, b, expect);

    MergePathSchedule s =
        MergePathSchedule::build(a, static_cast<index_t>(threads));
    s.validate(a);

    DenseMatrix seq(a.rows(), static_cast<index_t>(dim));
    mergepath_spmm_sequential(a, b, seq, s);
    ASSERT_TRUE(seq.approx_equal(expect, 1e-3, 1e-4))
        << "sequential diff=" << seq.max_abs_diff(expect);

    WorkStealPool pool(4);
    DenseMatrix par(a.rows(), static_cast<index_t>(dim));
    mergepath_spmm_parallel(a, b, par, s, pool);
    ASSERT_TRUE(par.approx_equal(expect, 1e-3, 1e-4))
        << "parallel diff=" << par.max_abs_diff(expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmmPropertyTest,
    testing::Combine(testing::Values(0, 1, 2),
                     testing::Values(1, 2, 3, 16, 33),
                     testing::Values(1, 7, 64, 1024)));

TEST(MergePathSpmmDeathTest, ShapeMismatchIsFatal)
{
    CsrMatrix a = erdos_renyi_graph(10, 20, 1);
    DenseMatrix b(11, 4); // wrong rows
    DenseMatrix c(10, 4);
    MergePathSchedule s = MergePathSchedule::build(a, 2);
    EXPECT_DEATH(mergepath_spmm_sequential(a, b, c, s), "B rows");
}

} // namespace
} // namespace mps
