/**
 * Tests for the OpenMetrics exposition module: golden output format,
 * name/label escaping, inline-label registry names, the parser, the
 * strict validator, and quantile reconstruction from bucket series.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "mps/util/metrics.h"
#include "mps/util/openmetrics.h"

namespace mps {
namespace {

TEST(OpenMetricsName, SanitizesOutsideCharset)
{
    EXPECT_EQ(openmetrics_name("serve.request.latency_ms"),
              "serve_request_latency_ms");
    EXPECT_EQ(openmetrics_name("pool.worker.busy-seconds"),
              "pool_worker_busy_seconds");
    EXPECT_EQ(openmetrics_name("a:b_c9"), "a:b_c9"); // already legal
    EXPECT_EQ(openmetrics_name("9lives"), "_9lives"); // no leading digit
}

TEST(OpenMetricsName, LabelEscape)
{
    EXPECT_EQ(openmetrics_label_escape("plain"), "plain");
    EXPECT_EQ(openmetrics_label_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(openmetrics_label_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(openmetrics_label_escape("a\nb"), "a\\nb");
}

TEST(OpenMetrics, GoldenFormatForEveryKind)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    reg.counter_add("events", 4);
    reg.gauge_set("queue.depth", 7.0);
    reg.timer_record_ms("lap_ms", 2.0);
    reg.timer_record_ms("lap_ms", 4.0);
    reg.histogram_record("lat_ms", 1.0);
    reg.histogram_record("lat_ms", 100.0);

    const std::string text = to_openmetrics(reg);

    // HELP/TYPE headers precede every family.
    EXPECT_NE(text.find("# TYPE events counter"), std::string::npos);
    EXPECT_NE(text.find("# HELP events "), std::string::npos);
    EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
    EXPECT_NE(text.find("# TYPE lap_ms summary"), std::string::npos);
    EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);

    // Counter gets _total; timer gets _count/_sum; histogram gets
    // cumulative _bucket plus the mandatory +Inf and _sum/_count.
    EXPECT_NE(text.find("events_total 4"), std::string::npos);
    EXPECT_NE(text.find("queue_depth 7"), std::string::npos);
    EXPECT_NE(text.find("lap_ms_count 2"), std::string::npos);
    EXPECT_NE(text.find("lap_ms_sum 6"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_bucket{le=\""), std::string::npos);
    EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("lat_ms_sum 101"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_count 2"), std::string::npos);

    // Terminated by # EOF, and the strict validator accepts it.
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    std::string error;
    EXPECT_TRUE(validate_openmetrics(text, &error)) << error;
}

TEST(OpenMetrics, InlineLabelsSplitIntoFamilyAndLabels)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    reg.gauge_set("pool.worker.busy_seconds{worker=\"3\"}", 1.5);
    reg.gauge_set("pool.worker.busy_seconds{worker=\"11\"}", 2.5);

    const std::string text = to_openmetrics(reg);
    std::string error;
    ASSERT_TRUE(validate_openmetrics(text, &error)) << error;

    OpenMetricsText doc = parse_openmetrics(text, &error);
    ASSERT_TRUE(error.empty()) << error;
    const OpenMetricsSample *w3 =
        doc.find("pool_worker_busy_seconds", {{"worker", "3"}});
    ASSERT_NE(w3, nullptr);
    EXPECT_DOUBLE_EQ(w3->value, 1.5);
    const OpenMetricsSample *w11 =
        doc.find("pool_worker_busy_seconds", {{"worker", "11"}});
    ASSERT_NE(w11, nullptr);
    EXPECT_DOUBLE_EQ(w11->value, 2.5);
    // One shared family, declared once.
    EXPECT_EQ(doc.types["pool_worker_busy_seconds"], "gauge");
}

TEST(OpenMetrics, LabelValuesRoundTripThroughEscaping)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    reg.gauge_set("g{tenant=\"a\\b\"}", 1.0);

    const std::string text = to_openmetrics(reg);
    // The backslash must be escaped on the wire...
    EXPECT_NE(text.find("tenant=\"a\\\\b\""), std::string::npos) << text;
    std::string error;
    ASSERT_TRUE(validate_openmetrics(text, &error)) << text << error;
    // ...and unescaped back by the parser.
    OpenMetricsText doc = parse_openmetrics(text, &error);
    const OpenMetricsSample *s = doc.find("g");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->labels.at("tenant"), "a\\b");
}

TEST(OpenMetrics, ParserHandlesTimestampsAndSpecialValues)
{
    const std::string text = "# TYPE x gauge\n"
                             "x 1.5 1700000000\n"
                             "y +Inf\n"
                             "z NaN\n"
                             "# EOF\n";
    std::string error;
    OpenMetricsText doc = parse_openmetrics(text, &error);
    EXPECT_TRUE(error.empty()) << error;
    ASSERT_EQ(doc.samples.size(), 3u);
    EXPECT_DOUBLE_EQ(doc.samples[0].value, 1.5);
    EXPECT_TRUE(std::isinf(doc.samples[1].value));
    EXPECT_TRUE(std::isnan(doc.samples[2].value));
}

TEST(OpenMetrics, ValidatorRejectsMalformedDocuments)
{
    std::string error;
    // Missing # EOF.
    EXPECT_FALSE(validate_openmetrics("x 1\n", &error));
    EXPECT_NE(error.find("EOF"), std::string::npos);
    // Garbage sample line.
    EXPECT_FALSE(validate_openmetrics("{oops} 1\n# EOF\n", &error));
    // Unterminated label block.
    EXPECT_FALSE(validate_openmetrics("x{a=\"b\" 1\n# EOF\n", &error));
    // Missing value.
    EXPECT_FALSE(validate_openmetrics("x\n# EOF\n", &error));
    // Content after the terminator.
    EXPECT_FALSE(validate_openmetrics("# EOF\nx 1\n", &error));
}

TEST(OpenMetrics, ValidatorRejectsNonCumulativeBuckets)
{
    const std::string bad = "h_bucket{le=\"1\"} 5\n"
                            "h_bucket{le=\"2\"} 3\n"
                            "h_bucket{le=\"+Inf\"} 5\n"
                            "# EOF\n";
    std::string error;
    EXPECT_FALSE(validate_openmetrics(bad, &error));
    EXPECT_NE(error.find("non-cumulative"), std::string::npos);

    const std::string good = "h_bucket{le=\"1\"} 3\n"
                             "h_bucket{le=\"2\"} 5\n"
                             "h_bucket{le=\"+Inf\"} 5\n"
                             "# EOF\n";
    EXPECT_TRUE(validate_openmetrics(good, &error)) << error;
}

TEST(OpenMetrics, HistogramQuantileReconstruction)
{
    // Round-trip: record a known distribution, export, parse, and ask
    // the parsed document for quantiles.
    MetricsRegistry reg;
    reg.set_enabled(true);
    for (int i = 1; i <= 1000; ++i)
        reg.histogram_record("lat_ms", static_cast<double>(i));

    std::string error;
    OpenMetricsText doc = parse_openmetrics(to_openmetrics(reg), &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_DOUBLE_EQ(doc.value_or("lat_ms_count"), 1000.0);
    for (double q : {0.50, 0.90, 0.99}) {
        const double expect = 1000.0 * q;
        EXPECT_NEAR(doc.histogram_quantile("lat_ms", q), expect,
                    expect * 0.05 + 1.0)
            << "q=" << q;
    }
    // Absent family reports 0, not garbage.
    EXPECT_DOUBLE_EQ(doc.histogram_quantile("nope", 0.5), 0.0);
}

} // namespace
} // namespace mps
