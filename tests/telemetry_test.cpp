/**
 * Tests for the live telemetry pipeline: the embedded /metrics HTTP
 * endpoint (TelemetryServer + http_get), the serve path's request-flow
 * trace events, and the server-integrated endpoint with its pre-scrape
 * publication of derived gauges.
 */
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "mps/gcn/activation.h"
#include "mps/gcn/layer.h"
#include "mps/serve/server.h"
#include "mps/serve/telemetry_server.h"
#include "mps/sparse/generate.h"
#include "mps/util/metrics.h"
#include "mps/util/openmetrics.h"
#include "mps/util/rng.h"
#include "mps/util/trace.h"

namespace mps {
namespace serve {
namespace {

TEST(TelemetryServer, ServesMetricsHealthAnd404)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    reg.counter_add("requests", 5);

    TelemetryServer::Options opts;
    opts.port = 0; // ephemeral
    opts.registry = &reg;
    TelemetryServer server(std::move(opts));
    ASSERT_TRUE(server.start());
    ASSERT_GT(server.port(), 0);

    std::string body, error;
    ASSERT_TRUE(
        http_get("127.0.0.1", server.port(), "/metrics", &body, &error))
        << error;
    EXPECT_TRUE(validate_openmetrics(body, &error)) << error;
    EXPECT_NE(body.find("requests_total 5"), std::string::npos);
    EXPECT_EQ(server.scrape_count(), 1u);

    ASSERT_TRUE(
        http_get("127.0.0.1", server.port(), "/healthz", &body, &error))
        << error;
    EXPECT_EQ(body, "ok\n");

    EXPECT_FALSE(
        http_get("127.0.0.1", server.port(), "/nope", &body, &error));
    EXPECT_NE(error.find("404"), std::string::npos);

    server.stop();
    server.stop(); // idempotent
    EXPECT_EQ(server.port(), -1);
}

TEST(TelemetryServer, PreScrapeHookRunsBeforeEveryRender)
{
    MetricsRegistry reg;
    reg.set_enabled(true);
    int calls = 0;
    TelemetryServer::Options opts;
    opts.port = 0;
    opts.registry = &reg;
    opts.pre_scrape = [&reg, &calls] {
        reg.gauge_set("derived", static_cast<double>(++calls));
    };
    TelemetryServer server(std::move(opts));
    ASSERT_TRUE(server.start());

    std::string body, error;
    ASSERT_TRUE(
        http_get("127.0.0.1", server.port(), "/metrics", &body, &error))
        << error;
    EXPECT_NE(body.find("derived 1"), std::string::npos);
    ASSERT_TRUE(
        http_get("127.0.0.1", server.port(), "/metrics", &body, &error))
        << error;
    EXPECT_NE(body.find("derived 2"), std::string::npos);
    EXPECT_EQ(server.scrape_count(), 2u);
}

/** Small serving fixture shared by the flow/endpoint tests. */
class TelemetryServeFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PowerLawParams p;
        p.nodes = 64;
        p.target_nnz = 512;
        p.max_degree = 16;
        p.seed = 5;
        p.value_mode = ValueMode::kGcnNormalized;
        graph_ = power_law_graph(p);
        layers_.emplace_back(random_layer_weights(8, 6, 21),
                             Activation::kRelu);
        layers_.emplace_back(random_layer_weights(6, 4, 22),
                             Activation::kNone);
        Pcg32 rng(77);
        features_ = DenseMatrix(graph_.rows(), 8);
        features_.fill_random(rng);
    }

    CsrMatrix graph_;
    std::vector<GcnLayer> layers_;
    DenseMatrix features_;
};

TEST_F(TelemetryServeFixture, FlowEventsLinkSubmitBatchAndExecution)
{
    TraceSession &trace = TraceSession::global();
    trace.start();
    constexpr int kRequests = 3;
    {
        Server server;
        const uint64_t gid = server.register_graph(graph_, layers_);
        for (int i = 0; i < kRequests; ++i)
            ASSERT_TRUE(server.infer(gid, features_).ok());
        server.shutdown();
    }
    trace.stop();

    // Every request's flow must appear as a complete s -> t -> f chain
    // under one id, and the phases must sit inside spans (which is what
    // makes Perfetto draw connected arrows between slices).
    std::map<uint64_t, std::set<char>> phases;
    std::set<std::string> span_names;
    for (const TraceEvent &ev : trace.events()) {
        if (ev.phase == 'X')
            span_names.insert(ev.name);
        else if (ev.name == "serve.request")
            phases[ev.flow_id].insert(ev.phase);
    }
    int complete_chains = 0;
    for (const auto &[id, seen] : phases) {
        EXPECT_GT(id, 0u);
        if (seen.count('s') && seen.count('t') && seen.count('f'))
            ++complete_chains;
    }
    EXPECT_GE(complete_chains, kRequests);
    EXPECT_TRUE(span_names.count("serve.submit"));
    EXPECT_TRUE(span_names.count("serve.batch.form"));
    EXPECT_TRUE(span_names.count("serve.batch.exec"));

    // The Chrome export carries the flow phases and binding point.
    const std::string json = trace.to_chrome_json();
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
    trace.clear();
}

TEST_F(TelemetryServeFixture, EmbeddedEndpointExposesServingTelemetry)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.reset();
    metrics.set_enabled(true);

    ServeConfig cfg;
    cfg.telemetry_port = 0; // ephemeral
    Server server(cfg);
    const uint64_t gid = server.register_graph(graph_, layers_);
    ASSERT_GT(server.telemetry_port(), 0);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(server.infer(gid, features_).ok());

    std::string body, error;
    ASSERT_TRUE(http_get("127.0.0.1", server.telemetry_port(),
                         "/metrics", &body, &error))
        << error;
    ASSERT_TRUE(validate_openmetrics(body, &error)) << error;

    OpenMetricsText doc = parse_openmetrics(body, &error);
    ASSERT_TRUE(error.empty()) << error;
    // Live scrape mid-serving: the latency histogram has buckets, the
    // pre-scrape hook published queue depth and pool imbalance.
    EXPECT_GE(doc.value_or("serve_request_latency_ms_count"), 4.0);
    EXPECT_NE(doc.find("serve_request_latency_ms_bucket"), nullptr);
    EXPECT_GT(doc.histogram_quantile("serve_request_latency_ms", 0.5),
              0.0);
    EXPECT_NE(doc.find("serve_queue_depth"), nullptr);
    EXPECT_NE(doc.find("pool_imbalance"), nullptr);

    server.shutdown();
    EXPECT_EQ(server.telemetry_port(), -1); // endpoint stops with it
    metrics.set_enabled(false);
    metrics.reset();
}

TEST(TelemetryConfig, EnvPortParsing)
{
    // Unset -> disabled.
    ::unsetenv("MPS_TELEMETRY_PORT");
    EXPECT_EQ(default_telemetry_port(), -1);
    ::setenv("MPS_TELEMETRY_PORT", "9464", 1);
    EXPECT_EQ(default_telemetry_port(), 9464);
    ::setenv("MPS_TELEMETRY_PORT", "0", 1);
    EXPECT_EQ(default_telemetry_port(), 0);
    ::setenv("MPS_TELEMETRY_PORT", "bogus", 1);
    EXPECT_EQ(default_telemetry_port(), -1);
    ::setenv("MPS_TELEMETRY_PORT", "70000", 1);
    EXPECT_EQ(default_telemetry_port(), -1);
    ::unsetenv("MPS_TELEMETRY_PORT");
}

} // namespace
} // namespace serve
} // namespace mps
