/** Correctness and behaviour tests for the baseline SpMM kernels. */
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "mps/core/schedule.h"
#include "mps/core/spmm.h"
#include "mps/kernels/adaptive.h"
#include "mps/kernels/mergepath_kernel.h"
#include "mps/kernels/mergepath_serial.h"
#include "mps/kernels/nnz_split.h"
#include "mps/kernels/registry.h"
#include "mps/kernels/row_split.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/generate.h"
#include "mps/util/metrics.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

DenseMatrix
random_dense(index_t rows, index_t cols, uint64_t seed)
{
    DenseMatrix m(rows, cols);
    Pcg32 rng(seed);
    m.fill_random(rng);
    return m;
}

TEST(NeighborGroups, PartitionEveryRow)
{
    CsrMatrix a = erdos_renyi_graph(100, 700, 3);
    auto groups = build_neighbor_groups(a, 4);
    // Each group belongs to one row, is non-empty and at most 4 wide.
    std::vector<int> covered(static_cast<size_t>(a.nnz()), 0);
    for (const auto &g : groups) {
        EXPECT_GT(g.end, g.begin);
        EXPECT_LE(g.end - g.begin, 4);
        EXPECT_GE(g.begin, a.row_begin(g.row));
        EXPECT_LE(g.end, a.row_end(g.row));
        for (index_t k = g.begin; k < g.end; ++k)
            ++covered[static_cast<size_t>(k)];
    }
    for (int c : covered)
        ASSERT_EQ(c, 1);
}

TEST(NeighborGroups, EvilRowSpansManyGroups)
{
    PowerLawParams p;
    p.nodes = 200;
    p.target_nnz = 1000;
    p.max_degree = 150;
    p.seed = 2;
    CsrMatrix a = power_law_graph(p);
    auto groups = build_neighbor_groups(a, 5);
    // The max-degree row must be split into ceil(150/5) = 30 groups.
    index_t evil = 0;
    for (index_t r = 1; r < a.rows(); ++r) {
        if (a.degree(r) > a.degree(evil))
            evil = r;
    }
    int evil_groups = 0;
    for (const auto &g : groups)
        evil_groups += g.row == evil;
    EXPECT_EQ(evil_groups, 30);
}

TEST(NeighborGroups, DefaultSizeIsAverageDegree)
{
    CsrMatrix a = erdos_renyi_graph(100, 1000, 4); // avg degree 10
    EXPECT_EQ(default_neighbor_group_size(a), 10);
    CsrMatrix empty(5, 5, {0, 0, 0, 0, 0, 0}, {}, {});
    EXPECT_EQ(default_neighbor_group_size(empty), 1);
}

TEST(Registry, ListsAllKernels)
{
    auto names = spmm_kernel_names();
    EXPECT_EQ(names.size(), 8u);
    for (const auto &n : names) {
        auto k = make_spmm_kernel(n);
        ASSERT_NE(k, nullptr);
        EXPECT_EQ(k->name(), n);
    }
}

TEST(RegistryDeathTest, UnknownKernelIsFatal)
{
    EXPECT_EXIT(make_spmm_kernel("nope"), testing::ExitedWithCode(1),
                "unknown SpMM kernel");
}

TEST(MergePathSerial, CountsCarries)
{
    PowerLawParams p;
    p.nodes = 100;
    p.target_nnz = 2000;
    p.max_degree = 90;
    p.seed = 6;
    CsrMatrix a = power_law_graph(p);
    DenseMatrix b = random_dense(a.cols(), 8, 1);
    DenseMatrix c(a.rows(), 8);
    WorkStealPool pool(4);

    MergePathSerialFixupSpmm kernel(64);
    kernel.prepare(a, 8);
    kernel.run(a, b, c, pool);
    // With 64 threads over 100 rows + 2000 nnz, rows are split and
    // carries must occur; never more than 2 per thread.
    EXPECT_GT(kernel.serial_carries(), 0);
    EXPECT_LE(kernel.serial_carries(), 128);
}

TEST(Adaptive, PicksRowSplitForStructured)
{
    StructuredParams p;
    p.nodes = 2000;
    p.target_nnz = 4200;
    p.max_degree = 6;
    p.seed = 4;
    CsrMatrix a = structured_graph(p);
    AdaptiveSpmm kernel;
    kernel.prepare(a, 16);
    EXPECT_EQ(kernel.strategy(), AdaptiveStrategy::kRowSplit);
}

TEST(Adaptive, PicksMergePathForPowerLaw)
{
    PowerLawParams p;
    p.nodes = 2000;
    p.target_nnz = 8000;
    p.max_degree = 700;
    p.seed = 4;
    CsrMatrix a = power_law_graph(p);
    // With the hybrid path disabled, skew still routes to merge-path.
    AdaptiveSpmm baseline(0.7, /*enable_hybrid=*/false);
    baseline.prepare(a, 16);
    EXPECT_EQ(baseline.strategy(), AdaptiveStrategy::kMergePath);
    // The default kernel upgrades to hybrid when the evil rows carry
    // enough of the nnz to be worth an atomics-free dense phase.
    AdaptiveSpmm kernel;
    kernel.prepare(a, 16);
    if (hybrid_enabled()) {
        EXPECT_EQ(kernel.strategy(), AdaptiveStrategy::kHybrid);
    } else {
        EXPECT_EQ(kernel.strategy(), AdaptiveStrategy::kMergePath);
    }
}

TEST(RowSplit, ChunkCountClampedToRows)
{
    CsrMatrix a = erdos_renyi_graph(5, 10, 8);
    RowSplitSpmm kernel(64);
    kernel.prepare(a, 4);
    EXPECT_EQ(kernel.chunks(), 5);
}

/**
 * Every registered kernel must agree with the reference on every graph
 * family and dimension.
 */
class KernelCorrectnessTest
    : public testing::TestWithParam<std::tuple<std::string, int, int>>
{
};

TEST_P(KernelCorrectnessTest, MatchesReference)
{
    auto [name, family, dim] = GetParam();
    CsrMatrix a;
    switch (family) {
      case 0:
        a = erdos_renyi_graph(301, 2400, 31);
        break;
      case 1: {
        PowerLawParams p;
        p.nodes = 301;
        p.target_nnz = 2400;
        p.max_degree = 250;
        p.seed = 31;
        a = power_law_graph(p);
        break;
      }
      default: {
        StructuredParams p;
        p.nodes = 301;
        p.target_nnz = 903;
        p.max_degree = 7;
        p.seed = 31;
        a = structured_graph(p);
        break;
      }
    }
    DenseMatrix b = random_dense(a.cols(), static_cast<index_t>(dim), 7);
    DenseMatrix expect(a.rows(), static_cast<index_t>(dim));
    reference_spmm(a, b, expect);

    WorkStealPool pool(4);
    auto kernel = make_spmm_kernel(name);
    kernel->prepare(a, static_cast<index_t>(dim));
    DenseMatrix got(a.rows(), static_cast<index_t>(dim));
    got.fill(123.0f); // must be fully overwritten
    kernel->run(a, b, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4))
        << name << " family=" << family << " dim=" << dim
        << " diff=" << got.max_abs_diff(expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelCorrectnessTest,
    testing::Combine(testing::Values("mergepath", "hybrid",
                                     "gnnadvisor", "row_split",
                                     "column_split", "adaptive",
                                     "mergepath_serial", "reference"),
                     testing::Values(0, 1, 2),
                     testing::Values(1, 16, 33)),
    [](const testing::TestParamInfo<std::tuple<std::string, int, int>>
           &p) {
        return std::get<0>(p.param) + "_f" +
               std::to_string(std::get<1>(p.param)) + "_d" +
               std::to_string(std::get<2>(p.param));
    });

/** Kernels must be re-preparable for new inputs. */
TEST(Kernels, RepreparedForNewMatrix)
{
    WorkStealPool pool(3);
    CsrMatrix a1 = erdos_renyi_graph(50, 200, 1);
    CsrMatrix a2 = erdos_renyi_graph(90, 500, 2);
    for (const auto &name : spmm_kernel_names()) {
        auto kernel = make_spmm_kernel(name);
        DenseMatrix b1 = random_dense(50, 8, 3), c1(50, 8), e1(50, 8);
        kernel->prepare(a1, 8);
        kernel->run(a1, b1, c1, pool);
        reference_spmm(a1, b1, e1);
        ASSERT_TRUE(c1.approx_equal(e1, 1e-3, 1e-4)) << name;

        DenseMatrix b2 = random_dense(90, 4, 4), c2(90, 4), e2(90, 4);
        kernel->prepare(a2, 4);
        kernel->run(a2, b2, c2, pool);
        reference_spmm(a2, b2, e2);
        ASSERT_TRUE(c2.approx_equal(e2, 1e-3, 1e-4)) << name;
    }
}

/**
 * The paper's selective-atomics claim, checked through the metrics
 * counters: a schedule that splits no row must commit every row with a
 * plain store; only split rows may pay for atomics (Figure 5).
 */
TEST(Kernels, MergePathAtomicCounterZeroWithoutSplitRows)
{
    CsrMatrix a = erdos_renyi_graph(120, 600, 9);
    DenseMatrix b = random_dense(a.cols(), 8, 2);
    DenseMatrix c(a.rows(), 8);
    WorkStealPool pool(4);

    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.reset();
    metrics.set_enabled(true);

    // One merge-path share covers everything: no row can be split.
    MergePathSchedule whole = MergePathSchedule::build(a, 1);
    mergepath_spmm_parallel(a, b, c, whole, pool);
    EXPECT_EQ(metrics.counter_value("spmm.mergepath.atomic_commits"), 0);
    EXPECT_EQ(metrics.counter_value("spmm.mergepath.plain_commits"),
              static_cast<int64_t>(a.rows()));
    EXPECT_EQ(metrics.counter_value("spmm.mergepath.nnz_processed"),
              static_cast<int64_t>(a.nnz()));

    // Far more shares than rows forces split rows -> atomic commits.
    metrics.reset();
    MergePathSchedule sliced = MergePathSchedule::build(a, 256);
    mergepath_spmm_parallel(a, b, c, sliced, pool);
    EXPECT_GT(metrics.counter_value("spmm.mergepath.atomic_commits"), 0);

    metrics.set_enabled(false);
    metrics.reset();
}

/** The Nell-like evil-row scenario stresses all-atomic updates. */
TEST(Kernels, EvilRowGraphAllKernelsAgree)
{
    CsrMatrix a = make_scaled_dataset(find_dataset_spec("Nell"), 128);
    DenseMatrix b = random_dense(a.cols(), 16, 5);
    DenseMatrix expect(a.rows(), 16);
    reference_spmm(a, b, expect);
    WorkStealPool pool(4);
    for (const auto &name : spmm_kernel_names()) {
        auto kernel = make_spmm_kernel(name);
        kernel->prepare(a, 16);
        DenseMatrix got(a.rows(), 16);
        kernel->run(a, b, got, pool);
        ASSERT_TRUE(got.approx_equal(expect, 1e-3, 1e-4))
            << name << " diff=" << got.max_abs_diff(expect);
    }
}

} // namespace
} // namespace mps
