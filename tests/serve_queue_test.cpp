/**
 * Tests for the bounded lock-free MPSC queue: sequential semantics,
 * capacity/backpressure behaviour, wrap-around reuse, and a
 * multi-producer contention test checking liveness, no loss and
 * per-producer FIFO order. Run under MPS_SANITIZE=thread this is the
 * data-race check for the serving ingress path.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "mps/serve/mpsc_queue.h"

namespace mps {
namespace {

TEST(MpscQueue, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(MpscQueue<int>(1).capacity(), 1u);
    EXPECT_EQ(MpscQueue<int>(2).capacity(), 2u);
    EXPECT_EQ(MpscQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(MpscQueue<int>(1000).capacity(), 1024u);
}

TEST(MpscQueue, PushPopRoundTrip)
{
    MpscQueue<int> q(8);
    EXPECT_TRUE(q.empty_approx());
    int out = -1;
    EXPECT_FALSE(q.try_pop(out));
    EXPECT_TRUE(q.try_push(11));
    EXPECT_TRUE(q.try_push(22));
    EXPECT_EQ(q.size_approx(), 2u);
    EXPECT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, 11);
    EXPECT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, 22);
    EXPECT_FALSE(q.try_pop(out));
}

TEST(MpscQueue, FullQueueRejectsUntilPopped)
{
    MpscQueue<int> q(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.try_push(int(i)));
    EXPECT_FALSE(q.try_push(99)); // full: explicit backpressure
    int out = -1;
    EXPECT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(q.try_push(99)); // slot freed
}

TEST(MpscQueue, WrapAroundReusesCells)
{
    MpscQueue<int> q(2);
    int out = -1;
    for (int lap = 0; lap < 100; ++lap) {
        EXPECT_TRUE(q.try_push(2 * lap));
        EXPECT_TRUE(q.try_push(2 * lap + 1));
        EXPECT_FALSE(q.try_push(-1));
        EXPECT_TRUE(q.try_pop(out));
        EXPECT_EQ(out, 2 * lap);
        EXPECT_TRUE(q.try_pop(out));
        EXPECT_EQ(out, 2 * lap + 1);
    }
    EXPECT_TRUE(q.empty_approx());
}

TEST(MpscQueue, MoveOnlyValues)
{
    MpscQueue<std::unique_ptr<int>> q(4);
    EXPECT_TRUE(q.try_push(std::make_unique<int>(7)));
    std::unique_ptr<int> out;
    EXPECT_TRUE(q.try_pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 7);
    // A failed push must leave the value with the caller.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.try_push(std::make_unique<int>(i)));
    std::unique_ptr<int> extra = std::make_unique<int>(42);
    EXPECT_FALSE(q.try_push(std::move(extra)));
    ASSERT_NE(extra, nullptr);
    EXPECT_EQ(*extra, 42);
}

/**
 * N producers x 1 consumer under real contention. Each item encodes
 * (producer id, sequence); the consumer checks that every producer's
 * items arrive in increasing sequence order (per-producer FIFO) and
 * that exactly n_producers * per_producer items arrive (no loss, no
 * duplication, no deadlock).
 */
TEST(MpscQueue, ContendedProducersKeepPerProducerFifo)
{
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 5000;
    MpscQueue<uint64_t> q(64); // small: forces wrap + backpressure

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                uint64_t item = (static_cast<uint64_t>(p) << 32) |
                                static_cast<uint32_t>(i);
                while (!q.try_push(std::move(item)))
                    std::this_thread::yield();
            }
        });
    }

    std::vector<int64_t> next_seq(kProducers, 0);
    int received = 0;
    int idle_spins = 0;
    while (received < kProducers * kPerProducer) {
        uint64_t item = 0;
        if (!q.try_pop(item)) {
            // Liveness guard: producers must eventually make progress.
            ASSERT_LT(++idle_spins, 100000000) << "consumer starved";
            std::this_thread::yield();
            continue;
        }
        idle_spins = 0;
        const int p = static_cast<int>(item >> 32);
        const int64_t seq = static_cast<int64_t>(item & 0xffffffffu);
        ASSERT_GE(p, 0);
        ASSERT_LT(p, kProducers);
        EXPECT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
        next_seq[p] = seq + 1;
        ++received;
    }
    for (auto &t : producers)
        t.join();
    EXPECT_TRUE(q.empty_approx());
    for (int p = 0; p < kProducers; ++p)
        EXPECT_EQ(next_seq[p], kPerProducer);
}

} // namespace
} // namespace mps
