/** Tests for GCN training: loss, gradients, and end-to-end learning. */
#include <gtest/gtest.h>

#include <cmath>

#include "mps/gcn/training.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC)
{
    DenseMatrix logits(4, 5); // all zeros -> uniform distribution
    std::vector<int32_t> labels{0, 1, 2, 3};
    std::vector<bool> mask(4, true);
    DenseMatrix grad(4, 5);
    double loss = softmax_cross_entropy(logits, labels, mask, grad);
    EXPECT_NEAR(loss, std::log(5.0), 1e-6);
    // Gradient rows sum to zero; the true class entry is negative.
    for (index_t r = 0; r < 4; ++r) {
        double sum = 0.0;
        for (index_t c = 0; c < 5; ++c)
            sum += grad(r, c);
        EXPECT_NEAR(sum, 0.0, 1e-6);
        EXPECT_LT(grad(r, labels[static_cast<size_t>(r)]), 0.0f);
    }
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectPredictionHasLowLoss)
{
    DenseMatrix logits(1, 3);
    logits(0, 1) = 10.0f;
    std::vector<int32_t> labels{1};
    std::vector<bool> mask{true};
    DenseMatrix grad(1, 3);
    double loss = softmax_cross_entropy(logits, labels, mask, grad);
    EXPECT_LT(loss, 1e-3);
}

TEST(SoftmaxCrossEntropy, MaskExcludesNodes)
{
    DenseMatrix logits(2, 2);
    logits(0, 0) = 100.0f; // confident, correct
    logits(1, 1) = -100.0f;
    std::vector<int32_t> labels{0, 1};
    std::vector<bool> mask{true, false};
    DenseMatrix grad(2, 2);
    double loss = softmax_cross_entropy(logits, labels, mask, grad);
    EXPECT_LT(loss, 1e-3); // node 1's terrible logits are masked out
    EXPECT_FLOAT_EQ(grad(1, 0), 0.0f);
    EXPECT_FLOAT_EQ(grad(1, 1), 0.0f);
}

TEST(SoftmaxCrossEntropy, NumericalGradientCheck)
{
    // Finite differences on a tiny instance.
    DenseMatrix logits(2, 3);
    logits(0, 0) = 0.3f;
    logits(0, 1) = -0.7f;
    logits(0, 2) = 1.1f;
    logits(1, 0) = -0.2f;
    logits(1, 1) = 0.5f;
    logits(1, 2) = 0.0f;
    std::vector<int32_t> labels{2, 0};
    std::vector<bool> mask{true, true};
    DenseMatrix grad(2, 3);
    softmax_cross_entropy(logits, labels, mask, grad);

    const double eps = 1e-3;
    for (index_t r = 0; r < 2; ++r) {
        for (index_t c = 0; c < 3; ++c) {
            DenseMatrix plus = logits, minus = logits;
            plus(r, c) += static_cast<value_t>(eps);
            minus(r, c) -= static_cast<value_t>(eps);
            DenseMatrix scratch(2, 3);
            double lp =
                softmax_cross_entropy(plus, labels, mask, scratch);
            double lm =
                softmax_cross_entropy(minus, labels, mask, scratch);
            double numeric = (lp - lm) / (2 * eps);
            ASSERT_NEAR(grad(r, c), numeric, 1e-3)
                << "entry " << r << "," << c;
        }
    }
}

TEST(ArgmaxAccuracy, Basics)
{
    DenseMatrix logits(3, 2);
    logits(0, 1) = 1.0f;
    logits(1, 0) = 1.0f;
    logits(2, 1) = 1.0f;
    auto pred = argmax_rows(logits);
    EXPECT_EQ(pred, (std::vector<int32_t>{1, 0, 1}));
    std::vector<int32_t> labels{1, 1, 1};
    std::vector<bool> all(3, true);
    EXPECT_NEAR(accuracy(logits, labels, all), 2.0 / 3.0, 1e-12);
}

TEST(ClassificationProblem, WellFormed)
{
    ClassificationProblem p =
        make_classification_problem(600, 3, 12, 8, 42);
    p.graph.validate();
    EXPECT_EQ(p.graph.rows(), 600);
    EXPECT_EQ(p.features.rows(), 600);
    EXPECT_EQ(p.features.cols(), 12);
    EXPECT_EQ(p.num_classes, 3);
    int train = 0, both = 0;
    for (size_t i = 0; i < p.train_mask.size(); ++i) {
        train += p.train_mask[i];
        both += p.train_mask[i] && p.test_mask[i];
    }
    EXPECT_GT(train, 100);
    EXPECT_LT(train, 300);
    EXPECT_EQ(both, 0); // disjoint split
    for (int32_t label : p.labels) {
        ASSERT_GE(label, 0);
        ASSERT_LT(label, 3);
    }
}

TEST(GcnTrainer, LossDecreasesAndLearns)
{
    ClassificationProblem p =
        make_classification_problem(800, 4, 16, 10, 7);
    WorkStealPool pool(4);
    GcnTrainer trainer(16, 16, 4, /*seed=*/1, /*lr=*/0.5f);

    DenseMatrix before_logits =
        trainer.predict(p.graph, p.features, pool);
    double before_acc = accuracy(before_logits, p.labels, p.test_mask);

    double first_loss = 0.0, last_loss = 0.0;
    for (int epoch = 0; epoch < 60; ++epoch) {
        double loss = trainer.step(p.graph, p.features, p.labels,
                                   p.train_mask, pool);
        if (epoch == 0)
            first_loss = loss;
        last_loss = loss;
    }
    EXPECT_LT(last_loss, first_loss * 0.5)
        << "training must reduce the loss";

    DenseMatrix after_logits = trainer.predict(p.graph, p.features, pool);
    double after_acc = accuracy(after_logits, p.labels, p.test_mask);
    EXPECT_GT(after_acc, 0.85) << "planted communities are learnable";
    EXPECT_GT(after_acc, before_acc);
}

TEST(GcnTrainer, DeterministicAcrossRuns)
{
    ClassificationProblem p =
        make_classification_problem(300, 3, 9, 6, 9);
    WorkStealPool pool(2);
    GcnTrainer t1(9, 8, 3, 5, 0.2f), t2(9, 8, 3, 5, 0.2f);
    for (int epoch = 0; epoch < 5; ++epoch) {
        t1.step(p.graph, p.features, p.labels, p.train_mask, pool);
        t2.step(p.graph, p.features, p.labels, p.train_mask, pool);
    }
    // Atomic commit order may perturb float sums slightly; weights
    // must still agree tightly.
    EXPECT_TRUE(t1.w1().approx_equal(t2.w1(), 1e-3, 1e-3));
    EXPECT_TRUE(t1.w2().approx_equal(t2.w2(), 1e-3, 1e-3));
}

} // namespace
} // namespace mps
