/** Tests for the synthetic graph generators. */
#include <gtest/gtest.h>

#include <set>

#include "mps/sparse/degree_stats.h"
#include "mps/sparse/generate.h"

namespace mps {
namespace {

/** Every row's columns must be distinct and in range. */
void
expect_valid_adjacency(const CsrMatrix &m)
{
    for (index_t r = 0; r < m.rows(); ++r) {
        std::set<index_t> seen;
        for (index_t k = m.row_begin(r); k < m.row_end(r); ++k) {
            index_t c = m.col_idx()[k];
            ASSERT_GE(c, 0);
            ASSERT_LT(c, m.cols());
            ASSERT_TRUE(seen.insert(c).second)
                << "duplicate column " << c << " in row " << r;
        }
    }
}

TEST(PowerLawGraph, ExactCounts)
{
    PowerLawParams p;
    p.nodes = 2000;
    p.target_nnz = 9000;
    p.max_degree = 150;
    p.seed = 7;
    CsrMatrix m = power_law_graph(p);
    m.validate();
    EXPECT_EQ(m.rows(), 2000);
    EXPECT_EQ(m.nnz(), 9000);
    DegreeStats s = compute_degree_stats(m);
    EXPECT_EQ(s.max_degree, 150);
    expect_valid_adjacency(m);
}

TEST(PowerLawGraph, HeavyTailShape)
{
    PowerLawParams p;
    p.nodes = 5000;
    p.target_nnz = 20000;
    p.max_degree = 1000;
    p.seed = 3;
    CsrMatrix m = power_law_graph(p);
    DegreeStats s = compute_degree_stats(m);
    // Power-law: the top 1% of rows hold far more than 1% of non-zeros,
    // and the degree CV is large.
    EXPECT_GT(s.top1pct_nnz_share, 0.10);
    EXPECT_GT(s.degree_cv, 1.0);
}

TEST(PowerLawGraph, Deterministic)
{
    PowerLawParams p;
    p.nodes = 500;
    p.target_nnz = 2500;
    p.max_degree = 60;
    p.seed = 11;
    CsrMatrix a = power_law_graph(p);
    CsrMatrix b = power_law_graph(p);
    EXPECT_EQ(a.row_ptr(), b.row_ptr());
    EXPECT_EQ(a.col_idx(), b.col_idx());
    EXPECT_EQ(a.values(), b.values());
}

TEST(PowerLawGraph, SeedChangesStructure)
{
    PowerLawParams p;
    p.nodes = 500;
    p.target_nnz = 2500;
    p.max_degree = 60;
    p.seed = 11;
    CsrMatrix a = power_law_graph(p);
    p.seed = 12;
    CsrMatrix b = power_law_graph(p);
    EXPECT_NE(a.col_idx(), b.col_idx());
}

TEST(PowerLawGraphDeathTest, InfeasibleParameters)
{
    PowerLawParams p;
    p.nodes = 10;
    p.target_nnz = 200; // > nodes * max_degree
    p.max_degree = 5;
    EXPECT_DEATH(power_law_graph(p), "exceeds");
}

TEST(StructuredGraph, ExactCountsAndLowVariance)
{
    StructuredParams p;
    p.nodes = 3000;
    p.target_nnz = 6300; // avg 2.1 like Yeast
    p.max_degree = 6;
    p.seed = 5;
    CsrMatrix m = structured_graph(p);
    m.validate();
    EXPECT_EQ(m.nnz(), 6300);
    DegreeStats s = compute_degree_stats(m);
    EXPECT_EQ(s.max_degree, 6);
    EXPECT_LT(s.degree_cv, 0.5); // structured: near-uniform degrees
    expect_valid_adjacency(m);
}

TEST(StructuredGraph, BandedLocality)
{
    StructuredParams p;
    p.nodes = 10000;
    p.target_nnz = 30000;
    p.max_degree = 12;
    p.seed = 9;
    CsrMatrix m = structured_graph(p);
    // Columns should be concentrated near the diagonal.
    int64_t near = 0;
    for (index_t r = 0; r < m.rows(); ++r) {
        for (index_t k = m.row_begin(r); k < m.row_end(r); ++k) {
            if (std::abs(m.col_idx()[k] - r) <= 200)
                ++near;
        }
    }
    EXPECT_GT(static_cast<double>(near) / m.nnz(), 0.95);
}

TEST(ErdosRenyi, ExactNnzAndDistinct)
{
    CsrMatrix m = erdos_renyi_graph(300, 2000, 17);
    m.validate();
    EXPECT_EQ(m.rows(), 300);
    EXPECT_EQ(m.nnz(), 2000);
    expect_valid_adjacency(m);
}

TEST(ErdosRenyi, DenseLimitWorks)
{
    CsrMatrix m = erdos_renyi_graph(8, 64, 2);
    EXPECT_EQ(m.nnz(), 64); // complete 8x8 including diagonal
}

TEST(Rmat, ValidAndSkewed)
{
    RmatParams p;
    p.scale = 10;
    p.edge_factor = 8;
    p.seed = 21;
    CsrMatrix m = rmat_graph(p);
    m.validate();
    EXPECT_EQ(m.rows(), 1024);
    EXPECT_GT(m.nnz(), 1024 * 4); // most duplicates survive at this size
    DegreeStats s = compute_degree_stats(m);
    EXPECT_GT(s.degree_cv, 0.8); // R-MAT is skewed
}

TEST(AssignValues, Modes)
{
    CsrMatrix m = erdos_renyi_graph(50, 200, 1);
    assign_values(m, ValueMode::kOnes, 0);
    for (value_t v : m.values())
        ASSERT_FLOAT_EQ(v, 1.0f);

    assign_values(m, ValueMode::kRandom, 99);
    bool any_not_one = false;
    for (value_t v : m.values()) {
        ASSERT_GT(v, 0.0f);
        ASSERT_LE(v, 1.0f);
        any_not_one |= v != 1.0f;
    }
    EXPECT_TRUE(any_not_one);

    assign_values(m, ValueMode::kGcnNormalized, 0);
    for (value_t v : m.values()) {
        ASSERT_GT(v, 0.0f);
        ASSERT_LE(v, 1.0f);
    }
}

TEST(PowerLawGraph, SingleNodeEdgeCase)
{
    PowerLawParams p;
    p.nodes = 1;
    p.target_nnz = 1;
    p.max_degree = 1;
    CsrMatrix m = power_law_graph(p);
    EXPECT_EQ(m.nnz(), 1);
    EXPECT_EQ(m.col_idx()[0], 0);
}

TEST(PowerLawGraph, ZeroMaxDegreeMeansEmpty)
{
    PowerLawParams p;
    p.nodes = 4;
    p.target_nnz = 0;
    p.max_degree = 0;
    CsrMatrix m = power_law_graph(p);
    EXPECT_EQ(m.nnz(), 0);
}

} // namespace
} // namespace mps
