/**
 * Tests for the fused panel-streaming pipeline (mps/core/fusion.h):
 * bit-identity against the unfused path on 1-thread schedules (where
 * no atomic commit ordering can interfere), approximate equality on
 * multi-thread schedules for GCN/SAGE/GIN forwards across the
 * microkernel boundary dims, multi-layer streaming chains, and
 * training-loss parity of the fused GcnTrainer against an in-test
 * unfused reference over 5 epochs.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mps/core/fusion.h"
#include "mps/core/locality.h"
#include "mps/core/schedule.h"
#include "mps/core/spmm.h"
#include "mps/gcn/activation.h"
#include "mps/gcn/aggregators.h"
#include "mps/gcn/gemm.h"
#include "mps/gcn/gnn_layers.h"
#include "mps/gcn/layer.h"
#include "mps/gcn/model.h"
#include "mps/gcn/training.h"
#include "mps/kernels/registry.h"
#include "mps/sparse/generate.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

/** The boundary dims the issue calls out: aligned, off-by-one, wide. */
const index_t kDims[] = {16, 17, 33, 128};

DenseMatrix
random_dense(index_t rows, index_t cols, uint64_t seed)
{
    DenseMatrix m(rows, cols);
    Pcg32 rng(seed);
    m.fill_random(rng);
    return m;
}

CsrMatrix
test_graph(index_t nodes, index_t edges, uint64_t seed)
{
    CsrMatrix a = erdos_renyi_graph(nodes, edges, seed);
    a.normalize_gcn();
    return a;
}

void
expect_bitwise_equal(const DenseMatrix &got, const DenseMatrix &want,
                     index_t dim, const char *what)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (index_t r = 0; r < got.rows(); ++r)
        for (index_t c = 0; c < got.cols(); ++c)
            ASSERT_EQ(got(r, c), want(r, c))
                << what << " differs at (" << r << ", " << c
                << "), d=" << dim;
}

/**
 * 1-thread schedule: every row commits plain, the epilogue fires at
 * commit, and with 16-wide panels every GEMM/gather column offset is
 * SIMD-aligned — the fused output must be BIT-identical to the
 * unfused dense_gemm -> SpMM -> activation sequence.
 */
TEST(FusionBitIdentity, OneThreadScheduleExactAcrossDims)
{
    WorkStealPool pool(4);
    CsrMatrix a = test_graph(180, 1400, 21);
    const index_t f = 24;
    DenseMatrix x = random_dense(a.rows(), f, 31);
    MergePathSchedule sched = MergePathSchedule::build(a, 1);

    for (index_t d : kDims) {
        DenseMatrix w =
            random_dense(f, d, 40 + static_cast<uint64_t>(d));

        DenseMatrix xw(a.rows(), d);
        dense_gemm(x, w, xw, pool);
        DenseMatrix expect(a.rows(), d);
        mergepath_spmm_parallel(a, xw, expect, sched, pool);
        apply_activation(expect, Activation::kRelu);

        SpmmLocality loc;
        loc.tile_d = 16; // force panel splits even at d=16/17
        FusedLayerPlan plan(a, d, borrow_schedule(sched), loc);
        EXPECT_TRUE(plan.shared_rows().empty());
        DenseMatrix got(a.rows(), d);
        plan.run(gemm_panel_source(x, w, pool), got, pool,
                 activation_epilogue(Activation::kRelu));
        expect_bitwise_equal(got, expect, d, "fused one-thread");
    }
}

/**
 * Streaming chain, 1-thread: layer 1's panels rank-update layer 2's
 * combination in ascending panel order, replaying the exact axpy
 * sequence of the full-width GEMM — the chained 2-layer result is
 * bit-identical to the fully materialized pipeline.
 */
TEST(FusionBitIdentity, StreamingChainMatchesMaterialized)
{
    WorkStealPool pool(4);
    CsrMatrix a = test_graph(150, 1100, 23);
    const index_t f = 24, hidden = 32, classes = 24;
    DenseMatrix x = random_dense(a.rows(), f, 51);
    DenseMatrix w1 = random_dense(f, hidden, 52);
    DenseMatrix w2 = random_dense(hidden, classes, 53);
    MergePathSchedule sched = MergePathSchedule::build(a, 1);

    // Materialized reference: XW1 -> H1 -> HW2 -> logits.
    DenseMatrix xw1(a.rows(), hidden);
    dense_gemm(x, w1, xw1, pool);
    DenseMatrix h1(a.rows(), hidden);
    mergepath_spmm_parallel(a, xw1, h1, sched, pool);
    apply_activation(h1, Activation::kRelu);
    DenseMatrix hw2(a.rows(), classes);
    dense_gemm(h1, w2, hw2, pool);
    DenseMatrix expect(a.rows(), classes);
    mergepath_spmm_parallel(a, hw2, expect, sched, pool);

    // Fused chain: H1 exists only as streamed 16-wide panels.
    SpmmLocality loc;
    loc.tile_d = 16;
    FusedLayerPlan plan1(a, hidden, borrow_schedule(sched), loc);
    FusedLayerPlan plan2(a, classes, borrow_schedule(sched), loc);
    DenseMatrix hw2_acc(a.rows(), classes);
    hw2_acc.fill(0.0f);
    plan1.run_streaming(
        gemm_panel_source(x, w1, pool),
        [&](index_t col0, index_t width, const DenseMatrix &hp) {
            dense_gemm_rank_update(hp, width, w2, col0, hw2_acc, pool);
        },
        pool, activation_epilogue(Activation::kRelu));
    expect_bitwise_equal(hw2_acc, hw2, hidden, "rank-updated HW2");
    DenseMatrix got(a.rows(), classes);
    plan2.run(slice_panel_source(hw2_acc), got, pool);
    expect_bitwise_equal(got, expect, classes, "chained logits");
}

/** Multi-thread schedules: atomic commit order may flip float rounding
 * on split rows, so the comparison is approximate. */
TEST(FusionApprox, GcnLayerForwardAcrossDims)
{
    WorkStealPool pool(4);
    CsrMatrix a = test_graph(200, 1600, 27);
    const index_t f = 24;
    DenseMatrix x = random_dense(a.rows(), f, 61);

    for (index_t d : kDims) {
        DenseMatrix w =
            random_dense(f, d, 70 + static_cast<uint64_t>(d));
        GcnLayer layer(w, Activation::kRelu);
        auto kernel = make_spmm_kernel("mergepath");
        kernel->prepare(a, d);
        DenseMatrix out(a.rows(), d);
        layer.forward(a, x, *kernel, out, pool);

        DenseMatrix xw(a.rows(), d), expect(a.rows(), d);
        reference_gemm(x, w, xw);
        reference_spmm(a, xw, expect);
        apply_activation(expect, Activation::kRelu);
        EXPECT_TRUE(out.approx_equal(expect, 1e-3, 1e-3))
            << "d=" << d << " diff=" << out.max_abs_diff(expect);
    }
}

TEST(FusionApprox, SageForwardAcrossDims)
{
    WorkStealPool pool(4);
    CsrMatrix a = test_graph(160, 1200, 29);
    const index_t f = 24;
    DenseMatrix h = random_dense(a.rows(), f, 81);
    MergePathSchedule sched = MergePathSchedule::build(a, 48);

    for (index_t d : kDims) {
        DenseMatrix w_self =
            random_dense(f, d, 90 + static_cast<uint64_t>(d));
        DenseMatrix w_neigh =
            random_dense(f, d, 91 + static_cast<uint64_t>(d));
        SageLayer layer(w_self, w_neigh, Activation::kRelu);
        DenseMatrix out(a.rows(), d);
        layer.forward(a, h, sched, out, pool);

        // Unfused math: mean-aggregate, two GEMMs, add, activation.
        DenseMatrix mean(a.rows(), f);
        aggregate_mean(a, h, mean, sched, pool);
        DenseMatrix self_part(a.rows(), d), neigh_part(a.rows(), d);
        reference_gemm(h, w_self, self_part);
        reference_gemm(mean, w_neigh, neigh_part);
        DenseMatrix expect(a.rows(), d);
        for (index_t r = 0; r < a.rows(); ++r)
            for (index_t c = 0; c < d; ++c)
                expect(r, c) = self_part(r, c) + neigh_part(r, c);
        apply_activation(expect, Activation::kRelu);
        EXPECT_TRUE(out.approx_equal(expect, 1e-3, 1e-3))
            << "d=" << d << " diff=" << out.max_abs_diff(expect);
    }
}

TEST(FusionApprox, GinForwardAcrossDims)
{
    WorkStealPool pool(4);
    CsrMatrix a = test_graph(160, 1200, 33);
    const index_t f = 24;
    const float eps = 0.25f;
    DenseMatrix h = random_dense(a.rows(), f, 101);
    MergePathSchedule sched = MergePathSchedule::build(a, 48);

    for (index_t d : kDims) {
        DenseMatrix w =
            random_dense(f, d, 110 + static_cast<uint64_t>(d));
        GinLayer layer(w, eps, Activation::kRelu);
        DenseMatrix out(a.rows(), d);
        layer.forward(a, h, sched, out, pool);

        DenseMatrix agg(a.rows(), f);
        aggregate_gin(a, h, agg, sched, pool, eps);
        DenseMatrix expect(a.rows(), d);
        reference_gemm(agg, w, expect);
        apply_activation(expect, Activation::kRelu);
        EXPECT_TRUE(out.approx_equal(expect, 1e-3, 1e-3))
            << "d=" << d << " diff=" << out.max_abs_diff(expect);
    }
}

/**
 * The model's multi-layer fused pipeline against the classic loop: the
 * "reference" kernel offers no fused plan, so a model built on it runs
 * the exact pre-fusion execution with identical (same-seed) weights.
 */
TEST(FusionModel, TwoLayerFusedMatchesClassicLoop)
{
    WorkStealPool pool(4);
    CsrMatrix a = test_graph(220, 1800, 35);
    DenseMatrix x = random_dense(a.rows(), 24, 121);

    GcnModel fused = GcnModel::two_layer(24, 33, 7, 9, "mergepath");
    GcnModel classic = GcnModel::two_layer(24, 33, 7, 9, "reference");
    DenseMatrix got = fused.infer(a, x, pool);
    DenseMatrix expect = classic.infer(a, x, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-3))
        << "diff=" << got.max_abs_diff(expect);
}

/** Sigmoid epilogue must hit empty rows too: sigmoid(0) = 0.5. */
TEST(FusionModel, SigmoidEpilogueCoversEmptyRows)
{
    WorkStealPool pool(2);
    // Node 0 has no in-edges: CSR row 0 is empty.
    CsrMatrix a(3, 3, {0, 0, 1, 2}, {0, 1}, {1.0f, 1.0f});
    DenseMatrix x(3, 4);
    x.fill(1.0f);
    DenseMatrix w = random_dense(4, 16, 131);
    MergePathSchedule sched = MergePathSchedule::build(a, 2);
    FusedLayerPlan plan(a, 16, borrow_schedule(sched), SpmmLocality{});
    DenseMatrix out(3, 16);
    plan.run(gemm_panel_source(x, w, pool), out, pool,
             activation_epilogue(Activation::kSigmoid));
    for (index_t c = 0; c < 16; ++c)
        ASSERT_FLOAT_EQ(out(0, c), 0.5f) << "empty row, col " << c;
}

/** In-test unfused reference trainer mirroring GcnTrainer::step. */
class UnfusedReferenceTrainer
{
  public:
    UnfusedReferenceTrainer(index_t f, index_t hidden, index_t classes,
                            uint64_t seed, float lr)
        : w1_(random_layer_weights(f, hidden, seed)),
          w2_(random_layer_weights(hidden, classes, seed + 1)), lr_(lr)
    {
    }

    double
    step(const CsrMatrix &a, const DenseMatrix &x,
         const std::vector<int32_t> &labels,
         const std::vector<bool> &mask, WorkStealPool &pool)
    {
        const index_t n = a.rows();
        DenseMatrix xw1(n, w1_.cols());
        dense_gemm(x, w1_, xw1, pool);
        DenseMatrix z1(n, w1_.cols());
        reference_spmm(a, xw1, z1);
        DenseMatrix h1 = z1;
        apply_activation(h1, Activation::kRelu);
        DenseMatrix hw2(n, w2_.cols());
        dense_gemm(h1, w2_, hw2, pool);
        DenseMatrix logits(n, w2_.cols());
        reference_spmm(a, hw2, logits);

        DenseMatrix g2(n, w2_.cols());
        double loss = softmax_cross_entropy(logits, labels, mask, g2);

        DenseMatrix d_hw2(n, w2_.cols());
        reference_spmm(a, g2, d_hw2);
        DenseMatrix d_w2 = at_b(h1, d_hw2);
        DenseMatrix d_h1 = a_bt(d_hw2, w2_);
        for (index_t r = 0; r < n; ++r)
            for (index_t c = 0; c < d_h1.cols(); ++c)
                if (z1(r, c) <= 0.0f)
                    d_h1(r, c) = 0.0f;
        DenseMatrix d_xw1(n, w1_.cols());
        reference_spmm(a, d_h1, d_xw1);
        DenseMatrix d_w1 = at_b(x, d_xw1);

        sgd(w1_, d_w1);
        sgd(w2_, d_w2);
        return loss;
    }

  private:
    static DenseMatrix
    at_b(const DenseMatrix &a, const DenseMatrix &b)
    {
        DenseMatrix out(a.cols(), b.cols());
        for (index_t k = 0; k < a.cols(); ++k)
            for (index_t j = 0; j < b.cols(); ++j) {
                double sum = 0.0;
                for (index_t i = 0; i < a.rows(); ++i)
                    sum += static_cast<double>(a(i, k)) * b(i, j);
                out(k, j) = static_cast<value_t>(sum);
            }
        return out;
    }

    static DenseMatrix
    a_bt(const DenseMatrix &a, const DenseMatrix &b)
    {
        DenseMatrix out(a.rows(), b.rows());
        for (index_t i = 0; i < a.rows(); ++i)
            for (index_t j = 0; j < b.rows(); ++j) {
                double sum = 0.0;
                for (index_t k = 0; k < a.cols(); ++k)
                    sum += static_cast<double>(a(i, k)) * b(j, k);
                out(i, j) = static_cast<value_t>(sum);
            }
        return out;
    }

    void
    sgd(DenseMatrix &w, const DenseMatrix &g)
    {
        for (index_t r = 0; r < w.rows(); ++r)
            for (index_t c = 0; c < w.cols(); ++c)
                w(r, c) -= lr_ * g(r, c);
    }

    DenseMatrix w1_, w2_;
    float lr_;
};

/**
 * 5-epoch training-loss parity: the fused trainer's per-epoch losses
 * must track an unfused reference (same seed, same algorithm, scalar
 * double-precision backward) within float accumulation noise.
 */
TEST(FusionTraining, LossParityOverFiveEpochs)
{
    WorkStealPool pool(4);
    ClassificationProblem prob =
        make_classification_problem(120, 3, 8, 6, 17);
    GcnTrainer trainer(8, 16, prob.num_classes, 99, 0.1f);
    UnfusedReferenceTrainer ref(8, 16, prob.num_classes, 99, 0.1f);

    for (int epoch = 0; epoch < 5; ++epoch) {
        double got = trainer.step(prob.graph, prob.features, prob.labels,
                                  prob.train_mask, pool);
        double want = ref.step(prob.graph, prob.features, prob.labels,
                               prob.train_mask, pool);
        EXPECT_NEAR(got, want, 5e-3 + 5e-3 * std::abs(want))
            << "epoch " << epoch;
    }
    // And with more epochs the fused trainer still learns.
    for (int epoch = 0; epoch < 35; ++epoch)
        trainer.step(prob.graph, prob.features, prob.labels,
                     prob.train_mask, pool);
    DenseMatrix logits =
        trainer.predict(prob.graph, prob.features, pool);
    EXPECT_GT(accuracy(logits, prob.labels, prob.train_mask), 0.5);
}

} // namespace
} // namespace mps
