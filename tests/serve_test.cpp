/**
 * Tests for the serving subsystem: Batcher coalescing policy (pure,
 * clock-injected), Server request lifecycle (validation, backpressure,
 * timeouts, graceful shutdown) and batched-execution correctness
 * against the sequential reference kernels.
 */
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "mps/core/spmm.h"
#include "mps/gcn/activation.h"
#include "mps/gcn/gemm.h"
#include "mps/gcn/layer.h"
#include "mps/serve/batcher.h"
#include "mps/serve/server.h"
#include "mps/sparse/generate.h"
#include "mps/util/metrics.h"
#include "mps/util/rng.h"

namespace mps {
namespace serve {
namespace {

RequestPtr
make_request(uint64_t graph_id)
{
    auto r = std::make_unique<PendingRequest>();
    r->graph_id = graph_id;
    return r;
}

TEST(Batcher, FullGroupReadyImmediately)
{
    Batcher b({/*max_batch=*/3, /*max_delay_us=*/1000000});
    b.add(make_request(1), 100);
    b.add(make_request(1), 110);
    EXPECT_FALSE(b.has_ready(120));
    b.add(make_request(1), 120);
    EXPECT_TRUE(b.has_ready(120));
    std::vector<RequestPtr> batch = b.take_ready(120);
    EXPECT_EQ(batch.size(), 3u);
    EXPECT_EQ(b.pending(), 0u);
}

TEST(Batcher, DelayExpiryReleasesPartialGroup)
{
    Batcher b({/*max_batch=*/8, /*max_delay_us=*/200});
    b.add(make_request(1), 1000);
    EXPECT_FALSE(b.has_ready(1100));
    EXPECT_EQ(b.next_deadline_us(), 1200);
    EXPECT_TRUE(b.has_ready(1200));
    std::vector<RequestPtr> batch = b.take_ready(1200);
    EXPECT_EQ(batch.size(), 1u);
}

TEST(Batcher, SplitFrontCapsBatchAndKeepsOverflow)
{
    Batcher b({/*max_batch=*/4, /*max_delay_us=*/0});
    for (int i = 0; i < 10; ++i)
        b.add(make_request(1), 100 + i);
    EXPECT_EQ(b.pending(), 10u);
    EXPECT_EQ(b.take_ready(200).size(), 4u);
    EXPECT_EQ(b.pending(), 6u);
    EXPECT_EQ(b.take_ready(200).size(), 4u);
    EXPECT_EQ(b.take_ready(200).size(), 2u);
    EXPECT_EQ(b.pending(), 0u);
    EXPECT_TRUE(b.take_ready(200).empty());
}

TEST(Batcher, GraphsGroupSeparately)
{
    Batcher b({/*max_batch=*/2, /*max_delay_us=*/1000000});
    b.add(make_request(7), 10);
    b.add(make_request(9), 20);
    EXPECT_FALSE(b.has_ready(30)); // two singleton groups, neither full
    b.add(make_request(7), 30);
    std::vector<RequestPtr> batch = b.take_ready(30);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0]->graph_id, 7u);
    EXPECT_EQ(batch[1]->graph_id, 7u);
    EXPECT_EQ(b.pending(), 1u);
}

TEST(Batcher, TakeAnyFlushesRegardlessOfReadiness)
{
    Batcher b({/*max_batch=*/8, /*max_delay_us=*/1000000});
    b.add(make_request(1), 50);
    b.add(make_request(2), 10);
    // take_any picks the oldest group first.
    std::vector<RequestPtr> first = b.take_any();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0]->graph_id, 2u);
    EXPECT_EQ(b.take_any().size(), 1u);
    EXPECT_TRUE(b.take_any().empty());
}

/** Small serving fixture: a power-law graph with a 2-layer model. */
class ServerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PowerLawParams p;
        p.nodes = 64;
        p.target_nnz = 512;
        p.max_degree = 16;
        p.seed = 5;
        p.value_mode = ValueMode::kGcnNormalized;
        graph_ = power_law_graph(p);
        layers_.emplace_back(random_layer_weights(8, 6, 21),
                             Activation::kRelu);
        layers_.emplace_back(random_layer_weights(6, 4, 22),
                             Activation::kNone);
        Pcg32 rng(77);
        features_ = DenseMatrix(graph_.rows(), 8);
        features_.fill_random(rng);
    }

    /** out = act(A * (x * W)) per layer, all-sequential reference. */
    DenseMatrix
    reference_forward(const DenseMatrix &x) const
    {
        DenseMatrix cur = x;
        for (const GcnLayer &layer : layers_) {
            DenseMatrix xw(graph_.rows(), layer.out_features());
            reference_gemm(cur, layer.weights(), xw);
            DenseMatrix out(graph_.rows(), layer.out_features());
            reference_spmm(graph_, xw, out);
            apply_activation(out, layer.activation());
            cur = std::move(out);
        }
        return cur;
    }

    CsrMatrix graph_;
    std::vector<GcnLayer> layers_;
    DenseMatrix features_;
};

TEST_F(ServerFixture, InferMatchesSequentialReference)
{
    Server server;
    uint64_t gid = server.register_graph(graph_, layers_);
    InferenceResult r = server.infer(gid, features_);
    ASSERT_EQ(r.status, RequestStatus::kOk);
    EXPECT_TRUE(r.output.approx_equal(reference_forward(features_)));
    EXPECT_GE(r.batch_size, 1);
    EXPECT_GT(r.latency_ms, 0.0);
}

TEST_F(ServerFixture, BatchedExecutionMatchesPerRequestResults)
{
    ServeConfig cfg;
    cfg.batch.max_batch = 4;
    cfg.batch.max_delay_us = 1000000; // only dispatch full batches
    cfg.autostart = false;
    Server server(cfg);
    uint64_t gid = server.register_graph(graph_, layers_);

    // Distinct inputs so cross-request mixups would be caught.
    Pcg32 rng(123);
    std::vector<DenseMatrix> inputs;
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 4; ++i) {
        DenseMatrix x(graph_.rows(), 8);
        x.fill_random(rng);
        inputs.push_back(x);
        futures.push_back(server.submit(gid, std::move(x)));
    }
    server.start(); // burst-drains all 4 into one batch
    for (int i = 0; i < 4; ++i) {
        InferenceResult r = futures[static_cast<size_t>(i)].get();
        ASSERT_EQ(r.status, RequestStatus::kOk) << r.message;
        EXPECT_EQ(r.batch_size, 4);
        EXPECT_TRUE(r.output.approx_equal(
            reference_forward(inputs[static_cast<size_t>(i)])));
    }
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 4);
    EXPECT_EQ(stats.batches, 1);
    EXPECT_EQ(stats.max_batch_size, 4);
}

TEST_F(ServerFixture, ValidationFailsFast)
{
    Server server;
    uint64_t gid = server.register_graph(graph_, layers_);

    InferenceResult unknown = server.infer(gid + 100, features_);
    EXPECT_EQ(unknown.status, RequestStatus::kUnknownGraph);

    DenseMatrix wrong(graph_.rows(), 5); // model wants 8 features
    InferenceResult bad = server.infer(gid, std::move(wrong));
    EXPECT_EQ(bad.status, RequestStatus::kBadRequest);

    // Valid requests still work afterwards.
    EXPECT_EQ(server.infer(gid, features_).status, RequestStatus::kOk);
}

TEST_F(ServerFixture, RejectPolicyFailsFastWhenQueueFull)
{
    ServeConfig cfg;
    cfg.queue_capacity = 2;
    cfg.overflow = OverflowPolicy::kReject;
    cfg.autostart = false; // no consumer: the queue must fill
    Server server(cfg);
    uint64_t gid = server.register_graph(graph_, layers_);

    auto f1 = server.submit(gid, features_);
    auto f2 = server.submit(gid, features_);
    auto f3 = server.submit(gid, features_);
    InferenceResult rejected = f3.get();
    EXPECT_EQ(rejected.status, RequestStatus::kRejected);

    server.shutdown(); // starts, drains, executes the two queued
    EXPECT_EQ(f1.get().status, RequestStatus::kOk);
    EXPECT_EQ(f2.get().status, RequestStatus::kOk);
    EXPECT_EQ(server.stats().rejected, 1);
}

TEST_F(ServerFixture, ExpiredRequestTimesOutInsteadOfExecuting)
{
    ServeConfig cfg;
    cfg.autostart = false;
    Server server(cfg);
    uint64_t gid = server.register_graph(graph_, layers_);
    auto f = server.submit(gid, features_, /*timeout_ms=*/1.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.shutdown();
    InferenceResult r = f.get();
    EXPECT_EQ(r.status, RequestStatus::kTimeout);
    EXPECT_EQ(server.stats().timed_out, 1);
}

TEST_F(ServerFixture, GracefulShutdownAnswersEveryQueuedRequest)
{
    ServeConfig cfg;
    cfg.batch.max_batch = 3;
    cfg.autostart = false;
    Server server(cfg);
    uint64_t gid = server.register_graph(graph_, layers_);

    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 7; ++i)
        futures.push_back(server.submit(gid, features_));
    server.shutdown(); // must drain and execute all 7
    for (auto &f : futures)
        EXPECT_EQ(f.get().status, RequestStatus::kOk);
    EXPECT_EQ(server.stats().completed, 7);

    // After shutdown new requests resolve immediately with kShutdown.
    InferenceResult late = server.infer(gid, features_);
    EXPECT_EQ(late.status, RequestStatus::kShutdown);
}

TEST_F(ServerFixture, ConcurrentClientsAllComplete)
{
    ServeConfig cfg;
    cfg.batch.max_batch = 4;
    cfg.batch.max_delay_us = 500;
    Server server(cfg);
    uint64_t gid = server.register_graph(graph_, layers_);

    constexpr int kClients = 4;
    constexpr int kPerClient = 8;
    std::atomic<int> ok{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&] {
            for (int i = 0; i < kPerClient; ++i) {
                DenseMatrix x = features_;
                if (server.infer(gid, std::move(x)).status ==
                    RequestStatus::kOk)
                    ok.fetch_add(1);
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(ok.load(), kClients * kPerClient);
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, kClients * kPerClient);
    EXPECT_EQ(stats.latency_ms.count, kClients * kPerClient);
    EXPECT_GT(stats.latency_ms.p99, 0.0);
}

TEST_F(ServerFixture, MetricsInstrumentTheServePath)
{
    MetricsRegistry &m = MetricsRegistry::global();
    m.reset();
    m.set_enabled(true);
    {
        Server server;
        uint64_t gid = server.register_graph(graph_, layers_);
        for (int i = 0; i < 3; ++i)
            EXPECT_TRUE(server.infer(gid, features_).ok());
        server.shutdown();
    }
    m.set_enabled(false);
    EXPECT_EQ(m.counter_value("serve.requests.submitted"), 3);
    EXPECT_EQ(m.counter_value("serve.requests.completed"), 3);
    EXPECT_GE(m.counter_value("serve.batches"), 1);
    EXPECT_GE(m.timer_value("serve.batch.size").count, 1);
    const MetricSnapshot lat =
        m.histogram_value("serve.request.latency_ms");
    EXPECT_GE(lat.count, 3);
    EXPECT_GT(lat.p99, 0.0);
    EXPECT_GE(lat.p99, lat.p50);
    EXPECT_GT(m.gauge_value("serve.latency.p50_ms"), 0.0);
    EXPECT_GE(m.gauge_value("serve.latency.p99_ms"),
              m.gauge_value("serve.latency.p50_ms"));
    m.reset();
}

} // namespace
} // namespace serve
} // namespace mps
