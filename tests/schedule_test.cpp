/** Tests for the MergePath-SpMM schedule and its census. */
#include <gtest/gtest.h>

#include <vector>

#include "mps/core/policy.h"
#include "mps/core/schedule.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/generate.h"

namespace mps {
namespace {

/** One evil row holding almost every non-zero, plus singleton rows. */
CsrMatrix
evil_row_matrix(index_t rows, index_t evil_nnz)
{
    std::vector<index_t> row_ptr(static_cast<size_t>(rows) + 1);
    std::vector<index_t> cols;
    row_ptr[0] = 0;
    for (index_t r = 0; r < rows; ++r) {
        index_t d = (r == 0) ? evil_nnz : 1;
        row_ptr[static_cast<size_t>(r) + 1] =
            row_ptr[static_cast<size_t>(r)] + d;
        for (index_t k = 0; k < d; ++k)
            cols.push_back((r + k) % rows);
    }
    std::vector<value_t> vals(cols.size(), 1.0f);
    return CsrMatrix(rows, rows, std::move(row_ptr), std::move(cols),
                     std::move(vals));
}

TEST(Schedule, SingleThreadOwnsEverything)
{
    CsrMatrix m = erdos_renyi_graph(40, 200, 1);
    MergePathSchedule s = MergePathSchedule::build(m, 1);
    s.validate(m);
    ScheduleCensus c = s.census(m);
    EXPECT_EQ(c.atomic_commits, 0);
    EXPECT_EQ(c.split_rows, 0);
    EXPECT_EQ(c.plain_row_writes, 40);
    EXPECT_EQ(c.plain_nnz, 200);
}

TEST(Schedule, EvilRowIsSplitAcrossThreads)
{
    CsrMatrix m = evil_row_matrix(16, 1000);
    MergePathSchedule s = MergePathSchedule::build(m, 8);
    s.validate(m);
    ScheduleCensus c = s.census(m);
    // The evil row must be shared by several threads...
    EXPECT_GE(c.split_rows, 1);
    EXPECT_GE(c.atomic_commits, 2);
    // ...and no thread may hold more than the merge-path cost.
    EXPECT_LE(c.max_items_per_thread, s.items_per_thread());
}

TEST(Schedule, LoadBalanceBoundHolds)
{
    CsrMatrix m = make_dataset("Cora");
    for (index_t threads : {2, 16, 128, 1024}) {
        MergePathSchedule s = MergePathSchedule::build(m, threads);
        s.validate(m);
        ScheduleCensus c = s.census(m);
        EXPECT_LE(c.max_items_per_thread, s.items_per_thread())
            << "threads=" << threads;
    }
}

TEST(Schedule, CensusPartitionsNnz)
{
    CsrMatrix m = make_dataset("Citeseer");
    for (index_t threads : {1, 3, 64, 999}) {
        MergePathSchedule s = MergePathSchedule::build(m, threads);
        ScheduleCensus c = s.census(m);
        EXPECT_EQ(c.atomic_nnz + c.plain_nnz, m.nnz())
            << "threads=" << threads;
    }
}

TEST(Schedule, BuildWithCostAppliesMinThreadFloor)
{
    CsrMatrix m = erdos_renyi_graph(100, 400, 3); // 500 merge items
    MergePathSchedule without =
        MergePathSchedule::build_with_cost(m, 50, /*min_threads=*/0);
    EXPECT_EQ(without.num_threads(), 10);
    MergePathSchedule with =
        MergePathSchedule::build_with_cost(m, 50, /*min_threads=*/1024);
    EXPECT_EQ(with.num_threads(), 1024);
    with.validate(m);
}

TEST(Schedule, EmptyMatrix)
{
    CsrMatrix m(0, 0, {0}, {}, {});
    MergePathSchedule s = MergePathSchedule::build(m, 4);
    s.validate(m);
    ScheduleCensus c = s.census(m);
    EXPECT_EQ(c.empty_threads, 4);
    EXPECT_EQ(c.atomic_commits + c.plain_row_writes, 0);
}

TEST(Schedule, MatrixWithOnlyEmptyRows)
{
    CsrMatrix m(64, 64, std::vector<index_t>(65, 0), {}, {});
    MergePathSchedule s = MergePathSchedule::build(m, 8);
    s.validate(m);
    ScheduleCensus c = s.census(m);
    EXPECT_EQ(c.atomic_commits, 0);
    EXPECT_EQ(c.plain_row_writes, 64);
    EXPECT_EQ(c.plain_nnz, 0);
}

TEST(Schedule, MoreThreadsThanItems)
{
    CsrMatrix m = erdos_renyi_graph(4, 6, 9); // 10 merge items
    MergePathSchedule s = MergePathSchedule::build(m, 100);
    s.validate(m);
    ScheduleCensus c = s.census(m);
    EXPECT_GT(c.empty_threads, 0);
    EXPECT_EQ(c.atomic_nnz + c.plain_nnz, m.nnz());
}

/**
 * Cross-thread exclusivity: replaying every thread's resolved ranges
 * must touch each non-zero exactly once, and atomic/plain decisions
 * must be consistent per row (a row written plainly is written by no
 * other thread).
 */
class ScheduleCoverageTest
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ScheduleCoverageTest, NnzCoveredExactlyOnceAndWritesExclusive)
{
    auto [seed, threads] = GetParam();
    PowerLawParams p;
    p.nodes = 300;
    p.target_nnz = 1500;
    p.max_degree = 120;
    p.seed = static_cast<uint64_t>(seed);
    CsrMatrix m = power_law_graph(p);

    MergePathSchedule s =
        MergePathSchedule::build(m, static_cast<index_t>(threads));
    s.validate(m);

    std::vector<int> nnz_hits(static_cast<size_t>(m.nnz()), 0);
    std::vector<int> plain_writers(static_cast<size_t>(m.rows()), 0);
    std::vector<int> atomic_writers(static_cast<size_t>(m.rows()), 0);

    for (index_t t = 0; t < s.num_threads(); ++t) {
        ResolvedWork w = s.resolve(t, m);
        if (w.has_head()) {
            for (index_t k = w.head_begin; k < w.head_end; ++k)
                ++nnz_hits[static_cast<size_t>(k)];
            ++(w.head_atomic
                   ? atomic_writers[static_cast<size_t>(w.head_row)]
                   : plain_writers[static_cast<size_t>(w.head_row)]);
        }
        for (index_t r = w.first_complete_row; r < w.last_complete_row;
             ++r) {
            for (index_t k = m.row_begin(r); k < m.row_end(r); ++k)
                ++nnz_hits[static_cast<size_t>(k)];
            ++plain_writers[static_cast<size_t>(r)];
        }
        if (w.has_tail()) {
            for (index_t k = w.tail_begin; k < w.tail_end; ++k)
                ++nnz_hits[static_cast<size_t>(k)];
            ++atomic_writers[static_cast<size_t>(w.tail_row)];
        }
    }

    for (size_t k = 0; k < nnz_hits.size(); ++k)
        ASSERT_EQ(nnz_hits[k], 1) << "nnz " << k;
    for (index_t r = 0; r < m.rows(); ++r) {
        int plain = plain_writers[static_cast<size_t>(r)];
        int atomic = atomic_writers[static_cast<size_t>(r)];
        // Exclusive plain ownership, or >= 2 atomic contributors, or
        // nothing (empty row handled by the plain owner of its range).
        ASSERT_LE(plain, 1) << "row " << r;
        if (plain == 1) {
            ASSERT_EQ(atomic, 0) << "row " << r;
        }
        if (atomic > 0) {
            ASSERT_GE(atomic, 2) << "row " << r;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleCoverageTest,
    testing::Combine(testing::Values(1, 2, 3),
                     testing::Values(1, 2, 3, 7, 16, 61, 256, 1800)));

TEST(Policy, DefaultCostsMatchPaperFigure6)
{
    EXPECT_EQ(default_merge_path_cost(2), 50);
    EXPECT_EQ(default_merge_path_cost(4), 15);
    EXPECT_EQ(default_merge_path_cost(8), 15);
    EXPECT_EQ(default_merge_path_cost(16), 20);
    EXPECT_EQ(default_merge_path_cost(32), 30);
    EXPECT_EQ(default_merge_path_cost(64), 35);
    EXPECT_EQ(default_merge_path_cost(128), 50);
}

TEST(Policy, SimdMappingRules)
{
    SimdPolicy simd; // 32 lanes, min 1024 threads
    // d == lanes: one thread per warp.
    LaunchConfig at32 = make_launch_config(10000, 50000, 32, 30, simd);
    EXPECT_EQ(at32.threads_per_warp, 1);
    EXPECT_EQ(at32.warps_per_thread, 1);
    // d = 64: two warps per thread.
    LaunchConfig at64 = make_launch_config(10000, 50000, 64, 35, simd);
    EXPECT_EQ(at64.warps_per_thread, 2);
    EXPECT_EQ(at64.num_warps, 2LL * at64.num_threads);
    // d = 16: two threads per warp.
    LaunchConfig at16 = make_launch_config(10000, 50000, 16, 20, simd);
    EXPECT_EQ(at16.threads_per_warp, 2);
    EXPECT_EQ(at16.num_warps, (at16.num_threads + 1) / 2);
    // d = 2: sixteen threads per warp.
    LaunchConfig at2 = make_launch_config(10000, 50000, 2, 50, simd);
    EXPECT_EQ(at2.threads_per_warp, 16);
}

TEST(Policy, MinThreadFloorForSmallGraphs)
{
    SimdPolicy simd;
    LaunchConfig cfg = make_launch_config(100, 400, 16, 50, simd);
    EXPECT_EQ(cfg.num_threads, 1024);
}

TEST(Policy, ThreadCountFollowsCost)
{
    SimdPolicy simd;
    simd.min_threads = 0;
    LaunchConfig cfg = make_launch_config(10000, 90000, 16, 20, simd);
    EXPECT_EQ(cfg.num_threads, (10000 + 90000 + 19) / 20);
}

} // namespace
} // namespace mps
