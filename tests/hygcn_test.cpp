/** Tests for the HyGCN-style hybrid accelerator model. */
#include <gtest/gtest.h>

#include "mps/accel/hygcn.h"
#include "mps/sparse/generate.h"

namespace mps {
namespace {

TEST(HyGcn, PipelineTakesTheSlowerEngine)
{
    CsrMatrix a = erdos_renyi_graph(10000, 50000, 1);
    HyGcnConfig cfg;
    HyGcnResult r = simulate_hygcn(a, 64, 16, cfg);
    double agg = 50000.0 * 16 /
                 (cfg.agg_macs_per_cycle * cfg.gather_efficiency);
    double comb = 10000.0 * 64 * 16 / cfg.comb_macs_per_cycle;
    EXPECT_NEAR(r.agg_cycles, agg, 1e-6);
    EXPECT_NEAR(r.comb_cycles, comb, 1e-6);
    EXPECT_NEAR(r.cycles, std::max(agg, comb) +
                              cfg.fixed_overhead_cycles, 1e-6);
}

TEST(HyGcn, UtilizationComplementarity)
{
    CsrMatrix a = erdos_renyi_graph(5000, 25000, 2);
    HyGcnResult r = simulate_hygcn(a, 64, 16);
    // Exactly one engine saturates; the other idles below 100%.
    double hi = std::max(r.agg_utilization, r.comb_utilization);
    double lo = std::min(r.agg_utilization, r.comb_utilization);
    EXPECT_NEAR(hi, 1.0, 1e-9);
    EXPECT_LT(lo, 1.0);
}

TEST(HyGcn, WorkRatioDecidesTheIdleEngine)
{
    // Dense-ish graph (high degree): aggregation dominates.
    CsrMatrix dense_graph = erdos_renyi_graph(2000, 200000, 3);
    HyGcnResult heavy_agg = simulate_hygcn(dense_graph, 16, 16);
    EXPECT_GT(heavy_agg.agg_cycles, heavy_agg.comb_cycles);
    EXPECT_LT(heavy_agg.comb_utilization, 0.5);

    // Sparse graph with wide features: combination dominates.
    CsrMatrix sparse_graph = erdos_renyi_graph(2000, 4000, 4);
    HyGcnResult heavy_comb = simulate_hygcn(sparse_graph, 512, 16);
    EXPECT_GT(heavy_comb.comb_cycles, heavy_comb.agg_cycles);
    EXPECT_LT(heavy_comb.agg_utilization, 0.5);
}

TEST(HyGcn, ScalesWithOutputDim)
{
    CsrMatrix a = erdos_renyi_graph(3000, 15000, 5);
    HyGcnResult d16 = simulate_hygcn(a, 64, 16);
    HyGcnResult d64 = simulate_hygcn(a, 64, 64);
    EXPECT_NEAR(d64.agg_cycles / d16.agg_cycles, 4.0, 1e-9);
    EXPECT_NEAR(d64.comb_cycles / d16.comb_cycles, 4.0, 1e-9);
}

TEST(HyGcnDeathTest, RejectsBadConfig)
{
    CsrMatrix a = erdos_renyi_graph(10, 20, 6);
    HyGcnConfig cfg;
    cfg.gather_efficiency = 0.0;
    EXPECT_DEATH(simulate_hygcn(a, 8, 8, cfg), "gather efficiency");
    EXPECT_DEATH(simulate_hygcn(a, 0, 8), "positive");
}

} // namespace
} // namespace mps
