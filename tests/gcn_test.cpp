/** Tests for GEMM, activations, GCN layers and the model. */
#include <gtest/gtest.h>

#include <cmath>

#include "mps/gcn/activation.h"
#include "mps/gcn/gemm.h"
#include "mps/gcn/layer.h"
#include "mps/gcn/model.h"
#include "mps/core/spmm.h"
#include "mps/kernels/registry.h"
#include "mps/sparse/generate.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

DenseMatrix
random_dense(index_t rows, index_t cols, uint64_t seed)
{
    DenseMatrix m(rows, cols);
    Pcg32 rng(seed);
    m.fill_random(rng);
    return m;
}

TEST(Gemm, HandExample)
{
    DenseMatrix x(2, 3), w(3, 2), out(2, 2);
    // x = [1 2 3; 4 5 6], w = [1 0; 0 1; 1 1]
    x(0, 0) = 1; x(0, 1) = 2; x(0, 2) = 3;
    x(1, 0) = 4; x(1, 1) = 5; x(1, 2) = 6;
    w(0, 0) = 1; w(1, 1) = 1; w(2, 0) = 1; w(2, 1) = 1;
    reference_gemm(x, w, out);
    EXPECT_FLOAT_EQ(out(0, 0), 4.0f);
    EXPECT_FLOAT_EQ(out(0, 1), 5.0f);
    EXPECT_FLOAT_EQ(out(1, 0), 10.0f);
    EXPECT_FLOAT_EQ(out(1, 1), 11.0f);
}

TEST(Gemm, ParallelMatchesReference)
{
    WorkStealPool pool(4);
    DenseMatrix x = random_dense(301, 47, 1);
    DenseMatrix w = random_dense(47, 19, 2);
    DenseMatrix expect(301, 19), got(301, 19);
    reference_gemm(x, w, expect);
    dense_gemm(x, w, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-4, 1e-5));
}

TEST(Gemm, SkipsZeroFeatures)
{
    // A zero X must give a zero product even with garbage in out.
    WorkStealPool pool(2);
    DenseMatrix x(10, 4); // zero-initialized
    DenseMatrix w = random_dense(4, 3, 3);
    DenseMatrix out(10, 3);
    out.fill(7.0f);
    dense_gemm(x, w, out, pool);
    for (index_t r = 0; r < 10; ++r) {
        for (index_t c = 0; c < 3; ++c)
            ASSERT_FLOAT_EQ(out(r, c), 0.0f);
    }
}

TEST(GemmDeathTest, ShapeMismatch)
{
    DenseMatrix x(2, 3), w(4, 2), out(2, 2);
    EXPECT_DEATH(reference_gemm(x, w, out), "inner dimensions");
}

TEST(Activation, Relu)
{
    DenseMatrix m(1, 4);
    m(0, 0) = -2.0f;
    m(0, 1) = 0.0f;
    m(0, 2) = 3.0f;
    m(0, 3) = -0.5f;
    apply_activation(m, Activation::kRelu);
    EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(m(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(m(0, 2), 3.0f);
    EXPECT_FLOAT_EQ(m(0, 3), 0.0f);
}

TEST(Activation, Sigmoid)
{
    DenseMatrix m(1, 2);
    m(0, 0) = 0.0f;
    m(0, 1) = 100.0f;
    apply_activation(m, Activation::kSigmoid);
    EXPECT_FLOAT_EQ(m(0, 0), 0.5f);
    EXPECT_NEAR(m(0, 1), 1.0f, 1e-6);
}

TEST(Activation, NoneIsIdentity)
{
    DenseMatrix m = random_dense(3, 3, 5);
    DenseMatrix copy = m;
    apply_activation(m, Activation::kNone);
    EXPECT_DOUBLE_EQ(m.max_abs_diff(copy), 0.0);
}

TEST(Activation, Parse)
{
    EXPECT_EQ(parse_activation("relu"), Activation::kRelu);
    EXPECT_EQ(parse_activation("none"), Activation::kNone);
    EXPECT_EQ(parse_activation("sigmoid"), Activation::kSigmoid);
    EXPECT_EXIT(parse_activation("tanh"), testing::ExitedWithCode(1),
                "unknown activation");
}

TEST(GcnLayer, ForwardMatchesManualPipeline)
{
    WorkStealPool pool(4);
    CsrMatrix a = erdos_renyi_graph(120, 600, 7);
    a.normalize_gcn();
    DenseMatrix x = random_dense(120, 32, 8);
    DenseMatrix w = random_dense(32, 16, 9);

    GcnLayer layer(w, Activation::kRelu);
    auto kernel = make_spmm_kernel("mergepath");
    kernel->prepare(a, 16);
    DenseMatrix out(120, 16);
    layer.forward(a, x, *kernel, out, pool);

    // Manual: relu(A * (X * W)) with reference kernels.
    DenseMatrix xw(120, 16), expect(120, 16);
    reference_gemm(x, w, xw);
    reference_spmm(a, xw, expect);
    apply_activation(expect, Activation::kRelu);
    EXPECT_TRUE(out.approx_equal(expect, 1e-3, 1e-4));
}

TEST(GcnLayer, RandomWeightsDeterministicAndBounded)
{
    DenseMatrix w1 = random_layer_weights(64, 16, 3);
    DenseMatrix w2 = random_layer_weights(64, 16, 3);
    EXPECT_DOUBLE_EQ(w1.max_abs_diff(w2), 0.0);
    float bound = std::sqrt(6.0f / (64 + 16));
    for (index_t r = 0; r < 64; ++r) {
        for (index_t c = 0; c < 16; ++c)
            ASSERT_LE(std::abs(w1(r, c)), bound);
    }
}

TEST(GcnModel, TwoLayerShapesAndDeterminism)
{
    WorkStealPool pool(4);
    CsrMatrix a = erdos_renyi_graph(200, 1200, 11);
    a.normalize_gcn();
    DenseMatrix x = random_dense(200, 48, 12);

    GcnModel model = GcnModel::two_layer(48, 16, 7, 1);
    ASSERT_EQ(model.num_layers(), 2u);
    DenseMatrix out1 = model.infer(a, x, pool);
    EXPECT_EQ(out1.rows(), 200);
    EXPECT_EQ(out1.cols(), 7);

    GcnModel model2 = GcnModel::two_layer(48, 16, 7, 1);
    DenseMatrix out2 = model2.infer(a, x, pool);
    EXPECT_TRUE(out1.approx_equal(out2, 1e-3, 1e-4));
}

TEST(GcnModel, AllKernelsProduceSameInference)
{
    WorkStealPool pool(4);
    PowerLawParams p;
    p.nodes = 150;
    p.target_nnz = 900;
    p.max_degree = 100;
    p.seed = 13;
    CsrMatrix a = power_law_graph(p);
    a.normalize_gcn();
    DenseMatrix x = random_dense(150, 24, 14);

    GcnModel gold = GcnModel::two_layer(24, 16, 5, 2, "reference");
    DenseMatrix expect = gold.infer(a, x, pool);
    for (const std::string name :
         {"mergepath", "gnnadvisor", "row_split", "adaptive",
          "mergepath_serial"}) {
        GcnModel model = GcnModel::two_layer(24, 16, 5, 2, name);
        DenseMatrix out = model.infer(a, x, pool);
        EXPECT_TRUE(out.approx_equal(expect, 1e-3, 1e-3)) << name;
    }
}

TEST(GcnModel, OfflineReusesScheduleOnlineRebuilds)
{
    WorkStealPool pool(2);
    CsrMatrix a = erdos_renyi_graph(400, 2400, 15);
    DenseMatrix x = random_dense(400, 16, 16);

    GcnModel offline = GcnModel::two_layer(16, 16, 4, 3, "mergepath",
                                           ScheduleMode::kOffline);
    InferenceStats s1, s2;
    offline.infer(a, x, pool, &s1);
    offline.infer(a, x, pool, &s2);
    EXPECT_GT(s1.schedule_seconds, 0.0);
    EXPECT_EQ(s2.schedule_seconds, 0.0); // cached

    GcnModel online = GcnModel::two_layer(16, 16, 4, 3, "mergepath",
                                          ScheduleMode::kOnline);
    InferenceStats o1, o2;
    online.infer(a, x, pool, &o1);
    online.infer(a, x, pool, &o2);
    EXPECT_GT(o1.schedule_seconds, 0.0);
    EXPECT_GT(o2.schedule_seconds, 0.0); // rebuilt every inference
}

TEST(GcnModel, NewGraphInvalidatesOfflineCache)
{
    WorkStealPool pool(2);
    CsrMatrix a1 = erdos_renyi_graph(100, 500, 17);
    CsrMatrix a2 = erdos_renyi_graph(130, 700, 18);
    DenseMatrix x1 = random_dense(100, 8, 19);
    DenseMatrix x2 = random_dense(130, 8, 19);

    GcnModel model = GcnModel::two_layer(8, 8, 3, 4, "mergepath",
                                         ScheduleMode::kOffline);
    InferenceStats s;
    model.infer(a1, x1, pool, &s);
    EXPECT_GT(s.schedule_seconds, 0.0);
    model.infer(a2, x2, pool, &s);
    EXPECT_GT(s.schedule_seconds, 0.0) << "cache must be invalidated";
    model.infer(a2, x2, pool, &s);
    EXPECT_EQ(s.schedule_seconds, 0.0);
}

TEST(GcnModelDeathTest, MismatchedLayerWidths)
{
    GcnModel model("reference");
    model.add_layer(GcnLayer(random_layer_weights(8, 16, 1),
                             Activation::kRelu));
    EXPECT_DEATH(model.add_layer(GcnLayer(random_layer_weights(8, 4, 2),
                                          Activation::kNone)),
                 "chain");
}

TEST(InferenceStats, OverheadFraction)
{
    InferenceStats s;
    s.schedule_seconds = 0.02;
    s.compute_seconds = 0.98;
    EXPECT_NEAR(s.overhead_fraction(), 0.02, 1e-12);
    InferenceStats zero;
    EXPECT_DOUBLE_EQ(zero.overhead_fraction(), 0.0);
}

} // namespace
} // namespace mps
