/**
 * @file
 * WorkStealPool semantics: exactly-once index execution under static
 * partitioning + stealing, auto-derived grain, concurrent submission
 * from multiple caller threads, re-entrant (nested) submission
 * degrading to inline execution, and the scheduler observability
 * counters. The concurrency cases run under -DMPS_SANITIZE=thread in
 * tools/check.sh, so every claim/park/recycle path is TSan-checked.
 */
#include "mps/util/work_steal_pool.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mps/util/metrics.h"

namespace mps {
namespace {

TEST(WorkStealPool, RunsEveryIndexExactlyOnce)
{
    WorkStealPool pool(4);
    const uint64_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](uint64_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkStealPool, ExplicitGrainCoversAll)
{
    WorkStealPool pool(3);
    const uint64_t n = 1000;
    std::atomic<uint64_t> sum{0};
    pool.parallel_for(
        n, [&](uint64_t i) { sum.fetch_add(i + 1); }, /*grain=*/7);
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

TEST(WorkStealPool, AutoGrainCoversSmallAndAwkwardSizes)
{
    WorkStealPool pool(4);
    for (uint64_t n : {uint64_t{1}, uint64_t{2}, uint64_t{13},
                       uint64_t{257}, uint64_t{4096}}) {
        std::atomic<uint64_t> count{0};
        pool.parallel_for(n, [&](uint64_t) { count.fetch_add(1); });
        EXPECT_EQ(count.load(), n) << "n=" << n;
    }
}

TEST(WorkStealPool, ZeroTasksIsNoop)
{
    WorkStealPool pool(2);
    bool ran = false;
    pool.parallel_for(0, [&](uint64_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(WorkStealPool, Reusable)
{
    WorkStealPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 200; ++round)
        pool.parallel_for(100, [&](uint64_t) { ++count; });
    EXPECT_EQ(count.load(), 200 * 100);
}

TEST(WorkStealPool, RangesVariantCoversAllOnce)
{
    WorkStealPool pool(3);
    const uint64_t n = 5000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for_ranges(n, [&](uint64_t begin, uint64_t end) {
        ASSERT_LE(begin, end);
        ASSERT_LE(end, n);
        for (uint64_t i = begin; i < end; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkStealPool, CurrentSlotStaysInBounds)
{
    WorkStealPool pool(3);
    const unsigned slots = pool.max_concurrency();
    EXPECT_EQ(slots, 4u);
    std::vector<std::atomic<int64_t>> per_slot(slots);
    const uint64_t n = 4096;
    pool.parallel_for(n, [&](uint64_t) {
        const unsigned slot = pool.current_slot();
        ASSERT_LT(slot, slots);
        per_slot[slot].fetch_add(1, std::memory_order_relaxed);
    });
    int64_t total = 0;
    for (unsigned s = 0; s < slots; ++s)
        total += per_slot[s].load();
    EXPECT_EQ(total, static_cast<int64_t>(n));
    // A non-executor thread reports the caller slot.
    EXPECT_EQ(pool.current_slot(), pool.size());
}

// The serve worker-pool pattern: many threads submitting parallel_for
// into ONE shared pool at the same time. Every submission must see
// exactly-once execution of its own index space.
TEST(WorkStealPool, ConcurrentSubmissionsFromManyCallers)
{
    WorkStealPool pool(3);
    constexpr int kCallers = 4;
    constexpr int kRounds = 25;
    constexpr uint64_t kN = 513;

    std::vector<std::thread> callers;
    std::vector<std::atomic<int>> failures(kCallers);
    for (int c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] {
            std::vector<std::atomic<int>> hits(kN);
            for (int round = 0; round < kRounds; ++round) {
                for (auto &h : hits)
                    h.store(0, std::memory_order_relaxed);
                pool.parallel_for(kN, [&](uint64_t i) {
                    hits[i].fetch_add(1, std::memory_order_relaxed);
                });
                for (uint64_t i = 0; i < kN; ++i) {
                    if (hits[i].load() != 1)
                        failures[c].fetch_add(1);
                }
            }
        });
    }
    for (auto &t : callers)
        t.join();
    for (int c = 0; c < kCallers; ++c)
        EXPECT_EQ(failures[c].load(), 0) << "caller " << c;
}

// A parallel_for body submitting to the same pool: worker-side calls
// degrade to inline execution, caller-side participation submits a
// second concurrent job. Either way, every inner index runs once and
// nothing deadlocks.
TEST(WorkStealPool, ReentrantSubmissionDegradesInline)
{
    WorkStealPool pool(2);
    constexpr uint64_t kOuter = 16;
    constexpr uint64_t kInner = 64;
    std::atomic<int64_t> inner_total{0};
    pool.parallel_for(kOuter, [&](uint64_t) {
        pool.parallel_for(kInner, [&](uint64_t) {
            inner_total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner_total.load(),
              static_cast<int64_t>(kOuter * kInner));
}

TEST(WorkStealPool, DeeplyNestedStillCompletes)
{
    WorkStealPool pool(2);
    std::atomic<int64_t> leaves{0};
    pool.parallel_for(4, [&](uint64_t) {
        pool.parallel_for(4, [&](uint64_t) {
            pool.parallel_for(4, [&](uint64_t) {
                leaves.fetch_add(1, std::memory_order_relaxed);
            });
        });
    });
    EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

TEST(WorkStealPool, PublishesSchedulerMetrics)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.reset();
    metrics.set_enabled(true);
    {
        WorkStealPool pool(3);
        // Large enough to fan out: the dispatch timer and job counter
        // must tick; steals/parks depend on timing so only the
        // counters' existence is asserted via non-negativity.
        for (int round = 0; round < 8; ++round) {
            pool.parallel_for(2048, [&](uint64_t i) { (void)i; });
        }
        EXPECT_GE(metrics.counter_value("pool.jobs"), 8);
        EXPECT_GE(metrics.timer_value("pool.dispatch_ns").count, 8);
        EXPECT_GE(metrics.counter_value("pool.steals"), 0);
        EXPECT_GE(metrics.counter_value("pool.parks"), 0);
        // A single-index job cannot fan out: it runs inline.
        pool.parallel_for(1, [](uint64_t) {});
        EXPECT_GE(metrics.counter_value("pool.inline_runs"), 1);
    }
    metrics.set_enabled(false);
    metrics.reset();
}

TEST(WorkStealPool, GlobalPoolExists)
{
    EXPECT_GE(WorkStealPool::global().size(), 2u);
    EXPECT_EQ(WorkStealPool::global().max_concurrency(),
              WorkStealPool::global().size() + 1);
}

} // namespace
} // namespace mps
