/** Tests for graph reordering and binary serialization. */
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "mps/core/serialize.h"
#include "mps/core/spmm.h"
#include "mps/sparse/coo_matrix.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/degree_stats.h"
#include "mps/sparse/generate.h"
#include "mps/sparse/reorder.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

TEST(Permutation, ValidateAcceptsAndRejects)
{
    validate_permutation({2, 0, 1}, 3);
    EXPECT_DEATH(validate_permutation({0, 0, 1}, 3), "duplicate");
    EXPECT_DEATH(validate_permutation({0, 1, 5}, 3), "out of range");
    EXPECT_DEATH(validate_permutation({0, 1}, 3), "length");
}

TEST(Permutation, IdentityIsNoop)
{
    CsrMatrix m = erdos_renyi_graph(50, 300, 1);
    std::vector<index_t> id(50);
    std::iota(id.begin(), id.end(), 0);
    CsrMatrix p = permute_symmetric(m, id);
    EXPECT_EQ(p.row_ptr(), m.row_ptr());
    EXPECT_EQ(p.col_idx(), m.col_idx());
}

TEST(Permutation, PreservesDegreesAndSpectrumOfSpmm)
{
    // SpMM on the permuted graph with permuted inputs equals the
    // permuted SpMM output: P A P^T (P B) = P (A B).
    PowerLawParams params;
    params.nodes = 120;
    params.target_nnz = 700;
    params.max_degree = 90;
    params.seed = 5;
    CsrMatrix a = power_law_graph(params);
    std::vector<index_t> perm = degree_sort_permutation(a);
    CsrMatrix pa = permute_symmetric(a, perm);

    Pcg32 rng(3);
    DenseMatrix b(a.cols(), 8);
    b.fill_random(rng);
    DenseMatrix pb(a.cols(), 8);
    for (index_t r = 0; r < a.rows(); ++r) {
        for (index_t d = 0; d < 8; ++d)
            pb(perm[static_cast<size_t>(r)], d) = b(r, d);
    }

    DenseMatrix c(a.rows(), 8), pc(a.rows(), 8);
    reference_spmm(a, b, c);
    reference_spmm(pa, pb, pc);
    for (index_t r = 0; r < a.rows(); ++r) {
        for (index_t d = 0; d < 8; ++d)
            ASSERT_NEAR(pc(perm[static_cast<size_t>(r)], d), c(r, d),
                        1e-4);
    }
}

TEST(DegreeSort, OrdersRowsByDegree)
{
    CsrMatrix a = make_scaled_dataset(find_dataset_spec("Nell"), 64);
    CsrMatrix sorted =
        permute_symmetric(a, degree_sort_permutation(a, true));
    for (index_t r = 1; r < sorted.rows(); ++r)
        ASSERT_GE(sorted.degree(r - 1), sorted.degree(r));
    // Same degree multiset overall.
    EXPECT_EQ(compute_degree_stats(sorted).max_degree,
              compute_degree_stats(a).max_degree);
    EXPECT_EQ(sorted.nnz(), a.nnz());
}

TEST(BfsPermutation, CoversAllNodesIncludingIsolated)
{
    // Two components + an isolated node.
    CooMatrix coo(7, 7);
    coo.add(0, 1, 1);
    coo.add(1, 0, 1);
    coo.add(2, 3, 1);
    coo.add(3, 4, 1);
    coo.add(4, 2, 1);
    CsrMatrix m = CsrMatrix::from_coo(std::move(coo));
    std::vector<index_t> perm = bfs_permutation(m);
    validate_permutation(perm, 7);
}

TEST(BfsPermutation, ImprovesBandwidthOfScrambledBandedGraph)
{
    // A banded graph scrambled by a random permutation: BFS relabeling
    // must substantially reduce the average column distance again.
    StructuredParams p;
    p.nodes = 2000;
    p.target_nnz = 6000;
    p.max_degree = 8;
    p.seed = 11;
    CsrMatrix banded = structured_graph(p);

    // Scramble.
    Pcg32 rng(13);
    std::vector<index_t> scramble(2000);
    std::iota(scramble.begin(), scramble.end(), 0);
    for (size_t i = scramble.size(); i > 1; --i)
        std::swap(scramble[i - 1],
                  scramble[rng.next_below(static_cast<uint32_t>(i))]);
    CsrMatrix scrambled = permute_symmetric(banded, scramble);

    auto avg_band = [](const CsrMatrix &m) {
        double total = 0.0;
        for (index_t r = 0; r < m.rows(); ++r) {
            for (index_t k = m.row_begin(r); k < m.row_end(r); ++k)
                total += std::abs(
                    static_cast<double>(m.col_idx()[k]) - r);
        }
        return total / std::max<index_t>(m.nnz(), 1);
    };
    double scrambled_band = avg_band(scrambled);
    CsrMatrix relabeled =
        permute_symmetric(scrambled, bfs_permutation(scrambled));
    EXPECT_LT(avg_band(relabeled), scrambled_band * 0.35);
}

TEST(ReversePermutation, Reverses)
{
    std::vector<index_t> perm{2, 0, 1};
    std::vector<index_t> rev = reverse_permutation(perm);
    EXPECT_EQ(rev, (std::vector<index_t>{0, 2, 1}));
    validate_permutation(rev, 3);
}

TEST(BinaryCsr, RoundTrip)
{
    CsrMatrix m = erdos_renyi_graph(80, 500, 21,
                                    ValueMode::kRandom);
    std::stringstream buf;
    write_csr_binary(buf, m);
    CsrMatrix back = read_csr_binary(buf);
    EXPECT_EQ(back.rows(), m.rows());
    EXPECT_EQ(back.cols(), m.cols());
    EXPECT_EQ(back.row_ptr(), m.row_ptr());
    EXPECT_EQ(back.col_idx(), m.col_idx());
    EXPECT_EQ(back.values(), m.values());
}

TEST(BinaryCsr, RejectsBadMagic)
{
    std::stringstream buf;
    buf << "NOTMAGIC garbage";
    EXPECT_EXIT(read_csr_binary(buf), testing::ExitedWithCode(1),
                "bad magic");
}

TEST(BinaryCsr, RejectsTruncation)
{
    CsrMatrix m = erdos_renyi_graph(30, 100, 2);
    std::stringstream buf;
    write_csr_binary(buf, m);
    std::string whole = buf.str();
    std::stringstream cut(whole.substr(0, whole.size() / 2));
    EXPECT_EXIT(read_csr_binary(cut), testing::ExitedWithCode(1),
                "read failed");
}

TEST(BinarySchedule, RoundTripAndValidate)
{
    CsrMatrix a = make_scaled_dataset(find_dataset_spec("Pubmed"), 32);
    MergePathSchedule sched = MergePathSchedule::build(a, 200);
    std::stringstream buf;
    write_schedule_binary(buf, sched);
    MergePathSchedule back = read_schedule_binary(buf);
    EXPECT_EQ(back.num_threads(), sched.num_threads());
    EXPECT_EQ(back.items_per_thread(), sched.items_per_thread());
    back.validate(a); // belongs to the same matrix

    // And it runs: result identical to the freshly built schedule.
    Pcg32 rng(2);
    DenseMatrix b(a.cols(), 8);
    b.fill_random(rng);
    DenseMatrix c1(a.rows(), 8), c2(a.rows(), 8);
    WorkStealPool pool(3);
    mergepath_spmm_parallel(a, b, c1, sched, pool);
    mergepath_spmm_parallel(a, b, c2, back, pool);
    EXPECT_TRUE(c1.approx_equal(c2, 1e-4, 1e-4));
}

TEST(BinarySchedule, ValidateCatchesWrongMatrix)
{
    CsrMatrix a = erdos_renyi_graph(100, 600, 3);
    CsrMatrix other = erdos_renyi_graph(100, 700, 4);
    MergePathSchedule sched = MergePathSchedule::build(a, 16);
    std::stringstream buf;
    write_schedule_binary(buf, sched);
    MergePathSchedule back = read_schedule_binary(buf);
    EXPECT_DEATH(back.validate(other), "schedule");
}

TEST(BinaryCsr, FileRoundTrip)
{
    CsrMatrix m = erdos_renyi_graph(40, 150, 8);
    std::string path = testing::TempDir() + "/mps_csr_roundtrip.bin";
    write_csr_binary_file(path, m);
    CsrMatrix back = read_csr_binary_file(path);
    EXPECT_EQ(back.col_idx(), m.col_idx());
}

} // namespace
} // namespace mps
