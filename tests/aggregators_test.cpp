/** Tests for the GNN aggregators and the SAGE/GIN layers. */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mps/core/spmv.h"
#include "mps/gcn/aggregators.h"
#include "mps/gcn/gemm.h"
#include "mps/gcn/gnn_layers.h"
#include "mps/gcn/layer.h"
#include "mps/sparse/generate.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

/** Naive reference aggregators for differential testing. */
void
naive_sum(const CsrMatrix &a, const DenseMatrix &h, DenseMatrix &out)
{
    out.fill(0.0f);
    for (index_t r = 0; r < a.rows(); ++r) {
        for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
            const value_t *hrow = h.row(a.col_idx()[k]);
            for (index_t d = 0; d < h.cols(); ++d)
                out(r, d) += hrow[d];
        }
    }
}

void
naive_max(const CsrMatrix &a, const DenseMatrix &h, DenseMatrix &out)
{
    for (index_t r = 0; r < a.rows(); ++r) {
        for (index_t d = 0; d < h.cols(); ++d) {
            value_t best = 0.0f;
            bool any = false;
            for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
                value_t v = h(a.col_idx()[k], d);
                best = any ? std::max(best, v) : v;
                any = true;
            }
            out(r, d) = any ? best : 0.0f;
        }
    }
}

struct Fixture
{
    CsrMatrix a;
    DenseMatrix h;
    MergePathSchedule sched;
    WorkStealPool pool{4};

    explicit Fixture(uint64_t seed = 3, index_t threads = 97)
    {
        PowerLawParams p;
        p.nodes = 250;
        p.target_nnz = 1500;
        p.max_degree = 200;
        p.seed = seed;
        a = power_law_graph(p);
        h = DenseMatrix(a.rows(), 8);
        Pcg32 rng(seed);
        h.fill_random(rng);
        sched = MergePathSchedule::build(a, threads);
    }
};

TEST(Aggregators, SumMatchesNaive)
{
    Fixture f;
    DenseMatrix expect(f.a.rows(), 8), got(f.a.rows(), 8);
    naive_sum(f.a, f.h, expect);
    aggregate_sum(f.a, f.h, got, f.sched, f.pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-4));
}

TEST(Aggregators, MeanDividesByDegree)
{
    Fixture f;
    DenseMatrix sum(f.a.rows(), 8), mean(f.a.rows(), 8);
    naive_sum(f.a, f.h, sum);
    aggregate_mean(f.a, f.h, mean, f.sched, f.pool);
    for (index_t r = 0; r < f.a.rows(); ++r) {
        value_t inv = 1.0f / std::max<value_t>(f.a.degree(r), 1.0f);
        for (index_t d = 0; d < 8; ++d)
            ASSERT_NEAR(mean(r, d), sum(r, d) * inv, 1e-3)
                << "row " << r;
    }
}

TEST(Aggregators, MaxMatchesNaiveIncludingSplitRows)
{
    // Many threads on a small graph forces split rows through the
    // atomic-max commit path.
    Fixture f(5, 700);
    DenseMatrix expect(f.a.rows(), 8), got(f.a.rows(), 8);
    naive_max(f.a, f.h, expect);
    aggregate_max(f.a, f.h, got, f.sched, f.pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-4, 1e-5));
}

TEST(Aggregators, MaxHandlesEmptyRows)
{
    CsrMatrix a(3, 3, {0, 1, 1, 2}, {2, 0}, {1.0f, 1.0f});
    DenseMatrix h(3, 2);
    h(0, 0) = -5.0f;
    h(2, 1) = -1.0f;
    MergePathSchedule sched = MergePathSchedule::build(a, 2);
    WorkStealPool pool(2);
    DenseMatrix out(3, 2);
    aggregate_max(a, h, out, sched, pool);
    // Row 1 has no neighbors: defined as 0.
    EXPECT_FLOAT_EQ(out(1, 0), 0.0f);
    EXPECT_FLOAT_EQ(out(1, 1), 0.0f);
    // Row 0's only neighbor is node 2 (negative values preserved).
    EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out(0, 1), -1.0f);
}

TEST(Aggregators, GinAddsScaledSelf)
{
    Fixture f;
    const float eps = 0.25f;
    DenseMatrix sum(f.a.rows(), 8), gin(f.a.rows(), 8);
    naive_sum(f.a, f.h, sum);
    aggregate_gin(f.a, f.h, gin, f.sched, f.pool, eps);
    for (index_t r = 0; r < f.a.rows(); ++r) {
        for (index_t d = 0; d < 8; ++d) {
            ASSERT_NEAR(gin(r, d),
                        sum(r, d) + (1.0f + eps) * f.h(r, d), 2e-3);
        }
    }
}

TEST(Aggregators, ParallelRepeatable)
{
    Fixture f(7, 500);
    DenseMatrix first(f.a.rows(), 8);
    aggregate_sum(f.a, f.h, first, f.sched, f.pool);
    for (int run = 0; run < 3; ++run) {
        DenseMatrix again(f.a.rows(), 8);
        aggregate_sum(f.a, f.h, again, f.sched, f.pool);
        ASSERT_TRUE(again.approx_equal(first, 1e-3, 1e-4));
    }
}

TEST(SageLayer, MatchesManualComposition)
{
    Fixture f;
    DenseMatrix w_self = random_layer_weights(8, 6, 1);
    DenseMatrix w_neigh = random_layer_weights(8, 6, 2);
    SageLayer layer(w_self, w_neigh, Activation::kRelu);
    EXPECT_EQ(layer.in_features(), 8);
    EXPECT_EQ(layer.out_features(), 6);

    DenseMatrix out(f.a.rows(), 6);
    layer.forward(f.a, f.h, f.sched, out, f.pool);

    DenseMatrix mean(f.a.rows(), 8);
    aggregate_mean(f.a, f.h, mean, f.sched, f.pool);
    DenseMatrix p1(f.a.rows(), 6), p2(f.a.rows(), 6);
    reference_gemm(f.h, w_self, p1);
    reference_gemm(mean, w_neigh, p2);
    DenseMatrix expect(f.a.rows(), 6);
    for (index_t r = 0; r < f.a.rows(); ++r) {
        for (index_t d = 0; d < 6; ++d)
            expect(r, d) = std::max(0.0f, p1(r, d) + p2(r, d));
    }
    EXPECT_TRUE(out.approx_equal(expect, 1e-3, 1e-3));
}

TEST(GinLayer, MatchesManualComposition)
{
    Fixture f;
    DenseMatrix w = random_layer_weights(8, 5, 3);
    GinLayer layer(w, 0.1f, Activation::kNone);
    DenseMatrix out(f.a.rows(), 5);
    layer.forward(f.a, f.h, f.sched, out, f.pool);

    DenseMatrix agg(f.a.rows(), 8);
    aggregate_gin(f.a, f.h, agg, f.sched, f.pool, 0.1f);
    DenseMatrix expect(f.a.rows(), 5);
    reference_gemm(agg, w, expect);
    EXPECT_TRUE(out.approx_equal(expect, 1e-3, 1e-3));
}

TEST(SageLayerDeathTest, MismatchedWeights)
{
    EXPECT_DEATH(SageLayer(random_layer_weights(8, 6, 1),
                           random_layer_weights(8, 4, 2),
                           Activation::kNone),
                 "identical shapes");
}

TEST(Spmv, MergePathMatchesReference)
{
    PowerLawParams p;
    p.nodes = 400;
    p.target_nnz = 2500;
    p.max_degree = 350;
    p.seed = 9;
    CsrMatrix a = power_law_graph(p);
    std::vector<value_t> x(static_cast<size_t>(a.cols()));
    Pcg32 rng(4);
    for (auto &v : x)
        v = rng.next_float(-1.0f, 1.0f);

    std::vector<value_t> expect;
    reference_spmv(a, x, expect);

    WorkStealPool pool(4);
    for (index_t threads : {1, 13, 200, 1500}) {
        MergePathSchedule sched = MergePathSchedule::build(a, threads);
        std::vector<value_t> got;
        mergepath_spmv(a, x, got, sched, pool);
        ASSERT_EQ(got.size(), expect.size());
        for (size_t i = 0; i < got.size(); ++i)
            ASSERT_NEAR(got[i], expect[i], 1e-3) << "threads " << threads;
    }
}

TEST(Spmv, EmptyRowsYieldZero)
{
    CsrMatrix a(4, 4, {0, 0, 2, 2, 2}, {0, 3}, {2.0f, 3.0f});
    std::vector<value_t> x{1.0f, 1.0f, 1.0f, 1.0f};
    std::vector<value_t> y;
    WorkStealPool pool(2);
    MergePathSchedule sched = MergePathSchedule::build(a, 3);
    mergepath_spmv(a, x, y, sched, pool);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 5.0f);
    EXPECT_FLOAT_EQ(y[2], 0.0f);
    EXPECT_FLOAT_EQ(y[3], 0.0f);
}

} // namespace
} // namespace mps
