/**
 * Tests for the merge-path ScheduleCache: fingerprint separation,
 * shared-pointer reuse, hit/miss accounting, the one-build-per-key
 * invariant under concurrent first use (asserted through the
 * schedule.builds metric), and the GcnModel / GcnTrainer routing that
 * shares schedules across layers, inferences and epochs.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mps/core/schedule_cache.h"
#include "mps/gcn/model.h"
#include "mps/gcn/training.h"
#include "mps/sparse/generate.h"
#include "mps/util/metrics.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

CsrMatrix
test_graph(uint64_t seed, index_t nodes = 128, index_t nnz = 1024)
{
    PowerLawParams p;
    p.nodes = nodes;
    p.target_nnz = nnz;
    p.max_degree = 32;
    p.seed = seed;
    p.value_mode = ValueMode::kGcnNormalized;
    return power_law_graph(p);
}

TEST(ScheduleCacheTest, FingerprintSeparatesStructureNotJustShape)
{
    CsrMatrix a = test_graph(1);
    CsrMatrix b = test_graph(2, a.rows());
    CsrMatrix a_copy = a;
    EXPECT_EQ(csr_fingerprint(a), csr_fingerprint(a_copy));
    EXPECT_NE(csr_fingerprint(a), csr_fingerprint(b));
}

TEST(ScheduleCacheTest, GetOrBuildSharesOneImmutableSchedule)
{
    CsrMatrix a = test_graph(3);
    ScheduleCache cache;
    auto s1 = cache.get_or_build(a, 4);
    auto s2 = cache.get_or_build(a, 4);
    EXPECT_EQ(s1.get(), s2.get()); // literally the same schedule
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits(), 1);

    auto s3 = cache.get_or_build(a, 8); // different thread count
    EXPECT_NE(s1.get(), s3.get());
    EXPECT_EQ(cache.size(), 2u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0);
    EXPECT_EQ(s1->num_threads(), 4); // entries outlive the cache
}

TEST(ScheduleCacheTest, CostKeysResolveLikeBuildWithCost)
{
    CsrMatrix a = test_graph(4);
    ScheduleCache cache;
    auto coarse = cache.get_or_build_with_cost(a, 512);
    auto fine = cache.get_or_build_with_cost(a, 64);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_GT(fine->num_threads(), coarse->num_threads());
    // Same cost again: a hit, even via the other entry's neighbour.
    auto again = cache.get_or_build_with_cost(a, 512);
    EXPECT_EQ(again.get(), coarse.get());
    EXPECT_EQ(cache.misses(), 2);
    EXPECT_EQ(cache.hits(), 1);
}

TEST(ScheduleCacheTest, ConcurrentFirstUseBuildsExactlyOnce)
{
    CsrMatrix a = test_graph(5);
    MetricsRegistry &m = MetricsRegistry::global();
    m.reset();
    m.set_enabled(true);
    ScheduleCache cache;
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &a] {
            auto s = cache.get_or_build(a, 4);
            ASSERT_NE(s, nullptr);
        });
    }
    for (auto &t : threads)
        t.join();
    m.set_enabled(false);
    // One key -> one schedule construction, ever; the other seven
    // lookups hit.
    EXPECT_EQ(m.counter_value("schedule.builds"), 1);
    EXPECT_EQ(m.counter_value("schedule.cache.misses"), 1);
    EXPECT_EQ(m.counter_value("schedule.cache.hits"), kThreads - 1);
    EXPECT_EQ(cache.size(), 1u);
    m.reset();
}

TEST(ScheduleCacheTest, ModelBuildsOncePerGraphThreadsCost)
{
    CsrMatrix a = test_graph(6);
    DenseMatrix x(a.rows(), 16);
    Pcg32 rng(9);
    x.fill_random(rng);
    WorkStealPool pool(2);

    MetricsRegistry &m = MetricsRegistry::global();
    m.reset();
    m.set_enabled(true);

    ScheduleCache cache;
    // Online mode re-prepares on every inference — without the cache it
    // would rebuild schedules each time.
    GcnModel model = GcnModel::two_layer(16, 8, 4, 31, "mergepath",
                                         ScheduleMode::kOnline);
    model.set_schedule_cache(&cache);

    model.infer(a, x, pool);
    const int64_t builds_after_first = m.counter_value("schedule.builds");
    EXPECT_GE(builds_after_first, 1);
    EXPECT_EQ(builds_after_first, cache.misses());
    EXPECT_EQ(static_cast<size_t>(builds_after_first), cache.size());

    const int64_t hits_after_first = cache.hits();
    model.infer(a, x, pool);
    model.infer(a, x, pool);
    // Re-preparation resolves from the cache: zero new builds.
    EXPECT_EQ(m.counter_value("schedule.builds"), builds_after_first);
    EXPECT_EQ(cache.misses(), builds_after_first);
    EXPECT_GT(cache.hits(), hits_after_first);

    m.set_enabled(false);
    m.reset();
}

TEST(ScheduleCacheTest, TrainersShareSchedulesThroughOneCache)
{
    ClassificationProblem prob =
        make_classification_problem(96, 3, 8, 6, 17);
    WorkStealPool pool(2);
    ScheduleCache cache;

    GcnTrainer trainer(8, 8, 3, 41);
    trainer.set_schedule_cache(cache);
    for (int i = 0; i < 3; ++i)
        trainer.step(prob.graph, prob.features, prob.labels,
                     prob.train_mask, pool);
    // One graph at one thread count: exactly one entry, built once.
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.misses(), 1);

    // A co-located trainer on the same graph reuses that schedule.
    GcnTrainer other(8, 8, 3, 43);
    other.set_schedule_cache(cache);
    other.step(prob.graph, prob.features, prob.labels, prob.train_mask,
               pool);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_GE(cache.hits(), 1);
}

} // namespace
} // namespace mps
