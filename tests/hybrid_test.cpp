/**
 * Hybrid per-row-class dispatch tests: bit-identity against plain
 * merge-path on 1-thread schedules, multi-thread parity across the
 * microkernel dims, band-classification edge cases, cache integration
 * and schedule-repair migration after DeltaCsr updates.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "mps/core/fusion.h"
#include "mps/core/hybrid.h"
#include "mps/core/schedule_cache.h"
#include "mps/core/spmm.h"
#include "mps/kernels/adaptive.h"
#include "mps/kernels/hybrid_kernel.h"
#include "mps/kernels/registry.h"
#include "mps/sparse/delta_csr.h"
#include "mps/sparse/generate.h"
#include "mps/util/metrics.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

DenseMatrix
random_dense(index_t rows, index_t cols, uint64_t seed)
{
    DenseMatrix m(rows, cols);
    Pcg32 rng(seed);
    m.fill_random(rng);
    return m;
}

void
expect_bitwise(const DenseMatrix &got, const DenseMatrix &want,
               const char *what)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (index_t r = 0; r < got.rows(); ++r)
        for (index_t c = 0; c < got.cols(); ++c)
            ASSERT_EQ(got(r, c), want(r, c))
                << what << " differs at (" << r << ", " << c << ")";
}

/**
 * A degree mix with a guaranteed dense band and a guaranteed tail:
 * rows [0, dense_rows) each have @p dense_deg contiguous columns
 * (column-clustered AND long), the rest have 2 scattered columns.
 */
CsrMatrix
banded_mix_graph(index_t rows, index_t cols, index_t dense_rows,
                 index_t dense_deg, uint64_t seed,
                 bool integer_values = false)
{
    Pcg32 rng(seed);
    const auto next_value = [&]() {
        // Small integers make every summation order exact in float,
        // so bitwise comparisons survive schedule-shape changes.
        return integer_values
                   ? static_cast<value_t>(1 + rng.next_below(3))
                   : rng.next_float(-1.0f, 1.0f);
    };
    std::vector<index_t> row_ptr(static_cast<size_t>(rows) + 1, 0);
    std::vector<index_t> col_idx;
    std::vector<value_t> values;
    for (index_t r = 0; r < rows; ++r) {
        if (r < dense_rows) {
            const index_t base = static_cast<index_t>(rng.next_below(
                static_cast<uint32_t>(cols - dense_deg)));
            for (index_t k = 0; k < dense_deg; ++k) {
                col_idx.push_back(base + k);
                values.push_back(next_value());
            }
        } else {
            // Two sorted, distinct columns (DeltaCsr needs strict CSR).
            const index_t c0 = static_cast<index_t>(
                rng.next_below(static_cast<uint32_t>(cols - 1)));
            const index_t c1 =
                c0 + 1 +
                static_cast<index_t>(rng.next_below(
                    static_cast<uint32_t>(cols - c0 - 1)));
            for (index_t c : {c0, c1}) {
                col_idx.push_back(c);
                values.push_back(next_value());
            }
        }
        row_ptr[static_cast<size_t>(r) + 1] =
            static_cast<index_t>(col_idx.size());
    }
    return CsrMatrix(rows, cols, std::move(row_ptr),
                     std::move(col_idx), std::move(values));
}

/**
 * With a 1-thread tail schedule the hybrid output must equal plain
 * 1-thread merge-path BIT FOR BIT: the dense phase's direct
 * accumulation is the same zero-init + axpy sequence as the scratch
 * round trip, and the tail commit sequence is literally the same code.
 */
TEST(HybridDispatch, BitIdenticalToMergePathOnOneThreadSchedules)
{
    PowerLawParams p;
    p.nodes = 400;
    p.target_nnz = 4000;
    p.max_degree = 200;
    p.seed = 11;
    CsrMatrix a = power_law_graph(p);
    WorkStealPool pool(4);
    // cost >= rows + nnz resolves to exactly one tail share.
    const index_t cost = a.rows() + static_cast<index_t>(a.nnz());
    HybridSchedule hs = HybridSchedule::build(a, cost);
    MergePathSchedule one = MergePathSchedule::build(a, 1);
    if (hs.has_tail()) {
        ASSERT_EQ(hs.tail_schedule().num_threads(), 1);
    }

    for (index_t dim : {16, 17, 33, 128}) {
        DenseMatrix b = random_dense(a.cols(), dim,
                                     1000 + static_cast<uint64_t>(dim));
        DenseMatrix want(a.rows(), dim);
        mergepath_spmm_sequential(a, b, want, one);
        DenseMatrix seq(a.rows(), dim), par(a.rows(), dim);
        hybrid_spmm_sequential(a, hs, b, seq);
        expect_bitwise(seq, want, "hybrid sequential");
        // Parallel execution of a 1-thread-tail schedule: dense chunks
        // run concurrently but each owns its rows, so the output stays
        // deterministic and bit-identical.
        hybrid_spmm_parallel(a, hs, b, par, pool);
        expect_bitwise(par, want, "hybrid parallel");
    }
}

TEST(HybridDispatch, MultiThreadMatchesReferenceAcrossDims)
{
    PowerLawParams p;
    p.nodes = 300;
    p.target_nnz = 3600;
    p.max_degree = 120;
    p.seed = 3;
    CsrMatrix a = power_law_graph(p);
    WorkStealPool pool(4);
    auto kernel = make_spmm_kernel("hybrid");
    for (index_t dim : {16, 17, 33, 128}) {
        DenseMatrix b = random_dense(a.cols(), dim,
                                     77 + static_cast<uint64_t>(dim));
        DenseMatrix expect(a.rows(), dim), got(a.rows(), dim);
        reference_spmm(a, b, expect);
        kernel->prepare(a, dim);
        kernel->run(a, b, got, pool);
        EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-3))
            << "dim " << dim;
    }
}

TEST(HybridDispatch, AllDenseGraphHasNoTail)
{
    if (!hybrid_enabled())
        GTEST_SKIP() << "MPS_HYBRID=0";
    // Every row long and contiguous: one band, no tail.
    const index_t n = 64;
    std::vector<index_t> row_ptr(static_cast<size_t>(n) + 1, 0);
    std::vector<index_t> col_idx;
    std::vector<value_t> values;
    Pcg32 rng(5);
    for (index_t r = 0; r < n; ++r) {
        for (index_t c = 0; c < n; ++c) {
            col_idx.push_back(c);
            values.push_back(rng.next_float(-1.0f, 1.0f));
        }
        row_ptr[static_cast<size_t>(r) + 1] =
            static_cast<index_t>(col_idx.size());
    }
    CsrMatrix a(n, n, std::move(row_ptr), std::move(col_idx),
                std::move(values));
    HybridSchedule hs = HybridSchedule::build(a, /*cost=*/4);
    EXPECT_TRUE(hs.partition().all_dense(a.rows()));
    EXPECT_FALSE(hs.has_tail());
    ASSERT_EQ(hs.partition().bands.size(), 1u);
    EXPECT_FALSE(hs.dense_chunks().empty());

    WorkStealPool pool(4);
    DenseMatrix b = random_dense(n, 17, 9);
    DenseMatrix expect(n, 17), got(n, 17);
    reference_spmm(a, b, expect);
    hybrid_spmm_parallel(a, hs, b, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-3));
}

TEST(HybridDispatch, AllTailDegeneratesToPlainMergePath)
{
    CsrMatrix a = erdos_renyi_graph(200, 800, 7);
    // Thresholds nothing can pass: classification yields no bands and
    // the tail schedule is built on the base matrix directly.
    HybridParams params;
    params.min_degree = 1 << 20;
    params.long_degree = 1 << 20;
    const index_t cost = 37;
    HybridSchedule hs =
        HybridSchedule::build(a, cost, /*min_threads=*/0, params);
    EXPECT_FALSE(hs.partition().has_bands());
    EXPECT_TRUE(hs.tail_is_base());
    EXPECT_TRUE(hs.has_tail());
    EXPECT_TRUE(hs.dense_chunks().empty());
    EXPECT_EQ(hs.dense_fraction(), 0.0);

    // Same cost, same matrix: the degenerate hybrid execution IS the
    // merge-path execution, bit for bit, at any thread count.
    WorkStealPool pool(4);
    MergePathSchedule sched =
        MergePathSchedule::build_with_cost(a, cost, 0);
    ASSERT_EQ(hs.tail_schedule().num_threads(), sched.num_threads());
    DenseMatrix b = random_dense(a.cols(), 33, 21);
    DenseMatrix want(a.rows(), 33), got(a.rows(), 33);
    mergepath_spmm_sequential(a, b, want, sched);
    hybrid_spmm_sequential(a, hs, b, got);
    expect_bitwise(got, want, "all-tail hybrid");
}

TEST(HybridDispatch, EmptyRowsStayOutOfBands)
{
    if (!hybrid_enabled())
        GTEST_SKIP() << "MPS_HYBRID=0";
    // Dense runs separated by empty rows: bands must break at every
    // empty row and empty rows must produce zero output rows.
    const index_t n = 90;
    std::vector<index_t> row_ptr(static_cast<size_t>(n) + 1, 0);
    std::vector<index_t> col_idx;
    std::vector<value_t> values;
    for (index_t r = 0; r < n; ++r) {
        if (r % 3 != 2) {
            for (index_t c = 0; c < 40; ++c) {
                col_idx.push_back(c);
                values.push_back(1.0f + static_cast<value_t>(r));
            }
        }
        row_ptr[static_cast<size_t>(r) + 1] =
            static_cast<index_t>(col_idx.size());
    }
    CsrMatrix a(n, n, std::move(row_ptr), std::move(col_idx),
                std::move(values));
    HybridSchedule hs = HybridSchedule::build(a, /*cost=*/8);
    for (const RowBand &band : hs.partition().bands)
        for (index_t r = band.begin; r < band.end; ++r)
            ASSERT_NE(r % 3, 2) << "empty row classified dense";
    EXPECT_EQ(hs.partition().dense_rows, n - n / 3);

    WorkStealPool pool(3);
    DenseMatrix b = random_dense(n, 16, 13);
    DenseMatrix expect(n, 16), got(n, 16);
    reference_spmm(a, b, expect);
    hybrid_spmm_parallel(a, hs, b, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-3));
    for (index_t c = 0; c < 16; ++c)
        EXPECT_EQ(got(2, c), 0.0f);
}

TEST(HybridDispatch, DispatchGaugesPublishedByPrepare)
{
    if (!hybrid_enabled())
        GTEST_SKIP() << "MPS_HYBRID=0";
    CsrMatrix a = banded_mix_graph(200, 400, 50, 64, 17);
    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.reset();
    metrics.set_enabled(true);
    HybridSpmm kernel;
    kernel.prepare(a, 16);
    EXPECT_EQ(metrics.gauge_value("dispatch.dense_rows"), 50.0);
    EXPECT_EQ(metrics.gauge_value("dispatch.tail_rows"), 150.0);
    EXPECT_EQ(metrics.gauge_value("dispatch.dense_nnz"), 50.0 * 64.0);
    EXPECT_GE(metrics.gauge_value("dispatch.bands"), 1.0);
    EXPECT_GT(metrics.gauge_value("dispatch.dense_fraction"), 0.5);

    // Phase histograms + commit census come from the run.
    WorkStealPool pool(4);
    DenseMatrix b = random_dense(a.cols(), 16, 23);
    DenseMatrix c(a.rows(), 16);
    kernel.run(a, b, c, pool);
    EXPECT_EQ(metrics.histogram_value("kernel.hybrid.dense_ms").count,
              1);
    EXPECT_EQ(metrics.histogram_value("kernel.hybrid.tail_ms").count,
              1);
    EXPECT_EQ(
        metrics.counter_value("spmm.hybrid.dense_rows_written"), 50);
    EXPECT_EQ(
        metrics.counter_value("spmm.hybrid.dense_nnz_processed"),
        50 * 64);
    EXPECT_EQ(metrics.counter_value("spmm.hybrid.tail_nnz_processed"),
              static_cast<int64_t>(a.nnz()) - 50 * 64);
    metrics.set_enabled(false);
    metrics.reset();
}

TEST(HybridDispatch, OneThreadTailPaysNoAtomicCommits)
{
    CsrMatrix a = banded_mix_graph(150, 300, 40, 48, 31);
    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.reset();
    metrics.set_enabled(true);
    WorkStealPool pool(4);
    const index_t cost = a.rows() + static_cast<index_t>(a.nnz());
    HybridSchedule hs = HybridSchedule::build(a, cost);
    DenseMatrix b = random_dense(a.cols(), 32, 3);
    DenseMatrix c(a.rows(), 32);
    hybrid_spmm_parallel(a, hs, b, c, pool);
    EXPECT_EQ(metrics.counter_value("spmm.hybrid.atomic_commits"), 0);
    metrics.set_enabled(false);
    metrics.reset();
}

TEST(HybridScheduleCacheTest, SharesOneBuildPerKey)
{
    ScheduleCache cache;
    CsrMatrix a = banded_mix_graph(120, 240, 30, 40, 41);
    auto s1 = cache.get_or_build_hybrid(a, 50);
    auto s2 = cache.get_or_build_hybrid(a, 50);
    EXPECT_EQ(s1.get(), s2.get());
    EXPECT_EQ(cache.hybrid_size(), 1u);
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hybrid_version_with_cost(a, 50), 1u);
    // Different cost is a different entry.
    auto s3 = cache.get_or_build_hybrid(a, 80);
    EXPECT_NE(s1.get(), s3.get());
    EXPECT_EQ(cache.hybrid_size(), 2u);
    // Merge-path and hybrid entries share the LRU budget.
    cache.set_max_entries(1);
    EXPECT_EQ(cache.hybrid_size() + cache.size(), 1u);
}

/**
 * Repair migration: after a DeltaCsr compaction the repaired hybrid
 * schedule must execute exactly like a fresh build on the new base —
 * partition included — and the cache must migrate its hybrid entries.
 */
TEST(HybridScheduleRepair, MigratesAcrossDeltaCompaction)
{
    // Integer values: the repaired tail schedule may carve different
    // shares than a fresh build (repair keeps old thread counts), so
    // only order-insensitive exact sums can be compared bitwise.
    CsrMatrix base =
        banded_mix_graph(160, 320, 40, 48, 53, /*integer_values=*/true);
    const index_t cost = 40;
    HybridSchedule old_hs = HybridSchedule::build(base, cost);

    ScheduleCache cache;
    auto cached = cache.get_or_build_hybrid(base, cost);
    ASSERT_EQ(cache.hybrid_version_with_cost(base, cost), 1u);

    // Edits in the tail region only (rows past the dense band).
    DeltaCsr dcsr(base);
    GraphDelta delta;
    for (index_t r = 100; r < 140; ++r) {
        EdgeUpdate e;
        e.row = r;
        e.col = (r * 7) % base.cols();
        e.value = 2.0f;
        delta.upserts.push_back(e);
    }
    dcsr.apply(delta);
    DeltaCsr::CompactResult cr = dcsr.compact();

    HybridSchedule repaired = repair_hybrid_schedule(
        old_hs, *cr.old_base, *cr.new_base, cr.first_dirty_row);
    HybridSchedule fresh = HybridSchedule::build(*cr.new_base, cost);

    // The partition migrates exactly: same bands, same counts.
    ASSERT_EQ(repaired.partition().bands.size(),
              fresh.partition().bands.size());
    for (size_t i = 0; i < fresh.partition().bands.size(); ++i) {
        EXPECT_EQ(repaired.partition().bands[i].begin,
                  fresh.partition().bands[i].begin);
        EXPECT_EQ(repaired.partition().bands[i].end,
                  fresh.partition().bands[i].end);
    }
    EXPECT_EQ(repaired.partition().dense_rows,
              fresh.partition().dense_rows);
    EXPECT_EQ(repaired.partition().dense_nnz,
              fresh.partition().dense_nnz);
    EXPECT_EQ(repaired.nnz(), cr.new_base->nnz());

    // And executes identically to the fresh build.
    WorkStealPool pool(4);
    DenseMatrix b(cr.new_base->cols(), 33);
    Pcg32 brng(61);
    for (index_t r = 0; r < b.rows(); ++r)
        for (index_t c = 0; c < b.cols(); ++c)
            b(r, c) = static_cast<value_t>(brng.next_below(7)) - 3.0f;
    DenseMatrix want(cr.new_base->rows(), 33);
    DenseMatrix got(cr.new_base->rows(), 33);
    hybrid_spmm_sequential(*cr.new_base, fresh, b, want);
    hybrid_spmm_sequential(*cr.new_base, repaired, b, got);
    expect_bitwise(got, want, "repaired hybrid");
    DenseMatrix expect(cr.new_base->rows(), 33);
    reference_spmm(*cr.new_base, b, expect);
    DenseMatrix par(cr.new_base->rows(), 33);
    hybrid_spmm_parallel(*cr.new_base, repaired, b, par, pool);
    EXPECT_TRUE(par.approx_equal(expect, 1e-3, 1e-3));

    // Cache migration: the entry moved to the new fingerprint with a
    // bumped version, and a lookup on the new base is a hit.
    const size_t migrated =
        cache.repair_for_update(*cr.old_base, *cr.new_base,
                                cr.first_dirty_row);
    EXPECT_GE(migrated, 1u);
    EXPECT_EQ(cache.hybrid_version_with_cost(*cr.new_base, cost), 2u);
    EXPECT_EQ(cache.hybrid_version_with_cost(base, cost), 0u);
    const int64_t hits_before = cache.hits();
    auto moved = cache.get_or_build_hybrid(*cr.new_base, cost);
    EXPECT_EQ(cache.hits(), hits_before + 1);
    EXPECT_EQ(moved->nnz(), cr.new_base->nnz());
    (void)cached;
}

TEST(HybridAdaptive, EnvTunableThresholds)
{
    setenv("MPS_ADAPTIVE_EVIL_FACTOR", "3.5", 1);
    setenv("MPS_ADAPTIVE_MAX_THREADS", "64", 1);
    AdaptiveSpmm tuned;
    EXPECT_DOUBLE_EQ(tuned.evil_factor(), 3.5);
    EXPECT_EQ(tuned.max_threads(), 64);
    unsetenv("MPS_ADAPTIVE_EVIL_FACTOR");
    unsetenv("MPS_ADAPTIVE_MAX_THREADS");
    AdaptiveSpmm defaults;
    EXPECT_DOUBLE_EQ(defaults.evil_factor(), 15.0);
    EXPECT_EQ(defaults.max_threads(), 4096);

    setenv("MPS_ADAPTIVE_EVIL_FACTOR", "bogus", 1);
    setenv("MPS_ADAPTIVE_MAX_THREADS", "-2", 1);
    AdaptiveSpmm invalid;
    EXPECT_DOUBLE_EQ(invalid.evil_factor(), 15.0);
    EXPECT_EQ(invalid.max_threads(), 4096);
    unsetenv("MPS_ADAPTIVE_EVIL_FACTOR");
    unsetenv("MPS_ADAPTIVE_MAX_THREADS");
}

TEST(HybridAdaptive, SelectsHybridOnSkewedDenseBandMix)
{
    if (!hybrid_enabled())
        GTEST_SKIP() << "MPS_HYBRID=0";
    CsrMatrix a = banded_mix_graph(200, 400, 50, 96, 67);
    WorkStealPool pool(4);

    AdaptiveSpmm adaptive;
    adaptive.prepare(a, 16);
    EXPECT_EQ(adaptive.strategy(), AdaptiveStrategy::kHybrid);
    DenseMatrix b = random_dense(a.cols(), 16, 71);
    DenseMatrix expect(a.rows(), 16), got(a.rows(), 16);
    reference_spmm(a, b, expect);
    adaptive.run(a, b, got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-3));

    // The pre-hybrid baseline selection is still reachable.
    AdaptiveSpmm baseline(0.7, /*enable_hybrid=*/false);
    baseline.prepare(a, 16);
    EXPECT_EQ(baseline.strategy(), AdaptiveStrategy::kMergePath);
    DenseMatrix got2(a.rows(), 16);
    baseline.run(a, b, got2, pool);
    EXPECT_TRUE(got2.approx_equal(expect, 1e-3, 1e-3));
}

TEST(HybridFusion, FusedPlanRoutesThroughHybridPanels)
{
    CsrMatrix a = banded_mix_graph(180, 360, 45, 64, 83);
    WorkStealPool pool(4);
    const index_t dim = 32;
    HybridSpmm kernel;
    kernel.prepare(a, dim);
    FusedLayerPlan *plan = kernel.fused_plan(a, dim);
    ASSERT_NE(plan, nullptr);
    EXPECT_TRUE(plan->uses_hybrid());
    EXPECT_EQ(plan, kernel.fused_plan(a, dim)); // cached

    // run(): panel source slices a prematerialized XW; output must
    // match the classic SpMM.
    DenseMatrix xw = random_dense(a.cols(), dim, 97);
    DenseMatrix expect(a.rows(), dim), got(a.rows(), dim);
    reference_spmm(a, xw, expect);
    plan->run(
        [&](index_t col0, index_t) {
            PanelSource src;
            src.b = &xw;
            src.col_begin = col0;
            return src;
        },
        got, pool);
    EXPECT_TRUE(got.approx_equal(expect, 1e-3, 1e-3));
}

} // namespace
} // namespace mps
