/** Tests for the SIMT GPU model and the warp-program codegen. */
#include <gtest/gtest.h>

#include "mps/simt/codegen.h"
#include "mps/simt/gpu_model.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/generate.h"

namespace mps {
namespace {

KernelWorkload
uniform_workload(int warps, double issue, double mem, double stalls,
                 double commits = 0.0)
{
    KernelWorkload w;
    w.name = "synthetic";
    w.warps.assign(static_cast<size_t>(warps),
                   {issue, mem, stalls, commits});
    return w;
}

TEST(GpuModel, EmptyWorkloadCostsOnlyLaunch)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    KernelWorkload w;
    GpuKernelResult r = simulate_gpu(w, cfg);
    EXPECT_DOUBLE_EQ(r.cycles, cfg.kernel_launch_cycles);
    EXPECT_EQ(r.num_warps, 0);
}

TEST(GpuModel, IssueBoundScalesWithWork)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    cfg.kernel_launch_cycles = 0;
    // Plenty of warps, no memory: pure issue throughput.
    GpuKernelResult r1 =
        simulate_gpu(uniform_workload(72 * 64, 100, 0, 0), cfg);
    GpuKernelResult r2 =
        simulate_gpu(uniform_workload(72 * 64, 200, 0, 0), cfg);
    EXPECT_NEAR(r2.cycles / r1.cycles, 2.0, 0.01);
    EXPECT_EQ(r1.limiter, "issue");
}

TEST(GpuModel, MoreWarpsHideLatency)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    cfg.kernel_launch_cycles = 0;
    // Same total stalls split over few vs. many warps: the many-warp
    // version overlaps them (GNNAdvisor's strategy).
    GpuKernelResult few =
        simulate_gpu(uniform_workload(72, 10, 0, 64), cfg);
    GpuKernelResult many =
        simulate_gpu(uniform_workload(72 * 32, 10, 0, 2), cfg);
    EXPECT_LT(many.cycles, few.cycles * 0.2);
}

TEST(GpuModel, ResidencyLimitsHiding)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    cfg.kernel_launch_cycles = 0;
    // 64 warps per SM but only 32 resident: halving residency doubles
    // the latency-bound time.
    KernelWorkload w = uniform_workload(72 * 64, 1, 0, 8);
    GpuKernelResult wide = simulate_gpu(w, cfg);
    cfg.max_resident_warps_per_sm = 16;
    GpuKernelResult narrow = simulate_gpu(w, cfg);
    EXPECT_NEAR(narrow.cycles / wide.cycles, 2.0, 0.05);
}

TEST(GpuModel, StragglerBoundsImbalancedWork)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    cfg.kernel_launch_cycles = 0;
    KernelWorkload w = uniform_workload(72 * 8, 10, 0, 0);
    w.warps[0].dep_stalls = 1e5; // one evil chunk, stall-dominated
    GpuKernelResult r = simulate_gpu(w, cfg);
    double evil_chain = 10 + 1e5 * cfg.mem_latency_cycles /
                                 cfg.memory_parallelism;
    EXPECT_GE(r.cycles, evil_chain);
    EXPECT_EQ(r.limiter, "straggler");
}

TEST(GpuModel, AtomicSerializationBound)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    cfg.kernel_launch_cycles = 0;
    KernelWorkload w = uniform_workload(72 * 32, 5, 0, 0);
    w.max_row_commits = 10000; // hot output row
    GpuKernelResult r = simulate_gpu(w, cfg);
    EXPECT_NEAR(r.atomic_serial, 10000 * cfg.atomic_service_cycles, 1e-9);
    EXPECT_EQ(r.limiter, "atomic_serial");
}

TEST(GpuModel, SerialTailAdds)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    KernelWorkload w = uniform_workload(72, 10, 0, 0);
    GpuKernelResult base = simulate_gpu(w, cfg);
    w.serial_tail_cycles = 5000;
    GpuKernelResult with_tail = simulate_gpu(w, cfg);
    EXPECT_NEAR(with_tail.cycles - base.cycles, 5000, 1e-9);
}

TEST(GpuModel, DramBandwidthBound)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    cfg.kernel_launch_cycles = 0;
    // Force DRAM to be the binding constraint: every transaction
    // misses and the SM-to-L2 path is made effectively infinite.
    cfg.l2_miss_fraction = 1.0;
    cfg.sm_l2_txns_per_cycle = 1e9;
    KernelWorkload w = uniform_workload(72 * 32, 1, 1000, 0);
    GpuKernelResult r = simulate_gpu(w, cfg);
    double expect_bytes = 72.0 * 32 * 1000 * cfg.l2_txn_bytes;
    EXPECT_NEAR(r.dram_bound,
                expect_bytes / cfg.dram_bw_bytes_per_cycle, 1.0);
    EXPECT_EQ(r.limiter, "dram");
}

TEST(Codegen, MergePathWarpCountFollowsPolicy)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    CsrMatrix a = make_dataset("Cora");
    // dim 16 packs 2 threads/warp; dim 64 replicates threads over 2
    // warps: warp count quadruples between them for the same cost.
    KernelWorkload w16 = build_mergepath_workload(a, 16, 20, cfg);
    KernelWorkload w64 = build_mergepath_workload(a, 64, 20, cfg);
    double ratio = static_cast<double>(w64.warps.size()) /
                   static_cast<double>(w16.warps.size());
    EXPECT_NEAR(ratio, 4.0, 0.1);
}

TEST(Codegen, MergePathCostTradesCommitsForWarps)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    CsrMatrix a = make_dataset("Pubmed");
    KernelWorkload cheap = build_mergepath_workload(a, 16, 5, cfg);
    KernelWorkload costly = build_mergepath_workload(a, 16, 50, cfg);
    EXPECT_GT(cheap.warps.size(), costly.warps.size());
    EXPECT_GT(cheap.total_commits, costly.total_commits);
}

TEST(Codegen, GnnAdvisorAllWritesAtomic)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    CsrMatrix a = make_dataset("Citeseer");
    KernelWorkload w = build_gnnadvisor_workload(
        a, 16, 0, GnnAdvisorVariant::kBaseline, cfg);
    // One commit per neighbor group: as many commits as groups (all
    // non-empty rows produce at least one).
    EXPECT_GT(w.total_commits, 0.0);
    double commit_sum = 0.0;
    for (const auto &warp : w.warps)
        commit_sum += warp.atomic_commits;
    EXPECT_GT(commit_sum, 0.0);
}

TEST(Codegen, GnnAdvisorOptHalvesWarpsAtDim16)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    CsrMatrix a = make_dataset("Pubmed");
    KernelWorkload base = build_gnnadvisor_workload(
        a, 16, 0, GnnAdvisorVariant::kBaseline, cfg);
    KernelWorkload opt = build_gnnadvisor_workload(
        a, 16, 0, GnnAdvisorVariant::kOpt, cfg);
    EXPECT_NEAR(static_cast<double>(base.warps.size()) / opt.warps.size(),
                2.0, 0.05);
}

TEST(Codegen, GnnAdvisorOptSameAsBaselineAt32Plus)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    CsrMatrix a = make_dataset("Cora");
    for (index_t dim : {32, 64}) {
        KernelWorkload base = build_gnnadvisor_workload(
            a, dim, 0, GnnAdvisorVariant::kBaseline, cfg);
        KernelWorkload opt = build_gnnadvisor_workload(
            a, dim, 0, GnnAdvisorVariant::kOpt, cfg);
        EXPECT_EQ(base.warps.size(), opt.warps.size()) << dim;
    }
}

TEST(Codegen, RowSplitHasNoAtomics)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    CsrMatrix a = make_dataset("Cora");
    KernelWorkload w = build_rowsplit_workload(a, 16, 0, cfg);
    EXPECT_DOUBLE_EQ(w.total_commits, 0.0);
    EXPECT_DOUBLE_EQ(w.max_row_commits, 0.0);
    for (const auto &warp : w.warps)
        ASSERT_DOUBLE_EQ(warp.atomic_commits, 0.0);
}

TEST(Codegen, RowSplitEvilRowMakesStraggler)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    cfg.kernel_launch_cycles = 0;
    CsrMatrix nell = make_scaled_dataset(find_dataset_spec("Nell"), 16);
    CsrMatrix uniform = erdos_renyi_graph(nell.rows(), nell.nnz(), 3);
    GpuKernelResult evil =
        simulate_gpu(build_rowsplit_workload(nell, 16, 0, cfg), cfg);
    GpuKernelResult flat =
        simulate_gpu(build_rowsplit_workload(uniform, 16, 0, cfg), cfg);
    // Same size, but the power-law graph's evil chunk dominates.
    EXPECT_GT(evil.cycles, flat.cycles * 1.5);
}

TEST(Codegen, SerialFixupTailGrowsWithThreads)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    CsrMatrix a = make_dataset("Cora");
    KernelWorkload few = build_mergepath_serial_workload(a, 16, 64, cfg);
    KernelWorkload many =
        build_mergepath_serial_workload(a, 16, 2048, cfg);
    EXPECT_GT(many.serial_tail_cycles, few.serial_tail_cycles * 4);
    EXPECT_DOUBLE_EQ(few.total_commits, 0.0); // no atomics in this one
}

TEST(Codegen, CusparsePicksPerShape)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    CsrMatrix structured = make_dataset("PROTEINS_full");
    CsrMatrix skewed = make_dataset("Wiki-Vote");
    KernelWorkload s = build_cusparse_workload(structured, 16, cfg);
    KernelWorkload k = build_cusparse_workload(skewed, 16, cfg);
    // Structured path has no atomics; skewed path (merge-based) does.
    double s_commits = 0.0, k_commits = 0.0;
    for (const auto &w : s.warps)
        s_commits += w.atomic_commits;
    for (const auto &w : k.warps)
        k_commits += w.atomic_commits;
    EXPECT_DOUBLE_EQ(s_commits, 0.0);
    EXPECT_GT(k_commits, 0.0);
}

TEST(Codegen, ScheduleBuildIsTinyVsKernel)
{
    GpuConfig cfg = GpuConfig::rtx6000();
    CsrMatrix a = make_dataset("Pubmed");
    GpuKernelResult sched = simulate_gpu(
        build_schedule_build_workload(a, 16, 20, cfg), cfg);
    GpuKernelResult kernel =
        simulate_gpu(build_mergepath_workload(a, 16, 20, cfg), cfg);
    // Both pay the same launch overhead; the schedule body (two binary
    // searches per thread) must be much cheaper than the SpMM body.
    EXPECT_LT(sched.cycles - cfg.kernel_launch_cycles,
              (kernel.cycles - cfg.kernel_launch_cycles) * 0.7);
    EXPECT_LT(sched.cycles, kernel.cycles);
}

TEST(Codegen, WorkloadsCoverAllNnz)
{
    // Total issue cycles must scale with nnz for every builder: a
    // sanity check that no generator drops work.
    GpuConfig cfg = GpuConfig::rtx6000();
    CsrMatrix a = make_dataset("Citeseer");
    double nnz_cycles = 3.0 * a.nnz();
    for (const KernelWorkload &w :
         {build_mergepath_workload(a, 16, 20, cfg),
          build_gnnadvisor_workload(a, 16, 0,
                                    GnnAdvisorVariant::kBaseline, cfg),
          build_rowsplit_workload(a, 16, 0, cfg)}) {
        double issue = 0.0;
        for (const auto &warp : w.warps)
            issue += warp.issue_cycles;
        EXPECT_GT(issue, nnz_cycles * 0.4) << w.name;
    }
}

} // namespace
} // namespace mps
