/** Focused tests for the mesh NoC (incl. rectangular factorization). */
#include <gtest/gtest.h>

#include "mps/multicore/config.h"
#include "mps/multicore/noc.h"

namespace mps {
namespace {

MulticoreConfig
cfg_for(int cores)
{
    return MulticoreConfig::table1().scaled_to(cores);
}

TEST(MeshFactorization, MostSquareShapes)
{
    struct Case
    {
        int cores, w, h;
    };
    for (const Case &c : {Case{64, 8, 8}, Case{128, 16, 8},
                          Case{256, 16, 16}, Case{512, 32, 16},
                          Case{1024, 32, 32}}) {
        MeshNoc noc(c.cores, cfg_for(64));
        EXPECT_EQ(noc.width(), c.w) << c.cores;
        EXPECT_EQ(noc.height(), c.h) << c.cores;
        EXPECT_EQ(noc.diameter(), c.w - 1 + c.h - 1) << c.cores;
    }
}

TEST(MeshFactorizationDeathTest, RejectsNonPowerOfTwo)
{
    EXPECT_DEATH(MeshNoc(96, cfg_for(64)), "power-of-two");
}

TEST(MeshNoc, DistanceSymmetricAndTriangleBounded)
{
    MeshNoc noc(128, cfg_for(128)); // 16 x 8
    for (int a = 0; a < 128; a += 13) {
        for (int b = 0; b < 128; b += 17) {
            ASSERT_EQ(noc.distance(a, b), noc.distance(b, a));
            for (int c = 0; c < 128; c += 29) {
                ASSERT_LE(noc.distance(a, c),
                          noc.distance(a, b) + noc.distance(b, c));
            }
        }
    }
}

TEST(MeshNoc, UncontendedLatencyIsHopsTimesHopCycles)
{
    MulticoreConfig cfg = cfg_for(64);
    MeshNoc noc(64, cfg);
    // Single-flit messages over fresh links.
    for (auto [src, dst] : {std::pair{0, 63}, {5, 40}, {17, 17}}) {
        double t = noc.route(src, dst, 1, 1000.0);
        EXPECT_DOUBLE_EQ(t, 1000.0 +
                                noc.distance(src, dst) * cfg.hop_cycles);
    }
}

TEST(MeshNoc, TailFlitsSerializeAtDestination)
{
    MulticoreConfig cfg = cfg_for(64);
    MeshNoc noc(64, cfg);
    // A 9-flit message takes 8 extra cycles behind the head flit.
    double one = noc.route(0, 1, 1, 0.0);
    MeshNoc fresh(64, cfg);
    double nine = fresh.route(0, 1, 9, 0.0);
    EXPECT_DOUBLE_EQ(nine - one, 8.0);
}

TEST(MeshNoc, BacklogDecaysOverTime)
{
    MulticoreConfig cfg = cfg_for(64);
    MeshNoc noc(64, cfg);
    // Saturate the first link at t=0...
    for (int i = 0; i < 20; ++i)
        noc.route(0, 1, 9, 0.0);
    double congested = noc.route(0, 1, 9, 0.0);
    EXPECT_GT(congested, 100.0);
    // ...but far in the future the backlog has drained.
    double later = noc.route(0, 1, 9, 10000.0);
    EXPECT_LT(later - 10000.0, 20.0);
}

TEST(MeshNoc, XYRoutingUsesDisjointLinksForDisjointRows)
{
    // Messages along different rows never share links: both see
    // uncontended latency even when sent simultaneously.
    MulticoreConfig cfg = cfg_for(64);
    MeshNoc noc(64, cfg);
    for (int i = 0; i < 30; ++i)
        noc.route(0, 7, 9, 0.0); // row 0 traffic
    double other_row = noc.route(8, 15, 1, 0.0); // row 1
    EXPECT_DOUBLE_EQ(other_row, 7 * cfg.hop_cycles);
}

} // namespace
} // namespace mps
