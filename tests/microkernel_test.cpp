/**
 * @file
 * Cross-checks of the dense-row microkernels: the scalar reference path
 * against the SIMD path on awkward dimensions (vector-width remainders,
 * unaligned bases), plus the atomic primitives and the per-thread
 * scratch contract.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "mps/core/microkernel.h"
#include "mps/core/precision.h"
#include "mps/sparse/aligned_buffer.h"
#include "mps/sparse/dense_matrix.h"
#include "mps/sparse/quant.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace {

constexpr value_t kTol = 1e-4f;

// Odd dims straddle every vector-width boundary; the round ones hit
// the fixed-dimension specializations (16/32/64) and their doubles.
const index_t kDims[] = {1, 3, 8, 15, 16, 17, 31, 32, 33,
                         63, 64, 65, 100, 128};

std::vector<value_t>
random_row(Pcg32 &rng, index_t dim, float lo = -2.0f, float hi = 2.0f)
{
    std::vector<value_t> v(static_cast<size_t>(dim));
    for (auto &x : v)
        x = rng.next_float(lo, hi);
    return v;
}

void
expect_rows_close(const std::vector<value_t> &a,
                  const std::vector<value_t> &b, const char *what,
                  index_t dim)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], kTol)
            << what << " diverges at lane " << i << " of dim " << dim;
    }
}

TEST(MicrokernelTest, TableMetadata)
{
    const RowKernels &scalar =
        select_row_kernels(32, MicrokernelPath::kScalar);
    EXPECT_EQ(scalar.path, MicrokernelPath::kScalar);
    EXPECT_STREQ(scalar.name, "scalar");
    EXPECT_EQ(scalar.fixed_dim, 0);

    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    const RowKernels &simd =
        select_row_kernels(33, MicrokernelPath::kSimd);
    EXPECT_EQ(simd.path, MicrokernelPath::kSimd);
    EXPECT_EQ(simd.fixed_dim, 0);
#if MPS_MICROKERNEL_SIMD == 1
    // AVX2 builds carry fully unrolled tables for the GNN-typical dims.
    for (index_t d : {16, 32, 64}) {
        const RowKernels &fixed =
            select_row_kernels(d, MicrokernelPath::kSimd);
        EXPECT_EQ(fixed.fixed_dim, d) << "dim " << d;
    }
#endif
}

TEST(MicrokernelTest, ScalarVsSimdAllOps)
{
    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    Pcg32 rng(2024, 7);
    for (index_t dim : kDims) {
        const RowKernels &sc =
            select_row_kernels(dim, MicrokernelPath::kScalar);
        const RowKernels &sv =
            select_row_kernels(dim, MicrokernelPath::kSimd);
        const std::vector<value_t> x = random_row(rng, dim);
        const std::vector<value_t> y = random_row(rng, dim);
        const value_t a = rng.next_float(-3.0f, 3.0f);

        auto run_both = [&](auto &&op, const char *what) {
            std::vector<value_t> r1 = random_row(rng, dim);
            std::vector<value_t> r2 = r1;
            op(sc, r1.data());
            op(sv, r2.data());
            expect_rows_close(r1, r2, what, dim);
        };

        run_both([&](const RowKernels &rk, value_t *row) {
            rk.zero(row, dim);
        }, "zero");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.fill(row, a, dim);
        }, "fill");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.copy(row, x.data(), dim);
        }, "copy");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.add(row, x.data(), dim);
        }, "add");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.axpy(row, a, x.data(), dim);
        }, "axpy");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.scale(row, a, dim);
        }, "scale");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.scale_add(row, a, x.data(), dim);
        }, "scale_add");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.vmax(row, x.data(), dim);
        }, "vmax");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.commit_plain(row, x.data(), dim);
        }, "commit_plain");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.commit_atomic(row, x.data(), dim);
        }, "commit_atomic");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.commit_max_atomic(row, x.data(), dim);
        }, "commit_max_atomic");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.axpy_atomic(row, a, x.data(), dim);
        }, "axpy_atomic");

        EXPECT_NEAR(sc.dot(x.data(), y.data(), dim),
                    sv.dot(x.data(), y.data(), dim),
                    kTol * static_cast<value_t>(dim))
            << "dot at dim " << dim;
    }
}

TEST(MicrokernelTest, GatherDotScalarVsSimd)
{
    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    Pcg32 rng(11, 13);
    const index_t n = 200;
    std::vector<value_t> x = random_row(rng, n);
    for (index_t nnz : {0, 1, 3, 7, 8, 9, 40, 150}) {
        std::vector<value_t> vals = random_row(rng, nnz);
        std::vector<index_t> cols(static_cast<size_t>(nnz));
        for (auto &c : cols)
            c = static_cast<index_t>(
                rng.next_below(static_cast<uint32_t>(n)));
        const RowKernels &sc =
            select_row_kernels(n, MicrokernelPath::kScalar);
        const RowKernels &sv =
            select_row_kernels(n, MicrokernelPath::kSimd);
        EXPECT_NEAR(
            sc.gather_dot(vals.data(), cols.data(), 0, nnz, x.data()),
            sv.gather_dot(vals.data(), cols.data(), 0, nnz, x.data()),
            kTol * static_cast<value_t>(std::max<index_t>(nnz, 1)))
            << "gather_dot at nnz " << nnz;
    }
}

TEST(MicrokernelTest, UnalignedBasesAgree)
{
    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    // SIMD paths use unaligned loads/stores by design: shifting every
    // pointer one float off the 64-byte boundary must change nothing.
    Pcg32 rng(5, 17);
    for (index_t dim : {17, 33, 100}) {
        AlignedVector xs(static_cast<size_t>(dim) + 1);
        AlignedVector acc1(static_cast<size_t>(dim) + 1);
        for (auto &v : xs)
            v = rng.next_float(-1.0f, 1.0f);
        for (auto &v : acc1)
            v = rng.next_float(-1.0f, 1.0f);
        AlignedVector acc2 = acc1;

        const value_t *x = xs.data() + 1; // deliberately misaligned
        const RowKernels &sc =
            select_row_kernels(dim, MicrokernelPath::kScalar);
        const RowKernels &sv =
            select_row_kernels(dim, MicrokernelPath::kSimd);
        sc.axpy(acc1.data() + 1, 1.5f, x, dim);
        sv.axpy(acc2.data() + 1, 1.5f, x, dim);
        for (index_t d = 0; d < dim; ++d)
            EXPECT_NEAR(acc1[static_cast<size_t>(d) + 1],
                        acc2[static_cast<size_t>(d) + 1], kTol)
                << "unaligned axpy lane " << d << " dim " << dim;
        EXPECT_NEAR(sc.dot(x, acc1.data() + 1, dim),
                    sv.dot(x, acc2.data() + 1, dim),
                    kTol * static_cast<value_t>(dim));
    }
}

TEST(MicrokernelTest, NegativeAndNanPropagation)
{
    const value_t nan = std::numeric_limits<value_t>::quiet_NaN();
    for (MicrokernelPath path :
         {MicrokernelPath::kScalar, MicrokernelPath::kSimd}) {
        if (path == MicrokernelPath::kSimd &&
            !microkernel_simd_compiled())
            continue;
        const index_t dim = 19;
        const RowKernels &rk = select_row_kernels(dim, path);

        std::vector<value_t> acc(static_cast<size_t>(dim), -1.0f);
        std::vector<value_t> x(static_cast<size_t>(dim), -2.0f);
        x[4] = nan;
        x[17] = nan; // one in the vector body, one in the tail
        rk.axpy(acc.data(), -0.5f, x.data(), dim);
        for (index_t d = 0; d < dim; ++d) {
            if (d == 4 || d == 17)
                EXPECT_TRUE(std::isnan(acc[static_cast<size_t>(d)]))
                    << microkernel_path_name(path) << " lane " << d;
            else
                EXPECT_NEAR(acc[static_cast<size_t>(d)], 0.0f, kTol)
                    << microkernel_path_name(path) << " lane " << d;
        }

        std::vector<value_t> s(static_cast<size_t>(dim), 3.0f);
        s[2] = nan;
        std::vector<value_t> t(static_cast<size_t>(dim), 1.0f);
        rk.scale_add(s.data(), 2.0f, t.data(), dim);
        EXPECT_TRUE(std::isnan(s[2]));
        EXPECT_NEAR(s[0], 7.0f, kTol);

        EXPECT_TRUE(std::isnan(rk.dot(x.data(), t.data(), dim)));
    }
}

TEST(MicrokernelTest, AtomicAddConcurrent)
{
    // 4 threads x 4096 adds of 1.0 stays exactly representable in
    // fp32, so a single lost update is visible in the total.
    constexpr int kThreads = 4;
    constexpr int kAdds = 4096;
    value_t slot = 0.0f;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&slot] {
            for (int i = 0; i < kAdds; ++i)
                atomic_add(slot, 1.0f);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(slot, static_cast<value_t>(kThreads * kAdds));
}

TEST(MicrokernelTest, AtomicMaxConcurrent)
{
    value_t slot = std::numeric_limits<value_t>::lowest();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&slot, t] {
            for (int i = 0; i < 2000; ++i)
                atomic_max(slot, static_cast<value_t>(t * 2000 + i));
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(slot, 7999.0f);
}

TEST(MicrokernelTest, ScratchIsAlignedAndGrows)
{
    value_t *p = microkernel_scratch(5);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kRowAlignBytes, 0u);
    row_fill(p, 1.0f, 5);
    value_t *q = microkernel_scratch(1000);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % kRowAlignBytes, 0u);
    row_zero(q, 1000);
    EXPECT_EQ(q[999], 0.0f);
}

TEST(MicrokernelTest, DenseMatrixPaddedStride)
{
    DenseMatrix m(3, 17);
    EXPECT_GE(m.padded_cols(), m.cols());
    EXPECT_EQ(m.padded_cols() % kRowAlignElems, 0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % kRowAlignBytes,
              0u);
    m.fill(2.0f);
    // Element (r, c) lives at data()[r * padded_cols() + c], and the
    // padding tail of every row stays zero.
    for (index_t r = 0; r < m.rows(); ++r) {
        EXPECT_EQ(m.row(r), m.data() + r * m.padded_cols());
        for (index_t c = m.cols(); c < m.padded_cols(); ++c)
            EXPECT_EQ(m.data()[r * m.padded_cols() + c], 0.0f)
                << "padding disturbed at row " << r << " slot " << c;
    }
    EXPECT_EQ(m(2, 16), 2.0f);
}

// ---------------------------------------------------------------------
// Mixed precision: bf16 / int8 operand kernels, fp32 accumulate.
// ---------------------------------------------------------------------

TEST(MicrokernelTest, MixedPrecisionScalarVsSimd)
{
    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    Pcg32 rng(31, 41);
    for (index_t dim : kDims) {
        const RowKernels &sc =
            select_row_kernels(dim, MicrokernelPath::kScalar);
        const RowKernels &sv =
            select_row_kernels(dim, MicrokernelPath::kSimd);
        const std::vector<value_t> x = random_row(rng, dim);
        const std::vector<value_t> w = random_row(rng, dim);
        const value_t a = rng.next_float(-3.0f, 3.0f);

        // The encoders must be BIT-identical to the quant.h scalar
        // primitives — the shadow rows are shared state, so the two
        // paths may never disagree on a stored code.
        std::vector<bf16_t> h1(static_cast<size_t>(dim));
        std::vector<bf16_t> h2 = h1;
        sc.encode_bf16(h1.data(), x.data(), dim);
        sv.encode_bf16(h2.data(), x.data(), dim);
        for (size_t i = 0; i < h1.size(); ++i) {
            EXPECT_EQ(h1[i], h2[i])
                << "encode_bf16 lane " << i << " dim " << dim;
            EXPECT_EQ(h1[i], bf16_encode(x[i]))
                << "encode_bf16 vs quant.h lane " << i;
        }

        value_t scale = 0.0f, zero = 0.0f;
        int8_row_params(x.data(), dim, &scale, &zero);
        std::vector<int8_t> q1(static_cast<size_t>(dim));
        std::vector<int8_t> q2 = q1;
        sc.encode_int8(q1.data(), x.data(), scale, zero, dim);
        sv.encode_int8(q2.data(), x.data(), scale, zero, dim);
        for (size_t i = 0; i < q1.size(); ++i) {
            EXPECT_EQ(q1[i], q2[i])
                << "encode_int8 lane " << i << " dim " << dim;
            EXPECT_EQ(q1[i], int8_encode(x[i], scale, zero))
                << "encode_int8 vs quant.h lane " << i;
        }

        // decode_bf16 is a pure shift: exact on both paths.
        std::vector<value_t> d1(static_cast<size_t>(dim));
        std::vector<value_t> d2 = d1;
        sc.decode_bf16(d1.data(), h1.data(), dim);
        sv.decode_bf16(d2.data(), h1.data(), dim);
        for (size_t i = 0; i < d1.size(); ++i) {
            EXPECT_EQ(d1[i], d2[i])
                << "decode_bf16 lane " << i << " dim " << dim;
            EXPECT_EQ(d1[i], bf16_decode(h1[i]));
        }

        // decode_int8 may contract scale*q+zero into an fma.
        sc.decode_int8(d1.data(), q1.data(), scale, zero, dim);
        sv.decode_int8(d2.data(), q1.data(), scale, zero, dim);
        expect_rows_close(d1, d2, "decode_int8", dim);

        std::vector<value_t> r1 = random_row(rng, dim);
        std::vector<value_t> r2 = r1;
        sc.axpy_bf16(r1.data(), a, h1.data(), dim);
        sv.axpy_bf16(r2.data(), a, h1.data(), dim);
        expect_rows_close(r1, r2, "axpy_bf16", dim);
        sc.axpy_int8(r1.data(), a, q1.data(), scale, zero, dim);
        sv.axpy_int8(r2.data(), a, q1.data(), scale, zero, dim);
        expect_rows_close(r1, r2, "axpy_int8", dim);

        EXPECT_NEAR(sc.dot_bf16(w.data(), h1.data(), dim),
                    sv.dot_bf16(w.data(), h1.data(), dim),
                    kTol * static_cast<value_t>(dim))
            << "dot_bf16 at dim " << dim;
        EXPECT_NEAR(sc.dot_int8(w.data(), q1.data(), scale, zero, dim),
                    sv.dot_int8(w.data(), q1.data(), scale, zero, dim),
                    kTol * static_cast<value_t>(dim))
            << "dot_int8 at dim " << dim;
    }
}

TEST(MicrokernelTest, GatherDotMixedPrecisionScalarVsSimd)
{
    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    Pcg32 rng(17, 23);
    const index_t n = 200;
    std::vector<value_t> xf = random_row(rng, n);
    std::vector<bf16_t> xh(static_cast<size_t>(n));
    std::vector<int8_t> xq(static_cast<size_t>(n));
    value_t scale = 0.0f, zero = 0.0f;
    int8_row_params(xf.data(), n, &scale, &zero);
    const RowKernels &sc = select_row_kernels(n, MicrokernelPath::kScalar);
    const RowKernels &sv = select_row_kernels(n, MicrokernelPath::kSimd);
    sc.encode_bf16(xh.data(), xf.data(), n);
    sc.encode_int8(xq.data(), xf.data(), scale, zero, n);
    for (index_t nnz : {0, 1, 3, 7, 8, 9, 40, 150}) {
        std::vector<value_t> vals = random_row(rng, nnz);
        std::vector<index_t> cols(static_cast<size_t>(nnz));
        for (auto &c : cols)
            c = static_cast<index_t>(
                rng.next_below(static_cast<uint32_t>(n)));
        const value_t tol =
            kTol * static_cast<value_t>(std::max<index_t>(nnz, 1));
        EXPECT_NEAR(sc.gather_dot_bf16(vals.data(), cols.data(), 0, nnz,
                                       xh.data()),
                    sv.gather_dot_bf16(vals.data(), cols.data(), 0, nnz,
                                       xh.data()),
                    tol)
            << "gather_dot_bf16 at nnz " << nnz;
        EXPECT_NEAR(sc.gather_dot_int8(vals.data(), cols.data(), 0, nnz,
                                       xq.data(), scale, zero),
                    sv.gather_dot_int8(vals.data(), cols.data(), 0, nnz,
                                       xq.data(), scale, zero),
                    tol)
            << "gather_dot_int8 at nnz " << nnz;
    }
}

TEST(MicrokernelTest, MixedPrecisionUnalignedBasesAgree)
{
    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    // Shadow rows start cache-line aligned, but panel-sliced calls may
    // hand the kernels any interior offset: shift every base one
    // element off the 64-byte boundary.
    Pcg32 rng(5, 29);
    for (index_t dim : {17, 33, 100}) {
        const size_t n = static_cast<size_t>(dim) + 1;
        std::vector<value_t> src(n);
        for (auto &v : src)
            v = rng.next_float(-1.0f, 1.0f);
        std::vector<bf16_t> hb(n);
        std::vector<int8_t> qb(n);
        value_t scale = 0.0f, zero = 0.0f;
        int8_row_params(src.data() + 1, dim, &scale, &zero);
        const RowKernels &sc =
            select_row_kernels(dim, MicrokernelPath::kScalar);
        const RowKernels &sv =
            select_row_kernels(dim, MicrokernelPath::kSimd);
        sc.encode_bf16(hb.data() + 1, src.data() + 1, dim);
        sc.encode_int8(qb.data() + 1, src.data() + 1, scale, zero, dim);

        std::vector<bf16_t> hb2(n);
        std::vector<int8_t> qb2(n);
        sv.encode_bf16(hb2.data() + 1, src.data() + 1, dim);
        sv.encode_int8(qb2.data() + 1, src.data() + 1, scale, zero, dim);
        for (size_t i = 1; i < n; ++i) {
            EXPECT_EQ(hb[i], hb2[i]) << "unaligned encode_bf16 " << i;
            EXPECT_EQ(qb[i], qb2[i]) << "unaligned encode_int8 " << i;
        }

        AlignedVector acc1(n);
        for (auto &v : acc1)
            v = rng.next_float(-1.0f, 1.0f);
        AlignedVector acc2 = acc1;
        sc.axpy_bf16(acc1.data() + 1, 1.5f, hb.data() + 1, dim);
        sv.axpy_bf16(acc2.data() + 1, 1.5f, hb.data() + 1, dim);
        sc.axpy_int8(acc1.data() + 1, -0.75f, qb.data() + 1, scale, zero,
                     dim);
        sv.axpy_int8(acc2.data() + 1, -0.75f, qb.data() + 1, scale, zero,
                     dim);
        for (index_t d = 0; d < dim; ++d)
            EXPECT_NEAR(acc1[static_cast<size_t>(d) + 1],
                        acc2[static_cast<size_t>(d) + 1], kTol)
                << "unaligned mixed axpy lane " << d << " dim " << dim;
    }
}

TEST(MicrokernelTest, Bf16EncodeEdgeCases)
{
    const value_t inf = std::numeric_limits<value_t>::infinity();
    const value_t qnan = std::numeric_limits<value_t>::quiet_NaN();
    // NaN must survive encoding as NaN: the rounding increment alone
    // would carry a small-payload NaN into the infinity encoding.
    const value_t snan = std::bit_cast<value_t>(0x7f800001u);
    EXPECT_TRUE(std::isnan(bf16_decode(bf16_encode(qnan))));
    EXPECT_TRUE(std::isnan(bf16_decode(bf16_encode(snan))));
    EXPECT_TRUE(std::isnan(bf16_decode(bf16_encode(-snan))));
    EXPECT_EQ(bf16_decode(bf16_encode(inf)), inf);
    EXPECT_EQ(bf16_decode(bf16_encode(-inf)), -inf);
    // Exactly representable values round-trip, signed zero included.
    EXPECT_EQ(bf16_decode(bf16_encode(1.0f)), 1.0f);
    EXPECT_EQ(bf16_decode(bf16_encode(-2.5f)), -2.5f);
    EXPECT_TRUE(std::signbit(bf16_decode(bf16_encode(-0.0f))));
    EXPECT_FALSE(std::signbit(bf16_decode(bf16_encode(0.0f))));
    // Round-to-nearest-EVEN at the halfway point: 1 + 2^-8 sits midway
    // between 1.0 (even) and 1 + 2^-7 (odd) and must round down, while
    // 1 + 2^-7 + 2^-8 must round up to 1 + 2^-6.
    EXPECT_EQ(bf16_decode(bf16_encode(
                  std::bit_cast<value_t>(0x3f808000u))),
              1.0f);
    EXPECT_EQ(bf16_decode(bf16_encode(
                  std::bit_cast<value_t>(0x3f818000u))),
              std::bit_cast<value_t>(0x3f820000u));

    // The kernels propagate NaN through the widen.
    const index_t dim = 11;
    const RowKernels &rk = select_row_kernels(dim);
    std::vector<value_t> src(static_cast<size_t>(dim), 2.0f);
    src[3] = qnan;
    src[10] = qnan; // vector body and tail
    std::vector<bf16_t> enc(static_cast<size_t>(dim));
    rk.encode_bf16(enc.data(), src.data(), dim);
    std::vector<value_t> acc(static_cast<size_t>(dim), 1.0f);
    rk.axpy_bf16(acc.data(), 0.5f, enc.data(), dim);
    for (index_t d = 0; d < dim; ++d) {
        if (d == 3 || d == 10)
            EXPECT_TRUE(std::isnan(acc[static_cast<size_t>(d)]))
                << "lane " << d;
        else
            EXPECT_NEAR(acc[static_cast<size_t>(d)], 2.0f, kTol)
                << "lane " << d;
    }
}

TEST(MicrokernelTest, Int8SaturationAndNanEdges)
{
    const value_t inf = std::numeric_limits<value_t>::infinity();
    const value_t nan = std::numeric_limits<value_t>::quiet_NaN();
    // Params ignore non-finite entries; the extremes map to +/-127.
    const value_t row[6] = {-3.0f, 3.0f, 0.5f, nan, inf, -inf};
    value_t scale = 0.0f, zero = 0.0f;
    int8_row_params(row, 6, &scale, &zero);
    EXPECT_FLOAT_EQ(zero, 0.0f);
    EXPECT_FLOAT_EQ(scale, 6.0f / 254.0f);
    EXPECT_EQ(int8_encode(3.0f, scale, zero), 127);
    EXPECT_EQ(int8_encode(-3.0f, scale, zero), -127);
    // Out-of-range and infinite inputs saturate; NaN pins to -127 and
    // -128 is never produced.
    EXPECT_EQ(int8_encode(100.0f, scale, zero), 127);
    EXPECT_EQ(int8_encode(-100.0f, scale, zero), -127);
    EXPECT_EQ(int8_encode(inf, scale, zero), 127);
    EXPECT_EQ(int8_encode(-inf, scale, zero), -127);
    EXPECT_EQ(int8_encode(nan, scale, zero), -127);

    // SIMD encoder reproduces every edge lane bit-for-bit.
    if (microkernel_simd_compiled()) {
        const index_t dim = 16;
        std::vector<value_t> src = {-3.0f, 3.0f,   0.5f,  nan,
                                    inf,   -inf,   100.0f, -100.0f,
                                    0.0f,  2.999f, -2.999f, 1e-6f,
                                    -0.0f, 1.5f,   -1.5f,  nan};
        std::vector<int8_t> q1(static_cast<size_t>(dim));
        std::vector<int8_t> q2 = q1;
        select_row_kernels(dim, MicrokernelPath::kScalar)
            .encode_int8(q1.data(), src.data(), scale, zero, dim);
        select_row_kernels(dim, MicrokernelPath::kSimd)
            .encode_int8(q2.data(), src.data(), scale, zero, dim);
        for (size_t i = 0; i < q1.size(); ++i)
            EXPECT_EQ(q1[i], q2[i]) << "edge lane " << i;
    }

    // Degenerate ranges fall back to scale 1 around the midpoint.
    const value_t flat[4] = {2.5f, 2.5f, 2.5f, 2.5f};
    int8_row_params(flat, 4, &scale, &zero);
    EXPECT_FLOAT_EQ(zero, 2.5f);
    EXPECT_FLOAT_EQ(scale, 1.0f);
    EXPECT_EQ(int8_encode(2.5f, scale, zero), 0);
    EXPECT_FLOAT_EQ(int8_decode(0, scale, zero), 2.5f);
    const value_t nans[2] = {nan, nan};
    int8_row_params(nans, 2, &scale, &zero);
    EXPECT_FLOAT_EQ(zero, 0.0f);
    EXPECT_FLOAT_EQ(scale, 1.0f);
}

TEST(MicrokernelTest, QuantizeDenseMatchesSequentialReference)
{
    // DenseMatrix::quantize (sequential, quant.h primitives) and
    // quantize_dense (encode microkernels on the pool) must produce
    // identical shadow bytes and params, and neither may disturb the
    // fp32 master.
    Pcg32 rng(91, 7);
    WorkStealPool pool(3);
    for (StorageMode mode : {StorageMode::kBf16, StorageMode::kInt8}) {
        DenseMatrix a(37, 33), b(37, 33);
        a.fill_random(rng);
        for (index_t r = 0; r < a.rows(); ++r)
            for (index_t c = 0; c < a.cols(); ++c)
                b(r, c) = a(r, c);
        a.quantize(mode);
        quantize_dense(b, mode, &pool);
        ASSERT_EQ(a.storage(), mode);
        ASSERT_EQ(b.storage(), mode);
        for (index_t r = 0; r < a.rows(); ++r) {
            if (mode == StorageMode::kInt8) {
                EXPECT_EQ(a.quant_scale(r), b.quant_scale(r))
                    << "scale row " << r;
                EXPECT_EQ(a.quant_zero(r), b.quant_zero(r))
                    << "zero row " << r;
            }
            for (index_t c = 0; c < a.cols(); ++c) {
                if (mode == StorageMode::kBf16)
                    EXPECT_EQ(a.row_bf16(r)[c], b.row_bf16(r)[c])
                        << "bf16 code at (" << r << ", " << c << ")";
                else
                    EXPECT_EQ(a.row_int8(r)[c], b.row_int8(r)[c])
                        << "int8 code at (" << r << ", " << c << ")";
                EXPECT_EQ(a(r, c), b(r, c))
                    << "fp32 master disturbed at (" << r << ", " << c
                    << ")";
            }
        }
        // Dropping back to f32 releases the shadow without touching
        // the master.
        quantize_dense(b, StorageMode::kF32, &pool);
        EXPECT_EQ(b.storage(), StorageMode::kF32);
        for (index_t r = 0; r < a.rows(); ++r)
            for (index_t c = 0; c < a.cols(); ++c)
                EXPECT_EQ(a(r, c), b(r, c));
    }
}

TEST(MicrokernelTest, DefaultPathAndNames)
{
    MicrokernelPath p = microkernel_default_path();
    if (!microkernel_simd_compiled()) {
        EXPECT_EQ(p, MicrokernelPath::kScalar);
    }
    EXPECT_STREQ(microkernel_path_name(MicrokernelPath::kScalar),
                 "scalar");
    EXPECT_STREQ(microkernel_path_name(MicrokernelPath::kSimd), "simd");
    EXPECT_GE(microkernel_vector_width(), 1);
}

} // namespace
} // namespace mps
