/**
 * @file
 * Cross-checks of the dense-row microkernels: the scalar reference path
 * against the SIMD path on awkward dimensions (vector-width remainders,
 * unaligned bases), plus the atomic primitives and the per-thread
 * scratch contract.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "mps/core/microkernel.h"
#include "mps/sparse/aligned_buffer.h"
#include "mps/sparse/dense_matrix.h"
#include "mps/util/rng.h"

namespace mps {
namespace {

constexpr value_t kTol = 1e-4f;

// Odd dims straddle every vector-width boundary; the round ones hit
// the fixed-dimension specializations (16/32/64) and their doubles.
const index_t kDims[] = {1, 3, 8, 15, 16, 17, 31, 32, 33,
                         63, 64, 65, 100, 128};

std::vector<value_t>
random_row(Pcg32 &rng, index_t dim, float lo = -2.0f, float hi = 2.0f)
{
    std::vector<value_t> v(static_cast<size_t>(dim));
    for (auto &x : v)
        x = rng.next_float(lo, hi);
    return v;
}

void
expect_rows_close(const std::vector<value_t> &a,
                  const std::vector<value_t> &b, const char *what,
                  index_t dim)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], kTol)
            << what << " diverges at lane " << i << " of dim " << dim;
    }
}

TEST(MicrokernelTest, TableMetadata)
{
    const RowKernels &scalar =
        select_row_kernels(32, MicrokernelPath::kScalar);
    EXPECT_EQ(scalar.path, MicrokernelPath::kScalar);
    EXPECT_STREQ(scalar.name, "scalar");
    EXPECT_EQ(scalar.fixed_dim, 0);

    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    const RowKernels &simd =
        select_row_kernels(33, MicrokernelPath::kSimd);
    EXPECT_EQ(simd.path, MicrokernelPath::kSimd);
    EXPECT_EQ(simd.fixed_dim, 0);
#if MPS_MICROKERNEL_SIMD == 1
    // AVX2 builds carry fully unrolled tables for the GNN-typical dims.
    for (index_t d : {16, 32, 64}) {
        const RowKernels &fixed =
            select_row_kernels(d, MicrokernelPath::kSimd);
        EXPECT_EQ(fixed.fixed_dim, d) << "dim " << d;
    }
#endif
}

TEST(MicrokernelTest, ScalarVsSimdAllOps)
{
    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    Pcg32 rng(2024, 7);
    for (index_t dim : kDims) {
        const RowKernels &sc =
            select_row_kernels(dim, MicrokernelPath::kScalar);
        const RowKernels &sv =
            select_row_kernels(dim, MicrokernelPath::kSimd);
        const std::vector<value_t> x = random_row(rng, dim);
        const std::vector<value_t> y = random_row(rng, dim);
        const value_t a = rng.next_float(-3.0f, 3.0f);

        auto run_both = [&](auto &&op, const char *what) {
            std::vector<value_t> r1 = random_row(rng, dim);
            std::vector<value_t> r2 = r1;
            op(sc, r1.data());
            op(sv, r2.data());
            expect_rows_close(r1, r2, what, dim);
        };

        run_both([&](const RowKernels &rk, value_t *row) {
            rk.zero(row, dim);
        }, "zero");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.fill(row, a, dim);
        }, "fill");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.copy(row, x.data(), dim);
        }, "copy");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.add(row, x.data(), dim);
        }, "add");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.axpy(row, a, x.data(), dim);
        }, "axpy");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.scale(row, a, dim);
        }, "scale");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.scale_add(row, a, x.data(), dim);
        }, "scale_add");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.vmax(row, x.data(), dim);
        }, "vmax");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.commit_plain(row, x.data(), dim);
        }, "commit_plain");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.commit_atomic(row, x.data(), dim);
        }, "commit_atomic");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.commit_max_atomic(row, x.data(), dim);
        }, "commit_max_atomic");
        run_both([&](const RowKernels &rk, value_t *row) {
            rk.axpy_atomic(row, a, x.data(), dim);
        }, "axpy_atomic");

        EXPECT_NEAR(sc.dot(x.data(), y.data(), dim),
                    sv.dot(x.data(), y.data(), dim),
                    kTol * static_cast<value_t>(dim))
            << "dot at dim " << dim;
    }
}

TEST(MicrokernelTest, GatherDotScalarVsSimd)
{
    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    Pcg32 rng(11, 13);
    const index_t n = 200;
    std::vector<value_t> x = random_row(rng, n);
    for (index_t nnz : {0, 1, 3, 7, 8, 9, 40, 150}) {
        std::vector<value_t> vals = random_row(rng, nnz);
        std::vector<index_t> cols(static_cast<size_t>(nnz));
        for (auto &c : cols)
            c = static_cast<index_t>(
                rng.next_below(static_cast<uint32_t>(n)));
        const RowKernels &sc =
            select_row_kernels(n, MicrokernelPath::kScalar);
        const RowKernels &sv =
            select_row_kernels(n, MicrokernelPath::kSimd);
        EXPECT_NEAR(
            sc.gather_dot(vals.data(), cols.data(), 0, nnz, x.data()),
            sv.gather_dot(vals.data(), cols.data(), 0, nnz, x.data()),
            kTol * static_cast<value_t>(std::max<index_t>(nnz, 1)))
            << "gather_dot at nnz " << nnz;
    }
}

TEST(MicrokernelTest, UnalignedBasesAgree)
{
    if (!microkernel_simd_compiled())
        GTEST_SKIP() << "scalar-only build";
    // SIMD paths use unaligned loads/stores by design: shifting every
    // pointer one float off the 64-byte boundary must change nothing.
    Pcg32 rng(5, 17);
    for (index_t dim : {17, 33, 100}) {
        AlignedVector xs(static_cast<size_t>(dim) + 1);
        AlignedVector acc1(static_cast<size_t>(dim) + 1);
        for (auto &v : xs)
            v = rng.next_float(-1.0f, 1.0f);
        for (auto &v : acc1)
            v = rng.next_float(-1.0f, 1.0f);
        AlignedVector acc2 = acc1;

        const value_t *x = xs.data() + 1; // deliberately misaligned
        const RowKernels &sc =
            select_row_kernels(dim, MicrokernelPath::kScalar);
        const RowKernels &sv =
            select_row_kernels(dim, MicrokernelPath::kSimd);
        sc.axpy(acc1.data() + 1, 1.5f, x, dim);
        sv.axpy(acc2.data() + 1, 1.5f, x, dim);
        for (index_t d = 0; d < dim; ++d)
            EXPECT_NEAR(acc1[static_cast<size_t>(d) + 1],
                        acc2[static_cast<size_t>(d) + 1], kTol)
                << "unaligned axpy lane " << d << " dim " << dim;
        EXPECT_NEAR(sc.dot(x, acc1.data() + 1, dim),
                    sv.dot(x, acc2.data() + 1, dim),
                    kTol * static_cast<value_t>(dim));
    }
}

TEST(MicrokernelTest, NegativeAndNanPropagation)
{
    const value_t nan = std::numeric_limits<value_t>::quiet_NaN();
    for (MicrokernelPath path :
         {MicrokernelPath::kScalar, MicrokernelPath::kSimd}) {
        if (path == MicrokernelPath::kSimd &&
            !microkernel_simd_compiled())
            continue;
        const index_t dim = 19;
        const RowKernels &rk = select_row_kernels(dim, path);

        std::vector<value_t> acc(static_cast<size_t>(dim), -1.0f);
        std::vector<value_t> x(static_cast<size_t>(dim), -2.0f);
        x[4] = nan;
        x[17] = nan; // one in the vector body, one in the tail
        rk.axpy(acc.data(), -0.5f, x.data(), dim);
        for (index_t d = 0; d < dim; ++d) {
            if (d == 4 || d == 17)
                EXPECT_TRUE(std::isnan(acc[static_cast<size_t>(d)]))
                    << microkernel_path_name(path) << " lane " << d;
            else
                EXPECT_NEAR(acc[static_cast<size_t>(d)], 0.0f, kTol)
                    << microkernel_path_name(path) << " lane " << d;
        }

        std::vector<value_t> s(static_cast<size_t>(dim), 3.0f);
        s[2] = nan;
        std::vector<value_t> t(static_cast<size_t>(dim), 1.0f);
        rk.scale_add(s.data(), 2.0f, t.data(), dim);
        EXPECT_TRUE(std::isnan(s[2]));
        EXPECT_NEAR(s[0], 7.0f, kTol);

        EXPECT_TRUE(std::isnan(rk.dot(x.data(), t.data(), dim)));
    }
}

TEST(MicrokernelTest, AtomicAddConcurrent)
{
    // 4 threads x 4096 adds of 1.0 stays exactly representable in
    // fp32, so a single lost update is visible in the total.
    constexpr int kThreads = 4;
    constexpr int kAdds = 4096;
    value_t slot = 0.0f;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&slot] {
            for (int i = 0; i < kAdds; ++i)
                atomic_add(slot, 1.0f);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(slot, static_cast<value_t>(kThreads * kAdds));
}

TEST(MicrokernelTest, AtomicMaxConcurrent)
{
    value_t slot = std::numeric_limits<value_t>::lowest();
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&slot, t] {
            for (int i = 0; i < 2000; ++i)
                atomic_max(slot, static_cast<value_t>(t * 2000 + i));
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(slot, 7999.0f);
}

TEST(MicrokernelTest, ScratchIsAlignedAndGrows)
{
    value_t *p = microkernel_scratch(5);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kRowAlignBytes, 0u);
    row_fill(p, 1.0f, 5);
    value_t *q = microkernel_scratch(1000);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % kRowAlignBytes, 0u);
    row_zero(q, 1000);
    EXPECT_EQ(q[999], 0.0f);
}

TEST(MicrokernelTest, DenseMatrixPaddedStride)
{
    DenseMatrix m(3, 17);
    EXPECT_GE(m.padded_cols(), m.cols());
    EXPECT_EQ(m.padded_cols() % kRowAlignElems, 0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % kRowAlignBytes,
              0u);
    m.fill(2.0f);
    // Element (r, c) lives at data()[r * padded_cols() + c], and the
    // padding tail of every row stays zero.
    for (index_t r = 0; r < m.rows(); ++r) {
        EXPECT_EQ(m.row(r), m.data() + r * m.padded_cols());
        for (index_t c = m.cols(); c < m.padded_cols(); ++c)
            EXPECT_EQ(m.data()[r * m.padded_cols() + c], 0.0f)
                << "padding disturbed at row " << r << " slot " << c;
    }
    EXPECT_EQ(m(2, 16), 2.0f);
}

TEST(MicrokernelTest, DefaultPathAndNames)
{
    MicrokernelPath p = microkernel_default_path();
    if (!microkernel_simd_compiled()) {
        EXPECT_EQ(p, MicrokernelPath::kScalar);
    }
    EXPECT_STREQ(microkernel_path_name(MicrokernelPath::kScalar),
                 "scalar");
    EXPECT_STREQ(microkernel_path_name(MicrokernelPath::kSimd), "simd");
    EXPECT_GE(microkernel_vector_width(), 1);
}

} // namespace
} // namespace mps
