#include "mps/sparse/generate.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "mps/sparse/coo_matrix.h"
#include "mps/util/log.h"
#include "mps/util/rng.h"

namespace mps {

namespace {

/**
 * Sample @p count distinct column indices from [lo, hi) into @p out
 * (appended, sorted). Requires hi - lo >= count.
 */
void
sample_distinct_columns(Pcg32 &rng, index_t lo, index_t hi, index_t count,
                        std::vector<index_t> &out)
{
    MPS_CHECK(hi - lo >= count, "column window too small: [", lo, ",", hi,
              ") for ", count, " samples");
    size_t base = out.size();
    out.reserve(base + static_cast<size_t>(count));
    index_t range = hi - lo;
    while (static_cast<index_t>(out.size() - base) < count) {
        index_t need = count - static_cast<index_t>(out.size() - base);
        for (index_t i = 0; i < need; ++i)
            out.push_back(lo + static_cast<index_t>(
                              rng.next_below(static_cast<uint32_t>(range))));
        std::sort(out.begin() + base, out.end());
        out.erase(std::unique(out.begin() + base, out.end()), out.end());
    }
}

/** Build a CSR adjacency matrix from a per-row degree sequence. */
CsrMatrix
csr_from_degrees(index_t n, const std::vector<index_t> &degrees,
                 Pcg32 &rng, bool banded, index_t band_halfwidth)
{
    std::vector<index_t> row_ptr(static_cast<size_t>(n) + 1, 0);
    for (index_t r = 0; r < n; ++r)
        row_ptr[static_cast<size_t>(r) + 1] =
            row_ptr[static_cast<size_t>(r)] + degrees[static_cast<size_t>(r)];
    index_t nnz = row_ptr.back();

    std::vector<index_t> col_idx;
    col_idx.reserve(static_cast<size_t>(nnz));
    for (index_t r = 0; r < n; ++r) {
        index_t d = degrees[static_cast<size_t>(r)];
        if (d == 0)
            continue;
        index_t lo = 0, hi = n;
        if (banded) {
            lo = std::max<index_t>(0, r - band_halfwidth);
            hi = std::min<index_t>(n, r + band_halfwidth + 1);
            if (hi - lo < d) {
                lo = 0;
                hi = n;
            }
        }
        sample_distinct_columns(rng, lo, hi, d, col_idx);
    }
    MPS_CHECK(static_cast<index_t>(col_idx.size()) == nnz,
              "degree bookkeeping error");
    std::vector<value_t> values(static_cast<size_t>(nnz), 1.0f);
    return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

/** Sum of clamp(round(max_deg * (i+1)^-alpha), 0, max_deg) over ranks. */
int64_t
power_law_sum(index_t n, index_t max_deg, double alpha)
{
    int64_t sum = 0;
    for (index_t i = 0; i < n; ++i) {
        double raw = max_deg * std::pow(static_cast<double>(i) + 1.0,
                                        -alpha);
        int64_t d = std::llround(raw);
        d = std::clamp<int64_t>(d, 0, max_deg);
        sum += d;
    }
    return sum;
}

/**
 * Rank-based truncated power-law degree sequence summing exactly to
 * @p target with maximum element exactly @p max_deg.
 */
std::vector<index_t>
power_law_degrees(index_t n, index_t target, index_t max_deg, Pcg32 &rng)
{
    // Bisect the exponent: the sum is monotone non-increasing in alpha.
    double lo = 0.0, hi = 16.0;
    for (int iter = 0; iter < 64; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (power_law_sum(n, max_deg, mid) > target)
            lo = mid;
        else
            hi = mid;
    }
    double alpha = hi;
    std::vector<index_t> degrees(static_cast<size_t>(n));
    for (index_t i = 0; i < n; ++i) {
        double raw = max_deg * std::pow(static_cast<double>(i) + 1.0,
                                        -alpha);
        degrees[static_cast<size_t>(i)] = static_cast<index_t>(
            std::clamp<int64_t>(std::llround(raw), 0, max_deg));
    }
    degrees[0] = max_deg;

    // Distribute the residual over random ranks (rank 0 stays pinned to
    // max_deg so the published maximum is preserved exactly).
    int64_t sum = 0;
    for (index_t d : degrees)
        sum += d;
    int64_t diff = target - sum;
    while (diff != 0) {
        uint32_t i = 1 + rng.next_below(static_cast<uint32_t>(n - 1));
        if (diff > 0 && degrees[i] < max_deg) {
            ++degrees[i];
            --diff;
        } else if (diff < 0 && degrees[i] > 0) {
            --degrees[i];
            ++diff;
        }
    }
    return degrees;
}

/** Fisher-Yates shuffle with the library RNG (deterministic). */
template <typename T>
void
shuffle(std::vector<T> &xs, Pcg32 &rng)
{
    for (size_t i = xs.size(); i > 1; --i) {
        size_t j = rng.next_below(static_cast<uint32_t>(i));
        std::swap(xs[i - 1], xs[j]);
    }
}

void
check_feasible(index_t nodes, index_t target_nnz, index_t max_degree)
{
    MPS_CHECK(nodes > 0, "graph needs at least one node");
    MPS_CHECK(max_degree >= 0 && max_degree <= nodes,
              "max_degree must be in [0, nodes]");
    MPS_CHECK(target_nnz >= max_degree,
              "target_nnz must be >= max_degree");
    MPS_CHECK(static_cast<int64_t>(target_nnz) <=
                  static_cast<int64_t>(nodes) * max_degree,
              "target_nnz exceeds nodes * max_degree");
}

} // namespace

CsrMatrix
power_law_graph(const PowerLawParams &params)
{
    check_feasible(params.nodes, params.target_nnz, params.max_degree);
    uint64_t seed_state = params.seed;
    Pcg32 rng(splitmix64(seed_state), splitmix64(seed_state));

    std::vector<index_t> degrees;
    if (params.nodes == 1) {
        degrees.assign(1, params.target_nnz);
    } else {
        degrees = power_law_degrees(params.nodes, params.target_nnz,
                                    params.max_degree, rng);
        shuffle(degrees, rng);
    }
    CsrMatrix m = csr_from_degrees(params.nodes, degrees, rng,
                                   /*banded=*/false, 0);
    assign_values(m, params.value_mode, splitmix64(seed_state));
    return m;
}

CsrMatrix
structured_graph(const StructuredParams &params)
{
    check_feasible(params.nodes, params.target_nnz, params.max_degree);
    uint64_t seed_state = params.seed ^ 0x5741c0de;
    Pcg32 rng(splitmix64(seed_state), splitmix64(seed_state));

    index_t n = params.nodes;
    int64_t target = params.target_nnz;
    index_t base = static_cast<index_t>(target / n);
    index_t rem = static_cast<index_t>(target % n);

    std::vector<index_t> degrees(static_cast<size_t>(n), base);
    // Spread the remainder as +1 over a random prefix of a permutation.
    std::vector<index_t> order(static_cast<size_t>(n));
    for (index_t i = 0; i < n; ++i)
        order[static_cast<size_t>(i)] = i;
    shuffle(order, rng);
    for (index_t i = 0; i < rem; ++i)
        ++degrees[static_cast<size_t>(order[static_cast<size_t>(i)])];

    // Pin the published maximum exactly: raise one row to max_degree and
    // take the excess away from other rows (never below zero).
    index_t boosted = order.back();
    int64_t excess = params.max_degree -
                     degrees[static_cast<size_t>(boosted)];
    degrees[static_cast<size_t>(boosted)] = params.max_degree;
    size_t cursor = 0;
    while (excess > 0) {
        index_t victim = order[cursor % order.size()];
        ++cursor;
        if (victim == boosted)
            continue;
        if (degrees[static_cast<size_t>(victim)] > 0) {
            --degrees[static_cast<size_t>(victim)];
            --excess;
        }
    }

    index_t band = std::max<index_t>(params.max_degree * 4, 64);
    CsrMatrix m = csr_from_degrees(n, degrees, rng, /*banded=*/true, band);
    assign_values(m, params.value_mode, splitmix64(seed_state));
    return m;
}

CsrMatrix
erdos_renyi_graph(index_t nodes, index_t nnz, uint64_t seed,
                  ValueMode value_mode)
{
    MPS_CHECK(nodes > 0, "graph needs at least one node");
    MPS_CHECK(static_cast<int64_t>(nnz) <=
                  static_cast<int64_t>(nodes) * nodes,
              "nnz exceeds nodes^2");
    uint64_t seed_state = seed ^ 0xe4d05;
    Pcg32 rng(splitmix64(seed_state), splitmix64(seed_state));

    std::unordered_set<uint64_t> seen;
    seen.reserve(static_cast<size_t>(nnz) * 2);
    CooMatrix coo(nodes, nodes);
    coo.reserve(static_cast<size_t>(nnz));
    while (static_cast<index_t>(seen.size()) < nnz) {
        index_t r = static_cast<index_t>(
            rng.next_below(static_cast<uint32_t>(nodes)));
        index_t c = static_cast<index_t>(
            rng.next_below(static_cast<uint32_t>(nodes)));
        uint64_t key = (static_cast<uint64_t>(r) << 32) |
                       static_cast<uint32_t>(c);
        if (seen.insert(key).second)
            coo.add(r, c, 1.0f);
    }
    CsrMatrix m = CsrMatrix::from_coo(std::move(coo));
    assign_values(m, value_mode, splitmix64(seed_state));
    return m;
}

CsrMatrix
rmat_graph(const RmatParams &params)
{
    MPS_CHECK(params.scale >= 1 && params.scale <= 30,
              "rmat scale out of range");
    double d = 1.0 - params.a - params.b - params.c;
    MPS_CHECK(params.a >= 0 && params.b >= 0 && params.c >= 0 && d >= 0,
              "rmat quadrant probabilities must be a valid distribution");

    uint64_t seed_state = params.seed ^ 0x52a47;
    Pcg32 rng(splitmix64(seed_state), splitmix64(seed_state));

    index_t n = static_cast<index_t>(1) << params.scale;
    int64_t edges = static_cast<int64_t>(params.edge_factor) * n;
    CooMatrix coo(n, n);
    coo.reserve(static_cast<size_t>(edges));
    for (int64_t e = 0; e < edges; ++e) {
        index_t r = 0, c = 0;
        for (int bit = 0; bit < params.scale; ++bit) {
            double u = rng.next_double();
            r <<= 1;
            c <<= 1;
            if (u < params.a) {
                // top-left: nothing to add
            } else if (u < params.a + params.b) {
                c |= 1;
            } else if (u < params.a + params.b + params.c) {
                r |= 1;
            } else {
                r |= 1;
                c |= 1;
            }
        }
        coo.add(r, c, 1.0f);
    }
    coo.sort_and_merge();
    CsrMatrix m = CsrMatrix::from_coo(std::move(coo));
    assign_values(m, params.value_mode, splitmix64(seed_state));
    return m;
}

void
assign_values(CsrMatrix &m, ValueMode mode, uint64_t seed)
{
    switch (mode) {
      case ValueMode::kOnes:
        std::fill(m.values().begin(), m.values().end(), 1.0f);
        break;
      case ValueMode::kRandom: {
        uint64_t seed_state = seed ^ 0xfa17;
        Pcg32 rng(splitmix64(seed_state), splitmix64(seed_state));
        for (auto &v : m.values())
            v = rng.next_float(0.001f, 1.0f);
        break;
      }
      case ValueMode::kGcnNormalized:
        std::fill(m.values().begin(), m.values().end(), 1.0f);
        m.normalize_gcn();
        break;
    }
}

} // namespace mps
