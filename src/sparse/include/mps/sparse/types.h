/**
 * @file
 * Element and index types shared by all matrix containers and kernels.
 */
#ifndef MPS_SPARSE_TYPES_H
#define MPS_SPARSE_TYPES_H

#include <cstdint>

namespace mps {

/**
 * Index type for rows, columns and non-zero positions. 32-bit signed
 * covers every graph in the paper's Table II (max 5.5M non-zeros) with
 * room to spare and matches the CSR layout that GPU kernels use.
 */
using index_t = int32_t;

/** Value type of matrix elements. */
using value_t = float;

} // namespace mps

#endif // MPS_SPARSE_TYPES_H
