/**
 * @file
 * Element and index types shared by all matrix containers and kernels.
 */
#ifndef MPS_SPARSE_TYPES_H
#define MPS_SPARSE_TYPES_H

#include <cstdint>

namespace mps {

/**
 * Index type for rows, columns and non-zero positions. 32-bit signed
 * covers every graph in the paper's Table II (max 5.5M non-zeros) with
 * room to spare and matches the CSR layout that GPU kernels use.
 */
using index_t = int32_t;

/** Value type of matrix elements. */
using value_t = float;

/**
 * Storage type of a bfloat16 element: the top 16 bits of an IEEE-754
 * binary32. Held as a plain uint16_t — all arithmetic happens after
 * widening back to value_t (see mps/sparse/quant.h), so no operator
 * overloads are wanted here.
 */
using bf16_t = std::uint16_t;

} // namespace mps

#endif // MPS_SPARSE_TYPES_H
