/**
 * @file
 * 64-byte-aligned allocation for dense rows and kernel scratch.
 *
 * The SIMD row microkernels (mps/core/microkernel.h) assume that every
 * dense row starts on a cache-line boundary; DenseMatrix and the
 * per-thread accumulator scratch both allocate through this allocator
 * so the fixed-dimension vector paths never straddle a line.
 */
#ifndef MPS_SPARSE_ALIGNED_BUFFER_H
#define MPS_SPARSE_ALIGNED_BUFFER_H

#include <cstddef>
#include <new>
#include <vector>

#include "mps/sparse/types.h"

namespace mps {

/** Cache-line alignment (bytes) of dense-row storage. */
inline constexpr std::size_t kRowAlignBytes = 64;

/** Elements of value_t per cache line; rows are padded to this. */
inline constexpr index_t kRowAlignElems =
    static_cast<index_t>(kRowAlignBytes / sizeof(value_t));

/** Round @p n up to a multiple of kRowAlignElems (0 stays 0). */
constexpr index_t
padded_row_length(index_t n)
{
    return ((n + kRowAlignElems - 1) / kRowAlignElems) * kRowAlignElems;
}

/** Minimal std::allocator replacement with a fixed alignment. */
template <class T, std::size_t Align = kRowAlignBytes>
struct AlignedAllocator
{
    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <class U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    T *allocate(std::size_t n)
    {
        if (n == 0)
            return nullptr;
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }
    void deallocate(T *p, std::size_t n) noexcept
    {
        ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
    }

    template <class U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    friend bool operator==(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return true;
    }
};

/** Cache-line-aligned vector of matrix values. */
using AlignedVector = std::vector<value_t, AlignedAllocator<value_t>>;

/** Cache-line-aligned vector of bf16 storage (see mps/sparse/quant.h). */
using AlignedVectorB16 = std::vector<bf16_t, AlignedAllocator<bf16_t>>;

/** Cache-line-aligned vector of int8 storage (see mps/sparse/quant.h). */
using AlignedVectorI8 = std::vector<int8_t, AlignedAllocator<int8_t>>;

} // namespace mps

#endif // MPS_SPARSE_ALIGNED_BUFFER_H
