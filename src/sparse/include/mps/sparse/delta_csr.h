/**
 * @file
 * Delta-CSR: a dynamic-graph overlay over an immutable CSR base.
 *
 * The base CsrMatrix is frozen and shared (shared_ptr) — in-flight
 * consumers keep reading it while updates land. Edge churn accumulates
 * in a compact per-row overlay; when the delta fraction exceeds a lazy
 * merge threshold (MPS_DELTA_COMPACT_RATIO), compact() merges overlay
 * and base into a fresh CSR in one linear pass and reports the first
 * structurally dirty row so schedules can be repaired incrementally
 * instead of rebuilt.
 *
 * Execution model (GE-SpMM's bandwidth argument: the hot gather loop
 * must never pay for the overlay): SpMM runs UNMODIFIED over the base,
 * then a correction pass adds, per dirty row r,
 *
 *     C[r] += sum_k corr_k * B[col_k]
 *
 * where corr_k = v - base_val (value change), v (inserted edge) or
 * -base_val (removed edge). Because the base's structure is untouched
 * between compactions, merge-path schedules built for the base stay
 * valid across every apply() — repair cost is only paid at compaction.
 * Equivalence is exact in real arithmetic and bit-exact whenever row
 * sums are order-independent (e.g. integer-valued data).
 */
#ifndef MPS_SPARSE_DELTA_CSR_H
#define MPS_SPARSE_DELTA_CSR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/types.h"

namespace mps {

/**
 * Compaction threshold from MPS_DELTA_COMPACT_RATIO (fraction of base
 * nnz the overlay may reach before needs_compaction() fires). Unset or
 * invalid values fall back to 0.10.
 */
double default_delta_compact_ratio();

/** One edge mutation. @p value is ignored for removals. */
struct EdgeUpdate
{
    index_t row = 0;
    index_t col = 0;
    value_t value = 0.0f;
};

/**
 * A batch of graph mutations applied atomically by DeltaCsr::apply()
 * (and Server::update_graph). Within one batch, later entries win over
 * earlier ones for the same (row, col); removes of absent edges are
 * no-ops.
 */
struct GraphDelta
{
    std::vector<EdgeUpdate> upserts; ///< insert new or replace existing
    std::vector<EdgeUpdate> removes; ///< delete if present

    bool empty() const { return upserts.empty() && removes.empty(); }
    size_t size() const { return upserts.size() + removes.size(); }
};

/** CSR base + compact per-row correction overlay. */
class DeltaCsr
{
  public:
    DeltaCsr() = default;

    /** Wrap a base matrix (validated kStrict: sorted, duplicate-free). */
    explicit DeltaCsr(CsrMatrix base);
    explicit DeltaCsr(std::shared_ptr<const CsrMatrix> base);

    /** The frozen base every schedule and SpMM traversal runs over. */
    const CsrMatrix &base() const { return *base_; }
    std::shared_ptr<const CsrMatrix> base_ptr() const { return base_; }

    index_t rows() const { return base_->rows(); }
    index_t cols() const { return base_->cols(); }

    /** Logical nnz of base ∪ overlay (inserts added, removals gone). */
    index_t nnz() const
    {
        return base_->nnz() + inserted_ - removed_;
    }

    /** Overlay entries (edges whose effective value deviates from base). */
    int64_t delta_edges() const
    {
        return static_cast<int64_t>(ovl_cols_.size());
    }

    /** delta_edges() over max(base nnz, 1). */
    double delta_fraction() const;

    /** Merge a batch of mutations into the overlay. O(delta log + merge). */
    void apply(const GraphDelta &delta);

    bool needs_compaction() const
    {
        return delta_fraction() > compact_ratio_;
    }

    double compact_ratio() const { return compact_ratio_; }
    void set_compact_ratio(double ratio);

    /** What compact() swapped, for incremental schedule repair. */
    struct CompactResult
    {
        std::shared_ptr<const CsrMatrix> old_base;
        std::shared_ptr<const CsrMatrix> new_base;
        /**
         * First row whose STRUCTURE changed: row_ptr of both bases
         * agrees through this index (value-only corrections don't
         * count — they leave every merge-path diagonal in place).
         * Equals rows() when the overlay held no structural change.
         */
        index_t first_dirty_row = 0;
    };

    /**
     * Merge base ∪ overlay into a fresh base (one linear pass, no
     * sort), clear the overlay, and return old/new bases plus the first
     * dirty row for schedule repair.
     */
    CompactResult compact();

    /** Eager base ∪ overlay as a standalone CSR (base left untouched). */
    CsrMatrix materialize() const;

    // --- Overlay iteration (correction pass & tests) ---

    index_t num_dirty_rows() const
    {
        return static_cast<index_t>(dirty_rows_.size());
    }

    /** i-th dirty row id, ascending. */
    index_t dirty_row(index_t i) const
    {
        return dirty_rows_[static_cast<size_t>(i)];
    }

    /**
     * Visit the corrections of the i-th dirty row:
     * fn(col, corr, effective_value, present). Summing corr * B[col]
     * onto the base SpMM's output row yields the effective output row.
     */
    template <typename Fn>
    void for_each_correction(index_t i, Fn &&fn) const
    {
        for (index_t k = ovl_ptr_[i]; k < ovl_ptr_[i + 1]; ++k) {
            fn(ovl_cols_[k], ovl_corr_[k], ovl_val_[k],
               ovl_present_[k] != 0);
        }
    }

    /**
     * Visit the EFFECTIVE row r (base ∪ overlay merged on the fly), in
     * ascending column order: fn(col, value). Matches materialize().
     */
    template <typename Fn>
    void for_each_in_row(index_t r, Fn &&fn) const
    {
        const index_t d = dirty_index(r);
        if (d < 0) {
            const auto &ci = base_->col_idx();
            const auto &v = base_->values();
            for (index_t k = base_->row_begin(r); k < base_->row_end(r);
                 ++k)
                fn(ci[k], v[k]);
            return;
        }
        merge_row(r, d, fn);
    }

    /** Panics unless every overlay invariant holds. Used by tests. */
    void validate() const;

  private:
    /** Index into dirty_rows_ for row r, or -1 when r is clean. */
    index_t dirty_index(index_t r) const;

    template <typename Fn>
    void merge_row(index_t r, index_t d, Fn &&fn) const
    {
        const auto &ci = base_->col_idx();
        const auto &v = base_->values();
        index_t b = base_->row_begin(r);
        const index_t be = base_->row_end(r);
        index_t o = ovl_ptr_[d];
        const index_t oe = ovl_ptr_[d + 1];
        while (b < be || o < oe) {
            if (o >= oe || (b < be && ci[b] < ovl_cols_[o])) {
                fn(ci[b], v[b]);
                ++b;
            } else {
                const bool shadows_base = b < be && ci[b] == ovl_cols_[o];
                if (ovl_present_[o] != 0)
                    fn(ovl_cols_[o], ovl_val_[o]);
                if (shadows_base)
                    ++b;
                ++o;
            }
        }
    }

    std::shared_ptr<const CsrMatrix> base_;
    double compact_ratio_ = default_delta_compact_ratio();

    // Overlay, SoA over dirty rows only. For dirty row dirty_rows_[i],
    // entries [ovl_ptr_[i], ovl_ptr_[i+1]) hold ascending columns with
    // the effective value (ovl_val_), the correction vs. the base
    // (ovl_corr_ = effective - base contribution) and whether the edge
    // exists at all after the overlay (ovl_present_; 0 = removed).
    std::vector<index_t> dirty_rows_; ///< ascending
    std::vector<index_t> ovl_ptr_;    ///< dirty_rows_.size() + 1
    std::vector<index_t> ovl_cols_;
    std::vector<value_t> ovl_val_;
    std::vector<value_t> ovl_corr_;
    std::vector<uint8_t> ovl_present_;
    std::vector<uint8_t> ovl_in_base_; ///< edge exists in the base row

    index_t inserted_ = 0; ///< present && !in_base overlay entries
    index_t removed_ = 0;  ///< !present && in_base overlay entries
};

} // namespace mps

#endif // MPS_SPARSE_DELTA_CSR_H
