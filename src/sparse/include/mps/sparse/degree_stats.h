/**
 * @file
 * Row-degree statistics of a sparse matrix: the quantities Table II and
 * Figure 1 of the paper report, and the signals the adaptive (cuSPARSE
 * stand-in) kernel selector uses to classify inputs.
 */
#ifndef MPS_SPARSE_DEGREE_STATS_H
#define MPS_SPARSE_DEGREE_STATS_H

#include <string>

#include "mps/sparse/types.h"
#include "mps/util/stats.h"

namespace mps {

class CsrMatrix;

/** Summary of the row-degree (non-zeros per row) distribution. */
struct DegreeStats
{
    index_t min_degree = 0;
    index_t max_degree = 0;
    double avg_degree = 0.0;
    /** Coefficient of variation of row degrees (load-imbalance proxy). */
    double degree_cv = 0.0;
    /** Fraction of rows with zero non-zeros. */
    double empty_row_fraction = 0.0;
    /**
     * Fraction of all non-zeros living in the top 1% highest-degree rows;
     * a direct "evil row" concentration measure.
     */
    double top1pct_nnz_share = 0.0;
};

/** Compute degree statistics of @p m. */
DegreeStats compute_degree_stats(const CsrMatrix &m);

/** Power-of-two degree histogram of @p m (Figure 1 material). */
Log2Histogram degree_histogram(const CsrMatrix &m);

/** One-line rendering for logs and benches. */
std::string to_string(const DegreeStats &s);

} // namespace mps

#endif // MPS_SPARSE_DEGREE_STATS_H
