/**
 * @file
 * Compressed sparse row matrix: the format every SpMM kernel in this
 * library consumes, and the format whose row-pointer array the merge-path
 * decomposition binary-searches. No extensions are needed — that is one of
 * the paper's selling points versus GNNAdvisor's neighbor-group metadata.
 */
#ifndef MPS_SPARSE_CSR_MATRIX_H
#define MPS_SPARSE_CSR_MATRIX_H

#include <vector>

#include "mps/sparse/types.h"

namespace mps {

class CooMatrix;

/**
 * Validation strictness for CsrMatrix::validate().
 *
 * kStructural is what construction enforces: the row-pointer shape and
 * column-range invariants every kernel relies on. kStrict additionally
 * requires strictly ascending (hence duplicate-free) column indices in
 * every row — the contract the delta-merge path needs so binary search
 * within a row and the sorted merge of base ∪ overlay are well-defined.
 * kStrict stays opt-in because parts of the test suite deliberately
 * exercise kernels on unsorted/duplicated CSR inputs.
 */
enum class CsrValidate
{
    kStructural,
    kStrict,
};

/** Sparse matrix in CSR format with value_t values. */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /**
     * Build directly from arrays (validated): row_ptr must be
     * non-decreasing of length rows+1 with row_ptr[0] == 0 and
     * row_ptr[rows] == col_idx.size(); all column indices in range.
     */
    CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
              std::vector<index_t> col_idx, std::vector<value_t> values);

    /** Convert from COO; entries are sorted and duplicates merged. */
    static CsrMatrix from_coo(CooMatrix coo);

    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }
    index_t nnz() const { return static_cast<index_t>(col_idx_.size()); }

    const std::vector<index_t> &row_ptr() const { return row_ptr_; }
    const std::vector<index_t> &col_idx() const { return col_idx_; }
    const std::vector<value_t> &values() const { return values_; }
    std::vector<value_t> &values() { return values_; }

    /** Number of non-zeros in row r. */
    index_t degree(index_t r) const {
        return row_ptr_[r + 1] - row_ptr_[r];
    }

    /** First non-zero index of row r (into col_idx / values). */
    index_t row_begin(index_t r) const { return row_ptr_[r]; }

    /** One-past-last non-zero index of row r. */
    index_t row_end(index_t r) const { return row_ptr_[r + 1]; }

    /** Transposed copy (CSR of A^T). */
    CsrMatrix transposed() const;

    /** Convert back to COO (sorted by row, col). */
    CooMatrix to_coo() const;

    /**
     * Replace all values with symmetric-normalized weights
     * 1 / sqrt((deg(i)+1) * (deg(j)+1)) as used for GCN adjacency
     * matrices (self-loop-smoothed degrees).
     */
    void normalize_gcn();

    /**
     * Panics if any CSR invariant of the requested level is violated;
     * see CsrValidate. Construction runs the kStructural level.
     */
    void validate(CsrValidate level = CsrValidate::kStructural) const;

  private:
    index_t rows_ = 0;
    index_t cols_ = 0;
    std::vector<index_t> row_ptr_;
    std::vector<index_t> col_idx_;
    std::vector<value_t> values_;
};

} // namespace mps

#endif // MPS_SPARSE_CSR_MATRIX_H
