/**
 * @file
 * Registry of the paper's Table II evaluation graphs.
 *
 * Each entry records the published node count, non-zero count, average
 * degree and maximum degree. make_dataset() materializes the graph with
 * the matching synthetic generator (power-law for Type I, structured for
 * Type II) using a per-name deterministic seed, so every bench and test
 * sees the same matrices.
 */
#ifndef MPS_SPARSE_DATASETS_H
#define MPS_SPARSE_DATASETS_H

#include <string>
#include <vector>

#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/generate.h"

namespace mps {

/** Table II graph category. */
enum class GraphType {
    kPowerLaw,   ///< Type I: heavy-tailed degree distribution
    kStructured, ///< Type II: near-uniform degree distribution
};

/** One Table II row. */
struct DatasetSpec
{
    std::string name;
    GraphType type;
    index_t nodes;
    index_t nnz;
    double avg_degree; ///< as published (nnz / nodes, rounded)
    index_t max_degree;
};

/** All 23 Table II entries, in the paper's order. */
const std::vector<DatasetSpec> &all_dataset_specs();

/** Find a spec by (case-sensitive) name; fatal() when unknown. */
const DatasetSpec &find_dataset_spec(const std::string &name);

/**
 * Materialize a Table II graph with the matching generator. The result
 * has exactly spec.nodes rows/cols, exactly spec.nnz non-zeros and
 * exactly spec.max_degree as its largest row degree.
 */
CsrMatrix make_dataset(const DatasetSpec &spec,
                       ValueMode value_mode = ValueMode::kRandom);

/** Convenience overload by name. */
CsrMatrix make_dataset(const std::string &name,
                       ValueMode value_mode = ValueMode::kRandom);

/**
 * A reduced-size stand-in of a Table II graph for unit tests and quick
 * runs: node and nnz counts divided by @p shrink_factor (minimums apply),
 * max degree clamped accordingly, same type and seed derivation.
 */
CsrMatrix make_scaled_dataset(const DatasetSpec &spec, index_t shrink_factor,
                              ValueMode value_mode = ValueMode::kRandom);

} // namespace mps

#endif // MPS_SPARSE_DATASETS_H
