/**
 * @file
 * Graph reordering utilities.
 *
 * The paper stresses that MergePath-SpMM needs "no preprocessing,
 * reordering, or extension of the sparse input matrix". These helpers
 * implement the reorderings a practitioner might otherwise reach for —
 * degree sorting and BFS/Cuthill-McKee-style relabeling — so their
 * (in)effectiveness against load imbalance can be measured (see the
 * ablation bench): sorting by degree concentrates the evil rows in one
 * thread's chunk instead of removing the imbalance.
 */
#ifndef MPS_SPARSE_REORDER_H
#define MPS_SPARSE_REORDER_H

#include <string>
#include <vector>

#include "mps/sparse/csr_matrix.h"

namespace mps {

/**
 * Relabel a square matrix's rows and columns by @p perm, where
 * perm[old_id] == new_id. perm must be a permutation of [0, rows).
 * Row contents stay sorted by column.
 */
CsrMatrix permute_symmetric(const CsrMatrix &m,
                            const std::vector<index_t> &perm);

/**
 * Reorder only the rows of @p m by @p perm (perm[old_id] == new_id);
 * column indices are left untouched. This is the permutation the
 * reorder-aware SpMM executes on: the dense operand stays in original
 * row order, so the gather needs no extra indirection, and the output
 * is scattered back through the inverse permutation at commit time.
 * Works for rectangular matrices; each row's contents are preserved
 * verbatim (same column order, same values).
 */
CsrMatrix permute_rows(const CsrMatrix &m,
                       const std::vector<index_t> &perm);

/**
 * Permutation sorting nodes by degree (stable). @p descending puts the
 * evil rows first.
 */
std::vector<index_t> degree_sort_permutation(const CsrMatrix &m,
                                             bool descending = true);

/**
 * BFS relabeling from the minimum-degree node, visiting neighbors in
 * ascending-degree order and restarting on every connected component
 * (reverse it for classical RCM). Improves locality of banded-ish
 * graphs; does nothing for load balance.
 */
std::vector<index_t> bfs_permutation(const CsrMatrix &m);

/** Reverse a permutation's order (new_id -> rows-1-new_id). */
std::vector<index_t> reverse_permutation(std::vector<index_t> perm);

/**
 * Inverse permutation: returns inv with inv[perm[i]] == i. Validates
 * @p perm first, so the result is always itself a valid permutation
 * (the round-trip invert(invert(p)) == p is guaranteed or we panic).
 */
std::vector<index_t> invert_permutation(const std::vector<index_t> &perm);

/** Panics unless @p perm is a valid permutation of [0, n). */
void validate_permutation(const std::vector<index_t> &perm, index_t n);

// ---------------------------------------------------------------------
// Reorder plans: the packaged form the locality layer executes.
// ---------------------------------------------------------------------

/** Which relabeling a ReorderPlan applies. */
enum class ReorderKind {
    kNone,   ///< identity (no plan is built)
    kDegree, ///< stable descending degree sort (Accel-GCN-style remap)
    kBfs,    ///< BFS relabeling from min-degree seeds
    kRcm,    ///< reverse Cuthill-McKee (reversed BFS order)
};

/** Stable name: "none", "degree", "bfs", "rcm". */
const char *reorder_kind_name(ReorderKind kind);

/**
 * Parse a ReorderKind name (the MPS_REORDER / --reorder vocabulary).
 * Panics on unknown values, listing the accepted ones.
 */
ReorderKind parse_reorder_kind(const std::string &name);

/**
 * Process-default reorder kind from MPS_REORDER (parsed once;
 * kNone when unset).
 */
ReorderKind default_reorder_kind();

/**
 * A row permutation prepared for reorder-aware SpMM execution:
 * the traversal runs over @p matrix (rows of the original relabeled by
 * @p perm, columns untouched) and commits traversal row r to original
 * row inverse[r]. Immutable after construction; shared read-only
 * across layers and requests via the ScheduleCache.
 */
struct ReorderPlan
{
    ReorderKind kind = ReorderKind::kNone;
    /** perm[old_id] == new_id. */
    std::vector<index_t> perm;
    /** inverse[new_id] == old_id — the commit-time scatter map. */
    std::vector<index_t> inverse;
    /** Row-permuted copy of the matrix the plan was built for. */
    CsrMatrix matrix;
};

/**
 * Build a ReorderPlan of @p kind for square matrix @p m. Panics when
 * kind == kNone (callers skip plan-building for the identity) or the
 * matrix is not square.
 */
ReorderPlan build_reorder_plan(const CsrMatrix &m, ReorderKind kind);

} // namespace mps

#endif // MPS_SPARSE_REORDER_H
