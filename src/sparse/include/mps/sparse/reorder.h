/**
 * @file
 * Graph reordering utilities.
 *
 * The paper stresses that MergePath-SpMM needs "no preprocessing,
 * reordering, or extension of the sparse input matrix". These helpers
 * implement the reorderings a practitioner might otherwise reach for —
 * degree sorting and BFS/Cuthill-McKee-style relabeling — so their
 * (in)effectiveness against load imbalance can be measured (see the
 * ablation bench): sorting by degree concentrates the evil rows in one
 * thread's chunk instead of removing the imbalance.
 */
#ifndef MPS_SPARSE_REORDER_H
#define MPS_SPARSE_REORDER_H

#include <vector>

#include "mps/sparse/csr_matrix.h"

namespace mps {

/**
 * Relabel a square matrix's rows and columns by @p perm, where
 * perm[old_id] == new_id. perm must be a permutation of [0, rows).
 * Row contents stay sorted by column.
 */
CsrMatrix permute_symmetric(const CsrMatrix &m,
                            const std::vector<index_t> &perm);

/**
 * Permutation sorting nodes by degree (stable). @p descending puts the
 * evil rows first.
 */
std::vector<index_t> degree_sort_permutation(const CsrMatrix &m,
                                             bool descending = true);

/**
 * BFS relabeling from the minimum-degree node, visiting neighbors in
 * ascending-degree order and restarting on every connected component
 * (reverse it for classical RCM). Improves locality of banded-ish
 * graphs; does nothing for load balance.
 */
std::vector<index_t> bfs_permutation(const CsrMatrix &m);

/** Reverse a permutation's order (new_id -> rows-1-new_id). */
std::vector<index_t> reverse_permutation(std::vector<index_t> perm);

/** Panics unless @p perm is a valid permutation of [0, n). */
void validate_permutation(const std::vector<index_t> &perm, index_t n);

} // namespace mps

#endif // MPS_SPARSE_REORDER_H
