/**
 * @file
 * Deterministic synthetic graph generators.
 *
 * The paper evaluates on 23 real graphs (Table II). This library cannot
 * ship those datasets, so each is reproduced by a generator that matches
 * the published (#nodes, #non-zeros, max degree) exactly and the average
 * degree by construction. Two families cover the paper's two types:
 *
 *  - power_law_graph(): rank-based truncated power-law degree sequence
 *    (rank 0 = the published max degree, exponent calibrated so the total
 *    hits the published nnz), randomly permuted over node ids, uniform
 *    random neighbor choice. Reproduces the "evil row" structure that
 *    drives the paper's load-imbalance results (Type I).
 *
 *  - structured_graph(): near-uniform degrees with a banded (diagonal-
 *    local) neighbor choice, mimicking the molecule/protein meshes of
 *    Type II (low degree variance, good locality).
 *
 * Plus Erdos-Renyi and R-MAT generators for tests and extra studies.
 * All generators are pure functions of their parameters and seed.
 */
#ifndef MPS_SPARSE_GENERATE_H
#define MPS_SPARSE_GENERATE_H

#include <cstdint>

#include "mps/sparse/csr_matrix.h"

namespace mps {

/** How to fill the values of generated non-zeros. */
enum class ValueMode {
    kOnes,          ///< every value = 1 (pure structure)
    kRandom,        ///< uniform in (0, 1]
    kGcnNormalized, ///< symmetric GCN normalization of a 0/1 structure
};

/** Parameters for power_law_graph(). */
struct PowerLawParams
{
    index_t nodes = 0;
    /** Exact number of non-zeros the generated matrix will have. */
    index_t target_nnz = 0;
    /** Exact maximum row degree. */
    index_t max_degree = 0;
    uint64_t seed = 1;
    ValueMode value_mode = ValueMode::kRandom;
};

/**
 * Generate a square power-law graph adjacency matrix matching the
 * requested node count, non-zero count (exactly) and maximum degree
 * (exactly). Panics on infeasible parameter combinations
 * (target_nnz > nodes * max_degree or max_degree > nodes or
 * max_degree > target_nnz).
 */
CsrMatrix power_law_graph(const PowerLawParams &params);

/** Parameters for structured_graph(). */
struct StructuredParams
{
    index_t nodes = 0;
    /** Exact number of non-zeros. */
    index_t target_nnz = 0;
    /** Exact maximum row degree (small for structured graphs). */
    index_t max_degree = 0;
    uint64_t seed = 1;
    ValueMode value_mode = ValueMode::kRandom;
};

/**
 * Generate a square structured (low-variance, banded) adjacency matrix
 * with the requested node count, exact non-zero count and exact maximum
 * degree. Same feasibility requirements as power_law_graph().
 */
CsrMatrix structured_graph(const StructuredParams &params);

/**
 * Erdos-Renyi G(n, m): exactly @p nnz distinct uniform random non-zeros
 * in an n x n matrix.
 */
CsrMatrix erdos_renyi_graph(index_t nodes, index_t nnz, uint64_t seed,
                            ValueMode value_mode = ValueMode::kRandom);

/** Parameters for rmat_graph(). */
struct RmatParams
{
    /** Matrix dimension is 2^scale. */
    int scale = 10;
    /** Edges generated = edge_factor * 2^scale (before deduplication). */
    int edge_factor = 8;
    double a = 0.57, b = 0.19, c = 0.19; ///< quadrant probs (d = 1-a-b-c)
    uint64_t seed = 1;
    ValueMode value_mode = ValueMode::kRandom;
};

/**
 * Kronecker / R-MAT generator (Graph500-style). The non-zero count is
 * approximate: duplicate edges are merged.
 */
CsrMatrix rmat_graph(const RmatParams &params);

/** Re-fill the values of @p m according to @p mode (deterministic). */
void assign_values(CsrMatrix &m, ValueMode mode, uint64_t seed);

} // namespace mps

#endif // MPS_SPARSE_GENERATE_H
