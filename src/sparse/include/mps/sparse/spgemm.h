/**
 * @file
 * Sparse x sparse matrix multiplication (SpGEMM), Gustavson's row-wise
 * algorithm.
 *
 * Background substrate: the first kernel of a GCN layer multiplies the
 * moderately sparse feature matrix X with the dense weight matrix W;
 * HyGCN-style accelerators instead pair a SpGEMM engine (A x X, both
 * sparse) with a dense engine — the design whose inter-engine
 * imbalance motivates the paper's unified-SpMM approach. This module
 * provides the SpGEMM kernel so that pipeline can be built and
 * compared, plus sparse-times-dense helpers for sparse feature
 * matrices.
 */
#ifndef MPS_SPARSE_SPGEMM_H
#define MPS_SPARSE_SPGEMM_H

#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;

/**
 * C = A * B with both inputs sparse CSR (Gustavson row-wise: for each
 * row i of A, accumulate scaled rows of B into a sparse accumulator).
 * Output rows are sorted by column. Single-threaded.
 */
CsrMatrix spgemm(const CsrMatrix &a, const CsrMatrix &b);

/**
 * Parallel SpGEMM: rows of A are processed in dynamic chunks on
 * @p pool (row-splitting is safe here — each output row is exclusive —
 * but inherits the same evil-row imbalance the paper studies).
 */
CsrMatrix spgemm_parallel(const CsrMatrix &a, const CsrMatrix &b,
                          WorkStealPool &pool);

/**
 * out = X * W with X sparse (n x f CSR) and W dense (f x d): the
 * combination kernel of a GCN layer when node features are kept
 * sparse. Row-parallel on @p pool, no synchronization needed.
 * Defined in mps_core (spmm.cpp) so it can share the vectorized row
 * microkernels; callers must link mps_core.
 */
void sparse_dense_matmul(const CsrMatrix &x, const DenseMatrix &w,
                         DenseMatrix &out, WorkStealPool &pool);

/**
 * Drop explicit zeros and entries with |value| < @p threshold from
 * @p m (useful after SpGEMM chains and for sparsifying features).
 */
CsrMatrix prune(const CsrMatrix &m, value_t threshold = 0.0f);

/** Convert a dense matrix to CSR, keeping entries with |v| > thresh. */
CsrMatrix sparsify(const DenseMatrix &dense, value_t threshold = 0.0f);

/** Convert a CSR matrix to dense (for tests and small problems). */
DenseMatrix densify(const CsrMatrix &m);

} // namespace mps

#endif // MPS_SPARSE_SPGEMM_H
