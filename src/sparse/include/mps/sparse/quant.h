/**
 * @file
 * Reduced-precision operand storage: scalar conversion primitives and
 * the StorageMode selector shared by DenseMatrix and the microkernels.
 *
 * The merge-path gather loop is load-bound (bench/fig_locality: gather
 * GB/s is the ceiling), so the win here is bytes, not flops: the B
 * operand is stored at 16 (bf16) or 8 (int8) bits per element and
 * widened back to fp32 in registers inside the kernels. Accumulators
 * and the C output stay fp32 throughout — the atomic split-row commit
 * protocol never sees a narrow type.
 *
 * bf16 is the top half of an IEEE binary32: decode is a 16-bit shift,
 * encode rounds to nearest-even with a NaN quieting fixup. int8 is a
 * per-row affine code q in [-127, 127] with value = scale * q + zero;
 * scale/zero are derived from the row's min/max so the code range is
 * symmetric around the row midpoint (zero) and -128 is never produced
 * (keeps negation exact and the SIMD widen free of the -128 asymmetry).
 *
 * These scalar primitives are the reference semantics: the SIMD
 * encode/decode kernels in mps/core/microkernel.cpp are bit-identical
 * to them (including the NaN and saturation edges), which is what the
 * scalar-vs-SIMD cross-check tests pin down.
 */
#ifndef MPS_SPARSE_QUANT_H
#define MPS_SPARSE_QUANT_H

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "mps/sparse/types.h"

namespace mps {

/** Per-matrix element storage width of a DenseMatrix B operand. */
enum class StorageMode : std::uint8_t
{
    kF32 = 0,  ///< full fp32 rows only (the default; bit-exact paths)
    kBf16 = 1, ///< shadow bf16 rows beside the fp32 master
    kInt8 = 2, ///< shadow int8 rows + per-row (scale, zero) params
};

/** Bytes per stored element under @p mode (4 / 2 / 1). */
constexpr index_t
storage_elem_bytes(StorageMode mode)
{
    return mode == StorageMode::kInt8
               ? 1
               : (mode == StorageMode::kBf16 ? 2 : 4);
}

/**
 * Round @p f to bfloat16 with round-to-nearest-even. NaN inputs are
 * quieted (payload may be truncated away entirely, so a quiet bit is
 * forced) rather than risking the rounding increment turning a NaN
 * bit pattern into infinity.
 */
inline bf16_t
bf16_encode(value_t f)
{
    std::uint32_t u = std::bit_cast<std::uint32_t>(f);
    if ((u & 0x7fffffffu) > 0x7f800000u)
        return static_cast<bf16_t>((u >> 16) | 0x0040u);
    u += 0x7fffu + ((u >> 16) & 1u);
    return static_cast<bf16_t>(u >> 16);
}

/** Widen a bfloat16 back to fp32 (exact: low mantissa bits are zero). */
inline value_t
bf16_decode(bf16_t h)
{
    return std::bit_cast<value_t>(static_cast<std::uint32_t>(h) << 16);
}

/**
 * Derive the affine int8 code for a row: value = scale * q + zero with
 * q in [-127, 127]. zero is the range midpoint so the extremes map to
 * +/-127 exactly; a degenerate (constant, empty, or non-finite) range
 * falls back to scale 1 so decode stays finite and the row round-trips
 * to its midpoint.
 */
inline void
int8_row_params(const value_t *row, index_t n, value_t *scale,
                value_t *zero)
{
    value_t lo = 0.0f;
    value_t hi = 0.0f;
    bool seen = false;
    for (index_t i = 0; i < n; ++i) {
        const value_t v = row[i];
        if (!std::isfinite(v))
            continue;
        if (!seen) {
            lo = hi = v;
            seen = true;
        } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    *zero = 0.5f * (hi + lo);
    value_t s = (hi - lo) / 254.0f;
    if (!(s > 0.0f))
        s = 1.0f;
    *scale = s;
}

/**
 * Quantize @p f under (@p scale, @p zero): nearest-even code, clamped
 * to [-127, 127]. NaN clamps to -127 (the min/max order below makes
 * that deterministic, and the SIMD min_ps/max_ps sequence matches it).
 */
inline int8_t
int8_encode(value_t f, value_t scale, value_t zero)
{
    const value_t q = std::nearbyintf((f - zero) / scale);
    return static_cast<int8_t>(
        std::min(127.0f, std::max(-127.0f, q)));
}

/** Reconstruct the fp32 value of code @p q under (@p scale, @p zero). */
inline value_t
int8_decode(int8_t q, value_t scale, value_t zero)
{
    return scale * static_cast<value_t>(q) + zero;
}

/** Human-readable name of @p mode ("f32" / "bf16" / "int8"). */
const char *storage_mode_name(StorageMode mode);

/**
 * Parse a precision name ("f32"/"fp32"/"float", "bf16"/"bfloat16",
 * "int8"/"i8"). Returns false (leaving @p out untouched) on anything
 * else.
 */
bool parse_storage_mode(const char *s, StorageMode *out);

/**
 * The cached MPS_PRECISION parse: the process-wide default operand
 * precision for inference paths (GcnModel, ServeConfig). Unset or
 * unrecognized values mean kF32; a bad value warns once. Training
 * never consults this — it is pinned to fp32.
 */
StorageMode default_precision();

} // namespace mps

#endif // MPS_SPARSE_QUANT_H
