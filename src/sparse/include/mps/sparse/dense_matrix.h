/**
 * @file
 * Row-major dense matrix used for the XW input and the C output of the
 * SpMM kernels, the weight matrices of the GCN layers, and the dense
 * reference results in the tests.
 */
#ifndef MPS_SPARSE_DENSE_MATRIX_H
#define MPS_SPARSE_DENSE_MATRIX_H

#include <cstddef>
#include <vector>

#include "mps/sparse/types.h"

namespace mps {

class Pcg32;

/** Row-major dense matrix of value_t. */
class DenseMatrix
{
  public:
    /** Empty 0x0 matrix. */
    DenseMatrix() = default;

    /** rows x cols matrix, zero-initialized. */
    DenseMatrix(index_t rows, index_t cols);

    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }

    /** Element access (no bounds check in release paths). */
    value_t &operator()(index_t r, index_t c) {
        return data_[static_cast<size_t>(r) * cols_ + c];
    }
    value_t operator()(index_t r, index_t c) const {
        return data_[static_cast<size_t>(r) * cols_ + c];
    }

    /** Pointer to the first element of row r. */
    value_t *row(index_t r) {
        return data_.data() + static_cast<size_t>(r) * cols_;
    }
    const value_t *row(index_t r) const {
        return data_.data() + static_cast<size_t>(r) * cols_;
    }

    value_t *data() { return data_.data(); }
    const value_t *data() const { return data_.data(); }

    /** Set every element to @p v. */
    void fill(value_t v);

    /** Fill with uniform values in [lo, hi) from @p rng. */
    void fill_random(Pcg32 &rng, value_t lo = -1.0f, value_t hi = 1.0f);

    /** Largest absolute element-wise difference to @p other. */
    double max_abs_diff(const DenseMatrix &other) const;

    /**
     * True when shapes match and every element differs by at most
     * @p abs_tol absolutely or @p rel_tol relative to the larger
     * magnitude.
     */
    bool approx_equal(const DenseMatrix &other, double abs_tol = 1e-4,
                      double rel_tol = 1e-4) const;

  private:
    index_t rows_ = 0;
    index_t cols_ = 0;
    std::vector<value_t> data_;
};

} // namespace mps

#endif // MPS_SPARSE_DENSE_MATRIX_H
