/**
 * @file
 * Row-major dense matrix used for the XW input and the C output of the
 * SpMM kernels, the weight matrices of the GCN layers, and the dense
 * reference results in the tests.
 *
 * Storage is 64-byte aligned and every row is padded to a cache-line
 * multiple (padded_cols()), so the SIMD row microkernels can assume
 * each row(r) pointer is aligned. The padding elements are storage
 * only: they stay zero, are never part of the logical matrix, and no
 * arithmetic result may be read from them. Code that walks raw memory
 * must iterate row-by-row over cols() — element (r, c) lives at
 * data()[r * padded_cols() + c], not data()[r * cols() + c].
 */
#ifndef MPS_SPARSE_DENSE_MATRIX_H
#define MPS_SPARSE_DENSE_MATRIX_H

#include <cstddef>

#include "mps/sparse/aligned_buffer.h"
#include "mps/sparse/quant.h"
#include "mps/sparse/types.h"

namespace mps {

class Pcg32;

/**
 * Row-major dense matrix of value_t with cache-line-aligned rows.
 *
 * Mixed precision: a matrix can additionally carry reduced-width
 * shadow rows (bf16 or int8 + per-row scale/zero, see
 * mps/sparse/quant.h) selected by quantize() / set_storage(). The fp32
 * rows remain the master copy — they are always allocated, always
 * written first, and every path that needs exact values (delta
 * correction, reference kernels, GEMM inputs) keeps reading them. The
 * shadow rows share the element stride padded_cols(), so row_bf16(r)
 * and row_int8(r) are cache-line aligned exactly like row(r).
 */
class DenseMatrix
{
  public:
    /** Empty 0x0 matrix. */
    DenseMatrix() = default;

    /** rows x cols matrix, zero-initialized. */
    DenseMatrix(index_t rows, index_t cols);

    /**
     * Convert-on-construct: zero-initialized like the two-arg ctor,
     * then quantized shadow storage is allocated up front so later
     * quantize(mode) calls never reallocate.
     */
    DenseMatrix(index_t rows, index_t cols, StorageMode mode);

    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }

    /**
     * Allocated row stride in elements: cols() rounded up to a
     * cache-line multiple. The distance between row(r) and row(r + 1).
     */
    index_t padded_cols() const { return stride_; }

    /** Element access (no bounds check in release paths). */
    value_t &operator()(index_t r, index_t c) {
        return data_[static_cast<size_t>(r) * stride_ + c];
    }
    value_t operator()(index_t r, index_t c) const {
        return data_[static_cast<size_t>(r) * stride_ + c];
    }

    /** Pointer to the first element of row r (64-byte aligned). */
    value_t *row(index_t r) {
        return data_.data() + static_cast<size_t>(r) * stride_;
    }
    const value_t *row(index_t r) const {
        return data_.data() + static_cast<size_t>(r) * stride_;
    }

    value_t *data() { return data_.data(); }
    const value_t *data() const { return data_.data(); }

    /** Active reduced-precision shadow storage (kF32 = none). */
    StorageMode storage() const { return mode_; }

    /**
     * (Re)build the shadow rows for @p mode from the current fp32
     * rows. This is the sequential scalar reference conversion (the
     * quant.h primitives, row by row); hot paths use the SIMD
     * quantize_dense() in mps/core/precision.h instead, which is
     * bit-identical. Only the first @p ncols columns are encoded
     * (and, for int8, ranged) when ncols >= 0 — panel sources use
     * that to keep a narrower final panel from reading stale columns.
     * kF32 releases the shadow storage.
     */
    void quantize(StorageMode mode, index_t ncols = -1);

    /**
     * Allocate (zeroed) shadow storage for @p mode and mark it
     * active WITHOUT converting — the caller fills the shadow rows
     * itself via the encode microkernels (quantize_dense does this).
     * @p qcols bounds the columns the caller will encode; it only
     * gates the "already sized" fast path.
     */
    void set_storage(StorageMode mode, index_t qcols = -1);

    /** bf16 shadow row r (valid when storage() == kBf16). */
    const bf16_t *row_bf16(index_t r) const {
        return qb16_.data() + static_cast<size_t>(r) * stride_;
    }
    bf16_t *row_bf16_mut(index_t r) {
        return qb16_.data() + static_cast<size_t>(r) * stride_;
    }

    /** int8 shadow row r (valid when storage() == kInt8). */
    const int8_t *row_int8(index_t r) const {
        return q8_.data() + static_cast<size_t>(r) * stride_;
    }
    int8_t *row_int8_mut(index_t r) {
        return q8_.data() + static_cast<size_t>(r) * stride_;
    }

    /** Per-row affine params of the int8 shadow (value = s*q + z). */
    value_t quant_scale(index_t r) const { return qscale_[static_cast<size_t>(r)]; }
    value_t quant_zero(index_t r) const { return qzero_[static_cast<size_t>(r)]; }
    void set_quant_params(index_t r, value_t scale, value_t zero) {
        qscale_[static_cast<size_t>(r)] = scale;
        qzero_[static_cast<size_t>(r)] = zero;
    }

    /** Set every logical element to @p v (padding stays zero). */
    void fill(value_t v);

    /** Fill with uniform values in [lo, hi) from @p rng. */
    void fill_random(Pcg32 &rng, value_t lo = -1.0f, value_t hi = 1.0f);

    /** Largest absolute element-wise difference to @p other. */
    double max_abs_diff(const DenseMatrix &other) const;

    /**
     * True when shapes match and every element differs by at most
     * @p abs_tol absolutely or @p rel_tol relative to the larger
     * magnitude.
     */
    bool approx_equal(const DenseMatrix &other, double abs_tol = 1e-4,
                      double rel_tol = 1e-4) const;

  private:
    index_t rows_ = 0;
    index_t cols_ = 0;
    index_t stride_ = 0;
    StorageMode mode_ = StorageMode::kF32;
    AlignedVector data_;
    AlignedVectorB16 qb16_; ///< bf16 shadow rows (stride_ elems/row)
    AlignedVectorI8 q8_;    ///< int8 shadow rows (stride_ elems/row)
    AlignedVector qscale_;  ///< per-row int8 scale
    AlignedVector qzero_;   ///< per-row int8 zero point
};

} // namespace mps

#endif // MPS_SPARSE_DENSE_MATRIX_H
