/**
 * @file
 * Row-major dense matrix used for the XW input and the C output of the
 * SpMM kernels, the weight matrices of the GCN layers, and the dense
 * reference results in the tests.
 *
 * Storage is 64-byte aligned and every row is padded to a cache-line
 * multiple (padded_cols()), so the SIMD row microkernels can assume
 * each row(r) pointer is aligned. The padding elements are storage
 * only: they stay zero, are never part of the logical matrix, and no
 * arithmetic result may be read from them. Code that walks raw memory
 * must iterate row-by-row over cols() — element (r, c) lives at
 * data()[r * padded_cols() + c], not data()[r * cols() + c].
 */
#ifndef MPS_SPARSE_DENSE_MATRIX_H
#define MPS_SPARSE_DENSE_MATRIX_H

#include <cstddef>

#include "mps/sparse/aligned_buffer.h"
#include "mps/sparse/types.h"

namespace mps {

class Pcg32;

/** Row-major dense matrix of value_t with cache-line-aligned rows. */
class DenseMatrix
{
  public:
    /** Empty 0x0 matrix. */
    DenseMatrix() = default;

    /** rows x cols matrix, zero-initialized. */
    DenseMatrix(index_t rows, index_t cols);

    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }

    /**
     * Allocated row stride in elements: cols() rounded up to a
     * cache-line multiple. The distance between row(r) and row(r + 1).
     */
    index_t padded_cols() const { return stride_; }

    /** Element access (no bounds check in release paths). */
    value_t &operator()(index_t r, index_t c) {
        return data_[static_cast<size_t>(r) * stride_ + c];
    }
    value_t operator()(index_t r, index_t c) const {
        return data_[static_cast<size_t>(r) * stride_ + c];
    }

    /** Pointer to the first element of row r (64-byte aligned). */
    value_t *row(index_t r) {
        return data_.data() + static_cast<size_t>(r) * stride_;
    }
    const value_t *row(index_t r) const {
        return data_.data() + static_cast<size_t>(r) * stride_;
    }

    value_t *data() { return data_.data(); }
    const value_t *data() const { return data_.data(); }

    /** Set every logical element to @p v (padding stays zero). */
    void fill(value_t v);

    /** Fill with uniform values in [lo, hi) from @p rng. */
    void fill_random(Pcg32 &rng, value_t lo = -1.0f, value_t hi = 1.0f);

    /** Largest absolute element-wise difference to @p other. */
    double max_abs_diff(const DenseMatrix &other) const;

    /**
     * True when shapes match and every element differs by at most
     * @p abs_tol absolutely or @p rel_tol relative to the larger
     * magnitude.
     */
    bool approx_equal(const DenseMatrix &other, double abs_tol = 1e-4,
                      double rel_tol = 1e-4) const;

  private:
    index_t rows_ = 0;
    index_t cols_ = 0;
    index_t stride_ = 0;
    AlignedVector data_;
};

} // namespace mps

#endif // MPS_SPARSE_DENSE_MATRIX_H
