/**
 * @file
 * Matrix / graph file IO: MatrixMarket coordinate files (the format the
 * University of Florida / SuiteSparse collection distributes, which the
 * paper's Table II graphs come from) and plain whitespace edge lists.
 * Users with the real datasets can load them; the bundled experiments use
 * the synthetic dataset registry instead.
 */
#ifndef MPS_SPARSE_IO_H
#define MPS_SPARSE_IO_H

#include <iosfwd>
#include <string>

#include "mps/sparse/coo_matrix.h"

namespace mps {

/**
 * Parse a MatrixMarket "matrix coordinate" stream. Supports real /
 * integer / pattern fields and general / symmetric symmetry (symmetric
 * inputs are expanded to both triangles). fatal() on malformed input.
 */
CooMatrix read_matrix_market(std::istream &in);

/** Load a MatrixMarket file by path. */
CooMatrix read_matrix_market_file(const std::string &path);

/** Write @p m as a MatrixMarket "matrix coordinate real general" file. */
void write_matrix_market(std::ostream &out, const CooMatrix &m);

/**
 * Parse a whitespace edge list ("u v" or "u v weight" per line, '#' or
 * '%' comments). Node ids may be arbitrary non-negative integers; the
 * matrix is sized by the largest id + 1. When @p undirected, each edge is
 * added in both directions.
 */
CooMatrix read_edge_list(std::istream &in, bool undirected = false);

/** Load an edge-list file by path. */
CooMatrix read_edge_list_file(const std::string &path,
                              bool undirected = false);

} // namespace mps

#endif // MPS_SPARSE_IO_H
