/**
 * @file
 * Coordinate-format sparse matrix: the construction / interchange format.
 * Graph loaders and generators build COO; kernels consume CSR.
 */
#ifndef MPS_SPARSE_COO_MATRIX_H
#define MPS_SPARSE_COO_MATRIX_H

#include <cstddef>
#include <vector>

#include "mps/sparse/types.h"

namespace mps {

/** One non-zero element. */
struct CooEntry
{
    index_t row;
    index_t col;
    value_t value;
};

/** Sparse matrix in coordinate (triplet) format. */
class CooMatrix
{
  public:
    CooMatrix() = default;

    /** Empty rows x cols matrix. */
    CooMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }
    index_t nnz() const { return static_cast<index_t>(entries_.size()); }

    const std::vector<CooEntry> &entries() const { return entries_; }
    std::vector<CooEntry> &entries() { return entries_; }

    /** Append one non-zero; panics on out-of-range coordinates. */
    void add(index_t row, index_t col, value_t value);

    /** Reserve storage for @p n entries. */
    void reserve(size_t n) { entries_.reserve(n); }

    /**
     * Sort entries by (row, col) and merge duplicates by summing their
     * values. Entries whose merged value is exactly zero are kept (they
     * are structural non-zeros for the graph algorithms).
     */
    void sort_and_merge();

  private:
    index_t rows_ = 0;
    index_t cols_ = 0;
    std::vector<CooEntry> entries_;
};

} // namespace mps

#endif // MPS_SPARSE_COO_MATRIX_H
