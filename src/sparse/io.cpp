#include "mps/sparse/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "mps/util/log.h"

namespace mps {

namespace {

/** Case-insensitive token comparison for MatrixMarket headers. */
bool
token_is(const std::string &token, const char *expect)
{
    std::string lower = token;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return lower == expect;
}

/** Next line that is neither empty nor a comment; false at EOF. */
bool
next_content_line(std::istream &in, std::string &line)
{
    while (std::getline(in, line)) {
        size_t pos = line.find_first_not_of(" \t\r");
        if (pos == std::string::npos)
            continue;
        if (line[pos] == '%' || line[pos] == '#')
            continue;
        return true;
    }
    return false;
}

} // namespace

CooMatrix
read_matrix_market(std::istream &in)
{
    std::string header;
    if (!std::getline(in, header))
        fatal("MatrixMarket: empty input");

    std::istringstream hs(header);
    std::string banner, object, format, field, symmetry;
    hs >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket" || !token_is(object, "matrix"))
        fatal("MatrixMarket: bad banner line: " + header);
    if (!token_is(format, "coordinate"))
        fatal("MatrixMarket: only 'coordinate' format is supported");
    bool pattern = token_is(field, "pattern");
    if (!pattern && !token_is(field, "real") &&
        !token_is(field, "integer")) {
        fatal("MatrixMarket: unsupported field type: " + field);
    }
    bool symmetric = token_is(symmetry, "symmetric");
    if (!symmetric && !token_is(symmetry, "general"))
        fatal("MatrixMarket: unsupported symmetry: " + symmetry);

    std::string line;
    if (!next_content_line(in, line))
        fatal("MatrixMarket: missing size line");
    std::istringstream ss(line);
    long long rows = 0, cols = 0, nnz = 0;
    ss >> rows >> cols >> nnz;
    if (ss.fail() || rows < 0 || cols < 0 || nnz < 0)
        fatal("MatrixMarket: bad size line: " + line);

    CooMatrix m(static_cast<index_t>(rows), static_cast<index_t>(cols));
    m.reserve(static_cast<size_t>(symmetric ? 2 * nnz : nnz));
    for (long long i = 0; i < nnz; ++i) {
        if (!next_content_line(in, line))
            fatal("MatrixMarket: truncated entry list");
        std::istringstream es(line);
        long long r = 0, c = 0;
        double v = 1.0;
        es >> r >> c;
        if (!pattern)
            es >> v;
        if (es.fail())
            fatal("MatrixMarket: bad entry line: " + line);
        // MatrixMarket coordinates are 1-based.
        index_t ri = static_cast<index_t>(r - 1);
        index_t ci = static_cast<index_t>(c - 1);
        m.add(ri, ci, static_cast<value_t>(v));
        if (symmetric && ri != ci)
            m.add(ci, ri, static_cast<value_t>(v));
    }
    return m;
}

CooMatrix
read_matrix_market_file(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open MatrixMarket file: " + path);
    return read_matrix_market(in);
}

void
write_matrix_market(std::ostream &out, const CooMatrix &m)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
    for (const auto &e : m.entries())
        out << e.row + 1 << " " << e.col + 1 << " " << e.value << "\n";
}

CooMatrix
read_edge_list(std::istream &in, bool undirected)
{
    struct RawEdge
    {
        long long u, v;
        double w;
    };
    std::vector<RawEdge> edges;
    long long max_id = -1;
    std::string line;
    while (next_content_line(in, line)) {
        std::istringstream es(line);
        long long u = 0, v = 0;
        double w = 1.0;
        es >> u >> v;
        if (es.fail())
            fatal("edge list: bad line: " + line);
        es >> w;
        if (es.fail())
            w = 1.0;
        if (u < 0 || v < 0)
            fatal("edge list: negative node id in line: " + line);
        edges.push_back({u, v, w});
        max_id = std::max({max_id, u, v});
    }
    index_t n = static_cast<index_t>(max_id + 1);
    CooMatrix m(n, n);
    m.reserve(edges.size() * (undirected ? 2 : 1));
    for (const auto &e : edges) {
        m.add(static_cast<index_t>(e.u), static_cast<index_t>(e.v),
              static_cast<value_t>(e.w));
        if (undirected && e.u != e.v) {
            m.add(static_cast<index_t>(e.v), static_cast<index_t>(e.u),
                  static_cast<value_t>(e.w));
        }
    }
    return m;
}

CooMatrix
read_edge_list_file(const std::string &path, bool undirected)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open edge list file: " + path);
    return read_edge_list(in, undirected);
}

} // namespace mps
