#include "mps/sparse/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "mps/util/log.h"
#include "mps/util/rng.h"

namespace mps {

DenseMatrix::DenseMatrix(index_t rows, index_t cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f)
{
    MPS_CHECK(rows >= 0 && cols >= 0, "negative matrix dimension");
}

void
DenseMatrix::fill(value_t v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
DenseMatrix::fill_random(Pcg32 &rng, value_t lo, value_t hi)
{
    for (auto &x : data_)
        x = rng.next_float(lo, hi);
}

double
DenseMatrix::max_abs_diff(const DenseMatrix &other) const
{
    MPS_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "shape mismatch in max_abs_diff");
    double worst = 0.0;
    for (size_t i = 0; i < data_.size(); ++i) {
        worst = std::max(
            worst, std::abs(static_cast<double>(data_[i]) -
                            static_cast<double>(other.data_[i])));
    }
    return worst;
}

bool
DenseMatrix::approx_equal(const DenseMatrix &other, double abs_tol,
                          double rel_tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (size_t i = 0; i < data_.size(); ++i) {
        double a = data_[i];
        double b = other.data_[i];
        double diff = std::abs(a - b);
        double scale = std::max(std::abs(a), std::abs(b));
        if (diff > abs_tol && diff > rel_tol * scale)
            return false;
    }
    return true;
}

} // namespace mps
