#include "mps/sparse/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "mps/util/log.h"
#include "mps/util/rng.h"

namespace mps {

DenseMatrix::DenseMatrix(index_t rows, index_t cols)
    : rows_(rows), cols_(cols), stride_(padded_row_length(cols)),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(stride_),
            0.0f)
{
    MPS_CHECK(rows >= 0 && cols >= 0, "negative matrix dimension");
}

DenseMatrix::DenseMatrix(index_t rows, index_t cols, StorageMode mode)
    : DenseMatrix(rows, cols)
{
    if (mode != StorageMode::kF32)
        set_storage(mode);
}

void
DenseMatrix::set_storage(StorageMode mode, index_t qcols)
{
    (void)qcols; // only bounds what the caller encodes; sizing is full
    mode_ = mode;
    const size_t elems =
        static_cast<size_t>(rows_) * static_cast<size_t>(stride_);
    switch (mode) {
    case StorageMode::kF32:
        qb16_.clear();
        qb16_.shrink_to_fit();
        q8_.clear();
        q8_.shrink_to_fit();
        qscale_.clear();
        qscale_.shrink_to_fit();
        qzero_.clear();
        qzero_.shrink_to_fit();
        break;
    case StorageMode::kBf16:
        if (qb16_.size() != elems)
            qb16_.assign(elems, 0);
        break;
    case StorageMode::kInt8:
        if (q8_.size() != elems)
            q8_.assign(elems, 0);
        if (qscale_.size() != static_cast<size_t>(rows_)) {
            qscale_.assign(static_cast<size_t>(rows_), 1.0f);
            qzero_.assign(static_cast<size_t>(rows_), 0.0f);
        }
        break;
    }
}

void
DenseMatrix::quantize(StorageMode mode, index_t ncols)
{
    set_storage(mode, ncols);
    if (mode == StorageMode::kF32)
        return;
    const index_t qcols = ncols >= 0 ? std::min(ncols, cols_) : cols_;
    for (index_t r = 0; r < rows_; ++r) {
        const value_t *src = row(r);
        if (mode == StorageMode::kBf16) {
            bf16_t *dst = row_bf16_mut(r);
            for (index_t c = 0; c < qcols; ++c)
                dst[c] = bf16_encode(src[c]);
        } else {
            value_t scale, zero;
            int8_row_params(src, qcols, &scale, &zero);
            set_quant_params(r, scale, zero);
            int8_t *dst = row_int8_mut(r);
            for (index_t c = 0; c < qcols; ++c)
                dst[c] = int8_encode(src[c], scale, zero);
        }
    }
}

void
DenseMatrix::fill(value_t v)
{
    // Row-wise so the inter-row padding keeps its zero invariant.
    for (index_t r = 0; r < rows_; ++r) {
        value_t *p = row(r);
        std::fill(p, p + cols_, v);
    }
}

void
DenseMatrix::fill_random(Pcg32 &rng, value_t lo, value_t hi)
{
    for (index_t r = 0; r < rows_; ++r) {
        value_t *p = row(r);
        for (index_t c = 0; c < cols_; ++c)
            p[c] = rng.next_float(lo, hi);
    }
}

double
DenseMatrix::max_abs_diff(const DenseMatrix &other) const
{
    MPS_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "shape mismatch in max_abs_diff");
    double worst = 0.0;
    for (index_t r = 0; r < rows_; ++r) {
        const value_t *pa = row(r);
        const value_t *pb = other.row(r);
        for (index_t c = 0; c < cols_; ++c) {
            worst = std::max(
                worst, std::abs(static_cast<double>(pa[c]) -
                                static_cast<double>(pb[c])));
        }
    }
    return worst;
}

bool
DenseMatrix::approx_equal(const DenseMatrix &other, double abs_tol,
                          double rel_tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (index_t r = 0; r < rows_; ++r) {
        const value_t *pa = row(r);
        const value_t *pb = other.row(r);
        for (index_t c = 0; c < cols_; ++c) {
            double a = pa[c];
            double b = pb[c];
            double diff = std::abs(a - b);
            double scale = std::max(std::abs(a), std::abs(b));
            if (diff > abs_tol && diff > rel_tol * scale)
                return false;
        }
    }
    return true;
}

} // namespace mps
