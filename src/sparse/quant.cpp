#include "mps/sparse/quant.h"

#include <cstdlib>
#include <string>

#include "mps/util/log.h"

namespace mps {

const char *
storage_mode_name(StorageMode mode)
{
    switch (mode) {
    case StorageMode::kBf16:
        return "bf16";
    case StorageMode::kInt8:
        return "int8";
    case StorageMode::kF32:
        break;
    }
    return "f32";
}

bool
parse_storage_mode(const char *s, StorageMode *out)
{
    if (s == nullptr)
        return false;
    const std::string v(s);
    if (v == "f32" || v == "fp32" || v == "float" || v == "float32") {
        *out = StorageMode::kF32;
        return true;
    }
    if (v == "bf16" || v == "bfloat16") {
        *out = StorageMode::kBf16;
        return true;
    }
    if (v == "int8" || v == "i8") {
        *out = StorageMode::kInt8;
        return true;
    }
    return false;
}

namespace {

StorageMode
parse_precision_env()
{
    const char *v = std::getenv("MPS_PRECISION");
    if (v == nullptr || *v == '\0')
        return StorageMode::kF32;
    StorageMode mode = StorageMode::kF32;
    if (!parse_storage_mode(v, &mode)) {
        warn("unrecognized MPS_PRECISION value '" + std::string(v) +
             "' (want f32/bf16/int8); staying at f32");
        return StorageMode::kF32;
    }
    return mode;
}

} // namespace

StorageMode
default_precision()
{
    static const StorageMode mode = parse_precision_env();
    return mode;
}

} // namespace mps
