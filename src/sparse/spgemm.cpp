#include "mps/sparse/spgemm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mps/util/log.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

namespace {

/**
 * Dense-scratch sparse accumulator (SPA) for one output row: values
 * indexed by column, with an occupancy list for sparse reset.
 */
class SparseAccumulator
{
  public:
    explicit SparseAccumulator(index_t cols)
        : values_(static_cast<size_t>(cols), 0.0f),
          occupied_(static_cast<size_t>(cols), false)
    {
    }

    void
    add(index_t col, value_t v)
    {
        if (!occupied_[static_cast<size_t>(col)]) {
            occupied_[static_cast<size_t>(col)] = true;
            cols_.push_back(col);
        }
        values_[static_cast<size_t>(col)] += v;
    }

    /** Append the accumulated row (sorted by column) and reset. */
    void
    flush(std::vector<index_t> &out_cols, std::vector<value_t> &out_vals)
    {
        std::sort(cols_.begin(), cols_.end());
        for (index_t c : cols_) {
            out_cols.push_back(c);
            out_vals.push_back(values_[static_cast<size_t>(c)]);
            values_[static_cast<size_t>(c)] = 0.0f;
            occupied_[static_cast<size_t>(c)] = false;
        }
        cols_.clear();
    }

  private:
    std::vector<value_t> values_;
    std::vector<bool> occupied_;
    std::vector<index_t> cols_;
};

/** Compute rows [begin, end) of A*B into per-row col/val buffers. */
void
spgemm_rows(const CsrMatrix &a, const CsrMatrix &b, index_t begin,
            index_t end, SparseAccumulator &spa,
            std::vector<index_t> &cols, std::vector<value_t> &vals,
            std::vector<index_t> &row_sizes)
{
    for (index_t i = begin; i < end; ++i) {
        size_t before = cols.size();
        for (index_t k = a.row_begin(i); k < a.row_end(i); ++k) {
            index_t j = a.col_idx()[k];
            value_t av = a.values()[k];
            for (index_t l = b.row_begin(j); l < b.row_end(j); ++l)
                spa.add(b.col_idx()[l], av * b.values()[l]);
        }
        spa.flush(cols, vals);
        row_sizes[static_cast<size_t>(i)] =
            static_cast<index_t>(cols.size() - before);
    }
}

CsrMatrix
assemble(index_t rows, index_t cols_dim,
         const std::vector<index_t> &row_sizes,
         std::vector<std::vector<index_t>> &chunk_cols,
         std::vector<std::vector<value_t>> &chunk_vals,
         const std::vector<index_t> &chunk_first_row,
         const std::vector<index_t> &chunk_last_row)
{
    std::vector<index_t> row_ptr(static_cast<size_t>(rows) + 1, 0);
    for (index_t r = 0; r < rows; ++r)
        row_ptr[static_cast<size_t>(r) + 1] =
            row_ptr[static_cast<size_t>(r)] +
            row_sizes[static_cast<size_t>(r)];

    std::vector<index_t> col_idx(static_cast<size_t>(row_ptr.back()));
    std::vector<value_t> values(static_cast<size_t>(row_ptr.back()));
    for (size_t c = 0; c < chunk_cols.size(); ++c) {
        if (chunk_first_row[c] > chunk_last_row[c])
            continue;
        size_t dst = static_cast<size_t>(row_ptr[chunk_first_row[c]]);
        std::copy(chunk_cols[c].begin(), chunk_cols[c].end(),
                  col_idx.begin() + static_cast<long>(dst));
        std::copy(chunk_vals[c].begin(), chunk_vals[c].end(),
                  values.begin() + static_cast<long>(dst));
    }
    return CsrMatrix(rows, cols_dim, std::move(row_ptr),
                     std::move(col_idx), std::move(values));
}

} // namespace

CsrMatrix
spgemm(const CsrMatrix &a, const CsrMatrix &b)
{
    MPS_CHECK(a.cols() == b.rows(), "SpGEMM inner dimensions differ: ",
              a.cols(), " vs ", b.rows());
    SparseAccumulator spa(b.cols());
    std::vector<index_t> cols;
    std::vector<value_t> vals;
    std::vector<index_t> row_sizes(static_cast<size_t>(a.rows()), 0);
    spgemm_rows(a, b, 0, a.rows(), spa, cols, vals, row_sizes);

    std::vector<index_t> row_ptr(static_cast<size_t>(a.rows()) + 1, 0);
    for (index_t r = 0; r < a.rows(); ++r)
        row_ptr[static_cast<size_t>(r) + 1] =
            row_ptr[static_cast<size_t>(r)] +
            row_sizes[static_cast<size_t>(r)];
    return CsrMatrix(a.rows(), b.cols(), std::move(row_ptr),
                     std::move(cols), std::move(vals));
}

CsrMatrix
spgemm_parallel(const CsrMatrix &a, const CsrMatrix &b, WorkStealPool &pool)
{
    MPS_CHECK(a.cols() == b.rows(), "SpGEMM inner dimensions differ: ",
              a.cols(), " vs ", b.rows());
    if (a.rows() == 0)
        return CsrMatrix(0, b.cols(), {0}, {}, {});

    const index_t chunk_rows = 256;
    const size_t chunks =
        (static_cast<size_t>(a.rows()) + chunk_rows - 1) / chunk_rows;
    std::vector<std::vector<index_t>> chunk_cols(chunks);
    std::vector<std::vector<value_t>> chunk_vals(chunks);
    std::vector<index_t> chunk_first(chunks), chunk_last(chunks);
    std::vector<index_t> row_sizes(static_cast<size_t>(a.rows()), 0);

    pool.parallel_for(chunks, [&](uint64_t c) {
        index_t begin = static_cast<index_t>(c) * chunk_rows;
        index_t end = std::min<index_t>(begin + chunk_rows, a.rows());
        chunk_first[c] = begin;
        chunk_last[c] = end - 1;
        SparseAccumulator spa(b.cols());
        spgemm_rows(a, b, begin, end, spa, chunk_cols[c], chunk_vals[c],
                    row_sizes);
    });
    return assemble(a.rows(), b.cols(), row_sizes, chunk_cols,
                    chunk_vals, chunk_first, chunk_last);
}

CsrMatrix
prune(const CsrMatrix &m, value_t threshold)
{
    std::vector<index_t> row_ptr(static_cast<size_t>(m.rows()) + 1, 0);
    std::vector<index_t> cols;
    std::vector<value_t> vals;
    cols.reserve(static_cast<size_t>(m.nnz()));
    vals.reserve(static_cast<size_t>(m.nnz()));
    for (index_t r = 0; r < m.rows(); ++r) {
        for (index_t k = m.row_begin(r); k < m.row_end(r); ++k) {
            if (std::abs(m.values()[k]) > threshold) {
                cols.push_back(m.col_idx()[k]);
                vals.push_back(m.values()[k]);
            }
        }
        row_ptr[static_cast<size_t>(r) + 1] =
            static_cast<index_t>(cols.size());
    }
    return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr),
                     std::move(cols), std::move(vals));
}

CsrMatrix
sparsify(const DenseMatrix &dense, value_t threshold)
{
    std::vector<index_t> row_ptr(static_cast<size_t>(dense.rows()) + 1,
                                 0);
    std::vector<index_t> cols;
    std::vector<value_t> vals;
    for (index_t r = 0; r < dense.rows(); ++r) {
        for (index_t c = 0; c < dense.cols(); ++c) {
            if (std::abs(dense(r, c)) > threshold) {
                cols.push_back(c);
                vals.push_back(dense(r, c));
            }
        }
        row_ptr[static_cast<size_t>(r) + 1] =
            static_cast<index_t>(cols.size());
    }
    return CsrMatrix(dense.rows(), dense.cols(), std::move(row_ptr),
                     std::move(cols), std::move(vals));
}

DenseMatrix
densify(const CsrMatrix &m)
{
    DenseMatrix dense(m.rows(), m.cols());
    for (index_t r = 0; r < m.rows(); ++r) {
        for (index_t k = m.row_begin(r); k < m.row_end(r); ++k)
            dense(r, m.col_idx()[k]) += m.values()[k];
    }
    return dense;
}

} // namespace mps
