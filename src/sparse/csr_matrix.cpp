#include "mps/sparse/csr_matrix.h"

#include <cmath>
#include <utility>

#include "mps/sparse/coo_matrix.h"
#include "mps/util/log.h"

namespace mps {

CsrMatrix::CsrMatrix(index_t rows, index_t cols,
                     std::vector<index_t> row_ptr,
                     std::vector<index_t> col_idx,
                     std::vector<value_t> values)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)), values_(std::move(values))
{
    validate();
}

CsrMatrix
CsrMatrix::from_coo(CooMatrix coo)
{
    coo.sort_and_merge();
    CsrMatrix csr;
    csr.rows_ = coo.rows();
    csr.cols_ = coo.cols();
    csr.row_ptr_.assign(static_cast<size_t>(coo.rows()) + 1, 0);
    csr.col_idx_.reserve(coo.entries().size());
    csr.values_.reserve(coo.entries().size());
    for (const auto &e : coo.entries())
        ++csr.row_ptr_[static_cast<size_t>(e.row) + 1];
    for (size_t r = 1; r < csr.row_ptr_.size(); ++r)
        csr.row_ptr_[r] += csr.row_ptr_[r - 1];
    for (const auto &e : coo.entries()) {
        csr.col_idx_.push_back(e.col);
        csr.values_.push_back(e.value);
    }
    csr.validate();
    return csr;
}

CsrMatrix
CsrMatrix::transposed() const
{
    CsrMatrix t;
    t.rows_ = cols_;
    t.cols_ = rows_;
    t.row_ptr_.assign(static_cast<size_t>(cols_) + 1, 0);
    t.col_idx_.resize(col_idx_.size());
    t.values_.resize(values_.size());
    for (index_t c : col_idx_)
        ++t.row_ptr_[static_cast<size_t>(c) + 1];
    for (size_t r = 1; r < t.row_ptr_.size(); ++r)
        t.row_ptr_[r] += t.row_ptr_[r - 1];
    std::vector<index_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
    for (index_t r = 0; r < rows_; ++r) {
        for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
            index_t c = col_idx_[k];
            index_t pos = cursor[c]++;
            t.col_idx_[pos] = r;
            t.values_[pos] = values_[k];
        }
    }
    t.validate();
    return t;
}

CooMatrix
CsrMatrix::to_coo() const
{
    CooMatrix coo(rows_, cols_);
    coo.reserve(col_idx_.size());
    for (index_t r = 0; r < rows_; ++r) {
        for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            coo.add(r, col_idx_[k], values_[k]);
    }
    return coo;
}

void
CsrMatrix::normalize_gcn()
{
    MPS_CHECK(rows_ == cols_, "GCN normalization needs a square matrix");
    std::vector<value_t> inv_sqrt(static_cast<size_t>(rows_));
    for (index_t r = 0; r < rows_; ++r) {
        inv_sqrt[r] = 1.0f /
            std::sqrt(static_cast<value_t>(degree(r)) + 1.0f);
    }
    for (index_t r = 0; r < rows_; ++r) {
        for (index_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            values_[k] = inv_sqrt[r] * inv_sqrt[col_idx_[k]];
    }
}

void
CsrMatrix::validate(CsrValidate level) const
{
    MPS_CHECK(rows_ >= 0 && cols_ >= 0, "negative dimensions");
    MPS_CHECK(row_ptr_.size() == static_cast<size_t>(rows_) + 1,
              "row_ptr length must be rows+1");
    MPS_CHECK(row_ptr_.front() == 0, "row_ptr[0] must be 0");
    MPS_CHECK(row_ptr_.back() == static_cast<index_t>(col_idx_.size()),
              "row_ptr[rows] must equal nnz");
    MPS_CHECK(col_idx_.size() == values_.size(),
              "col_idx / values length mismatch");
    for (size_t r = 0; r + 1 < row_ptr_.size(); ++r) {
        MPS_CHECK(row_ptr_[r] <= row_ptr_[r + 1],
                  "row_ptr must be non-decreasing at row ", r);
    }
    for (index_t c : col_idx_)
        MPS_CHECK(c >= 0 && c < cols_, "column index out of range: ", c);
    if (level == CsrValidate::kStrict) {
        for (index_t r = 0; r < rows_; ++r) {
            for (index_t k = row_ptr_[r] + 1; k < row_ptr_[r + 1]; ++k) {
                MPS_CHECK(col_idx_[k - 1] < col_idx_[k],
                          "row ", r, " has unsorted or duplicate column ",
                          "indices at nnz ", k, ": ", col_idx_[k - 1],
                          " then ", col_idx_[k]);
            }
        }
    }
}

} // namespace mps
