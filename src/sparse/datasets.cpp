#include "mps/sparse/datasets.h"

#include <algorithm>

#include "mps/util/log.h"
#include "mps/util/rng.h"

namespace mps {

namespace {

/** Stable 64-bit hash of a dataset name, used as the generator seed. */
uint64_t
name_seed(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::vector<DatasetSpec>
build_registry()
{
    using GT = GraphType;
    return {
        // Type I: power-law graphs, ordered by increasing nnz as in the
        // paper's Table II.
        {"Cora",            GT::kPowerLaw,     2708,   10556,  3.9,  168},
        {"Citeseer",        GT::kPowerLaw,     3327,    9228,  2.8,   99},
        {"Pubmed",          GT::kPowerLaw,    19717,   99203,  5.1,  171},
        {"Oregon-1",        GT::kPowerLaw,    11492,   46818,  4.1, 2389},
        {"As-caida",        GT::kPowerLaw,    31379,  106762,  3.4, 2628},
        {"Wiki-Vote",       GT::kPowerLaw,     8297,  103689, 12.5,  893},
        {"email-Enron",     GT::kPowerLaw,    36692,  367662, 10.0, 1383},
        {"email-Euall",     GT::kPowerLaw,   265214,  420045,  1.6,  930},
        {"Nell",            GT::kPowerLaw,    65755,  251550,  3.8, 4549},
        {"PPI",             GT::kPowerLaw,    56944,  818716, 14.4,  429},
        {"soc-SlashDot811", GT::kPowerLaw,    77357,  905468, 11.7, 2508},
        {"artist",          GT::kPowerLaw,    50515, 1638396, 32.4, 1469},
        {"com-Amazon",      GT::kPowerLaw,   334863, 1851744,  5.5,  549},
        {"coAuthorsDBLP",   GT::kPowerLaw,   299067, 1955352,  6.5,  336},
        {"soc-BlogCatalog", GT::kPowerLaw,    88784, 2093195, 23.6, 2538},
        {"amazon0601",      GT::kPowerLaw,   410236, 4878874, 11.9, 2760},
        {"amazon0505",      GT::kPowerLaw,   403394, 5478357, 13.6, 2760},
        // Type II: structured graphs.
        {"PROTEINS_full",   GT::kStructured,  43466,  162088,  3.7,   25},
        {"Twitter-partial", GT::kStructured, 580768, 1435116,  2.5,   12},
        {"DD",              GT::kStructured, 334925, 1686092,  5.0,   19},
        {"Yeast",           GT::kStructured, 1710902, 3636546, 2.1,    6},
        {"OVCAR-8H",        GT::kStructured, 1889542, 3946402, 2.1,    5},
        {"SW-620H",         GT::kStructured, 1888584, 3944206, 2.1,    5},
    };
}

} // namespace

const std::vector<DatasetSpec> &
all_dataset_specs()
{
    static const std::vector<DatasetSpec> registry = build_registry();
    return registry;
}

const DatasetSpec &
find_dataset_spec(const std::string &name)
{
    for (const auto &spec : all_dataset_specs()) {
        if (spec.name == name)
            return spec;
    }
    std::string known;
    for (const auto &spec : all_dataset_specs())
        known += " " + spec.name;
    fatal("unknown dataset '" + name + "'; known datasets:" + known);
}

CsrMatrix
make_dataset(const DatasetSpec &spec, ValueMode value_mode)
{
    if (spec.type == GraphType::kPowerLaw) {
        PowerLawParams p;
        p.nodes = spec.nodes;
        p.target_nnz = spec.nnz;
        p.max_degree = spec.max_degree;
        p.seed = name_seed(spec.name);
        p.value_mode = value_mode;
        return power_law_graph(p);
    }
    StructuredParams p;
    p.nodes = spec.nodes;
    p.target_nnz = spec.nnz;
    p.max_degree = spec.max_degree;
    p.seed = name_seed(spec.name);
    p.value_mode = value_mode;
    return structured_graph(p);
}

CsrMatrix
make_dataset(const std::string &name, ValueMode value_mode)
{
    return make_dataset(find_dataset_spec(name), value_mode);
}

CsrMatrix
make_scaled_dataset(const DatasetSpec &spec, index_t shrink_factor,
                    ValueMode value_mode)
{
    MPS_CHECK(shrink_factor >= 1, "shrink_factor must be >= 1");
    DatasetSpec small = spec;
    small.nodes = std::max<index_t>(16, spec.nodes / shrink_factor);
    small.nnz = std::max<index_t>(small.nodes,
                                  spec.nnz / shrink_factor);
    small.max_degree = std::clamp<index_t>(
        spec.max_degree, 1, std::min(small.nodes, small.nnz));
    // Re-check feasibility after clamping.
    if (static_cast<int64_t>(small.nnz) >
        static_cast<int64_t>(small.nodes) * small.max_degree) {
        small.nnz = small.nodes * small.max_degree;
    }
    return make_dataset(small, value_mode);
}

} // namespace mps
