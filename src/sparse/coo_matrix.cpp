#include "mps/sparse/coo_matrix.h"

#include <algorithm>

#include "mps/util/log.h"

namespace mps {

void
CooMatrix::add(index_t row, index_t col, value_t value)
{
    MPS_CHECK(row >= 0 && row < rows_, "COO row out of range: ", row);
    MPS_CHECK(col >= 0 && col < cols_, "COO col out of range: ", col);
    entries_.push_back({row, col, value});
}

void
CooMatrix::sort_and_merge()
{
    std::sort(entries_.begin(), entries_.end(),
              [](const CooEntry &a, const CooEntry &b) {
                  if (a.row != b.row)
                      return a.row < b.row;
                  return a.col < b.col;
              });
    size_t out = 0;
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (out > 0 && entries_[out - 1].row == entries_[i].row &&
            entries_[out - 1].col == entries_[i].col) {
            entries_[out - 1].value += entries_[i].value;
        } else {
            entries_[out++] = entries_[i];
        }
    }
    entries_.resize(out);
}

} // namespace mps
