#include "mps/sparse/reorder.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "mps/util/log.h"

namespace mps {

void
validate_permutation(const std::vector<index_t> &perm, index_t n)
{
    MPS_CHECK(perm.size() == static_cast<size_t>(n),
              "permutation length must be ", n);
    std::vector<bool> seen(static_cast<size_t>(n), false);
    for (index_t p : perm) {
        MPS_CHECK(p >= 0 && p < n, "permutation entry out of range: ", p);
        MPS_CHECK(!seen[static_cast<size_t>(p)],
                  "duplicate permutation entry: ", p);
        seen[static_cast<size_t>(p)] = true;
    }
}

CsrMatrix
permute_symmetric(const CsrMatrix &m, const std::vector<index_t> &perm)
{
    MPS_CHECK(m.rows() == m.cols(),
              "symmetric permutation needs a square matrix");
    validate_permutation(perm, m.rows());

    // inverse[new_id] = old_id
    std::vector<index_t> inverse(perm.size());
    for (index_t old_id = 0; old_id < m.rows(); ++old_id)
        inverse[static_cast<size_t>(perm[static_cast<size_t>(old_id)])] =
            old_id;

    std::vector<index_t> row_ptr(static_cast<size_t>(m.rows()) + 1, 0);
    std::vector<index_t> col_idx;
    std::vector<value_t> values;
    col_idx.reserve(static_cast<size_t>(m.nnz()));
    values.reserve(static_cast<size_t>(m.nnz()));

    std::vector<std::pair<index_t, value_t>> row_buf;
    for (index_t new_row = 0; new_row < m.rows(); ++new_row) {
        index_t old_row = inverse[static_cast<size_t>(new_row)];
        row_buf.clear();
        for (index_t k = m.row_begin(old_row); k < m.row_end(old_row);
             ++k) {
            row_buf.emplace_back(
                perm[static_cast<size_t>(m.col_idx()[k])],
                m.values()[k]);
        }
        std::sort(row_buf.begin(), row_buf.end());
        for (const auto &[c, v] : row_buf) {
            col_idx.push_back(c);
            values.push_back(v);
        }
        row_ptr[static_cast<size_t>(new_row) + 1] =
            static_cast<index_t>(col_idx.size());
    }
    return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr),
                     std::move(col_idx), std::move(values));
}

std::vector<index_t>
degree_sort_permutation(const CsrMatrix &m, bool descending)
{
    std::vector<index_t> order(static_cast<size_t>(m.rows()));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](index_t a, index_t b) {
                         return descending
                                    ? m.degree(a) > m.degree(b)
                                    : m.degree(a) < m.degree(b);
                     });
    // order[new_id] = old_id; invert to perm[old_id] = new_id.
    std::vector<index_t> perm(order.size());
    for (index_t new_id = 0;
         new_id < static_cast<index_t>(order.size()); ++new_id)
        perm[static_cast<size_t>(order[static_cast<size_t>(new_id)])] =
            new_id;
    return perm;
}

std::vector<index_t>
bfs_permutation(const CsrMatrix &m)
{
    MPS_CHECK(m.rows() == m.cols(), "BFS relabeling needs a square matrix");
    const index_t n = m.rows();
    std::vector<index_t> perm(static_cast<size_t>(n), -1);
    std::vector<bool> visited(static_cast<size_t>(n), false);

    // Visit order seeds: nodes by ascending degree.
    std::vector<index_t> seeds(static_cast<size_t>(n));
    std::iota(seeds.begin(), seeds.end(), 0);
    std::stable_sort(seeds.begin(), seeds.end(),
                     [&](index_t a, index_t b) {
                         return m.degree(a) < m.degree(b);
                     });

    index_t next_label = 0;
    std::vector<index_t> frontier;
    for (index_t seed : seeds) {
        if (visited[static_cast<size_t>(seed)])
            continue;
        std::queue<index_t> queue;
        queue.push(seed);
        visited[static_cast<size_t>(seed)] = true;
        while (!queue.empty()) {
            index_t u = queue.front();
            queue.pop();
            perm[static_cast<size_t>(u)] = next_label++;
            frontier.clear();
            for (index_t k = m.row_begin(u); k < m.row_end(u); ++k) {
                index_t v = m.col_idx()[k];
                if (!visited[static_cast<size_t>(v)]) {
                    visited[static_cast<size_t>(v)] = true;
                    frontier.push_back(v);
                }
            }
            std::sort(frontier.begin(), frontier.end(),
                      [&](index_t a, index_t b) {
                          return m.degree(a) < m.degree(b);
                      });
            for (index_t v : frontier)
                queue.push(v);
        }
    }
    return perm;
}

std::vector<index_t>
reverse_permutation(std::vector<index_t> perm)
{
    const index_t n = static_cast<index_t>(perm.size());
    for (index_t &p : perm)
        p = n - 1 - p;
    return perm;
}

} // namespace mps
