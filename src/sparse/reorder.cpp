#include "mps/sparse/reorder.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <queue>

#include "mps/util/log.h"

namespace mps {

void
validate_permutation(const std::vector<index_t> &perm, index_t n)
{
    MPS_CHECK(perm.size() == static_cast<size_t>(n),
              "permutation length must be ", n);
    std::vector<bool> seen(static_cast<size_t>(n), false);
    for (index_t p : perm) {
        MPS_CHECK(p >= 0 && p < n, "permutation entry out of range: ", p);
        MPS_CHECK(!seen[static_cast<size_t>(p)],
                  "duplicate permutation entry: ", p);
        seen[static_cast<size_t>(p)] = true;
    }
}

CsrMatrix
permute_symmetric(const CsrMatrix &m, const std::vector<index_t> &perm)
{
    MPS_CHECK(m.rows() == m.cols(),
              "symmetric permutation needs a square matrix");
    validate_permutation(perm, m.rows());

    // inverse[new_id] = old_id
    std::vector<index_t> inverse(perm.size());
    for (index_t old_id = 0; old_id < m.rows(); ++old_id)
        inverse[static_cast<size_t>(perm[static_cast<size_t>(old_id)])] =
            old_id;

    std::vector<index_t> row_ptr(static_cast<size_t>(m.rows()) + 1, 0);
    std::vector<index_t> col_idx;
    std::vector<value_t> values;
    col_idx.reserve(static_cast<size_t>(m.nnz()));
    values.reserve(static_cast<size_t>(m.nnz()));

    std::vector<std::pair<index_t, value_t>> row_buf;
    for (index_t new_row = 0; new_row < m.rows(); ++new_row) {
        index_t old_row = inverse[static_cast<size_t>(new_row)];
        row_buf.clear();
        for (index_t k = m.row_begin(old_row); k < m.row_end(old_row);
             ++k) {
            row_buf.emplace_back(
                perm[static_cast<size_t>(m.col_idx()[k])],
                m.values()[k]);
        }
        std::sort(row_buf.begin(), row_buf.end());
        for (const auto &[c, v] : row_buf) {
            col_idx.push_back(c);
            values.push_back(v);
        }
        row_ptr[static_cast<size_t>(new_row) + 1] =
            static_cast<index_t>(col_idx.size());
    }
    return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr),
                     std::move(col_idx), std::move(values));
}

CsrMatrix
permute_rows(const CsrMatrix &m, const std::vector<index_t> &perm)
{
    validate_permutation(perm, m.rows());
    std::vector<index_t> inverse = invert_permutation(perm);

    std::vector<index_t> row_ptr(static_cast<size_t>(m.rows()) + 1, 0);
    std::vector<index_t> col_idx;
    std::vector<value_t> values;
    col_idx.reserve(static_cast<size_t>(m.nnz()));
    values.reserve(static_cast<size_t>(m.nnz()));

    for (index_t new_row = 0; new_row < m.rows(); ++new_row) {
        index_t old_row = inverse[static_cast<size_t>(new_row)];
        col_idx.insert(col_idx.end(),
                       m.col_idx().begin() + m.row_begin(old_row),
                       m.col_idx().begin() + m.row_end(old_row));
        values.insert(values.end(),
                      m.values().begin() + m.row_begin(old_row),
                      m.values().begin() + m.row_end(old_row));
        row_ptr[static_cast<size_t>(new_row) + 1] =
            static_cast<index_t>(col_idx.size());
    }
    return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr),
                     std::move(col_idx), std::move(values));
}

std::vector<index_t>
degree_sort_permutation(const CsrMatrix &m, bool descending)
{
    std::vector<index_t> order(static_cast<size_t>(m.rows()));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](index_t a, index_t b) {
                         return descending
                                    ? m.degree(a) > m.degree(b)
                                    : m.degree(a) < m.degree(b);
                     });
    // order[new_id] = old_id; invert to perm[old_id] = new_id.
    std::vector<index_t> perm(order.size());
    for (index_t new_id = 0;
         new_id < static_cast<index_t>(order.size()); ++new_id)
        perm[static_cast<size_t>(order[static_cast<size_t>(new_id)])] =
            new_id;
    return perm;
}

std::vector<index_t>
bfs_permutation(const CsrMatrix &m)
{
    MPS_CHECK(m.rows() == m.cols(), "BFS relabeling needs a square matrix");
    const index_t n = m.rows();
    std::vector<index_t> perm(static_cast<size_t>(n), -1);
    std::vector<bool> visited(static_cast<size_t>(n), false);

    // Visit order seeds: nodes by ascending degree.
    std::vector<index_t> seeds(static_cast<size_t>(n));
    std::iota(seeds.begin(), seeds.end(), 0);
    std::stable_sort(seeds.begin(), seeds.end(),
                     [&](index_t a, index_t b) {
                         return m.degree(a) < m.degree(b);
                     });

    index_t next_label = 0;
    std::vector<index_t> frontier;
    for (index_t seed : seeds) {
        if (visited[static_cast<size_t>(seed)])
            continue;
        std::queue<index_t> queue;
        queue.push(seed);
        visited[static_cast<size_t>(seed)] = true;
        while (!queue.empty()) {
            index_t u = queue.front();
            queue.pop();
            perm[static_cast<size_t>(u)] = next_label++;
            frontier.clear();
            for (index_t k = m.row_begin(u); k < m.row_end(u); ++k) {
                index_t v = m.col_idx()[k];
                if (!visited[static_cast<size_t>(v)]) {
                    visited[static_cast<size_t>(v)] = true;
                    frontier.push_back(v);
                }
            }
            std::sort(frontier.begin(), frontier.end(),
                      [&](index_t a, index_t b) {
                          return m.degree(a) < m.degree(b);
                      });
            for (index_t v : frontier)
                queue.push(v);
        }
    }
    // Every node must have been labeled. Isolated vertices (degree 0)
    // are covered because they seed their own single-node component;
    // this guard turns any future traversal bug into a loud failure
    // instead of a silent -1 that would crash the SpMM scatter.
    MPS_CHECK(next_label == n, "BFS labeled ", next_label, " of ", n,
              " nodes — unreached vertices in the traversal");
    for (index_t p : perm)
        MPS_CHECK(p >= 0, "BFS left an unlabeled vertex");
    return perm;
}

std::vector<index_t>
reverse_permutation(std::vector<index_t> perm)
{
    const index_t n = static_cast<index_t>(perm.size());
    for (index_t &p : perm)
        p = n - 1 - p;
    return perm;
}

std::vector<index_t>
invert_permutation(const std::vector<index_t> &perm)
{
    const index_t n = static_cast<index_t>(perm.size());
    validate_permutation(perm, n);
    std::vector<index_t> inverse(perm.size());
    for (index_t i = 0; i < n; ++i)
        inverse[static_cast<size_t>(perm[static_cast<size_t>(i)])] = i;
    return inverse;
}

const char *
reorder_kind_name(ReorderKind kind)
{
    switch (kind) {
    case ReorderKind::kNone:
        return "none";
    case ReorderKind::kDegree:
        return "degree";
    case ReorderKind::kBfs:
        return "bfs";
    case ReorderKind::kRcm:
        return "rcm";
    }
    return "none";
}

ReorderKind
parse_reorder_kind(const std::string &name)
{
    if (name == "none" || name.empty())
        return ReorderKind::kNone;
    if (name == "degree")
        return ReorderKind::kDegree;
    if (name == "bfs")
        return ReorderKind::kBfs;
    if (name == "rcm")
        return ReorderKind::kRcm;
    fatal("unknown reorder kind '" + name +
          "'; known kinds: none degree bfs rcm");
}

ReorderKind
default_reorder_kind()
{
    static const ReorderKind kind = [] {
        const char *v = std::getenv("MPS_REORDER");
        return v == nullptr ? ReorderKind::kNone
                            : parse_reorder_kind(v);
    }();
    return kind;
}

ReorderPlan
build_reorder_plan(const CsrMatrix &m, ReorderKind kind)
{
    MPS_CHECK(kind != ReorderKind::kNone,
              "identity needs no reorder plan");
    MPS_CHECK(m.rows() == m.cols(),
              "reorder plans need a square matrix, got ", m.rows(), "x",
              m.cols());
    ReorderPlan plan;
    plan.kind = kind;
    switch (kind) {
    case ReorderKind::kDegree:
        plan.perm = degree_sort_permutation(m, /*descending=*/true);
        break;
    case ReorderKind::kBfs:
        plan.perm = bfs_permutation(m);
        break;
    case ReorderKind::kRcm:
        plan.perm = reverse_permutation(bfs_permutation(m));
        break;
    case ReorderKind::kNone:
        break;
    }
    plan.inverse = invert_permutation(plan.perm);
    plan.matrix = permute_rows(m, plan.perm);
    return plan;
}

} // namespace mps
