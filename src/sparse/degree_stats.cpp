#include "mps/sparse/degree_stats.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "mps/sparse/csr_matrix.h"

namespace mps {

DegreeStats
compute_degree_stats(const CsrMatrix &m)
{
    DegreeStats s;
    if (m.rows() == 0)
        return s;

    std::vector<double> degrees(static_cast<size_t>(m.rows()));
    index_t empty = 0;
    s.min_degree = m.degree(0);
    for (index_t r = 0; r < m.rows(); ++r) {
        index_t d = m.degree(r);
        degrees[static_cast<size_t>(r)] = d;
        s.min_degree = std::min(s.min_degree, d);
        s.max_degree = std::max(s.max_degree, d);
        if (d == 0)
            ++empty;
    }
    s.avg_degree = static_cast<double>(m.nnz()) / m.rows();
    s.degree_cv = coefficient_of_variation(degrees);
    s.empty_row_fraction = static_cast<double>(empty) / m.rows();

    std::sort(degrees.begin(), degrees.end(), std::greater<double>());
    size_t top = std::max<size_t>(1, degrees.size() / 100);
    double top_nnz = 0.0;
    for (size_t i = 0; i < top; ++i)
        top_nnz += degrees[i];
    s.top1pct_nnz_share = m.nnz() > 0 ? top_nnz / m.nnz() : 0.0;
    return s;
}

Log2Histogram
degree_histogram(const CsrMatrix &m)
{
    Log2Histogram h;
    for (index_t r = 0; r < m.rows(); ++r)
        h.add(static_cast<uint64_t>(m.degree(r)));
    return h;
}

std::string
to_string(const DegreeStats &s)
{
    std::ostringstream os;
    os << "deg[min=" << s.min_degree << " max=" << s.max_degree
       << " avg=" << s.avg_degree << " cv=" << s.degree_cv
       << " empty=" << s.empty_row_fraction
       << " top1%share=" << s.top1pct_nnz_share << "]";
    return os.str();
}

} // namespace mps
