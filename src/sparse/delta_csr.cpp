#include "mps/sparse/delta_csr.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "mps/util/log.h"

namespace mps {

double
default_delta_compact_ratio()
{
    const char *env = std::getenv("MPS_DELTA_COMPACT_RATIO");
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        double ratio = std::strtod(env, &end);
        if (end != env && *end == '\0' && ratio > 0.0)
            return ratio;
        warn(detail::format_parts(
            "ignoring invalid MPS_DELTA_COMPACT_RATIO=", env));
    }
    return 0.10;
}

DeltaCsr::DeltaCsr(CsrMatrix base)
    : DeltaCsr(std::make_shared<const CsrMatrix>(std::move(base)))
{
}

DeltaCsr::DeltaCsr(std::shared_ptr<const CsrMatrix> base)
    : base_(std::move(base))
{
    MPS_CHECK(base_ != nullptr, "DeltaCsr needs a base matrix");
    // The overlay merge and the per-row binary searches rely on sorted,
    // duplicate-free rows.
    base_->validate(CsrValidate::kStrict);
    ovl_ptr_.assign(1, 0);
}

double
DeltaCsr::delta_fraction() const
{
    const int64_t base_nnz = std::max<int64_t>(base_->nnz(), 1);
    return static_cast<double>(delta_edges()) /
           static_cast<double>(base_nnz);
}

void
DeltaCsr::set_compact_ratio(double ratio)
{
    MPS_CHECK(ratio > 0.0, "compaction ratio must be positive");
    compact_ratio_ = ratio;
}

index_t
DeltaCsr::dirty_index(index_t r) const
{
    auto it = std::lower_bound(dirty_rows_.begin(), dirty_rows_.end(), r);
    if (it == dirty_rows_.end() || *it != r)
        return -1;
    return static_cast<index_t>(it - dirty_rows_.begin());
}

namespace {

struct Op
{
    index_t row;
    index_t col;
    value_t value;
    bool remove;
};

} // namespace

void
DeltaCsr::apply(const GraphDelta &delta)
{
    if (delta.empty())
        return;

    // Flatten to one op stream: upserts first, removes after, so a
    // remove of an edge upserted in the same batch wins (stable sort +
    // keep-last below preserves that arrival order per (row, col)).
    std::vector<Op> ops;
    ops.reserve(delta.size());
    for (const EdgeUpdate &e : delta.upserts) {
        MPS_CHECK(e.row >= 0 && e.row < rows(),
                  "upsert row out of range: ", e.row);
        MPS_CHECK(e.col >= 0 && e.col < cols(),
                  "upsert col out of range: ", e.col);
        ops.push_back({e.row, e.col, e.value, false});
    }
    for (const EdgeUpdate &e : delta.removes) {
        MPS_CHECK(e.row >= 0 && e.row < rows(),
                  "remove row out of range: ", e.row);
        MPS_CHECK(e.col >= 0 && e.col < cols(),
                  "remove col out of range: ", e.col);
        ops.push_back({e.row, e.col, 0.0f, true});
    }
    std::stable_sort(ops.begin(), ops.end(),
                     [](const Op &a, const Op &b) {
                         return a.row != b.row ? a.row < b.row
                                               : a.col < b.col;
                     });
    // Last op wins per (row, col).
    size_t w = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
        if (w > 0 && ops[w - 1].row == ops[i].row &&
            ops[w - 1].col == ops[i].col)
            ops[w - 1] = ops[i];
        else
            ops[w++] = ops[i];
    }
    ops.resize(w);

    // Rebuild the overlay: walk existing dirty rows and op rows in one
    // ascending merge; rows with ops get a column-merge where the new
    // op overrides any older overlay entry (corrections are always
    // computed against the immutable base, never chained).
    std::vector<index_t> n_dirty, n_ptr{0}, n_cols;
    std::vector<value_t> n_val, n_corr;
    std::vector<uint8_t> n_present, n_in_base;

    const auto emit = [&](index_t col, value_t val, value_t corr,
                          bool present, bool in_base) {
        n_cols.push_back(col);
        n_val.push_back(val);
        n_corr.push_back(corr);
        n_present.push_back(present ? 1 : 0);
        n_in_base.push_back(in_base ? 1 : 0);
    };
    const auto close_row = [&](index_t row) {
        if (static_cast<index_t>(n_cols.size()) == n_ptr.back())
            return; // every entry of the row cancelled out
        n_dirty.push_back(row);
        n_ptr.push_back(static_cast<index_t>(n_cols.size()));
    };
    // Computes the overlay entry an op maps to; false = no entry (the
    // edge ends up exactly in its base state).
    const auto emit_op = [&](const Op &op) {
        const auto &ci = base_->col_idx();
        const index_t b0 = base_->row_begin(op.row);
        const index_t b1 = base_->row_end(op.row);
        auto it = std::lower_bound(ci.begin() + b0, ci.begin() + b1,
                                   op.col);
        const bool in_base = it != ci.begin() + b1 && *it == op.col;
        const value_t bv =
            in_base ? base_->values()[it - ci.begin()] : 0.0f;
        if (op.remove) {
            if (in_base)
                emit(op.col, 0.0f, -bv, false, true);
            // removing an absent edge (or cancelling a same-batch /
            // earlier overlay insert): no entry
        } else if (in_base && op.value == bv) {
            // upsert back to the base value: row reverts to clean
        } else {
            emit(op.col, op.value, op.value - bv, true, in_base);
        }
    };

    size_t di = 0;          // cursor over old dirty rows
    size_t oi = 0;          // cursor over ops
    const size_t dn = dirty_rows_.size();
    while (di < dn || oi < ops.size()) {
        const index_t drow =
            di < dn ? dirty_rows_[di] : rows();
        const index_t orow = oi < ops.size() ? ops[oi].row : rows();
        const index_t row = std::min(drow, orow);
        if (drow < orow) {
            // untouched dirty row: copy verbatim
            for (index_t k = ovl_ptr_[di]; k < ovl_ptr_[di + 1]; ++k)
                emit(ovl_cols_[k], ovl_val_[k], ovl_corr_[k],
                     ovl_present_[k] != 0, ovl_in_base_[k] != 0);
            ++di;
        } else if (orow < drow) {
            // clean row receiving ops
            while (oi < ops.size() && ops[oi].row == row)
                emit_op(ops[oi++]);
        } else {
            // merge old overlay entries with new ops by column
            index_t k = ovl_ptr_[di];
            const index_t ke = ovl_ptr_[di + 1];
            while (k < ke || (oi < ops.size() && ops[oi].row == row)) {
                const bool have_op =
                    oi < ops.size() && ops[oi].row == row;
                if (!have_op || (k < ke && ovl_cols_[k] < ops[oi].col)) {
                    emit(ovl_cols_[k], ovl_val_[k], ovl_corr_[k],
                         ovl_present_[k] != 0, ovl_in_base_[k] != 0);
                    ++k;
                } else {
                    if (k < ke && ovl_cols_[k] == ops[oi].col)
                        ++k; // op overrides the older entry
                    emit_op(ops[oi++]);
                }
            }
            ++di;
        }
        close_row(row);
    }

    dirty_rows_ = std::move(n_dirty);
    ovl_ptr_ = std::move(n_ptr);
    ovl_cols_ = std::move(n_cols);
    ovl_val_ = std::move(n_val);
    ovl_corr_ = std::move(n_corr);
    ovl_present_ = std::move(n_present);
    ovl_in_base_ = std::move(n_in_base);

    inserted_ = 0;
    removed_ = 0;
    for (size_t k = 0; k < ovl_cols_.size(); ++k) {
        if (ovl_present_[k] != 0 && ovl_in_base_[k] == 0)
            ++inserted_;
        else if (ovl_present_[k] == 0)
            ++removed_;
    }
}

CsrMatrix
DeltaCsr::materialize() const
{
    const index_t n = rows();
    std::vector<index_t> row_ptr(static_cast<size_t>(n) + 1, 0);
    for (index_t r = 0; r < n; ++r)
        row_ptr[static_cast<size_t>(r) + 1] = base_->degree(r);
    for (index_t i = 0; i < num_dirty_rows(); ++i) {
        index_t &deg = row_ptr[static_cast<size_t>(dirty_rows_[i]) + 1];
        for (index_t k = ovl_ptr_[i]; k < ovl_ptr_[i + 1]; ++k) {
            if (ovl_present_[k] != 0 && ovl_in_base_[k] == 0)
                ++deg;
            else if (ovl_present_[k] == 0)
                --deg;
        }
    }
    for (size_t r = 1; r < row_ptr.size(); ++r)
        row_ptr[r] += row_ptr[r - 1];

    std::vector<index_t> col_idx(static_cast<size_t>(row_ptr.back()));
    std::vector<value_t> values(col_idx.size());
    size_t pos = 0;
    for (index_t r = 0; r < n; ++r) {
        for_each_in_row(r, [&](index_t col, value_t val) {
            col_idx[pos] = col;
            values[pos] = val;
            ++pos;
        });
    }
    MPS_CHECK(pos == col_idx.size(),
              "materialize produced ", pos, " entries, expected ",
              col_idx.size());
    CsrMatrix out(n, cols(), std::move(row_ptr), std::move(col_idx),
                  std::move(values));
    out.validate(CsrValidate::kStrict);
    return out;
}

DeltaCsr::CompactResult
DeltaCsr::compact()
{
    CompactResult result;
    result.old_base = base_;
    // First row whose STRUCTURE changes: value-only corrections keep
    // row_ptr intact, so they don't dirty the merge path at all.
    result.first_dirty_row = rows();
    for (index_t i = 0; i < num_dirty_rows(); ++i) {
        bool structural = false;
        for (index_t k = ovl_ptr_[i]; k < ovl_ptr_[i + 1] && !structural;
             ++k)
            structural = ovl_present_[k] == 0 || ovl_in_base_[k] == 0;
        if (structural) {
            result.first_dirty_row = dirty_rows_[i];
            break;
        }
    }
    result.new_base =
        std::make_shared<const CsrMatrix>(materialize());
    base_ = result.new_base;
    dirty_rows_.clear();
    ovl_ptr_.assign(1, 0);
    ovl_cols_.clear();
    ovl_val_.clear();
    ovl_corr_.clear();
    ovl_present_.clear();
    ovl_in_base_.clear();
    inserted_ = 0;
    removed_ = 0;
    return result;
}

void
DeltaCsr::validate() const
{
    MPS_CHECK(base_ != nullptr, "DeltaCsr has no base");
    MPS_CHECK(ovl_ptr_.size() == dirty_rows_.size() + 1,
              "overlay pointer length mismatch");
    MPS_CHECK(ovl_ptr_.front() == 0, "overlay pointers must start at 0");
    MPS_CHECK(ovl_ptr_.back() ==
                  static_cast<index_t>(ovl_cols_.size()),
              "overlay pointers must end at the entry count");
    index_t inserted = 0, removed = 0;
    for (size_t i = 0; i < dirty_rows_.size(); ++i) {
        const index_t r = dirty_rows_[i];
        MPS_CHECK(r >= 0 && r < rows(), "dirty row out of range: ", r);
        if (i > 0)
            MPS_CHECK(dirty_rows_[i - 1] < r,
                      "dirty rows must be strictly ascending");
        MPS_CHECK(ovl_ptr_[i] < ovl_ptr_[i + 1],
                  "dirty row ", r, " has no overlay entries");
        const auto &ci = base_->col_idx();
        for (index_t k = ovl_ptr_[i]; k < ovl_ptr_[i + 1]; ++k) {
            const index_t c = ovl_cols_[k];
            MPS_CHECK(c >= 0 && c < cols(),
                      "overlay column out of range: ", c);
            if (k > ovl_ptr_[i])
                MPS_CHECK(ovl_cols_[k - 1] < c,
                          "overlay columns must be strictly ascending ",
                          "in row ", r);
            auto it = std::lower_bound(
                ci.begin() + base_->row_begin(r),
                ci.begin() + base_->row_end(r), c);
            const bool in_base =
                it != ci.begin() + base_->row_end(r) && *it == c;
            MPS_CHECK((ovl_in_base_[k] != 0) == in_base,
                      "overlay in_base flag stale for row ", r,
                      " col ", c);
            const value_t bv =
                in_base ? base_->values()[it - ci.begin()] : 0.0f;
            if (ovl_present_[k] != 0) {
                MPS_CHECK(ovl_corr_[k] == ovl_val_[k] - bv,
                          "overlay correction stale for row ", r,
                          " col ", c);
                if (!in_base)
                    ++inserted;
            } else {
                MPS_CHECK(in_base,
                          "removed overlay entry not in base: row ", r,
                          " col ", c);
                MPS_CHECK(ovl_corr_[k] == -bv,
                          "removal correction stale for row ", r,
                          " col ", c);
                ++removed;
            }
        }
    }
    MPS_CHECK(inserted == inserted_ && removed == removed_,
              "overlay insert/remove counters stale");
}

} // namespace mps
