#include "mps/accel/awb_gcn.h"

#include <algorithm>
#include <vector>

#include "mps/util/log.h"

namespace mps {

AwbGcnResult
simulate_awb_gcn(const CsrMatrix &a, index_t dim, const AwbGcnConfig &config)
{
    MPS_CHECK(config.num_pes >= 1, "AWB-GCN needs at least one PE");
    MPS_CHECK(config.max_pes_per_row >= 1, "max_pes_per_row must be >= 1");
    AwbGcnResult r;

    const size_t pes = static_cast<size_t>(config.num_pes);
    const double total_macs =
        static_cast<double>(a.nnz()) * static_cast<double>(dim);
    r.ideal_load = total_macs /
                   (static_cast<double>(pes) * config.macs_per_pe_cycle);

    // Initial static distribution: rows round-robin over PEs. Track per
    // PE both its load and the hardware floor below which the tuner
    // cannot push it (heaviest resident row divided by the maximum PE
    // gang size).
    std::vector<double> load(pes, 0.0);
    std::vector<double> floor_load(pes, 0.0);
    for (index_t row = 0; row < a.rows(); ++row) {
        size_t pe = static_cast<size_t>(row) % pes;
        double work = static_cast<double>(a.degree(row)) * dim /
                      config.macs_per_pe_cycle;
        load[pe] += work;
        floor_load[pe] =
            std::max(floor_load[pe], work / config.max_pes_per_row);
    }

    // Auto-tuner: every round the hardware detects the most overloaded
    // PEs and migrates their excess (down to their floor) toward the
    // least loaded PEs, one adjustment at a time.
    int64_t adjustments = 0;
    bool balanced = false;
    for (int round = 0; round < config.autotune_rounds && !balanced;
         ++round) {
        for (int move = 0; move < config.moves_per_round; ++move) {
            size_t hot = 0, cold = 0;
            for (size_t p = 1; p < pes; ++p) {
                if (load[p] > load[hot])
                    hot = p;
                if (load[p] < load[cold])
                    cold = p;
            }
            double target = std::max(r.ideal_load, floor_load[hot]);
            double excess = load[hot] - target;
            if (excess <= r.ideal_load * 0.05) {
                balanced = true; // good enough; the tuner goes idle
                break;
            }
            double give = std::min(excess, (load[hot] - load[cold]) / 2);
            load[hot] -= give;
            load[cold] += give;
            ++adjustments;
        }
    }
    r.balanced_load = *std::max_element(load.begin(), load.end());
    r.adjustments = adjustments;
    r.utilization =
        r.balanced_load > 0.0 ? r.ideal_load / r.balanced_load : 1.0;

    // Off-chip streaming: CSR metadata plus the dense XW input and C
    // output matrices.
    double bytes = static_cast<double>(a.nnz()) * 8.0 +
                   (static_cast<double>(a.rows()) + 1) * 4.0 +
                   2.0 * static_cast<double>(a.rows()) * dim * 4.0;
    r.memory_bound = bytes / config.dram_bytes_per_cycle;

    r.cycles = std::max(r.balanced_load, r.memory_bound) +
               static_cast<double>(adjustments) *
                   config.cycles_per_adjustment +
               config.fixed_overhead_cycles;
    r.microseconds = r.cycles / (config.clock_ghz * 1e3);
    return r;
}

} // namespace mps
