#include "mps/accel/hygcn.h"

#include <algorithm>

#include "mps/util/log.h"

namespace mps {

HyGcnResult
simulate_hygcn(const CsrMatrix &a, index_t in_features, index_t out_dim,
               const HyGcnConfig &config)
{
    MPS_CHECK(in_features >= 1 && out_dim >= 1,
              "feature widths must be positive");
    MPS_CHECK(config.gather_efficiency > 0.0 &&
                  config.gather_efficiency <= 1.0,
              "gather efficiency must be in (0, 1]");

    HyGcnResult r;
    // Combination first (X x W), streamed into aggregation (A x XW):
    // both engines run concurrently once the pipeline fills, so the
    // layer takes as long as the busier engine.
    double comb_macs = static_cast<double>(a.rows()) * in_features *
                       out_dim;
    double agg_macs = static_cast<double>(a.nnz()) * out_dim;

    r.comb_cycles = comb_macs / config.comb_macs_per_cycle;
    r.agg_cycles = agg_macs / (config.agg_macs_per_cycle *
                               config.gather_efficiency);

    double span = std::max(r.agg_cycles, r.comb_cycles);
    r.cycles = span + config.fixed_overhead_cycles;
    r.microseconds = r.cycles / (config.clock_ghz * 1e3);
    if (span > 0.0) {
        r.agg_utilization = r.agg_cycles / span;
        r.comb_utilization = r.comb_cycles / span;
    }
    return r;
}

} // namespace mps
