/**
 * @file
 * Cycle-approximate model of the AWB-GCN hardware accelerator
 * (Geng et al., MICRO'20), the paper's Figure 2 comparison point.
 *
 * AWB-GCN is a row-wise SpMM engine of 4096 multiply-accumulate
 * processing elements at 330 MHz with a hardware auto-tuner that
 * detects "evil rows" at runtime and spreads their work over multiple
 * PEs. The model reproduces its two defining behaviours:
 *
 *  - on small graphs it fully exploits its fixed parallelism and wins
 *    against GPU kernels that cannot spawn enough useful warps;
 *  - on large graphs its parallelism is capped at 4096 PEs (and a
 *    330 MHz clock), so massively parallel GPU kernels pass it.
 *
 * The auto-tuner is simulated as iterative rebalancing rounds: each
 * round detects overloaded PEs and migrates half of the heaviest row's
 * remaining work to the most idle PE, charging a per-adjustment
 * latency, exactly in the spirit of the published design.
 */
#ifndef MPS_ACCEL_AWB_GCN_H
#define MPS_ACCEL_AWB_GCN_H

#include <cstdint>

#include "mps/sparse/csr_matrix.h"

namespace mps {

/** AWB-GCN hardware parameters (defaults from the paper). */
struct AwbGcnConfig
{
    /** Multiply-accumulate processing elements. */
    int num_pes = 4096;
    /** Accelerator clock in GHz. */
    double clock_ghz = 0.33;
    /** Auto-tuner rebalancing rounds. */
    int autotune_rounds = 8;
    /** Work migrations the tuner performs per round. */
    int moves_per_round = 32;
    /**
     * Maximum processing elements the tuner can gang onto one evil
     * row (the distribution-smoothing network has finite fan-out); a
     * row's work can never be spread thinner than this.
     */
    int max_pes_per_row = 16;
    /**
     * Cycles charged per tuner adjustment. The tuner runs concurrently
     * with execution, so only a small rerouting bubble is exposed.
     */
    double cycles_per_adjustment = 2.0;
    /** MACs one PE retires per cycle. */
    double macs_per_pe_cycle = 1.0;
    /** Fixed pipeline fill/drain overhead in cycles. */
    double fixed_overhead_cycles = 600.0;
    /**
     * Off-chip bandwidth in bytes per accelerator cycle (512 B/cycle
     * at 330 MHz is ~169 GB/s, an FPGA-HBM-class figure). Streaming
     * the XW and C matrices bounds the big-graph cases.
     */
    double dram_bytes_per_cycle = 512.0;
};

/** Modelled execution of one A x XW kernel on AWB-GCN. */
struct AwbGcnResult
{
    double cycles = 0.0;
    double microseconds = 0.0;
    /** Max-over-PEs load after auto-tuning (cycles). */
    double balanced_load = 0.0;
    /** Ideal perfectly-balanced load (cycles). */
    double ideal_load = 0.0;
    /** PE utilization achieved after tuning, in (0, 1]. */
    double utilization = 0.0;
    /** Total tuner adjustments performed. */
    int64_t adjustments = 0;
    /** Off-chip streaming bound in cycles (CSR + XW + C traffic). */
    double memory_bound = 0.0;
};

/**
 * Model the A x XW SpMM of matrix @p a with dense dimension @p dim on
 * the AWB-GCN accelerator @p config.
 */
AwbGcnResult simulate_awb_gcn(const CsrMatrix &a, index_t dim,
                              const AwbGcnConfig &config = {});

} // namespace mps

#endif // MPS_ACCEL_AWB_GCN_H
