/**
 * @file
 * Model of a HyGCN-style hybrid GCN accelerator (Yan et al.,
 * HPCA'20): two specialized engines — an aggregation engine of SIMD
 * gather cores for the sparse A x X phase and a systolic combination
 * engine for the dense X x W phase — executing a layer as a pipeline.
 *
 * The paper's Section I uses this design point to motivate the unified
 * SpMM approach: because the aggregation/combination work ratio is a
 * property of the input graph (average degree vs. feature width), one
 * of the two fixed engines is under-utilized on any given input. The
 * model exposes exactly that utilization gap; bench/accel_comparison
 * tabulates it against the unified AWB-GCN array.
 */
#ifndef MPS_ACCEL_HYGCN_H
#define MPS_ACCEL_HYGCN_H

#include "mps/sparse/csr_matrix.h"

namespace mps {

/** Hybrid accelerator parameters (HyGCN-like defaults). */
struct HyGcnConfig
{
    /** Aggregation engine MACs per cycle (SIMD gather cores). */
    double agg_macs_per_cycle = 512.0;
    /** Combination engine MACs per cycle (systolic array). */
    double comb_macs_per_cycle = 4096.0;
    /** Accelerator clock in GHz. */
    double clock_ghz = 1.0;
    /** Pipeline fill/flush overhead in cycles. */
    double fixed_overhead_cycles = 2000.0;
    /**
     * Gather efficiency of the aggregation engine on irregular
     * inputs in (0, 1]: random column accesses keep SIMD lanes
     * partially idle.
     */
    double gather_efficiency = 0.6;
};

/** Modelled execution of one full GCN layer on the hybrid design. */
struct HyGcnResult
{
    double cycles = 0.0;
    double microseconds = 0.0;
    /** Busy cycles of the aggregation engine. */
    double agg_cycles = 0.0;
    /** Busy cycles of the combination engine. */
    double comb_cycles = 0.0;
    /** agg_cycles / total (excluding overhead), in (0, 1]. */
    double agg_utilization = 0.0;
    /** comb_cycles / total (excluding overhead), in (0, 1]. */
    double comb_utilization = 0.0;
};

/**
 * Model one GCN layer A x (X x W) on the hybrid accelerator:
 * aggregation work = nnz(A) * out_dim MACs on the gather engine,
 * combination work = nodes * in_features * out_dim MACs on the
 * systolic engine, overlapped as a pipeline whose length is set by the
 * slower engine.
 *
 * @param a           adjacency matrix
 * @param in_features feature width entering the layer (f)
 * @param out_dim     hidden width leaving the layer (d)
 */
HyGcnResult simulate_hygcn(const CsrMatrix &a, index_t in_features,
                           index_t out_dim,
                           const HyGcnConfig &config = {});

} // namespace mps

#endif // MPS_ACCEL_HYGCN_H
