#include "mps/kernels/column_split.h"

#include <atomic>

#include "mps/util/log.h"
#include "mps/util/thread_pool.h"

namespace mps {

namespace {

inline void
atomic_add(value_t &slot, value_t v)
{
    std::atomic_ref<value_t> ref(slot);
    value_t old = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(old, old + v,
                                      std::memory_order_relaxed)) {
    }
}

} // namespace

void
ColumnSplitSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    (void)dim;
    // The CSC view: row j of the transpose lists the rows of A whose
    // column j is non-zero. This is the one kernel in the registry
    // that genuinely preprocesses the matrix — part of why the paper
    // prefers row-wise dataflows for evolving graphs.
    a_transposed_ = a.transposed();
}

void
ColumnSplitSpmm::run(const CsrMatrix &a, const DenseMatrix &b,
                     DenseMatrix &c, ThreadPool &pool) const
{
    MPS_CHECK(b.rows() == a.cols() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "shape mismatch in column_split SpMM");
    MPS_CHECK(a_transposed_.rows() == a.cols() &&
                  a_transposed_.nnz() == a.nnz(),
              "prepare() was not called for this matrix");

    c.fill(0.0f);
    const index_t dim = b.cols();
    const CsrMatrix &at = a_transposed_;
    pool.parallel_for(
        static_cast<uint64_t>(at.rows()),
        [&](uint64_t j) {
            index_t col = static_cast<index_t>(j);
            if (at.degree(col) == 0)
                return;
            const value_t *brow = b.row(col); // loaded once per column
            for (index_t k = at.row_begin(col); k < at.row_end(col);
                 ++k) {
                index_t out_row = at.col_idx()[k];
                const value_t av = at.values()[k];
                value_t *crow = c.row(out_row);
                for (index_t d = 0; d < dim; ++d)
                    atomic_add(crow[d], av * brow[d]);
            }
        },
        /*grain=*/64);
}

} // namespace mps
