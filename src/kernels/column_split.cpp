#include "mps/kernels/column_split.h"

#include "mps/core/microkernel.h"
#include "mps/util/log.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

void
ColumnSplitSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    (void)dim;
    // The CSC view: row j of the transpose lists the rows of A whose
    // column j is non-zero. This is the one kernel in the registry
    // that genuinely preprocesses the matrix — part of why the paper
    // prefers row-wise dataflows for evolving graphs.
    a_transposed_ = a.transposed();
}

void
ColumnSplitSpmm::run(const CsrMatrix &a, const DenseMatrix &b,
                     DenseMatrix &c, WorkStealPool &pool) const
{
    MPS_CHECK(b.rows() == a.cols() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "shape mismatch in column_split SpMM");
    MPS_CHECK(a_transposed_.rows() == a.cols() &&
                  a_transposed_.nnz() == a.nnz(),
              "prepare() was not called for this matrix");

    c.fill(0.0f);
    const index_t dim = b.cols();
    const RowKernels &rk = select_row_kernels(dim);
    const CsrMatrix &at = a_transposed_;
    pool.parallel_for(
        static_cast<uint64_t>(at.rows()),
        [&](uint64_t j) {
            index_t col = static_cast<index_t>(j);
            if (at.degree(col) == 0)
                return;
            const value_t *brow = b.row(col); // loaded once per column
            for (index_t k = at.row_begin(col); k < at.row_end(col);
                 ++k) {
                // Scatter along the column: every output row may be
                // shared with other columns, so each add is atomic.
                rk.axpy_atomic(c.row(at.col_idx()[k]), at.values()[k],
                               brow, dim);
            }
        },
        /*grain=*/64);
}

} // namespace mps
