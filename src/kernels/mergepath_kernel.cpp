#include "mps/kernels/mergepath_kernel.h"

#include "mps/core/spmm.h"
#include "mps/util/log.h"

namespace mps {

void
MergePathSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    prepared_cost_ = cost_ > 0 ? cost_ : default_merge_path_cost(dim);
    schedule_ = MergePathSchedule::build_with_cost(a, prepared_cost_,
                                                   min_threads_);
}

void
MergePathSpmm::run(const CsrMatrix &a, const DenseMatrix &b,
                   DenseMatrix &c, ThreadPool &pool) const
{
    MPS_CHECK(schedule_.num_threads() >= 1, "prepare() was not called");
    mergepath_spmm_parallel(a, b, c, schedule_, pool);
}

} // namespace mps
