#include "mps/kernels/mergepath_kernel.h"

#include <memory>

#include "mps/core/locality.h"
#include "mps/core/spmm.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"

namespace mps {

void
MergePathSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    // A new schedule/reorder invalidates any cached fused plan (it
    // borrows both).
    fused_cache_.reset();
    fused_cache_key_ = nullptr;
    fused_cache_dim_ = 0;
    // Resolve the reorder plan first: the schedule must describe the
    // matrix the traversal will actually walk. Rectangular inputs run
    // in identity order — a graph relabeling needs a square matrix.
    if (reorder_ != ReorderKind::kNone && a.rows() == a.cols()) {
        plan_ = cache_ != nullptr
                    ? cache_->get_or_build_reorder(a, reorder_)
                    : std::make_shared<const ReorderPlan>(
                          build_reorder_plan(a, reorder_));
    } else {
        plan_.reset();
    }
    const CsrMatrix &exec = plan_ ? plan_->matrix : a;

    prepared_cost_ = cost_ > 0 ? cost_ : default_merge_path_cost(dim);
    if (cache_ != nullptr) {
        shared_schedule_ = cache_->get_or_build_with_cost(
            exec, prepared_cost_, min_threads_);
        schedule_ = MergePathSchedule();
    } else {
        shared_schedule_.reset();
        schedule_ = MergePathSchedule::build_with_cost(
            exec, prepared_cost_, min_threads_);
    }

    // Static schedule properties (Figure 5's write-distribution study),
    // published as gauges: they describe the prepared schedule, not an
    // accumulation over runs — the runtime counters in
    // mergepath_spmm_parallel() cover the latter.
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        ScheduleCensus census = schedule().census(exec);
        metrics.gauge_set("spmm.mergepath.split_rows",
                          static_cast<double>(census.split_rows));
        metrics.gauge_set("spmm.mergepath.atomic_write_fraction",
                          census.atomic_write_fraction());
        metrics.gauge_set("spmm.mergepath.cost",
                          static_cast<double>(prepared_cost_));
    }
}

void
MergePathSpmm::run(const CsrMatrix &a, const DenseMatrix &b,
                   DenseMatrix &c, WorkStealPool &pool) const
{
    const MergePathSchedule &sched = schedule();
    MPS_CHECK(sched.num_threads() >= 1, "prepare() was not called");
    if (plan_ == nullptr) {
        mergepath_spmm_parallel(a, b, c, sched, pool);
        return;
    }
    // Reorder-aware execution: traverse the row-permuted matrix, gather
    // from B with the original column ids it retained, and scatter each
    // output row through the inverse permutation at commit time — no
    // post-pass copy of C, no permuted copy of B.
    MPS_CHECK(a.rows() == plan_->matrix.rows() &&
                  a.nnz() == plan_->matrix.nnz(),
              "run() input does not match the prepared reorder plan");
    SpmmLocality loc = default_spmm_locality(
        b.rows(), b.cols(), storage_elem_bytes(b.storage()));
    loc.row_scatter = plan_->inverse.data();
    mergepath_spmm_parallel(plan_->matrix, b, c, sched, pool, loc);
}

FusedLayerPlan *
MergePathSpmm::fused_plan(const CsrMatrix &a, index_t dim) const
{
    const MergePathSchedule &sched = schedule();
    if (sched.num_threads() < 1)
        return nullptr; // prepare() was not called
    const CsrMatrix &exec = plan_ ? plan_->matrix : a;
    if (plan_ != nullptr)
        MPS_CHECK(a.rows() == plan_->matrix.rows() &&
                      a.nnz() == plan_->matrix.nnz(),
                  "fused_plan() input does not match the prepared "
                  "reorder plan");
    if (fused_cache_ != nullptr && fused_cache_key_ == &exec &&
        fused_cache_dim_ == dim)
        return fused_cache_.get();
    SpmmLocality loc = default_fused_locality(exec.cols(), dim);
    if (plan_ != nullptr)
        loc.row_scatter = plan_->inverse.data();
    // The plan borrows the schedule (shared when a cache is attached,
    // the private member otherwise) and the reorder scatter; both live
    // as long as this kernel, which callers already keep alive for
    // run().
    auto schedp = shared_schedule_ ? shared_schedule_
                                   : borrow_schedule(schedule_);
    fused_cache_ = std::make_unique<FusedLayerPlan>(
        exec, dim, std::move(schedp), loc);
    fused_cache_key_ = &exec;
    fused_cache_dim_ = dim;
    return fused_cache_.get();
}

} // namespace mps
