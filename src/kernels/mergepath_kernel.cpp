#include "mps/kernels/mergepath_kernel.h"

#include "mps/core/spmm.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"

namespace mps {

void
MergePathSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    prepared_cost_ = cost_ > 0 ? cost_ : default_merge_path_cost(dim);
    if (cache_ != nullptr) {
        shared_schedule_ = cache_->get_or_build_with_cost(
            a, prepared_cost_, min_threads_);
        schedule_ = MergePathSchedule();
    } else {
        shared_schedule_.reset();
        schedule_ = MergePathSchedule::build_with_cost(a, prepared_cost_,
                                                       min_threads_);
    }

    // Static schedule properties (Figure 5's write-distribution study),
    // published as gauges: they describe the prepared schedule, not an
    // accumulation over runs — the runtime counters in
    // mergepath_spmm_parallel() cover the latter.
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        ScheduleCensus census = schedule().census(a);
        metrics.gauge_set("spmm.mergepath.split_rows",
                          static_cast<double>(census.split_rows));
        metrics.gauge_set("spmm.mergepath.atomic_write_fraction",
                          census.atomic_write_fraction());
        metrics.gauge_set("spmm.mergepath.cost",
                          static_cast<double>(prepared_cost_));
    }
}

void
MergePathSpmm::run(const CsrMatrix &a, const DenseMatrix &b,
                   DenseMatrix &c, WorkStealPool &pool) const
{
    const MergePathSchedule &sched = schedule();
    MPS_CHECK(sched.num_threads() >= 1, "prepare() was not called");
    mergepath_spmm_parallel(a, b, c, sched, pool);
}

} // namespace mps
