#include "mps/kernels/nnz_split.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mps/core/microkernel.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

std::vector<NeighborGroup>
build_neighbor_groups(const CsrMatrix &a, index_t ng_size)
{
    MPS_CHECK(ng_size >= 1, "neighbor group size must be >= 1");
    std::vector<NeighborGroup> groups;
    groups.reserve(static_cast<size_t>(a.nnz() / ng_size) + a.rows());
    for (index_t r = 0; r < a.rows(); ++r) {
        for (index_t k = a.row_begin(r); k < a.row_end(r); k += ng_size) {
            groups.push_back(
                {r, k, std::min<index_t>(k + ng_size, a.row_end(r))});
        }
    }
    return groups;
}

index_t
default_neighbor_group_size(const CsrMatrix &a)
{
    if (a.rows() == 0 || a.nnz() == 0)
        return 1;
    double avg = static_cast<double>(a.nnz()) / a.rows();
    return std::max<index_t>(1, static_cast<index_t>(std::llround(avg)));
}

void
NnzSplitSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    (void)dim;
    prepared_ng_size_ =
        ng_size_ > 0 ? ng_size_ : default_neighbor_group_size(a);
    groups_ = build_neighbor_groups(a, prepared_ng_size_);
}

void
NnzSplitSpmm::run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
                  WorkStealPool &pool) const
{
    MPS_CHECK(b.rows() == a.cols() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "shape mismatch in gnnadvisor SpMM");
    MPS_CHECK(prepared_ng_size_ >= 1, "prepare() was not called");

    // Every neighbor group ends in one atomic vector commit — the
    // paper's motivating contrast with merge-path's selective atomics.
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.counter_add("spmm.gnnadvisor.atomic_commits",
                            static_cast<int64_t>(groups_.size()));
    }

    c.fill(0.0f);
    const index_t dim = b.cols();
    const RowKernels &rk = select_row_kernels(dim);
    pool.parallel_for(
        groups_.size(),
        [&](uint64_t g) {
            const NeighborGroup &group = groups_[g];
            // Group-local accumulation, then one atomic commit per
            // element — the group never knows whether other groups share
            // its row, so the commit is always atomic.
            value_t *acc = microkernel_scratch(dim);
            rk.zero(acc, dim);
            for (index_t k = group.begin; k < group.end; ++k)
                rk.axpy(acc, a.values()[k], b.row(a.col_idx()[k]), dim);
            rk.commit_atomic(c.row(group.row), acc, dim);
        },
        /*grain=*/16);
}

} // namespace mps
