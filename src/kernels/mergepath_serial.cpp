#include "mps/kernels/mergepath_serial.h"

#include <algorithm>
#include <vector>

#include "mps/util/log.h"
#include "mps/util/thread_pool.h"

namespace mps {

void
MergePathSerialFixupSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    (void)dim;
    index_t threads = num_threads_;
    if (threads <= 0) {
        // Default comparable to the MergePath-SpMM kernel's default.
        int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
        threads = static_cast<index_t>(
            std::max<int64_t>(1, std::min<int64_t>(total, 1024)));
    }
    schedule_ = MergePathSchedule::build(a, threads);
}

void
MergePathSerialFixupSpmm::run(const CsrMatrix &a, const DenseMatrix &b,
                              DenseMatrix &c, ThreadPool &pool) const
{
    MPS_CHECK(b.rows() == a.cols() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "shape mismatch in mergepath_serial SpMM");
    MPS_CHECK(schedule_.num_threads() >= 1, "prepare() was not called");

    c.fill(0.0f);
    const index_t dim = b.cols();
    const index_t threads = schedule_.num_threads();

    // Carry slots: up to two partial rows (head and tail) per thread.
    std::vector<index_t> carry_rows(static_cast<size_t>(threads) * 2, -1);
    std::vector<value_t> carry_vals(
        static_cast<size_t>(threads) * 2 * static_cast<size_t>(dim), 0.0f);

    pool.parallel_for(static_cast<uint64_t>(threads), [&](uint64_t ti) {
        index_t t = static_cast<index_t>(ti);
        ResolvedWork w = schedule_.resolve(t, a);
        std::vector<value_t> acc(static_cast<size_t>(dim));
        auto accumulate = [&](index_t begin, index_t end) {
            std::fill(acc.begin(), acc.end(), 0.0f);
            for (index_t k = begin; k < end; ++k) {
                const value_t av = a.values()[k];
                const value_t *brow = b.row(a.col_idx()[k]);
                for (index_t d = 0; d < dim; ++d)
                    acc[static_cast<size_t>(d)] += av * brow[d];
            }
        };

        // Partial rows go to carry slots instead of the output; they
        // are folded in sequentially after the parallel phase.
        if (w.has_head()) {
            accumulate(w.head_begin, w.head_end);
            if (w.head_atomic) {
                size_t slot = static_cast<size_t>(t) * 2;
                carry_rows[slot] = w.head_row;
                std::copy(acc.begin(), acc.end(),
                          carry_vals.begin() +
                              static_cast<size_t>(slot) * dim);
            } else {
                value_t *crow = c.row(w.head_row);
                for (index_t d = 0; d < dim; ++d)
                    crow[d] += acc[static_cast<size_t>(d)];
            }
        }
        for (index_t r = w.first_complete_row; r < w.last_complete_row;
             ++r) {
            accumulate(a.row_begin(r), a.row_end(r));
            value_t *crow = c.row(r);
            for (index_t d = 0; d < dim; ++d)
                crow[d] += acc[static_cast<size_t>(d)];
        }
        if (w.has_tail()) {
            accumulate(w.tail_begin, w.tail_end);
            size_t slot = static_cast<size_t>(t) * 2 + 1;
            carry_rows[slot] = w.tail_row;
            std::copy(acc.begin(), acc.end(),
                      carry_vals.begin() + static_cast<size_t>(slot) * dim);
        }
    });

    // Serial fix-up: fold carries in thread order. This phase is what
    // MergePath-SpMM replaces with per-thread atomic commits.
    int64_t carries = 0;
    for (size_t slot = 0; slot < carry_rows.size(); ++slot) {
        index_t row = carry_rows[slot];
        if (row < 0)
            continue;
        ++carries;
        value_t *crow = c.row(row);
        const value_t *acc = carry_vals.data() + slot * dim;
        for (index_t d = 0; d < dim; ++d)
            crow[d] += acc[d];
    }
    serial_carries_ = carries;
}

} // namespace mps
