#include "mps/kernels/mergepath_serial.h"

#include <algorithm>
#include <vector>

#include "mps/core/microkernel.h"
#include "mps/util/log.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

void
MergePathSerialFixupSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    (void)dim;
    index_t threads = num_threads_;
    if (threads <= 0) {
        // Default comparable to the MergePath-SpMM kernel's default.
        int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
        threads = static_cast<index_t>(
            std::max<int64_t>(1, std::min<int64_t>(total, 1024)));
    }
    schedule_ = MergePathSchedule::build(a, threads);
}

void
MergePathSerialFixupSpmm::run(const CsrMatrix &a, const DenseMatrix &b,
                              DenseMatrix &c, WorkStealPool &pool) const
{
    MPS_CHECK(b.rows() == a.cols() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "shape mismatch in mergepath_serial SpMM");
    MPS_CHECK(schedule_.num_threads() >= 1, "prepare() was not called");

    c.fill(0.0f);
    const index_t dim = b.cols();
    const RowKernels &rk = select_row_kernels(dim);
    const index_t threads = schedule_.num_threads();

    // Carry slots: up to two partial rows (head and tail) per thread.
    std::vector<index_t> carry_rows(static_cast<size_t>(threads) * 2, -1);
    std::vector<value_t> carry_vals(
        static_cast<size_t>(threads) * 2 * static_cast<size_t>(dim), 0.0f);

    pool.parallel_for(static_cast<uint64_t>(threads), [&](uint64_t ti) {
        index_t t = static_cast<index_t>(ti);
        ResolvedWork w = schedule_.resolve(t, a);
        value_t *acc = microkernel_scratch(dim);
        auto accumulate = [&](index_t begin, index_t end) {
            rk.zero(acc, dim);
            for (index_t k = begin; k < end; ++k)
                rk.axpy(acc, a.values()[k], b.row(a.col_idx()[k]), dim);
        };

        // Partial rows go to carry slots instead of the output; they
        // are folded in sequentially after the parallel phase.
        if (w.has_head()) {
            accumulate(w.head_begin, w.head_end);
            if (w.head_atomic) {
                size_t slot = static_cast<size_t>(t) * 2;
                carry_rows[slot] = w.head_row;
                rk.copy(carry_vals.data() + slot * dim, acc, dim);
            } else {
                rk.commit_plain(c.row(w.head_row), acc, dim);
            }
        }
        for (index_t r = w.first_complete_row; r < w.last_complete_row;
             ++r) {
            accumulate(a.row_begin(r), a.row_end(r));
            rk.commit_plain(c.row(r), acc, dim);
        }
        if (w.has_tail()) {
            accumulate(w.tail_begin, w.tail_end);
            size_t slot = static_cast<size_t>(t) * 2 + 1;
            carry_rows[slot] = w.tail_row;
            rk.copy(carry_vals.data() + slot * dim, acc, dim);
        }
    });

    // Serial fix-up: fold carries in thread order. This phase is what
    // MergePath-SpMM replaces with per-thread atomic commits.
    int64_t carries = 0;
    for (size_t slot = 0; slot < carry_rows.size(); ++slot) {
        index_t row = carry_rows[slot];
        if (row < 0)
            continue;
        ++carries;
        rk.commit_plain(c.row(row), carry_vals.data() + slot * dim, dim);
    }
    serial_carries_ = carries;
}

} // namespace mps
