#include "mps/kernels/hybrid_kernel.h"

#include <memory>

#include "mps/core/locality.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"

namespace mps {

void
HybridSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    // A new schedule/reorder invalidates any cached fused plan (it
    // borrows both).
    fused_cache_.reset();
    fused_cache_key_ = nullptr;
    fused_cache_dim_ = 0;
    // Resolve the reorder plan first: classification must see the
    // matrix the traversal will actually walk — that is what makes the
    // column-span rule reorder-aware (RCM/BFS clusters columns, so the
    // permuted matrix classifies more rows dense). Rectangular inputs
    // run in identity order.
    if (reorder_ != ReorderKind::kNone && a.rows() == a.cols()) {
        plan_ = cache_ != nullptr
                    ? cache_->get_or_build_reorder(a, reorder_)
                    : std::make_shared<const ReorderPlan>(
                          build_reorder_plan(a, reorder_));
    } else {
        plan_.reset();
    }
    const CsrMatrix &exec = plan_ ? plan_->matrix : a;

    prepared_cost_ = cost_ > 0 ? cost_ : default_merge_path_cost(dim);
    if (cache_ != nullptr) {
        shared_schedule_ = cache_->get_or_build_hybrid(
            exec, prepared_cost_, min_threads_);
        schedule_ = HybridSchedule();
    } else {
        shared_schedule_.reset();
        schedule_ = HybridSchedule::build(exec, prepared_cost_,
                                          min_threads_);
    }

    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        const HybridSchedule &hs = schedule();
        const RowClassPartition &part = hs.partition();
        metrics.gauge_set("dispatch.dense_rows",
                          static_cast<double>(part.dense_rows));
        metrics.gauge_set("dispatch.tail_rows",
                          static_cast<double>(exec.rows() -
                                              part.dense_rows));
        metrics.gauge_set("dispatch.dense_nnz",
                          static_cast<double>(part.dense_nnz));
        metrics.gauge_set("dispatch.bands",
                          static_cast<double>(part.bands.size()));
        metrics.gauge_set("dispatch.dense_fraction",
                          hs.dense_fraction());
        metrics.gauge_set("spmm.hybrid.cost",
                          static_cast<double>(prepared_cost_));
        metrics.gauge_set(
            "spmm.hybrid.tail_threads",
            static_cast<double>(
                hs.has_tail() ? hs.tail_schedule().num_threads() : 0));
    }
}

void
HybridSpmm::run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
                WorkStealPool &pool) const
{
    const HybridSchedule &hs = schedule();
    MPS_CHECK(hs.cost() >= 1, "prepare() was not called");
    if (plan_ == nullptr) {
        hybrid_spmm_parallel(a, hs, b, c, pool);
        return;
    }
    // Reorder-aware execution: traverse the row-permuted matrix and
    // scatter output rows through the inverse permutation at commit
    // time, same as MergePathSpmm.
    MPS_CHECK(a.rows() == plan_->matrix.rows() &&
                  a.nnz() == plan_->matrix.nnz(),
              "run() input does not match the prepared reorder plan");
    SpmmLocality loc = default_spmm_locality(
        b.rows(), b.cols(), storage_elem_bytes(b.storage()));
    loc.row_scatter = plan_->inverse.data();
    hybrid_spmm_parallel(plan_->matrix, hs, b, c, pool, loc);
}

FusedLayerPlan *
HybridSpmm::fused_plan(const CsrMatrix &a, index_t dim) const
{
    const HybridSchedule &hs = schedule();
    if (hs.cost() < 1)
        return nullptr; // prepare() was not called
    const CsrMatrix &exec = plan_ ? plan_->matrix : a;
    if (plan_ != nullptr)
        MPS_CHECK(a.rows() == plan_->matrix.rows() &&
                      a.nnz() == plan_->matrix.nnz(),
                  "fused_plan() input does not match the prepared "
                  "reorder plan");
    if (fused_cache_ != nullptr && fused_cache_key_ == &exec &&
        fused_cache_dim_ == dim)
        return fused_cache_.get();
    SpmmLocality loc = default_fused_locality(exec.cols(), dim);
    if (plan_ != nullptr)
        loc.row_scatter = plan_->inverse.data();
    auto schedp = shared_schedule_ ? shared_schedule_
                                   : borrow_hybrid_schedule(schedule_);
    fused_cache_ = std::make_unique<FusedLayerPlan>(
        exec, dim, std::move(schedp), loc);
    fused_cache_key_ = &exec;
    fused_cache_dim_ = dim;
    return fused_cache_.get();
}

} // namespace mps
