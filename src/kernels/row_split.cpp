#include "mps/kernels/row_split.h"

#include <algorithm>

#include "mps/core/microkernel.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

void
RowSplitSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    (void)dim;
    prepared_chunks_ = num_chunks_;
    if (prepared_chunks_ <= 0)
        prepared_chunks_ = 0; // resolved against the pool in run()
    if (prepared_chunks_ > a.rows())
        prepared_chunks_ = std::max<index_t>(a.rows(), 1);
}

void
RowSplitSpmm::run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
                  WorkStealPool &pool) const
{
    MPS_CHECK(b.rows() == a.cols() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "shape mismatch in row_split SpMM");
    index_t chunks = prepared_chunks_;
    if (chunks == 0)
        chunks = std::min<index_t>(std::max<index_t>(a.rows(), 1),
                                   static_cast<index_t>(pool.size()) * 8);

    // Row splitting never shares a row between chunks: every write is
    // a plain full-row store (the Figure 5 contrast to gnnadvisor).
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled())
        metrics.counter_add("spmm.row_split.plain_commits", a.rows());

    const index_t dim = b.cols();
    const RowKernels &rk = select_row_kernels(dim);
    const index_t rows_per_chunk = (a.rows() + chunks - 1) / chunks;
    pool.parallel_for(static_cast<uint64_t>(chunks), [&](uint64_t chunk) {
        index_t begin = static_cast<index_t>(chunk) * rows_per_chunk;
        index_t end = std::min<index_t>(begin + rows_per_chunk, a.rows());
        for (index_t r = begin; r < end; ++r) {
            // The chunk owns row r outright: accumulate straight into
            // the output row, no scratch and no commit step.
            value_t *crow = c.row(r);
            rk.zero(crow, dim);
            for (index_t k = a.row_begin(r); k < a.row_end(r); ++k)
                rk.axpy(crow, a.values()[k], b.row(a.col_idx()[k]), dim);
        }
    });
}

} // namespace mps
