/**
 * @file
 * Column-splitting (outer-product dataflow) SpMM: the column-wise
 * alternative the paper's Section II contrasts with row-wise
 * strategies (and one of the dataflows cuSPARSE picks from).
 *
 * C += A[:, j] (outer) B[j, :] for every column j: the dense row
 * B[j, :] is loaded once per column (maximal reuse of the dense
 * input), but the partial products scatter over arbitrary output rows,
 * so every write is atomic — the mirror image of row-splitting's
 * trade-off.
 */
#ifndef MPS_KERNELS_COLUMN_SPLIT_H
#define MPS_KERNELS_COLUMN_SPLIT_H

#include "mps/kernels/spmm_kernel.h"

namespace mps {

/** Outer-product SpMM over columns of A (via A^T), all-atomic. */
class ColumnSplitSpmm final : public SpmmKernel
{
  public:
    std::string name() const override { return "column_split"; }
    void prepare(const CsrMatrix &a, index_t dim) override;
    void run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
             WorkStealPool &pool) const override;

  private:
    CsrMatrix a_transposed_; // CSC view of A: rows are A's columns
};

} // namespace mps

#endif // MPS_KERNELS_COLUMN_SPLIT_H
