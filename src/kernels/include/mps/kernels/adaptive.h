/**
 * @file
 * Adaptive SpMM: the cuSPARSE stand-in.
 *
 * NVidia's closed-source cuSPARSE picks among a slew of kernels based
 * on the shapes of the inputs (the paper, Section V). This kernel
 * reproduces that selection behaviour with a transparent heuristic over
 * the row-degree distribution:
 *
 *  - near-uniform degrees (low CV)  -> static row-splitting with wide
 *    chunks: minimal scheduling overhead and good locality, the regime
 *    where cuSPARSE beats the load-balancing kernels (Type II graphs);
 *  - skewed degrees (high CV)       -> merge-path decomposition, the
 *    load-balanced fallback (where cuSPARSE merely stays competitive).
 */
#ifndef MPS_KERNELS_ADAPTIVE_H
#define MPS_KERNELS_ADAPTIVE_H

#include "mps/core/schedule.h"
#include "mps/kernels/spmm_kernel.h"

namespace mps {

/** Strategy chosen by AdaptiveSpmm::prepare(). */
enum class AdaptiveStrategy {
    kRowSplit,        ///< uniform inputs: static contiguous rows
    kMergePath,       ///< skewed inputs: merge-path decomposition
    kMergePathTiled,  ///< wide d: column-tiled merge-path (L2 panels)
};

/** Shape-driven kernel selection (cuSPARSE-like). */
class AdaptiveSpmm final : public SpmmKernel
{
  public:
    /**
     * @param cv_threshold row-degree coefficient-of-variation above
     *        which the input is treated as skewed.
     */
    explicit AdaptiveSpmm(double cv_threshold = 0.7)
        : cv_threshold_(cv_threshold)
    {
    }

    std::string name() const override { return "adaptive"; }
    void prepare(const CsrMatrix &a, index_t dim) override;
    void run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
             WorkStealPool &pool) const override;

    /** Strategy selected by the last prepare(). */
    AdaptiveStrategy strategy() const { return strategy_; }

  private:
    double cv_threshold_;
    AdaptiveStrategy strategy_ = AdaptiveStrategy::kRowSplit;
    MergePathSchedule schedule_; // only built for kMergePath
};

} // namespace mps

#endif // MPS_KERNELS_ADAPTIVE_H
