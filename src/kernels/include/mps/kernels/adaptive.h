/**
 * @file
 * Adaptive SpMM: the cuSPARSE stand-in.
 *
 * NVidia's closed-source cuSPARSE picks among a slew of kernels based
 * on the shapes of the inputs (the paper, Section V). This kernel
 * reproduces that selection behaviour with a transparent heuristic over
 * the row-degree distribution:
 *
 *  - near-uniform degrees (low CV)  -> static row-splitting with wide
 *    chunks: minimal scheduling overhead and good locality, the regime
 *    where cuSPARSE beats the load-balancing kernels (Type II graphs);
 *  - skewed degrees (high CV)       -> merge-path decomposition, the
 *    load-balanced fallback (where cuSPARSE merely stays competitive);
 *  - skewed with a substantial dense-band nnz share -> the two-phase
 *    hybrid dispatch (mps/core/hybrid.h), which routes the long rows
 *    that dominate nnz to the atomics-free row-GEMM phase.
 *
 * The selection thresholds are env-tunable: MPS_ADAPTIVE_EVIL_FACTOR
 * (max/avg degree ratio that marks a graph skewed, default 15) and
 * MPS_ADAPTIVE_MAX_THREADS (merge-path thread clamp, default 4096),
 * both parsed per kernel instance at construction.
 */
#ifndef MPS_KERNELS_ADAPTIVE_H
#define MPS_KERNELS_ADAPTIVE_H

#include "mps/core/hybrid.h"
#include "mps/core/schedule.h"
#include "mps/kernels/spmm_kernel.h"

namespace mps {

/** Strategy chosen by AdaptiveSpmm::prepare(). */
enum class AdaptiveStrategy {
    kRowSplit,        ///< uniform inputs: static contiguous rows
    kMergePath,       ///< skewed inputs: merge-path decomposition
    kMergePathTiled,  ///< wide d: column-tiled merge-path (L2 panels)
    kHybrid,          ///< skewed + dense bands: two-phase dispatch
};

/** Shape-driven kernel selection (cuSPARSE-like). */
class AdaptiveSpmm final : public SpmmKernel
{
  public:
    /**
     * @param cv_threshold row-degree coefficient-of-variation above
     *        which the input is treated as skewed.
     * @param enable_hybrid let prepare() pick the hybrid dispatch for
     *        skewed inputs with enough dense-band nnz; false restores
     *        the pre-hybrid selection (bench baselines use this). The
     *        MPS_HYBRID=0 opt-out disables it regardless.
     */
    explicit AdaptiveSpmm(double cv_threshold = 0.7,
                          bool enable_hybrid = true);

    std::string name() const override { return "adaptive"; }
    void prepare(const CsrMatrix &a, index_t dim) override;
    void run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
             WorkStealPool &pool) const override;

    /** Strategy selected by the last prepare(). */
    AdaptiveStrategy strategy() const { return strategy_; }

    /** Evil-row factor in effect (MPS_ADAPTIVE_EVIL_FACTOR). */
    double evil_factor() const { return evil_factor_; }

    /** Merge-path thread clamp in effect (MPS_ADAPTIVE_MAX_THREADS). */
    index_t max_threads() const { return max_threads_; }

    /**
     * Dense-band nnz fraction below which a skewed input stays on the
     * plain merge path instead of the hybrid dispatch. Aliases the
     * shared executor threshold in mps/core/hybrid.h so serve and the
     * adaptive kernel can never disagree.
     */
    static constexpr double kHybridDenseFractionMin =
        mps::kHybridDenseFractionMin;

  private:
    double cv_threshold_;
    bool enable_hybrid_;
    double evil_factor_;
    index_t max_threads_;
    AdaptiveStrategy strategy_ = AdaptiveStrategy::kRowSplit;
    MergePathSchedule schedule_;  // kMergePath / kMergePathTiled
    HybridSchedule hybrid_;       // kHybrid only
};

} // namespace mps

#endif // MPS_KERNELS_ADAPTIVE_H
