/**
 * @file
 * SpmmKernel adapter for the hybrid per-row-class dispatch (see
 * mps/core/hybrid.h): dense-band row-GEMM + merge-path tail in one
 * two-phase schedule on the shared WorkStealPool.
 */
#ifndef MPS_KERNELS_HYBRID_KERNEL_H
#define MPS_KERNELS_HYBRID_KERNEL_H

#include <memory>

#include "mps/core/hybrid.h"
#include "mps/core/policy.h"
#include "mps/core/schedule_cache.h"
#include "mps/kernels/spmm_kernel.h"

namespace mps {

/**
 * Two-phase hybrid kernel. prepare() classifies rows once (reorder-
 * aware: against the matrix the traversal will execute) and builds the
 * HybridSchedule; run() submits dense chunks and tail shares as sibling
 * jobs of one parallel_for. With MPS_HYBRID=0 the schedule degenerates
 * to plain merge-path over the base matrix.
 */
class HybridSpmm final : public SpmmKernel
{
  public:
    /**
     * @param cost merge-path cost for the tail schedule; 0 = the
     *        paper's tuned default for the prepared dimension.
     * @param min_threads tail-schedule thread floor. Defaults to 0
     *        (off), unlike MergePathSpmm's 1024: the floor exists to
     *        keep GPU-style occupancy up on small graphs, but here the
     *        dense chunks supply the extra parallelism and a deep tail
     *        split only multiplies atomic commits.
     */
    explicit HybridSpmm(index_t cost = 0, index_t min_threads = 0)
        : cost_(cost), min_threads_(min_threads)
    {
    }

    std::string name() const override { return "hybrid"; }
    void prepare(const CsrMatrix &a, index_t dim) override;
    void run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
             WorkStealPool &pool) const override;

    /**
     * Fused panel-streaming plan routing every panel through
     * hybrid_spmm_panel(). Returns nullptr before prepare(). Cached
     * per (matrix, dim) like MergePathSpmm::fused_plan().
     */
    FusedLayerPlan *fused_plan(const CsrMatrix &a,
                               index_t dim) const override;

    void set_schedule_cache(ScheduleCache *cache) override
    {
        cache_ = cache;
    }

    void set_reorder(ReorderKind kind) override { reorder_ = kind; }

    ReorderKind reorder() const { return reorder_; }

    /** Plan built by the last prepare(), nullptr when identity. */
    const ReorderPlan *reorder_plan() const { return plan_.get(); }

    /** Two-phase schedule built by prepare(). */
    const HybridSchedule &schedule() const
    {
        return shared_schedule_ ? *shared_schedule_ : schedule_;
    }

    /** Tail merge-path cost resolved by prepare(). */
    index_t cost() const { return prepared_cost_; }

  private:
    index_t cost_;
    index_t min_threads_;
    index_t prepared_cost_ = 0;
    ReorderKind reorder_ = default_reorder_kind();
    HybridSchedule schedule_;
    // When a cache is attached, prepare() stores its shared immutable
    // schedule here and leaves schedule_ empty.
    std::shared_ptr<const HybridSchedule> shared_schedule_;
    std::shared_ptr<const ReorderPlan> plan_;
    ScheduleCache *cache_ = nullptr;
    mutable std::unique_ptr<FusedLayerPlan> fused_cache_;
    mutable const CsrMatrix *fused_cache_key_ = nullptr;
    mutable index_t fused_cache_dim_ = 0;
};

} // namespace mps

#endif // MPS_KERNELS_HYBRID_KERNEL_H
