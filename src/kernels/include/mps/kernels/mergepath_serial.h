/**
 * @file
 * Merge-path SpMM with the original SpMV-style serial fix-up phase
 * (Merrill & Garland). The parallel phase writes complete rows with
 * plain stores and saves each thread's partial-row sums into per-thread
 * carry slots; a sequential epilogue then folds every carry into the
 * output. For SpMV the epilogue is one scalar add per thread; for SpMM
 * it is a d-wide vector add per carry, executed serially — the
 * bottleneck Figure 2 of the paper demonstrates and MergePath-SpMM
 * removes.
 */
#ifndef MPS_KERNELS_MERGEPATH_SERIAL_H
#define MPS_KERNELS_MERGEPATH_SERIAL_H

#include "mps/core/schedule.h"
#include "mps/kernels/spmm_kernel.h"

namespace mps {

/** Merge-path decomposition + serial carry fix-up. */
class MergePathSerialFixupSpmm final : public SpmmKernel
{
  public:
    /**
     * @param num_threads logical merge-path threads; 0 = 8 per pool
     *        worker at prepare time (resolved against the global pool
     *        size heuristically in run()).
     */
    explicit MergePathSerialFixupSpmm(index_t num_threads = 0)
        : num_threads_(num_threads)
    {
    }

    std::string name() const override { return "mergepath_serial"; }
    void prepare(const CsrMatrix &a, index_t dim) override;
    void run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
             WorkStealPool &pool) const override;

    /** Schedule built by prepare() (consumed by the SIMT codegen). */
    const MergePathSchedule &schedule() const { return schedule_; }

    /** Number of carry (serial fix-up) vector adds in the last run. */
    int64_t serial_carries() const { return serial_carries_; }

  private:
    index_t num_threads_;
    MergePathSchedule schedule_;
    mutable int64_t serial_carries_ = 0;
};

} // namespace mps

#endif // MPS_KERNELS_MERGEPATH_SERIAL_H
