/**
 * @file
 * Row-splitting SpMM: the strategy used by the GCN hardware accelerators
 * (AWB-GCN et al. before auto-tuning). Rows are divided into contiguous
 * chunks of equal row count; each chunk is processed by one thread, so
 * no output synchronization is needed — but power-law degree skew makes
 * the chunk holding the evil rows the straggler.
 */
#ifndef MPS_KERNELS_ROW_SPLIT_H
#define MPS_KERNELS_ROW_SPLIT_H

#include "mps/kernels/spmm_kernel.h"

namespace mps {

/** Static contiguous row partitioning, no atomics. */
class RowSplitSpmm final : public SpmmKernel
{
  public:
    /**
     * @param num_chunks number of row chunks (logical threads);
     *        0 = one chunk per pool worker at run time.
     */
    explicit RowSplitSpmm(index_t num_chunks = 0)
        : num_chunks_(num_chunks)
    {
    }

    std::string name() const override { return "row_split"; }
    void prepare(const CsrMatrix &a, index_t dim) override;
    void run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
             WorkStealPool &pool) const override;

    /** Chunk count used after prepare() (for models and tests). */
    index_t chunks() const { return prepared_chunks_; }

  private:
    index_t num_chunks_;
    index_t prepared_chunks_ = 0;
};

} // namespace mps

#endif // MPS_KERNELS_ROW_SPLIT_H
