/**
 * @file
 * Kernel registry: create any SpMM kernel by name. Used by the examples
 * and benches so users can switch strategies from the command line.
 */
#ifndef MPS_KERNELS_REGISTRY_H
#define MPS_KERNELS_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "mps/kernels/spmm_kernel.h"

namespace mps {

/** Names accepted by make_spmm_kernel(), in documentation order. */
std::vector<std::string> spmm_kernel_names();

/**
 * Instantiate a kernel with default parameters:
 * "mergepath", "gnnadvisor", "row_split", "mergepath_serial",
 * "adaptive", or "reference". fatal() on unknown names.
 *
 * Kernels are wrapped with observability instrumentation by default
 * (prepare/run spans into the global TraceSession, prepare/run timing
 * distributions and a run counter into the global MetricsRegistry —
 * all no-ops while those are disabled). Pass instrument = false for a
 * bare kernel.
 */
std::unique_ptr<SpmmKernel> make_spmm_kernel(const std::string &name,
                                             bool instrument = true);

/**
 * Wrap an arbitrary kernel with the same instrumentation
 * make_spmm_kernel() applies: spans "prepare:<name>" / "run:<name>"
 * and metrics "kernel.<name>.prepare_ms" / ".run_ms" / ".runs", plus
 * the "kernel.<name>.exec_ms" histogram (per-call latency quantiles;
 * fed from the same clock read as .run_ms so the two never disagree).
 * name() forwards to the wrapped kernel, so the decorator is
 * invisible to registry users.
 */
std::unique_ptr<SpmmKernel>
instrument_spmm_kernel(std::unique_ptr<SpmmKernel> inner);

} // namespace mps

#endif // MPS_KERNELS_REGISTRY_H
