/**
 * @file
 * Kernel registry: create any SpMM kernel by name. Used by the examples
 * and benches so users can switch strategies from the command line.
 */
#ifndef MPS_KERNELS_REGISTRY_H
#define MPS_KERNELS_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "mps/kernels/spmm_kernel.h"

namespace mps {

/** Names accepted by make_spmm_kernel(), in documentation order. */
std::vector<std::string> spmm_kernel_names();

/**
 * Instantiate a kernel with default parameters:
 * "mergepath", "gnnadvisor", "row_split", "mergepath_serial",
 * "adaptive", or "reference". fatal() on unknown names.
 */
std::unique_ptr<SpmmKernel> make_spmm_kernel(const std::string &name);

} // namespace mps

#endif // MPS_KERNELS_REGISTRY_H
