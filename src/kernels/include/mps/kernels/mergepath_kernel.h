/**
 * @file
 * SpmmKernel adapter for the paper's MergePath-SpMM (Algorithm 2),
 * wiring the core schedule + kernel into the common registry interface.
 */
#ifndef MPS_KERNELS_MERGEPATH_KERNEL_H
#define MPS_KERNELS_MERGEPATH_KERNEL_H

#include <memory>

#include "mps/core/policy.h"
#include "mps/core/schedule.h"
#include "mps/core/schedule_cache.h"
#include "mps/kernels/spmm_kernel.h"

namespace mps {

/** The proposed kernel: merge-path schedule + selective atomics. */
class MergePathSpmm final : public SpmmKernel
{
  public:
    /**
     * @param cost merge-path cost; 0 = the paper's tuned default for
     *        the prepared dimension (Figure 6 table).
     * @param min_threads small-graph thread floor (Sec. III-C);
     *        defaults to the paper's 1024.
     */
    explicit MergePathSpmm(index_t cost = 0, index_t min_threads = 1024)
        : cost_(cost), min_threads_(min_threads)
    {
    }

    std::string name() const override { return "mergepath"; }
    void prepare(const CsrMatrix &a, index_t dim) override;
    void run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
             WorkStealPool &pool) const override;

    /**
     * Fused panel-streaming plan over the prepared schedule: same
     * traversal, same reorder scatter, locality resolved through
     * default_fused_locality(). Returns nullptr before prepare().
     * Cached per (matrix, dim) — repeat calls for the same prepared
     * layer return the same plan with its panel buffers intact;
     * prepare() invalidates the cache.
     */
    FusedLayerPlan *fused_plan(const CsrMatrix &a,
                               index_t dim) const override;

    /**
     * Reuse schedules through @p cache instead of building privately;
     * nullptr reverts to a private schedule on the next prepare().
     */
    void set_schedule_cache(ScheduleCache *cache) override
    {
        cache_ = cache;
    }

    /**
     * Execute on a row-permuted copy of the matrix (built/cached at
     * prepare() time) and scatter output rows back through the inverse
     * permutation at commit time. Rectangular inputs fall back to
     * identity order — reorderings are graph relabelings.
     */
    void set_reorder(ReorderKind kind) override { reorder_ = kind; }

    /** The reordering this kernel applies (kNone = identity). */
    ReorderKind reorder() const { return reorder_; }

    /** Plan built by the last prepare(), nullptr when identity. */
    const ReorderPlan *reorder_plan() const { return plan_.get(); }

    /** Schedule built by prepare() (consumed by the SIMT codegen). */
    const MergePathSchedule &schedule() const
    {
        return shared_schedule_ ? *shared_schedule_ : schedule_;
    }

    /** Cost resolved by prepare(). */
    index_t cost() const { return prepared_cost_; }

  private:
    index_t cost_;
    index_t min_threads_;
    index_t prepared_cost_ = 0;
    ReorderKind reorder_ = default_reorder_kind();
    MergePathSchedule schedule_;
    // When a cache is attached, prepare() stores its shared immutable
    // schedule here and leaves schedule_ empty.
    std::shared_ptr<const MergePathSchedule> shared_schedule_;
    // Reorder plan the schedule was built against (the schedule always
    // describes the matrix actually traversed). nullptr = identity.
    std::shared_ptr<const ReorderPlan> plan_;
    ScheduleCache *cache_ = nullptr;
    // fused_plan() cache: one plan per prepared layer, keyed by the
    // executed matrix's address + dim, dropped by prepare(). Keeping
    // it here (not rebuilt per call) is what lets the plan's panel
    // buffers survive across forwards.
    mutable std::unique_ptr<FusedLayerPlan> fused_cache_;
    mutable const CsrMatrix *fused_cache_key_ = nullptr;
    mutable index_t fused_cache_dim_ = 0;
};

} // namespace mps

#endif // MPS_KERNELS_MERGEPATH_KERNEL_H
