/**
 * @file
 * GNNAdvisor-style nnz-splitting SpMM.
 *
 * Rows are partitioned into "neighbor groups" of at most ng_size
 * non-zeros each (GNNAdvisor's CSR extension); one group maps to one
 * warp/task. Because a row can span many groups, no task knows whether
 * it owns its output row — every output update is performed atomically,
 * the indiscriminate-synchronization behaviour the paper improves on.
 */
#ifndef MPS_KERNELS_NNZ_SPLIT_H
#define MPS_KERNELS_NNZ_SPLIT_H

#include <vector>

#include "mps/kernels/spmm_kernel.h"

namespace mps {

/** One neighbor group: a slice of a single row's non-zeros. */
struct NeighborGroup
{
    index_t row;
    index_t begin; ///< first nnz index (into col_idx / values)
    index_t end;   ///< one past the last nnz index
};

/**
 * Partition every row of @p a into neighbor groups of at most
 * @p ng_size non-zeros (GNNAdvisor preprocessing). ng_size must be
 * >= 1. Empty rows produce no groups.
 */
std::vector<NeighborGroup> build_neighbor_groups(const CsrMatrix &a,
                                                 index_t ng_size);

/**
 * GNNAdvisor's default neighbor-group size: the average degree of the
 * graph, rounded, minimum 1.
 */
index_t default_neighbor_group_size(const CsrMatrix &a);

/** Neighbor-group (nnz-splitting) SpMM with all-atomic output updates. */
class NnzSplitSpmm final : public SpmmKernel
{
  public:
    /** @param ng_size group size; 0 = the graph's average degree. */
    explicit NnzSplitSpmm(index_t ng_size = 0) : ng_size_(ng_size) {}

    std::string name() const override { return "gnnadvisor"; }
    void prepare(const CsrMatrix &a, index_t dim) override;
    void run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
             WorkStealPool &pool) const override;

    /** Groups built by prepare() (consumed by the SIMT warp codegen). */
    const std::vector<NeighborGroup> &groups() const { return groups_; }

    /** Group size resolved by prepare(). */
    index_t group_size() const { return prepared_ng_size_; }

  private:
    index_t ng_size_;
    index_t prepared_ng_size_ = 0;
    std::vector<NeighborGroup> groups_;
};

} // namespace mps

#endif // MPS_KERNELS_NNZ_SPLIT_H
