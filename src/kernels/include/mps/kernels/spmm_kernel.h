/**
 * @file
 * Common interface for all SpMM kernels (C = A * B, A sparse CSR,
 * B/C dense). Each implementation mirrors one of the parallelization
 * strategies the paper compares:
 *
 *   - row_split:        contiguous equal row chunks, no atomics
 *   - gnnadvisor:       nnz-splitting neighbor groups, all writes atomic
 *   - mergepath_serial: merge-path with the SpMV-style serial fix-up
 *   - mergepath:        the paper's MergePath-SpMM (Algorithm 2)
 *   - adaptive:         shape-driven kernel selection (cuSPARSE stand-in)
 *   - reference:        sequential gold kernel
 *
 * prepare() performs any input-dependent scheduling (neighbor-group
 * construction, merge-path searches); its cost is what the paper's
 * online-vs-offline experiment (Figure 8) charges to online execution.
 */
#ifndef MPS_KERNELS_SPMM_KERNEL_H
#define MPS_KERNELS_SPMM_KERNEL_H

#include <memory>
#include <string>

#include "mps/core/fusion.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"
#include "mps/sparse/reorder.h"

namespace mps {

class WorkStealPool;
class ScheduleCache;

/** Abstract SpMM kernel with a separate scheduling step. */
class SpmmKernel
{
  public:
    virtual ~SpmmKernel() = default;

    /** Stable kernel identifier (used by the registry and benches). */
    virtual std::string name() const = 0;

    /**
     * Offer a schedule cache for prepare() to reuse schedules across
     * kernel instances (layers, epochs, serving requests). Kernels
     * without cacheable schedule state ignore the offer; pass nullptr
     * to revert to private schedules. Decorators must forward.
     */
    virtual void set_schedule_cache(ScheduleCache *cache) { (void)cache; }

    /**
     * Select a row reordering for locality-aware execution (takes
     * effect at the next prepare()). Kernels without reorder-aware
     * execution ignore the request; decorators must forward. The
     * default for reorder-capable kernels is the MPS_REORDER env
     * setting (kNone when unset).
     */
    virtual void set_reorder(ReorderKind kind) { (void)kind; }

    /**
     * Build input-dependent schedule state for matrix @p a at dense
     * dimension @p dim. Must be called before run() whenever @p a or
     * @p dim changes; may be skipped between runs on the same input
     * (the paper's offline setting).
     */
    virtual void prepare(const CsrMatrix &a, index_t dim) = 0;

    /**
     * Execute C = A * B using @p pool. Requires a prior prepare() with
     * a matrix of identical structure and b.cols() == prepared dim.
     * @p c is fully overwritten.
     */
    virtual void run(const CsrMatrix &a, const DenseMatrix &b,
                     DenseMatrix &c, WorkStealPool &pool) const = 0;

    /**
     * Fused panel-streaming execution plan for this kernel on matrix
     * @p a at dense dimension @p dim (see mps/core/fusion.h), or
     * nullptr when the kernel has no fused path — callers then fall
     * back to the classic GEMM-into-temporary + run() pipeline.
     * Requires a prior prepare(a, dim). The plan is owned and CACHED
     * by the kernel (so its panel buffers are reused across forwards);
     * it stays valid until the next prepare() or fused_plan() call on
     * this kernel and borrows the kernel's schedule and reorder state.
     * Like prepare(), not safe to call concurrently with itself or
     * run(). Decorators must forward.
     */
    virtual FusedLayerPlan *
    fused_plan(const CsrMatrix &a, index_t dim) const
    {
        (void)a;
        (void)dim;
        return nullptr;
    }
};

} // namespace mps

#endif // MPS_KERNELS_SPMM_KERNEL_H
