#include "mps/kernels/registry.h"

#include "mps/core/spmm.h"
#include "mps/kernels/adaptive.h"
#include "mps/kernels/column_split.h"
#include "mps/kernels/mergepath_kernel.h"
#include "mps/kernels/mergepath_serial.h"
#include "mps/kernels/nnz_split.h"
#include "mps/kernels/row_split.h"
#include "mps/util/log.h"

namespace mps {

namespace {

/** Sequential gold kernel exposed through the registry. */
class ReferenceSpmmKernel final : public SpmmKernel
{
  public:
    std::string name() const override { return "reference"; }

    void
    prepare(const CsrMatrix &a, index_t dim) override
    {
        (void)a;
        (void)dim;
    }

    void
    run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
        ThreadPool &pool) const override
    {
        (void)pool;
        reference_spmm(a, b, c);
    }
};

} // namespace

std::vector<std::string>
spmm_kernel_names()
{
    return {"mergepath",        "gnnadvisor", "row_split",
            "column_split",     "adaptive",   "mergepath_serial",
            "reference"};
}

std::unique_ptr<SpmmKernel>
make_spmm_kernel(const std::string &name)
{
    if (name == "mergepath")
        return std::make_unique<MergePathSpmm>();
    if (name == "gnnadvisor")
        return std::make_unique<NnzSplitSpmm>();
    if (name == "row_split")
        return std::make_unique<RowSplitSpmm>();
    if (name == "column_split")
        return std::make_unique<ColumnSplitSpmm>();
    if (name == "adaptive")
        return std::make_unique<AdaptiveSpmm>();
    if (name == "mergepath_serial")
        return std::make_unique<MergePathSerialFixupSpmm>();
    if (name == "reference")
        return std::make_unique<ReferenceSpmmKernel>();
    std::string known;
    for (const auto &k : spmm_kernel_names())
        known += " " + k;
    fatal("unknown SpMM kernel '" + name + "'; known kernels:" + known);
}

} // namespace mps
