#include "mps/kernels/registry.h"

#include "mps/core/spmm.h"
#include "mps/kernels/adaptive.h"
#include "mps/kernels/column_split.h"
#include "mps/kernels/hybrid_kernel.h"
#include "mps/kernels/mergepath_kernel.h"
#include "mps/kernels/mergepath_serial.h"
#include "mps/kernels/nnz_split.h"
#include "mps/kernels/row_split.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/trace.h"

namespace mps {

namespace {

/** Sequential gold kernel exposed through the registry. */
class ReferenceSpmmKernel final : public SpmmKernel
{
  public:
    std::string name() const override { return "reference"; }

    void
    prepare(const CsrMatrix &a, index_t dim) override
    {
        (void)a;
        (void)dim;
    }

    void
    run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
        WorkStealPool &pool) const override
    {
        (void)pool;
        reference_spmm(a, b, c);
    }
};

/**
 * Observability decorator: spans + timing metrics around prepare()/run()
 * of any kernel. Metric/span names are precomputed so the per-call cost
 * while disabled is a couple of relaxed atomic loads.
 */
class InstrumentedSpmmKernel final : public SpmmKernel
{
  public:
    explicit InstrumentedSpmmKernel(std::unique_ptr<SpmmKernel> inner)
        : inner_(std::move(inner)),
          prepare_span_("prepare:" + inner_->name()),
          run_span_("run:" + inner_->name()),
          prepare_metric_("kernel." + inner_->name() + ".prepare_ms"),
          run_metric_("kernel." + inner_->name() + ".run_ms"),
          exec_hist_("kernel." + inner_->name() + ".exec_ms"),
          runs_counter_("kernel." + inner_->name() + ".runs")
    {
    }

    std::string name() const override { return inner_->name(); }

    void
    set_schedule_cache(ScheduleCache *cache) override
    {
        inner_->set_schedule_cache(cache);
    }

    void
    set_reorder(ReorderKind kind) override
    {
        inner_->set_reorder(kind);
    }

    void
    prepare(const CsrMatrix &a, index_t dim) override
    {
        ScopedSpan span(prepare_span_, "kernel");
        MetricTimer timer(prepare_metric_);
        inner_->prepare(a, dim);
    }

    void
    run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
        WorkStealPool &pool) const override
    {
        ScopedSpan span(run_span_, "kernel");
        MetricsRegistry &metrics = MetricsRegistry::global();
        if (!metrics.enabled()) {
            inner_->run(a, b, c, pool);
            return;
        }
        metrics.counter_add(runs_counter_);
        Timer wall;
        inner_->run(a, b, c, pool);
        record_wall_ms(metrics, wall.elapsed_ms());
    }

    FusedLayerPlan *
    fused_plan(const CsrMatrix &a, index_t dim) const override
    {
        // The fused executor records its own kernel.fused.exec_ms
        // histogram; the decorator only needs to forward.
        return inner_->fused_plan(a, dim);
    }

  private:
    /**
     * One clock read feeds both the run_ms timer (mean/min/max summary)
     * and the exec_ms histogram (quantiles). Reading the clock twice
     * would let the two metrics disagree about the same call.
     */
    void
    record_wall_ms(MetricsRegistry &metrics, double ms) const
    {
        metrics.timer_record_ms(run_metric_, ms);
        metrics.histogram_record(exec_hist_, ms);
    }

    std::unique_ptr<SpmmKernel> inner_;
    std::string prepare_span_;
    std::string run_span_;
    std::string prepare_metric_;
    std::string run_metric_;
    std::string exec_hist_;
    std::string runs_counter_;
};

} // namespace

std::vector<std::string>
spmm_kernel_names()
{
    return {"mergepath",        "hybrid",     "gnnadvisor",
            "row_split",        "column_split", "adaptive",
            "mergepath_serial", "reference"};
}

std::unique_ptr<SpmmKernel>
instrument_spmm_kernel(std::unique_ptr<SpmmKernel> inner)
{
    MPS_CHECK(inner != nullptr, "cannot instrument a null kernel");
    return std::make_unique<InstrumentedSpmmKernel>(std::move(inner));
}

std::unique_ptr<SpmmKernel>
make_spmm_kernel(const std::string &name, bool instrument)
{
    std::unique_ptr<SpmmKernel> kernel;
    if (name == "mergepath")
        kernel = std::make_unique<MergePathSpmm>();
    else if (name == "hybrid")
        kernel = std::make_unique<HybridSpmm>();
    else if (name == "gnnadvisor")
        kernel = std::make_unique<NnzSplitSpmm>();
    else if (name == "row_split")
        kernel = std::make_unique<RowSplitSpmm>();
    else if (name == "column_split")
        kernel = std::make_unique<ColumnSplitSpmm>();
    else if (name == "adaptive")
        kernel = std::make_unique<AdaptiveSpmm>();
    else if (name == "mergepath_serial")
        kernel = std::make_unique<MergePathSerialFixupSpmm>();
    else if (name == "reference")
        kernel = std::make_unique<ReferenceSpmmKernel>();
    if (kernel == nullptr) {
        std::string known;
        for (const auto &k : spmm_kernel_names())
            known += " " + k;
        fatal("unknown SpMM kernel '" + name + "'; known kernels:" +
              known);
    }
    if (instrument)
        kernel = instrument_spmm_kernel(std::move(kernel));
    return kernel;
}

} // namespace mps
