#include "mps/kernels/adaptive.h"

#include <algorithm>
#include <cstdlib>

#include "mps/core/locality.h"
#include "mps/core/microkernel.h"
#include "mps/core/policy.h"
#include "mps/core/spmm.h"
#include "mps/sparse/degree_stats.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

namespace {

double
adaptive_env_double(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || parsed <= 0.0) {
        warn(detail::format_parts("ignoring invalid ", name, "=", v));
        return fallback;
    }
    return parsed;
}

index_t
adaptive_env_threads(const char *name, index_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || parsed < 1) {
        warn(detail::format_parts("ignoring invalid ", name, "=", v));
        return fallback;
    }
    return static_cast<index_t>(parsed);
}

} // namespace

AdaptiveSpmm::AdaptiveSpmm(double cv_threshold, bool enable_hybrid)
    : cv_threshold_(cv_threshold), enable_hybrid_(enable_hybrid),
      // Parsed per instance (not static-cached) so tests and serving
      // tenants can retune without restarting the process.
      evil_factor_(adaptive_env_double("MPS_ADAPTIVE_EVIL_FACTOR", 15.0)),
      max_threads_(
          adaptive_env_threads("MPS_ADAPTIVE_MAX_THREADS", 4096))
{
}

void
AdaptiveSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    DegreeStats stats = compute_degree_stats(a);
    // Skew shows up either as degree variance or as an extreme maximum
    // relative to the average (evil rows in an otherwise flat graph).
    bool skewed = stats.degree_cv > cv_threshold_ ||
                  (stats.avg_degree > 0.0 &&
                   stats.max_degree > evil_factor_ * stats.avg_degree);
    // Once the dense operand spills out of L2 (d wide, many columns),
    // locality beats scheduling: the column-tiled merge-path variant
    // keeps the gather working set panel-resident, which contiguous
    // row-splitting cannot, so it wins even on uniform inputs. Below
    // the tile width the untiled selection stands (and tiling would be
    // a no-op anyway).
    if (default_spmm_locality(a.cols(), dim).tiled(dim)) {
        strategy_ = AdaptiveStrategy::kMergePathTiled;
    } else if (skewed && enable_hybrid_ && hybrid_enabled()) {
        // Skewed graphs are the hybrid dispatch's home turf when the
        // long/clustered rows carry a real share of the nnz; with only
        // scattered short rows the classification yields no bands and
        // the plain merge path is the same thing without the detour.
        HybridSchedule hs = HybridSchedule::build(
            a, default_merge_path_cost(dim), /*min_threads=*/0);
        if (hs.dense_fraction() >= kHybridDenseFractionMin) {
            strategy_ = AdaptiveStrategy::kHybrid;
            hybrid_ = std::move(hs);
        } else {
            strategy_ = AdaptiveStrategy::kMergePath;
        }
    } else {
        strategy_ = skewed ? AdaptiveStrategy::kMergePath
                           : AdaptiveStrategy::kRowSplit;
    }
    if (strategy_ == AdaptiveStrategy::kMergePath ||
        strategy_ == AdaptiveStrategy::kMergePathTiled) {
        int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
        index_t threads = static_cast<index_t>(std::max<int64_t>(
            1, std::min<int64_t>(total, max_threads_)));
        schedule_ = MergePathSchedule::build(a, threads);
    }

    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.gauge_set("adaptive.strategy",
                          static_cast<double>(strategy_));
        metrics.gauge_set("adaptive.cv_threshold", cv_threshold_);
        metrics.gauge_set("adaptive.evil_factor", evil_factor_);
        metrics.gauge_set("adaptive.max_threads",
                          static_cast<double>(max_threads_));
        metrics.gauge_set("adaptive.degree_cv", stats.degree_cv);
        metrics.gauge_set("adaptive.dense_fraction",
                          strategy_ == AdaptiveStrategy::kHybrid
                              ? hybrid_.dense_fraction()
                              : 0.0);
    }
}

void
AdaptiveSpmm::run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
                  WorkStealPool &pool) const
{
    MPS_CHECK(b.rows() == a.cols() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "shape mismatch in adaptive SpMM");
    if (strategy_ == AdaptiveStrategy::kHybrid) {
        hybrid_spmm_parallel(a, hybrid_, b, c, pool);
        return;
    }
    if (strategy_ != AdaptiveStrategy::kRowSplit) {
        // The parallel entry point resolves the process locality
        // defaults itself, so kMergePath and kMergePathTiled share one
        // call — the strategy split exists for observability and tests.
        mergepath_spmm_parallel(a, b, c, schedule_, pool);
        return;
    }

    // Static row-splitting, vectorized inner loops, coarse chunks.
    const index_t dim = b.cols();
    const RowKernels &rk = select_row_kernels(dim);
    index_t chunks = std::min<index_t>(
        std::max<index_t>(a.rows(), 1),
        static_cast<index_t>(pool.size()) * 4);
    const index_t rows_per_chunk = (a.rows() + chunks - 1) / chunks;
    pool.parallel_for(static_cast<uint64_t>(chunks), [&](uint64_t chunk) {
        index_t begin = static_cast<index_t>(chunk) * rows_per_chunk;
        index_t end = std::min<index_t>(begin + rows_per_chunk, a.rows());
        for (index_t r = begin; r < end; ++r) {
            value_t *crow = c.row(r);
            rk.zero(crow, dim);
            for (index_t k = a.row_begin(r); k < a.row_end(r); ++k)
                rk.axpy(crow, a.values()[k], b.row(a.col_idx()[k]), dim);
        }
    });
}

} // namespace mps
