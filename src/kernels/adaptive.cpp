#include "mps/kernels/adaptive.h"

#include <algorithm>

#include "mps/core/locality.h"
#include "mps/core/microkernel.h"
#include "mps/core/spmm.h"
#include "mps/sparse/degree_stats.h"
#include "mps/util/log.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

void
AdaptiveSpmm::prepare(const CsrMatrix &a, index_t dim)
{
    DegreeStats stats = compute_degree_stats(a);
    // Skew shows up either as degree variance or as an extreme maximum
    // relative to the average (evil rows in an otherwise flat graph).
    bool skewed = stats.degree_cv > cv_threshold_ ||
                  (stats.avg_degree > 0.0 &&
                   stats.max_degree > 15.0 * stats.avg_degree);
    // Once the dense operand spills out of L2 (d wide, many columns),
    // locality beats scheduling: the column-tiled merge-path variant
    // keeps the gather working set panel-resident, which contiguous
    // row-splitting cannot, so it wins even on uniform inputs. Below
    // the tile width the untiled selection stands (and tiling would be
    // a no-op anyway).
    if (default_spmm_locality(a.cols(), dim).tiled(dim))
        strategy_ = AdaptiveStrategy::kMergePathTiled;
    else
        strategy_ = skewed ? AdaptiveStrategy::kMergePath
                           : AdaptiveStrategy::kRowSplit;
    if (strategy_ != AdaptiveStrategy::kRowSplit) {
        int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
        index_t threads = static_cast<index_t>(
            std::max<int64_t>(1, std::min<int64_t>(total, 4096)));
        schedule_ = MergePathSchedule::build(a, threads);
    }
}

void
AdaptiveSpmm::run(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
                  WorkStealPool &pool) const
{
    MPS_CHECK(b.rows() == a.cols() && c.rows() == a.rows() &&
                  c.cols() == b.cols(),
              "shape mismatch in adaptive SpMM");
    if (strategy_ != AdaptiveStrategy::kRowSplit) {
        // The parallel entry point resolves the process locality
        // defaults itself, so kMergePath and kMergePathTiled share one
        // call — the strategy split exists for observability and tests.
        mergepath_spmm_parallel(a, b, c, schedule_, pool);
        return;
    }

    // Static row-splitting, vectorized inner loops, coarse chunks.
    const index_t dim = b.cols();
    const RowKernels &rk = select_row_kernels(dim);
    index_t chunks = std::min<index_t>(
        std::max<index_t>(a.rows(), 1),
        static_cast<index_t>(pool.size()) * 4);
    const index_t rows_per_chunk = (a.rows() + chunks - 1) / chunks;
    pool.parallel_for(static_cast<uint64_t>(chunks), [&](uint64_t chunk) {
        index_t begin = static_cast<index_t>(chunk) * rows_per_chunk;
        index_t end = std::min<index_t>(begin + rows_per_chunk, a.rows());
        for (index_t r = begin; r < end; ++r) {
            value_t *crow = c.row(r);
            rk.zero(crow, dim);
            for (index_t k = a.row_begin(r); k < a.row_end(r); ++k)
                rk.axpy(crow, a.values()[k], b.row(a.col_idx()[k]), dim);
        }
    });
}

} // namespace mps
