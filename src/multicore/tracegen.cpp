#include "mps/multicore/tracegen.h"

#include <algorithm>

#include "mps/core/schedule.h"
#include "mps/kernels/nnz_split.h"
#include "mps/util/log.h"

namespace mps {

namespace {

/** Round @p v up to a multiple of @p align. */
uint64_t
align_up(uint64_t v, uint64_t align)
{
    return (v + align - 1) / align * align;
}

} // namespace

SpmmAddressMap
SpmmAddressMap::create(const CsrMatrix &a, index_t dim, int value_bytes,
                       int line_bytes)
{
    SpmmAddressMap m;
    m.dim = dim;
    m.value_bytes = value_bytes;
    const uint64_t gap = 1 << 20; // keep regions visually distinct
    uint64_t cursor = gap;
    m.row_ptr_base = cursor;
    cursor += align_up((static_cast<uint64_t>(a.rows()) + 1) * 4,
                       static_cast<uint64_t>(line_bytes)) + gap;
    m.col_idx_base = cursor;
    cursor += align_up(static_cast<uint64_t>(a.nnz()) * 4,
                       static_cast<uint64_t>(line_bytes)) + gap;
    m.values_base = cursor;
    cursor += align_up(static_cast<uint64_t>(a.nnz()) * value_bytes,
                       static_cast<uint64_t>(line_bytes)) + gap;
    m.xw_base = cursor;
    cursor += align_up(static_cast<uint64_t>(a.cols()) * dim * value_bytes,
                       static_cast<uint64_t>(line_bytes)) + gap;
    m.c_base = cursor;
    return m;
}

SegmentTraceSource::SegmentTraceSource(const CsrMatrix &a,
                                       const SpmmAddressMap &map,
                                       const MulticoreConfig &config,
                                       std::vector<WorkSegment> segments)
    : a_(a), map_(map), line_bytes_(config.line_bytes),
      segments_(std::move(segments))
{
    // One vector MAC group per non-zero: dim elements over the SIMD
    // lanes, plus one cycle of loop/address arithmetic.
    compute_per_nnz_ = static_cast<uint32_t>(
        (map.dim + config.simd_lanes - 1) / config.simd_lanes + 1);
}

void
SegmentTraceSource::push_line_ops(uint64_t addr, uint64_t bytes,
                                  TraceOpKind kind)
{
    uint64_t line = static_cast<uint64_t>(line_bytes_);
    uint64_t first = addr / line * line;
    uint64_t last = (addr + bytes - 1) / line * line;
    for (uint64_t l = first; l <= last; l += line)
        pending_.push_back({kind, 0, l});
}

void
SegmentTraceSource::refill()
{
    pending_.clear();
    pending_pos_ = 0;
    while (pending_.empty()) {
        if (seg_idx_ >= segments_.size())
            return; // exhausted
        const WorkSegment &seg = segments_[seg_idx_];
        if (!seg_started_) {
            seg_started_ = true;
            k_ = seg.begin;
            // Row bounds (merge-path / group metadata reads).
            push_line_ops(map_.row_ptr_addr(seg.row), 8,
                          TraceOpKind::kLoad);
            continue;
        }
        if (k_ < seg.end) {
            // One non-zero: column index, A value, the XW row, then
            // the SIMD multiply-accumulate into registers.
            push_line_ops(map_.col_addr(k_), 4, TraceOpKind::kLoad);
            push_line_ops(map_.val_addr(k_),
                          static_cast<uint64_t>(map_.value_bytes),
                          TraceOpKind::kLoad);
            index_t col = a_.col_idx()[k_];
            push_line_ops(map_.xw_row_addr(col),
                          static_cast<uint64_t>(map_.dim) *
                              map_.value_bytes,
                          TraceOpKind::kLoad);
            pending_.push_back(
                {TraceOpKind::kCompute, compute_per_nnz_, 0});
            ++k_;
            continue;
        }
        // Commit the output row and move to the next segment.
        pending_.push_back({TraceOpKind::kCompute, 2, 0});
        push_line_ops(map_.c_row_addr(seg.row),
                      static_cast<uint64_t>(map_.dim) * map_.value_bytes,
                      seg.atomic ? TraceOpKind::kAtomicRmw
                                 : TraceOpKind::kStore);
        ++seg_idx_;
        seg_started_ = false;
    }
}

bool
SegmentTraceSource::next(TraceOp &op)
{
    if (pending_pos_ >= pending_.size()) {
        refill();
        if (pending_.empty())
            return false;
    }
    op = pending_[pending_pos_++];
    return true;
}

std::vector<std::unique_ptr<TraceSource>>
make_mergepath_trace_sources(const CsrMatrix &a, const SpmmAddressMap &map,
                             const MulticoreConfig &config)
{
    MergePathSchedule sched =
        MergePathSchedule::build(a, config.num_cores);
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.reserve(static_cast<size_t>(config.num_cores));
    for (int core = 0; core < config.num_cores; ++core) {
        ResolvedWork w = sched.resolve(static_cast<index_t>(core), a);
        std::vector<WorkSegment> segments;
        if (w.has_head()) {
            segments.push_back(
                {w.head_row, w.head_begin, w.head_end, w.head_atomic});
        }
        for (index_t r = w.first_complete_row; r < w.last_complete_row;
             ++r) {
            segments.push_back({r, a.row_begin(r), a.row_end(r), false});
        }
        if (w.has_tail()) {
            segments.push_back(
                {w.tail_row, w.tail_begin, w.tail_end, w.tail_atomic});
        }
        sources.push_back(std::make_unique<SegmentTraceSource>(
            a, map, config, std::move(segments)));
    }
    return sources;
}

std::vector<std::unique_ptr<TraceSource>>
make_gnnadvisor_trace_sources(const CsrMatrix &a, const SpmmAddressMap &map,
                              const MulticoreConfig &config,
                              index_t ng_size)
{
    if (ng_size <= 0)
        ng_size = default_neighbor_group_size(a);
    std::vector<NeighborGroup> groups = build_neighbor_groups(a, ng_size);

    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.reserve(static_cast<size_t>(config.num_cores));
    // Block-cyclic distribution: small contiguous blocks of groups go
    // to successive cores — the multicore analogue of consecutive GPU
    // warp blocks landing on different SMs. An evil row's many groups
    // therefore spread over many cores, whose atomic commits to the
    // shared output row serialize through the coherence protocol (the
    // Figure 9 pathology for GNNAdvisor on Cora and Nell), while short
    // neighboring rows mostly stay on one core.
    const size_t block = 8;
    const size_t stride = block * static_cast<size_t>(config.num_cores);
    for (int core = 0; core < config.num_cores; ++core) {
        std::vector<WorkSegment> segments;
        for (size_t base = static_cast<size_t>(core) * block;
             base < groups.size(); base += stride) {
            size_t end = std::min(base + block, groups.size());
            for (size_t g = base; g < end; ++g) {
                // Every group commits atomically: the group cannot
                // know whether other groups share its row.
                segments.push_back({groups[g].row, groups[g].begin,
                                    groups[g].end, true});
            }
        }
        sources.push_back(std::make_unique<SegmentTraceSource>(
            a, map, config, std::move(segments)));
    }
    return sources;
}

MulticoreResult
run_spmm_on_multicore(const CsrMatrix &a, index_t dim,
                      const MulticoreConfig &config,
                      const std::string &kernel_name)
{
    SpmmAddressMap map = SpmmAddressMap::create(
        a, dim, config.value_bytes, config.line_bytes);
    std::vector<std::unique_ptr<TraceSource>> sources;
    if (kernel_name == "mergepath") {
        sources = make_mergepath_trace_sources(a, map, config);
    } else if (kernel_name == "gnnadvisor") {
        sources = make_gnnadvisor_trace_sources(a, map, config);
    } else {
        fatal("multicore runner knows 'mergepath' and 'gnnadvisor', got '" +
              kernel_name + "'");
    }
    MulticoreSystem system(config);
    return system.run(std::move(sources));
}

} // namespace mps
