/**
 * @file
 * Trace generators that replay the SpMM kernels on the multicore model.
 *
 * Each core executes one logical thread (the paper's one-to-one
 * mapping). The generators walk the same work assignment the portable
 * kernels use — the merge-path ThreadWork resolution for
 * MergePath-SpMM, contiguous neighbor-group chunks for GNNAdvisor —
 * and emit loads/stores/atomics against a synthetic address map, plus
 * SIMD compute ops (four 16-bit lanes per Table I).
 */
#ifndef MPS_MULTICORE_TRACEGEN_H
#define MPS_MULTICORE_TRACEGEN_H

#include <memory>
#include <string>
#include <vector>

#include "mps/multicore/config.h"
#include "mps/multicore/system.h"
#include "mps/multicore/trace.h"
#include "mps/sparse/csr_matrix.h"

namespace mps {

/** Synthetic physical layout of one SpMM's operands. */
struct SpmmAddressMap
{
    uint64_t row_ptr_base = 0;
    uint64_t col_idx_base = 0;
    uint64_t values_base = 0;
    uint64_t xw_base = 0;
    uint64_t c_base = 0;
    index_t dim = 0;
    int value_bytes = 2;

    uint64_t row_ptr_addr(index_t i) const {
        return row_ptr_base + static_cast<uint64_t>(i) * 4;
    }
    uint64_t col_addr(index_t k) const {
        return col_idx_base + static_cast<uint64_t>(k) * 4;
    }
    uint64_t val_addr(index_t k) const {
        return values_base +
               static_cast<uint64_t>(k) * static_cast<uint64_t>(value_bytes);
    }
    uint64_t xw_row_addr(index_t row) const {
        return xw_base + static_cast<uint64_t>(row) * dim * value_bytes;
    }
    uint64_t c_row_addr(index_t row) const {
        return c_base + static_cast<uint64_t>(row) * dim * value_bytes;
    }

    /** Lay out the operands of @p a x (n x dim) with line-aligned bases. */
    static SpmmAddressMap create(const CsrMatrix &a, index_t dim,
                                 int value_bytes, int line_bytes);
};

/**
 * A contiguous run of one row's non-zeros assigned to a core, with its
 * output-commit discipline.
 */
struct WorkSegment
{
    index_t row;
    index_t begin; ///< first nnz index
    index_t end;   ///< one past the last nnz index
    bool atomic;   ///< commit with an atomic RMW instead of a store
};

/**
 * TraceSource that executes a list of WorkSegments: per segment it
 * loads the row bounds, streams column/value/XW data for every
 * non-zero with SIMD compute ops, and commits the output row.
 */
class SegmentTraceSource final : public TraceSource
{
  public:
    SegmentTraceSource(const CsrMatrix &a, const SpmmAddressMap &map,
                       const MulticoreConfig &config,
                       std::vector<WorkSegment> segments);

    bool next(TraceOp &op) override;

  private:
    void refill();
    void push_line_ops(uint64_t addr, uint64_t bytes, TraceOpKind kind);

    const CsrMatrix &a_;
    SpmmAddressMap map_;
    int line_bytes_;
    uint32_t compute_per_nnz_;
    std::vector<WorkSegment> segments_;

    size_t seg_idx_ = 0;
    index_t k_ = 0;
    bool seg_started_ = false;

    std::vector<TraceOp> pending_;
    size_t pending_pos_ = 0;
};

/**
 * One MergePath-SpMM trace per core (threads == cores, Figure 9
 * methodology): the merge-path cost scales with the graph size and
 * core count; split rows commit atomically, complete rows with plain
 * stores.
 */
std::vector<std::unique_ptr<TraceSource>> make_mergepath_trace_sources(
    const CsrMatrix &a, const SpmmAddressMap &map,
    const MulticoreConfig &config);

/**
 * One GNNAdvisor trace per core: neighbor groups (size = average
 * degree unless @p ng_size > 0) distributed in contiguous chunks;
 * every commit is atomic.
 */
std::vector<std::unique_ptr<TraceSource>> make_gnnadvisor_trace_sources(
    const CsrMatrix &a, const SpmmAddressMap &map,
    const MulticoreConfig &config, index_t ng_size = 0);

/**
 * Convenience runner: build the traces for @p kernel_name ("mergepath"
 * or "gnnadvisor"), instantiate the machine and simulate one A x XW
 * kernel at dense dimension @p dim.
 */
MulticoreResult run_spmm_on_multicore(const CsrMatrix &a, index_t dim,
                                      const MulticoreConfig &config,
                                      const std::string &kernel_name);

} // namespace mps

#endif // MPS_MULTICORE_TRACEGEN_H
