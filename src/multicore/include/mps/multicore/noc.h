/**
 * @file
 * 2-D electrical mesh with X-Y dimension-ordered routing, per Table I:
 * 2-cycle hops (1 router + 1 link), 64-bit flits, infinite input
 * buffers, and link contention only — a link carries one flit per
 * cycle, so messages queue on busy links.
 */
#ifndef MPS_MULTICORE_NOC_H
#define MPS_MULTICORE_NOC_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mps/multicore/config.h"

namespace mps {

/** Mesh network timing model with link reservations. */
class MeshNoc
{
  public:
    /**
     * @param num_cores must be a power of two; the mesh is the most
     * square width x height factorization (e.g. 128 cores -> 16 x 8).
     */
    MeshNoc(int num_cores, const MulticoreConfig &config);

    /**
     * Route a @p flits-flit message from @p src to @p dst, injecting at
     * time @p now. Each traversed link is a fluid queue: it drains one
     * flit per cycle, a message waits behind the link's current
     * backlog and then adds its own flits to it. The backlog decays
     * with simulated time, so a reply scheduled into the future does
     * not hard-block earlier messages (the event loop resolves whole
     * transactions at once), while sustained over-subscription still
     * produces queueing delay. Returns the head-flit arrival time plus
     * tail serialization at the destination.
     */
    double route(int src, int dst, int flits, double now);

    /** Manhattan hop distance between two cores. */
    int distance(int src, int dst) const;

    /** Total flit-cycles of link occupancy so far (traffic stat). */
    double link_occupancy() const { return occupancy_; }

    int width() const { return width_; }
    int height() const { return height_; }
    /** Mesh diameter in hops (for broadcast-latency estimates). */
    int diameter() const { return width_ - 1 + height_ - 1; }

  private:
    // Link array layout: for each node, 4 outgoing directions
    // (+x, -x, +y, -y); off-mesh directions are simply unused.
    size_t link_index(int node, int dir) const;

    /** Fluid-queue state of one link (drains 1 flit per cycle). */
    struct Link
    {
        double anchor = 0.0;  ///< time the backlog was last updated
        double backlog = 0.0; ///< flits still queued at anchor
    };

    int width_;
    int height_;
    int hop_cycles_;
    std::vector<Link> links_;
    double occupancy_ = 0.0;
};

} // namespace mps

#endif // MPS_MULTICORE_NOC_H
