/**
 * @file
 * Set-associative cache tag array with LRU replacement and per-line
 * coherence state, used for both the private L1s and the shared L2
 * slices of the multicore model.
 */
#ifndef MPS_MULTICORE_CACHE_H
#define MPS_MULTICORE_CACHE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mps {

/** Coherence state of a cached line (MESI with E folded into M). */
enum class LineState : uint8_t {
    kInvalid = 0,
    kShared,
    kModified,
};

/** Result of a cache lookup/fill. */
struct CacheFillResult
{
    /** A valid line was evicted to make room. */
    bool evicted = false;
    /** Address of the evicted line (line-aligned). */
    uint64_t evicted_addr = 0;
    /** The evicted line was dirty (kModified). */
    bool evicted_dirty = false;
};

/**
 * Tag array: capacity/line_size lines, LRU within each set. The cache
 * stores no data, only tags + state (timing model).
 */
class CacheArray
{
  public:
    /**
     * @param capacity_bytes total capacity
     * @param assoc ways per set (clamped to the line count)
     * @param line_bytes line size (power of two)
     */
    CacheArray(int64_t capacity_bytes, int assoc, int line_bytes);

    /** State of @p addr's line, kInvalid when absent. */
    LineState lookup(uint64_t addr) const;

    /** Set the state of a present line; panics when absent. */
    void set_state(uint64_t addr, LineState state);

    /** Touch for LRU (on hits). */
    void touch(uint64_t addr);

    /**
     * Insert @p addr with @p state, evicting the set's LRU victim if
     * needed. Touching an already-present line just updates its state.
     */
    CacheFillResult fill(uint64_t addr, LineState state);

    /** Drop a line (invalidation); no-op when absent. */
    void invalidate(uint64_t addr);

    int64_t hits() const { return hits_; }
    int64_t misses() const { return misses_; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        LineState state = LineState::kInvalid;
        uint64_t lru = 0;
    };

    size_t set_index(uint64_t addr) const;
    uint64_t tag_of(uint64_t addr) const;
    Way *find(uint64_t addr);
    const Way *find(uint64_t addr) const;

    int line_shift_;
    size_t num_sets_;
    int assoc_;
    std::vector<Way> ways_; // num_sets * assoc
    uint64_t clock_ = 0;
    mutable int64_t hits_ = 0;
    mutable int64_t misses_ = 0;
};

} // namespace mps

#endif // MPS_MULTICORE_CACHE_H
