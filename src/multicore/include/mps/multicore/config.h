/**
 * @file
 * Configuration of the simulated large-core-count multicore (Table I of
 * the paper): single-threaded in-order cores at 1 GHz, private L1s, a
 * shared L2 physically distributed as one slice per core, an
 * invalidation-based MESI directory with Limited-4 sharer pointers, a
 * 2-D electrical mesh with X-Y routing and link contention, and
 * distributed memory controllers at the chip boundary.
 *
 * scaled_to() implements the paper's scaling methodology: when the core
 * count shrinks, per-core cache capacity grows to keep the total
 * on-chip capacity constant, and the controller count shrinks while
 * total DRAM bandwidth stays constant.
 */
#ifndef MPS_MULTICORE_CONFIG_H
#define MPS_MULTICORE_CONFIG_H

#include <cstdint>

namespace mps {

/** Table I machine description. */
struct MulticoreConfig
{
    /** Cores (must be a perfect square for the mesh). */
    int num_cores = 1024;
    /** Core clock in GHz (cycles below are core cycles). */
    double clock_ghz = 1.0;

    /** Private L1 data cache capacity per core (bytes). */
    int64_t l1_bytes = 4 * 1024;
    int l1_assoc = 4;
    int l1_latency = 1;

    /** Shared L2 slice capacity per core (bytes); 8 MB total at 1024. */
    int64_t l2_slice_bytes = 8 * 1024;
    int l2_assoc = 8;
    int l2_latency = 6;

    /** Cache line size (bytes). */
    int line_bytes = 64;

    /** Directory sharer pointers before forced eviction (Limited-4). */
    int directory_pointers = 4;
    /** Directory/L2 slice lookup occupancy per request (cycles). */
    int directory_occupancy = 2;

    /** Mesh hop latency: 1 router + 1 link cycle. */
    int hop_cycles = 2;
    /** Link width in bits (64-bit flits). */
    int flit_bits = 64;
    /** Control message size in flits (header only). */
    int control_flits = 1;

    /** Memory controllers at the chip boundary. */
    int num_mem_controllers = 32;
    /** Total DRAM bandwidth (GB/s), split across the controllers. */
    double dram_total_gbps = 320.0;
    /** DRAM access latency (ns). */
    double dram_latency_ns = 100.0;

    /** SIMD lanes per core: four 16-bit operations per cycle. */
    int simd_lanes = 4;
    /** Bytes of a dense matrix element (16-bit values). */
    int value_bytes = 2;

    /** DRAM latency in core cycles. */
    double dram_latency_cycles() const {
        return dram_latency_ns * clock_ghz;
    }

    /**
     * Cycles one controller needs to transfer a cache line, derived
     * from its share of the total bandwidth.
     */
    double dram_line_service_cycles() const {
        double per_ctrl_bytes_per_cycle =
            dram_total_gbps / clock_ghz / num_mem_controllers;
        return line_bytes / per_ctrl_bytes_per_cycle;
    }

    /**
     * The Table I machine rescaled to @p cores: total cache capacity
     * and total DRAM bandwidth stay constant (per-core caches grow,
     * controllers shrink proportionally, minimum 2).
     */
    MulticoreConfig scaled_to(int cores) const;

    /** The paper's 1024-core configuration. */
    static MulticoreConfig table1() { return {}; }
};

} // namespace mps

#endif // MPS_MULTICORE_CONFIG_H
