/**
 * @file
 * The Table I multicore timing model.
 *
 * Discrete-event, trace-driven simulation: every core is a
 * single-issue in-order machine with one outstanding memory request
 * (so a core is fully described by the time it becomes ready again),
 * and the event loop advances the globally earliest core. Memory
 * requests traverse: private L1 -> home directory/L2 slice (selected
 * by line interleaving) over the mesh -> owner core or boundary memory
 * controller. The directory implements invalidation-based MESI with
 * Limited-4 sharer pointers (E is folded into M; pointer overflow
 * evicts a sharer, as in the limited-directory literature).
 */
#ifndef MPS_MULTICORE_SYSTEM_H
#define MPS_MULTICORE_SYSTEM_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mps/multicore/cache.h"
#include "mps/multicore/config.h"
#include "mps/multicore/noc.h"
#include "mps/multicore/trace.h"

namespace mps {

/** Per-core outcome counters. */
struct CoreStats
{
    double compute_cycles = 0.0;
    double memory_cycles = 0.0;
    double finish_time = 0.0;
    int64_t loads = 0;
    int64_t stores = 0;
    int64_t atomics = 0;
    int64_t l1_hits = 0;
    int64_t l1_misses = 0;
};

/** Aggregate simulation outcome. */
struct MulticoreResult
{
    /** Parallel completion time: the last core's finish (cycles). */
    double completion_cycles = 0.0;
    /** Mean per-core cycles spent computing. */
    double avg_compute_cycles = 0.0;
    /** Mean per-core cycles stalled on memory. */
    double avg_memory_cycles = 0.0;
    int64_t total_l1_misses = 0;
    int64_t total_dram_lines = 0;
    int64_t total_invalidations = 0;
    /** Sharing misses: requests served by another core's dirty copy. */
    int64_t total_forwards = 0;
    std::vector<CoreStats> cores;
};

/** The simulated machine. */
class MulticoreSystem
{
  public:
    explicit MulticoreSystem(const MulticoreConfig &config);

    /**
     * Run one trace source per core to completion (sources.size() must
     * equal the configured core count) and return the timing outcome.
     */
    MulticoreResult run(std::vector<std::unique_ptr<TraceSource>> sources);

    const MulticoreConfig &config() const { return config_; }

  private:
    /**
     * Directory record for one line's L1 copies. Sharers are tracked
     * with up to directory_pointers precise pointers (Limited-4 /
     * ACKwise-style): when the pointer set overflows, the entry falls
     * into broadcast mode — reads proceed untracked and a later write
     * invalidates by broadcast.
     */
    struct DirEntry
    {
        LineState state = LineState::kInvalid; // kInvalid = no L1 copy
        int32_t owner = -1;                    // valid when kModified
        bool broadcast = false;                // pointer overflow mode
        std::array<int32_t, 8> sharers{};
        int num_sharers = 0;

        bool has_sharer(int core) const;
        void add_sharer(int core);
        void remove_sharer(int core);
    };

    uint64_t line_of(uint64_t addr) const;
    int home_of(uint64_t line) const;
    int controller_core(uint64_t line) const;

    /** Serialize at a directory slice; returns post-occupancy time. */
    double directory_occupy(int home, double t);

    /** DRAM access issued from @p home at @p t; returns data-ready. */
    double dram_access(int home, uint64_t line, double t);

    /** Handle an L1 fill's eviction (writeback + directory update). */
    void handle_l1_eviction(int core, const CacheFillResult &fill,
                            double now);

    /**
     * Process one memory operation for @p core at @p now; returns its
     * total latency in cycles.
     */
    double access(int core, uint64_t addr, TraceOpKind kind, double now);

    MulticoreConfig config_;
    MeshNoc noc_;
    std::vector<CacheArray> l1_;
    std::vector<CacheArray> l2_;
    std::vector<double> dir_free_;
    std::vector<double> ctrl_free_;
    std::unordered_map<uint64_t, DirEntry> directory_;
    MulticoreResult stats_;
};

} // namespace mps

#endif // MPS_MULTICORE_SYSTEM_H
