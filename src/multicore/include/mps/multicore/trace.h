/**
 * @file
 * Per-core instruction/memory traces for the multicore simulator.
 *
 * The timing model is trace-driven: each core consumes a stream of
 * TraceOps produced lazily by a TraceSource (one per core). The trace
 * generators in tracegen.h replay the *actual* kernel schedules
 * (merge-path ThreadWork, GNNAdvisor neighbor groups) against a
 * synthetic address map, so the simulated machine sees exactly the
 * sharing and reuse pattern of the real kernels.
 */
#ifndef MPS_MULTICORE_TRACE_H
#define MPS_MULTICORE_TRACE_H

#include <cstdint>

namespace mps {

/** Kind of one trace operation. */
enum class TraceOpKind : uint8_t {
    kCompute,   ///< busy for `cycles` core cycles (SIMD MACs, control)
    kLoad,      ///< read `addr`
    kStore,     ///< write `addr` (requires exclusive ownership)
    kAtomicRmw, ///< atomic read-modify-write of `addr`
};

/** One operation of a core's instruction stream. */
struct TraceOp
{
    TraceOpKind kind;
    uint32_t cycles;  ///< for kCompute
    uint64_t addr;    ///< for memory ops (byte address)
};

/** Lazily generated per-core operation stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next operation into @p op.
     * @return false when the stream is exhausted.
     */
    virtual bool next(TraceOp &op) = 0;
};

} // namespace mps

#endif // MPS_MULTICORE_TRACE_H
