#include "mps/multicore/system.h"

#include <algorithm>
#include <queue>

#include "mps/util/log.h"

namespace mps {

MulticoreConfig
MulticoreConfig::scaled_to(int cores) const
{
    MPS_CHECK(cores >= 1 && cores <= num_cores,
              "can only scale down from the base configuration");
    MulticoreConfig c = *this;
    int factor = num_cores / cores;
    MPS_CHECK(factor * cores == num_cores,
              "core count must divide the base core count");
    c.num_cores = cores;
    // Keep total on-chip cache capacity constant.
    c.l1_bytes = l1_bytes * factor;
    c.l2_slice_bytes = l2_slice_bytes * factor;
    // Fewer controllers, same total DRAM bandwidth.
    c.num_mem_controllers =
        std::max(2, num_mem_controllers * cores / num_cores);
    return c;
}

bool
MulticoreSystem::DirEntry::has_sharer(int core) const
{
    for (int i = 0; i < num_sharers; ++i) {
        if (sharers[static_cast<size_t>(i)] == core)
            return true;
    }
    return false;
}

void
MulticoreSystem::DirEntry::add_sharer(int core)
{
    if (!has_sharer(core) &&
        num_sharers < static_cast<int>(sharers.size())) {
        sharers[static_cast<size_t>(num_sharers++)] = core;
    }
}

void
MulticoreSystem::DirEntry::remove_sharer(int core)
{
    for (int i = 0; i < num_sharers; ++i) {
        if (sharers[static_cast<size_t>(i)] == core) {
            sharers[static_cast<size_t>(i)] =
                sharers[static_cast<size_t>(num_sharers - 1)];
            --num_sharers;
            return;
        }
    }
}

MulticoreSystem::MulticoreSystem(const MulticoreConfig &config)
    : config_(config), noc_(config.num_cores, config)
{
    MPS_CHECK(config.directory_pointers >= 1 &&
                  config.directory_pointers <= 8,
              "directory pointers must be in [1, 8]");
    l1_.reserve(static_cast<size_t>(config.num_cores));
    l2_.reserve(static_cast<size_t>(config.num_cores));
    for (int c = 0; c < config.num_cores; ++c) {
        l1_.emplace_back(config.l1_bytes, config.l1_assoc,
                         config.line_bytes);
        l2_.emplace_back(config.l2_slice_bytes, config.l2_assoc,
                         config.line_bytes);
    }
    dir_free_.assign(static_cast<size_t>(config.num_cores), 0.0);
    ctrl_free_.assign(static_cast<size_t>(config.num_mem_controllers),
                      0.0);
    stats_.cores.assign(static_cast<size_t>(config.num_cores),
                        CoreStats{});
}

uint64_t
MulticoreSystem::line_of(uint64_t addr) const
{
    return addr / static_cast<uint64_t>(config_.line_bytes);
}

int
MulticoreSystem::home_of(uint64_t line) const
{
    return static_cast<int>(line %
                            static_cast<uint64_t>(config_.num_cores));
}

int
MulticoreSystem::controller_core(uint64_t line) const
{
    // Controllers sit on the top and bottom mesh edges, spread evenly.
    int ctrl = static_cast<int>(
        line % static_cast<uint64_t>(config_.num_mem_controllers));
    int width = noc_.width();
    int height = noc_.height();
    int half = std::max(1, config_.num_mem_controllers / 2);
    if (ctrl < half) {
        int x = std::min(width - 1, ctrl * width / half);
        return x; // top row (y = 0)
    }
    int x = std::min(width - 1, (ctrl - half) * width / half);
    return (height - 1) * width + x; // bottom row
}

double
MulticoreSystem::directory_occupy(int home, double t)
{
    double depart = std::max(t, dir_free_[static_cast<size_t>(home)]);
    dir_free_[static_cast<size_t>(home)] =
        depart + config_.directory_occupancy;
    return depart + config_.directory_occupancy;
}

double
MulticoreSystem::dram_access(int home, uint64_t line, double t)
{
    int ctrl = static_cast<int>(
        line % static_cast<uint64_t>(config_.num_mem_controllers));
    int ctrl_core = controller_core(line);
    double at_ctrl =
        noc_.route(home, ctrl_core, config_.control_flits, t);
    double depart =
        std::max(at_ctrl, ctrl_free_[static_cast<size_t>(ctrl)]);
    ctrl_free_[static_cast<size_t>(ctrl)] =
        depart + config_.dram_line_service_cycles();
    double ready = depart + config_.dram_latency_cycles();
    ++stats_.total_dram_lines;
    int data_flits = config_.control_flits +
                     config_.line_bytes * 8 / config_.flit_bits;
    return noc_.route(ctrl_core, home, data_flits, ready);
}

void
MulticoreSystem::handle_l1_eviction(int core, const CacheFillResult &fill,
                                    double now)
{
    if (!fill.evicted)
        return;
    uint64_t line = line_of(fill.evicted_addr);
    int home = home_of(line);
    auto it = directory_.find(line);
    if (fill.evicted_dirty) {
        // Writeback travels to the home slice off the critical path;
        // the L2 slice becomes the holder of the only copy.
        int data_flits = config_.control_flits +
                         config_.line_bytes * 8 / config_.flit_bits;
        noc_.route(core, home, data_flits, now);
        l2_[static_cast<size_t>(home)].fill(fill.evicted_addr,
                                            LineState::kShared);
        if (it != directory_.end()) {
            it->second.state = LineState::kInvalid;
            it->second.owner = -1;
            it->second.num_sharers = 0;
            it->second.broadcast = false;
        }
    } else if (it != directory_.end()) {
        // Clean (shared) eviction: drop the pointer if present; a
        // stale pointer would only cause a harmless spurious inval.
        it->second.remove_sharer(core);
        if (it->second.num_sharers == 0 &&
            it->second.state == LineState::kShared) {
            it->second.state = LineState::kInvalid;
        }
    }
}

double
MulticoreSystem::access(int core, uint64_t addr, TraceOpKind kind,
                        double now)
{
    CacheArray &l1 = l1_[static_cast<size_t>(core)];
    const bool is_write = kind != TraceOpKind::kLoad;
    const double rmw_cycles = kind == TraceOpKind::kAtomicRmw ? 2.0 : 0.0;
    const uint64_t line = line_of(addr);
    const uint64_t line_addr =
        line * static_cast<uint64_t>(config_.line_bytes);
    const int data_flits = config_.control_flits +
                           config_.line_bytes * 8 / config_.flit_bits;

    LineState l1_state = l1.lookup(addr);
    if (l1_state == LineState::kModified ||
        (l1_state == LineState::kShared && !is_write)) {
        ++stats_.cores[static_cast<size_t>(core)].l1_hits;
        l1.touch(addr);
        return config_.l1_latency + rmw_cycles;
    }
    ++stats_.cores[static_cast<size_t>(core)].l1_misses;

    const int home = home_of(line);
    // Request message to the home directory slice.
    double t = noc_.route(core, home, config_.control_flits,
                          now + config_.l1_latency);
    t = directory_occupy(home, t) + config_.l2_latency;

    DirEntry &entry = directory_[line];
    CacheArray &l2 = l2_[static_cast<size_t>(home)];
    double data_ready;

    if (entry.state == LineState::kModified && entry.owner != core) {
        // Dirty in another L1: forward; the owner supplies the data.
        int owner = entry.owner;
        double at_owner =
            noc_.route(home, owner, config_.control_flits, t) +
            config_.l1_latency;
        data_ready = noc_.route(owner, core, data_flits, at_owner);
        ++stats_.total_forwards;
        CacheArray &owner_l1 = l1_[static_cast<size_t>(owner)];
        if (is_write) {
            owner_l1.invalidate(line_addr);
            ++stats_.total_invalidations;
            entry.owner = core;
            entry.num_sharers = 0; // stays kModified, new owner
        } else {
            // Downgrade the owner to shared; the writeback refreshes
            // the home L2 slice off the critical path.
            if (owner_l1.lookup(line_addr) != LineState::kInvalid)
                owner_l1.set_state(line_addr, LineState::kShared);
            noc_.route(owner, home, data_flits, at_owner);
            l2.fill(line_addr, LineState::kShared);
            entry.state = LineState::kShared;
            entry.owner = -1;
            entry.num_sharers = 0;
            entry.add_sharer(owner);
        }
    } else {
        double inval_done = t;
        if (is_write && entry.state == LineState::kShared) {
            if (entry.broadcast) {
                // ACKwise overflow mode: invalidate by broadcast. The
                // latency is a worst-case round trip across the mesh
                // plus acknowledgement aggregation; copies are dropped
                // everywhere without per-sharer messages.
                int dropped = 0;
                for (int c = 0; c < config_.num_cores; ++c) {
                    if (c == core)
                        continue;
                    CacheArray &other = l1_[static_cast<size_t>(c)];
                    if (other.lookup(line_addr) != LineState::kInvalid) {
                        other.invalidate(line_addr);
                        ++dropped;
                    }
                }
                stats_.total_invalidations += dropped;
                int diameter = noc_.diameter();
                inval_done = t +
                             2.0 * diameter * config_.hop_cycles +
                             dropped; // ack serialization at the root
                entry.broadcast = false;
            } else {
                // Precise pointers: invalidate every other sharer; the
                // write completes when the slowest acknowledgement
                // reaches the requester.
                for (int i = 0; i < entry.num_sharers; ++i) {
                    int sharer = entry.sharers[static_cast<size_t>(i)];
                    if (sharer == core)
                        continue;
                    double at_sharer = noc_.route(
                        home, sharer, config_.control_flits, t);
                    l1_[static_cast<size_t>(sharer)].invalidate(
                        line_addr);
                    ++stats_.total_invalidations;
                    double ack =
                        noc_.route(sharer, core, config_.control_flits,
                                   at_sharer);
                    inval_done = std::max(inval_done, ack);
                }
            }
            entry.num_sharers = 0;
        }
        // Data comes from the home slice, or DRAM below it. A writer
        // upgrading an existing shared copy needs no data transfer.
        double data_at_home = t;
        bool need_data = !(is_write && l1_state == LineState::kShared);
        if (need_data && l2.lookup(line_addr) == LineState::kInvalid) {
            data_at_home = dram_access(home, line, t);
            l2.fill(line_addr, LineState::kShared);
        } else if (need_data) {
            l2.touch(line_addr);
        }
        double reply = noc_.route(
            home, core, need_data ? data_flits : config_.control_flits,
            data_at_home);
        data_ready = std::max(reply, inval_done);
    }

    // Update the directory for the requester and fill its L1.
    if (is_write) {
        entry.state = LineState::kModified;
        entry.owner = core;
        entry.num_sharers = 0;
        entry.broadcast = false;
    } else {
        if (entry.state != LineState::kModified) {
            entry.state = LineState::kShared;
            if (!entry.broadcast && !entry.has_sharer(core)) {
                if (entry.num_sharers >= config_.directory_pointers) {
                    // Limited-4 pointer overflow: switch the entry to
                    // ACKwise broadcast mode (no copies are dropped; a
                    // later write pays a broadcast invalidation).
                    entry.broadcast = true;
                } else {
                    entry.add_sharer(core);
                }
            }
        }
    }
    CacheFillResult fill = l1.fill(
        line_addr,
        is_write ? LineState::kModified : LineState::kShared);
    handle_l1_eviction(core, fill, data_ready);

    return (data_ready - now) + config_.l1_latency + rmw_cycles;
}

MulticoreResult
MulticoreSystem::run(std::vector<std::unique_ptr<TraceSource>> sources)
{
    MPS_CHECK(static_cast<int>(sources.size()) == config_.num_cores,
              "need exactly one trace source per core, got ",
              sources.size());

    using Event = std::pair<double, int>; // (ready time, core)
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue;
    std::vector<double> core_time(static_cast<size_t>(config_.num_cores),
                                  0.0);
    for (int c = 0; c < config_.num_cores; ++c)
        queue.emplace(0.0, c);

    TraceOp op;
    while (!queue.empty()) {
        auto [now, core] = queue.top();
        queue.pop();
        CoreStats &cs = stats_.cores[static_cast<size_t>(core)];
        // Run this core for as long as it stays the globally earliest
        // one: bursts of compute and L1 hits advance without paying a
        // queue round trip, while global event order is preserved.
        bool finished = false;
        for (;;) {
            if (!sources[static_cast<size_t>(core)]->next(op)) {
                cs.finish_time = now;
                finished = true;
                break;
            }
            switch (op.kind) {
              case TraceOpKind::kCompute:
                now += op.cycles;
                cs.compute_cycles += op.cycles;
                break;
              case TraceOpKind::kLoad:
              case TraceOpKind::kStore:
              case TraceOpKind::kAtomicRmw: {
                double latency = access(core, op.addr, op.kind, now);
                now += latency;
                cs.memory_cycles += latency;
                if (op.kind == TraceOpKind::kLoad)
                    ++cs.loads;
                else if (op.kind == TraceOpKind::kStore)
                    ++cs.stores;
                else
                    ++cs.atomics;
                break;
              }
            }
            if (!queue.empty() && now > queue.top().first)
                break;
        }
        if (!finished) {
            core_time[static_cast<size_t>(core)] = now;
            queue.emplace(now, core);
        }
    }

    double sum_compute = 0.0, sum_memory = 0.0;
    for (const CoreStats &cs : stats_.cores) {
        stats_.completion_cycles =
            std::max(stats_.completion_cycles, cs.finish_time);
        sum_compute += cs.compute_cycles;
        sum_memory += cs.memory_cycles;
        stats_.total_l1_misses += cs.l1_misses;
    }
    stats_.avg_compute_cycles = sum_compute / config_.num_cores;
    stats_.avg_memory_cycles = sum_memory / config_.num_cores;
    return stats_;
}

} // namespace mps
