#include "mps/multicore/cache.h"

#include <algorithm>

#include "mps/util/log.h"

namespace mps {

namespace {

int
log2_exact(int64_t v)
{
    MPS_CHECK(v > 0 && (v & (v - 1)) == 0, "value must be a power of two: ",
              v);
    int shift = 0;
    while ((int64_t{1} << shift) < v)
        ++shift;
    return shift;
}

} // namespace

CacheArray::CacheArray(int64_t capacity_bytes, int assoc, int line_bytes)
{
    MPS_CHECK(capacity_bytes > 0 && assoc > 0 && line_bytes > 0,
              "bad cache geometry");
    line_shift_ = log2_exact(line_bytes);
    int64_t lines = capacity_bytes / line_bytes;
    MPS_CHECK(lines > 0, "cache smaller than one line");
    assoc_ = static_cast<int>(std::min<int64_t>(assoc, lines));
    num_sets_ = static_cast<size_t>(lines / assoc_);
    MPS_CHECK(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0,
              "set count must be a power of two, got ", num_sets_);
    ways_.assign(num_sets_ * static_cast<size_t>(assoc_), Way{});
}

size_t
CacheArray::set_index(uint64_t addr) const
{
    return static_cast<size_t>((addr >> line_shift_) &
                               (num_sets_ - 1));
}

uint64_t
CacheArray::tag_of(uint64_t addr) const
{
    return addr >> line_shift_;
}

CacheArray::Way *
CacheArray::find(uint64_t addr)
{
    size_t base = set_index(addr) * static_cast<size_t>(assoc_);
    uint64_t tag = tag_of(addr);
    for (int w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + static_cast<size_t>(w)];
        if (way.state != LineState::kInvalid && way.tag == tag)
            return &way;
    }
    return nullptr;
}

const CacheArray::Way *
CacheArray::find(uint64_t addr) const
{
    return const_cast<CacheArray *>(this)->find(addr);
}

LineState
CacheArray::lookup(uint64_t addr) const
{
    const Way *way = find(addr);
    if (way == nullptr) {
        ++misses_;
        return LineState::kInvalid;
    }
    ++hits_;
    return way->state;
}

void
CacheArray::set_state(uint64_t addr, LineState state)
{
    Way *way = find(addr);
    MPS_CHECK(way != nullptr, "set_state on absent line");
    way->state = state;
}

void
CacheArray::touch(uint64_t addr)
{
    Way *way = find(addr);
    if (way != nullptr)
        way->lru = ++clock_;
}

CacheFillResult
CacheArray::fill(uint64_t addr, LineState state)
{
    CacheFillResult result;
    Way *way = find(addr);
    if (way != nullptr) {
        way->state = state;
        way->lru = ++clock_;
        return result;
    }
    size_t base = set_index(addr) * static_cast<size_t>(assoc_);
    Way *victim = &ways_[base];
    for (int w = 0; w < assoc_; ++w) {
        Way &candidate = ways_[base + static_cast<size_t>(w)];
        if (candidate.state == LineState::kInvalid) {
            victim = &candidate;
            break;
        }
        if (candidate.lru < victim->lru)
            victim = &candidate;
    }
    if (victim->state != LineState::kInvalid) {
        result.evicted = true;
        result.evicted_addr = victim->tag << line_shift_;
        result.evicted_dirty = victim->state == LineState::kModified;
    }
    victim->tag = tag_of(addr);
    victim->state = state;
    victim->lru = ++clock_;
    return result;
}

void
CacheArray::invalidate(uint64_t addr)
{
    Way *way = find(addr);
    if (way != nullptr)
        way->state = LineState::kInvalid;
}

} // namespace mps
