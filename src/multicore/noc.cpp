#include "mps/multicore/noc.h"

#include <algorithm>
#include <cmath>

#include "mps/util/log.h"

namespace mps {

MeshNoc::MeshNoc(int num_cores, const MulticoreConfig &config)
    : hop_cycles_(config.hop_cycles)
{
    MPS_CHECK(num_cores >= 1 && (num_cores & (num_cores - 1)) == 0,
              "mesh needs a power-of-two core count, got ", num_cores);
    // Most-square factorization: 64 -> 8x8, 128 -> 16x8, 512 -> 32x16.
    width_ = 1;
    while (width_ * width_ < num_cores)
        width_ *= 2;
    height_ = num_cores / width_;
    MPS_CHECK(width_ * height_ == num_cores, "mesh factorization bug");
    links_.assign(static_cast<size_t>(num_cores) * 4, Link{});
}

size_t
MeshNoc::link_index(int node, int dir) const
{
    return static_cast<size_t>(node) * 4 + static_cast<size_t>(dir);
}

int
MeshNoc::distance(int src, int dst) const
{
    int sx = src % width_, sy = src / width_;
    int dx = dst % width_, dy = dst / width_;
    return std::abs(sx - dx) + std::abs(sy - dy);
}

double
MeshNoc::route(int src, int dst, int flits, double now)
{
    if (src == dst)
        return now; // local slice: no network traversal
    int x = src % width_, y = src / width_;
    const int dx = dst % width_, dy = dst / width_;
    double t = now;

    auto traverse = [&](int node, int dir) {
        Link &link = links_[link_index(node, dir)];
        occupancy_ += flits;
        double depart;
        if (t >= link.anchor) {
            // Decay the queued flits at one per cycle up to the
            // injection time, wait behind what remains, then append.
            link.backlog =
                std::max(0.0, link.backlog - (t - link.anchor));
            link.anchor = t;
            depart = t + link.backlog;
            link.backlog += flits;
        } else {
            // A message timestamped before the link's anchor (the
            // anchor was advanced by a future-scheduled reply of an
            // already-resolved transaction): let it pass using the
            // earlier slack, but still account its bandwidth.
            depart = t;
            link.backlog += flits;
        }
        t = depart + hop_cycles_;
    };

    // X first, then Y (dimension-ordered, deadlock free).
    while (x != dx) {
        int node = y * width_ + x;
        if (x < dx) {
            traverse(node, 0); // +x
            ++x;
        } else {
            traverse(node, 1); // -x
            --x;
        }
    }
    while (y != dy) {
        int node = y * width_ + x;
        if (y < dy) {
            traverse(node, 2); // +y
            ++y;
        } else {
            traverse(node, 3); // -y
            --y;
        }
    }
    // Tail flits drain behind the head at the destination.
    return t + (flits - 1);
}

} // namespace mps
