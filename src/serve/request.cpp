#include "mps/serve/request.h"

namespace mps {
namespace serve {

const char *
request_status_name(RequestStatus status)
{
    switch (status) {
    case RequestStatus::kOk:
        return "ok";
    case RequestStatus::kRejected:
        return "rejected";
    case RequestStatus::kTimeout:
        return "timeout";
    case RequestStatus::kShutdown:
        return "shutdown";
    case RequestStatus::kUnknownGraph:
        return "unknown-graph";
    case RequestStatus::kBadRequest:
        return "bad-request";
    }
    return "invalid";
}

} // namespace serve
} // namespace mps
