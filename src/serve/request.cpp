#include "mps/serve/request.h"

#include <atomic>

namespace mps {
namespace serve {

uint64_t
next_request_id()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

const char *
request_status_name(RequestStatus status)
{
    switch (status) {
    case RequestStatus::kOk:
        return "ok";
    case RequestStatus::kRejected:
        return "rejected";
    case RequestStatus::kTimeout:
        return "timeout";
    case RequestStatus::kShutdown:
        return "shutdown";
    case RequestStatus::kUnknownGraph:
        return "unknown-graph";
    case RequestStatus::kBadRequest:
        return "bad-request";
    }
    return "invalid";
}

} // namespace serve
} // namespace mps
