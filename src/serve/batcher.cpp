#include "mps/serve/batcher.h"

#include <limits>
#include <utility>

#include "mps/util/log.h"

namespace mps {
namespace serve {

Batcher::Batcher(BatchPolicy policy) : policy_(policy)
{
    MPS_CHECK(policy_.max_batch >= 1, "max_batch must be >= 1");
    MPS_CHECK(policy_.max_delay_us >= 0, "max_delay_us must be >= 0");
}

void
Batcher::add(RequestPtr request, int64_t now_us)
{
    request->arrival_us = now_us;
    Group &g = groups_[request->graph_id];
    if (g.requests.empty())
        g.oldest_us = now_us;
    g.requests.push_back(std::move(request));
    ++pending_;
}

bool
Batcher::group_ready(const Group &g, int64_t now_us) const
{
    if (g.requests.size() >= static_cast<size_t>(policy_.max_batch))
        return true;
    return now_us - g.oldest_us >= policy_.max_delay_us;
}

int64_t
Batcher::next_deadline_us() const
{
    int64_t deadline = std::numeric_limits<int64_t>::max();
    for (const auto &[id, g] : groups_) {
        (void)id;
        int64_t d =
            g.requests.size() >= static_cast<size_t>(policy_.max_batch)
                ? g.oldest_us
                : g.oldest_us + policy_.max_delay_us;
        deadline = std::min(deadline, d);
    }
    return deadline;
}

bool
Batcher::has_ready(int64_t now_us) const
{
    for (const auto &[id, g] : groups_) {
        (void)id;
        if (group_ready(g, now_us))
            return true;
    }
    return false;
}

std::vector<RequestPtr>
Batcher::take_ready(int64_t now_us)
{
    auto best = groups_.end();
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
        if (!group_ready(it->second, now_us))
            continue;
        if (best == groups_.end() ||
            it->second.oldest_us < best->second.oldest_us)
            best = it;
    }
    if (best == groups_.end())
        return {};
    return split_front(best);
}

std::vector<RequestPtr>
Batcher::take_any()
{
    auto best = groups_.end();
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
        if (best == groups_.end() ||
            it->second.oldest_us < best->second.oldest_us)
            best = it;
    }
    if (best == groups_.end())
        return {};
    return split_front(best);
}

std::vector<RequestPtr>
Batcher::split_front(std::map<uint64_t, Group>::iterator it)
{
    Group &g = it->second;
    const size_t take =
        std::min(g.requests.size(), static_cast<size_t>(policy_.max_batch));
    std::vector<RequestPtr> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i)
        batch.push_back(std::move(g.requests[i]));
    // A burst drain can pile more than max_batch into one group; the
    // overflow stays behind as a fresh group aged from its own arrival.
    if (take == g.requests.size()) {
        groups_.erase(it);
    } else {
        g.requests.erase(g.requests.begin(),
                         g.requests.begin() +
                             static_cast<ptrdiff_t>(take));
        g.oldest_us = g.requests.front()->arrival_us;
    }
    pending_ -= batch.size();
    return batch;
}

} // namespace serve
} // namespace mps
