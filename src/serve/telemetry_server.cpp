#include "mps/serve/telemetry_server.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/openmetrics.h"

namespace mps {
namespace serve {

namespace {

constexpr const char *kOpenMetricsContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/** Read until the header terminator, EOF or @p cap bytes. */
std::string
read_request(int fd, size_t cap = 8192)
{
    std::string data;
    char buf[1024];
    while (data.size() < cap) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        data.append(buf, static_cast<size_t>(n));
        if (data.find("\r\n\r\n") != std::string::npos)
            break;
    }
    return data;
}

void
write_all(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<size_t>(n);
    }
}

std::string
http_response(int status, const char *reason, const char *content_type,
              const std::string &body)
{
    std::string r = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
    r += body;
    return r;
}

/** The target of "GET <target> HTTP/1.x"; empty for anything else. */
std::string
parse_get_target(const std::string &request)
{
    if (request.rfind("GET ", 0) != 0)
        return "";
    const size_t end = request.find(' ', 4);
    if (end == std::string::npos)
        return "";
    return request.substr(4, end - 4);
}

} // namespace

TelemetryServer::TelemetryServer(Options options)
    : options_(std::move(options))
{
}

TelemetryServer::~TelemetryServer()
{
    stop();
}

bool
TelemetryServer::start()
{
    if (running_.load(std::memory_order_acquire))
        return true;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        warn("telemetry: socket() failed: " +
             std::string(std::strerror(errno)));
        return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
        warn("telemetry: cannot bind 127.0.0.1:" +
             std::to_string(options_.port) + ": " +
             std::string(std::strerror(errno)));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    // Resolve the bound port (meaningful for ephemeral port 0).
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_.store(static_cast<int>(ntohs(bound.sin_port)),
                    std::memory_order_release);

    stop_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread(&TelemetryServer::accept_loop, this);
    return true;
}

void
TelemetryServer::stop()
{
    if (!running_.exchange(false))
        return;
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    port_.store(-1, std::memory_order_release);
}

std::string
TelemetryServer::render_metrics()
{
    if (options_.pre_scrape)
        options_.pre_scrape();
    const MetricsRegistry &registry = options_.registry != nullptr
                                          ? *options_.registry
                                          : MetricsRegistry::global();
    return to_openmetrics(registry);
}

void
TelemetryServer::accept_loop()
{
    while (!stop_.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        // The 100ms poll bounds how long stop() waits for the join.
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0)
            continue;
        timeval tv{};
        tv.tv_sec = 2;
        ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

        const std::string target = parse_get_target(read_request(client));
        if (target == "/metrics" || target.rfind("/metrics?", 0) == 0) {
            write_all(client,
                      http_response(200, "OK", kOpenMetricsContentType,
                                    render_metrics()));
            scrapes_.fetch_add(1, std::memory_order_acq_rel);
        } else if (target == "/healthz") {
            write_all(client,
                      http_response(200, "OK", "text/plain", "ok\n"));
        } else {
            write_all(client, http_response(404, "Not Found",
                                            "text/plain", "not found\n"));
        }
        ::close(client);
    }
}

bool
http_get(const std::string &host, int port, const std::string &path,
         std::string *body, std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return fail("socket() failed: " +
                    std::string(std::strerror(errno)));
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return fail("not an IPv4 address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return fail("cannot connect to " + host + ":" +
                    std::to_string(port) + ": " +
                    std::string(std::strerror(errno)));
    }

    const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " +
                                host + "\r\nConnection: close\r\n\r\n";
    write_all(fd, request);

    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);

    const size_t line_end = response.find("\r\n");
    if (line_end == std::string::npos)
        return fail("malformed HTTP response");
    const std::string status_line = response.substr(0, line_end);
    if (status_line.find(" 200 ") == std::string::npos)
        return fail("HTTP status: " + status_line);
    const size_t header_end = response.find("\r\n\r\n");
    if (header_end == std::string::npos)
        return fail("missing header terminator");
    if (body != nullptr)
        *body = response.substr(header_end + 4);
    return true;
}

} // namespace serve
} // namespace mps
