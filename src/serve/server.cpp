#include "mps/serve/server.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "mps/core/fusion.h"
#include "mps/core/hybrid.h"
#include "mps/core/locality.h"
#include "mps/core/microkernel.h"
#include "mps/core/precision.h"
#include "mps/core/policy.h"
#include "mps/core/spmm.h"
#include "mps/gcn/activation.h"
#include "mps/gcn/gemm.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/trace.h"

namespace mps {
namespace serve {

namespace {

/**
 * Merge-path cost for a batch SpMM at effective dimension @p dim. Start
 * from the per-d tuned cost and raise it so the schedule never asks for
 * more than 64x oversubscription of the executing pool — a server keeps
 * many pools busy at once, so unbounded thread counts on huge graphs
 * would only add scheduling overhead. The oversubscription floor is
 * rounded up to a power of two so the cost — and with it the schedule
 * cache key — stays stable while edge churn drifts the nnz count;
 * a compaction therefore lands on the schedule repair_for_update()
 * migrated, instead of missing the cache over a one-edge cost change.
 * Deterministic per (graph-size bucket, dim, pool size), which keeps
 * the ScheduleCache key space small.
 */
index_t
serve_cost(const CsrMatrix &a, index_t dim, const WorkStealPool &pool)
{
    const index_t total = a.rows() + a.nnz();
    const index_t max_threads = static_cast<index_t>(pool.size()) * 64;
    const index_t floor_cost = (total + max_threads - 1) / max_threads;
    const index_t quantized = static_cast<index_t>(
        std::bit_ceil(static_cast<uint64_t>(std::max<index_t>(
            floor_cost, 1))));
    return std::max(default_merge_path_cost(dim), quantized);
}

/** Flow-event name connecting one request's spans across threads. */
constexpr const char *kRequestFlow = "serve.request";

/**
 * The batch executor prefers the two-phase hybrid schedule whenever
 * the cached row classification routes at least kHybridDenseFractionMin
 * of the nnz to dense bands — the same adaptive threshold AdaptiveSpmm
 * applies (mps/core/hybrid.h). Returns nullptr when hybrid dispatch is
 * off or the graph is not skewed enough; the caller then executes the
 * plain merge path. The hybrid entry shares the ScheduleCache with the
 * merge-path ones, so the classification is paid once per (graph, d).
 */
std::shared_ptr<const HybridSchedule>
preferred_hybrid(ScheduleCache &cache, const CsrMatrix &a, index_t cost)
{
    if (!hybrid_enabled())
        return nullptr;
    auto hs = cache.get_or_build_hybrid(a, cost, 0);
    if (hs != nullptr && hs->dense_fraction() >= kHybridDenseFractionMin)
        return hs;
    return nullptr;
}

/** ServerStats percentile block from a latency histogram snapshot. */
PercentileSummary
summary_from_histogram(const HistogramSnapshot &h)
{
    PercentileSummary s;
    s.count = static_cast<int64_t>(h.count);
    if (h.count == 0)
        return s;
    s.mean = h.mean();
    s.min = h.min;
    s.max = h.max;
    s.p50 = h.quantile(0.50);
    s.p95 = h.quantile(0.95);
    s.p99 = h.quantile(0.99);
    return s;
}

} // namespace

int
default_telemetry_port()
{
    const char *v = std::getenv("MPS_TELEMETRY_PORT");
    if (v == nullptr || *v == '\0')
        return -1;
    char *end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || parsed < 0 || parsed > 65535) {
        warn("MPS_TELEMETRY_PORT='" + std::string(v) +
             "' is not a port number; telemetry endpoint disabled");
        return -1;
    }
    return static_cast<int>(parsed);
}

Server::Server(ServeConfig config, ScheduleCache *cache)
    : config_(config),
      owned_cache_(cache == nullptr ? std::make_unique<ScheduleCache>()
                                    : nullptr),
      cache_(cache == nullptr ? owned_cache_.get() : cache),
      queue_(config_.queue_capacity), batcher_(config_.batch)
{
    MPS_CHECK(config_.num_workers >= 1, "num_workers must be >= 1");
    accepting_.store(true, std::memory_order_release);
    if (config_.autostart)
        start();
}

Server::~Server()
{
    shutdown();
}

uint64_t
Server::register_graph(CsrMatrix adjacency, std::vector<GcnLayer> layers)
{
    MPS_CHECK(adjacency.rows() == adjacency.cols(),
              "adjacency must be square, got ", adjacency.rows(), "x",
              adjacency.cols());
    MPS_CHECK(!layers.empty(), "a graph needs at least one layer");
    for (size_t l = 1; l < layers.size(); ++l) {
        MPS_CHECK(layers[l].in_features() == layers[l - 1].out_features(),
                  "layer ", l, " expects ", layers[l].in_features(),
                  " input features but layer ", l - 1, " produces ",
                  layers[l - 1].out_features());
    }
    auto ctx = std::make_shared<GraphContext>();
    ctx->dynamic = DeltaCsr(std::move(adjacency));
    if (config_.delta_compact_ratio > 0.0)
        ctx->dynamic.set_compact_ratio(config_.delta_compact_ratio);
    ctx->layers = std::make_shared<const std::vector<GcnLayer>>(
        std::move(layers));
    // The permutation is paid once here, at registration: every batch
    // against this graph then traverses the row-permuted matrix and
    // scatters outputs back through the plan's inverse permutation.
    ctx->reorder_kind = config_.reorder;
    if (config_.reorder != ReorderKind::kNone)
        ctx->reorder = cache_->get_or_build_reorder(ctx->adjacency(),
                                                    config_.reorder);

    std::lock_guard<std::mutex> lk(graphs_mutex_);
    const uint64_t id = next_graph_id_++;
    graphs_.emplace(id, std::move(ctx));
    return id;
}

bool
Server::update_graph(uint64_t graph_id, const GraphDelta &delta)
{
    if (!accepting_.load(std::memory_order_acquire))
        return false;
    auto &metrics = MetricsRegistry::global();
    Timer timer;
    // One update at a time per server; the graphs lock is only taken
    // for the O(1) map reads/swap, so submit() and the dispatcher keep
    // running while the successor snapshot is built.
    std::lock_guard<std::mutex> update_lk(update_mutex_);
    std::shared_ptr<const GraphContext> old_ctx;
    {
        std::lock_guard<std::mutex> lk(graphs_mutex_);
        auto it = graphs_.find(graph_id);
        if (it == graphs_.end())
            return false;
        old_ctx = it->second;
    }

    auto ctx = std::make_shared<GraphContext>();
    ctx->dynamic = old_ctx->dynamic; // shares the base, copies overlay
    ctx->layers = old_ctx->layers;
    ctx->reorder_kind = old_ctx->reorder_kind;
    ctx->update_seq = old_ctx->update_seq + 1;
    {
        std::lock_guard<std::mutex> plan_lk(old_ctx->reorder_mutex);
        if (old_ctx->reorder != nullptr) {
            // Repairing schedules across a row re-permutation is a
            // rebuild by another name (every row id changes), so an
            // update retires the plan. The successor starts without
            // one; the next batch that sees a clean overlay rebuilds
            // it lazily (resolve_reorder_plan) instead of this path
            // paying for a permutation the delta may invalidate again.
            inform("graph " + std::to_string(graph_id) +
                   ": retiring locality reorder plan (lazily rebuilt "
                   "after the overlay settles)");
            if (metrics.enabled())
                metrics.counter_add("serve.reorder_dropped");
        }
    }
    ctx->dynamic.apply(delta);

    bool compacted = false;
    if (config_.update_policy == GraphUpdatePolicy::kRebuildEveryUpdate) {
        // Baseline: eager materialization; the next batch pays a full
        // schedule build against the new fingerprint.
        ctx->dynamic.compact();
        compacted = true;
    } else if (ctx->dynamic.needs_compaction()) {
        DeltaCsr::CompactResult cr = ctx->dynamic.compact();
        compacted = true;
        cache_->repair_for_update(*cr.old_base, *cr.new_base,
                                  cr.first_dirty_row);
    }

    {
        std::lock_guard<std::mutex> lk(graphs_mutex_);
        graphs_[graph_id] = ctx; // O(1) snapshot swap
    }
    {
        std::lock_guard<std::mutex> lk(stats_mutex_);
        ++graph_updates_;
        if (compacted)
            ++graph_compactions_;
    }
    if (metrics.enabled()) {
        metrics.counter_add("serve.graph_updates");
        if (compacted)
            metrics.counter_add("serve.graph_compactions");
        metrics.gauge_set("graph.delta_fraction",
                          ctx->dynamic.delta_fraction());
        metrics.timer_record_ms("serve.graph_update_ms",
                                timer.elapsed_ms());
    }
    return true;
}

double
Server::graph_delta_fraction(uint64_t graph_id) const
{
    std::lock_guard<std::mutex> lk(graphs_mutex_);
    auto it = graphs_.find(graph_id);
    return it == graphs_.end() ? 0.0
                               : it->second->dynamic.delta_fraction();
}

index_t
Server::graph_nnz(uint64_t graph_id) const
{
    std::lock_guard<std::mutex> lk(graphs_mutex_);
    auto it = graphs_.find(graph_id);
    return it == graphs_.end() ? 0 : it->second->dynamic.nnz();
}

std::future<InferenceResult>
Server::submit(uint64_t graph_id, DenseMatrix features, double timeout_ms)
{
    auto &metrics = MetricsRegistry::global();
    auto req = std::make_unique<PendingRequest>();
    req->graph_id = graph_id;
    req->request_id = next_request_id();
    req->features = std::move(features);
    req->timeout_ms =
        timeout_ms < 0.0 ? config_.default_timeout_ms : timeout_ms;
    std::future<InferenceResult> fut = req->promise.get_future();

    // Flow start: the 's' point inside this span is the tail of the
    // arrow chain that reappears at batch formation ('t') and batch
    // execution ('f') on other threads.
    ScopedSpan submit_span("serve.submit", "serve");
    TraceSession::global().record_flow(kRequestFlow, "serve", 's',
                                       req->request_id);

    metrics.counter_add("serve.requests.submitted");
    {
        std::lock_guard<std::mutex> lk(stats_mutex_);
        ++submitted_;
    }

    if (!accepting_.load(std::memory_order_acquire)) {
        req->fail(RequestStatus::kShutdown, "server is shutting down");
        return fut;
    }

    {
        std::lock_guard<std::mutex> lk(graphs_mutex_);
        auto it = graphs_.find(graph_id);
        if (it == graphs_.end()) {
            req->fail(RequestStatus::kUnknownGraph,
                      "graph id was never registered");
            return fut;
        }
        const GraphContext &g = *it->second;
        if (req->features.rows() != g.adjacency().rows() ||
            req->features.cols() != g.layers->front().in_features()) {
            std::ostringstream os;
            os << "feature shape " << req->features.rows() << "x"
               << req->features.cols() << " does not match expected "
               << g.adjacency().rows() << "x"
               << g.layers->front().in_features();
            req->fail(RequestStatus::kBadRequest, os.str());
            return fut;
        }
    }

    if (!queue_.try_push(std::move(req))) {
        if (config_.overflow == OverflowPolicy::kReject) {
            metrics.counter_add("serve.requests.rejected");
            {
                std::lock_guard<std::mutex> lk(stats_mutex_);
                ++rejected_;
            }
            req->fail(RequestStatus::kRejected,
                      "ingress queue full (reject policy)");
            return fut;
        }
        // Block policy: wait for the dispatcher to free a slot. The
        // periodic wakeup bounds the window of the full->empty race.
        std::unique_lock<std::mutex> lk(wake_mutex_);
        for (;;) {
            if (stopping_.load(std::memory_order_acquire)) {
                req->fail(RequestStatus::kShutdown,
                          "server shut down while waiting for queue "
                          "space");
                return fut;
            }
            if (queue_.try_push(std::move(req)))
                break;
            space_cv_.wait_for(lk, std::chrono::milliseconds(1));
        }
    }

    // Empty critical section: pairs with the dispatcher's checked wait
    // so a push between its check and its sleep cannot lose the wakeup.
    {
        std::lock_guard<std::mutex> lk(wake_mutex_);
    }
    work_cv_.notify_one();
    return fut;
}

InferenceResult
Server::infer(uint64_t graph_id, DenseMatrix features, double timeout_ms)
{
    return submit(graph_id, std::move(features), timeout_ms).get();
}

void
Server::start()
{
    bool expected = false;
    if (!started_.compare_exchange_strong(expected, true))
        return;

    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 4;
    const unsigned pool_threads =
        config_.pool_threads != 0
            ? config_.pool_threads * config_.num_workers
            : std::max(2u, hw);

    // One steal pool shared by every worker: the pool accepts
    // concurrent parallel_for submissions, so a worker executing a
    // small batch no longer strands the threads a private pool would
    // have reserved for it.
    pool_ = std::make_unique<WorkStealPool>(pool_threads);

    if (config_.telemetry_port >= 0) {
        TelemetryServer::Options opts;
        opts.port = config_.telemetry_port;
        opts.pre_scrape = [this] { publish_telemetry(); };
        telemetry_ = std::make_unique<TelemetryServer>(std::move(opts));
        if (!telemetry_->start())
            telemetry_.reset(); // bind failure: serve without telemetry
    }

    dispatcher_ = std::thread(&Server::dispatcher_loop, this);
    workers_.reserve(config_.num_workers);
    for (unsigned i = 0; i < config_.num_workers; ++i)
        workers_.emplace_back([this] { worker_loop(*pool_); });
}

void
Server::worker_loop(WorkStealPool &pool)
{
    for (;;) {
        Batch batch;
        {
            std::unique_lock<std::mutex> lk(batches_mutex_);
            batches_cv_.wait(lk, [this] {
                return !ready_batches_.empty() || batches_closed_;
            });
            if (ready_batches_.empty())
                return; // closed and drained
            batch = std::move(ready_batches_.front());
            ready_batches_.pop_front();
        }
        execute_batch(std::move(batch), pool);
    }
}

void
Server::drain_queue_into_batcher(int64_t now_us_val)
{
    auto &metrics = MetricsRegistry::global();
    RequestPtr req;
    bool popped = false;
    while (queue_.try_pop(req)) {
        popped = true;
        if (req->expired()) {
            metrics.counter_add("serve.requests.timed_out");
            {
                std::lock_guard<std::mutex> lk(stats_mutex_);
                ++timed_out_;
            }
            req->fail(RequestStatus::kTimeout,
                      "deadline expired while queued");
            continue;
        }
        batcher_.add(std::move(req), now_us_val);
    }
    metrics.gauge_set("serve.queue.depth",
                      static_cast<double>(queue_.size_approx()));
    if (popped && config_.overflow == OverflowPolicy::kBlock) {
        {
            std::lock_guard<std::mutex> lk(wake_mutex_);
        }
        space_cv_.notify_all();
    }
}

void
Server::hand_to_workers(Batch batch)
{
    TraceSession &trace = TraceSession::global();
    if (trace.active()) {
        // Flow step on the dispatcher thread: every member request's
        // arrow passes through this batch-formation slice.
        ScopedSpan span("serve.batch.form", "serve");
        for (const RequestPtr &req : batch.requests)
            trace.record_flow(kRequestFlow, "serve", 't',
                              req->request_id);
    }
    {
        std::lock_guard<std::mutex> lk(batches_mutex_);
        ready_batches_.push_back(std::move(batch));
    }
    batches_cv_.notify_one();
}

void
Server::dispatcher_loop()
{
    for (;;) {
        int64_t now = now_us();
        drain_queue_into_batcher(now);

        for (;;) {
            std::vector<RequestPtr> ready = batcher_.take_ready(now);
            if (ready.empty())
                break;
            Batch batch;
            batch.requests = std::move(ready);
            {
                // The snapshot the batch pins: a concurrent
                // update_graph() swap after this point doesn't affect
                // requests already batched.
                std::lock_guard<std::mutex> lk(graphs_mutex_);
                auto it = graphs_.find(batch.requests.front()->graph_id);
                MPS_CHECK(it != graphs_.end(),
                          "batched request for unregistered graph");
                batch.graph = it->second;
            }
            hand_to_workers(std::move(batch));
        }

        if (stopping_.load(std::memory_order_acquire)) {
            drain_queue_into_batcher(now_us());
            while (batcher_.pending() > 0) {
                std::vector<RequestPtr> rest = batcher_.take_any();
                if (rest.empty())
                    break;
                Batch batch;
                batch.requests = std::move(rest);
                {
                    std::lock_guard<std::mutex> lk(graphs_mutex_);
                    auto it =
                        graphs_.find(batch.requests.front()->graph_id);
                    MPS_CHECK(it != graphs_.end(),
                              "batched request for unregistered graph");
                    batch.graph = it->second;
                }
                hand_to_workers(std::move(batch));
            }
            if (queue_.empty_approx() && batcher_.pending() == 0)
                break;
            continue; // a racing push landed: loop once more
        }

        // Sleep until new work arrives or the earliest batching
        // deadline. The check under wake_mutex_ pairs with submit()'s
        // empty critical section so no wakeup is lost.
        std::unique_lock<std::mutex> lk(wake_mutex_);
        if (!queue_.empty_approx() ||
            stopping_.load(std::memory_order_acquire))
            continue;
        if (batcher_.pending() == 0) {
            work_cv_.wait_for(lk, std::chrono::milliseconds(10));
        } else {
            const int64_t deadline = batcher_.next_deadline_us();
            const int64_t wait =
                std::min<int64_t>(deadline - now_us(), 10000);
            if (wait > 0)
                work_cv_.wait_for(lk, std::chrono::microseconds(wait));
        }
    }

    {
        std::lock_guard<std::mutex> lk(batches_mutex_);
        batches_closed_ = true;
    }
    batches_cv_.notify_all();
}

std::shared_ptr<const ReorderPlan>
Server::resolve_reorder_plan(const GraphContext &graph)
{
    if (graph.reorder_kind == ReorderKind::kNone)
        return nullptr;
    std::lock_guard<std::mutex> lk(graph.reorder_mutex);
    if (graph.reorder == nullptr && graph.dynamic.num_dirty_rows() == 0) {
        // Lazy rebuild: the plan retired by update_graph() comes back
        // the first time a batch finds the overlay clean. While dirty
        // the graph keeps executing in natural row order — the delta
        // correction pass addresses base row ids and must never
        // coexist with a scatter map.
        graph.reorder = cache_->get_or_build_reorder(graph.adjacency(),
                                                     graph.reorder_kind);
        auto &metrics = MetricsRegistry::global();
        if (metrics.enabled())
            metrics.counter_add("reorder.plan_rebuilds");
    }
    return graph.reorder;
}

void
Server::execute_batch(Batch batch, WorkStealPool &pool)
{
    auto &metrics = MetricsRegistry::global();

    // Weed requests whose deadline passed while batched or handed off.
    std::vector<RequestPtr> live;
    live.reserve(batch.requests.size());
    for (RequestPtr &req : batch.requests) {
        if (req->expired()) {
            metrics.counter_add("serve.requests.timed_out");
            {
                std::lock_guard<std::mutex> lk(stats_mutex_);
                ++timed_out_;
            }
            req->fail(RequestStatus::kTimeout,
                      "deadline expired before execution");
            continue;
        }
        metrics.timer_record_ms("serve.request.wait_ms",
                                req->since_submit.elapsed_ms());
        live.push_back(std::move(req));
    }
    if (live.empty())
        return;

    const GraphContext &graph = *batch.graph;
    const DeltaCsr &dyn = graph.dynamic;
    const CsrMatrix &a = graph.adjacency();
    // Reorder-aware execution: when a plan is attached the SpMM walks
    // the row-permuted matrix and scatters output rows back through
    // the inverse permutation, so everything before and after the
    // aggregation stays in the client's node order. A dynamic graph
    // retires its plan on update and resolve_reorder_plan() rebuilds
    // it lazily once clean, so the correction pass below never
    // coexists with a scatter map.
    std::shared_ptr<const ReorderPlan> reorder =
        resolve_reorder_plan(graph);
    const CsrMatrix &exec = reorder ? reorder->matrix : a;
    const index_t *scatter =
        reorder ? reorder->inverse.data() : nullptr;
    const bool has_delta = dyn.num_dirty_rows() > 0;
    const index_t n = a.rows();
    const int k = static_cast<int>(live.size());

    metrics.counter_add("serve.batches");
    metrics.timer_record_ms("serve.batch.size", static_cast<double>(k));
    {
        std::lock_guard<std::mutex> lk(stats_mutex_);
        ++batches_total_;
        batch_requests_total_ += k;
        max_batch_size_ = std::max<int64_t>(max_batch_size_, k);
    }
    ScopedSpan exec_span("serve.batch.exec", "serve");
    {
        // Flow finish: close each request's arrow on the executing
        // worker thread, inside the batch-exec slice.
        TraceSession &trace = TraceSession::global();
        for (const RequestPtr &req : live)
            trace.record_flow(kRequestFlow, "serve", 'f',
                              req->request_id);
    }
    MetricTimer exec_timer("serve.batch.exec_ms");

    // Stack the batch's feature matrices vertically into one tall
    // (k*n x f) matrix: rows [j*n, (j+1)*n) belong to request j. The
    // tall form is the inter-layer representation — the combination
    // GEMM of all k requests becomes ONE pool dispatch per layer, and
    // request outputs split back off as contiguous row blocks.
    const index_t f0 = graph.layers->front().in_features();
    DenseMatrix tall(static_cast<index_t>(k) * n, f0);
    for (int j = 0; j < k; ++j) {
        const DenseMatrix &feats = live[static_cast<size_t>(j)]->features;
        for (index_t r = 0; r < n; ++r)
            row_copy(tall.row(static_cast<index_t>(j) * n + r),
                     feats.row(r), f0);
    }

    const bool fused = fusion_enabled();
    for (const GcnLayer &layer : *graph.layers) {
        const index_t h = layer.out_features();
        const DenseMatrix &w = layer.weights();

        if (k == 1) {
            DenseMatrix out(n, h);
            const index_t cost = serve_cost(exec, h, pool);
            auto hsched = preferred_hybrid(*cache_, exec, cost);
            std::shared_ptr<const MergePathSchedule> sched;
            if (hsched == nullptr)
                sched = cache_->get_or_build_with_cost(exec, cost, 0);
            if (fused) {
                // Fused: the combination GEMM streams XW panels
                // straight into the traversal — tall_xw is never
                // materialized. With a clean overlay the activation
                // folds into the commit sweep; with a dirty one it
                // must wait for the per-panel correction pass (which
                // needs the raw, pre-activation sums).
                SpmmLocality loc = default_fused_locality(
                    exec.cols(), h,
                    storage_elem_bytes(config_.precision));
                loc.row_scatter = scatter;
                FusedLayerPlan fplan =
                    hsched != nullptr
                        ? FusedLayerPlan(exec, h, hsched, loc)
                        : FusedLayerPlan(exec, h, sched, loc);
                fplan.set_precision(config_.precision);
                const PanelEpilogue epi =
                    has_delta ? nullptr
                              : activation_epilogue(layer.activation());
                PanelPostSweepFn post;
                if (has_delta) {
                    post = [&](index_t col0, index_t width,
                               const PanelSource &src) {
                        delta_correction_panel(dyn, *src.b,
                                               src.col_begin, out, col0,
                                               width, pool, scatter);
                        apply_activation_panel(out, layer.activation(),
                                               col0, width);
                    };
                }
                fplan.run(gemm_panel_source(tall, w, pool), out, pool,
                          epi, nullptr, post);
            } else {
                DenseMatrix tall_xw(n, h);
                dense_gemm(tall, w, tall_xw, pool);
                SpmmLocality loc = default_spmm_locality(
                    exec.cols(), h,
                    storage_elem_bytes(config_.precision));
                loc.row_scatter = scatter;
                // The reduced-width shadow serves the aggregation
                // gather only; delta correction below keeps reading
                // the f32 master rows.
                if (config_.precision != StorageMode::kF32)
                    quantize_dense(tall_xw, config_.precision, &pool);
                if (hsched != nullptr)
                    hybrid_spmm_parallel(exec, *hsched, tall_xw, out,
                                         pool, loc);
                else
                    mergepath_spmm_parallel(exec, tall_xw, out, *sched,
                                            pool, loc);
                // Overlay correction: O(delta * h) on top of the
                // schedule-stable base traversal.
                if (has_delta)
                    delta_correction_pass(dyn, tall_xw, out, pool, loc);
                apply_activation(out, layer.activation());
            }
            tall = std::move(out);
            continue;
        }

        // Aggregation at effective dimension k*h: one SpMM pays the
        // sparse traversal of A once for the whole batch. Wide column
        // j*h + c holds request j's layer column c.
        const index_t wide_d = static_cast<index_t>(k) * h;
        const index_t wide_cost = serve_cost(exec, wide_d, pool);
        auto hsched = preferred_hybrid(*cache_, exec, wide_cost);
        std::shared_ptr<const MergePathSchedule> sched;
        if (hsched == nullptr)
            sched = cache_->get_or_build_with_cost(exec, wide_cost, 0);
        DenseMatrix wide_out(n, wide_d);
        if (fused) {
            // Fused: each wide panel is produced on demand straight
            // from the tall features — a panel spanning several
            // requests' column blocks is assembled with one
            // row-blocked GEMM per overlapping request. Neither the
            // tall XW (k*n x h) nor the folded wide input (n x k*h)
            // is ever materialized.
            SpmmLocality loc = default_fused_locality(
                exec.cols(), wide_d,
                storage_elem_bytes(config_.precision));
            loc.row_scatter = scatter;
            FusedLayerPlan fplan =
                hsched != nullptr
                    ? FusedLayerPlan(exec, wide_d, hsched, loc)
                    : FusedLayerPlan(exec, wide_d, sched, loc);
            fplan.set_precision(config_.precision);
            auto buf = std::make_shared<DenseMatrix>();
            const PanelSourceFn src = [&, buf](index_t col0,
                                               index_t width) {
                if (buf->rows() != n || buf->cols() < width)
                    *buf = DenseMatrix(n, width);
                index_t off = 0;
                while (off < width) {
                    const index_t gcol = col0 + off;
                    const index_t j = gcol / h;
                    const index_t local = gcol % h;
                    const index_t take =
                        std::min(width - off, h - local);
                    dense_gemm_panel(tall, j * n, w, local, take, *buf,
                                     off, n, pool);
                    off += take;
                }
                // fresh: the assembled panel is rewritten per call, so
                // a quantizing plan re-encodes its panel columns.
                return PanelSource{buf.get(), 0, buf.get(),
                                   /*fresh=*/true};
            };
            const PanelEpilogue epi =
                has_delta ? nullptr
                          : activation_epilogue(layer.activation());
            PanelPostSweepFn post;
            if (has_delta) {
                post = [&](index_t col0, index_t width,
                           const PanelSource &psrc) {
                    delta_correction_panel(dyn, *psrc.b, psrc.col_begin,
                                           wide_out, col0, width, pool,
                                           scatter);
                    apply_activation_panel(wide_out, layer.activation(),
                                           col0, width);
                };
            }
            fplan.run(src, wide_out, pool, epi, nullptr, post);
        } else {
            // Combination: (X_1 W; ...; X_k W) = tall X * W, one GEMM,
            // then fold tall (k*n x h) into wide (n x k*h).
            DenseMatrix tall_xw(static_cast<index_t>(k) * n, h);
            dense_gemm(tall, w, tall_xw, pool);
            DenseMatrix wide_in(n, wide_d);
            pool.parallel_for(
                static_cast<uint64_t>(n),
                [&](uint64_t r) {
                    const index_t row = static_cast<index_t>(r);
                    for (int j = 0; j < k; ++j)
                        std::copy(
                            tall_xw.row(static_cast<index_t>(j) * n +
                                        row),
                            tall_xw.row(static_cast<index_t>(j) * n +
                                        row) +
                                h,
                            wide_in.row(row) + j * h);
                },
                64);

            SpmmLocality loc = default_spmm_locality(
                exec.cols(), wide_d,
                storage_elem_bytes(config_.precision));
            loc.row_scatter = scatter;
            if (config_.precision != StorageMode::kF32)
                quantize_dense(wide_in, config_.precision, &pool);
            if (hsched != nullptr)
                hybrid_spmm_parallel(exec, *hsched, wide_in, wide_out,
                                     pool, loc);
            else
                mergepath_spmm_parallel(exec, wide_in, wide_out, *sched,
                                        pool, loc);
            if (has_delta)
                delta_correction_pass(dyn, wide_in, wide_out, pool, loc);
            apply_activation(wide_out, layer.activation());
        }

        tall = DenseMatrix(static_cast<index_t>(k) * n, h);
        pool.parallel_for(
            static_cast<uint64_t>(n),
            [&](uint64_t r) {
                const index_t row = static_cast<index_t>(r);
                for (int j = 0; j < k; ++j)
                    std::copy(
                        wide_out.row(row) + j * h,
                        wide_out.row(row) + (j + 1) * h,
                        tall.row(static_cast<index_t>(j) * n + row));
            },
            64);
    }

    const index_t h_out = graph.layers->back().out_features();
    for (int j = 0; j < k; ++j) {
        DenseMatrix out(n, h_out);
        for (index_t r = 0; r < n; ++r)
            row_copy(out.row(r),
                     tall.row(static_cast<index_t>(j) * n + r), h_out);
        InferenceResult result;
        result.status = RequestStatus::kOk;
        result.output = std::move(out);
        result.latency_ms =
            live[static_cast<size_t>(j)]->since_submit.elapsed_ms();
        result.batch_size = k;
        metrics.histogram_record("serve.request.latency_ms",
                                 result.latency_ms);
        metrics.counter_add("serve.requests.completed");
        record_completion(result.latency_ms);
        live[static_cast<size_t>(j)]->promise.set_value(
            std::move(result));
    }
}

void
Server::record_completion(double latency_ms)
{
    // The histogram has its own per-bucket atomics; only the counter
    // needs the stats mutex.
    latency_hist_.record(latency_ms);
    std::lock_guard<std::mutex> lk(stats_mutex_);
    ++completed_;
}

void
Server::shutdown()
{
    if (terminated_.exchange(true))
        return;

    accepting_.store(false, std::memory_order_release);
    if (!started_.load(std::memory_order_acquire))
        start(); // drain whatever tests queued before start()
    stopping_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lk(wake_mutex_);
    }
    work_cv_.notify_all();
    space_cv_.notify_all();

    if (dispatcher_.joinable())
        dispatcher_.join();
    for (std::thread &w : workers_) {
        if (w.joinable())
            w.join();
    }

    // A producer that passed the accepting_ check concurrently with
    // shutdown may have pushed after the dispatcher exited; no request
    // goes unanswered.
    RequestPtr straggler;
    while (queue_.try_pop(straggler))
        straggler->fail(RequestStatus::kShutdown,
                        "server shut down before execution");

    auto &metrics = MetricsRegistry::global();
    const PercentileSummary summary =
        summary_from_histogram(latency_hist_.snapshot());
    metrics.gauge_set("serve.latency.p50_ms", summary.p50);
    metrics.gauge_set("serve.latency.p95_ms", summary.p95);
    metrics.gauge_set("serve.latency.p99_ms", summary.p99);

    if (telemetry_ != nullptr)
        telemetry_->stop();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lk(stats_mutex_);
    ServerStats s;
    s.submitted = submitted_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.timed_out = timed_out_;
    s.batches = batches_total_;
    s.mean_batch_size =
        batches_total_ == 0
            ? 0.0
            : static_cast<double>(batch_requests_total_) /
                  static_cast<double>(batches_total_);
    s.max_batch_size = max_batch_size_;
    s.graph_updates = graph_updates_;
    s.graph_compactions = graph_compactions_;
    s.latency_ms = summary_from_histogram(latency_hist_.snapshot());
    return s;
}

void
Server::publish_telemetry()
{
    auto &metrics = MetricsRegistry::global();
    if (!metrics.enabled())
        return;
    metrics.gauge_set("serve.queue.depth",
                      static_cast<double>(queue_.size_approx()));
    {
        // Per-graph overlay pressure, labeled per OpenMetrics family
        // conventions (split into family + labels by the exporter).
        std::lock_guard<std::mutex> lk(graphs_mutex_);
        for (const auto &[id, ctx] : graphs_) {
            metrics.gauge_set("graph.delta_fraction{graph=\"" +
                                  std::to_string(id) + "\"}",
                              ctx->dynamic.delta_fraction());
        }
    }
    if (pool_ != nullptr)
        pool_->publish_imbalance(metrics);
}

} // namespace serve
} // namespace mps
