/**
 * @file
 * Batched GCN inference server.
 *
 *   clients --> MpscQueue (lock-free, bounded) --> dispatcher thread
 *            --> Batcher (coalesce per graph) --> worker pool
 *            --> batched layer execution against cached schedules
 *
 * A registered graph owns its adjacency matrix, its GCN layer stack
 * and (through the ScheduleCache) its merge-path schedules. Workers
 * execute one batch as: per-request dense GEMM (X_j x W), column-wise
 * concatenation into one wide matrix, a single MergePath-SpMM at
 * effective dimension batch x d, then split + activation. The sparse
 * traversal of A is thus paid once per batch instead of once per
 * request, and the schedule for each (graph, effective d) pair is
 * built exactly once.
 *
 * Guarantees:
 *  - every accepted request's future resolves — with a result, or with
 *    an explicit kTimeout / kShutdown / kBadRequest error;
 *  - a full queue rejects (kRejected) or blocks, per OverflowPolicy;
 *  - shutdown() drains: queued and batched requests still execute;
 *  - update_graph() swaps an immutable graph snapshot: batches formed
 *    before the swap finish on the old graph, later ones see the new
 *    one, and the dispatch path never blocks on delta integration.
 *
 * Dynamic graphs: each registered graph is a DeltaCsr — edge deltas
 * accumulate in an overlay applied as a cheap correction pass after
 * the (schedule-stable) base SpMM; compaction and incremental schedule
 * repair happen lazily per GraphUpdatePolicy. Telemetry:
 * graph.delta_fraction, serve.graph_updates, serve.graph_compactions,
 * schedule.repairs / schedule.repair_ns (from repair_schedule).
 *
 * Metrics (all through the PR 1 registry, no-ops while disabled):
 *  serve.queue.depth (gauge), serve.batch.size (distribution),
 *  serve.batch.exec_ms / serve.request.wait_ms (timers),
 *  serve.request.latency_ms (histogram; full latency distribution,
 *  quantiles exported), serve.requests.{submitted,completed,rejected,
 *  timed_out} + serve.batches (counters), and
 *  serve.latency.p50_ms/.p95_ms/.p99_ms gauges published on shutdown.
 * The server additionally owns a private latency histogram so stats()
 * reports exact counts and quantiles even while the registry is
 * disabled.
 *
 * Telemetry endpoint: ServeConfig::telemetry_port >= 0 (or the
 * MPS_TELEMETRY_PORT environment variable) starts a TelemetryServer
 * on 127.0.0.1 whose GET /metrics renders the registry in OpenMetrics
 * form; each scrape first runs publish_telemetry() so derived gauges
 * (queue depth, pool imbalance) are fresh.
 *
 * Tracing: each request gets a process-unique id at submit; flow
 * events named "serve.request" connect its submit -> batch -> execute
 * path across threads in the exported Chrome trace.
 */
#ifndef MPS_SERVE_SERVER_H
#define MPS_SERVE_SERVER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mps/core/schedule_cache.h"
#include "mps/gcn/layer.h"
#include "mps/serve/batcher.h"
#include "mps/serve/mpsc_queue.h"
#include "mps/serve/request.h"
#include "mps/serve/telemetry_server.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/delta_csr.h"
#include "mps/util/histogram.h"
#include "mps/util/stats.h"
#include "mps/util/work_steal_pool.h"

namespace mps {
namespace serve {

/**
 * Telemetry port selected by the MPS_TELEMETRY_PORT environment
 * variable: the parsed port (0 = ephemeral) when set to a valid value,
 * -1 (disabled) when unset or invalid.
 */
int default_telemetry_port();

/** What a producer experiences when the bounded queue is full. */
enum class OverflowPolicy {
    kReject, ///< submit() resolves the future with kRejected
    kBlock,  ///< submit() waits for space (or shutdown)
};

/** How update_graph() integrates an edge delta. */
enum class GraphUpdatePolicy {
    /**
     * Delta-CSR overlay + lazy compaction + incremental schedule
     * repair: updates are O(delta), compactions amortized, cached
     * schedules migrate via repair_schedule() instead of rebuilding.
     */
    kIncremental,
    /**
     * Materialize a fresh CSR on every update and let the next batch
     * rebuild its schedules from scratch. The churn benchmark's
     * baseline: the rebuild cost lands on the serving path.
     */
    kRebuildEveryUpdate,
};

/** Server construction knobs. */
struct ServeConfig
{
    /** Bounded ingress queue slots (rounded up to a power of two). */
    size_t queue_capacity = 1024;
    /** Worker threads executing batches. */
    unsigned num_workers = 2;
    /**
     * Compute threads per server worker for the GEMM/SpMM inside a
     * batch; 0 sizes the shared pool to the hardware threads. All
     * workers submit concurrently into ONE WorkStealPool of
     * pool_threads * num_workers threads — concurrent parallel_for is
     * native to the steal pool, so batches share idle capacity
     * instead of each worker hoarding a private condvar pool.
     */
    unsigned pool_threads = 0;
    /** Coalescing policy (max_batch, max_delay_us). */
    BatchPolicy batch;
    /** Backpressure behaviour when the ingress queue is full. */
    OverflowPolicy overflow = OverflowPolicy::kReject;
    /**
     * Locality reordering applied to each registered graph: the
     * adjacency is row-permuted once at register_graph() time (plan
     * cached in the schedule cache) and every batched SpMM traverses
     * the permuted matrix, scattering output rows back through the
     * inverse permutation — request features and results stay in the
     * client's node order. Defaults to MPS_REORDER (kNone unset).
     */
    ReorderKind reorder = default_reorder_kind();
    /** Default per-request deadline; <= 0 means none. */
    double default_timeout_ms = 0.0;
    /**
     * Aggregation operand precision of every batch this server
     * executes: kBf16/kInt8 store each batch's XW (or panel buffer)
     * reduced-width for the SpMM gather, cutting the gather's DRAM
     * traffic 2x/4x; accumulation and the atomic commit protocol stay
     * fp32, and the delta-correction pass keeps reading the f32 master
     * rows. Defaults to the cached MPS_PRECISION parse (f32 unset), so
     * serving tenants opt in per process or per ServeConfig.
     */
    StorageMode precision = default_precision();
    /** Edge-delta integration strategy for update_graph(). */
    GraphUpdatePolicy update_policy = GraphUpdatePolicy::kIncremental;
    /**
     * Overlay compaction threshold (fraction of base nnz); <= 0 uses
     * MPS_DELTA_COMPACT_RATIO (default 0.10).
     */
    double delta_compact_ratio = 0.0;
    /**
     * TCP port of the embedded /metrics endpoint: >= 0 starts a
     * TelemetryServer on 127.0.0.1 at start() (0 = ephemeral, see
     * telemetry_port()). Defaults from MPS_TELEMETRY_PORT; -1 when the
     * variable is unset, i.e. no endpoint.
     */
    int telemetry_port = default_telemetry_port();
    /**
     * Start the dispatcher/workers in the constructor. Tests set this
     * false to fill the queue deterministically, then call start().
     */
    bool autostart = true;
};

/** Queue/latency snapshot for reports. */
struct ServerStats
{
    int64_t submitted = 0;
    int64_t completed = 0;
    int64_t rejected = 0;
    int64_t timed_out = 0;
    int64_t batches = 0;
    double mean_batch_size = 0.0;
    int64_t max_batch_size = 0;
    int64_t graph_updates = 0;     ///< update_graph() calls applied
    int64_t graph_compactions = 0; ///< updates that compacted the base
    PercentileSummary latency_ms; ///< completed requests only
};

/** Batched GCN inference server (one process-local instance). */
class Server
{
  public:
    /**
     * @param config serving knobs
     * @param cache  schedule store; nullptr gives the server a private
     *        cache. An external cache can be shared across servers
     *        (e.g. a benchmark sweep) so schedules build once.
     */
    explicit Server(ServeConfig config = {},
                    ScheduleCache *cache = nullptr);

    /** Graceful: equivalent to shutdown(). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Register a graph and its model layers; returns the graph id used
     * by submit(). The adjacency matrix is expected GCN-normalized.
     * Layer widths must chain; the first layer's in_features fixes the
     * accepted feature width.
     */
    uint64_t register_graph(CsrMatrix adjacency,
                            std::vector<GcnLayer> layers);

    /**
     * Apply an edge delta to a registered graph with snapshot
     * semantics: a fresh immutable GraphContext is built off the
     * dispatch path and swapped in under the graphs lock in O(1) —
     * in-flight batches finish against the snapshot they were formed
     * on, new batches see the updated graph, and dispatch never stalls
     * on delta integration. Updates to the same server serialize on an
     * update mutex. Under the default kIncremental policy the delta
     * lands in the DeltaCsr overlay; when the overlay passes the
     * compaction ratio the base is rebuilt and every cached schedule
     * is migrated via incremental repair. A graph registered with a
     * locality reorder plan retires the plan on update (repairing a
     * schedule across a row re-permutation is a rebuild by another
     * name); execution continues in natural row order while the
     * overlay is dirty, and the next batch that finds the graph clean
     * rebuilds the plan lazily (reorder.plan_rebuilds counter) instead
     * of losing the reordering forever.
     *
     * @return false when @p graph_id was never registered or the
     *         server is shutting down.
     */
    bool update_graph(uint64_t graph_id, const GraphDelta &delta);

    /** Current overlay fraction of a graph (0.0 when clean/unknown). */
    double graph_delta_fraction(uint64_t graph_id) const;

    /** Logical nnz of a graph's base ∪ overlay (0 when unknown). */
    index_t graph_nnz(uint64_t graph_id) const;

    /**
     * Enqueue one inference request. The returned future always
     * resolves (see RequestStatus). @p timeout_ms < 0 selects the
     * config default; 0 disables the deadline for this request.
     */
    std::future<InferenceResult> submit(uint64_t graph_id,
                                        DenseMatrix features,
                                        double timeout_ms = -1.0);

    /** submit() + wait: convenience for examples and tools. */
    InferenceResult infer(uint64_t graph_id, DenseMatrix features,
                          double timeout_ms = -1.0);

    /** Start the dispatcher and workers (idempotent). */
    void start();

    /**
     * Stop accepting requests, drain the queue and batcher, execute
     * everything in flight, publish latency-percentile gauges, join
     * all threads. Idempotent.
     */
    void shutdown();

    /** Aggregate counters + latency percentiles so far. */
    ServerStats stats() const;

    /**
     * Publish the derived telemetry gauges (serve.queue.depth, the
     * pool's imbalance gauges) into the global registry. Runs before
     * every /metrics scrape; safe to call any time.
     */
    void publish_telemetry();

    /**
     * Bound port of the embedded /metrics endpoint, -1 when disabled
     * or not (yet) started. Resolves ephemeral (port 0) bindings.
     */
    int telemetry_port() const
    {
        return telemetry_ != nullptr ? telemetry_->port() : -1;
    }

    const ServeConfig &config() const { return config_; }

    /** The schedule store this server resolves schedules from. */
    ScheduleCache &schedule_cache() { return *cache_; }

  private:
    /**
     * One immutable graph snapshot. update_graph() never mutates a
     * published context — it builds a successor and swaps the map
     * entry, so a Batch's shared_ptr pins exactly the graph state its
     * requests were validated against. The DeltaCsr base is shared
     * across snapshots (shared_ptr inside), layers likewise; a
     * snapshot copy is O(overlay), not O(graph).
     */
    struct GraphContext
    {
        DeltaCsr dynamic;
        std::shared_ptr<const std::vector<GcnLayer>> layers;
        /**
         * Reorder plan shared via the schedule cache; nullptr =
         * identity. An update retires the plan (the permutation is only
         * valid against the base it was built from), but instead of
         * staying retired forever it is rebuilt lazily by the next
         * batch that finds the overlay clean — see
         * resolve_reorder_plan(). Mutable + mutex because the rebuild
         * happens on worker threads against a published (otherwise
         * immutable) snapshot.
         */
        mutable std::shared_ptr<const ReorderPlan> reorder;
        mutable std::mutex reorder_mutex;
        /** Reordering this graph wants; kNone = never build a plan. */
        ReorderKind reorder_kind = ReorderKind::kNone;
        /** Monotone update counter (0 at registration). */
        uint64_t update_seq = 0;

        const CsrMatrix &adjacency() const { return dynamic.base(); }
    };

    struct Batch
    {
        std::shared_ptr<const GraphContext> graph;
        std::vector<RequestPtr> requests;
    };

    void dispatcher_loop();
    void worker_loop(WorkStealPool &pool);
    void execute_batch(Batch batch, WorkStealPool &pool);
    /**
     * The reorder plan a batch should execute with: the cached plan
     * when present, nullptr while the overlay is dirty (correction
     * uses base row ids, which must not coexist with a scatter map),
     * and a lazily rebuilt plan — counted by reorder.plan_rebuilds —
     * the first time a batch finds the graph clean again.
     */
    std::shared_ptr<const ReorderPlan>
    resolve_reorder_plan(const GraphContext &graph);
    void hand_to_workers(Batch batch);
    void drain_queue_into_batcher(int64_t now_us);
    void record_completion(double latency_ms);
    int64_t now_us() const
    {
        return static_cast<int64_t>(epoch_.elapsed_us());
    }

    ServeConfig config_;
    std::unique_ptr<ScheduleCache> owned_cache_;
    ScheduleCache *cache_;

    std::map<uint64_t, std::shared_ptr<const GraphContext>> graphs_;
    uint64_t next_graph_id_ = 1;
    mutable std::mutex graphs_mutex_;
    /**
     * Serializes update_graph() calls. Held while the successor
     * snapshot is built (outside graphs_mutex_, so submit/dispatch
     * never wait on delta integration).
     */
    std::mutex update_mutex_;

    MpscQueue<RequestPtr> queue_;
    Batcher batcher_; // dispatcher-only
    Timer epoch_;

    /** Shared compute pool; every worker submits into it concurrently. */
    std::unique_ptr<WorkStealPool> pool_;

    /** Embedded /metrics endpoint; nullptr when disabled. */
    std::unique_ptr<TelemetryServer> telemetry_;

    // Producer->dispatcher wakeup + block-mode backpressure. The data
    // path stays lock-free: this mutex guards only sleeping/waking.
    std::mutex wake_mutex_;
    std::condition_variable work_cv_;  // dispatcher sleeps here
    std::condition_variable space_cv_; // kBlock producers sleep here

    // Dispatcher->worker handoff (small, rarely contended).
    std::mutex batches_mutex_;
    std::condition_variable batches_cv_;
    std::deque<Batch> ready_batches_;
    bool batches_closed_ = false;

    std::thread dispatcher_;
    std::vector<std::thread> workers_;
    std::atomic<bool> started_{false};
    std::atomic<bool> accepting_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> terminated_{false};

    // Aggregate stats (guarded by stats_mutex_).
    mutable std::mutex stats_mutex_;
    int64_t submitted_ = 0;
    int64_t completed_ = 0;
    int64_t rejected_ = 0;
    int64_t timed_out_ = 0;
    int64_t batches_total_ = 0;
    int64_t batch_requests_total_ = 0;
    int64_t max_batch_size_ = 0;
    int64_t graph_updates_ = 0;
    int64_t graph_compactions_ = 0;
    /**
     * Completed-request latency distribution. Thread-safe on its own
     * (per-bucket atomics), records outside stats_mutex_; unlike the
     * old bounded sample ring it never drops samples, so quantiles
     * stay exact-to-bucket-resolution at any load.
     */
    LogHistogram latency_hist_;
};

} // namespace serve
} // namespace mps

#endif // MPS_SERVE_SERVER_H
