/**
 * @file
 * Request/response types of the serving subsystem. A request carries
 * one node-feature matrix destined for a registered graph's GCN model;
 * its future resolves with the model output or an explicit error — the
 * server never drops a request silently.
 */
#ifndef MPS_SERVE_REQUEST_H
#define MPS_SERVE_REQUEST_H

#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "mps/sparse/dense_matrix.h"
#include "mps/util/timer.h"

namespace mps {
namespace serve {

/** Terminal state of one request. */
enum class RequestStatus {
    kOk,           ///< output holds the model result
    kRejected,     ///< bounded queue full (backpressure, reject policy)
    kTimeout,      ///< deadline expired before execution started
    kShutdown,     ///< submitted after shutdown began
    kUnknownGraph, ///< graph id was never registered
    kBadRequest,   ///< feature shape does not match the graph/model
};

/** to_string for RequestStatus. */
const char *request_status_name(RequestStatus status);

/**
 * Process-unique request id (monotonic from 1). Stamped at submit and
 * carried through batching into execution, where it binds the
 * queue -> batch -> kernel trace flow events of one request together.
 */
uint64_t next_request_id();

/** What a request's future resolves with. */
struct InferenceResult
{
    RequestStatus status = RequestStatus::kOk;
    /** Model output (rows = graph nodes); empty unless status == kOk. */
    DenseMatrix output;
    /** Submit-to-completion wall time. */
    double latency_ms = 0.0;
    /** Requests coalesced into the batch that produced this result. */
    int batch_size = 0;
    /** Human-readable detail for non-kOk statuses. */
    std::string message;

    bool ok() const { return status == RequestStatus::kOk; }
};

/** One queued request (owned by the server once submitted). */
struct PendingRequest
{
    uint64_t graph_id = 0;
    /** Flow id for tracing; see next_request_id(). */
    uint64_t request_id = 0;
    DenseMatrix features;
    std::promise<InferenceResult> promise;
    /** Started at submit; measures queue wait + execution. */
    Timer since_submit;
    /** Deadline relative to submit; <= 0 means no deadline. */
    double timeout_ms = 0.0;
    /** Dispatcher clock at drain time (stamped by the Batcher's caller). */
    int64_t arrival_us = 0;

    bool
    expired() const
    {
        return timeout_ms > 0.0 && since_submit.elapsed_ms() > timeout_ms;
    }

    /** Resolve the future with an error (no output). */
    void
    fail(RequestStatus status, std::string message)
    {
        InferenceResult r;
        r.status = status;
        r.latency_ms = since_submit.elapsed_ms();
        r.message = std::move(message);
        promise.set_value(std::move(r));
    }
};

using RequestPtr = std::unique_ptr<PendingRequest>;

} // namespace serve
} // namespace mps

#endif // MPS_SERVE_REQUEST_H
