/**
 * @file
 * Request coalescing. The Batcher holds requests the dispatcher has
 * drained from the ingress queue, grouped by graph id, and releases a
 * group as one batch when it reaches max_batch requests or its oldest
 * member has waited max_delay_us. One batch becomes one wide SpMM per
 * layer (feature columns concatenated), which is where batching pays:
 * the sparse traversal of A is amortized over every request in the
 * batch.
 *
 * The Batcher is deliberately thread-free (the dispatcher is its only
 * caller) so the coalescing policy is unit-testable without timing.
 */
#ifndef MPS_SERVE_BATCHER_H
#define MPS_SERVE_BATCHER_H

#include <cstdint>
#include <map>
#include <vector>

#include "mps/serve/request.h"

namespace mps {
namespace serve {

/** Coalescing knobs. */
struct BatchPolicy
{
    /** Most requests coalesced into one batch (>= 1). */
    int max_batch = 8;
    /**
     * Longest a request may wait for batch-mates before dispatching a
     * partial batch, in microseconds. 0 dispatches immediately.
     */
    int64_t max_delay_us = 200;
};

/** Per-graph accumulation of pending requests into dispatchable batches. */
class Batcher
{
  public:
    explicit Batcher(BatchPolicy policy);

    /** Add a drained request; @p now_us is the dispatcher's clock. */
    void add(RequestPtr request, int64_t now_us);

    /**
     * Earliest time a currently-pending group becomes ready by delay
     * expiry; int64_t max when nothing is pending. A full group is
     * ready immediately (its deadline is its arrival time).
     */
    int64_t next_deadline_us() const;

    /** True when some group is full or has waited out the delay. */
    bool has_ready(int64_t now_us) const;

    /**
     * Remove and return the ready batch whose oldest request has waited
     * longest; empty vector when none is ready. Call repeatedly to
     * collect all ready batches.
     */
    std::vector<RequestPtr> take_ready(int64_t now_us);

    /** Remove and return the oldest group regardless of readiness. */
    std::vector<RequestPtr> take_any();

    /** Requests currently held across all groups. */
    size_t pending() const { return pending_; }

    const BatchPolicy &policy() const { return policy_; }

  private:
    struct Group
    {
        std::vector<RequestPtr> requests;
        int64_t oldest_us = 0; ///< arrival time of the first member
    };

    bool group_ready(const Group &g, int64_t now_us) const;
    std::vector<RequestPtr>
    split_front(std::map<uint64_t, Group>::iterator it);

    BatchPolicy policy_;
    std::map<uint64_t, Group> groups_;
    size_t pending_ = 0;
};

} // namespace serve
} // namespace mps

#endif // MPS_SERVE_BATCHER_H
