/**
 * @file
 * Embedded telemetry endpoint: a minimal HTTP/1.1 server exposing the
 * metrics registry in OpenMetrics text form, so a Prometheus scraper
 * (or `mps_tool top`) can watch a serving process live.
 *
 * Scope is deliberately tiny — one blocking accept thread, loopback
 * binding, two routes:
 *
 *   GET /metrics  -> 200, `application/openmetrics-text`, the merged
 *                    registry snapshot (after running the pre-scrape
 *                    hook, which publishes derived gauges like
 *                    pool.imbalance and serve.queue.depth);
 *   GET /healthz  -> 200 `ok`;
 *   anything else -> 404.
 *
 * Scrapes are served serially; a scrape walks per-thread metric shards
 * but never blocks the threads recording into them (the registry's
 * read path takes only the shard-registration mutex). Port 0 binds an
 * ephemeral port, reported by port() — tests and tools/check.sh use
 * this to avoid fixed-port collisions.
 *
 * Enabled in the server via ServeConfig::telemetry_port or the
 * MPS_TELEMETRY_PORT environment variable; standalone use (benches)
 * constructs one directly.
 */
#ifndef MPS_SERVE_TELEMETRY_SERVER_H
#define MPS_SERVE_TELEMETRY_SERVER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace mps {

class MetricsRegistry;

namespace serve {

/** Minimal blocking HTTP endpoint serving /metrics and /healthz. */
class TelemetryServer
{
  public:
    struct Options
    {
        /** TCP port to bind on 127.0.0.1; 0 picks an ephemeral port. */
        int port = 0;
        /**
         * Registry to expose; nullptr means MetricsRegistry::global().
         * The registry must outlive the server.
         */
        MetricsRegistry *registry = nullptr;
        /**
         * Run before every /metrics render — the place to publish
         * derived gauges (queue depth, pool imbalance) so scrapes see
         * fresh values. May be empty; must be thread-safe (it runs on
         * the accept thread).
         */
        std::function<void()> pre_scrape;
    };

    TelemetryServer() : TelemetryServer(Options{}) {}
    explicit TelemetryServer(Options options);

    /** Stops and joins the accept thread. */
    ~TelemetryServer();

    TelemetryServer(const TelemetryServer &) = delete;
    TelemetryServer &operator=(const TelemetryServer &) = delete;

    /**
     * Bind, listen and start the accept thread. Returns false (with a
     * warn log) when the port cannot be bound; the process keeps
     * running without telemetry. Idempotent while running.
     */
    bool start();

    /** Stop accepting, close the socket, join the thread. Idempotent. */
    void stop();

    bool running() const { return running_.load(std::memory_order_acquire); }

    /** Bound port (resolves port 0 bindings); -1 while not running. */
    int port() const { return port_.load(std::memory_order_acquire); }

    /** Number of completed GET /metrics responses so far. */
    uint64_t scrape_count() const
    {
        return scrapes_.load(std::memory_order_acquire);
    }

  private:
    void accept_loop();
    std::string render_metrics();

    Options options_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_{false};
    std::atomic<int> port_{-1};
    std::atomic<uint64_t> scrapes_{0};
    int listen_fd_ = -1;
    std::thread thread_;
};

/**
 * Minimal HTTP/1.1 GET client for the telemetry endpoint (used by
 * `mps_tool top --url`, the telemetry tests and tools/check.sh).
 * On success returns true and fills @p body with the response body
 * (headers stripped). Non-200 statuses and transport errors return
 * false with a diagnostic in *error.
 */
bool http_get(const std::string &host, int port, const std::string &path,
              std::string *body, std::string *error = nullptr);

} // namespace serve
} // namespace mps

#endif // MPS_SERVE_TELEMETRY_SERVER_H
