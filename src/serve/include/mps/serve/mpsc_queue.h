/**
 * @file
 * Bounded lock-free multi-producer/single-consumer queue: the ingress
 * path of the serving subsystem. Client threads enqueue requests with
 * two atomic operations and never take a lock; the dispatcher is the
 * single consumer.
 *
 * The algorithm is a bounded ring of cells with per-cell sequence
 * numbers (Vyukov's bounded queue, restricted here to one consumer).
 * A cell's sequence tells each side whose turn it is:
 *   seq == pos            -> cell free, a producer may claim slot pos
 *   seq == pos + 1        -> cell full, the consumer may take slot pos
 *   otherwise             -> the ring has wrapped: full (producer side)
 *                            or empty (consumer side).
 * Producers claim slots with one CAS on head_; the consumer advances
 * tail_ with plain stores (it is the only writer). try_push/try_pop
 * never block and never allocate, so backpressure is an explicit
 * "false" the caller turns into reject-or-block policy.
 */
#ifndef MPS_SERVE_MPSC_QUEUE_H
#define MPS_SERVE_MPSC_QUEUE_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "mps/util/log.h"

namespace mps {

/**
 * Bounded lock-free MPSC queue of movable, default-constructible
 * values. Capacity is rounded up to a power of two. Per-producer FIFO:
 * two pushes by the same thread dequeue in push order.
 */
template <typename T>
class MpscQueue
{
  public:
    /** @param capacity minimum slot count (>= 1); rounded to 2^k. */
    explicit MpscQueue(size_t capacity)
    {
        MPS_CHECK(capacity >= 1, "queue capacity must be >= 1");
        size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        cells_ = std::make_unique<Cell[]>(cap);
        mask_ = cap - 1;
        for (size_t i = 0; i < cap; ++i)
            cells_[i].sequence.store(i, std::memory_order_relaxed);
        head_.store(0, std::memory_order_relaxed);
        tail_.store(0, std::memory_order_relaxed);
    }

    MpscQueue(const MpscQueue &) = delete;
    MpscQueue &operator=(const MpscQueue &) = delete;

    /** Slots in the ring (the power-of-two the capacity rounded to). */
    size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue @p value. Returns false (value untouched apart from the
     * move into the parameter) when the queue is full. Any thread.
     */
    bool
    try_push(T &&value)
    {
        Cell *cell;
        size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            size_t seq = cell->sequence.load(std::memory_order_acquire);
            intptr_t dif = static_cast<intptr_t>(seq) -
                           static_cast<intptr_t>(pos);
            if (dif == 0) {
                // Free cell: claim slot pos (the CAS is the only point
                // of producer-producer contention).
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // ring wrapped: full
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        cell->sequence.store(pos + 1, std::memory_order_release);
        return true;
    }

    /**
     * Dequeue into @p out; false when empty. Must only ever be called
     * from one thread at a time (the single consumer).
     */
    bool
    try_pop(T &out)
    {
        size_t pos = tail_.load(std::memory_order_relaxed);
        Cell *cell = &cells_[pos & mask_];
        size_t seq = cell->sequence.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) !=
            0)
            return false; // producer not done yet (or empty)
        out = std::move(cell->value);
        cell->value = T{}; // drop any resource the slot still owns
        // Mark the cell free for the producer one lap ahead.
        cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
        tail_.store(pos + 1, std::memory_order_relaxed);
        return true;
    }

    /**
     * Instantaneous occupancy estimate (racy by nature; exact when no
     * push is in flight). Used for the queue-depth gauge.
     */
    size_t
    size_approx() const
    {
        size_t head = head_.load(std::memory_order_acquire);
        size_t tail = tail_.load(std::memory_order_acquire);
        return head >= tail ? head - tail : 0;
    }

    /** True when size_approx() == 0. */
    bool empty_approx() const { return size_approx() == 0; }

  private:
    // One ring slot. The sequence is the synchronization point between
    // the producer that fills the slot and the consumer that drains it.
    struct Cell
    {
        std::atomic<size_t> sequence{0};
        T value{};
    };

    static constexpr size_t kCacheLine = 64;

    std::unique_ptr<Cell[]> cells_;
    size_t mask_ = 0;
    // Producers and the consumer touch disjoint lines.
    alignas(kCacheLine) std::atomic<size_t> head_{0}; // producers
    alignas(kCacheLine) std::atomic<size_t> tail_{0}; // consumer
};

} // namespace mps

#endif // MPS_SERVE_MPSC_QUEUE_H
