#include "mps/gcn/gemm.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "mps/core/microkernel.h"
#include "mps/util/log.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

namespace {

void
check_gemm_shapes(const DenseMatrix &x, const DenseMatrix &w,
                  const DenseMatrix &out)
{
    MPS_CHECK(x.cols() == w.rows(), "GEMM inner dimensions differ: ",
              x.cols(), " vs ", w.rows());
    MPS_CHECK(out.rows() == x.rows() && out.cols() == w.cols(),
              "GEMM output must be ", x.rows(), "x", w.cols());
}

/** Compute rows [row_begin, row_end) of out = x * w (ikj order). */
void
gemm_rows(const DenseMatrix &x, const DenseMatrix &w, DenseMatrix &out,
          index_t row_begin, index_t row_end)
{
    const index_t f = x.cols();
    const index_t d = w.cols();
    const RowKernels &rk = select_row_kernels(d);
    for (index_t i = row_begin; i < row_end; ++i) {
        value_t *orow = out.row(i);
        rk.zero(orow, d);
        const value_t *xrow = x.row(i);
        for (index_t k = 0; k < f; ++k) {
            const value_t xv = xrow[k];
            if (xv == 0.0f)
                continue; // feature matrices are moderately sparse
            rk.axpy(orow, xv, w.row(k), d);
        }
    }
}

} // namespace

void
dense_gemm(const DenseMatrix &x, const DenseMatrix &w, DenseMatrix &out,
           WorkStealPool &pool)
{
    check_gemm_shapes(x, w, out);
    if (x.rows() == 0)
        return;
    const index_t chunk_rows = 64;
    const uint64_t chunks =
        (static_cast<uint64_t>(x.rows()) + chunk_rows - 1) / chunk_rows;
    pool.parallel_for(chunks, [&](uint64_t c) {
        index_t begin = static_cast<index_t>(c) * chunk_rows;
        index_t end = std::min<index_t>(begin + chunk_rows, x.rows());
        gemm_rows(x, w, out, begin, end);
    });
}

void
reference_gemm(const DenseMatrix &x, const DenseMatrix &w,
               DenseMatrix &out)
{
    check_gemm_shapes(x, w, out);
    gemm_rows(x, w, out, 0, x.rows());
}

void
dense_gemm_panel(const DenseMatrix &x, index_t x_row0, const DenseMatrix &w,
                 index_t w_col0, index_t width, DenseMatrix &panel,
                 index_t panel_col0, index_t rows, WorkStealPool &pool)
{
    MPS_CHECK(width > 0 && w_col0 >= 0 && w_col0 + width <= w.cols(),
              "W panel [", w_col0, ", ", w_col0 + width,
              ") out of range for ", w.cols(), " cols");
    MPS_CHECK(panel_col0 >= 0 && panel_col0 + width <= panel.cols(),
              "panel columns out of range");
    MPS_CHECK(x_row0 >= 0 && x_row0 + rows <= x.rows(),
              "X rows out of range");
    MPS_CHECK(rows <= panel.rows(), "panel has too few rows");
    if (rows == 0)
        return;
    const index_t f = x.cols();
    const RowKernels &rk = select_row_kernels(width);
    pool.parallel_for_ranges(
        static_cast<uint64_t>(rows), [&](uint64_t begin, uint64_t end) {
            for (index_t i = static_cast<index_t>(begin);
                 i < static_cast<index_t>(end); ++i) {
                value_t *prow = panel.row(i) + panel_col0;
                rk.zero(prow, width);
                const value_t *xrow = x.row(x_row0 + i);
                for (index_t k = 0; k < f; ++k) {
                    const value_t xv = xrow[k];
                    if (xv == 0.0f)
                        continue; // same skip as gemm_rows
                    rk.axpy(prow, xv, w.row(k) + w_col0, width);
                }
            }
        });
}

void
dense_gemm_panel(const DenseMatrix &x, const DenseMatrix &w,
                 index_t w_col0, index_t width, DenseMatrix &panel,
                 WorkStealPool &pool)
{
    dense_gemm_panel(x, /*x_row0=*/0, w, w_col0, width, panel,
                     /*panel_col0=*/0, x.rows(), pool);
}

void
dense_gemm_rank_update(const DenseMatrix &h_panel, index_t width,
                       const DenseMatrix &w, index_t w_row0,
                       DenseMatrix &out, WorkStealPool &pool)
{
    MPS_CHECK(width > 0 && width <= h_panel.cols(),
              "panel width out of range");
    MPS_CHECK(w_row0 >= 0 && w_row0 + width <= w.rows(),
              "W rows [", w_row0, ", ", w_row0 + width,
              ") out of range for ", w.rows(), " rows");
    MPS_CHECK(out.rows() == h_panel.rows() && out.cols() == w.cols(),
              "rank-update output must be ", h_panel.rows(), "x",
              w.cols());
    const index_t d = w.cols();
    const RowKernels &rk = select_row_kernels(d);
    // The pipeline calls this right after the panel sweep, which
    // committed rows in ascending traversal order — so the panel's
    // TAIL is what is still cache-resident. Rows are independent and
    // the per-row FLOP order is untouched, so walk the index space
    // mirrored and consume the most recently committed rows first;
    // on big panels this turns a cold DRAM re-read of the head into a
    // hot re-read of the tail.
    const index_t last = out.rows() - 1;
    pool.parallel_for_ranges(
        static_cast<uint64_t>(out.rows()),
        [&](uint64_t begin, uint64_t end) {
            for (uint64_t j = begin; j < end; ++j) {
                const index_t i = last - static_cast<index_t>(j);
                value_t *orow = out.row(i);
                const value_t *hrow = h_panel.row(i);
                for (index_t k = 0; k < width; ++k) {
                    const value_t hv = hrow[k];
                    if (hv == 0.0f)
                        continue; // ReLU outputs are mostly zero
                    rk.axpy(orow, hv, w.row(w_row0 + k), d);
                }
            }
        });
}

void
RankUpdateEpilogue::apply(value_t *crow, index_t row, index_t /*c_col0*/,
                          index_t width, const void *ctx)
{
    const auto &e = *static_cast<const RankUpdateEpilogue *>(ctx);
    // Same scalar expressions as activation_epilogue's variants — the
    // bit-identity guarantee depends on it.
    switch (e.act) {
      case Activation::kRelu:
        for (index_t c = 0; c < width; ++c)
            crow[c] = crow[c] > 0.0f ? crow[c] : 0.0f;
        break;
      case Activation::kSigmoid:
        for (index_t c = 0; c < width; ++c)
            crow[c] = 1.0f / (1.0f + std::exp(-crow[c]));
        break;
      case Activation::kNone:
        break;
    }
    const index_t out_row = e.scatter != nullptr ? e.scatter[row] : row;
    value_t *orow = e.out->row(out_row);
    const index_t d = e.out->cols();
    // No zero-skip here, deliberately: post-ReLU rows are about half
    // zeros in an unpredictable pattern, and the skip branch
    // mispredicts its way to costing MORE than the axpys it saves
    // (measured ~1.7x on the 500k-node bench's rank update). Adding
    // hv * w with hv == 0 contributes ±0.0f, which leaves every
    // accumulator value bit-unchanged except one already holding
    // -0.0f — and these sums cannot produce -0.0f without a product
    // underflowing, far outside the value ranges GNN features reach.
    // The 1-thread bit gate verifies this empirically.
    for (index_t k = 0; k < width; ++k)
        e.rk->axpy(orow, crow[k], e.w->row(e.w_row0 + k), d);
}

RankUpdateEpilogue
make_rank_update_epilogue(Activation act, const DenseMatrix &w,
                          DenseMatrix &out, const index_t *scatter)
{
    MPS_CHECK(out.cols() == w.cols(), "rank-update accumulator must be n x ",
              w.cols());
    RankUpdateEpilogue e;
    e.act = act;
    e.w = &w;
    e.out = &out;
    e.scatter = scatter;
    e.rk = &select_row_kernels(out.cols());
    return e;
}

PanelSourceFn
gemm_panel_source(const DenseMatrix &x, const DenseMatrix &w,
                  WorkStealPool &pool)
{
    // The buffer is shared by every panel of the run (the first call
    // sees the widest panel) and owned by the closure, so slice-backed
    // plans never pay for it.
    auto buf = std::make_shared<DenseMatrix>();
    return [&x, &w, &pool, buf](index_t col0, index_t width) {
        if (buf->rows() != x.rows() || buf->cols() < width)
            *buf = DenseMatrix(x.rows(), width);
        dense_gemm_panel(x, w, col0, width, *buf, pool);
        // fresh: the buffer was just rewritten for this panel, so a
        // quantizing plan must re-encode it (panel columns only).
        return PanelSource{buf.get(), 0, buf.get(), /*fresh=*/true};
    };
}

PanelSourceFn
gemm_panel_source(const DenseMatrix &x, const DenseMatrix &w,
                  WorkStealPool &pool, DenseMatrix &buf)
{
    return [&x, &w, &pool, &buf](index_t col0, index_t width) {
        if (buf.rows() != x.rows() || buf.cols() < width)
            buf = DenseMatrix(x.rows(), width);
        dense_gemm_panel(x, w, col0, width, buf, pool);
        return PanelSource{&buf, 0, &buf, /*fresh=*/true};
    };
}

PanelSourceFn
slice_panel_source(const DenseMatrix &xw)
{
    return [&xw](index_t col0, index_t) {
        return PanelSource{&xw, col0};
    };
}

PanelSourceFn
slice_panel_source(DenseMatrix &xw)
{
    // Mutable overload: the plan may quantize the matrix in place (the
    // shadow encode happens once, on the first panel, full-width).
    return [&xw](index_t col0, index_t) {
        return PanelSource{&xw, col0, &xw, /*fresh=*/false};
    };
}

} // namespace mps
