#include "mps/gcn/gemm.h"

#include <algorithm>

#include "mps/core/microkernel.h"
#include "mps/util/log.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

namespace {

void
check_gemm_shapes(const DenseMatrix &x, const DenseMatrix &w,
                  const DenseMatrix &out)
{
    MPS_CHECK(x.cols() == w.rows(), "GEMM inner dimensions differ: ",
              x.cols(), " vs ", w.rows());
    MPS_CHECK(out.rows() == x.rows() && out.cols() == w.cols(),
              "GEMM output must be ", x.rows(), "x", w.cols());
}

/** Compute rows [row_begin, row_end) of out = x * w (ikj order). */
void
gemm_rows(const DenseMatrix &x, const DenseMatrix &w, DenseMatrix &out,
          index_t row_begin, index_t row_end)
{
    const index_t f = x.cols();
    const index_t d = w.cols();
    const RowKernels &rk = select_row_kernels(d);
    for (index_t i = row_begin; i < row_end; ++i) {
        value_t *orow = out.row(i);
        rk.zero(orow, d);
        const value_t *xrow = x.row(i);
        for (index_t k = 0; k < f; ++k) {
            const value_t xv = xrow[k];
            if (xv == 0.0f)
                continue; // feature matrices are moderately sparse
            rk.axpy(orow, xv, w.row(k), d);
        }
    }
}

} // namespace

void
dense_gemm(const DenseMatrix &x, const DenseMatrix &w, DenseMatrix &out,
           WorkStealPool &pool)
{
    check_gemm_shapes(x, w, out);
    if (x.rows() == 0)
        return;
    const index_t chunk_rows = 64;
    const uint64_t chunks =
        (static_cast<uint64_t>(x.rows()) + chunk_rows - 1) / chunk_rows;
    pool.parallel_for(chunks, [&](uint64_t c) {
        index_t begin = static_cast<index_t>(c) * chunk_rows;
        index_t end = std::min<index_t>(begin + chunk_rows, x.rows());
        gemm_rows(x, w, out, begin, end);
    });
}

void
reference_gemm(const DenseMatrix &x, const DenseMatrix &w,
               DenseMatrix &out)
{
    check_gemm_shapes(x, w, out);
    gemm_rows(x, w, out, 0, x.rows());
}

} // namespace mps
