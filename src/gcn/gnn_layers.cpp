#include "mps/gcn/gnn_layers.h"

#include <cstddef>
#include <utility>

#include "mps/core/microkernel.h"
#include "mps/gcn/aggregators.h"
#include "mps/gcn/gemm.h"
#include "mps/util/log.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

SageLayer::SageLayer(DenseMatrix w_self, DenseMatrix w_neigh,
                     Activation act)
    : w_self_(std::move(w_self)), w_neigh_(std::move(w_neigh)), act_(act)
{
    MPS_CHECK(w_self_.rows() == w_neigh_.rows() &&
                  w_self_.cols() == w_neigh_.cols(),
              "SAGE weight matrices must have identical shapes");
}

void
SageLayer::forward(const CsrMatrix &a, const DenseMatrix &h,
                   const MergePathSchedule &sched, DenseMatrix &out,
                   WorkStealPool &pool) const
{
    MPS_CHECK(h.cols() == in_features(), "feature width mismatch");
    MPS_CHECK(out.rows() == a.rows() && out.cols() == out_features(),
              "out must be nodes x out_features");

    DenseMatrix mean(a.rows(), h.cols());
    aggregate_mean(a, h, mean, sched, pool);

    DenseMatrix self_part(a.rows(), out_features());
    dense_gemm(h, w_self_, self_part, pool);
    DenseMatrix neigh_part(a.rows(), out_features());
    dense_gemm(mean, w_neigh_, neigh_part, pool);

    const index_t dim = out.cols();
    const RowKernels &rk = select_row_kernels(dim);
    for (index_t r = 0; r < out.rows(); ++r) {
        value_t *orow = out.row(r);
        rk.copy(orow, self_part.row(r), dim);
        rk.add(orow, neigh_part.row(r), dim);
    }
    apply_activation(out, act_);
}

GinLayer::GinLayer(DenseMatrix w, float eps, Activation act)
    : w_(std::move(w)), eps_(eps), act_(act)
{
    MPS_CHECK(w_.rows() > 0 && w_.cols() > 0, "GIN weights empty");
}

void
GinLayer::forward(const CsrMatrix &a, const DenseMatrix &h,
                  const MergePathSchedule &sched, DenseMatrix &out,
                  WorkStealPool &pool) const
{
    MPS_CHECK(h.cols() == in_features(), "feature width mismatch");
    MPS_CHECK(out.rows() == a.rows() && out.cols() == out_features(),
              "out must be nodes x out_features");

    DenseMatrix aggregated(a.rows(), h.cols());
    aggregate_gin(a, h, aggregated, sched, pool, eps_);
    dense_gemm(aggregated, w_, out, pool);
    apply_activation(out, act_);
}

} // namespace mps
