#include "mps/gcn/gnn_layers.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "mps/core/fusion.h"
#include "mps/core/locality.h"
#include "mps/core/microkernel.h"
#include "mps/gcn/aggregators.h"
#include "mps/gcn/gemm.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/timer.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

namespace {

/** Resolved fused panel width over the feature dimension @p f. */
index_t
fused_aggregate_tile(index_t n_rows, index_t f)
{
    SpmmLocality loc = default_fused_locality(n_rows, f);
    return loc.tiled(f) ? loc.tile_d : f;
}

void
record_fused_aggregate(double ms)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (!metrics.enabled())
        return;
    metrics.counter_add("fusion.runs");
    metrics.counter_add("fusion.aggregate_runs");
    metrics.histogram_record("kernel.fused.exec_ms", ms);
}

} // namespace

SageLayer::SageLayer(DenseMatrix w_self, DenseMatrix w_neigh,
                     Activation act)
    : w_self_(std::move(w_self)), w_neigh_(std::move(w_neigh)), act_(act)
{
    MPS_CHECK(w_self_.rows() == w_neigh_.rows() &&
                  w_self_.cols() == w_neigh_.cols(),
              "SAGE weight matrices must have identical shapes");
}

void
SageLayer::forward(const CsrMatrix &a, const DenseMatrix &h,
                   const MergePathSchedule &sched, DenseMatrix &out,
                   WorkStealPool &pool) const
{
    MPS_CHECK(h.cols() == in_features(), "feature width mismatch");
    MPS_CHECK(out.rows() == a.rows() && out.cols() == out_features(),
              "out must be nodes x out_features");

    if (fusion_enabled()) {
        // Reverse fusion: the structural aggregation runs FIRST, so
        // each mean panel rank-updates the neighbor combination while
        // hot — neither the full mean matrix nor a separate
        // neigh_part temporary is materialized. The self term goes
        // straight into out; the final add replays the unfused
        // copy+add element order exactly.
        Timer wall;
        const index_t f = h.cols();
        const index_t dim = out.cols();
        const index_t tile = fused_aggregate_tile(a.cols(), f);
        DenseMatrix panel(a.rows(), tile);
        DenseMatrix neigh(a.rows(), dim);
        neigh.fill(0.0f);
        const RowKernels &rk_panel = select_row_kernels(tile);
        for (index_t col = 0; col < f; col += tile) {
            const index_t width = std::min(tile, f - col);
            aggregate_sum_panel(a, h, col, width, panel, sched, pool);
            const RowKernels &rk =
                width == tile ? rk_panel : select_row_kernels(width);
            pool.parallel_for(
                static_cast<uint64_t>(a.rows()),
                [&](uint64_t r) {
                    index_t row = static_cast<index_t>(r);
                    value_t inv =
                        1.0f /
                        std::max<value_t>(
                            static_cast<value_t>(a.degree(row)), 1.0f);
                    rk.scale(panel.row(row), inv, width);
                },
                /*grain=*/256);
            dense_gemm_rank_update(panel, width, w_neigh_, col, neigh,
                                   pool);
        }
        dense_gemm(h, w_self_, out, pool);
        const RowKernels &rk = select_row_kernels(dim);
        for (index_t r = 0; r < out.rows(); ++r)
            rk.add(out.row(r), neigh.row(r), dim);
        apply_activation(out, act_);
        record_fused_aggregate(wall.elapsed_ms());
        return;
    }

    DenseMatrix mean(a.rows(), h.cols());
    aggregate_mean(a, h, mean, sched, pool);

    DenseMatrix self_part(a.rows(), out_features());
    dense_gemm(h, w_self_, self_part, pool);
    DenseMatrix neigh_part(a.rows(), out_features());
    dense_gemm(mean, w_neigh_, neigh_part, pool);

    const index_t dim = out.cols();
    const RowKernels &rk = select_row_kernels(dim);
    for (index_t r = 0; r < out.rows(); ++r) {
        value_t *orow = out.row(r);
        rk.copy(orow, self_part.row(r), dim);
        rk.add(orow, neigh_part.row(r), dim);
    }
    apply_activation(out, act_);
}

GinLayer::GinLayer(DenseMatrix w, float eps, Activation act)
    : w_(std::move(w)), eps_(eps), act_(act)
{
    MPS_CHECK(w_.rows() > 0 && w_.cols() > 0, "GIN weights empty");
}

void
GinLayer::forward(const CsrMatrix &a, const DenseMatrix &h,
                  const MergePathSchedule &sched, DenseMatrix &out,
                  WorkStealPool &pool) const
{
    MPS_CHECK(h.cols() == in_features(), "feature width mismatch");
    MPS_CHECK(out.rows() == a.rows() && out.cols() == out_features(),
              "out must be nodes x out_features");

    if (fusion_enabled()) {
        // Reverse fusion: each ((1+eps)*h + sum) panel rank-updates
        // the combination GEMM while hot — the full aggregated matrix
        // is never materialized. The self-term axpy aligns with the
        // unfused full-width axpy whenever the panel width is a
        // multiple of the SIMD block, which every auto width is.
        Timer wall;
        const index_t f = h.cols();
        const index_t tile = fused_aggregate_tile(a.cols(), f);
        DenseMatrix panel(a.rows(), tile);
        out.fill(0.0f);
        const value_t self = 1.0f + eps_;
        for (index_t col = 0; col < f; col += tile) {
            const index_t width = std::min(tile, f - col);
            aggregate_sum_panel(a, h, col, width, panel, sched, pool);
            const RowKernels &rk = select_row_kernels(width);
            pool.parallel_for(
                static_cast<uint64_t>(a.rows()),
                [&](uint64_t r) {
                    index_t row = static_cast<index_t>(r);
                    rk.axpy(panel.row(row), self, h.row(row) + col,
                            width);
                },
                /*grain=*/256);
            dense_gemm_rank_update(panel, width, w_, col, out, pool);
        }
        apply_activation(out, act_);
        record_fused_aggregate(wall.elapsed_ms());
        return;
    }

    DenseMatrix aggregated(a.rows(), h.cols());
    aggregate_gin(a, h, aggregated, sched, pool, eps_);
    dense_gemm(aggregated, w_, out, pool);
    apply_activation(out, act_);
}

} // namespace mps
