#include "mps/gcn/aggregators.h"

#include <algorithm>
#include <limits>

#include "mps/core/microkernel.h"
#include "mps/util/log.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

namespace {

void
check_shapes(const CsrMatrix &a, const DenseMatrix &h,
             const DenseMatrix &out)
{
    MPS_CHECK(a.rows() == a.cols(), "aggregation needs a square matrix");
    MPS_CHECK(h.rows() == a.cols(), "h rows must equal graph nodes");
    MPS_CHECK(out.rows() == a.rows() && out.cols() == h.cols(),
              "out must be nodes x h.cols()");
}

/**
 * Generic merge-path aggregation skeleton: kMax reduces with max and
 * commits with atomic_max; kSum reduces with + and commits with
 * atomic_add. Values of A are ignored (structural aggregation).
 */
enum class Reduce { kSum, kMax };

void
aggregate_generic(const CsrMatrix &a, const DenseMatrix &h,
                  DenseMatrix &out, const MergePathSchedule &sched,
                  WorkStealPool &pool, Reduce reduce)
{
    check_shapes(a, h, out);
    const index_t dim = h.cols();
    const RowKernels &rk = select_row_kernels(dim);
    const value_t identity =
        reduce == Reduce::kMax ? std::numeric_limits<value_t>::lowest()
                               : 0.0f;
    out.fill(identity);

    pool.parallel_for(
        static_cast<uint64_t>(sched.num_threads()),
        [&](uint64_t ti) {
            index_t t = static_cast<index_t>(ti);
            ResolvedWork w = sched.resolve(t, a);
            value_t *acc = microkernel_scratch(dim);

            auto accumulate = [&](index_t begin, index_t end) {
                rk.fill(acc, identity, dim);
                for (index_t k = begin; k < end; ++k) {
                    const value_t *hrow = h.row(a.col_idx()[k]);
                    if (reduce == Reduce::kSum)
                        rk.add(acc, hrow, dim);
                    else
                        rk.vmax(acc, hrow, dim);
                }
            };
            auto commit = [&](index_t row, bool atomic) {
                value_t *orow = out.row(row);
                if (reduce == Reduce::kSum) {
                    if (atomic)
                        rk.commit_atomic(orow, acc, dim);
                    else
                        rk.commit_plain(orow, acc, dim);
                } else {
                    if (atomic)
                        rk.commit_max_atomic(orow, acc, dim);
                    else
                        rk.vmax(orow, acc, dim);
                }
            };

            if (w.has_head()) {
                accumulate(w.head_begin, w.head_end);
                commit(w.head_row, w.head_atomic);
            }
            for (index_t r = w.first_complete_row;
                 r < w.last_complete_row; ++r) {
                accumulate(a.row_begin(r), a.row_end(r));
                commit(r, false);
            }
            if (w.has_tail()) {
                accumulate(w.tail_begin, w.tail_end);
                commit(w.tail_row, w.tail_atomic);
            }
        },
        /*grain=*/8);
}

} // namespace

void
aggregate_sum(const CsrMatrix &a, const DenseMatrix &h, DenseMatrix &out,
              const MergePathSchedule &sched, WorkStealPool &pool)
{
    aggregate_generic(a, h, out, sched, pool, Reduce::kSum);
}

void
aggregate_mean(const CsrMatrix &a, const DenseMatrix &h, DenseMatrix &out,
               const MergePathSchedule &sched, WorkStealPool &pool)
{
    aggregate_sum(a, h, out, sched, pool);
    const index_t dim = h.cols();
    const RowKernels &rk = select_row_kernels(dim);
    pool.parallel_for(
        static_cast<uint64_t>(a.rows()),
        [&](uint64_t r) {
            index_t row = static_cast<index_t>(r);
            value_t inv =
                1.0f / std::max<value_t>(
                           static_cast<value_t>(a.degree(row)), 1.0f);
            rk.scale(out.row(row), inv, dim);
        },
        /*grain=*/256);
}

void
aggregate_max(const CsrMatrix &a, const DenseMatrix &h, DenseMatrix &out,
              const MergePathSchedule &sched, WorkStealPool &pool)
{
    aggregate_generic(a, h, out, sched, pool, Reduce::kMax);
    // Isolated nodes have no neighbors: define their max as 0.
    const index_t dim = h.cols();
    const value_t lowest = std::numeric_limits<value_t>::lowest();
    pool.parallel_for(
        static_cast<uint64_t>(a.rows()),
        [&](uint64_t r) {
            index_t row = static_cast<index_t>(r);
            if (a.degree(row) > 0)
                return;
            value_t *orow = out.row(row);
            for (index_t d = 0; d < dim; ++d) {
                if (orow[d] == lowest)
                    orow[d] = 0.0f;
            }
        },
        /*grain=*/256);
}

void
aggregate_sum_panel(const CsrMatrix &a, const DenseMatrix &h,
                    index_t col0, index_t width, DenseMatrix &panel,
                    const MergePathSchedule &sched, WorkStealPool &pool)
{
    MPS_CHECK(a.rows() == a.cols(), "aggregation needs a square matrix");
    MPS_CHECK(h.rows() == a.cols(), "h rows must equal graph nodes");
    MPS_CHECK(col0 >= 0 && width > 0 && col0 + width <= h.cols(),
              "h panel [", col0, ", ", col0 + width, ") out of range for ",
              h.cols(), " cols");
    MPS_CHECK(panel.rows() == a.rows() && panel.cols() >= width,
              "panel must be nodes x >= width");
    panel.fill(0.0f);

    const RowKernels &rk = select_row_kernels(width);
    pool.parallel_for(
        static_cast<uint64_t>(sched.num_threads()),
        [&](uint64_t ti) {
            index_t t = static_cast<index_t>(ti);
            ResolvedWork w = sched.resolve(t, a);
            value_t *acc = microkernel_scratch(width);

            auto accumulate = [&](index_t begin, index_t end) {
                rk.zero(acc, width);
                for (index_t k = begin; k < end; ++k)
                    rk.add(acc, h.row(a.col_idx()[k]) + col0, width);
            };
            auto commit = [&](index_t row, bool atomic) {
                value_t *prow = panel.row(row);
                if (atomic)
                    rk.commit_atomic(prow, acc, width);
                else
                    rk.commit_plain(prow, acc, width);
            };

            if (w.has_head()) {
                accumulate(w.head_begin, w.head_end);
                commit(w.head_row, w.head_atomic);
            }
            for (index_t r = w.first_complete_row;
                 r < w.last_complete_row; ++r) {
                accumulate(a.row_begin(r), a.row_end(r));
                commit(r, false);
            }
            if (w.has_tail()) {
                accumulate(w.tail_begin, w.tail_end);
                commit(w.tail_row, w.tail_atomic);
            }
        },
        /*grain=*/8);
}

void
aggregate_gin(const CsrMatrix &a, const DenseMatrix &h, DenseMatrix &out,
              const MergePathSchedule &sched, WorkStealPool &pool, float eps)
{
    aggregate_sum(a, h, out, sched, pool);
    const index_t dim = h.cols();
    const RowKernels &rk = select_row_kernels(dim);
    const value_t self = 1.0f + eps;
    pool.parallel_for(
        static_cast<uint64_t>(a.rows()),
        [&](uint64_t r) {
            index_t row = static_cast<index_t>(r);
            rk.axpy(out.row(row), self, h.row(row), dim);
        },
        /*grain=*/256);
}

} // namespace mps
