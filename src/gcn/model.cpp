#include "mps/gcn/model.h"

#include <utility>
#include <vector>

#include "mps/core/fusion.h"
#include "mps/core/schedule_cache.h"
#include "mps/gcn/gemm.h"
#include "mps/kernels/registry.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/timer.h"
#include "mps/util/trace.h"

namespace mps {

GcnModel::GcnModel(const std::string &kernel_name, ScheduleMode mode)
    : kernel_name_(kernel_name), mode_(mode),
      schedule_cache_(&ScheduleCache::global())
{
}

void
GcnModel::add_layer(GcnLayer layer)
{
    if (!layers_.empty()) {
        MPS_CHECK(layers_.back().out_features() == layer.in_features(),
                  "layer widths must chain: previous out ",
                  layers_.back().out_features(), ", next in ",
                  layer.in_features());
    }
    layers_.push_back(std::move(layer));
    kernels_.push_back(make_spmm_kernel(kernel_name_));
    kernels_.back()->set_schedule_cache(schedule_cache_);
    kernels_.back()->set_reorder(reorder_);
    prepared_rows_ = -1; // invalidate the offline cache
    prepared_nnz_ = -1;
}

void
GcnModel::set_reorder(ReorderKind kind)
{
    reorder_ = kind;
    for (auto &kernel : kernels_)
        kernel->set_reorder(kind);
    prepared_rows_ = -1; // plans must be re-resolved at next prepare
    prepared_nnz_ = -1;
}

void
GcnModel::set_schedule_cache(ScheduleCache *cache)
{
    schedule_cache_ = cache;
    for (auto &kernel : kernels_)
        kernel->set_schedule_cache(cache);
    prepared_rows_ = -1; // schedules must be re-resolved from the cache
    prepared_nnz_ = -1;
}

GcnModel
GcnModel::two_layer(index_t in_features, index_t hidden, index_t classes,
                    uint64_t seed, const std::string &kernel_name,
                    ScheduleMode mode)
{
    GcnModel model(kernel_name, mode);
    model.add_layer(GcnLayer(random_layer_weights(in_features, hidden,
                                                  seed),
                             Activation::kRelu));
    model.add_layer(GcnLayer(random_layer_weights(hidden, classes,
                                                  seed + 1),
                             Activation::kNone));
    return model;
}

void
GcnModel::prepare_all(const CsrMatrix &a)
{
    for (size_t i = 0; i < layers_.size(); ++i)
        kernels_[i]->prepare(a, layers_[i].out_features());
    prepared_rows_ = a.rows();
    prepared_nnz_ = a.nnz();
}

bool
GcnModel::fused_infer(const CsrMatrix &a, const DenseMatrix &x,
                      WorkStealPool &pool, DenseMatrix &result)
{
    if (!fusion_enabled())
        return false;
    // Every layer must offer a fused plan, or the whole inference
    // falls back — mixing fused and unfused layers would still
    // materialize the intermediates the pipeline exists to avoid.
    std::vector<FusedLayerPlan *> plans;
    plans.reserve(layers_.size());
    for (size_t i = 0; i < layers_.size(); ++i) {
        FusedLayerPlan *plan =
            kernels_[i]->fused_plan(a, layers_[i].out_features());
        if (plan == nullptr)
            return false;
        plan->set_precision(precision_);
        plans.push_back(plan);
    }

    // Multi-layer pipelining: layer i streams its finalized output
    // panels (activation already applied in the commit epilogue)
    // straight into rank updates of layer i+1's combination — the
    // hidden matrix H_i is never materialized, only the next layer's
    // narrow XW accumulator is. The final layer materializes the
    // model output.
    ScopedSpan span("gcn.infer.fused", "gcn");
    const size_t last = layers_.size() - 1;
    DenseMatrix xw_cur;
    for (size_t i = 0; i < layers_.size(); ++i) {
        ScopedSpan layer_span("gcn.layer" + std::to_string(i) + ".fused",
                              "gcn");
        const PanelSourceFn src =
            i == 0 ? gemm_panel_source(x, layers_[0].weights(), pool,
                                       plans[0]->gemm_scratch())
                   : slice_panel_source(xw_cur);
        const PanelEpilogue epi =
            activation_epilogue(layers_[i].activation());
        if (i < last) {
            // Row-granular handoff: the commit epilogue applies the
            // activation AND rank-updates the next layer's XW while
            // the row is in L1 — the output panel itself is never
            // re-read (see RankUpdateEpilogue).
            const DenseMatrix &w_next = layers_[i + 1].weights();
            DenseMatrix xw_next(a.rows(), layers_[i + 1].out_features());
            xw_next.fill(0.0f);
            RankUpdateEpilogue rank = make_rank_update_epilogue(
                layers_[i].activation(), w_next, xw_next,
                plans[i]->locality().row_scatter);
            plans[i]->run_streaming(
                src,
                [&rank](index_t col0, index_t width, const DenseMatrix &) {
                    rank.w_row0 = col0 + width;
                },
                pool, &RankUpdateEpilogue::apply, &rank);
            xw_cur = std::move(xw_next);
        } else {
            result = DenseMatrix(a.rows(), layers_[i].out_features());
            plans[i]->run(src, result, pool, epi);
        }
    }
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled() && layers_.size() > 1)
        metrics.counter_add("fusion.pipelined_layers",
                            static_cast<int64_t>(layers_.size() - 1));
    return true;
}

DenseMatrix
GcnModel::infer(const CsrMatrix &a, const DenseMatrix &x, WorkStealPool &pool,
                InferenceStats *stats)
{
    MPS_CHECK(!layers_.empty(), "model has no layers");
    MPS_CHECK(x.cols() == layers_.front().in_features(),
              "input feature width mismatch");

    ScopedSpan span("gcn.infer", "gcn");
    MetricsRegistry &metrics = MetricsRegistry::global();

    InferenceStats local;
    bool need_prepare =
        mode_ == ScheduleMode::kOnline ||
        prepared_rows_ != a.rows() || prepared_nnz_ != a.nnz();
    if (need_prepare) {
        ScopedSpan prepare_span("gcn.prepare", "gcn");
        Timer timer;
        prepare_all(a);
        local.schedule_seconds = timer.elapsed_seconds();
        if (metrics.enabled()) {
            metrics.timer_record_ms("gcn.prepare_ms",
                                    local.schedule_seconds * 1e3);
        }
    }

    Timer timer;
    DenseMatrix current;
    if (!fused_infer(a, x, pool, current)) {
        current = x;
        for (size_t i = 0; i < layers_.size(); ++i) {
            ScopedSpan layer_span("gcn.layer" + std::to_string(i), "gcn");
            DenseMatrix next(a.rows(), layers_[i].out_features());
            layers_[i].forward(a, current, *kernels_[i], next, pool,
                               precision_);
            current = std::move(next);
        }
    }
    local.compute_seconds = timer.elapsed_seconds();
    if (metrics.enabled()) {
        metrics.counter_add("gcn.inferences");
        metrics.timer_record_ms("gcn.infer_ms",
                                local.compute_seconds * 1e3);
    }

    if (stats != nullptr)
        *stats = local;
    return current;
}

} // namespace mps
