#include "mps/gcn/gat.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mps/core/microkernel.h"
#include "mps/core/spmm.h"
#include "mps/gcn/gemm.h"
#include "mps/util/log.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

CsrMatrix
edge_softmax(const CsrMatrix &structure,
             const std::vector<value_t> &scores, WorkStealPool &pool)
{
    MPS_CHECK(scores.size() == static_cast<size_t>(structure.nnz()),
              "one score per edge required");
    std::vector<value_t> values(scores.begin(), scores.end());
    pool.parallel_for(
        static_cast<uint64_t>(structure.rows()),
        [&](uint64_t r) {
            index_t row = static_cast<index_t>(r);
            index_t begin = structure.row_begin(row);
            index_t end = structure.row_end(row);
            if (begin == end)
                return;
            value_t peak = values[static_cast<size_t>(begin)];
            for (index_t k = begin + 1; k < end; ++k)
                peak = std::max(peak, values[static_cast<size_t>(k)]);
            double sum = 0.0;
            for (index_t k = begin; k < end; ++k) {
                double e = std::exp(static_cast<double>(
                    values[static_cast<size_t>(k)] - peak));
                values[static_cast<size_t>(k)] =
                    static_cast<value_t>(e);
                sum += e;
            }
            value_t inv = static_cast<value_t>(1.0 / sum);
            for (index_t k = begin; k < end; ++k)
                values[static_cast<size_t>(k)] *= inv;
        },
        /*grain=*/128);
    return CsrMatrix(structure.rows(), structure.cols(),
                     structure.row_ptr(), structure.col_idx(),
                     std::move(values));
}

GatLayer::GatLayer(DenseMatrix w, std::vector<value_t> a_src,
                   std::vector<value_t> a_dst, float slope,
                   Activation act)
    : w_(std::move(w)), a_src_(std::move(a_src)),
      a_dst_(std::move(a_dst)), slope_(slope), act_(act)
{
    MPS_CHECK(a_src_.size() == static_cast<size_t>(w_.cols()) &&
                  a_dst_.size() == static_cast<size_t>(w_.cols()),
              "attention vectors must have length out_features");
}

void
GatLayer::forward(const CsrMatrix &a, const DenseMatrix &h,
                  const MergePathSchedule &sched, DenseMatrix &out,
                  WorkStealPool &pool) const
{
    MPS_CHECK(h.cols() == in_features(), "feature width mismatch");
    MPS_CHECK(out.rows() == a.rows() && out.cols() == out_features(),
              "out must be nodes x out_features");

    // 1. Project: HW = H * W.
    DenseMatrix hw(a.rows(), out_features());
    dense_gemm(h, w_, hw, pool);

    // 2. Per-node attention halves: s_src[i] = HW[i] . a_src etc.
    std::vector<value_t> s_src(static_cast<size_t>(a.rows()));
    std::vector<value_t> s_dst(static_cast<size_t>(a.rows()));
    pool.parallel_for(
        static_cast<uint64_t>(a.rows()),
        [&](uint64_t r) {
            const value_t *row = hw.row(static_cast<index_t>(r));
            s_src[r] = row_dot(row, a_src_.data(), out_features());
            s_dst[r] = row_dot(row, a_dst_.data(), out_features());
        },
        /*grain=*/256);

    // 3. Edge scores with LeakyReLU, then row-wise softmax.
    std::vector<value_t> scores(static_cast<size_t>(a.nnz()));
    pool.parallel_for(
        static_cast<uint64_t>(a.rows()),
        [&](uint64_t r) {
            index_t row = static_cast<index_t>(r);
            for (index_t k = a.row_begin(row); k < a.row_end(row); ++k) {
                value_t e =
                    s_src[static_cast<size_t>(row)] +
                    s_dst[static_cast<size_t>(a.col_idx()[k])];
                scores[static_cast<size_t>(k)] =
                    e > 0.0f ? e : slope_ * e;
            }
        },
        /*grain=*/128);
    CsrMatrix attention = edge_softmax(a, scores, pool);

    // 4. Weighted aggregation: the merge-path SpMM on the attention
    //    matrix (same structure as A, so the schedule is reusable).
    mergepath_spmm_parallel(attention, hw, out, sched, pool);
    apply_activation(out, act_);

    // Keep the coefficients only when asked: an nnz-sized copy per
    // layer per graph is pure debugging payload on a serving path.
    if (retain_attention_)
        attention_ = std::move(attention);
    else
        release_attention();
}

} // namespace mps
