#include "mps/gcn/layer.h"

#include <cmath>
#include <utility>

#include "mps/core/precision.h"
#include "mps/gcn/gemm.h"
#include "mps/util/log.h"
#include "mps/util/rng.h"
#include "mps/util/trace.h"

namespace mps {

GcnLayer::GcnLayer(DenseMatrix weights, Activation act)
    : weights_(std::move(weights)), act_(act)
{
    MPS_CHECK(weights_.rows() > 0 && weights_.cols() > 0,
              "layer weights must be non-empty");
}

void
GcnLayer::forward(const CsrMatrix &a, const DenseMatrix &x,
                  const SpmmKernel &kernel, DenseMatrix &out,
                  WorkStealPool &pool, StorageMode precision) const
{
    MPS_CHECK(a.rows() == a.cols(), "adjacency matrix must be square");
    MPS_CHECK(x.rows() == a.rows(), "feature rows must match graph nodes");
    MPS_CHECK(x.cols() == in_features(), "feature width must match W rows");
    MPS_CHECK(out.rows() == a.rows() && out.cols() == out_features(),
              "output must be n x out_features");

    ScopedSpan span("gcn.layer.forward", "gcn");
    if (fusion_enabled()) {
        // Fused pipeline: XW is produced TILE-wide into a hot panel
        // buffer and swept immediately, the activation folded into the
        // commit epilogue — the n x d temporary never exists. Kernels
        // without a fused plan (and MPS_FUSE=0) take the classic path.
        if (FusedLayerPlan *plan = kernel.fused_plan(a, out_features())) {
            ScopedSpan fused("gcn.layer.fused", "gcn");
            plan->set_precision(precision);
            plan->run(gemm_panel_source(x, weights_, pool,
                                        plan->gemm_scratch()),
                      out, pool, activation_epilogue(act_));
            return;
        }
    }
    DenseMatrix xw(x.rows(), out_features());
    {
        ScopedSpan combine("gcn.layer.combine", "gcn");
        dense_gemm(x, weights_, xw, pool);
    }
    {
        ScopedSpan aggregate("gcn.layer.aggregate", "gcn");
        // Encode the reduced-width shadow before the aggregation: the
        // merge-path and hybrid kernels gather from b.storage(); every
        // other kernel reads the untouched f32 master rows.
        if (precision != StorageMode::kF32)
            quantize_dense(xw, precision, &pool);
        kernel.run(a, xw, out, pool);
    }
    apply_activation(out, act_);
}

DenseMatrix
random_layer_weights(index_t in_features, index_t out_features,
                     uint64_t seed)
{
    DenseMatrix w(in_features, out_features);
    uint64_t state = seed ^ 0x6c0f;
    Pcg32 rng(splitmix64(state), splitmix64(state));
    // Glorot/Xavier uniform bound.
    float bound = std::sqrt(6.0f / static_cast<float>(in_features +
                                                      out_features));
    w.fill_random(rng, -bound, bound);
    return w;
}

} // namespace mps
