#include "mps/gcn/training.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mps/core/fusion.h"
#include "mps/core/locality.h"
#include "mps/core/microkernel.h"
#include "mps/core/spmm.h"
#include "mps/gcn/activation.h"
#include "mps/gcn/gemm.h"
#include "mps/gcn/layer.h"
#include "mps/sparse/coo_matrix.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"
#include "mps/util/timer.h"
#include "mps/util/trace.h"

namespace mps {

namespace {

/** out = a^T * b with a (n x k), b (n x m); out is k x m. */
void
gemm_at_b(const DenseMatrix &a, const DenseMatrix &b, DenseMatrix &out,
          WorkStealPool &pool)
{
    MPS_CHECK(a.rows() == b.rows(), "a^T b: row counts differ");
    MPS_CHECK(out.rows() == a.cols() && out.cols() == b.cols(),
              "a^T b: bad output shape");
    const index_t n = a.rows(), k = a.cols(), m = b.cols();
    const RowKernels &rk = select_row_kernels(m);
    const index_t chunk = 16;
    pool.parallel_for(
        (static_cast<uint64_t>(k) + chunk - 1) / chunk, [&](uint64_t c) {
            index_t begin = static_cast<index_t>(c) * chunk;
            index_t end = std::min<index_t>(begin + chunk, k);
            for (index_t kk = begin; kk < end; ++kk) {
                value_t *orow = out.row(kk);
                rk.zero(orow, m);
                for (index_t i = 0; i < n; ++i) {
                    const value_t av = a(i, kk);
                    if (av == 0.0f)
                        continue;
                    rk.axpy(orow, av, b.row(i), m);
                }
            }
        });
}

/** out = a * b^T with a (n x m), b (k x m); out is n x k. */
void
gemm_a_bt(const DenseMatrix &a, const DenseMatrix &b, DenseMatrix &out,
          WorkStealPool &pool)
{
    MPS_CHECK(a.cols() == b.cols(), "a b^T: inner dims differ");
    MPS_CHECK(out.rows() == a.rows() && out.cols() == b.rows(),
              "a b^T: bad output shape");
    const index_t m = a.cols(), k = b.rows();
    const RowKernels &rk = select_row_kernels(m);
    const index_t chunk = 64;
    pool.parallel_for(
        (static_cast<uint64_t>(a.rows()) + chunk - 1) / chunk,
        [&](uint64_t c) {
            index_t begin = static_cast<index_t>(c) * chunk;
            index_t end = std::min<index_t>(begin + chunk, a.rows());
            for (index_t i = begin; i < end; ++i) {
                const value_t *arow = a.row(i);
                value_t *orow = out.row(i);
                for (index_t j = 0; j < k; ++j)
                    orow[j] = rk.dot(arow, b.row(j), m);
            }
        });
}

/** w -= lr * grad (element-wise). */
void
sgd_update(DenseMatrix &w, const DenseMatrix &grad, float lr)
{
    MPS_CHECK(w.rows() == grad.rows() && w.cols() == grad.cols(),
              "gradient shape mismatch");
    const index_t cols = w.cols();
    for (index_t r = 0; r < w.rows(); ++r)
        row_axpy(w.row(r), -lr, grad.row(r), cols);
}

} // namespace

double
softmax_cross_entropy(const DenseMatrix &logits,
                      const std::vector<int32_t> &labels,
                      const std::vector<bool> &mask, DenseMatrix &grad)
{
    MPS_CHECK(labels.size() == static_cast<size_t>(logits.rows()),
              "labels length must equal rows");
    MPS_CHECK(mask.size() == labels.size(),
              "mask length must equal rows");
    MPS_CHECK(grad.rows() == logits.rows() && grad.cols() == logits.cols(),
              "grad shape must match logits");

    grad.fill(0.0f);
    const index_t c = logits.cols();
    double loss = 0.0;
    int64_t counted = 0;
    for (index_t r = 0; r < logits.rows(); ++r) {
        if (!mask[static_cast<size_t>(r)])
            continue;
        int32_t y = labels[static_cast<size_t>(r)];
        MPS_CHECK(y >= 0 && y < c, "label out of range: ", y);
        const value_t *row = logits.row(r);
        value_t peak = row[0];
        for (index_t j = 1; j < c; ++j)
            peak = std::max(peak, row[j]);
        double denom = 0.0;
        for (index_t j = 0; j < c; ++j)
            denom += std::exp(static_cast<double>(row[j] - peak));
        loss -= (static_cast<double>(row[y] - peak) - std::log(denom));
        for (index_t j = 0; j < c; ++j) {
            double p = std::exp(static_cast<double>(row[j] - peak)) /
                       denom;
            grad(r, j) =
                static_cast<value_t>(p - (j == y ? 1.0 : 0.0));
        }
        ++counted;
    }
    MPS_CHECK(counted > 0, "loss needs at least one masked node");
    // Average over the masked nodes (gradients too).
    const value_t inv = 1.0f / static_cast<value_t>(counted);
    for (index_t r = 0; r < grad.rows(); ++r) {
        if (!mask[static_cast<size_t>(r)])
            continue;
        row_scale(grad.row(r), inv, c);
    }
    return loss / static_cast<double>(counted);
}

std::vector<int32_t>
argmax_rows(const DenseMatrix &logits)
{
    std::vector<int32_t> out(static_cast<size_t>(logits.rows()), 0);
    for (index_t r = 0; r < logits.rows(); ++r) {
        const value_t *row = logits.row(r);
        int32_t best = 0;
        for (index_t j = 1; j < logits.cols(); ++j) {
            if (row[j] > row[best])
                best = j;
        }
        out[static_cast<size_t>(r)] = best;
    }
    return out;
}

double
accuracy(const DenseMatrix &logits, const std::vector<int32_t> &labels,
         const std::vector<bool> &mask)
{
    std::vector<int32_t> pred = argmax_rows(logits);
    int64_t hit = 0, total = 0;
    for (size_t i = 0; i < pred.size(); ++i) {
        if (!mask[i])
            continue;
        ++total;
        hit += pred[i] == labels[i];
    }
    return total == 0 ? 0.0
                      : static_cast<double>(hit) /
                            static_cast<double>(total);
}

GcnTrainer::GcnTrainer(index_t in_features, index_t hidden,
                       index_t classes, uint64_t seed, float learning_rate)
    : w1_(random_layer_weights(in_features, hidden, seed)),
      w2_(random_layer_weights(hidden, classes, seed + 1)),
      lr_(learning_rate), schedule_cache_(&ScheduleCache::global())
{
}

void
GcnTrainer::set_schedule_cache(ScheduleCache &cache)
{
    schedule_cache_ = &cache;
    sched_.reset();
    sched_rows_ = -1; // re-resolve from the new cache on next use
    sched_nnz_ = -1;
}

void
GcnTrainer::ensure_schedule(const CsrMatrix &a)
{
    if (sched_ && sched_rows_ == a.rows() && sched_nnz_ == a.nnz())
        return;
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
    index_t threads = static_cast<index_t>(
        std::clamp<int64_t>(total / 32, 64, 8192));
    sched_ = schedule_cache_->get_or_build(a, threads);
    sched_rows_ = a.rows();
    sched_nnz_ = a.nnz();
}

DenseMatrix
GcnTrainer::predict(const CsrMatrix &a, const DenseMatrix &x,
                    WorkStealPool &pool)
{
    MPS_CHECK(x.cols() == w1_.rows(), "feature width mismatch");
    ensure_schedule(a);

    DenseMatrix logits(a.rows(), w2_.cols());
    if (fusion_enabled()) {
        // Fused 2-layer pipeline: layer 1 streams its ReLU'd output
        // panels straight into rank updates of H1 * W2, so neither XW1
        // nor H1 is ever materialized; layer 2 then consumes the
        // accumulated HW2 as zero-copy slices.
        FusedLayerPlan plan1(a, w1_.cols(), sched_,
                             default_fused_locality(a.cols(), w1_.cols()));
        FusedLayerPlan plan2(a, w2_.cols(), sched_,
                             default_fused_locality(a.cols(), w2_.cols()));
        DenseMatrix hw2(a.rows(), w2_.cols());
        hw2.fill(0.0f);
        RankUpdateEpilogue rank = make_rank_update_epilogue(
            Activation::kRelu, w2_, hw2, plan1.locality().row_scatter);
        plan1.run_streaming(
            gemm_panel_source(x, w1_, pool),
            [&rank](index_t col0, index_t width, const DenseMatrix &) {
                rank.w_row0 = col0 + width;
            },
            pool, &RankUpdateEpilogue::apply, &rank);
        plan2.run(slice_panel_source(hw2), logits, pool);
        return logits;
    }

    DenseMatrix xw1(a.rows(), w1_.cols());
    dense_gemm(x, w1_, xw1, pool);
    DenseMatrix h1(a.rows(), w1_.cols());
    mergepath_spmm_parallel(a, xw1, h1, *sched_, pool);
    apply_activation(h1, Activation::kRelu);

    DenseMatrix hw2(a.rows(), w2_.cols());
    dense_gemm(h1, w2_, hw2, pool);
    mergepath_spmm_parallel(a, hw2, logits, *sched_, pool);
    return logits;
}

double
GcnTrainer::step(const CsrMatrix &a, const DenseMatrix &x,
                 const std::vector<int32_t> &labels,
                 const std::vector<bool> &mask, WorkStealPool &pool)
{
    MPS_CHECK(a.rows() == a.cols(),
              "training expects a square (normalized) adjacency");
    MPS_CHECK(x.cols() == w1_.rows(), "feature width mismatch");
    ScopedSpan span("train.step", "train");
    MetricsRegistry &metrics = MetricsRegistry::global();
    Timer step_timer;
    ensure_schedule(a);

    DenseMatrix z1(a.rows(), w1_.cols());
    DenseMatrix logits(a.rows(), w2_.cols());
    DenseMatrix h1;
    {
        // ---- forward, keeping intermediates ----
        ScopedSpan forward_span("train.forward", "train");
        if (fusion_enabled()) {
            // The backward ReLU gate needs z1 pre-activation, so layer
            // 1 runs without an epilogue; the XW temporaries still
            // never touch DRAM.
            FusedLayerPlan plan1(
                a, w1_.cols(), sched_,
                default_fused_locality(a.cols(), w1_.cols()));
            FusedLayerPlan plan2(
                a, w2_.cols(), sched_,
                default_fused_locality(a.cols(), w2_.cols()));
            plan1.run(gemm_panel_source(x, w1_, pool), z1, pool);
            h1 = z1;
            apply_activation(h1, Activation::kRelu);
            plan2.run(gemm_panel_source(h1, w2_, pool), logits, pool);
        } else {
            DenseMatrix xw1(a.rows(), w1_.cols());
            dense_gemm(x, w1_, xw1, pool);
            mergepath_spmm_parallel(a, xw1, z1, *sched_, pool);
            h1 = z1;
            apply_activation(h1, Activation::kRelu);

            DenseMatrix hw2(a.rows(), w2_.cols());
            dense_gemm(h1, w2_, hw2, pool);
            mergepath_spmm_parallel(a, hw2, logits, *sched_, pool);
        }
    }

    // ---- loss ----
    DenseMatrix g2(a.rows(), w2_.cols());
    double loss = softmax_cross_entropy(logits, labels, mask, g2);

    DenseMatrix d_w1(w1_.rows(), w1_.cols());
    DenseMatrix d_w2(w2_.rows(), w2_.cols());
    {
        // ---- backward ----
        // Z2 = A * (H1 W2), A symmetric: d(H1 W2) = A * dZ2 — the same
        // merge-path SpMM as the forward aggregation.
        ScopedSpan backward_span("train.backward", "train");
        DenseMatrix d_hw2(a.rows(), w2_.cols());
        mergepath_spmm_parallel(a, g2, d_hw2, *sched_, pool);

        gemm_at_b(h1, d_hw2, d_w2, pool);
        DenseMatrix d_h1(a.rows(), w1_.cols());
        gemm_a_bt(d_hw2, w2_, d_h1, pool);

        // ReLU gate (row-wise: stay clear of the stride padding).
        {
            const index_t cols = d_h1.cols();
            for (index_t r = 0; r < d_h1.rows(); ++r) {
                value_t *g = d_h1.row(r);
                const value_t *z = z1.row(r);
                for (index_t j = 0; j < cols; ++j) {
                    if (z[j] <= 0.0f)
                        g[j] = 0.0f;
                }
            }
        }

        DenseMatrix d_xw1(a.rows(), w1_.cols());
        mergepath_spmm_parallel(a, d_h1, d_xw1, *sched_, pool);
        gemm_at_b(x, d_xw1, d_w1, pool);
    }

    // ---- update ----
    sgd_update(w1_, d_w1, lr_);
    sgd_update(w2_, d_w2, lr_);

    // Per-step (full-batch epoch) training stats.
    if (metrics.enabled()) {
        metrics.counter_add("train.steps");
        metrics.timer_record_ms("train.step_ms", step_timer.elapsed_ms());
        metrics.gauge_set("train.loss", loss);
    }
    return loss;
}

ClassificationProblem
make_classification_problem(index_t nodes, index_t classes,
                            index_t feature_dim, index_t avg_degree,
                            uint64_t seed, double train_fraction,
                            double noise)
{
    MPS_CHECK(nodes >= classes && classes >= 2,
              "need at least 2 classes and nodes >= classes");
    MPS_CHECK(feature_dim >= classes,
              "feature_dim must be >= classes for separable centroids");
    uint64_t state = seed ^ 0x7ea1;
    Pcg32 rng(splitmix64(state), splitmix64(state));

    ClassificationProblem prob;
    prob.num_classes = classes;
    prob.labels.resize(static_cast<size_t>(nodes));
    // Contiguous community blocks.
    for (index_t i = 0; i < nodes; ++i) {
        prob.labels[static_cast<size_t>(i)] = static_cast<int32_t>(
            std::min<index_t>(classes - 1,
                              i / std::max<index_t>(1, nodes / classes)));
    }

    // Stochastic-block-model-ish edges: 80% intra-class.
    CooMatrix coo(nodes, nodes);
    coo.reserve(static_cast<size_t>(nodes) * avg_degree);
    index_t block = std::max<index_t>(1, nodes / classes);
    for (index_t i = 0; i < nodes; ++i) {
        index_t base = (i / block) * block;
        index_t bsize = std::min<index_t>(block, nodes - base);
        for (index_t e = 0; e < avg_degree; ++e) {
            index_t j;
            if (rng.next_double() < 0.8) {
                j = base + static_cast<index_t>(rng.next_below(
                               static_cast<uint32_t>(bsize)));
            } else {
                j = static_cast<index_t>(
                    rng.next_below(static_cast<uint32_t>(nodes)));
            }
            if (j != i)
                coo.add(i, j, 1.0f);
        }
    }
    prob.graph = CsrMatrix::from_coo(std::move(coo));
    // Duplicate edges were merged by summing; reset to pure structure
    // before normalizing.
    for (auto &v : prob.graph.values())
        v = 1.0f;
    prob.graph.normalize_gcn();

    // Features: class centroid (one-hot-ish) + uniform noise.
    prob.features = DenseMatrix(nodes, feature_dim);
    for (index_t i = 0; i < nodes; ++i) {
        int32_t c = prob.labels[static_cast<size_t>(i)];
        for (index_t d = 0; d < feature_dim; ++d) {
            value_t centroid = (d % classes) == c ? 1.0f : 0.0f;
            prob.features(i, d) =
                centroid + rng.next_float(-static_cast<float>(noise),
                                          static_cast<float>(noise));
        }
    }

    // Train/test split.
    prob.train_mask.assign(static_cast<size_t>(nodes), false);
    prob.test_mask.assign(static_cast<size_t>(nodes), false);
    for (index_t i = 0; i < nodes; ++i) {
        bool train = rng.next_double() < train_fraction;
        prob.train_mask[static_cast<size_t>(i)] = train;
        prob.test_mask[static_cast<size_t>(i)] = !train;
    }
    return prob;
}

} // namespace mps
