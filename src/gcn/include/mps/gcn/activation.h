/**
 * @file
 * Element-wise activations for GCN layers (the sigma in
 * sigma(A x X^(l) x W^(l))).
 */
#ifndef MPS_GCN_ACTIVATION_H
#define MPS_GCN_ACTIVATION_H

#include <string>

#include "mps/core/spmm.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

/** Supported non-linearities. */
enum class Activation {
    kNone,    ///< identity (final layer before softmax/loss)
    kRelu,    ///< max(0, x)
    kSigmoid, ///< 1 / (1 + e^-x)
};

/** Apply @p act in place over every element of @p m. */
void apply_activation(DenseMatrix &m, Activation act);

/**
 * Apply @p act over columns [col0, col0 + width) of every row —
 * the panel-wise activation of the fused serve path (which must order
 * SpMM -> delta correction -> activation and therefore cannot fold the
 * activation into the commit sweep).
 */
void apply_activation_panel(DenseMatrix &m, Activation act, index_t col0,
                            index_t width);

/**
 * The commit-sweep epilogue computing @p act, element-identical to
 * apply_activation (same scalar expressions), or nullptr for kNone —
 * a null epilogue keeps the fused sweep on the exact unfused commit
 * path.
 */
PanelEpilogue activation_epilogue(Activation act);

/** Parse "none" / "relu" / "sigmoid"; fatal() otherwise. */
Activation parse_activation(const std::string &name);

} // namespace mps

#endif // MPS_GCN_ACTIVATION_H
