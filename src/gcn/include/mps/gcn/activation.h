/**
 * @file
 * Element-wise activations for GCN layers (the sigma in
 * sigma(A x X^(l) x W^(l))).
 */
#ifndef MPS_GCN_ACTIVATION_H
#define MPS_GCN_ACTIVATION_H

#include <string>

#include "mps/sparse/dense_matrix.h"

namespace mps {

/** Supported non-linearities. */
enum class Activation {
    kNone,    ///< identity (final layer before softmax/loss)
    kRelu,    ///< max(0, x)
    kSigmoid, ///< 1 / (1 + e^-x)
};

/** Apply @p act in place over every element of @p m. */
void apply_activation(DenseMatrix &m, Activation act);

/** Parse "none" / "relu" / "sigmoid"; fatal() otherwise. */
Activation parse_activation(const std::string &name);

} // namespace mps

#endif // MPS_GCN_ACTIVATION_H
