/**
 * @file
 * Single-head Graph Attention (GAT, Velickovic et al.) layer — the
 * attention-based GNN family from the paper's introduction.
 *
 * The attention coefficients live on the edges of A, so after the
 * edge-softmax the aggregation is exactly a value-weighted SpMM: the
 * attention matrix inherits A's sparsity structure (including its evil
 * rows), and the merge-path kernel executes it load-balanced with no
 * changes.
 */
#ifndef MPS_GCN_GAT_H
#define MPS_GCN_GAT_H

#include <vector>

#include "mps/core/schedule.h"
#include "mps/gcn/activation.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;

/**
 * Row-wise softmax over edge scores: for every row i of @p structure,
 * values[k in row i] = exp(scores[k] - row max) / row sum. Rows with
 * no edges are untouched. Returns the attention matrix (same
 * structure, new values).
 */
CsrMatrix edge_softmax(const CsrMatrix &structure,
                       const std::vector<value_t> &scores,
                       WorkStealPool &pool);

/** Single-head GAT layer. */
class GatLayer
{
  public:
    /**
     * @param w      f x d projection
     * @param a_src  length-d attention vector for the destination node
     * @param a_dst  length-d attention vector for the neighbor node
     * @param slope  LeakyReLU negative slope for the edge scores
     * @param act    output non-linearity
     */
    GatLayer(DenseMatrix w, std::vector<value_t> a_src,
             std::vector<value_t> a_dst, float slope, Activation act);

    index_t in_features() const { return w_.rows(); }
    index_t out_features() const { return w_.cols(); }

    /**
     * Forward pass: project, score edges, softmax per row, aggregate
     * with a merge-path weighted SpMM using @p sched.
     * @p out must be a.rows() x out_features().
     */
    void forward(const CsrMatrix &a, const DenseMatrix &h,
                 const MergePathSchedule &sched, DenseMatrix &out,
                 WorkStealPool &pool) const;

    /**
     * The attention matrix from the last forward (for inspection).
     * Empty when retention is disabled or after release_attention().
     */
    const CsrMatrix &last_attention() const { return attention_; }

    /**
     * Whether forward() keeps its attention matrix for inspection
     * (default true). Serving paths turn this off: retention holds an
     * extra nnz-sized value array per layer per graph indefinitely,
     * purely for debugging.
     */
    void set_retain_attention(bool retain) { retain_attention_ = retain; }
    bool retain_attention() const { return retain_attention_; }

    /** Free the retained attention matrix now (idempotent). */
    void release_attention() const { attention_ = CsrMatrix(); }

  private:
    DenseMatrix w_;
    std::vector<value_t> a_src_;
    std::vector<value_t> a_dst_;
    float slope_;
    Activation act_;
    bool retain_attention_ = true;
    mutable CsrMatrix attention_;
};

} // namespace mps

#endif // MPS_GCN_GAT_H
