/**
 * @file
 * GraphSAGE and GIN layers built on the merge-path aggregators — the
 * other GNN families the paper's introduction cites. Both reuse the
 * load-balanced aggregation schedule, demonstrating that
 * MergePath-SpMM is not GCN-specific.
 */
#ifndef MPS_GCN_GNN_LAYERS_H
#define MPS_GCN_GNN_LAYERS_H

#include "mps/core/schedule.h"
#include "mps/gcn/activation.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;

/**
 * GraphSAGE layer (mean aggregator):
 *   out = act( H * W_self + mean_{j in N(i)} H[j] * W_neigh )
 */
class SageLayer
{
  public:
    /** Both weight matrices are f x d. */
    SageLayer(DenseMatrix w_self, DenseMatrix w_neigh, Activation act);

    index_t in_features() const { return w_self_.rows(); }
    index_t out_features() const { return w_self_.cols(); }

    /**
     * Forward pass using @p sched (a merge-path schedule for @p a).
     * @p out must be a.rows() x out_features(); overwritten.
     */
    void forward(const CsrMatrix &a, const DenseMatrix &h,
                 const MergePathSchedule &sched, DenseMatrix &out,
                 WorkStealPool &pool) const;

  private:
    DenseMatrix w_self_;
    DenseMatrix w_neigh_;
    Activation act_;
};

/**
 * GIN layer:
 *   out = act( ((1 + eps) * H[i] + sum_{j in N(i)} H[j]) * W )
 */
class GinLayer
{
  public:
    GinLayer(DenseMatrix w, float eps, Activation act);

    index_t in_features() const { return w_.rows(); }
    index_t out_features() const { return w_.cols(); }
    float eps() const { return eps_; }

    /** Forward pass; @p out must be a.rows() x out_features(). */
    void forward(const CsrMatrix &a, const DenseMatrix &h,
                 const MergePathSchedule &sched, DenseMatrix &out,
                 WorkStealPool &pool) const;

  private:
    DenseMatrix w_;
    float eps_;
    Activation act_;
};

} // namespace mps

#endif // MPS_GCN_GNN_LAYERS_H
