/**
 * @file
 * One graph-convolution layer: out = sigma(A * (X * W)), computed in
 * the accelerator-standard order A x (X x W) — dense GEMM for the
 * combination, then the sparse-times-dense SpMM this library is about
 * for the aggregation.
 */
#ifndef MPS_GCN_LAYER_H
#define MPS_GCN_LAYER_H

#include <memory>

#include "mps/gcn/activation.h"
#include "mps/kernels/spmm_kernel.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;

/** A single GCN layer with its trained weights. */
class GcnLayer
{
  public:
    /**
     * @param weights f x d weight matrix (copied)
     * @param act     non-linearity applied to the aggregation output
     */
    GcnLayer(DenseMatrix weights, Activation act);

    index_t in_features() const { return weights_.rows(); }
    index_t out_features() const { return weights_.cols(); }
    const DenseMatrix &weights() const { return weights_; }
    Activation activation() const { return act_; }

    /**
     * Forward pass: out = sigma(A * (x * W)) using @p kernel for the
     * aggregation SpMM. The kernel must already be prepared for
     * (a, out_features()); preparation policy (online/offline) is the
     * model's responsibility.
     *
     * @param a      n x n normalized adjacency matrix
     * @param x      n x in_features() node features
     * @param kernel prepared aggregation kernel
     * @param out    n x out_features() output (overwritten)
     * @param pool   worker pool for GEMM + SpMM
     * @param precision aggregation operand storage: kF32 is the exact
     *        historical execution; kBf16/kInt8 store XW reduced-width
     *        for the SpMM gather (fp32 accumulate throughout). Only the
     *        merge-path/hybrid aggregation honors it — other registry
     *        kernels keep reading the f32 master, which stays valid.
     */
    void forward(const CsrMatrix &a, const DenseMatrix &x,
                 const SpmmKernel &kernel, DenseMatrix &out,
                 WorkStealPool &pool,
                 StorageMode precision = StorageMode::kF32) const;

  private:
    DenseMatrix weights_;
    Activation act_;
};

/** Deterministic Glorot-style random weights for examples and tests. */
DenseMatrix random_layer_weights(index_t in_features, index_t out_features,
                                 uint64_t seed);

} // namespace mps

#endif // MPS_GCN_LAYER_H
