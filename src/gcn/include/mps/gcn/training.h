/**
 * @file
 * Training support for the 2-layer GCN: softmax cross-entropy loss,
 * full backward pass through both aggregation SpMMs (using A^T, which
 * for the GCN-normalized adjacency equals A up to symmetry), SGD
 * updates, and a synthetic planted-communities classification problem
 * on which the pipeline demonstrably learns.
 *
 * Training triples the number of A x dense SpMM invocations per step
 * (forward + two backward aggregations), which is exactly the workload
 * the paper's kernel accelerates; the trainer reuses one merge-path
 * schedule across all of them (offline setting).
 */
#ifndef MPS_GCN_TRAINING_H
#define MPS_GCN_TRAINING_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mps/core/schedule.h"
#include "mps/core/schedule_cache.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;

/**
 * Softmax cross-entropy over the masked rows.
 *
 * @param logits n x c scores
 * @param labels per-node class ids (only masked entries are read)
 * @param mask   which nodes contribute to the loss (training set)
 * @param grad   out-param: dLoss/dlogits (zero outside the mask),
 *               averaged over the masked count
 * @return mean loss over the masked nodes
 */
double softmax_cross_entropy(const DenseMatrix &logits,
                             const std::vector<int32_t> &labels,
                             const std::vector<bool> &mask,
                             DenseMatrix &grad);

/** Row-wise argmax of @p logits. */
std::vector<int32_t> argmax_rows(const DenseMatrix &logits);

/** Fraction of masked nodes whose argmax equals the label. */
double accuracy(const DenseMatrix &logits,
                const std::vector<int32_t> &labels,
                const std::vector<bool> &mask);

/** Two-layer GCN with trainable weights (ReLU hidden layer). */
class GcnTrainer
{
  public:
    /**
     * @param in_features  input feature width
     * @param hidden       hidden width
     * @param classes      output classes
     * @param seed         weight initialization seed
     * @param learning_rate SGD step size
     */
    GcnTrainer(index_t in_features, index_t hidden, index_t classes,
               uint64_t seed, float learning_rate = 0.1f);

    /**
     * One full-batch training step on graph @p a (GCN-normalized,
     * symmetric) with features @p x: forward, loss on the masked
     * nodes, backward, SGD update. Returns the loss before the update.
     * The merge-path schedule for @p a is built on first use and
     * cached (offline setting).
     */
    double step(const CsrMatrix &a, const DenseMatrix &x,
                const std::vector<int32_t> &labels,
                const std::vector<bool> &mask, WorkStealPool &pool);

    /** Forward pass only; returns the logits. */
    DenseMatrix predict(const CsrMatrix &a, const DenseMatrix &x,
                        WorkStealPool &pool);

    const DenseMatrix &w1() const { return w1_; }
    const DenseMatrix &w2() const { return w2_; }

    /**
     * Source of merge-path schedules (default: the process-wide
     * ScheduleCache, so repeated epochs and co-located trainers share
     * one schedule per graph).
     */
    void set_schedule_cache(ScheduleCache &cache);

  private:
    void ensure_schedule(const CsrMatrix &a);

    DenseMatrix w1_; // in_features x hidden
    DenseMatrix w2_; // hidden x classes
    float lr_;
    ScheduleCache *schedule_cache_;
    std::shared_ptr<const MergePathSchedule> sched_;
    index_t sched_rows_ = -1;
    index_t sched_nnz_ = -1;
};

/** A synthetic node-classification problem (planted communities). */
struct ClassificationProblem
{
    CsrMatrix graph;            ///< GCN-normalized adjacency
    DenseMatrix features;       ///< nodes x feature_dim
    std::vector<int32_t> labels;
    std::vector<bool> train_mask;
    std::vector<bool> test_mask;
    index_t num_classes = 0;
};

/**
 * Generate a planted-communities problem: @p classes blocks with
 * intra-block edge bias (stochastic-block-model style) and features =
 * class centroid + noise. A 2-layer GCN should reach high test
 * accuracy on it. Deterministic in @p seed.
 */
ClassificationProblem make_classification_problem(
    index_t nodes, index_t classes, index_t feature_dim,
    index_t avg_degree, uint64_t seed, double train_fraction = 0.3,
    double noise = 0.8);

} // namespace mps

#endif // MPS_GCN_TRAINING_H
