/**
 * @file
 * Dense GEMM for the combination phase of a GCN layer: XW = X * W with
 * X (n x f) the node-feature matrix and W (f x d) the trained weights.
 * The paper's accelerators fold this into the same SpMM engine; here a
 * straightforward blocked dense kernel suffices because the A * (XW)
 * SpMM dominates and is the object of study.
 */
#ifndef MPS_GCN_GEMM_H
#define MPS_GCN_GEMM_H

#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;

/**
 * out = x * w. Shapes: x is n x f, w is f x d, out must be n x d.
 * Row-parallel over @p pool with a cache-blocked inner loop.
 */
void dense_gemm(const DenseMatrix &x, const DenseMatrix &w,
                DenseMatrix &out, WorkStealPool &pool);

/** Sequential reference GEMM for tests. */
void reference_gemm(const DenseMatrix &x, const DenseMatrix &w,
                    DenseMatrix &out);

} // namespace mps

#endif // MPS_GCN_GEMM_H
