/**
 * @file
 * Dense GEMM for the combination phase of a GCN layer: XW = X * W with
 * X (n x f) the node-feature matrix and W (f x d) the trained weights.
 * The paper's accelerators fold this into the same SpMM engine; here a
 * straightforward blocked dense kernel suffices because the A * (XW)
 * SpMM dominates and is the object of study.
 */
#ifndef MPS_GCN_GEMM_H
#define MPS_GCN_GEMM_H

#include "mps/core/fusion.h"
#include "mps/gcn/activation.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;
struct RowKernels;

/**
 * out = x * w. Shapes: x is n x f, w is f x d, out must be n x d.
 * Row-parallel over @p pool with a cache-blocked inner loop.
 */
void dense_gemm(const DenseMatrix &x, const DenseMatrix &w,
                DenseMatrix &out, WorkStealPool &pool);

/** Sequential reference GEMM for tests. */
void reference_gemm(const DenseMatrix &x, const DenseMatrix &w,
                    DenseMatrix &out);

/**
 * Panel-on-demand GEMM for the fused pipeline: compute one TILE-wide
 * column slice of X * W,
 *   panel[i, panel_col0 : panel_col0+width)
 *     = x.row(x_row0 + i) * w[:, w_col0 : w_col0+width)
 * for i in [0, rows). Same ikj loop, zero-skip and microkernel calls
 * as dense_gemm restricted to W's column slice — bit-identical to the
 * corresponding columns of the full GEMM when w_col0 and panel_col0
 * are multiples of 16 (SIMD block alignment). The x_row0 offset lets
 * the serve path read one request's block out of the stacked tall
 * feature matrix.
 */
void dense_gemm_panel(const DenseMatrix &x, index_t x_row0,
                      const DenseMatrix &w, index_t w_col0, index_t width,
                      DenseMatrix &panel, index_t panel_col0, index_t rows,
                      WorkStealPool &pool);

/** Whole-X convenience: panel[:, 0:width) = x * w[:, w_col0:+width). */
void dense_gemm_panel(const DenseMatrix &x, const DenseMatrix &w,
                      index_t w_col0, index_t width, DenseMatrix &panel,
                      WorkStealPool &pool);

/**
 * Rank-`width` update of the NEXT layer's combination from a streamed
 * output panel: out += h_panel[:, 0:width) * w[w_row0 : w_row0+width, :).
 * Accumulating panel-by-panel in ascending w_row0 order replays the
 * exact axpy sequence (k ascending, zero-skip) of
 * dense_gemm(h, w, out) — so the multi-layer pipeline that never
 * materializes H reproduces the unfused combination bit-for-bit.
 * @p out must be zero-filled before the first panel.
 */
void dense_gemm_rank_update(const DenseMatrix &h_panel, index_t width,
                            const DenseMatrix &w, index_t w_row0,
                            DenseMatrix &out, WorkStealPool &pool);

/**
 * Row-granular pipeline epilogue: the moment the merge-path sweep
 * finalizes an output row, apply the layer activation to it and
 * immediately rank-update the NEXT layer's XW accumulator from that
 * row — while the row is still in L1. The consumer-based pipeline
 * (run_streaming + dense_gemm_rank_update) re-reads the whole n x tile
 * output panel from DRAM after each sweep; on graphs whose panels dwarf
 * the cache that second trip is pure bandwidth, and folding the rank
 * update into the commit removes it entirely.
 *
 * FLOP-for-FLOP identical to activation_epilogue followed by
 * dense_gemm_rank_update: rows are independent and the within-row
 * k-ascending axpy order is unchanged, so 1-thread fused output stays
 * bit-identical to the unfused reference.
 *
 * Concurrency: the inline epilogue only fires on plain commits, whose
 * rows are owned whole by one executor; split rows reach apply() in
 * the single-threaded shared-row pass after the panel barrier. Rows of
 * @p out are therefore never written concurrently.
 *
 * `w_row0` must track the global first column of the panel in flight.
 * Panels stream in ascending order starting at 0, so start it at 0 and
 * advance it from run_streaming's consumer callback (which fires after
 * each panel's epilogues and before the next panel's sweep):
 *
 *   RankUpdateEpilogue rank = make_rank_update_epilogue(...);
 *   plan.run_streaming(src,
 *       [&](index_t col0, index_t width, const DenseMatrix &) {
 *           rank.w_row0 = col0 + width;
 *       },
 *       pool, &RankUpdateEpilogue::apply, &rank);
 */
struct RankUpdateEpilogue
{
    Activation act = Activation::kNone;
    const DenseMatrix *w = nullptr; ///< next layer's weights
    DenseMatrix *out = nullptr;     ///< next layer's XW accumulator
    /**
     * The plan's SpmmLocality::row_scatter (or nullptr). The sweep
     * hands the epilogue the traversal row id while the commit itself
     * lands on the scattered row — the rank update must write the
     * accumulator row the panel row was physically committed to, so
     * slice-fed downstream layers see the same positional pairing as
     * the consumer-based pipeline.
     */
    const index_t *scatter = nullptr;
    const RowKernels *rk = nullptr; ///< kernels for out's width
    index_t w_row0 = 0; ///< global col0 of the panel in flight

    /** PanelEpilogue trampoline; @p ctx is the RankUpdateEpilogue. */
    static void apply(value_t *crow, index_t row, index_t c_col0,
                      index_t width, const void *ctx);
};

/**
 * Build a RankUpdateEpilogue accumulating act(panel) * w into @p out
 * (which must be zero-filled and outlive the run, like @p w and the
 * scatter array).
 */
RankUpdateEpilogue make_rank_update_epilogue(Activation act,
                                             const DenseMatrix &w,
                                             DenseMatrix &out,
                                             const index_t *scatter);

/**
 * Panel source computing X * W slices on demand into a closure-owned
 * buffer (allocated on first call at the first — widest — panel
 * width). Captures @p x, @p w and @p pool by reference: the returned
 * callable must not outlive them.
 */
PanelSourceFn gemm_panel_source(const DenseMatrix &x, const DenseMatrix &w,
                                WorkStealPool &pool);

/**
 * Same, but computing into @p buf owned by the caller — typically a
 * plan's gemm_scratch(), so a cached FusedLayerPlan reuses one buffer
 * across every forward instead of allocating per call. @p buf is
 * (re)sized on first use; the callable additionally must not outlive
 * @p buf.
 */
PanelSourceFn gemm_panel_source(const DenseMatrix &x, const DenseMatrix &w,
                                WorkStealPool &pool, DenseMatrix &buf);

/**
 * Zero-copy panel source over an already-materialized combination
 * (used by pipeline stages whose XW accumulated via rank updates).
 * Captures @p xw by reference.
 */
PanelSourceFn slice_panel_source(const DenseMatrix &xw);

/**
 * Mutable-operand overload: identical slicing, but the returned
 * PanelSource marks @p xw quantizable so a FusedLayerPlan running at
 * reduced precision may encode its bf16/int8 shadow buffers in place
 * (once, full-width). The f32 data is never modified.
 */
PanelSourceFn slice_panel_source(DenseMatrix &xw);

} // namespace mps

#endif // MPS_GCN_GEMM_H
