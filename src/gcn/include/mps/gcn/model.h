/**
 * @file
 * Multi-layer GCN inference with online vs. offline scheduling.
 *
 * Offline: the aggregation kernel's schedule is computed once per graph
 * and reused across inferences (the default; GNNAdvisor pre-processes
 * its neighbor partitions the same way). Online: the schedule is
 * recomputed on every inference, modelling an evolving graph — the
 * setting of the paper's Figure 8, which shows the merge-path schedule
 * costs only ~2% of a 2-layer inference.
 */
#ifndef MPS_GCN_MODEL_H
#define MPS_GCN_MODEL_H

#include <memory>
#include <string>
#include <vector>

#include "mps/gcn/layer.h"

namespace mps {

class ScheduleCache;

/** When the aggregation schedule is (re)built. */
enum class ScheduleMode {
    kOffline, ///< prepare once per graph, reuse across inferences
    kOnline,  ///< prepare on every inference
};

/** Host-side timing breakdown of one inference. */
struct InferenceStats
{
    double schedule_seconds = 0.0; ///< kernel prepare() time
    double compute_seconds = 0.0;  ///< GEMM + SpMM + activation time
    double total_seconds() const {
        return schedule_seconds + compute_seconds;
    }
    double overhead_fraction() const {
        double t = total_seconds();
        return t == 0.0 ? 0.0 : schedule_seconds / t;
    }
};

/** A stack of GCN layers sharing one aggregation kernel. */
class GcnModel
{
  public:
    /**
     * @param kernel_name aggregation SpMM kernel (registry name)
     * @param mode        schedule construction policy
     */
    explicit GcnModel(const std::string &kernel_name = "mergepath",
                      ScheduleMode mode = ScheduleMode::kOffline);

    /** Append a layer; widths must chain (checked at inference). */
    void add_layer(GcnLayer layer);

    /**
     * Build a standard 2-layer GCN: f -> hidden (ReLU) -> classes
     * (identity), with deterministic random weights.
     */
    static GcnModel two_layer(index_t in_features, index_t hidden,
                              index_t classes, uint64_t seed,
                              const std::string &kernel_name = "mergepath",
                              ScheduleMode mode = ScheduleMode::kOffline);

    size_t num_layers() const { return layers_.size(); }
    const GcnLayer &layer(size_t i) const { return layers_[i]; }
    ScheduleMode mode() const { return mode_; }

    /**
     * Aggregation operand precision for inference (training always
     * runs f32). Defaults to default_precision() — the cached
     * MPS_PRECISION parse — so deployments opt whole processes in via
     * the environment; call this to pin a model programmatically.
     * Accumulation stays fp32 in every mode (see DESIGN.md §12).
     */
    void set_precision(StorageMode p) { precision_ = p; }
    StorageMode precision() const { return precision_; }

    /**
     * Share merge-path schedules through @p cache (default: the
     * process-wide ScheduleCache). Layers with the same tuned cost then
     * reuse one schedule, and online-mode re-preparation stops paying
     * for rebuilds. Pass nullptr for private per-kernel schedules.
     */
    void set_schedule_cache(ScheduleCache *cache);

    /**
     * Apply a locality reordering to every layer's aggregation kernel
     * (see SpmmKernel::set_reorder): the adjacency is row-permuted
     * once per graph through the schedule cache and outputs scatter
     * back through the inverse permutation — features and results stay
     * in the caller's node order. Kernels default to MPS_REORDER.
     */
    void set_reorder(ReorderKind kind);

    /**
     * Run inference on graph @p a with input features @p x; returns the
     * final layer's output. In offline mode the first call against a
     * graph prepares the kernel and later calls reuse the schedule; a
     * different graph (detected by shape/nnz) triggers re-preparation.
     *
     * @param stats optional out-param receiving the timing breakdown
     */
    DenseMatrix infer(const CsrMatrix &a, const DenseMatrix &x,
                      WorkStealPool &pool, InferenceStats *stats = nullptr);

  private:
    void prepare_all(const CsrMatrix &a);

    /**
     * Fused multi-layer pipeline (MPS_FUSE, mps/core/fusion.h): layer
     * i's streamed output panels rank-update layer i+1's combination
     * while cache-resident. Returns false (leaving @p result untouched)
     * when fusion is disabled or any layer's kernel lacks a fused plan;
     * the caller then runs the classic layer-by-layer loop.
     */
    bool fused_infer(const CsrMatrix &a, const DenseMatrix &x,
                     WorkStealPool &pool, DenseMatrix &result);

    std::vector<GcnLayer> layers_;
    // One kernel instance per layer (each layer has its own dimension,
    // hence its own schedule).
    std::vector<std::unique_ptr<SpmmKernel>> kernels_;
    std::string kernel_name_;
    ScheduleMode mode_;
    ScheduleCache *schedule_cache_; // nullptr = private per-kernel schedules
    ReorderKind reorder_ = default_reorder_kind();
    StorageMode precision_ = default_precision();
    // Offline-cache identity of the last prepared graph.
    index_t prepared_rows_ = -1;
    index_t prepared_nnz_ = -1;
};

} // namespace mps

#endif // MPS_GCN_MODEL_H
