/**
 * @file
 * Neighbor aggregation variants beyond GCN's weighted sum, all driven
 * by the same merge-path schedule so every GNN family the paper's
 * introduction cites (GCN, GraphSAGE, GIN) exercises the
 * load-balanced SpMM machinery:
 *
 *   - sum:  out[i] = sum_{j in N(i)} h[j]         (structure only)
 *   - mean: out[i] = sum / max(deg(i), 1)          (GraphSAGE)
 *   - max:  out[i] = elementwise max over N(i)     (GraphSAGE-pool)
 *   - GIN:  out[i] = (1 + eps) * h[i] + sum        (GIN)
 *
 * Split rows commit atomically (add or CAS-max), complete rows use
 * plain stores — exactly the Algorithm 2 discipline.
 */
#ifndef MPS_GCN_AGGREGATORS_H
#define MPS_GCN_AGGREGATORS_H

#include "mps/core/schedule.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;

/**
 * out[i] = sum of h rows over i's neighbors (adjacency values are
 * ignored: pure structural aggregation). out must be a.rows() x
 * h.cols(); overwritten.
 */
void aggregate_sum(const CsrMatrix &a, const DenseMatrix &h,
                   DenseMatrix &out, const MergePathSchedule &sched,
                   WorkStealPool &pool);

/** Mean aggregation: sum / max(degree, 1) (GraphSAGE-mean). */
void aggregate_mean(const CsrMatrix &a, const DenseMatrix &h,
                    DenseMatrix &out, const MergePathSchedule &sched,
                    WorkStealPool &pool);

/**
 * Element-wise max over neighbors (GraphSAGE-pool). Rows with no
 * neighbors produce 0. Split rows merge with atomic compare-and-swap
 * max.
 */
void aggregate_max(const CsrMatrix &a, const DenseMatrix &h,
                   DenseMatrix &out, const MergePathSchedule &sched,
                   WorkStealPool &pool);

/**
 * GIN aggregation: out[i] = (1 + eps) * h[i] + sum over neighbors.
 */
void aggregate_gin(const CsrMatrix &a, const DenseMatrix &h,
                   DenseMatrix &out, const MergePathSchedule &sched,
                   WorkStealPool &pool, float eps = 0.0f);

/**
 * Panel-wise structural sum for the fused SAGE/GIN pipeline:
 *   panel[i, 0:width) = sum_{j in N(i)} h[j, col0 : col0+width).
 * One merge-path sweep of @p sched; the caller owns the panel loop
 * (the reverse of the GCN fusion: here the aggregation runs FIRST and
 * its output panels rank-update the combination GEMM, so the full
 * aggregated matrix is never materialized). Element sums accumulate in
 * the same order as aggregate_sum, and elementwise adds carry no
 * FMA/alignment sensitivity — the panel values are bit-identical to
 * the corresponding aggregate_sum columns for ANY col0/width.
 */
void aggregate_sum_panel(const CsrMatrix &a, const DenseMatrix &h,
                         index_t col0, index_t width, DenseMatrix &panel,
                         const MergePathSchedule &sched,
                         WorkStealPool &pool);

} // namespace mps

#endif // MPS_GCN_AGGREGATORS_H
