#include "mps/gcn/activation.h"

#include <cmath>

#include "mps/util/log.h"

namespace mps {

void
apply_activation(DenseMatrix &m, Activation act)
{
    const size_t count =
        static_cast<size_t>(m.rows()) * static_cast<size_t>(m.cols());
    value_t *data = m.data();
    switch (act) {
      case Activation::kNone:
        break;
      case Activation::kRelu:
        for (size_t i = 0; i < count; ++i)
            data[i] = data[i] > 0.0f ? data[i] : 0.0f;
        break;
      case Activation::kSigmoid:
        for (size_t i = 0; i < count; ++i)
            data[i] = 1.0f / (1.0f + std::exp(-data[i]));
        break;
    }
}

Activation
parse_activation(const std::string &name)
{
    if (name == "none")
        return Activation::kNone;
    if (name == "relu")
        return Activation::kRelu;
    if (name == "sigmoid")
        return Activation::kSigmoid;
    fatal("unknown activation '" + name + "' (none|relu|sigmoid)");
}

} // namespace mps
