#include "mps/gcn/activation.h"

#include <cmath>

#include "mps/util/log.h"

namespace mps {

void
apply_activation(DenseMatrix &m, Activation act)
{
    // Row-wise: rows are padded to the cache-line stride, and the
    // padding must not be touched.
    const index_t cols = m.cols();
    switch (act) {
      case Activation::kNone:
        break;
      case Activation::kRelu:
        for (index_t r = 0; r < m.rows(); ++r) {
            value_t *row = m.row(r);
            for (index_t c = 0; c < cols; ++c)
                row[c] = row[c] > 0.0f ? row[c] : 0.0f;
        }
        break;
      case Activation::kSigmoid:
        for (index_t r = 0; r < m.rows(); ++r) {
            value_t *row = m.row(r);
            for (index_t c = 0; c < cols; ++c)
                row[c] = 1.0f / (1.0f + std::exp(-row[c]));
        }
        break;
    }
}

void
apply_activation_panel(DenseMatrix &m, Activation act, index_t col0,
                       index_t width)
{
    switch (act) {
      case Activation::kNone:
        break;
      case Activation::kRelu:
        for (index_t r = 0; r < m.rows(); ++r) {
            value_t *row = m.row(r) + col0;
            for (index_t c = 0; c < width; ++c)
                row[c] = row[c] > 0.0f ? row[c] : 0.0f;
        }
        break;
      case Activation::kSigmoid:
        for (index_t r = 0; r < m.rows(); ++r) {
            value_t *row = m.row(r) + col0;
            for (index_t c = 0; c < width; ++c)
                row[c] = 1.0f / (1.0f + std::exp(-row[c]));
        }
        break;
    }
}

namespace {

// The epilogues repeat apply_activation's scalar expressions exactly:
// the fused output must match the unfused activation bit-for-bit.

void
relu_epilogue(value_t *crow, index_t, index_t, index_t width, const void *)
{
    for (index_t c = 0; c < width; ++c)
        crow[c] = crow[c] > 0.0f ? crow[c] : 0.0f;
}

void
sigmoid_epilogue(value_t *crow, index_t, index_t, index_t width,
                 const void *)
{
    for (index_t c = 0; c < width; ++c)
        crow[c] = 1.0f / (1.0f + std::exp(-crow[c]));
}

} // namespace

PanelEpilogue
activation_epilogue(Activation act)
{
    switch (act) {
      case Activation::kRelu:
        return &relu_epilogue;
      case Activation::kSigmoid:
        return &sigmoid_epilogue;
      case Activation::kNone:
        break;
    }
    return nullptr;
}

Activation
parse_activation(const std::string &name)
{
    if (name == "none")
        return Activation::kNone;
    if (name == "relu")
        return Activation::kRelu;
    if (name == "sigmoid")
        return Activation::kSigmoid;
    fatal("unknown activation '" + name + "' (none|relu|sigmoid)");
}

} // namespace mps
