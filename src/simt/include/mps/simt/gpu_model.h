/**
 * @file
 * Deterministic SIMT GPU throughput model.
 *
 * Warps are distributed round-robin over SMs. Per SM the completion
 * time is bounded by four mechanisms, and the model takes the binding
 * one:
 *   - issue:   total instruction-issue cycles (single issue port);
 *   - memory:  total L2 transactions at the SM's L2 bandwidth;
 *   - latency: the summed dependent-stall chains divided by the number
 *              of resident warps (multithreading hides latency only up
 *              to the residency window) — this is the term that rewards
 *              GNNAdvisor's "spawn many warps" strategy;
 *   - straggler: no SM finishes before its longest single warp chain —
 *              this is the term that punishes row-splitting's evil-row
 *              chunks.
 * Kernel time additionally respects DRAM bandwidth, per-row atomic
 * serialization (the cost MergePath-SpMM minimizes) and any serial
 * tail (the merge-path SpMV fix-up), plus launch overhead.
 */
#ifndef MPS_SIMT_GPU_MODEL_H
#define MPS_SIMT_GPU_MODEL_H

#include <string>

#include "mps/simt/gpu_config.h"
#include "mps/simt/workload.h"

namespace mps {

/** Result of modelling one kernel launch. */
struct GpuKernelResult
{
    double cycles = 0.0;       ///< total modelled cycles
    double microseconds = 0.0; ///< cycles converted at the core clock

    // Component bounds (cycles), for analysis output.
    double issue_bound = 0.0;
    double mem_bound = 0.0;
    double latency_bound = 0.0;
    double straggler_bound = 0.0;
    double dram_bound = 0.0;
    double atomic_serial = 0.0;
    double serial_tail = 0.0;

    /** Name of the binding constraint (for bench breakdowns). */
    std::string limiter;
    int64_t num_warps = 0;
};

/** Model the execution of @p workload on @p config. */
GpuKernelResult simulate_gpu(const KernelWorkload &workload,
                             const GpuConfig &config);

} // namespace mps

#endif // MPS_SIMT_GPU_MODEL_H
