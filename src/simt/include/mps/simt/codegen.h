/**
 * @file
 * Warp-program generators ("codegen") for the GPU model.
 *
 * Each builder walks the same schedule object the corresponding
 * portable kernel executes (merge-path ThreadWork, GNNAdvisor neighbor
 * groups, row chunks) and lowers it into per-warp issue/memory/stall
 * aggregates, applying the paper's SIMD mapping rules:
 *
 *   d == lanes : one logical thread per warp;
 *   d >  lanes : a thread is replicated over ceil(d/lanes) warps, each
 *                owning a 32-dim slice (meta loads are duplicated);
 *   d <  lanes : several threads are packed into one warp (GNNAdvisor
 *                baseline deliberately does NOT pack — it wastes the
 *                idle lanes, which is what GNNAdvisor-opt fixes).
 */
#ifndef MPS_SIMT_CODEGEN_H
#define MPS_SIMT_CODEGEN_H

#include "mps/simt/gpu_config.h"
#include "mps/simt/workload.h"
#include "mps/sparse/csr_matrix.h"

namespace mps {

/** Per-operation cost constants shared by the builders. */
struct SpmmCostParams
{
    /** Issue cycles per non-zero (FMA + addressing + loop control). */
    double cycles_per_nnz = 3.0;
    /** Issue cycles to write one complete output row slice. */
    double row_write_cycles = 6.0;
    /** Issue cycles for one atomic commit (flag checks + issue). */
    double commit_cycles = 8.0;
    /** Dependent global-load waits per non-zero (XW row fetch). */
    double stalls_per_nnz = 1.0;
    /** Bytes of CSR metadata per non-zero (column index + value). */
    double meta_bytes_per_nnz = 8.0;
    /** Bytes per dense element. */
    double value_bytes = 4.0;
    /**
     * L2 bandwidth cost multiplier of an atomic commit relative to a
     * plain store of the same bytes: an atomic is a read-modify-write
     * at the L2 atomic unit (plus retries under contention).
     */
    double atomic_txn_multiplier = 4.0;
    /**
     * Divergence/bookkeeping issue cycles per logical thread packed
     * into a warp (d < lanes): packed threads take different branches
     * (partial vs. complete rows, different row lengths), and the warp
     * serializes the divergent stretches. This is why the paper's
     * dimension-2 configuration (16 threads per warp) favors a high
     * merge-path cost: fewer warps means less total divergence.
     */
    double packed_thread_overhead_cycles = 6.0;
};

/**
 * MergePath-SpMM (Algorithm 2) with the Sec. III-C launch policy.
 * @param min_threads small-graph thread floor (default: the paper's
 *        1024; pass 0 to disable — used by the ablation bench).
 */
KernelWorkload build_mergepath_workload(const CsrMatrix &a, index_t dim,
                                        index_t cost,
                                        const GpuConfig &config,
                                        const SpmmCostParams &params = {},
                                        index_t min_threads = 1024);

/**
 * Ablation variant of MergePath-SpMM: the identical merge-path
 * schedule but with selective atomics disabled — every output row is
 * committed atomically, as if the kernel did not track complete rows.
 * Isolates the contribution of the paper's partial/complete row
 * tracking.
 */
KernelWorkload build_mergepath_all_atomic_workload(
    const CsrMatrix &a, index_t dim, index_t cost, const GpuConfig &config,
    const SpmmCostParams &params = {});

/** GNNAdvisor lane-packing variant. */
enum class GnnAdvisorVariant {
    kBaseline, ///< one neighbor group per warp, idle lanes when d < 32
    kOpt,      ///< multiple neighbor groups packed per warp (paper ext.)
};

/**
 * GNNAdvisor nnz-splitting: one warp (or warp share) per neighbor
 * group, every output update atomic. ng_size = 0 selects the paper's
 * default (average degree).
 */
KernelWorkload build_gnnadvisor_workload(const CsrMatrix &a, index_t dim,
                                         index_t ng_size,
                                         GnnAdvisorVariant variant,
                                         const GpuConfig &config,
                                         const SpmmCostParams &params = {});

/**
 * Row-splitting: contiguous equal-row chunks, one per warp, no
 * atomics. num_chunks = 0 selects one chunk per resident warp.
 */
KernelWorkload build_rowsplit_workload(const CsrMatrix &a, index_t dim,
                                       index_t num_chunks,
                                       const GpuConfig &config,
                                       const SpmmCostParams &params = {});

/**
 * Merge-path with the SpMV-style serial fix-up: identical parallel
 * phase to MergePath-SpMM but partial rows are carried to a strictly
 * sequential epilogue (workload.serial_tail_cycles).
 */
KernelWorkload build_mergepath_serial_workload(
    const CsrMatrix &a, index_t dim, index_t num_threads,
    const GpuConfig &config, const SpmmCostParams &params = {});

/**
 * cuSPARSE stand-in: shape-based kernel selection. Near-uniform inputs
 * take a tuned vector-row kernel with banded-locality credit; skewed
 * inputs take a generic merge-based kernel with library overhead.
 */
KernelWorkload build_cusparse_workload(const CsrMatrix &a, index_t dim,
                                       const GpuConfig &config,
                                       const SpmmCostParams &params = {});

/**
 * The merge-path schedule-construction kernel itself (two diagonal
 * binary searches per thread), for the online-execution overhead
 * experiment (Figure 8).
 */
KernelWorkload build_schedule_build_workload(
    const CsrMatrix &a, index_t dim, index_t cost, const GpuConfig &config,
    const SpmmCostParams &params = {});

} // namespace mps

#endif // MPS_SIMT_CODEGEN_H
