/**
 * @file
 * Warp-level workload description consumed by the GPU model.
 *
 * A kernel is summarized as one WarpProgram per launched warp plus
 * kernel-global quantities (atomic contention, compulsory DRAM traffic,
 * a serial tail for the merge-path fix-up baseline). The codegen
 * routines in codegen.h derive these programs from the *actual*
 * schedules the portable kernels execute, so the model and the real
 * kernels share one source of truth for work assignment.
 */
#ifndef MPS_SIMT_WORKLOAD_H
#define MPS_SIMT_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace mps {

/** Aggregate execution profile of one warp. */
struct WarpProgram
{
    /** Instruction-issue cycles (ALU + control, warp-wide). */
    double issue_cycles = 0.0;
    /** L2 transactions generated (loads + stores, all lanes). */
    double mem_txns = 0.0;
    /** Dependent memory waits on the warp's critical path. */
    double dep_stalls = 0.0;
    /** Atomic commits (each a round-trip to the L2 atomic unit). */
    double atomic_commits = 0.0;
};

/** A full kernel launch for the GPU model. */
struct KernelWorkload
{
    std::string name;
    std::vector<WarpProgram> warps;
    /**
     * Largest number of atomic commits targeting any single output
     * row: the hot-line serialization bound at the atomic unit.
     */
    double max_row_commits = 0.0;
    /** Total atomic commits across the kernel. */
    double total_commits = 0.0;
    /**
     * Compulsory DRAM footprint in bytes (matrix + vector operand
     * sizes). Informational: reported alongside results, not enforced
     * as a time floor (see gpu_model.cpp).
     */
    double dram_bytes = 0.0;
    /**
     * Cycles of strictly sequential post-processing (the merge-path
     * SpMV serial fix-up); charged after the parallel phase.
     */
    double serial_tail_cycles = 0.0;
};

} // namespace mps

#endif // MPS_SIMT_WORKLOAD_H
