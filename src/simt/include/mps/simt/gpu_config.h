/**
 * @file
 * Parameters of the modelled SIMT GPU.
 *
 * Defaults describe the paper's NVidia Quadro RTX 6000: 72 SMs, 32-lane
 * warps, 4608 CUDA cores at 1.44 GHz, 672 GB/s of DRAM bandwidth. The
 * latency/throughput constants are calibrated so the model reproduces
 * the paper's relative results (who wins, by what factor, where the
 * crossovers fall) — see EXPERIMENTS.md; absolute microseconds are not
 * the goal of a throughput model.
 */
#ifndef MPS_SIMT_GPU_CONFIG_H
#define MPS_SIMT_GPU_CONFIG_H

namespace mps {

/** Machine model of a throughput-oriented SIMT processor. */
struct GpuConfig
{
    /** Streaming multiprocessors. */
    int num_sms = 72;
    /** SIMD lanes per warp. */
    int lanes = 32;
    /** Warps concurrently resident per SM (latency-hiding window). */
    int max_resident_warps_per_sm = 32;
    /** Core clock in GHz. */
    double clock_ghz = 1.44;

    /** Average global-load latency (cycles) when missing in L1. */
    double mem_latency_cycles = 380.0;
    /**
     * Outstanding loads a single warp overlaps (memory-level
     * parallelism from loop unrolling / independent iterations);
     * divides the exposed dependent-stall latency.
     */
    double memory_parallelism = 6.0;
    /** Round-trip latency of one atomic commit to L2 (cycles). */
    double atomic_latency_cycles = 400.0;
    /** Serialization cost per conflicting atomic at one address. */
    double atomic_service_cycles = 24.0;
    /** Bytes per L2 transaction (sector). */
    double l2_txn_bytes = 32.0;
    /** L2 transactions one SM can issue per cycle. */
    double sm_l2_txns_per_cycle = 1.0;
    /** DRAM bandwidth in bytes per core cycle (672 GB/s / 1.44 GHz). */
    double dram_bw_bytes_per_cycle = 466.0;
    /** Fraction of L2 transactions that miss to DRAM. */
    double l2_miss_fraction = 0.10;
    /** Fixed kernel launch + drain overhead (cycles). */
    double kernel_launch_cycles = 8000.0;

    /** The paper's evaluation GPU. */
    static GpuConfig rtx6000() { return {}; }

    /** Convert core cycles to microseconds. */
    double cycles_to_us(double cycles) const {
        return cycles / (clock_ghz * 1e3);
    }
};

} // namespace mps

#endif // MPS_SIMT_GPU_CONFIG_H
