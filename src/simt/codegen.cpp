#include "mps/simt/codegen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mps/core/policy.h"
#include "mps/core/schedule.h"
#include "mps/kernels/nnz_split.h"
#include "mps/sparse/degree_stats.h"
#include "mps/util/log.h"

namespace mps {

namespace {

/** Compulsory DRAM footprint of one SpMM: CSR + XW + C. */
double
spmm_dram_bytes(const CsrMatrix &a, index_t dim,
                const SpmmCostParams &params)
{
    double csr = (static_cast<double>(a.rows()) + 1) * 4.0 +
                 static_cast<double>(a.nnz()) * params.meta_bytes_per_nnz;
    double xw = static_cast<double>(a.cols()) * dim * params.value_bytes;
    double c = static_cast<double>(a.rows()) * dim * params.value_bytes;
    return csr + xw + c;
}

/** Per-logical-thread work derived from a merge-path schedule. */
struct ThreadStats
{
    double nnz = 0.0;
    double plain_rows = 0.0;
    double commits = 0.0; // atomic vector commits (0..2)
    index_t commit_rows[2] = {-1, -1};
};

ThreadStats
merge_thread_stats(const MergePathSchedule &sched, index_t t,
                   const CsrMatrix &a)
{
    ThreadStats s;
    const ThreadWork &w = sched.work(t);
    if (w.empty())
        return s;
    s.nnz = static_cast<double>(w.end.nz - w.start.nz);
    ResolvedWork r = sched.resolve(t, a);
    if (r.has_head()) {
        if (r.head_atomic) {
            s.commit_rows[static_cast<int>(s.commits)] = r.head_row;
            s.commits += 1.0;
        } else {
            s.plain_rows += 1.0;
        }
    }
    s.plain_rows += r.last_complete_row - r.first_complete_row;
    if (r.has_tail()) {
        s.commit_rows[static_cast<int>(s.commits)] = r.tail_row;
        s.commits += 1.0;
    }
    return s;
}

/** Accumulates row-commit counts and converts them to contention. */
class CommitCensus
{
  public:
    explicit CommitCensus(index_t rows)
        : counts_(static_cast<size_t>(rows), 0)
    {
    }

    void
    add(index_t row)
    {
        if (row >= 0)
            ++counts_[static_cast<size_t>(row)];
    }

    double
    max_row_commits() const
    {
        int64_t best = 0;
        for (int64_t c : counts_)
            best = std::max(best, c);
        return static_cast<double>(best);
    }

    double
    total() const
    {
        int64_t sum = 0;
        for (int64_t c : counts_)
            sum += c;
        return static_cast<double>(sum);
    }

  private:
    std::vector<int64_t> counts_;
};

/**
 * Emit the warps of one merge-path-scheduled kernel (shared by
 * MergePath-SpMM and the serial-fix-up baseline; the latter passes
 * atomic = false and collects carries separately).
 */
void
emit_merge_warps(const CsrMatrix &a, const MergePathSchedule &sched,
                 index_t dim, bool atomic_commits, const GpuConfig &config,
                 const SpmmCostParams &params, KernelWorkload &out,
                 CommitCensus &census, double *carries,
                 bool force_all_atomic = false)
{
    const index_t lanes = config.lanes;
    const index_t threads = sched.num_threads();

    // Ablation mode: pretend the kernel does not track complete rows —
    // every row write becomes an atomic commit.
    auto fetch_stats = [&](index_t t) {
        ThreadStats s = merge_thread_stats(sched, t, a);
        if (force_all_atomic && s.plain_rows > 0) {
            ResolvedWork r = sched.resolve(t, a);
            for (index_t row = r.first_complete_row;
                 row < r.last_complete_row; ++row) {
                census.add(row);
            }
            s.commits += s.plain_rows;
            s.plain_rows = 0;
        }
        return s;
    };

    auto thread_issue = [&](const ThreadStats &s) {
        double commit_issue =
            atomic_commits ? params.commit_cycles : params.row_write_cycles;
        return s.nnz * params.cycles_per_nnz +
               s.plain_rows * params.row_write_cycles +
               s.commits * commit_issue;
    };
    auto thread_stalls = [&](const ThreadStats &s) {
        return s.nnz * params.stalls_per_nnz;
    };
    // Dense bytes a thread moves for a slice of width ds: XW reads for
    // every nnz, plain stores for complete rows, and atomic commits at
    // their read-modify-write bandwidth cost.
    double commit_mult =
        atomic_commits ? params.atomic_txn_multiplier : 1.0;
    auto thread_dense_bytes = [&](const ThreadStats &s, double ds) {
        return (s.nnz + s.plain_rows + s.commits * commit_mult) * ds *
               params.value_bytes;
    };

    if (dim < lanes) {
        // Pack floor(lanes/dim) logical threads per warp; lockstep
        // execution makes the warp as slow as its slowest thread while
        // memory traffic adds up.
        index_t per_warp = std::max<index_t>(1, lanes / dim);
        for (index_t base = 0; base < threads; base += per_warp) {
            WarpProgram w;
            index_t in_warp =
                std::min<index_t>(base + per_warp, threads) - base;
            double mem_bytes = 0.0;
            for (index_t t = base;
                 t < std::min<index_t>(base + per_warp, threads); ++t) {
                ThreadStats s = fetch_stats(t);
                w.issue_cycles = std::max(w.issue_cycles, thread_issue(s));
                w.dep_stalls = std::max(w.dep_stalls, thread_stalls(s));
                if (atomic_commits) {
                    w.atomic_commits =
                        std::max(w.atomic_commits, s.commits);
                    census.add(s.commit_rows[0]);
                    census.add(s.commit_rows[1]);
                } else if (carries != nullptr) {
                    *carries += s.commits;
                }
                mem_bytes += s.nnz * params.meta_bytes_per_nnz +
                             thread_dense_bytes(s, dim);
            }
            // Divergence between the packed threads (different branch
            // mixes and row lengths) serializes part of the warp.
            w.issue_cycles +=
                in_warp * params.packed_thread_overhead_cycles;
            w.mem_txns = mem_bytes / config.l2_txn_bytes;
            out.warps.push_back(w);
        }
        return;
    }

    // dim >= lanes: replicate each thread over ceil(dim/lanes) warps,
    // each owning a lanes-wide dimension slice. CSR metadata loads are
    // duplicated per replica.
    index_t slices = (dim + lanes - 1) / lanes;
    for (index_t t = 0; t < threads; ++t) {
        ThreadStats s = fetch_stats(t);
        if (atomic_commits) {
            census.add(s.commit_rows[0]);
            census.add(s.commit_rows[1]);
        } else if (carries != nullptr) {
            *carries += s.commits;
        }
        for (index_t slice = 0; slice < slices; ++slice) {
            double ds = std::min<double>(lanes, dim - slice * lanes);
            WarpProgram w;
            w.issue_cycles = thread_issue(s);
            w.dep_stalls = thread_stalls(s);
            w.atomic_commits = atomic_commits ? s.commits : 0.0;
            w.mem_txns = (s.nnz * params.meta_bytes_per_nnz +
                          thread_dense_bytes(s, ds)) /
                         config.l2_txn_bytes;
            out.warps.push_back(w);
        }
    }
}

} // namespace

KernelWorkload
build_mergepath_workload(const CsrMatrix &a, index_t dim, index_t cost,
                         const GpuConfig &config,
                         const SpmmCostParams &params, index_t min_threads)
{
    SimdPolicy policy;
    policy.lanes = config.lanes;
    policy.min_threads = min_threads;
    LaunchConfig launch =
        make_launch_config(a.rows(), a.nnz(), dim, cost, policy);
    MergePathSchedule sched =
        MergePathSchedule::build(a, launch.num_threads);

    KernelWorkload out;
    out.name = "mergepath";
    out.dram_bytes = spmm_dram_bytes(a, dim, params);
    CommitCensus census(a.rows());
    emit_merge_warps(a, sched, dim, /*atomic_commits=*/true, config,
                     params, out, census, nullptr);
    out.max_row_commits = census.max_row_commits();
    out.total_commits = census.total();
    return out;
}

KernelWorkload
build_mergepath_all_atomic_workload(const CsrMatrix &a, index_t dim,
                                    index_t cost, const GpuConfig &config,
                                    const SpmmCostParams &params)
{
    SimdPolicy policy;
    policy.lanes = config.lanes;
    LaunchConfig launch =
        make_launch_config(a.rows(), a.nnz(), dim, cost, policy);
    MergePathSchedule sched =
        MergePathSchedule::build(a, launch.num_threads);

    KernelWorkload out;
    out.name = "mergepath_all_atomic";
    out.dram_bytes = spmm_dram_bytes(a, dim, params);
    CommitCensus census(a.rows());
    emit_merge_warps(a, sched, dim, /*atomic_commits=*/true, config,
                     params, out, census, nullptr,
                     /*force_all_atomic=*/true);
    out.max_row_commits = census.max_row_commits();
    out.total_commits = census.total();
    return out;
}

KernelWorkload
build_gnnadvisor_workload(const CsrMatrix &a, index_t dim, index_t ng_size,
                          GnnAdvisorVariant variant,
                          const GpuConfig &config,
                          const SpmmCostParams &params)
{
    if (ng_size <= 0)
        ng_size = default_neighbor_group_size(a);
    std::vector<NeighborGroup> groups = build_neighbor_groups(a, ng_size);

    KernelWorkload out;
    out.name = variant == GnnAdvisorVariant::kOpt ? "gnnadvisor_opt"
                                                  : "gnnadvisor";
    out.dram_bytes = spmm_dram_bytes(a, dim, params);
    CommitCensus census(a.rows());

    const index_t lanes = config.lanes;
    // Serialized dimension chunks when d > lanes (GNNAdvisor packs all
    // lanes and loops over the remaining dimensions in the same warp).
    double dchunks = std::max<double>(
        1.0, std::ceil(static_cast<double>(dim) / lanes));

    auto group_issue = [&](const NeighborGroup &g) {
        double n = static_cast<double>(g.end - g.begin);
        return (n * params.cycles_per_nnz + params.commit_cycles) *
               dchunks;
    };
    auto group_stalls = [&](const NeighborGroup &g) {
        double n = static_cast<double>(g.end - g.begin);
        return n * params.stalls_per_nnz * dchunks;
    };
    auto group_bytes = [&](const NeighborGroup &g) {
        double n = static_cast<double>(g.end - g.begin);
        return n * (params.meta_bytes_per_nnz +
                    dim * params.value_bytes) +
               dim * params.value_bytes * params.atomic_txn_multiplier;
    };

    index_t groups_per_warp = 1;
    if (variant == GnnAdvisorVariant::kOpt && dim < lanes)
        groups_per_warp = std::max<index_t>(1, lanes / dim);

    for (size_t base = 0; base < groups.size();
         base += static_cast<size_t>(groups_per_warp)) {
        WarpProgram w;
        double mem_bytes = 0.0;
        size_t end =
            std::min(base + static_cast<size_t>(groups_per_warp),
                     groups.size());
        for (size_t g = base; g < end; ++g) {
            w.issue_cycles =
                std::max(w.issue_cycles, group_issue(groups[g]));
            w.dep_stalls = std::max(w.dep_stalls, group_stalls(groups[g]));
            mem_bytes += group_bytes(groups[g]);
            census.add(groups[g].row);
        }
        // One atomic commit round-trip per dimension chunk; packed
        // groups commit concurrently on disjoint lane sets.
        w.atomic_commits = dchunks;
        w.mem_txns = mem_bytes / config.l2_txn_bytes;
        out.warps.push_back(w);
    }
    out.max_row_commits = census.max_row_commits();
    out.total_commits = census.total();
    return out;
}

KernelWorkload
build_rowsplit_workload(const CsrMatrix &a, index_t dim,
                        index_t num_chunks, const GpuConfig &config,
                        const SpmmCostParams &params)
{
    if (num_chunks <= 0) {
        num_chunks = static_cast<index_t>(config.num_sms) *
                     config.max_resident_warps_per_sm;
    }
    num_chunks = std::max<index_t>(
        1, std::min<index_t>(num_chunks, std::max<index_t>(a.rows(), 1)));

    KernelWorkload out;
    out.name = "row_split";
    out.dram_bytes = spmm_dram_bytes(a, dim, params);

    const index_t lanes = config.lanes;
    double dchunks = std::max<double>(
        1.0, std::ceil(static_cast<double>(dim) / lanes));
    index_t rows_per_chunk = (a.rows() + num_chunks - 1) / num_chunks;

    for (index_t c = 0; c < num_chunks; ++c) {
        index_t begin = c * rows_per_chunk;
        index_t end = std::min<index_t>(begin + rows_per_chunk, a.rows());
        if (begin >= end)
            break;
        double nnz_c = static_cast<double>(a.row_ptr()[end] -
                                           a.row_ptr()[begin]);
        double rows_c = static_cast<double>(end - begin);
        WarpProgram w;
        w.issue_cycles = (nnz_c * params.cycles_per_nnz +
                          rows_c * params.row_write_cycles) *
                         dchunks;
        w.dep_stalls = nnz_c * params.stalls_per_nnz * dchunks;
        w.mem_txns = (nnz_c * (params.meta_bytes_per_nnz +
                               dim * params.value_bytes) +
                      rows_c * dim * params.value_bytes) /
                     config.l2_txn_bytes;
        out.warps.push_back(w);
    }
    return out;
}

KernelWorkload
build_mergepath_serial_workload(const CsrMatrix &a, index_t dim,
                                index_t num_threads,
                                const GpuConfig &config,
                                const SpmmCostParams &params)
{
    MPS_CHECK(num_threads >= 1, "need at least one thread");
    MergePathSchedule sched = MergePathSchedule::build(a, num_threads);

    KernelWorkload out;
    out.name = "mergepath_serial";
    out.dram_bytes = spmm_dram_bytes(a, dim, params);
    CommitCensus census(a.rows());
    double carries = 0.0;
    emit_merge_warps(a, sched, dim, /*atomic_commits=*/false, config,
                     params, out, census, &carries);

    // Sequential fix-up: each carry re-reads the carry vector and the
    // output row and adds them element by element — one dependent
    // memory round-trip plus d-wide vector work, fully serialized.
    double per_carry =
        config.mem_latency_cycles +
        static_cast<double>(dim) * params.value_bytes * 2.0 /
            config.l2_txn_bytes +
        params.row_write_cycles;
    out.serial_tail_cycles = carries * per_carry;
    return out;
}

KernelWorkload
build_cusparse_workload(const CsrMatrix &a, index_t dim,
                        const GpuConfig &config,
                        const SpmmCostParams &params)
{
    DegreeStats stats = compute_degree_stats(a);
    bool skewed = stats.degree_cv > 0.7 ||
                  (stats.avg_degree > 0.0 &&
                   stats.max_degree > 15.0 * stats.avg_degree);
    if (!skewed) {
        // Structured input: the library's tuned vector-row kernel with
        // fine chunks, streamlined inner loop and banded-reuse credit.
        SpmmCostParams tuned = params;
        tuned.cycles_per_nnz = params.cycles_per_nnz * 0.7;
        tuned.stalls_per_nnz = params.stalls_per_nnz * 0.5;
        index_t chunks = static_cast<index_t>(config.num_sms) *
                         config.max_resident_warps_per_sm * 4;
        KernelWorkload out =
            build_rowsplit_workload(a, dim, chunks, config, tuned);
        out.name = "cusparse";
        for (auto &w : out.warps) {
            // Banded column access keeps most XW reads in cache, and
            // the library packs multiple short rows into a warp when
            // the dimension leaves lanes idle.
            w.mem_txns *= 0.6;
            if (dim < config.lanes)
                w.issue_cycles *= 0.55;
        }
        return out;
    }
    // Skewed input: generic merge-based kernel; correct balance but a
    // library-generic inner loop — fp32 gather-scatter without the
    // GNN frameworks' fused neighbor access or fp16 packing, hence
    // roughly twice the per-element cost (this is where GNNAdvisor
    // and MergePath-SpMM beat the library in the paper's Figure 4).
    SpmmCostParams generic = params;
    generic.cycles_per_nnz = params.cycles_per_nnz * 2.2;
    generic.stalls_per_nnz = params.stalls_per_nnz * 2.0;
    KernelWorkload out =
        build_mergepath_workload(a, dim, 32, config, generic);
    out.name = "cusparse";
    for (auto &w : out.warps)
        w.mem_txns *= 1.5; // fp32 + untuned access granularity
    return out;
}

KernelWorkload
build_schedule_build_workload(const CsrMatrix &a, index_t dim,
                              index_t cost, const GpuConfig &config,
                              const SpmmCostParams &params)
{
    SimdPolicy policy;
    policy.lanes = config.lanes;
    LaunchConfig launch =
        make_launch_config(a.rows(), a.nnz(), dim, cost, policy);

    KernelWorkload out;
    out.name = "schedule_build";
    // Row-pointer array is the only input the searches touch.
    out.dram_bytes = (static_cast<double>(a.rows()) + 1) * 4.0;

    double iters =
        std::ceil(std::log2(static_cast<double>(a.rows()) + 2.0)) + 1.0;
    index_t threads = launch.num_threads;
    index_t per_warp = config.lanes; // one searcher per lane
    for (index_t base = 0; base < threads; base += per_warp) {
        index_t in_warp = std::min<index_t>(per_warp, threads - base);
        WarpProgram w;
        // Two diagonal searches per thread; lockstep across the warp.
        // The row-pointer array is hot in cache (every thread searches
        // it), so only a fraction of the dependent search steps pay
        // full memory latency.
        w.issue_cycles = 2.0 * iters * 4.0 + 12.0;
        w.dep_stalls = 2.0 * iters * 0.25;
        w.mem_txns = in_warp *
                     (2.0 * iters * 4.0 + 16.0) / config.l2_txn_bytes;
        out.warps.push_back(w);
    }
    (void)params;
    return out;
}

} // namespace mps
