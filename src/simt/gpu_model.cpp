#include "mps/simt/gpu_model.h"

#include <algorithm>
#include <vector>

#include "mps/util/log.h"

namespace mps {

GpuKernelResult
simulate_gpu(const KernelWorkload &workload, const GpuConfig &config)
{
    MPS_CHECK(config.num_sms >= 1, "GPU needs at least one SM");
    GpuKernelResult r;
    r.num_warps = static_cast<int64_t>(workload.warps.size());

    const size_t sms = static_cast<size_t>(config.num_sms);
    std::vector<double> issue_sum(sms, 0.0), mem_sum(sms, 0.0),
        chain_sum(sms, 0.0), chain_max(sms, 0.0);
    std::vector<int64_t> warp_count(sms, 0);

    double total_bytes = 0.0;
    for (size_t w = 0; w < workload.warps.size(); ++w) {
        const WarpProgram &p = workload.warps[w];
        size_t sm = w % sms;
        double chain =
            p.issue_cycles +
            p.dep_stalls * config.mem_latency_cycles /
                std::max(config.memory_parallelism, 1.0) +
            p.atomic_commits * config.atomic_latency_cycles;
        issue_sum[sm] += p.issue_cycles;
        mem_sum[sm] += p.mem_txns;
        chain_sum[sm] += chain;
        chain_max[sm] = std::max(chain_max[sm], chain);
        ++warp_count[sm];
        total_bytes += p.mem_txns * config.l2_txn_bytes;
    }

    double parallel_cycles = 0.0;
    for (size_t sm = 0; sm < sms; ++sm) {
        if (warp_count[sm] == 0)
            continue;
        double resident = std::min<double>(
            warp_count[sm], config.max_resident_warps_per_sm);
        double issue = issue_sum[sm];
        double mem = mem_sum[sm] / config.sm_l2_txns_per_cycle;
        double latency = chain_sum[sm] / resident;
        double straggler = chain_max[sm];
        double t = std::max({issue, mem, latency, straggler});
        if (t > parallel_cycles) {
            parallel_cycles = t;
            r.issue_bound = issue;
            r.mem_bound = mem;
            r.latency_bound = latency;
            r.straggler_bound = straggler;
        }
    }

    // Global bounds across the whole chip. DRAM pressure is the L2
    // miss fraction of the transaction traffic; the compulsory
    // footprint (workload.dram_bytes) is informational only — sparse
    // kernels at small dimensions run far from the streaming roofline,
    // and enforcing the footprint as a floor would flatten every
    // kernel to the same time on large graphs.
    r.dram_bound = total_bytes * config.l2_miss_fraction /
                   config.dram_bw_bytes_per_cycle;
    r.atomic_serial =
        workload.max_row_commits * config.atomic_service_cycles;
    r.serial_tail = workload.serial_tail_cycles;

    double body = std::max({parallel_cycles, r.dram_bound,
                            r.atomic_serial});
    r.cycles = body + r.serial_tail + config.kernel_launch_cycles;
    r.microseconds = config.cycles_to_us(r.cycles);

    // Identify the binding constraint for reporting.
    struct Named
    {
        const char *name;
        double value;
    };
    Named candidates[] = {
        {"issue", r.issue_bound},       {"mem_bw", r.mem_bound},
        {"latency", r.latency_bound},   {"straggler", r.straggler_bound},
        {"dram", r.dram_bound},         {"atomic_serial", r.atomic_serial},
        {"serial_tail", r.serial_tail},
    };
    const Named *best = &candidates[0];
    for (const auto &c : candidates) {
        if (c.value > best->value)
            best = &c;
    }
    r.limiter = best->name;
    return r;
}

} // namespace mps
