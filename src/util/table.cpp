#include "mps/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "mps/util/log.h"

namespace mps {

std::string
format_double(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    MPS_CHECK(!headers_.empty(), "table needs at least one column");
}

void
Table::new_row()
{
    rows_.emplace_back();
}

void
Table::add(const std::string &cell)
{
    MPS_CHECK(!rows_.empty(), "call new_row() before add()");
    MPS_CHECK(rows_.back().size() < headers_.size(),
              "row has more cells than headers");
    rows_.back().push_back(cell);
}

void
Table::add(double value, int precision)
{
    add(format_double(value, precision));
}

void
Table::add_int(long long value)
{
    add(std::to_string(value));
}

std::string
Table::to_text() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            std::string cell = c < cells.size() ? cells[c] : "";
            os << cell;
            if (c + 1 < headers_.size())
                os << std::string(widths[c] - cell.size() + 2, ' ');
        }
        os << "\n";
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
Table::to_csv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    for (size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << quote(headers_[c]);
    os << "\n";
    for (const auto &row : rows_) {
        for (size_t c = 0; c < headers_.size(); ++c)
            os << (c ? "," : "") << (c < row.size() ? quote(row[c]) : "");
        os << "\n";
    }
    return os.str();
}

void
Table::print(bool csv) const
{
    std::string out = csv ? to_csv() : to_text();
    std::fputs(out.c_str(), stdout);
}

} // namespace mps
