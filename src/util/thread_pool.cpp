#include "mps/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/timer.h"
#include "mps/util/trace.h"

namespace mps {

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(2u, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::worker_loop()
{
    uint64_t seen_epoch = 0;
    MetricsRegistry &metrics = MetricsRegistry::global();
    for (;;) {
        const std::function<void(uint64_t)> *fn = nullptr;
        uint64_t n = 0;
        uint64_t grain = 1;
        {
            // Time spent blocked on the condition variable is this
            // worker's idle share (observability: pool.idle_ms).
            const bool instrumented = metrics.enabled();
            std::optional<Timer> idle;
            if (instrumented)
                idle.emplace();
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_ || job_epoch_ != seen_epoch;
            });
            if (shutdown_)
                return;
            if (instrumented)
                metrics.timer_record_ms("pool.idle_ms",
                                        idle->elapsed_ms());
            seen_epoch = job_epoch_;
            fn = job_fn_;
            n = job_n_;
            grain = job_grain_;
        }
        const bool instrumented = metrics.enabled();
        std::optional<Timer> busy;
        if (instrumented)
            busy.emplace();
        ScopedSpan span("pool.worker.job", "pool");
        uint64_t executed = 0;
        for (;;) {
            uint64_t begin = next_index_.fetch_add(
                grain, std::memory_order_relaxed);
            if (begin >= n)
                break;
            uint64_t end = std::min(begin + grain, n);
            for (uint64_t i = begin; i < end; ++i)
                (*fn)(i);
            executed += end - begin;
        }
        if (instrumented) {
            metrics.timer_record_ms("pool.busy_ms", busy->elapsed_ms());
            if (executed > 0) {
                metrics.counter_add("pool.tasks_executed",
                                    static_cast<int64_t>(executed));
            }
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--active_workers_ == 0)
                done_cv_.notify_all();
        }
    }
}

void
ThreadPool::parallel_for(uint64_t n,
                         const std::function<void(uint64_t)> &fn,
                         uint64_t grain)
{
    if (n == 0)
        return;
    MPS_CHECK(grain >= 1, "grain must be >= 1");
    ScopedSpan span("pool.parallel_for", "pool");
    std::unique_lock<std::mutex> lock(mutex_);
    MPS_CHECK(job_fn_ == nullptr, "nested parallel_for is not supported");
    job_fn_ = &fn;
    job_n_ = n;
    job_grain_ = grain;
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_ = static_cast<unsigned>(workers_.size());
    ++job_epoch_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    job_fn_ = nullptr;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace mps
