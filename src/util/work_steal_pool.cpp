#include "mps/util/work_steal_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>

#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/timer.h"
#include "mps/util/trace.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace mps {

namespace {

/** Identity of the current thread within at most one pool. */
struct TlsWorker
{
    const WorkStealPool *pool = nullptr;
    unsigned id = 0;
};

thread_local TlsWorker tls_worker;

inline void
cpu_pause()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

uint32_t
env_spin_budget()
{
    const char *v = std::getenv("MPS_POOL_SPIN");
    if (v == nullptr || *v == '\0')
        return 4096;
    char *end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end == v || parsed < 0) {
        warn("MPS_POOL_SPIN='" + std::string(v) +
             "' is not a non-negative integer; using default 4096");
        return 4096;
    }
    return static_cast<uint32_t>(
        std::min<long>(parsed, 1L << 24)); // cap: ~ms of spinning
}

bool
env_pin_threads()
{
    const char *v = std::getenv("MPS_PIN_THREADS");
    if (v == nullptr)
        return false;
    const std::string s(v);
    return s == "1" || s == "true" || s == "on" || s == "yes";
}

void
pin_to_core(unsigned id)
{
#ifdef __linux__
    unsigned cores = std::thread::hardware_concurrency();
    if (cores == 0)
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(id % cores, &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)id;
#endif
}

/**
 * Chunk size giving every executor ~8 chunks: enough granularity that
 * a straggler's range is worth stealing from, few enough that cursor
 * traffic stays negligible. The derivation from (n, pool width) is
 * what lets tiny jobs stay parallel and huge ones avoid over-chunking.
 */
uint64_t
auto_grain(uint64_t n, unsigned width)
{
    const uint64_t target_chunks =
        static_cast<uint64_t>(width + 1) * 8;
    return std::max<uint64_t>(1, (n + target_chunks - 1) / target_chunks);
}

/**
 * Job class for the per-worker duration histograms, by index count.
 * The bands separate launch-latency-bound jobs from traversal-bound
 * kernels so one distribution does not drown the other.
 */
const std::string &
busy_hist_name(uint64_t n)
{
    static const std::string small = "pool.worker.busy_ms.small";
    static const std::string medium = "pool.worker.busy_ms.medium";
    static const std::string large = "pool.worker.busy_ms.large";
    return n < (1u << 12) ? small : n < (1u << 20) ? medium : large;
}

const std::string &
steal_hist_name(uint64_t n)
{
    static const std::string small = "pool.worker.steal_ms.small";
    static const std::string medium = "pool.worker.steal_ms.medium";
    static const std::string large = "pool.worker.steal_ms.large";
    return n < (1u << 12) ? small : n < (1u << 20) ? medium : large;
}

} // namespace

WorkStealPool::WorkStealPool(unsigned num_threads)
    : slots_(new JobSlot[kJobSlots]),
      spin_budget_(env_spin_budget()),
      pin_threads_(env_pin_threads())
{
    if (num_threads == 0)
        num_threads = std::max(2u, std::thread::hardware_concurrency());
    num_workers_ = num_threads;
    executor_stats_.reset(new ExecutorStat[num_threads + 1]);
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

WorkStealPool::~WorkStealPool()
{
    {
        std::lock_guard<std::mutex> lock(park_mutex_);
        shutdown_.store(true, std::memory_order_seq_cst);
    }
    work_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

unsigned
WorkStealPool::current_slot() const
{
    return tls_worker.pool == this ? tls_worker.id : size();
}

/**
 * Drain one job's chunk ranges, own range first, then steal from the
 * others. Returns whether any chunk was executed.
 */
bool
WorkStealPool::work_on(JobSlot &slot, unsigned my_range, uint64_t &steals)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    // Balance telemetry costs three clock reads per participation, so
    // it is taken only when enabled AND the job is big enough to
    // rebalance at all (>= 2 chunks per range); launch-latency-bound
    // jobs stay on the bare path.
    const bool instrumented =
        metrics.enabled() &&
        slot.num_chunks >= 2 * static_cast<uint64_t>(slot.num_ranges);
    std::optional<Timer> clock;
    if (instrumented)
        clock.emplace();
    double own_ms = 0.0;

    bool did_work = false;
    bool stole = false;
    const uint32_t nranges = slot.num_ranges;
    for (uint32_t offset = 0; offset < nranges; ++offset) {
        if (instrumented && offset == 1)
            own_ms = clock->elapsed_ms();
        const uint32_t r = (my_range + offset) % nranges;
        ChunkRange &range = slot.ranges[r];
        for (;;) {
            // Pre-check keeps drained cursors from being bumped on
            // every scan (and keeps the fetch_add overrun bounded).
            if (range.next.load(std::memory_order_relaxed) >= range.end)
                break;
            const uint64_t chunk =
                range.next.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= range.end)
                break;
            const uint64_t begin = chunk * slot.grain;
            const uint64_t end =
                std::min(begin + slot.grain, slot.n);
            slot.invoke(slot.ctx, begin, end);
            did_work = true;
            if (offset != 0) {
                ++steals;
                stole = true;
            }
            finish_chunk(slot);
        }
    }
    if (instrumented && did_work) {
        const double total_ms = clock->elapsed_ms();
        executor_stats_[current_slot()].busy_ns.fetch_add(
            static_cast<uint64_t>(total_ms * 1e6),
            std::memory_order_relaxed);
        metrics.histogram_record(busy_hist_name(slot.n), total_ms);
        if (stole)
            metrics.histogram_record(steal_hist_name(slot.n),
                                     total_ms - own_ms);
    }
    return did_work;
}

void
WorkStealPool::finish_chunk(JobSlot &slot)
{
    // The release on the final increment publishes every chunk's side
    // effects to the caller's acquire load in wait_job_done.
    const uint64_t done =
        slot.completed.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == slot.num_chunks &&
        slot.caller_waiting.load(std::memory_order_acquire)) {
        // Empty critical section pairs with the caller's checked wait
        // (wait_for additionally bounds the Dekker-style race window).
        {
            std::lock_guard<std::mutex> lock(done_mutex_);
        }
        done_cv_.notify_all();
    }
}

bool
WorkStealPool::scan_jobs(unsigned preferred_range, uint64_t &steals)
{
    bool did_work = false;
    for (unsigned s = 0; s < kJobSlots; ++s) {
        JobSlot &slot = slots_[s];
        if (slot.state.load(std::memory_order_acquire) != kActive)
            continue;
        // participants gates recycling: the submitter only rebuilds a
        // slot once no worker is inside it. Re-checking the state
        // after registering makes the pointer chase safe — the slot
        // may by now carry a different (but equally valid) job.
        slot.participants.fetch_add(1, std::memory_order_acq_rel);
        if (slot.state.load(std::memory_order_acquire) == kActive) {
            did_work |=
                work_on(slot, preferred_range % slot.num_ranges, steals);
        }
        slot.participants.fetch_sub(1, std::memory_order_acq_rel);
    }
    return did_work;
}

void
WorkStealPool::worker_loop(unsigned id)
{
    tls_worker.pool = this;
    tls_worker.id = id;
    if (pin_threads_)
        pin_to_core(id);
    MetricsRegistry &metrics = MetricsRegistry::global();

    for (;;) {
        if (shutdown_.load(std::memory_order_acquire))
            return;
        // Epoch is sampled before scanning so a job published while we
        // scan is never missed by the wait below.
        const uint64_t seen = epoch_.load(std::memory_order_seq_cst);
        uint64_t steals = 0;
        const bool did_work = scan_jobs(id, steals);
        if (steals > 0 && metrics.enabled())
            metrics.counter_add("pool.steals",
                                static_cast<int64_t>(steals));
        if (did_work)
            continue;

        // Nothing claimable: spin -> yield -> park until a publish.
        uint32_t spins = spin_budget_;
        bool advanced = false;
        for (;;) {
            if (epoch_.load(std::memory_order_relaxed) != seen ||
                shutdown_.load(std::memory_order_relaxed)) {
                advanced = true;
                break;
            }
            if (spins == 0)
                break;
            --spins;
            cpu_pause();
        }
        if (!advanced) {
            for (int i = 0; i < 4 && !advanced; ++i) {
                std::this_thread::yield();
                advanced =
                    epoch_.load(std::memory_order_relaxed) != seen ||
                    shutdown_.load(std::memory_order_relaxed);
            }
        }
        if (advanced)
            continue;

        if (metrics.enabled()) {
            metrics.counter_add("pool.parks");
            // Going idle is the natural point to refresh the balance
            // gauges: the worker has just drained everything it could.
            publish_imbalance(metrics);
        }
        std::optional<Timer> idle;
        if (metrics.enabled())
            idle.emplace();
        // seq_cst on the parked_ increment pairs with the publisher's
        // epoch bump + parked_ load: at least one side always sees the
        // other, so no wakeup is lost.
        parked_.fetch_add(1, std::memory_order_seq_cst);
        {
            std::unique_lock<std::mutex> lock(park_mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_.load(std::memory_order_relaxed) ||
                       epoch_.load(std::memory_order_relaxed) != seen;
            });
        }
        parked_.fetch_sub(1, std::memory_order_relaxed);
        if (idle) {
            const double ms = idle->elapsed_ms();
            metrics.timer_record_ms("pool.idle_ms", ms);
            metrics.histogram_record("pool.worker.park_ms", ms);
        }
    }
}

void
WorkStealPool::run(uint64_t n, uint64_t grain, RangeFn invoke,
                   const void *ctx)
{
    if (n == 0)
        return;
    MetricsRegistry &metrics = MetricsRegistry::global();

    // Re-entrant submission from one of our own workers: the worker is
    // already an executor, so nesting degrades to inline execution.
    if (tls_worker.pool == this) {
        if (metrics.enabled())
            metrics.counter_add("pool.inline_runs");
        invoke(ctx, 0, n);
        return;
    }

    const unsigned width = size();
    if (grain == 0)
        grain = auto_grain(n, width);
    const uint64_t num_chunks = (n + grain - 1) / grain;
    if (num_chunks <= 1 || width == 0) {
        if (metrics.enabled())
            metrics.counter_add("pool.inline_runs");
        invoke(ctx, 0, n);
        return;
    }

    ScopedSpan span("pool.parallel_for", "pool");
    const bool instrumented = metrics.enabled();
    std::optional<Timer> dispatch;
    if (instrumented)
        dispatch.emplace();

    // Acquire a job slot; all-busy (deep concurrent submission) simply
    // degrades to inline execution.
    JobSlot *slot = nullptr;
    for (unsigned s = 0; s < kJobSlots; ++s) {
        uint32_t expected = kFree;
        if (slots_[s].state.compare_exchange_strong(
                expected, kBuilding, std::memory_order_acq_rel)) {
            slot = &slots_[s];
            break;
        }
    }
    if (slot == nullptr) {
        if (instrumented)
            metrics.counter_add("pool.inline_runs");
        invoke(ctx, 0, n);
        return;
    }

    // Static initial partition: one contiguous chunk range per
    // executor (workers + this caller). Executors start on their own
    // share and steal only from stragglers.
    const uint32_t num_ranges = static_cast<uint32_t>(std::min<uint64_t>(
        {static_cast<uint64_t>(width) + 1, num_chunks, kMaxRanges}));
    slot->invoke = invoke;
    slot->ctx = ctx;
    slot->n = n;
    slot->grain = grain;
    slot->num_chunks = num_chunks;
    slot->num_ranges = num_ranges;
    for (uint32_t r = 0; r < num_ranges; ++r) {
        slot->ranges[r].next.store(num_chunks * r / num_ranges,
                                   std::memory_order_relaxed);
        slot->ranges[r].end = num_chunks * (r + 1) / num_ranges;
    }
    slot->completed.store(0, std::memory_order_relaxed);
    slot->caller_waiting.store(false, std::memory_order_relaxed);
    slot->state.store(kActive, std::memory_order_release);

    // Publish. Spinning workers notice the epoch; parked ones need the
    // condvar (see worker_loop for the seq_cst pairing).
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_seq_cst) > 0) {
        {
            std::lock_guard<std::mutex> lock(park_mutex_);
        }
        work_cv_.notify_all();
    }
    if (instrumented) {
        metrics.timer_record_ms("pool.dispatch_ns",
                                dispatch->elapsed_ns());
        metrics.counter_add("pool.jobs");
    }

    // The caller is an executor too: drain the last range, then steal.
    uint64_t steals = 0;
    work_on(*slot, num_ranges - 1, steals);
    if (steals > 0 && instrumented)
        metrics.counter_add("pool.steals", static_cast<int64_t>(steals));

    wait_job_done(*slot);

    // Recycle: wait out workers still registered on the slot (they can
    // only be leaving — every chunk is done), then free it.
    uint32_t spins = 0;
    while (slot->participants.load(std::memory_order_acquire) != 0) {
        if (++spins > 1024) {
            std::this_thread::yield();
            spins = 0;
        } else {
            cpu_pause();
        }
    }
    slot->state.store(kFree, std::memory_order_release);
}

void
WorkStealPool::wait_job_done(JobSlot &slot)
{
    uint32_t spins = spin_budget_;
    for (;;) {
        if (slot.completed.load(std::memory_order_acquire) ==
            slot.num_chunks)
            return;
        if (spins > 0) {
            --spins;
            cpu_pause();
            continue;
        }
        // Park until the finishing worker signals; the timed wait
        // bounds the set-flag/final-increment race window.
        std::unique_lock<std::mutex> lock(done_mutex_);
        slot.caller_waiting.store(true, std::memory_order_seq_cst);
        if (slot.completed.load(std::memory_order_seq_cst) ==
            slot.num_chunks)
            return;
        done_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
}

void
WorkStealPool::publish_imbalance(MetricsRegistry &metrics) const
{
    if (!metrics.enabled())
        return;
    // Workers only; the external-caller aggregate (slot size()) mixes
    // many threads and would distort the max/mean ratio.
    const unsigned n = size();
    uint64_t max_ns = 0;
    uint64_t total_ns = 0;
    for (unsigned i = 0; i < n; ++i) {
        const uint64_t busy =
            executor_stats_[i].busy_ns.load(std::memory_order_relaxed);
        max_ns = std::max(max_ns, busy);
        total_ns += busy;
        metrics.gauge_set("pool.worker.busy_seconds{worker=\"" +
                              std::to_string(i) + "\"}",
                          static_cast<double>(busy) * 1e-9);
    }
    const double mean_ns =
        n > 0 ? static_cast<double>(total_ns) / n : 0.0;
    metrics.gauge_set("pool.imbalance",
                      mean_ns > 0.0
                          ? static_cast<double>(max_ns) / mean_ns
                          : 0.0);
}

void
WorkStealPool::publish_imbalance() const
{
    publish_imbalance(MetricsRegistry::global());
}

WorkStealPool &
WorkStealPool::global()
{
    static WorkStealPool pool;
    return pool;
}

} // namespace mps
