#include "mps/util/json.h"

#include <cmath>
#include <cstdio>

#include "mps/util/log.h"

namespace mps {

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::before_value()
{
    if (scopes_.empty()) {
        MPS_CHECK(os_.tellp() == std::streampos(0),
                  "JSON document already has a top-level value");
        return;
    }
    if (scopes_.back() == Scope::kObject) {
        MPS_CHECK(pending_key_, "object value emitted without a key");
        pending_key_ = false;
        return;
    }
    if (!first_in_scope_.back())
        os_ << ',';
    first_in_scope_.back() = false;
}

JsonWriter &
JsonWriter::begin_object()
{
    before_value();
    os_ << '{';
    scopes_.push_back(Scope::kObject);
    first_in_scope_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::end_object()
{
    MPS_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject,
              "end_object outside an object");
    MPS_CHECK(!pending_key_, "object closed with a dangling key");
    os_ << '}';
    scopes_.pop_back();
    first_in_scope_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::begin_array()
{
    before_value();
    os_ << '[';
    scopes_.push_back(Scope::kArray);
    first_in_scope_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::end_array()
{
    MPS_CHECK(!scopes_.empty() && scopes_.back() == Scope::kArray,
              "end_array outside an array");
    os_ << ']';
    scopes_.pop_back();
    first_in_scope_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    MPS_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject,
              "key() outside an object");
    MPS_CHECK(!pending_key_, "two keys in a row");
    if (!first_in_scope_.back())
        os_ << ',';
    first_in_scope_.back() = false;
    os_ << '"' << json_escape(name) << "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    before_value();
    os_ << '"' << json_escape(s) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(double d)
{
    if (!std::isfinite(d))
        return null();
    before_value();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", d);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t i)
{
    before_value();
    os_ << i;
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    before_value();
    os_ << (b ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    before_value();
    os_ << "null";
    return *this;
}

} // namespace mps
