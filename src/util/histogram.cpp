#include "mps/util/histogram.h"

#include <algorithm>
#include <cmath>

namespace mps {

int
HistogramLayout::bucket_index(double value)
{
    if (!(value > 0.0))
        return 0; // zero, negative and NaN all land in the floor bucket
    int exp = 0;
    // frexp: value = frac * 2^exp with frac in [0.5, 1), so the octave
    // [2^o, 2^(o+1)) containing value has o = exp - 1.
    const double frac = std::frexp(value, &exp);
    const int octave = exp - 1;
    if (octave < kMinExponent)
        return 1;
    if (octave > kMaxExponent)
        return kNumBuckets - 1;
    // Linear position within the octave: frac*2 is value/2^o in [1, 2).
    int sub = static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    return 1 + (octave - kMinExponent) * kSubBuckets + sub;
}

double
HistogramLayout::bucket_upper(int index)
{
    if (index <= 0)
        return 0.0;
    const int linear = index - 1;
    const int octave = kMinExponent + linear / kSubBuckets;
    const int sub = linear % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                      octave);
}

double
HistogramLayout::bucket_value(int index)
{
    if (index <= 0)
        return 0.0;
    const int linear = index - 1;
    const int octave = kMinExponent + linear / kSubBuckets;
    const int sub = linear % kSubBuckets;
    return std::ldexp(1.0 + (static_cast<double>(sub) + 0.5) /
                                kSubBuckets,
                      octave);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count <= 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the requested sample (1-based, nearest-rank method).
    const int64_t rank = std::max<int64_t>(
        1, static_cast<int64_t>(
               std::ceil(q * static_cast<double>(count))));
    int64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += static_cast<int64_t>(buckets[i]);
        if (seen >= rank) {
            const double v =
                HistogramLayout::bucket_value(static_cast<int>(i));
            // The exact extremes are tracked; use them to keep
            // single-sample and tail quantiles within the data range.
            return std::clamp(v, min, max);
        }
    }
    return max;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count <= 0)
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
    if (buckets.size() < other.buckets.size())
        buckets.resize(other.buckets.size(), 0);
    for (size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
}

LogHistogram::LogHistogram()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

void
LogHistogram::record(double value)
{
    buckets_[HistogramLayout::bucket_index(value)].fetch_add(
        1, std::memory_order_relaxed);
    const int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
    // sum/min/max are CAS loops so concurrent writers never lose an
    // update; uncontended (the registry's per-thread shards) they are
    // a single relaxed exchange.
    double s = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(s, s + value,
                                       std::memory_order_relaxed)) {
    }
    if (n == 0) {
        min_.store(value, std::memory_order_relaxed);
        max_.store(value, std::memory_order_relaxed);
        return;
    }
    double lo = min_.load(std::memory_order_relaxed);
    while (value < lo && !min_.compare_exchange_weak(
                             lo, value, std::memory_order_relaxed)) {
    }
    double hi = max_.load(std::memory_order_relaxed);
    while (value > hi && !max_.compare_exchange_weak(
                             hi, value, std::memory_order_relaxed)) {
    }
}

HistogramSnapshot
LogHistogram::snapshot() const
{
    HistogramSnapshot snap;
    merge_into(snap);
    return snap;
}

void
LogHistogram::merge_into(HistogramSnapshot &into) const
{
    HistogramSnapshot mine;
    mine.count = count_.load(std::memory_order_relaxed);
    if (mine.count <= 0)
        return;
    mine.sum = sum_.load(std::memory_order_relaxed);
    mine.min = min_.load(std::memory_order_relaxed);
    mine.max = max_.load(std::memory_order_relaxed);
    mine.buckets.resize(HistogramLayout::kNumBuckets, 0);
    for (int i = 0; i < HistogramLayout::kNumBuckets; ++i)
        mine.buckets[static_cast<size_t>(i)] =
            buckets_[i].load(std::memory_order_relaxed);
    into.merge(mine);
}

void
LogHistogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

} // namespace mps
