/**
 * @file
 * Persistent work-stealing parallel runtime.
 *
 * This is the scheduler every kernel dispatches through. It replaces
 * the legacy mutex/condvar ThreadPool (kept in thread_pool.h as the
 * baseline for bench/pool_overhead) whose per-call costs — a condvar
 * broadcast per parallel_for, every worker contending on one shared
 * fetch_add cacheline, and a full wake/sleep round-trip even for tiny
 * jobs — are the CPU transplant of the warp-scheduling waste the paper
 * eliminates on GPU (DESIGN.md §7b).
 *
 * Design:
 *  - Chunk ranges per executor. A parallel_for splits [0, n) into
 *    grain-sized chunks and statically partitions the chunks into one
 *    contiguous range per executor (workers + the calling thread).
 *    Merge-path schedules are already balanced, so in the common case
 *    every executor drains only its own range — an uncontended
 *    fetch_add on its own cacheline. Only when an executor runs dry
 *    does it steal from the ranges of stragglers (Chase–Lev-style
 *    owner/thief claims collapsed onto one cursor per range; thieves
 *    touch a range's cacheline only while actually stealing).
 *  - The caller participates. The submitting thread executes its own
 *    range (and steals) before waiting, so small jobs complete at
 *    memory speed without any wake/sleep round-trip at all.
 *  - Adaptive waiting. Idle workers spin on a job epoch for
 *    MPS_POOL_SPIN iterations (default 4096; 0 parks immediately),
 *    yield a few times, then park on a condvar. Back-to-back kernel
 *    launches — the serving hot path — never touch the condvar.
 *  - Concurrent and re-entrant submission. parallel_for may be called
 *    from many threads at once (each job occupies one of a fixed set
 *    of slots; workers service all active jobs). A call from inside a
 *    worker of the same pool degrades to inline execution.
 *  - No std::function. The templated parallel_for passes a pointer to
 *    the caller's lambda plus a monomorphized range invoker — no heap
 *    allocation and one indirect call per chunk rather than per index.
 *
 * Observability (all through the PR 1 registry, no-ops when disabled):
 * pool.dispatch_ns (timer; nanosecond samples of the submit path),
 * pool.steals / pool.parks / pool.jobs / pool.inline_runs (counters).
 * Load-balance telemetry (the live analog of the paper's Fig. 8):
 * per-executor busy and steal durations per job class go into the
 * pool.worker.busy_ms.{small,medium,large} and .steal_ms.* histograms
 * (jobs too small to rebalance — fewer than two chunks per range —
 * are excluded so launch latency stays unperturbed), workers
 * accumulate cumulative busy time per slot, and publish_imbalance()
 * derives the pool.imbalance gauge (max/mean worker busy time) plus
 * per-worker pool.worker.busy_seconds{worker="i"} gauges. Workers
 * publish automatically before parking; scrape paths call it on
 * demand.
 *
 * Environment: MPS_POOL_SPIN (spin budget, read at pool construction),
 * MPS_PIN_THREADS=1 (pin worker i to core i mod hardware cores).
 */
#ifndef MPS_UTIL_WORK_STEAL_POOL_H
#define MPS_UTIL_WORK_STEAL_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mps {

/**
 * Persistent pool of steal-capable worker threads.
 *
 * parallel_for(n, fn) runs fn(i) for every i in [0, n) and returns when
 * all indices completed. Indices are grouped into grain-sized chunks;
 * grain 0 (the default) derives the chunk size from n and the pool
 * width so every executor gets ~8 chunks to start from and stragglers
 * can be stolen from.
 */
class WorkStealPool
{
  public:
    /** Range invoker: run indices [begin, end) against a context. */
    using RangeFn = void (*)(const void *ctx, uint64_t begin,
                             uint64_t end);

    /**
     * @param num_threads worker count; 0 selects hardware concurrency
     *        (minimum 2 so concurrency bugs surface on 1-core hosts).
     */
    explicit WorkStealPool(unsigned num_threads = 0);
    ~WorkStealPool();

    WorkStealPool(const WorkStealPool &) = delete;
    WorkStealPool &operator=(const WorkStealPool &) = delete;

    /**
     * Number of worker threads in the pool. Reads a count fixed before
     * the first worker starts, not workers_.size() — workers touch it
     * (via publish_imbalance) while the constructor is still emplacing
     * their std::thread handles.
     */
    unsigned size() const { return num_workers_; }

    /**
     * Upper bound on threads that can execute tasks of one
     * parallel_for: the workers plus the submitting caller. Kernels
     * size per-executor accumulator arrays with this (indexed by
     * current_slot()).
     */
    unsigned max_concurrency() const { return size() + 1; }

    /**
     * Stable executor index of the current thread for this pool:
     * workers report [0, size()), every other thread (in particular a
     * parallel_for caller participating in its own job) reports
     * size(). Within one parallel_for no two concurrently executing
     * tasks observe the same slot.
     */
    unsigned current_slot() const;

    /**
     * Run fn(i) for all i in [0, n); blocks until every index
     * finished. Safe to call from multiple threads concurrently; a
     * call from inside one of this pool's own workers runs inline.
     * @p grain indices are claimed per chunk; 0 auto-derives the
     * chunk size from n and the pool width.
     */
    template <class F>
    void parallel_for(uint64_t n, const F &fn, uint64_t grain = 0)
    {
        run(n, grain,
            [](const void *ctx, uint64_t begin, uint64_t end) {
                const F &f = *static_cast<const F *>(ctx);
                for (uint64_t i = begin; i < end; ++i)
                    f(i);
            },
            &fn);
    }

    /**
     * Chunk-granular variant: fn(begin, end) receives whole claimed
     * ranges, letting the body hoist per-chunk setup (accumulator
     * flushes, scratch lookups) out of the index loop.
     */
    template <class F>
    void parallel_for_ranges(uint64_t n, const F &fn, uint64_t grain = 0)
    {
        run(n, grain,
            [](const void *ctx, uint64_t begin, uint64_t end) {
                (*static_cast<const F *>(ctx))(begin, end);
            },
            &fn);
    }

    /** Process-wide default pool (lazily constructed, never destroyed
     *  before exit). */
    static WorkStealPool &global();

    /**
     * Publish the scheduler load-balance gauges derived from the
     * cumulative per-worker busy time: pool.imbalance (max/mean busy
     * across workers; 1.0 = perfectly even, 0 when idle) and one
     * pool.worker.busy_seconds{worker="i"} gauge per worker. No-op
     * while the registry is disabled. Called by workers before they
     * park and by scrape hooks (the /metrics endpoint).
     */
    void publish_imbalance(class MetricsRegistry &registry) const;
    void publish_imbalance() const;

  private:
    /** Concurrent in-flight jobs; further submissions run inline. */
    static constexpr unsigned kJobSlots = 8;
    /** Executor ranges per job (wider pools share ranges modulo). */
    static constexpr unsigned kMaxRanges = 65;

    enum SlotState : uint32_t { kFree = 0, kBuilding = 1, kActive = 2 };

    /**
     * One executor's contiguous share of a job's chunks. The owner
     * claims with an uncontended fetch_add; thieves hit the same
     * cursor only while the owner is a straggler.
     */
    struct alignas(64) ChunkRange
    {
        std::atomic<uint64_t> next{0};
        uint64_t end = 0;
    };

    /** One in-flight parallel_for. Slots are pool-owned and recycled;
     *  they are never freed while the pool lives, so a worker holding
     *  a stale pointer can always safely read the state word. */
    struct JobSlot
    {
        std::atomic<uint32_t> state{kFree};
        /** Workers currently inside this slot; the submitter recycles
         *  the slot only once this drops to zero. */
        std::atomic<uint32_t> participants{0};
        std::atomic<uint64_t> completed{0};
        std::atomic<bool> caller_waiting{false};

        // Immutable while state == kActive.
        RangeFn invoke = nullptr;
        const void *ctx = nullptr;
        uint64_t n = 0;
        uint64_t grain = 1;
        uint64_t num_chunks = 0;
        uint32_t num_ranges = 0;
        ChunkRange ranges[kMaxRanges];
    };

    /** Per-executor cumulative busy time (own cacheline each). */
    struct alignas(64) ExecutorStat
    {
        std::atomic<uint64_t> busy_ns{0};
    };

    void run(uint64_t n, uint64_t grain, RangeFn invoke, const void *ctx);
    void worker_loop(unsigned id);
    bool scan_jobs(unsigned preferred_range, uint64_t &steals);
    bool work_on(JobSlot &slot, unsigned my_range, uint64_t &steals);
    void wait_job_done(JobSlot &slot);
    void finish_chunk(JobSlot &slot);

    unsigned num_workers_ = 0;
    std::vector<std::thread> workers_;
    std::unique_ptr<JobSlot[]> slots_;
    /** size() + 1 entries; the last aggregates external callers. */
    std::unique_ptr<ExecutorStat[]> executor_stats_;

    /** Bumped on every publish; idle workers spin on it. */
    std::atomic<uint64_t> epoch_{0};
    std::atomic<uint32_t> parked_{0};
    std::atomic<bool> shutdown_{false};

    uint32_t spin_budget_ = 4096;
    bool pin_threads_ = false;

    // Slow paths only: parking idle workers / a caller waiting on a
    // long tail. The claim/execute data path never takes a lock.
    std::mutex park_mutex_;
    std::condition_variable work_cv_;
    std::mutex done_mutex_;
    std::condition_variable done_cv_;
};

} // namespace mps

#endif // MPS_UTIL_WORK_STEAL_POOL_H
