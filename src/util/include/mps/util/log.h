/**
 * @file
 * Lightweight logging, panic and fatal-error helpers.
 *
 * Semantics follow the gem5 convention:
 *  - panic():  an internal invariant was violated (a bug in this library);
 *              aborts so a debugger or core dump can capture the state.
 *  - fatal():  the caller/user supplied an impossible configuration; exits
 *              with a non-zero status after printing the message.
 *  - warn()/inform(): advisory messages that never stop execution.
 */
#ifndef MPS_UTIL_LOG_H
#define MPS_UTIL_LOG_H

#include <sstream>
#include <string>

namespace mps {

/** Severity of a log message. */
enum class LogLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kSilent = 4,
};

/** Set the global minimum level that is actually printed. */
void set_log_level(LogLevel level);

/** Current global minimum level. */
LogLevel log_level();

/** Emit one log line (used by the convenience wrappers below). */
void log_message(LogLevel level, const std::string &msg);

/** Advisory message about normal operation. */
void inform(const std::string &msg);

/** Advisory message about suspicious-but-survivable conditions. */
void warn(const std::string &msg);

/** Internal invariant violated: print and abort(). */
[[noreturn]] void panic(const std::string &msg);

/** Unrecoverable user/configuration error: print and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

namespace detail {

/** Builds a message from stream-style arguments. */
template <typename... Args>
std::string
format_parts(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Check an internal invariant; panics with file/line context on failure.
 * Active in all build types (unlike assert()).
 */
#define MPS_CHECK(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::mps::panic(::mps::detail::format_parts(                        \
                __FILE__, ":", __LINE__, ": check failed: ", #cond, ": ",    \
                ##__VA_ARGS__));                                             \
        }                                                                    \
    } while (0)

} // namespace mps

#endif // MPS_UTIL_LOG_H
