/**
 * @file
 * Deterministic pseudo-random number generators.
 *
 * All stochastic behaviour in the library (graph generation, test inputs)
 * goes through these generators so every experiment is reproducible from a
 * seed. SplitMix64 is used for seeding / hashing; Pcg32 is the workhorse
 * stream generator.
 */
#ifndef MPS_UTIL_RNG_H
#define MPS_UTIL_RNG_H

#include <cstdint>

namespace mps {

/** Mix a 64-bit value (SplitMix64 finalizer); good seed expander. */
inline uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * PCG32 (O'Neill): small, fast, statistically solid 32-bit generator with
 * 64-bit state and stream selection. Deterministic across platforms.
 */
class Pcg32
{
  public:
    /** Construct from a seed and an optional independent stream id. */
    explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                   uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1u;
        next_u32();
        state_ += seed;
        next_u32();
    }

    /** Next raw 32-bit value. */
    uint32_t
    next_u32()
    {
        uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        uint32_t xorshifted =
            static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
        uint32_t rot = static_cast<uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31));
    }

    /** Next raw 64-bit value. */
    uint64_t
    next_u64()
    {
        return (static_cast<uint64_t>(next_u32()) << 32) | next_u32();
    }

    /** Uniform integer in [0, bound); bound must be > 0. Unbiased. */
    uint32_t
    next_below(uint32_t bound)
    {
        // Lemire-style rejection via threshold.
        uint32_t threshold = (~bound + 1u) % bound;
        for (;;) {
            uint32_t r = next_u32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return (next_u64() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    next_float(float lo, float hi)
    {
        return lo + static_cast<float>(next_double()) * (hi - lo);
    }

  private:
    uint64_t state_;
    uint64_t inc_;
};

} // namespace mps

#endif // MPS_UTIL_RNG_H
