/**
 * @file
 * Minimal command-line flag parser for the bench/example binaries.
 *
 * Flags take the form --name=value or --name value; bools may be given as
 * a bare --name. Unknown flags are fatal so typos never silently change an
 * experiment.
 */
#ifndef MPS_UTIL_CLI_H
#define MPS_UTIL_CLI_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mps {

/** Declarative flag registry + parser. */
class FlagParser
{
  public:
    /** @param description one-line program description shown in --help. */
    explicit FlagParser(std::string description);

    /** Register an int64 flag with a default value and help text. */
    void add_int(const std::string &name, int64_t def,
                 const std::string &help);

    /** Register a double flag. */
    void add_double(const std::string &name, double def,
                    const std::string &help);

    /** Register a string flag. */
    void add_string(const std::string &name, const std::string &def,
                    const std::string &help);

    /** Register a bool flag (default false unless stated). */
    void add_bool(const std::string &name, bool def,
                  const std::string &help);

    /**
     * Parse argv. Exits(0) after printing usage when --help is present;
     * fatal() on unknown flags or malformed values.
     */
    void parse(int argc, char **argv);

    int64_t get_int(const std::string &name) const;
    double get_double(const std::string &name) const;
    const std::string &get_string(const std::string &name) const;
    bool get_bool(const std::string &name) const;

    /** Positional (non-flag) arguments, in order. */
    const std::vector<std::string> &positional() const {
        return positional_;
    }

    /** Render usage text. */
    std::string usage(const std::string &prog) const;

  private:
    enum class Type { kInt, kDouble, kString, kBool };
    struct Flag
    {
        Type type;
        std::string help;
        int64_t int_val = 0;
        double double_val = 0.0;
        std::string string_val;
        bool bool_val = false;
    };

    const Flag &find(const std::string &name, Type type) const;
    void set_from_string(Flag &flag, const std::string &name,
                         const std::string &value);

    std::string description_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> positional_;
};

} // namespace mps

#endif // MPS_UTIL_CLI_H
