/**
 * @file
 * Minimal streaming JSON writer used by the observability exporters
 * (metrics snapshots, Chrome trace files, mps_tool profile reports).
 * Emits syntactically valid JSON only: strings are escaped, commas are
 * inserted automatically, and non-finite doubles degrade to null.
 */
#ifndef MPS_UTIL_JSON_H
#define MPS_UTIL_JSON_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace mps {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string json_escape(const std::string &s);

/**
 * Builds one JSON document incrementally. Usage:
 *
 *   JsonWriter w;
 *   w.begin_object();
 *   w.key("answer").value(42);
 *   w.key("list").begin_array().value(1.5).value("x").end_array();
 *   w.end_object();
 *   std::string doc = w.str();
 *
 * The writer panics on malformed call sequences (value without a key
 * inside an object, unbalanced end calls) so exporter bugs surface in
 * tests rather than as unparsable files.
 */
class JsonWriter
{
  public:
    JsonWriter &begin_object();
    JsonWriter &end_object();
    JsonWriter &begin_array();
    JsonWriter &end_array();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(int64_t i);
    JsonWriter &value(int i) { return value(static_cast<int64_t>(i)); }
    JsonWriter &value(bool b);
    JsonWriter &null();

    /** The document so far. */
    std::string str() const { return os_.str(); }

  private:
    enum class Scope { kObject, kArray };

    void before_value();

    std::ostringstream os_;
    std::vector<Scope> scopes_;
    std::vector<bool> first_in_scope_;
    bool pending_key_ = false;
};

} // namespace mps

#endif // MPS_UTIL_JSON_H
