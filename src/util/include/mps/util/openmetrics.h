/**
 * @file
 * OpenMetrics / Prometheus text exposition for the metrics registry.
 *
 * to_openmetrics() renders a merged MetricsRegistry snapshot as the
 * text format a Prometheus scraper ingests:
 *
 *   counters   -> `# TYPE f counter` + `f_total <v>`
 *   gauges     -> `# TYPE f gauge` + `f <v>`
 *   timers     -> `# TYPE f summary` + `f_count` / `f_sum`
 *   histograms -> `# TYPE f histogram` + cumulative
 *                 `f_bucket{le="..."}` lines + `f_sum` / `f_count`
 *
 * Registry names are dotted (`serve.request.latency`); family names
 * replace every character outside [a-zA-Z0-9_:] with '_'. A registry
 * name may carry pre-formatted labels inline — everything from the
 * first '{' on is parsed as `key="value"` pairs and re-emitted escaped
 * (`pool.worker.busy_seconds{worker="3"}` becomes one labelled sample
 * of family `pool_worker_busy_seconds`), which is how flat registry
 * names express per-worker / per-tenant dimensions.
 *
 * The module also ships the read side — parse_openmetrics() and
 * validate_openmetrics() — used by `mps_tool top`, the format tests
 * and the tools/check.sh telemetry stage, so the exporter and its
 * validator cannot drift apart.
 */
#ifndef MPS_UTIL_OPENMETRICS_H
#define MPS_UTIL_OPENMETRICS_H

#include <map>
#include <string>
#include <vector>

#include "mps/util/metrics.h"

namespace mps {

/** Family-name sanitization: anything outside [a-zA-Z0-9_:] -> '_'. */
std::string openmetrics_name(const std::string &name);

/** Escape a label value ('\\', '"' and newline, per the spec). */
std::string openmetrics_label_escape(const std::string &value);

/** Render @p snapshot as OpenMetrics text, terminated by `# EOF`. */
std::string to_openmetrics(const std::vector<MetricSnapshot> &snapshot);

/** Shorthand: render @p registry 's merged snapshot. */
std::string to_openmetrics(const MetricsRegistry &registry);

/** One parsed sample line. */
struct OpenMetricsSample
{
    /** Full sample name (family + suffix), e.g. `f_bucket`. */
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0.0;

    /** The `le` label as a double (+inf for "+Inf"); NaN if absent. */
    double le() const;
};

/** Parsed document: samples in file order plus the TYPE declarations. */
struct OpenMetricsText
{
    std::vector<OpenMetricsSample> samples;
    /** family -> declared type ("counter", "gauge", ...). */
    std::map<std::string, std::string> types;

    /** First sample with @p name (and @p labels if non-empty matched
     *  as a subset); nullptr when absent. */
    const OpenMetricsSample *
    find(const std::string &name,
         const std::map<std::string, std::string> &labels = {}) const;

    /** find()'s value, or @p fallback when absent. */
    double value_or(const std::string &name, double fallback = 0.0) const;

    /**
     * Quantile @p q in [0,1] of histogram family @p family,
     * interpolated from its cumulative `_bucket` samples; 0 when the
     * family is absent or empty.
     */
    double histogram_quantile(const std::string &family, double q) const;
};

/**
 * Parse OpenMetrics text. On syntax errors, parsing stops, *error (if
 * given) describes the first problem, and the samples parsed so far
 * are returned.
 */
OpenMetricsText parse_openmetrics(const std::string &text,
                                  std::string *error = nullptr);

/**
 * Strict format validation: every line must be a well-formed comment,
 * TYPE/HELP declaration or sample; the document must end with `# EOF`;
 * histogram `_bucket` series must be cumulative (non-decreasing in
 * file order). Returns false with a diagnostic in *error otherwise.
 */
bool validate_openmetrics(const std::string &text,
                          std::string *error = nullptr);

} // namespace mps

#endif // MPS_UTIL_OPENMETRICS_H
