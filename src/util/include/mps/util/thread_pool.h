/**
 * @file
 * LEGACY: a fixed-size worker pool with a blocking mutex/condvar
 * parallel_for.
 *
 * The kernels now dispatch through WorkStealPool (work_steal_pool.h),
 * which removes this pool's per-call condvar broadcast, the shared
 * next_index_ fetch_add cacheline and the full wake/sleep round-trip
 * per job. This implementation is kept as the measured baseline for
 * bench/pool_overhead and as a reference for the dispatch-overhead
 * discussion in DESIGN.md §7b. Do not add new call sites.
 */
#ifndef MPS_UTIL_THREAD_POOL_H
#define MPS_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mps {

/**
 * Persistent pool of worker threads executing index-based tasks.
 *
 * parallel_for(n, fn) runs fn(i) for every i in [0, n), distributing
 * indices dynamically in contiguous grain-sized chunks, and returns when
 * all indices completed. Nested parallel_for calls are not supported.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 selects hardware concurrency
     *        (minimum 2 so concurrency bugs surface even on 1-core hosts).
     */
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads in the pool. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Run fn(i) for all i in [0, n); blocks until every index finished.
     * Indices are claimed in chunks of @p grain to bound scheduling
     * overhead for fine-grained work.
     */
    void parallel_for(uint64_t n, const std::function<void(uint64_t)> &fn,
                      uint64_t grain = 1);

    /** Process-wide default pool (lazily constructed). */
    static ThreadPool &global();

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;

    // Current job state (guarded by mutex_ for control fields; the index
    // counter itself is claimed with atomic fetch_add).
    const std::function<void(uint64_t)> *job_fn_ = nullptr;
    uint64_t job_n_ = 0;
    uint64_t job_grain_ = 1;
    std::atomic<uint64_t> next_index_{0};
    unsigned active_workers_ = 0;
    uint64_t job_epoch_ = 0;
    bool shutdown_ = false;
};

} // namespace mps

#endif // MPS_UTIL_THREAD_POOL_H
