/**
 * @file
 * Process-wide performance metrics: named counters, gauges and timing
 * distributions, written from any thread and merged on read.
 *
 * Design goals, in order:
 *  1. Near-zero cost when disabled — every mutator starts with one
 *     relaxed atomic load and returns. Instrumentation can therefore be
 *     left compiled into release hot paths (the mps_tool spmm loop, the
 *     thread-pool worker loop) unconditionally.
 *  2. No cross-thread contention when enabled — counters, timing
 *     distributions and histograms live in per-thread shards. A
 *     thread's steady-state increment touches only its own
 *     cache-resident cells with relaxed atomics (wait-free); a shard's
 *     mutex is taken only to create a new cell or by a reader
 *     enumerating the shard.
 *  3. Machine-readable output — snapshot() merges the shards and the
 *     JSON/CSV exporters emit exactly what the mps_tool profile report
 *     and the bench trajectory files consume.
 *
 * Gauges are registry-global (a mutex-protected map): they are written
 * rarely (once per schedule build / report), and "last write wins" is
 * the semantics callers expect from them.
 */
#ifndef MPS_UTIL_METRICS_H
#define MPS_UTIL_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mps/util/histogram.h"
#include "mps/util/timer.h"

namespace mps {

/** What a named metric measures. */
enum class MetricKind {
    kCounter,   ///< monotonically accumulated int64 (events, items)
    kGauge,     ///< last-written double (ratios, sizes)
    kTimer,     ///< min/mean/max of millisecond durations
    kHistogram, ///< log-bucketed distribution with quantiles
};

/** to_string for MetricKind ("counter"/"gauge"/"timer"/"histogram"). */
const char *metric_kind_name(MetricKind kind);

/** One merged metric as returned by MetricsRegistry::snapshot(). */
struct MetricSnapshot
{
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    /** Counter value, or number of timing/histogram samples. */
    int64_t count = 0;
    /** Gauge value, or total across timing/histogram samples. */
    double sum = 0.0;
    /** Smallest / largest timing or histogram sample. */
    double min = 0.0;
    double max = 0.0;
    /** Histogram quantiles (~2% relative error); 0 for other kinds. */
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    /**
     * Histogram-only: merged per-bucket counts in HistogramLayout
     * order (used by the OpenMetrics exporter); empty otherwise.
     */
    std::vector<uint64_t> buckets;

    /** Mean per sample (0 when empty). */
    double mean() const {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

/**
 * Registry of named metrics. Use MetricsRegistry::global() for the
 * process-wide instance every built-in instrumentation point writes to;
 * independent instances exist only so tests can exercise the merging
 * logic in isolation.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Process-wide registry (never destroyed; safe during shutdown). */
    static MetricsRegistry &global();

    /** Turn collection on/off. Mutators are no-ops while disabled. */
    void set_enabled(bool on) {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Add @p delta to counter @p name (created on first use). */
    void counter_add(const std::string &name, int64_t delta = 1);

    /** Set gauge @p name to @p value (last write wins). */
    void gauge_set(const std::string &name, double value);

    /** Record one @p ms duration sample into timer @p name. */
    void timer_record_ms(const std::string &name, double ms);

    /**
     * Record one sample into log-bucketed histogram @p name (created
     * on first use). Wait-free on steady state: the sample lands in
     * this thread's shard with relaxed atomics, exactly like a
     * counter increment.
     */
    void histogram_record(const std::string &name, double value);

    /** Merge all shards into one sorted-by-name snapshot. */
    std::vector<MetricSnapshot> snapshot() const;

    /** Merged value of one counter (0 when absent). */
    int64_t counter_value(const std::string &name) const;

    /** Value of one gauge (0.0 when absent). */
    double gauge_value(const std::string &name) const;

    /** Merged view of one timer (zeroed snapshot when absent). */
    MetricSnapshot timer_value(const std::string &name) const;

    /** Merged view of one histogram (zeroed snapshot when absent). */
    MetricSnapshot histogram_value(const std::string &name) const;

    /**
     * Full merged bucket view of one histogram (for exporters and
     * quantile math beyond the snapshot's fixed set).
     */
    HistogramSnapshot
    histogram_snapshot(const std::string &name) const;

    /**
     * Zero every counter/timer cell and drop all gauges. Shards and
     * cells stay allocated so cached handles in running threads remain
     * valid (tests call this between cases).
     */
    void reset();

    /**
     * Append the merged snapshot as a JSON array of metric objects to
     * an in-progress document (used by the mps_tool profile report).
     */
    void append_json_array(class JsonWriter &w) const;

    /** {"metrics":[{name,kind,...}, ...]} document. */
    std::string to_json() const;

    /** name,kind,count,sum,min,max,mean header + one row per metric. */
    std::string to_csv() const;

    /** Write to_json() to @p path; false (with a warning) on I/O error. */
    bool write_json_file(const std::string &path) const;

  private:
    friend struct MetricsTls;

    /** One counter/timer/histogram slot; written only by the owning
     *  thread. */
    struct Cell
    {
        MetricKind kind;
        std::atomic<int64_t> count{0};
        std::atomic<double> sum{0.0};
        std::atomic<double> min{0.0};
        std::atomic<double> max{0.0};
        /** Bucket storage, allocated only for kHistogram cells. */
        std::unique_ptr<LogHistogram> hist;

        explicit Cell(MetricKind k) : kind(k)
        {
            if (kind == MetricKind::kHistogram)
                hist = std::make_unique<LogHistogram>();
        }
    };

    /** Per-thread cell table. The mutex guards only the map's shape. */
    struct Shard
    {
        mutable std::mutex mutex;
        std::map<std::string, std::unique_ptr<Cell>> cells;
    };

    Cell *cell(const std::string &name, MetricKind kind);

    /** Unique forever; lets thread-local caches outlive registries. */
    const uint64_t id_;

    std::atomic<bool> enabled_{false};

    mutable std::mutex shards_mutex_;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex gauges_mutex_;
    std::map<std::string, double> gauges_;
};

/**
 * RAII timing sample: records the scope's wall time into timer
 * @p name on destruction. Does not read the clock while the registry
 * is disabled.
 */
class MetricTimer
{
  public:
    explicit MetricTimer(std::string name,
                         MetricsRegistry &registry =
                             MetricsRegistry::global())
        : name_(std::move(name)), registry_(registry),
          armed_(registry.enabled())
    {
    }

    ~MetricTimer()
    {
        if (armed_)
            registry_.timer_record_ms(name_, timer_.elapsed_ms());
    }

    MetricTimer(const MetricTimer &) = delete;
    MetricTimer &operator=(const MetricTimer &) = delete;

  private:
    std::string name_;
    MetricsRegistry &registry_;
    bool armed_;
    Timer timer_;
};

} // namespace mps

#endif // MPS_UTIL_METRICS_H
