/**
 * @file
 * Monotonic wall-clock timer for host-side measurements (e.g. schedule
 * construction cost in the online-execution experiment, Figure 8).
 */
#ifndef MPS_UTIL_TIMER_H
#define MPS_UTIL_TIMER_H

#include <chrono>

namespace mps {

/** Steady-clock stopwatch; starts on construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction / last reset. */
    double
    elapsed_seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed since construction / last reset. */
    double elapsed_ms() const { return elapsed_seconds() * 1e3; }

    /** Microseconds elapsed since construction / last reset. */
    double elapsed_us() const { return elapsed_seconds() * 1e6; }

    /** Nanoseconds elapsed since construction / last reset. */
    double elapsed_ns() const { return elapsed_seconds() * 1e9; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace mps

#endif // MPS_UTIL_TIMER_H
