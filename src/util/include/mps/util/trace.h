/**
 * @file
 * Scoped-span tracing with Chrome trace_event JSON export.
 *
 * A TraceSession collects begin/end (exported as complete, ph:"X")
 * events per thread; the resulting file loads directly in
 * chrome://tracing or https://ui.perfetto.dev. Spans are created with
 * the RAII ScopedSpan, which costs one relaxed atomic load when no
 * session is active, so instrumentation can stay in release hot paths.
 *
 * Like the metrics registry, the session keeps per-thread event
 * buffers: recording a span never contends with other threads; the
 * per-shard mutex is taken only on the first event of a thread and by
 * the exporter.
 */
#ifndef MPS_UTIL_TRACE_H
#define MPS_UTIL_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mps {

/** One completed span or flow point, timestamps in microseconds since
 *  start(). */
struct TraceEvent
{
    std::string name;
    std::string category;
    double ts_us = 0.0;
    double dur_us = 0.0;
    /** Small dense thread id assigned in first-event order. */
    uint32_t tid = 0;
    /**
     * Chrome trace phase: 'X' (complete span) or the flow phases
     * 's' (start), 't' (step), 'f' (finish). Flow events carry no
     * duration; events sharing (name, category, flow_id) render as a
     * connected arrow chain in Perfetto.
     */
    char phase = 'X';
    /** Flow binding id (the serve path uses the request id). */
    uint64_t flow_id = 0;
};

/**
 * A recording session. Use TraceSession::global() — ScopedSpan always
 * records there; independent instances exist for tests.
 */
class TraceSession
{
  public:
    TraceSession();
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Process-wide session (never destroyed; safe during shutdown). */
    static TraceSession &global();

    /** Drop prior events and begin recording (t = 0 is now). */
    void start();

    /** Stop recording; collected events stay available for export. */
    void stop();

    bool active() const {
        return active_.load(std::memory_order_relaxed);
    }

    /** Microseconds since start() on the session's steady clock. */
    double now_us() const;

    /**
     * Record one completed span. Recorded unconditionally — callers
     * (ScopedSpan) latch active() at span begin, so a span straddling
     * stop() is still exported complete.
     */
    void record_complete(std::string name, std::string category,
                         double ts_us, double dur_us);

    /**
     * Record one flow point ('s' start / 't' step / 'f' finish) at the
     * current time, bound to @p id. No-op while inactive. Emit each
     * point from inside a span on its thread so the arrows have
     * slices to attach to (Chrome binds a flow event to the slice
     * enclosing its timestamp).
     */
    void record_flow(const char *name, const char *category, char phase,
                     uint64_t id);

    /** All events so far, merged across threads, sorted by ts. */
    std::vector<TraceEvent> events() const;

    /** Number of events recorded so far (merged across threads). */
    size_t event_count() const;

    /** Drop all recorded events (keeps the active flag unchanged). */
    void clear();

    /**
     * {"traceEvents":[...],"displayTimeUnit":"ms"} in Chrome
     * trace_event format (one ph:"X" entry per span).
     */
    std::string to_chrome_json() const;

    /** Write to_chrome_json() to @p path; false on I/O error. */
    bool write_chrome_json_file(const std::string &path) const;

  private:
    friend struct TraceTls;

    struct Shard
    {
        mutable std::mutex mutex;
        uint32_t tid = 0;
        std::vector<TraceEvent> events;
    };

    Shard *local_shard();

    const uint64_t id_;
    std::atomic<bool> active_{false};
    std::chrono::steady_clock::time_point origin_;

    mutable std::mutex shards_mutex_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/**
 * RAII span recorded into TraceSession::global(). The span is kept if
 * the session was active at construction (so a span straddling stop()
 * is still exported complete).
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name, std::string category = "mps")
        : active_(TraceSession::global().active())
    {
        if (active_) {
            name_ = std::move(name);
            category_ = std::move(category);
            start_us_ = TraceSession::global().now_us();
        }
    }

    /** Literal-name overload: no string is built while inactive. */
    explicit ScopedSpan(const char *name, const char *category = "mps")
        : active_(TraceSession::global().active())
    {
        if (active_) {
            name_ = name;
            category_ = category;
            start_us_ = TraceSession::global().now_us();
        }
    }

    ~ScopedSpan()
    {
        if (active_) {
            TraceSession &session = TraceSession::global();
            session.record_complete(std::move(name_),
                                    std::move(category_), start_us_,
                                    session.now_us() - start_us_);
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    bool active_;
    std::string name_;
    std::string category_;
    double start_us_ = 0.0;
};

} // namespace mps

#endif // MPS_UTIL_TRACE_H
