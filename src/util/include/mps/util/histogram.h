/**
 * @file
 * Log-bucketed histogram for latency/duration distributions (the
 * kHistogram metric kind and the serve path's latency accounting).
 *
 * Bucketing is HDR-style: the value's binary exponent selects an
 * octave and the top kSubBucketBits mantissa bits a linear sub-bucket
 * within it, so a bucket's width is a fixed fraction of its position.
 * With 32 sub-buckets per octave a bucket spans at most 1/32 of its
 * lower bound, and quoting the bucket midpoint bounds the relative
 * error of any reconstructed sample (and hence of every quantile) at
 * 1/64 ~ 1.6% — the "~2% relative error" the exporters document.
 * Indexing is frexp + integer ops on the mantissa — no log() on the
 * record path.
 *
 * LogHistogram is a fixed-size array of atomic counters. record() is a
 * relaxed fetch_add on one bucket plus count/sum/min/max updates:
 * lock-free always, and wait-free in the metrics registry's use where
 * each thread owns its shard's histogram. merge_into() + quantile()
 * reconstruct the distribution on the read side.
 */
#ifndef MPS_UTIL_HISTOGRAM_H
#define MPS_UTIL_HISTOGRAM_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace mps {

/** Static bucket layout shared by every LogHistogram. */
struct HistogramLayout
{
    /** Sub-bucket resolution: 2^5 = 32 buckets per octave. */
    static constexpr int kSubBucketBits = 5;
    static constexpr int kSubBuckets = 1 << kSubBucketBits;
    /**
     * Smallest/largest distinguishable binary exponent. In the
     * registry's millisecond unit this spans ~1 ns to ~12 days; values
     * outside clamp into the edge buckets.
     */
    static constexpr int kMinExponent = -20;
    static constexpr int kMaxExponent = 30;
    static constexpr int kOctaves = kMaxExponent - kMinExponent + 1;
    /** Bucket 0 holds zero and negative values. */
    static constexpr int kNumBuckets = 1 + kOctaves * kSubBuckets;

    /** Bucket index for @p value (clamped; <= 0 lands in bucket 0). */
    static int bucket_index(double value);

    /** Exclusive upper bound of bucket @p index (0 for bucket 0). */
    static double bucket_upper(int index);

    /**
     * Representative value reported for samples in bucket @p index:
     * the midpoint of the bucket's bounds, which is what bounds the
     * relative quantile error at half the bucket width.
     */
    static double bucket_value(int index);
};

/** Read-side view of a histogram: merged counts plus the moments. */
struct HistogramSnapshot
{
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** Per-bucket (non-cumulative) counts; empty when count == 0. */
    std::vector<uint64_t> buckets;

    /**
     * Value at quantile @p q in [0, 1] by bucket interpolation,
     * clamped into [min, max] so single-sample histograms report the
     * exact sample. 0 when empty.
     */
    double quantile(double q) const;

    double mean() const {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /** Merge another snapshot into this one (min/max/moments/buckets). */
    void merge(const HistogramSnapshot &other);
};

/**
 * The writable histogram. All mutators are lock-free (relaxed atomics);
 * concurrent record() calls from many threads are safe, at the cost of
 * cacheline traffic on shared buckets — the metrics registry avoids
 * even that by giving each thread its own instance.
 */
class LogHistogram
{
  public:
    LogHistogram();

    LogHistogram(const LogHistogram &) = delete;
    LogHistogram &operator=(const LogHistogram &) = delete;

    /** Add one sample. Lock-free; safe from any thread. */
    void record(double value);

    /** Samples recorded so far (relaxed read). */
    int64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }

    /** Copy the current state out for reading/merging. */
    HistogramSnapshot snapshot() const;

    /** Accumulate this histogram into @p into (read-side merging). */
    void merge_into(HistogramSnapshot &into) const;

    /** Zero every bucket and the moments (not linearizable vs record). */
    void reset();

  private:
    std::atomic<uint64_t> buckets_[HistogramLayout::kNumBuckets];
    std::atomic<int64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

} // namespace mps

#endif // MPS_UTIL_HISTOGRAM_H
