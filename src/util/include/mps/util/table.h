/**
 * @file
 * Console table / CSV writer used by every figure bench so the regenerated
 * tables and series look like the paper's rows and can also be ingested by
 * plotting scripts (--csv mode).
 */
#ifndef MPS_UTIL_TABLE_H
#define MPS_UTIL_TABLE_H

#include <string>
#include <vector>

namespace mps {

/** Aligned text table with an optional CSV rendering. */
class Table
{
  public:
    /** @param headers column titles, fixed for the table's lifetime. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent add_* calls fill it left to right. */
    void new_row();

    /** Append a string cell to the current row. */
    void add(const std::string &cell);

    /** Append a formatted double cell (fixed, @p precision digits). */
    void add(double value, int precision = 3);

    /** Append an integer cell. */
    void add_int(long long value);

    /** Number of completed or in-progress rows. */
    size_t num_rows() const { return rows_.size(); }

    /** Render with padded columns and a separator under the header. */
    std::string to_text() const;

    /** Render as CSV (header row first). */
    std::string to_csv() const;

    /** Print to stdout in text or CSV form. */
    void print(bool csv = false) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper for ad-hoc output). */
std::string format_double(double value, int precision = 3);

} // namespace mps

#endif // MPS_UTIL_TABLE_H
