/**
 * @file
 * Small statistics helpers shared by the generators, models and benches:
 * summary statistics (mean / geomean / stddev / coefficient of variation /
 * percentiles) and a logarithmically-binned histogram used for degree
 * distributions (Figure 1 of the paper).
 */
#ifndef MPS_UTIL_STATS_H
#define MPS_UTIL_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace mps {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Geometric mean; all inputs must be > 0; 0 for an empty input. */
double geomean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than 2 samples. */
double stddev(const std::vector<double> &xs);

/** Coefficient of variation (stddev / mean); 0 when mean is 0. */
double coefficient_of_variation(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile, p in [0, 100].
 * The input does not need to be sorted. Panics on empty input.
 */
double percentile(std::vector<double> xs, double p);

/**
 * The latency summary a serving report wants: count, mean, min/max and
 * the p50/p95/p99 tail percentiles, all from one sort of the samples.
 * All fields are 0 for an empty input (count == 0 marks it empty); a
 * single sample yields that value for every percentile.
 */
struct PercentileSummary
{
    int64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Compute a PercentileSummary (input need not be sorted). */
PercentileSummary summarize_percentiles(std::vector<double> xs);

/**
 * Histogram with power-of-two bins: bin k counts values in [2^k, 2^(k+1)),
 * with a dedicated bin for zero. Used to show the heavy tail of graph
 * degree distributions.
 */
class Log2Histogram
{
  public:
    /** Add one observation. */
    void add(uint64_t value);

    /** Number of observations equal to zero. */
    uint64_t zero_count() const { return zeros_; }

    /** Count in bin k, i.e. values in [2^k, 2^(k+1)). */
    uint64_t bin_count(int k) const;

    /** Index of the highest non-empty bin; -1 when all zero/empty. */
    int max_bin() const;

    /** Total number of observations. */
    uint64_t total() const { return total_; }

    /** Render as "bin-range count" lines for console output. */
    std::string to_string() const;

  private:
    std::vector<uint64_t> bins_;
    uint64_t zeros_ = 0;
    uint64_t total_ = 0;
};

} // namespace mps

#endif // MPS_UTIL_STATS_H
