#include "mps/util/openmetrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "mps/util/histogram.h"

namespace mps {

namespace {

bool
is_name_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
}

/** Split a registry name into its family part and inline label part. */
void
split_name_labels(const std::string &raw, std::string &family,
                  std::string &labels)
{
    const size_t brace = raw.find('{');
    family = openmetrics_name(raw.substr(0, brace));
    labels.clear();
    if (brace == std::string::npos)
        return;
    // Inline labels are already `key="value"` formatted by the caller;
    // re-escape the values so the output is always well formed.
    size_t pos = brace + 1;
    while (pos < raw.size() && raw[pos] != '}') {
        const size_t eq = raw.find('=', pos);
        if (eq == std::string::npos)
            break;
        std::string key = raw.substr(pos, eq - pos);
        size_t vbegin = eq + 1;
        if (vbegin < raw.size() && raw[vbegin] == '"')
            ++vbegin;
        size_t vend = vbegin;
        while (vend < raw.size() && raw[vend] != '"')
            ++vend;
        if (!labels.empty())
            labels += ',';
        labels += openmetrics_name(key) + "=\"" +
                  openmetrics_label_escape(
                      raw.substr(vbegin, vend - vbegin)) +
                  '"';
        pos = raw.find(',', vend);
        if (pos == std::string::npos)
            break;
        ++pos;
    }
}

std::string
fmt_double(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

void
emit_header(std::string &out, const std::string &family,
            const std::string &raw_name, const char *type)
{
    out += "# HELP " + family + " mps metric '" + raw_name + "'\n";
    out += "# TYPE " + family + ' ' + type + '\n';
}

void
emit_sample(std::string &out, const std::string &name,
            const std::string &labels, double value)
{
    out += name;
    if (!labels.empty())
        out += '{' + labels + '}';
    out += ' ' + fmt_double(value) + '\n';
}

/** labels plus one more `key="value"` pair. */
std::string
labels_with(const std::string &labels, const std::string &extra)
{
    return labels.empty() ? extra : labels + ',' + extra;
}

} // namespace

std::string
openmetrics_name(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name)
        out += is_name_char(c) ? c : '_';
    if (out.empty() ||
        std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

std::string
openmetrics_label_escape(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"':  out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default:   out += c; break;
        }
    }
    return out;
}

std::string
to_openmetrics(const std::vector<MetricSnapshot> &snapshot)
{
    std::string out;
    std::string last_family;
    for (const MetricSnapshot &s : snapshot) {
        std::string family, labels;
        split_name_labels(s.name, family, labels);
        // Snapshot order is sorted by name, so the labelled samples of
        // one family are adjacent and share one HELP/TYPE header.
        const bool new_family = family != last_family;
        last_family = family;
        switch (s.kind) {
          case MetricKind::kCounter:
            if (new_family)
                emit_header(out, family, s.name, "counter");
            emit_sample(out, family + "_total", labels,
                        static_cast<double>(s.count));
            break;
          case MetricKind::kGauge:
            if (new_family)
                emit_header(out, family, s.name, "gauge");
            emit_sample(out, family, labels, s.sum);
            break;
          case MetricKind::kTimer:
            if (new_family)
                emit_header(out, family, s.name, "summary");
            emit_sample(out, family + "_count", labels,
                        static_cast<double>(s.count));
            emit_sample(out, family + "_sum", labels, s.sum);
            break;
          case MetricKind::kHistogram: {
            if (new_family)
                emit_header(out, family, s.name, "histogram");
            // Cumulative buckets, emitted only where the count grows
            // (plus the mandatory +Inf) to keep scrapes compact.
            uint64_t cum = 0;
            for (size_t b = 0; b < s.buckets.size(); ++b) {
                if (s.buckets[b] == 0)
                    continue;
                cum += s.buckets[b];
                const double le = HistogramLayout::bucket_upper(
                    static_cast<int>(b));
                emit_sample(out, family + "_bucket",
                            labels_with(labels, "le=\"" +
                                                    fmt_double(le) +
                                                    "\""),
                            static_cast<double>(cum));
            }
            emit_sample(out, family + "_bucket",
                        labels_with(labels, "le=\"+Inf\""),
                        static_cast<double>(s.count));
            emit_sample(out, family + "_sum", labels, s.sum);
            emit_sample(out, family + "_count", labels,
                        static_cast<double>(s.count));
            break;
          }
        }
    }
    out += "# EOF\n";
    return out;
}

std::string
to_openmetrics(const MetricsRegistry &registry)
{
    return to_openmetrics(registry.snapshot());
}

double
OpenMetricsSample::le() const
{
    auto it = labels.find("le");
    if (it == labels.end())
        return std::numeric_limits<double>::quiet_NaN();
    if (it->second == "+Inf")
        return std::numeric_limits<double>::infinity();
    return std::strtod(it->second.c_str(), nullptr);
}

const OpenMetricsSample *
OpenMetricsText::find(
    const std::string &name,
    const std::map<std::string, std::string> &want) const
{
    for (const OpenMetricsSample &s : samples) {
        if (s.name != name)
            continue;
        bool match = true;
        for (const auto &[k, v] : want) {
            auto it = s.labels.find(k);
            if (it == s.labels.end() || it->second != v) {
                match = false;
                break;
            }
        }
        if (match)
            return &s;
    }
    return nullptr;
}

double
OpenMetricsText::value_or(const std::string &name, double fallback) const
{
    const OpenMetricsSample *s = find(name);
    return s == nullptr ? fallback : s->value;
}

double
OpenMetricsText::histogram_quantile(const std::string &family,
                                    double q) const
{
    // Collect the cumulative (le, count) pairs in file order; the
    // exporter (and the validator) guarantee they are non-decreasing.
    std::vector<std::pair<double, double>> cum;
    for (const OpenMetricsSample &s : samples) {
        if (s.name == family + "_bucket")
            cum.emplace_back(s.le(), s.value);
    }
    if (cum.empty() || cum.back().second <= 0.0)
        return 0.0;
    const double total = cum.back().second;
    const double rank = std::max(1.0, std::ceil(q * total));
    double prev_le = 0.0;
    for (const auto &[le, count] : cum) {
        if (count >= rank) {
            if (std::isinf(le))
                return prev_le;
            // Midpoint of the covering bucket, mirroring
            // HistogramSnapshot::quantile's error bound.
            return (prev_le + le) / 2.0;
        }
        prev_le = le;
    }
    return prev_le;
}

namespace {

/** Parse one `key="value",...}` label block; returns success. */
bool
parse_labels(const std::string &line, size_t &pos,
             std::map<std::string, std::string> &labels)
{
    ++pos; // '{'
    while (pos < line.size() && line[pos] != '}') {
        size_t kbegin = pos;
        while (pos < line.size() && is_name_char(line[pos]))
            ++pos;
        if (pos == kbegin || pos >= line.size() || line[pos] != '=')
            return false;
        std::string key = line.substr(kbegin, pos - kbegin);
        ++pos;
        if (pos >= line.size() || line[pos] != '"')
            return false;
        ++pos;
        std::string value;
        while (pos < line.size() && line[pos] != '"') {
            char c = line[pos];
            if (c == '\\') {
                ++pos;
                if (pos >= line.size())
                    return false;
                char esc = line[pos];
                if (esc == 'n')
                    c = '\n';
                else if (esc == '\\' || esc == '"')
                    c = esc;
                else
                    return false;
            }
            value += c;
            ++pos;
        }
        if (pos >= line.size())
            return false;
        ++pos; // closing '"'
        labels.emplace(std::move(key), std::move(value));
        if (pos < line.size() && line[pos] == ',')
            ++pos;
    }
    if (pos >= line.size() || line[pos] != '}')
        return false;
    ++pos;
    return true;
}

bool
parse_value(const std::string &text, double &value)
{
    if (text == "+Inf" || text == "Inf") {
        value = std::numeric_limits<double>::infinity();
        return true;
    }
    if (text == "-Inf") {
        value = -std::numeric_limits<double>::infinity();
        return true;
    }
    if (text == "NaN") {
        value = std::numeric_limits<double>::quiet_NaN();
        return true;
    }
    char *end = nullptr;
    value = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0';
}

} // namespace

OpenMetricsText
parse_openmetrics(const std::string &text, std::string *error)
{
    OpenMetricsText out;
    if (error != nullptr)
        error->clear();
    size_t line_no = 0;
    size_t begin = 0;
    bool saw_eof = false;
    while (begin < text.size()) {
        size_t end = text.find('\n', begin);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(begin, end - begin);
        begin = end + 1;
        ++line_no;
        auto fail = [&](const std::string &why) {
            if (error != nullptr && error->empty())
                *error = "line " + std::to_string(line_no) + ": " + why +
                         ": " + line;
        };
        if (line.empty())
            continue;
        if (saw_eof) {
            fail("content after # EOF");
            break;
        }
        if (line[0] == '#') {
            if (line == "# EOF") {
                saw_eof = true;
                continue;
            }
            if (line.rfind("# TYPE ", 0) == 0) {
                const size_t name_begin = 7;
                const size_t sp = line.find(' ', name_begin);
                if (sp == std::string::npos) {
                    fail("malformed TYPE line");
                    break;
                }
                out.types[line.substr(name_begin, sp - name_begin)] =
                    line.substr(sp + 1);
                continue;
            }
            if (line.rfind("# HELP ", 0) == 0)
                continue;
            // Other comments are legal in the Prometheus text format.
            continue;
        }
        OpenMetricsSample sample;
        size_t pos = 0;
        while (pos < line.size() && is_name_char(line[pos]))
            ++pos;
        if (pos == 0) {
            fail("sample does not start with a metric name");
            break;
        }
        sample.name = line.substr(0, pos);
        if (pos < line.size() && line[pos] == '{') {
            if (!parse_labels(line, pos, sample.labels)) {
                fail("malformed label block");
                break;
            }
        }
        if (pos >= line.size() || line[pos] != ' ') {
            fail("missing value separator");
            break;
        }
        ++pos;
        // An optional timestamp may follow the value; take the first
        // token as the value.
        size_t vend = line.find(' ', pos);
        if (vend == std::string::npos)
            vend = line.size();
        if (!parse_value(line.substr(pos, vend - pos), sample.value)) {
            fail("malformed sample value");
            break;
        }
        out.samples.push_back(std::move(sample));
    }
    if (!saw_eof && error != nullptr && error->empty())
        *error = "missing # EOF terminator";
    return out;
}

bool
validate_openmetrics(const std::string &text, std::string *error)
{
    std::string err;
    OpenMetricsText parsed = parse_openmetrics(text, &err);
    if (!err.empty()) {
        if (error != nullptr)
            *error = err;
        return false;
    }
    // Histogram buckets must be cumulative in file order per series.
    std::map<std::string, double> last_bucket; // family+labels -> count
    for (const OpenMetricsSample &s : parsed.samples) {
        if (s.name.size() <= 7 ||
            s.name.compare(s.name.size() - 7, 7, "_bucket") != 0)
            continue;
        std::string key = s.name;
        for (const auto &[k, v] : s.labels) {
            if (k != "le")
                key += '|' + k + '=' + v;
        }
        auto [it, inserted] = last_bucket.try_emplace(key, s.value);
        if (!inserted) {
            if (s.value < it->second) {
                if (error != nullptr)
                    *error = "non-cumulative bucket series: " + key;
                return false;
            }
            it->second = s.value;
        }
    }
    return true;
}

} // namespace mps
