#include "mps/util/trace.h"

#include <algorithm>
#include <fstream>

#include "mps/util/json.h"
#include "mps/util/log.h"

namespace mps {

namespace {

uint64_t
next_session_id()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

/** Per-thread session-id -> shard bindings (ids are never reused). */
struct TraceTls
{
    struct Entry
    {
        uint64_t session_id;
        TraceSession::Shard *shard;
    };

    std::vector<Entry> entries;

    static TraceTls &
    instance()
    {
        thread_local TraceTls tls;
        return tls;
    }
};

TraceSession::TraceSession()
    : id_(next_session_id()), origin_(std::chrono::steady_clock::now())
{
}

TraceSession::~TraceSession() = default;

TraceSession &
TraceSession::global()
{
    // Intentionally leaked, mirroring MetricsRegistry::global().
    static TraceSession *session = new TraceSession();
    return *session;
}

void
TraceSession::start()
{
    clear();
    origin_ = std::chrono::steady_clock::now();
    active_.store(true, std::memory_order_relaxed);
}

void
TraceSession::stop()
{
    active_.store(false, std::memory_order_relaxed);
}

double
TraceSession::now_us() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - origin_)
        .count();
}

TraceSession::Shard *
TraceSession::local_shard()
{
    TraceTls &tls = TraceTls::instance();
    for (const auto &e : tls.entries) {
        if (e.session_id == id_)
            return e.shard;
    }
    auto shard = std::make_unique<Shard>();
    Shard *raw = shard.get();
    {
        std::lock_guard<std::mutex> lock(shards_mutex_);
        raw->tid = static_cast<uint32_t>(shards_.size());
        shards_.push_back(std::move(shard));
    }
    tls.entries.push_back({id_, raw});
    return raw;
}

void
TraceSession::record_complete(std::string name, std::string category,
                              double ts_us, double dur_us)
{
    Shard *shard = local_shard();
    TraceEvent ev;
    ev.name = std::move(name);
    ev.category = std::move(category);
    ev.ts_us = ts_us;
    ev.dur_us = dur_us;
    ev.tid = shard->tid;
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->events.push_back(std::move(ev));
}

void
TraceSession::record_flow(const char *name, const char *category,
                          char phase, uint64_t id)
{
    if (!active())
        return;
    Shard *shard = local_shard();
    TraceEvent ev;
    ev.name = name;
    ev.category = category;
    ev.ts_us = now_us();
    ev.tid = shard->tid;
    ev.phase = phase;
    ev.flow_id = id;
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->events.push_back(std::move(ev));
}

std::vector<TraceEvent>
TraceSession::events() const
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(shards_mutex_);
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> shard_lock(shard->mutex);
            out.insert(out.end(), shard->events.begin(),
                       shard->events.end());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.ts_us < b.ts_us;
              });
    return out;
}

size_t
TraceSession::event_count() const
{
    size_t n = 0;
    std::lock_guard<std::mutex> lock(shards_mutex_);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        n += shard->events.size();
    }
    return n;
}

void
TraceSession::clear()
{
    std::lock_guard<std::mutex> lock(shards_mutex_);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        shard->events.clear();
    }
}

std::string
TraceSession::to_chrome_json() const
{
    JsonWriter w;
    w.begin_object().key("traceEvents").begin_array();
    for (const TraceEvent &ev : events()) {
        w.begin_object();
        w.key("name").value(ev.name);
        w.key("cat").value(ev.category);
        w.key("ph").value(std::string(1, ev.phase));
        w.key("ts").value(ev.ts_us);
        if (ev.phase == 'X') {
            w.key("dur").value(ev.dur_us);
        } else {
            w.key("id").value(static_cast<int64_t>(ev.flow_id));
            if (ev.phase == 'f')
                w.key("bp").value("e"); // bind the arrow to the
                                        // enclosing slice's end
        }
        w.key("pid").value(int64_t{1});
        w.key("tid").value(static_cast<int64_t>(ev.tid));
        w.end_object();
    }
    w.end_array();
    w.key("displayTimeUnit").value("ms");
    w.end_object();
    return w.str();
}

bool
TraceSession::write_chrome_json_file(const std::string &path) const
{
    std::ofstream f(path);
    if (!f) {
        warn("cannot open trace output file: " + path);
        return false;
    }
    f << to_chrome_json() << '\n';
    return static_cast<bool>(f);
}

} // namespace mps
