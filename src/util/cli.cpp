#include "mps/util/cli.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "mps/util/log.h"

namespace mps {

FlagParser::FlagParser(std::string description)
    : description_(std::move(description))
{
    add_bool("help", false, "print this help text and exit");
}

void
FlagParser::add_int(const std::string &name, int64_t def,
                    const std::string &help)
{
    Flag f;
    f.type = Type::kInt;
    f.help = help;
    f.int_val = def;
    flags_[name] = std::move(f);
}

void
FlagParser::add_double(const std::string &name, double def,
                       const std::string &help)
{
    Flag f;
    f.type = Type::kDouble;
    f.help = help;
    f.double_val = def;
    flags_[name] = std::move(f);
}

void
FlagParser::add_string(const std::string &name, const std::string &def,
                       const std::string &help)
{
    Flag f;
    f.type = Type::kString;
    f.help = help;
    f.string_val = def;
    flags_[name] = std::move(f);
}

void
FlagParser::add_bool(const std::string &name, bool def,
                     const std::string &help)
{
    Flag f;
    f.type = Type::kBool;
    f.help = help;
    f.bool_val = def;
    flags_[name] = std::move(f);
}

void
FlagParser::set_from_string(Flag &flag, const std::string &name,
                            const std::string &value)
{
    try {
        switch (flag.type) {
          case Type::kInt:
            flag.int_val = std::stoll(value);
            break;
          case Type::kDouble:
            flag.double_val = std::stod(value);
            break;
          case Type::kString:
            flag.string_val = value;
            break;
          case Type::kBool:
            if (value == "true" || value == "1") {
                flag.bool_val = true;
            } else if (value == "false" || value == "0") {
                flag.bool_val = false;
            } else {
                fatal("flag --" + name + ": bad bool value '" + value + "'");
            }
            break;
        }
    } catch (const std::exception &) {
        fatal("flag --" + name + ": bad value '" + value + "'");
    }
}

void
FlagParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name = body;
        std::string value;
        bool has_value = false;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            has_value = true;
        }
        auto it = flags_.find(name);
        if (it == flags_.end())
            fatal("unknown flag --" + name + "\n" + usage(argv[0]));
        Flag &flag = it->second;
        if (!has_value) {
            if (flag.type == Type::kBool) {
                flag.bool_val = true;
            } else if (i + 1 < argc) {
                value = argv[++i];
                set_from_string(flag, name, value);
            } else {
                fatal("flag --" + name + " expects a value");
            }
        } else {
            set_from_string(flag, name, value);
        }
    }
    if (get_bool("help")) {
        std::printf("%s", usage(argv[0]).c_str());
        std::exit(0);
    }
}

const FlagParser::Flag &
FlagParser::find(const std::string &name, Type type) const
{
    auto it = flags_.find(name);
    MPS_CHECK(it != flags_.end(), "flag not registered: ", name);
    MPS_CHECK(it->second.type == type, "flag type mismatch: ", name);
    return it->second;
}

int64_t
FlagParser::get_int(const std::string &name) const
{
    return find(name, Type::kInt).int_val;
}

double
FlagParser::get_double(const std::string &name) const
{
    return find(name, Type::kDouble).double_val;
}

const std::string &
FlagParser::get_string(const std::string &name) const
{
    return find(name, Type::kString).string_val;
}

bool
FlagParser::get_bool(const std::string &name) const
{
    return find(name, Type::kBool).bool_val;
}

std::string
FlagParser::usage(const std::string &prog) const
{
    std::ostringstream os;
    os << description_ << "\n\nusage: " << prog << " [flags]\n";
    for (const auto &[name, flag] : flags_) {
        os << "  --" << name;
        switch (flag.type) {
          case Type::kInt:
            os << "=<int>      (default " << flag.int_val << ")";
            break;
          case Type::kDouble:
            os << "=<float>    (default " << flag.double_val << ")";
            break;
          case Type::kString:
            os << "=<string>   (default '" << flag.string_val << "')";
            break;
          case Type::kBool:
            os << "             (default "
               << (flag.bool_val ? "true" : "false") << ")";
            break;
        }
        os << "\n      " << flag.help << "\n";
    }
    return os.str();
}

} // namespace mps
