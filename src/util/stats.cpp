#include "mps/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "mps/util/log.h"

namespace mps {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        MPS_CHECK(x > 0.0, "geomean requires positive inputs, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
coefficient_of_variation(const std::vector<double> &xs)
{
    double m = mean(xs);
    if (m == 0.0)
        return 0.0;
    return stddev(xs) / m;
}

double
percentile(std::vector<double> xs, double p)
{
    MPS_CHECK(!xs.empty(), "percentile of empty vector");
    MPS_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of range: ", p);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

PercentileSummary
summarize_percentiles(std::vector<double> xs)
{
    PercentileSummary s;
    if (xs.empty())
        return s;
    std::sort(xs.begin(), xs.end());
    s.count = static_cast<int64_t>(xs.size());
    s.mean = mean(xs);
    s.min = xs.front();
    s.max = xs.back();
    // percentile() on pre-sorted data; the extra sorts are cheap
    // relative to clarity, and exactness is covered by the tests.
    s.p50 = percentile(xs, 50.0);
    s.p95 = percentile(xs, 95.0);
    s.p99 = percentile(xs, 99.0);
    return s;
}

void
Log2Histogram::add(uint64_t value)
{
    ++total_;
    if (value == 0) {
        ++zeros_;
        return;
    }
    int k = 63 - __builtin_clzll(value);
    if (bins_.size() <= static_cast<size_t>(k))
        bins_.resize(static_cast<size_t>(k) + 1, 0);
    ++bins_[static_cast<size_t>(k)];
}

uint64_t
Log2Histogram::bin_count(int k) const
{
    if (k < 0 || static_cast<size_t>(k) >= bins_.size())
        return 0;
    return bins_[static_cast<size_t>(k)];
}

int
Log2Histogram::max_bin() const
{
    for (int k = static_cast<int>(bins_.size()) - 1; k >= 0; --k) {
        if (bins_[static_cast<size_t>(k)] != 0)
            return k;
    }
    return -1;
}

std::string
Log2Histogram::to_string() const
{
    std::ostringstream os;
    if (zeros_ != 0)
        os << "[0]        " << zeros_ << "\n";
    for (int k = 0; k <= max_bin(); ++k) {
        uint64_t lo = 1ULL << k;
        uint64_t hi = (1ULL << (k + 1)) - 1;
        os << "[" << lo << ", " << hi << "]  " << bin_count(k) << "\n";
    }
    return os.str();
}

} // namespace mps
