#include "mps/util/metrics.h"

#include <algorithm>
#include <fstream>
#include <unordered_map>

#include "mps/util/json.h"
#include "mps/util/log.h"

namespace mps {

namespace {

uint64_t
next_registry_id()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

/**
 * Per-thread lookup state. Each entry binds one registry (by its
 * never-reused id) to this thread's shard in it, plus a name -> cell
 * cache so steady-state increments bypass the shard mutex entirely.
 * Entries for destroyed registries simply never match again.
 */
struct MetricsTls
{
    struct Entry
    {
        uint64_t registry_id;
        MetricsRegistry::Shard *shard;
        std::unordered_map<std::string, MetricsRegistry::Cell *> cache;
    };

    std::vector<Entry> entries;

    static MetricsTls &
    instance()
    {
        thread_local MetricsTls tls;
        return tls;
    }
};

const char *
metric_kind_name(MetricKind kind)
{
    switch (kind) {
      case MetricKind::kCounter:   return "counter";
      case MetricKind::kGauge:     return "gauge";
      case MetricKind::kTimer:     return "timer";
      case MetricKind::kHistogram: return "histogram";
    }
    return "?";
}

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &
MetricsRegistry::global()
{
    // Intentionally leaked: worker threads (e.g. the global WorkStealPool)
    // may record metrics during static destruction.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

MetricsRegistry::Cell *
MetricsRegistry::cell(const std::string &name, MetricKind kind)
{
    MetricsTls &tls = MetricsTls::instance();
    MetricsTls::Entry *entry = nullptr;
    for (auto &e : tls.entries) {
        if (e.registry_id == id_) {
            entry = &e;
            break;
        }
    }
    if (entry == nullptr) {
        auto shard = std::make_unique<Shard>();
        Shard *raw = shard.get();
        {
            std::lock_guard<std::mutex> lock(shards_mutex_);
            shards_.push_back(std::move(shard));
        }
        tls.entries.push_back({id_, raw, {}});
        entry = &tls.entries.back();
    }

    auto it = entry->cache.find(name);
    if (it != entry->cache.end())
        return it->second;

    Cell *c;
    {
        std::lock_guard<std::mutex> lock(entry->shard->mutex);
        auto &slot = entry->shard->cells[name];
        if (!slot)
            slot = std::make_unique<Cell>(kind);
        c = slot.get();
    }
    MPS_CHECK(c->kind == kind, "metric '", name,
              "' used as both ", metric_kind_name(c->kind), " and ",
              metric_kind_name(kind));
    entry->cache.emplace(name, c);
    return c;
}

void
MetricsRegistry::counter_add(const std::string &name, int64_t delta)
{
    if (!enabled())
        return;
    cell(name, MetricKind::kCounter)
        ->count.fetch_add(delta, std::memory_order_relaxed);
}

void
MetricsRegistry::gauge_set(const std::string &name, double value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(gauges_mutex_);
    gauges_[name] = value;
}

void
MetricsRegistry::timer_record_ms(const std::string &name, double ms)
{
    if (!enabled())
        return;
    Cell *c = cell(name, MetricKind::kTimer);
    // Only this thread writes the cell; relaxed load/store suffices and
    // keeps the path wait-free. Readers may observe a sample's count
    // before its sum — fine for statistics.
    int64_t n = c->count.load(std::memory_order_relaxed);
    c->sum.store(c->sum.load(std::memory_order_relaxed) + ms,
                 std::memory_order_relaxed);
    if (n == 0) {
        c->min.store(ms, std::memory_order_relaxed);
        c->max.store(ms, std::memory_order_relaxed);
    } else {
        if (ms < c->min.load(std::memory_order_relaxed))
            c->min.store(ms, std::memory_order_relaxed);
        if (ms > c->max.load(std::memory_order_relaxed))
            c->max.store(ms, std::memory_order_relaxed);
    }
    c->count.store(n + 1, std::memory_order_relaxed);
}

void
MetricsRegistry::histogram_record(const std::string &name, double value)
{
    if (!enabled())
        return;
    cell(name, MetricKind::kHistogram)->hist->record(value);
}

std::vector<MetricSnapshot>
MetricsRegistry::snapshot() const
{
    std::map<std::string, MetricSnapshot> merged;
    std::map<std::string, HistogramSnapshot> hists;

    std::vector<Shard *> shards;
    {
        std::lock_guard<std::mutex> lock(shards_mutex_);
        shards.reserve(shards_.size());
        for (const auto &s : shards_)
            shards.push_back(s.get());
    }
    for (Shard *shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &[name, c] : shard->cells) {
            auto [it, inserted] = merged.try_emplace(name);
            MetricSnapshot &snap = it->second;
            if (inserted) {
                snap.name = name;
                snap.kind = c->kind;
            }
            if (c->kind == MetricKind::kHistogram) {
                // Buckets and moments merge on the read side; the
                // quantiles are extracted once, after all shards.
                c->hist->merge_into(hists[name]);
                continue;
            }
            int64_t n = c->count.load(std::memory_order_relaxed);
            double sum = c->sum.load(std::memory_order_relaxed);
            if (c->kind == MetricKind::kTimer && n > 0) {
                double lo = c->min.load(std::memory_order_relaxed);
                double hi = c->max.load(std::memory_order_relaxed);
                if (snap.count == 0) {
                    snap.min = lo;
                    snap.max = hi;
                } else {
                    snap.min = std::min(snap.min, lo);
                    snap.max = std::max(snap.max, hi);
                }
            }
            snap.count += n;
            snap.sum += sum;
        }
    }
    for (auto &[name, h] : hists) {
        MetricSnapshot &snap = merged[name];
        snap.count = h.count;
        snap.sum = h.sum;
        snap.min = h.min;
        snap.max = h.max;
        snap.p50 = h.quantile(0.50);
        snap.p90 = h.quantile(0.90);
        snap.p99 = h.quantile(0.99);
        snap.p999 = h.quantile(0.999);
        snap.buckets = std::move(h.buckets);
    }
    {
        std::lock_guard<std::mutex> lock(gauges_mutex_);
        for (const auto &[name, value] : gauges_) {
            MetricSnapshot snap;
            snap.name = name;
            snap.kind = MetricKind::kGauge;
            snap.count = 1;
            snap.sum = value;
            merged[name] = snap;
        }
    }

    std::vector<MetricSnapshot> out;
    out.reserve(merged.size());
    for (auto &[name, snap] : merged)
        out.push_back(std::move(snap));
    return out;
}

int64_t
MetricsRegistry::counter_value(const std::string &name) const
{
    for (const MetricSnapshot &s : snapshot()) {
        if (s.name == name && s.kind == MetricKind::kCounter)
            return s.count;
    }
    return 0;
}

double
MetricsRegistry::gauge_value(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(gauges_mutex_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

MetricSnapshot
MetricsRegistry::timer_value(const std::string &name) const
{
    for (const MetricSnapshot &s : snapshot()) {
        if (s.name == name && s.kind == MetricKind::kTimer)
            return s;
    }
    MetricSnapshot empty;
    empty.name = name;
    empty.kind = MetricKind::kTimer;
    return empty;
}

MetricSnapshot
MetricsRegistry::histogram_value(const std::string &name) const
{
    for (MetricSnapshot &s : snapshot()) {
        if (s.name == name && s.kind == MetricKind::kHistogram)
            return std::move(s);
    }
    MetricSnapshot empty;
    empty.name = name;
    empty.kind = MetricKind::kHistogram;
    return empty;
}

HistogramSnapshot
MetricsRegistry::histogram_snapshot(const std::string &name) const
{
    HistogramSnapshot merged;
    std::vector<Shard *> shards;
    {
        std::lock_guard<std::mutex> lock(shards_mutex_);
        shards.reserve(shards_.size());
        for (const auto &s : shards_)
            shards.push_back(s.get());
    }
    for (Shard *shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        auto it = shard->cells.find(name);
        if (it != shard->cells.end() &&
            it->second->kind == MetricKind::kHistogram)
            it->second->hist->merge_into(merged);
    }
    return merged;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(shards_mutex_);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        for (const auto &[name, c] : shard->cells) {
            (void)name;
            c->count.store(0, std::memory_order_relaxed);
            c->sum.store(0.0, std::memory_order_relaxed);
            c->min.store(0.0, std::memory_order_relaxed);
            c->max.store(0.0, std::memory_order_relaxed);
            if (c->hist)
                c->hist->reset();
        }
    }
    std::lock_guard<std::mutex> gauges_lock(gauges_mutex_);
    gauges_.clear();
}

void
MetricsRegistry::append_json_array(JsonWriter &w) const
{
    w.begin_array();
    for (const MetricSnapshot &s : snapshot()) {
        w.begin_object();
        w.key("name").value(s.name);
        w.key("kind").value(metric_kind_name(s.kind));
        switch (s.kind) {
          case MetricKind::kCounter:
            w.key("value").value(s.count);
            break;
          case MetricKind::kGauge:
            w.key("value").value(s.sum);
            break;
          case MetricKind::kTimer:
            w.key("count").value(s.count);
            w.key("total_ms").value(s.sum);
            w.key("mean_ms").value(s.mean());
            w.key("min_ms").value(s.min);
            w.key("max_ms").value(s.max);
            break;
          case MetricKind::kHistogram:
            w.key("count").value(s.count);
            w.key("sum").value(s.sum);
            w.key("mean").value(s.mean());
            w.key("min").value(s.min);
            w.key("max").value(s.max);
            w.key("p50").value(s.p50);
            w.key("p90").value(s.p90);
            w.key("p99").value(s.p99);
            w.key("p999").value(s.p999);
            break;
        }
        w.end_object();
    }
    w.end_array();
}

std::string
MetricsRegistry::to_json() const
{
    JsonWriter w;
    w.begin_object().key("metrics");
    append_json_array(w);
    w.end_object();
    return w.str();
}

std::string
MetricsRegistry::to_csv() const
{
    std::string out = "name,kind,count,sum,min,max,mean,p50,p90,p99,p999\n";
    char buf[256];
    for (const MetricSnapshot &s : snapshot()) {
        std::snprintf(buf, sizeof(buf),
                      ",%s,%lld,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n",
                      metric_kind_name(s.kind),
                      static_cast<long long>(s.count), s.sum, s.min,
                      s.max, s.mean(), s.p50, s.p90, s.p99, s.p999);
        // Metric names contain no commas/quotes by convention, but
        // escape defensively anyway.
        std::string name = s.name;
        if (name.find_first_of(",\"\n") != std::string::npos) {
            std::string quoted = "\"";
            for (char ch : name) {
                if (ch == '"')
                    quoted += '"';
                quoted += ch;
            }
            quoted += '"';
            name = quoted;
        }
        out += name;
        out += buf;
    }
    return out;
}

bool
MetricsRegistry::write_json_file(const std::string &path) const
{
    std::ofstream f(path);
    if (!f) {
        warn("cannot open metrics output file: " + path);
        return false;
    }
    f << to_json() << '\n';
    return static_cast<bool>(f);
}

} // namespace mps
