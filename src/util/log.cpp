#include "mps/util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mps {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char *
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo:  return "info";
      case LogLevel::kWarn:  return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kSilent: return "silent";
    }
    return "?";
}

} // namespace

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
log_level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
log_message(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(log_level()))
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[mps:%s] %s\n", level_tag(level), msg.c_str());
}

void
inform(const std::string &msg)
{
    log_message(LogLevel::kInfo, msg);
}

void
warn(const std::string &msg)
{
    log_message(LogLevel::kWarn, msg);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[mps:panic] %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "[mps:fatal] %s\n", msg.c_str());
    std::exit(1);
}

} // namespace mps
