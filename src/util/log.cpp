#include "mps/util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mps {

namespace {

/**
 * Initial level: the MPS_LOG_LEVEL environment variable when set to a
 * known name (debug|info|warn|error|silent, case-sensitive) or digit,
 * kInfo otherwise. set_log_level() overrides it at any time.
 */
LogLevel
level_from_env()
{
    const char *env = std::getenv("MPS_LOG_LEVEL");
    if (env == nullptr || env[0] == '\0')
        return LogLevel::kInfo;
    if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0)
        return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0)
        return LogLevel::kInfo;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "2") == 0)
        return LogLevel::kWarn;
    if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0)
        return LogLevel::kError;
    if (std::strcmp(env, "silent") == 0 || std::strcmp(env, "4") == 0)
        return LogLevel::kSilent;
    std::fprintf(stderr,
                 "[mps:warn] unknown MPS_LOG_LEVEL '%s' "
                 "(want debug|info|warn|error|silent); using info\n",
                 env);
    return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_mutex;

const char *
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo:  return "info";
      case LogLevel::kWarn:  return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kSilent: return "silent";
    }
    return "?";
}

/** Monotonic seconds since the first log call (process-lifetime-ish). */
double
monotonic_seconds()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point origin = Clock::now();
    return std::chrono::duration<double>(Clock::now() - origin).count();
}

} // namespace

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
log_level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
log_message(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(log_level()))
        return;
    double t = monotonic_seconds();
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[mps:%s +%.3fs] %s\n", level_tag(level), t,
                 msg.c_str());
}

void
inform(const std::string &msg)
{
    log_message(LogLevel::kInfo, msg);
}

void
warn(const std::string &msg)
{
    log_message(LogLevel::kWarn, msg);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[mps:panic +%.3fs] %s\n", monotonic_seconds(),
                 msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "[mps:fatal +%.3fs] %s\n", monotonic_seconds(),
                 msg.c_str());
    std::exit(1);
}

} // namespace mps
