#include "mps/core/policy.h"

#include <algorithm>

#include "mps/util/log.h"

namespace mps {

index_t
default_merge_path_cost(index_t dim)
{
    // Paper Figure 6: best-performing cost per dimension size.
    if (dim >= 128)
        return 50;
    if (dim >= 64)
        return 35;
    if (dim >= 32)
        return 30;
    if (dim >= 16)
        return 20;
    if (dim >= 4)
        return 15;
    return 50; // dim == 2: favor fewer warps over parallelism
}

LaunchConfig
make_launch_config(index_t rows, index_t nnz, index_t dim, index_t cost,
                   const SimdPolicy &policy)
{
    MPS_CHECK(dim >= 1, "dimension must be >= 1");
    MPS_CHECK(cost >= 1, "merge-path cost must be >= 1");
    MPS_CHECK(policy.lanes >= 1, "SIMD lanes must be >= 1");

    LaunchConfig cfg;
    cfg.cost = cost;
    int64_t total = static_cast<int64_t>(rows) + nnz;
    int64_t threads = (total + cost - 1) / cost;
    threads = std::max<int64_t>(threads, 1);
    if (policy.min_threads > 0 && threads < policy.min_threads)
        threads = policy.min_threads;
    cfg.num_threads = static_cast<index_t>(threads);

    if (dim >= policy.lanes) {
        cfg.threads_per_warp = 1;
        cfg.warps_per_thread = static_cast<int>(
            (dim + policy.lanes - 1) / policy.lanes);
    } else {
        cfg.threads_per_warp = std::max(1, policy.lanes / static_cast<int>(dim));
        cfg.warps_per_thread = 1;
    }
    int64_t warps = (threads + cfg.threads_per_warp - 1) /
                    cfg.threads_per_warp;
    cfg.num_warps = warps * cfg.warps_per_thread;
    return cfg;
}

LaunchConfig
make_default_launch_config(index_t rows, index_t nnz, index_t dim,
                           const SimdPolicy &policy)
{
    return make_launch_config(rows, nnz, dim,
                              default_merge_path_cost(dim), policy);
}

} // namespace mps
