#include "mps/core/precision.h"

#include <algorithm>

#include "mps/core/microkernel.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

namespace {

void
quantize_rows(DenseMatrix &m, StorageMode mode, index_t qcols,
              const RowKernels &rk, index_t r0, index_t r1)
{
    for (index_t r = r0; r < r1; ++r) {
        const value_t *src = m.row(r);
        if (mode == StorageMode::kBf16) {
            rk.encode_bf16(m.row_bf16_mut(r), src, qcols);
        } else {
            value_t scale, zero;
            int8_row_params(src, qcols, &scale, &zero);
            m.set_quant_params(r, scale, zero);
            rk.encode_int8(m.row_int8_mut(r), src, scale, zero, qcols);
        }
    }
}

} // namespace

void
quantize_dense(DenseMatrix &m, StorageMode mode, WorkStealPool *pool,
               index_t ncols)
{
    m.set_storage(mode, ncols);
    if (mode == StorageMode::kF32)
        return;
    const index_t qcols =
        ncols >= 0 ? std::min(ncols, m.cols()) : m.cols();
    const RowKernels &rk = select_row_kernels(qcols);
    if (pool == nullptr || m.rows() < 256) {
        quantize_rows(m, mode, qcols, rk, 0, m.rows());
        return;
    }
    pool->parallel_for_ranges(
        static_cast<uint64_t>(m.rows()),
        [&](uint64_t begin, uint64_t end) {
            quantize_rows(m, mode, qcols, rk,
                          static_cast<index_t>(begin),
                          static_cast<index_t>(end));
        },
        /*grain=*/64);
}

} // namespace mps
