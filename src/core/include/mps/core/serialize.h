/**
 * @file
 * Binary serialization for CSR matrices and merge-path schedules.
 *
 * The paper's offline setting computes the schedule once and reuses it
 * "as long as the sparse input matrix is not swapped out"; these
 * helpers extend reuse across process lifetimes: a service can persist
 * the graph and its tuned schedule and skip both graph parsing and
 * scheduling at startup. Fixed little-endian layout with magic +
 * version headers; fatal() on malformed input.
 */
#ifndef MPS_CORE_SERIALIZE_H
#define MPS_CORE_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "mps/core/schedule.h"
#include "mps/sparse/csr_matrix.h"

namespace mps {

/** Write @p m in the binary CSR container format. */
void write_csr_binary(std::ostream &out, const CsrMatrix &m);

/** Read a binary CSR container; fatal() on format errors. */
CsrMatrix read_csr_binary(std::istream &in);

/** File-path convenience wrappers. */
void write_csr_binary_file(const std::string &path, const CsrMatrix &m);
CsrMatrix read_csr_binary_file(const std::string &path);

/** Write @p sched in the binary schedule format. */
void write_schedule_binary(std::ostream &out,
                           const MergePathSchedule &sched);

/**
 * Read a binary schedule. Call sched.validate(a) afterwards to confirm
 * it belongs to the matrix at hand.
 */
MergePathSchedule read_schedule_binary(std::istream &in);

} // namespace mps

#endif // MPS_CORE_SERIALIZE_H
