/**
 * @file
 * The MergePath-SpMM schedule: per-thread merge-path coordinates plus the
 * partial/complete row tracking that is the paper's core contribution
 * (Section III-B). Rows split across threads are committed with one
 * atomic vector update per contributing thread; rows fully owned by a
 * single thread are written with plain stores.
 */
#ifndef MPS_CORE_SCHEDULE_H
#define MPS_CORE_SCHEDULE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mps/core/merge_path.h"
#include "mps/sparse/csr_matrix.h"

namespace mps {

/**
 * One thread's share of the merge path, [start, end) in merge items.
 * start.row / start.nz and end.row / end.nz correspond to Algorithm 2's
 * (start_row, start_nz) and (end_row, end_nz); partialness is derived
 * from the coordinates instead of the paper's 0-sentinel so that nnz
 * id 0 needs no special casing.
 */
struct ThreadWork
{
    MergeCoordinate start;
    MergeCoordinate end;

    /** Thread has no merge items at all. */
    bool empty() const {
        return start.row == end.row && start.nz == end.nz;
    }
};

/**
 * Per-thread classification of the work in a ThreadWork, resolved
 * against the matrix's row pointers. This is what both the portable
 * kernels and the GPU warp-program generators execute.
 */
struct ResolvedWork
{
    /** Head contribution: row @p head_row, nnz [head_begin, head_end). */
    index_t head_row = 0;
    index_t head_begin = 0;
    index_t head_end = 0;
    /** True when the head contribution must be committed atomically. */
    bool head_atomic = false;

    /** Fully-owned rows [first_complete_row, last_complete_row). */
    index_t first_complete_row = 0;
    index_t last_complete_row = 0;

    /** Tail contribution: row @p tail_row, nnz [tail_begin, tail_end). */
    index_t tail_row = 0;
    index_t tail_begin = 0;
    index_t tail_end = 0;
    bool tail_atomic = false;

    bool has_head() const { return head_end > head_begin; }
    bool has_tail() const { return tail_end > tail_begin; }
};

/** Aggregate write-type statistics for Figure 5. */
struct ScheduleCensus
{
    /** Threads with zero merge items. */
    int64_t empty_threads = 0;
    /** One-atomic-vector-commit events (partial row contributions). */
    int64_t atomic_commits = 0;
    /** Plain (non-atomic) full-row writes. */
    int64_t plain_row_writes = 0;
    /** Distinct rows written by more than one thread. */
    int64_t split_rows = 0;
    /** Non-zeros processed under an atomic commit. */
    int64_t atomic_nnz = 0;
    /** Non-zeros processed under plain row writes. */
    int64_t plain_nnz = 0;
    /** Largest number of non-zeros assigned to any single thread. */
    int64_t max_nnz_per_thread = 0;
    /** Largest number of merge items assigned to any single thread. */
    int64_t max_items_per_thread = 0;

    /** Fraction of output-write events that are atomic. */
    double atomic_write_fraction() const {
        int64_t total = atomic_commits + plain_row_writes;
        return total == 0 ? 0.0
                          : static_cast<double>(atomic_commits) / total;
    }
};

/**
 * Census of a contiguous thread range, mergeable with an adjacent
 * range's part. split_rows is the count of DISTINCT atomic rows inside
 * the range (atomic rows are non-decreasing in thread order, so the
 * range-local count needs no sorting); the first/last atomic rows let
 * merge_census() subtract the seam row counted by both sides. This is
 * what makes the census range-decomposable: after an incremental
 * schedule repair, only the dirty thread range is re-counted and merged
 * with the cached clean-prefix part.
 */
struct ScheduleCensusPart
{
    ScheduleCensus counts;
    index_t first_atomic_row = -1; ///< -1: no atomic commit in range
    index_t last_atomic_row = -1;

    /** Combine with the part of the thread range directly after. */
    ScheduleCensusPart merged(const ScheduleCensusPart &right) const;
};

/**
 * Load-balanced assignment of a CSR matrix's rows + non-zeros to a fixed
 * number of threads via the merge-path decomposition. Building a
 * schedule costs one O(log) diagonal search per thread and nothing else:
 * no preprocessing, reordering, or CSR format extension.
 */
class MergePathSchedule
{
  public:
    /** Build for an explicit thread count (>= 1). */
    static MergePathSchedule build(const CsrMatrix &a, index_t num_threads);

    /**
     * Build from a target merge-path cost (items per thread). The thread
     * count is ceil((rows + nnz) / cost), raised to @p min_threads when
     * the computed count is lower (Section III-C's small-graph rule; the
     * cost is implicitly reduced). Pass min_threads = 0 to disable.
     */
    static MergePathSchedule build_with_cost(const CsrMatrix &a,
                                             index_t cost,
                                             index_t min_threads = 0);

    /**
     * Reassemble a schedule from stored parts (deserialization). The
     * caller should validate() against the matrix it was built for.
     */
    static MergePathSchedule from_parts(std::vector<ThreadWork> work,
                                        int64_t items_per_thread);

    index_t num_threads() const {
        return static_cast<index_t>(work_.size());
    }

    /** Merge items per thread the construction actually used. */
    int64_t items_per_thread() const { return items_per_thread_; }

    const std::vector<ThreadWork> &work() const { return work_; }

    const ThreadWork &work(index_t thread) const {
        return work_[static_cast<size_t>(thread)];
    }

    /**
     * Resolve thread @p t's coordinates into head/complete/tail ranges
     * with atomicity decisions, per Algorithm 2.
     */
    ResolvedWork resolve(index_t t, const CsrMatrix &a) const;

    /** Compute Figure-5-style write statistics for this schedule. */
    ScheduleCensus census(const CsrMatrix &a) const;

    /**
     * Census restricted to threads [t_begin, t_end). Parts of adjacent
     * ranges combine exactly via ScheduleCensusPart::merged(), so a
     * repair re-censuses only the dirty thread range.
     */
    ScheduleCensusPart census_part(const CsrMatrix &a, index_t t_begin,
                                   index_t t_end) const;

    /**
     * Panics unless the schedule is a partition: thread ranges are
     * contiguous, cover [0, rows + nnz) exactly, and every thread holds
     * at most items_per_thread() merge items.
     */
    void validate(const CsrMatrix &a) const;

  private:
    std::vector<ThreadWork> work_;
    int64_t items_per_thread_ = 0;
};

/**
 * Result of repair_schedule(): the repaired (or rebuilt) schedule plus
 * the thread range whose boundaries changed, so census and other
 * per-thread caches can be refreshed incrementally.
 */
struct ScheduleRepair
{
    MergePathSchedule schedule;
    /** Threads [dirty_begin, dirty_end) have new boundaries. */
    index_t dirty_begin = 0;
    index_t dirty_end = 0;
    /** True when imbalance (or a leading dirty row) forced a rebuild. */
    bool rebuilt = false;
};

/**
 * Incrementally repair a schedule after a structural edge delta.
 *
 * @p old_sched was built for @p old_a; @p new_a agrees with @p old_a on
 * every row before @p first_dirty_row (identical row_ptr prefix through
 * that index, same rows()). Boundaries at diagonals <= first_dirty_row
 * + row_ptr[first_dirty_row] lie on the unchanged merge-path prefix and
 * are kept verbatim; the remaining boundaries are re-placed evenly over
 * the dirty suffix with windowed diagonal searches — O(threads · log
 * nnz) instead of a full rebuild's O(threads · log nnz) over the whole
 * matrix PLUS the schedule-wide re-census, which is where the real
 * rebuild cost lives. Falls back to a full build (rebuilt = true) when
 * the delta starts at row 0 or the kept prefix would leave the suffix
 * threads more than 2x over the balanced cost.
 *
 * Emits schedule.repairs / schedule.repair_ns (and
 * schedule.repair_rebuilds on fallback).
 */
ScheduleRepair repair_schedule(const MergePathSchedule &old_sched,
                               const CsrMatrix &old_a,
                               const CsrMatrix &new_a,
                               index_t first_dirty_row);

} // namespace mps

#endif // MPS_CORE_SCHEDULE_H
