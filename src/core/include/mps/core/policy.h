/**
 * @file
 * Thread-count and SIMD-mapping policy (Section III-C of the paper).
 *
 * The merge-path cost trades parallelism (more threads) against
 * synchronization (more partial rows -> more atomic commits). The best
 * cost depends on the dense dimension size d because d determines how
 * threads map onto SIMD units:
 *   - d == lanes: one thread per warp;
 *   - d >  lanes: each thread is replicated across ceil(d/lanes) warps;
 *   - d <  lanes: floor(lanes/d) threads are packed into one warp.
 * The default costs below are the paper's empirically tuned values
 * (Figure 6), re-validated by bench/fig06_cost_sweep on our model.
 */
#ifndef MPS_CORE_POLICY_H
#define MPS_CORE_POLICY_H

#include "mps/sparse/types.h"

namespace mps {

/** SIMD/warp shape of the execution substrate. */
struct SimdPolicy
{
    /** SIMD lanes per warp (32 on the paper's NVidia GPU). */
    int lanes = 32;
    /** Minimum thread count for small graphs (Sec. III-C threshold). */
    index_t min_threads = 1024;
};

/** Result of the launch-configuration policy. */
struct LaunchConfig
{
    /** Merge-path cost (merge items per logical thread). */
    index_t cost = 1;
    /** Logical merge-path threads. */
    index_t num_threads = 1;
    /** Logical threads packed into one warp (d < lanes), else 1. */
    int threads_per_warp = 1;
    /** Warps a logical thread is replicated over (d > lanes), else 1. */
    int warps_per_thread = 1;
    /** Total warps launched on the SIMT substrate. */
    int64_t num_warps = 1;
};

/**
 * The paper's tuned default merge-path cost for dense dimension @p dim
 * (Figure 6): {2:50, 4:15, 8:15, 16:20, 32:30, 64:35, 128:50}. Other
 * dimensions use the nearest tuned size below (minimum 15).
 */
index_t default_merge_path_cost(index_t dim);

/**
 * Compute the launch configuration for a (rows, nnz) matrix at dense
 * dimension @p dim with merge-path cost @p cost, applying the SIMD
 * mapping rules and the minimum-thread floor of @p policy.
 */
LaunchConfig make_launch_config(index_t rows, index_t nnz, index_t dim,
                                index_t cost, const SimdPolicy &policy);

/** make_launch_config with the tuned default cost for @p dim. */
LaunchConfig make_default_launch_config(index_t rows, index_t nnz,
                                        index_t dim,
                                        const SimdPolicy &policy);

} // namespace mps

#endif // MPS_CORE_POLICY_H
