/**
 * @file
 * Fused panel-streaming layer execution: C = act(A * (X * W)) without
 * ever materializing the full `XW` temporary.
 *
 * The unfused GCN layer pays a complete n x d round trip to DRAM per
 * layer: a tall GEMM writes XW, then the SpMM gathers it all back
 * through CSR column indices (fig_locality shows that gather is the
 * bandwidth ceiling). The fused pipeline instead produces XW
 * panel-by-panel (TILE_D-wide, auto_fused_tile_d) into a shared
 * hot-in-cache panel buffer and feeds each panel straight into the
 * merge-path traversal, reusing ONE MergePathSchedule across panels
 * exactly like the locality layer's sweep loop. The activation (and
 * any bias) folds into the commit microkernel sweep: plain commits own
 * their whole row, so the epilogue fires the moment the row is final;
 * split (atomically committed) rows are finished in one pass over the
 * precomputed shared-row list after each panel's barrier.
 *
 * Two execution modes:
 *  - run():            materialize the layer output C (the common case);
 *  - run_streaming():  hand each finalized OUTPUT panel to a consumer
 *                      while still cache-resident. The multi-layer
 *                      pipeline goes one granularity finer: its
 *                      commit epilogue (RankUpdateEpilogue in the gcn
 *                      library) rank-updates layer L+1's XW from each
 *                      ROW the moment the sweep finalizes it — H_L is
 *                      never materialized and the output panel is
 *                      never even re-read; the consumer callback only
 *                      advances the panel's weight-row origin.
 *
 * `MPS_FUSE=0` disables the fused routing at every call site and
 * restores the exact pre-fusion execution (see fusion_enabled()).
 * With a 1-thread schedule and panel widths that are multiples of 16,
 * the fused output is bit-identical to the unfused path; multi-thread
 * schedules differ only by the usual atomic-commit ordering.
 */
#ifndef MPS_CORE_FUSION_H
#define MPS_CORE_FUSION_H

#include <functional>
#include <memory>
#include <vector>

#include "mps/core/locality.h"
#include "mps/core/schedule.h"
#include "mps/core/spmm.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class HybridSchedule;
class WorkStealPool;

/**
 * The cached MPS_FUSE parse: false for "0"/"off"/"false"/"no", true
 * otherwise (fusion is on by default). Call sites that grew a fused
 * branch keep the unfused one selectable through this gate.
 */
bool fusion_enabled();

/**
 * Where a panel's B operand actually lives: a source callback either
 * fills the plan's panel buffer (and points b at it with col_begin 0)
 * or returns a zero-copy view into an existing matrix (b = &xw,
 * col_begin = col0). The sweep gathers b->row(k) + col_begin.
 */
struct PanelSource
{
    const DenseMatrix *b = nullptr;
    index_t col_begin = 0;
    /**
     * Non-const alias of the operand when the source permits the plan
     * to quantize it in place (see FusedLayerPlan::set_precision).
     * nullptr = read-only source, the sweep gathers f32 regardless of
     * the plan's precision. The f32 master rows stay valid either way
     * — quantization fills shadow buffers, it never destroys the f32
     * data (delta-correction and epilogues keep reading them).
     */
    DenseMatrix *quantizable = nullptr;
    /**
     * True when the operand buffer was freshly (re)written for THIS
     * panel (a GEMM-backed source). The plan then re-encodes the shadow
     * buffers every panel, restricted to the panel's columns so stale
     * trailing columns cannot pollute int8 per-row ranges. False for
     * slice sources, which are encoded once, full-width.
     */
    bool fresh = false;
};

/**
 * Produce the B operand for output columns [col0, col0 + width).
 * A GEMM-backed source fills its own reusable buffer (allocated once,
 * at the width of the first — widest — panel) and returns {&buf, 0};
 * a slice source returns a zero-copy view {&xw, col0} into an
 * already-materialized matrix. The source owning the buffer keeps the
 * plan from allocating an n x tile buffer that a slice source would
 * never touch.
 */
using PanelSourceFn =
    std::function<PanelSource(index_t col0, index_t width)>;

/**
 * Streaming-mode consumer: receives the finalized output panel for
 * columns [col0, col0 + width) (epilogue already applied) while it is
 * still cache-resident. The panel's data lives in columns [0, width)
 * of @p out_panel and is overwritten by the next panel.
 */
using PanelConsumerFn = std::function<void(
    index_t col0, index_t width, const DenseMatrix &out_panel)>;

/**
 * Post-sweep hook of run(): called after each panel's sweep and
 * shared-row epilogue, with the panel's B source still valid. The
 * serve path uses it for the dynamic-graph correction pass (which must
 * see the panel operand before the buffer is rewritten) followed by
 * the panel's activation.
 */
using PanelPostSweepFn = std::function<void(
    index_t col0, index_t width, const PanelSource &src)>;

/**
 * One prepared fused execution: sparse matrix + output dimension +
 * shared schedule + locality (fused tile width, prefetch, optional
 * reorder scatter) + the precomputed list of split rows that need the
 * epilogue applied out-of-band. Build once per (matrix, dim), run per
 * layer call; panel buffers are lazily allocated and reused across
 * runs. The plan borrows @p a, the schedule and any scatter array —
 * it must not outlive them.
 */
class FusedLayerPlan
{
  public:
    FusedLayerPlan(const CsrMatrix &a, index_t dim,
                   std::shared_ptr<const MergePathSchedule> sched,
                   SpmmLocality loc);

    /**
     * Hybrid-dispatch plan: every panel sweep routes through
     * hybrid_spmm_panel() (dense-band row-GEMM + merge-path tail, see
     * mps/core/hybrid.h) instead of the plain merge path. The shared
     * (out-of-band epilogue) rows are the tail schedule's atomically
     * committed rows mapped back to base row ids; dense-band rows are
     * always epilogued inline since exactly one executor owns them.
     */
    FusedLayerPlan(const CsrMatrix &a, index_t dim,
                   std::shared_ptr<const HybridSchedule> hybrid,
                   SpmmLocality loc);

    index_t dim() const { return dim_; }
    /**
     * Resolved STREAMING panel width (== dim when running one
     * full-width panel): the width run_streaming() hands to its
     * consumer, sized so source and output panels stay cache-hot.
     */
    index_t tile() const { return tile_; }
    /**
     * Resolved run() panel width. Equal to tile() except when the
     * width was auto-derived and the whole n x dim operand fits the
     * LLC: a resident temporary leaves nothing for narrow panels to
     * save, and each extra panel re-pays the merge traversal plus
     * strided column stores into the wide output — run() then executes
     * one full-width panel. Explicit (MPS_TILE_D or caller-pinned)
     * widths are honored in both modes.
     */
    index_t run_tile() const { return run_tile_; }
    const CsrMatrix &matrix() const { return *a_; }
    /** Merge-path schedule; only valid when !uses_hybrid(). */
    const MergePathSchedule &schedule() const { return *sched_; }
    /** True when panels route through hybrid_spmm_panel(). */
    bool uses_hybrid() const { return hybrid_ != nullptr; }
    /** Hybrid schedule (nullptr unless uses_hybrid()). */
    const HybridSchedule *hybrid() const { return hybrid_.get(); }
    const SpmmLocality &locality() const { return loc_; }

    /**
     * Operand storage precision of the panel sweeps. kF32 (the default)
     * is the exact pre-existing execution. kBf16/kInt8 make the plan
     * encode each panel operand's shadow buffer (when the source marks
     * it quantizable) before the sweep, so the gather loop reads 2 or 1
     * bytes per element instead of 4; accumulation and the commit
     * protocol stay fp32. Re-derives the panel widths: quantized
     * operands fit more columns per cache level.
     */
    void set_precision(StorageMode p) {
        if (p == precision_)
            return;
        precision_ = p;
        derive_tiles();
    }
    StorageMode precision() const { return precision_; }
    /** Traversal rows committed atomically (split across threads). */
    const std::vector<index_t> &shared_rows() const {
        return shared_rows_;
    }

    /**
     * Plan-owned scratch for a GEMM-backed panel source (see the
     * gemm_panel_source overload taking a buffer). Sized by the source
     * on first use and reused across panels AND across run() calls, so
     * a kernel that caches its plan (MergePathSpmm::fused_plan) pays
     * the n x tile allocation once per prepared layer, not per
     * forward.
     */
    DenseMatrix &gemm_scratch() { return gemm_scratch_; }

    /**
     * Materialize C = epi(A * B) where B arrives panel-by-panel from
     * @p source. C is zero-filled first (commits add). @p epi (if any)
     * is applied exactly once to every output row of every panel: at
     * plain commits inline, to shared rows in a pass after the panel
     * barrier. @p post_sweep (if any) runs after that, per panel.
     */
    void run(const PanelSourceFn &source, DenseMatrix &c,
             WorkStealPool &pool, PanelEpilogue epi = nullptr,
             const void *epi_ctx = nullptr,
             const PanelPostSweepFn &post_sweep = {});

    /**
     * Streaming mode: compute each output panel into an internal
     * buffer and hand it to @p consume while hot. The epilogue sees
     * panel-local column 0 (the buffer's origin), not the global col0;
     * epilogues that need the global column take it via @p consume or
     * their ctx. No full-size output is ever allocated.
     */
    void run_streaming(const PanelSourceFn &source,
                       const PanelConsumerFn &consume, WorkStealPool &pool,
                       PanelEpilogue epi = nullptr,
                       const void *epi_ctx = nullptr);

  private:
    void derive_tiles();
    void quantize_source(const PanelSource &src, index_t width,
                         WorkStealPool &pool);
    void sweep_panel(const PanelSource &src, DenseMatrix &c,
                     index_t c_col0, index_t width, WorkStealPool &pool,
                     const SpmmLocality &loc, PanelEpilogue epi,
                     const void *epi_ctx, bool count_census);
    void apply_shared_epilogue(DenseMatrix &c, index_t c_col0,
                               index_t width, PanelEpilogue epi,
                               const void *epi_ctx);

    const CsrMatrix *a_;
    index_t dim_;
    index_t tile_;     ///< streaming panel width
    index_t run_tile_; ///< run() panel width (see run_tile())
    std::shared_ptr<const MergePathSchedule> sched_;
    std::shared_ptr<const HybridSchedule> hybrid_;
    SpmmLocality loc_;     ///< streaming-mode locality
    SpmmLocality run_loc_; ///< run()-mode locality (re-derived prefetch)
    StorageMode precision_ = StorageMode::kF32;
    std::vector<index_t> shared_rows_;
    DenseMatrix out_panel_; ///< streaming output buffer (a.rows() x tile)
    DenseMatrix gemm_scratch_; ///< panel-source buffer (see gemm_scratch())
};

/**
 * Wrap a schedule the caller owns (a kernel member, a cache entry kept
 * alive elsewhere) in the shared_ptr the plan wants, without taking
 * ownership. The caller guarantees the schedule outlives the plan.
 */
inline std::shared_ptr<const MergePathSchedule>
borrow_schedule(const MergePathSchedule &sched)
{
    return std::shared_ptr<const MergePathSchedule>(&sched,
                                                    [](const auto *) {});
}

/** borrow_schedule() analog for a caller-owned hybrid schedule. */
inline std::shared_ptr<const HybridSchedule>
borrow_hybrid_schedule(const HybridSchedule &hs)
{
    return std::shared_ptr<const HybridSchedule>(&hs,
                                                 [](const auto *) {});
}

} // namespace mps

#endif // MPS_CORE_FUSION_H
