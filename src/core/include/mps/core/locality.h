/**
 * @file
 * Cache-locality layer under the merge-path decomposition.
 *
 * The SpMM hot loop gathers one full d-wide row of the dense operand B
 * per non-zero through CSR column indices. Once the dense operand
 * (n_cols x d x 4B) outgrows L2, every gather misses: the traversal is
 * bound by irregular loads, not by balance (which the schedule solved)
 * or by arithmetic (which the microkernels solved). This header is the
 * CPU transplant of the GPU locality techniques of Accel-GCN
 * (column-dimension tiling into shared memory, workload remapping) and
 * GE-SpMM (coalesced row reuse):
 *
 *  - column tiling: run the merge-path traversal once per TILE_D-wide
 *    panel of B/C so the gathered rows' working set stays L2-resident.
 *    The schedule is reused across panels — one diagonal search,
 *    d/TILE_D sweeps (MPS_TILE_D: auto from detected L2, integer
 *    override, "inf"/"off" disables);
 *  - software prefetch: issue prefetches for the B rows of upcoming
 *    non-zeros inside the traversal loop, hiding the gather latency the
 *    tiling cannot (MPS_PREFETCH: distance in non-zeros, 0 disables,
 *    unset auto-derives from d);
 *  - reorder-aware execution (MPS_REORDER + ReorderPlan in
 *    mps/sparse/reorder.h): traverse a row-permuted matrix and scatter
 *    output rows through the inverse permutation at commit time.
 *
 * All knobs are observable through locality.* metrics: tile width and
 * sweep count, prefetch distance, permutation-plan cache hits/misses.
 */
#ifndef MPS_CORE_LOCALITY_H
#define MPS_CORE_LOCALITY_H

#include "mps/sparse/types.h"

namespace mps {

/**
 * Per-call locality options of one merge-path SpMM execution. The
 * default-constructed value means "exactly the pre-locality behavior":
 * one full-width sweep, no prefetch, identity row mapping.
 */
struct SpmmLocality
{
    /**
     * Column-panel width in elements; <= 0 or >= d runs one full-width
     * sweep. Callers normally take the resolved value from
     * default_spmm_locality().
     */
    index_t tile_d = 0;

    /**
     * Prefetch distance in non-zeros ahead of the traversal; <= 0
     * disables.
     */
    index_t prefetch = 0;

    /**
     * Output-row scatter map of length a.rows(): the thread that
     * finishes traversal row r commits to c.row(row_scatter[r]).
     * nullptr = identity. Used by reorder-aware execution, where the
     * traversal runs on a row-permuted matrix and row_scatter is the
     * inverse permutation (new id -> old id).
     */
    const index_t *row_scatter = nullptr;

    /**
     * True when tile_d came from the auto tuner rather than an
     * explicit MPS_TILE_D override or a caller-pinned width. Executors
     * with several dataflow modes (FusedLayerPlan) may then re-derive
     * the width per mode; an explicit width is always honored as-is.
     */
    bool auto_width = false;

    /** True when the panel loop will run more than one sweep. */
    bool tiled(index_t dim) const {
        return tile_d > 0 && tile_d < dim;
    }
};

/**
 * Detected per-core L2 capacity in bytes (sysconf / sysfs, cached;
 * falls back to 1 MiB when the platform exposes nothing).
 */
int64_t detected_l2_bytes();

/**
 * Detected last-level (outermost) cache capacity in bytes: the L3 when
 * the platform reports one, otherwise the L2. The auto tile width
 * budgets panel residency against this level — on big-L3 parts an
 * operand that merely exceeds L2 is still fully cache-resident and
 * tiling would only add sweep overhead.
 */
int64_t detected_llc_bytes();

/**
 * Resolved MPS_TILE_D policy: kAuto sizes panels from detected_l2_bytes,
 * kDisabled always runs full-width, kExplicit uses the given width.
 */
enum class TilePolicy { kAuto, kDisabled, kExplicit };

/** Process-wide locality environment (parsed once from env vars). */
struct LocalityEnv
{
    TilePolicy tile_policy = TilePolicy::kAuto;
    index_t tile_d = 0;      ///< explicit width when kExplicit
    bool prefetch_auto = true;
    index_t prefetch = 0;    ///< explicit distance when !prefetch_auto
};

/** The cached MPS_TILE_D / MPS_PREFETCH parse. */
const LocalityEnv &locality_env();

/**
 * Auto panel width for dense dimension @p dim, a multiple of 16 in
 * [32, 256]. Tiles only in the full-residency regime: the widest panel
 * such that a slice of EVERY operand row fits in half a trustworthy
 * cache (the LLC, capped at 64 MiB — huge virtualized L3s measure
 * DRAM-like for single-core gathers) — DRAM is then touched only on a
 * row's first gather per sweep. Returns @p dim (no tiling) when the
 * whole operand already fits in the LLC, when the operand has too many
 * rows for full residency at any useful width (the streaming regime,
 * where sweeps cost and prefetch is the right tool), or when dim is
 * not larger than the computed width.
 *
 * @p elem_bytes is the stored width of one operand element (see
 * storage_elem_bytes in mps/sparse/quant.h): quantized operands fit
 * more columns per cache and tile proportionally wider. The default
 * (sizeof(value_t)) keeps every existing f32 call site bit-identical.
 */
index_t auto_tile_d(index_t n_cols, index_t dim,
                    index_t elem_bytes = sizeof(value_t));

/**
 * Auto prefetch distance for dense dimension @p dim: roughly one
 * 4 KiB page of gathered data ahead,
 * clamp(4096 / (dim * elem_bytes), 2, 8) — for f32 this is the
 * historical clamp(1024 / dim, 2, 8). Narrow storage packs more
 * elements per page, so the lookahead grows.
 */
index_t auto_prefetch_distance(index_t dim,
                               index_t elem_bytes = sizeof(value_t));

/**
 * Auto panel width for the FUSED pipeline (mps/core/fusion.h), where
 * the panel is not a window onto a pre-materialized operand but the
 * operand itself: the GEMM stage writes each n_rows x width panel
 * immediately before the SpMM sweep gathers from it. Unlike
 * auto_tile_d this never bails to full width in the streaming regime —
 * a full-width panel would BE the materialized `XW` the fused path
 * exists to avoid — so the width floors at 32 (clamped to [32, 256],
 * multiple of 16, capped at dim). Narrower-than-resident panels still
 * win here: the gather reads just-written lines instead of a cold
 * n x d temporary. This is the STREAMING width; FusedLayerPlan::run()
 * into a full-width output widens it when the whole temporary is
 * LLC-resident (see fusion.h).
 */
index_t auto_fused_tile_d(index_t n_rows, index_t dim,
                          index_t elem_bytes = sizeof(value_t));

/**
 * Resolve locality options for a fused panel-streaming execution over
 * an @p n_rows-row panel buffer at output dimension @p dim. Honors an
 * explicit MPS_TILE_D width (kDisabled runs one full-width panel —
 * useful for A/B measurement, it degenerates to the unfused dataflow
 * plus a copy); kAuto uses auto_fused_tile_d. Publishes the
 * fusion.tile_d gauge when metrics are enabled.
 */
SpmmLocality default_fused_locality(index_t n_rows, index_t dim,
                                    index_t elem_bytes = sizeof(value_t));

/**
 * Resolve the process-default locality options for a SpMM gathering
 * from an n_cols-row dense operand at dimension @p dim, honoring the
 * MPS_TILE_D / MPS_PREFETCH overrides. row_scatter is left nullptr —
 * reordering is opt-in per kernel, not ambient. Publishes the
 * locality.tile_d / locality.prefetch_distance gauges when metrics
 * are enabled.
 */
SpmmLocality default_spmm_locality(index_t n_cols, index_t dim,
                                   index_t elem_bytes = sizeof(value_t));

/** Prefetch @p addr into all cache levels for reading (no-op if unsupported). */
inline void
locality_prefetch(const void *addr)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
    (void)addr;
#endif
}

} // namespace mps

#endif // MPS_CORE_LOCALITY_H
