/**
 * @file
 * Process-wide reuse of merge-path schedules.
 *
 * Building a MergePathSchedule costs one O(log) diagonal search per
 * thread — cheap, but a serving system pays it on every SpMM of every
 * layer of every request against the *same* adjacency matrix. The cache
 * keys schedules on (graph fingerprint, thread count, merge-path cost)
 * so each combination is built exactly once and shared read-only across
 * layers, epochs and concurrent requests (a schedule is immutable after
 * construction, so sharing needs no further synchronization).
 *
 * Dynamic graphs: when a DeltaCsr compaction swaps the base matrix,
 * repair_for_update() migrates every entry of the old fingerprint to
 * the new one through repair_schedule() — O(threads · log nnz) per
 * entry instead of a rebuild — bumping the entry's plan version and
 * refreshing its write census only over the dirty thread range
 * (censuses are cached in fixed-size thread chunks, and only chunks
 * intersecting the repair's dirty range are recomputed). Since plan
 * versioning under churn multiplies entries, the cache holds at most
 * MPS_SCHEDULE_CACHE_MAX schedules (default 256) and evicts the least
 * recently used entry past that, counting schedule_cache.evictions.
 *
 * Consumers: the serve subsystem (one cache per Server, or an external
 * one shared across a benchmark sweep), GcnModel / GcnTrainer (via
 * ScheduleCache::global()), and MergePathSpmm::set_schedule_cache().
 */
#ifndef MPS_CORE_SCHEDULE_CACHE_H
#define MPS_CORE_SCHEDULE_CACHE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "mps/core/schedule.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/reorder.h"

namespace mps {

class HybridSchedule;

/**
 * Cheap structural fingerprint of a CSR matrix: mixes shape, nnz and a
 * bounded sample of row offsets / column indices. Two matrices with the
 * same fingerprint are treated as the same graph for schedule reuse;
 * schedules only depend on (row_ptr, nnz), so a rare collision between
 * same-shape matrices still yields a *valid* schedule, merely one built
 * for the colliding twin.
 */
uint64_t csr_fingerprint(const CsrMatrix &a);

/** Entry cap from MPS_SCHEDULE_CACHE_MAX (default 256, min 1). */
size_t default_schedule_cache_max();

/** Keyed store of immutable merge-path schedules. Thread-safe. */
class ScheduleCache
{
  public:
    ScheduleCache() = default;

    ScheduleCache(const ScheduleCache &) = delete;
    ScheduleCache &operator=(const ScheduleCache &) = delete;

    /** Process-wide cache (never destroyed; safe during shutdown). */
    static ScheduleCache &global();

    /**
     * Schedule for @p a at an explicit thread count; built on first use
     * (key cost = the items_per_thread the build derives).
     */
    std::shared_ptr<const MergePathSchedule>
    get_or_build(const CsrMatrix &a, index_t num_threads);

    /**
     * Schedule for @p a from a target merge-path cost, applying the
     * same small-graph minimum-thread rule as
     * MergePathSchedule::build_with_cost(). The key includes both the
     * requested cost and the thread count it resolves to.
     */
    std::shared_ptr<const MergePathSchedule>
    get_or_build_with_cost(const CsrMatrix &a, index_t cost,
                           index_t min_threads = 0);

    /**
     * Write census of the schedule get_or_build_with_cost(a, cost,
     * min_threads) resolves to, cached in thread chunks. A later
     * repair_for_update() refreshes only the chunks intersecting the
     * repair's dirty thread range.
     */
    ScheduleCensus census_with_cost(const CsrMatrix &a, index_t cost,
                                    index_t min_threads = 0);

    /**
     * Migrate every schedule cached for @p old_a to @p new_a (rows
     * unchanged, row_ptr identical before @p first_dirty_row — the
     * contract of DeltaCsr::compact()). Each entry is repaired via
     * repair_schedule(), its plan version bumped, any cached census
     * refreshed over the dirty thread range only, and the entry
     * re-keyed the way a future lookup on @p new_a computes the key.
     * A repaired by-cost entry keeps its old thread count even if
     * threads_for_cost on the new matrix would differ slightly — the
     * schedule remains a valid partition for @p new_a, which is the
     * only contract lookups rely on. @return entries migrated.
     */
    size_t repair_for_update(const CsrMatrix &old_a,
                             const CsrMatrix &new_a,
                             index_t first_dirty_row);

    /**
     * Plan version of the cached entry a get_or_build_with_cost(a,
     * cost, min_threads) lookup would hit: 1 on first build, +1 per
     * repair_for_update migration. 0 when the entry is not cached.
     */
    uint64_t version_with_cost(const CsrMatrix &a, index_t cost,
                               index_t min_threads = 0) const;

    /**
     * Two-phase hybrid schedule (dense bands + merge-path tail, see
     * mps/core/hybrid.h) for @p a at merge-path cost @p cost, built on
     * first use with the env-resolved classification params and shared
     * read-only afterwards. Hybrid entries live beside the merge-path
     * ones: same fingerprint keying, same hit/miss counters, same LRU
     * cap (the total across both kinds is bounded), and
     * repair_for_update() migrates them through
     * repair_hybrid_schedule().
     */
    std::shared_ptr<const HybridSchedule>
    get_or_build_hybrid(const CsrMatrix &a, index_t cost,
                        index_t min_threads = 0);

    /**
     * Plan version of the cached hybrid entry a get_or_build_hybrid(a,
     * cost, min_threads) lookup would hit: 1 on first build, +1 per
     * repair_for_update migration. 0 when not cached.
     */
    uint64_t hybrid_version_with_cost(const CsrMatrix &a, index_t cost,
                                      index_t min_threads = 0) const;

    /** Number of distinct (graph, cost, min_threads) hybrid entries. */
    size_t hybrid_size() const;

    /**
     * Reorder plan (row permutation + permuted matrix + inverse
     * scatter map) for @p a of @p kind, built on first use and shared
     * read-only afterwards — serving pays the permutation cost once
     * per graph, not once per request. Publishes
     * locality.permutation.hits / .misses. kind must not be kNone.
     */
    std::shared_ptr<const ReorderPlan>
    get_or_build_reorder(const CsrMatrix &a, ReorderKind kind);

    /** Number of distinct (graph, threads, cost) entries held. */
    size_t size() const;

    /** Number of distinct (graph, reorder kind) plans held. */
    size_t reorder_size() const;

    /** Cache hits / misses since construction (or the last clear()). */
    int64_t hits() const;
    int64_t misses() const;

    /** Entries evicted by the LRU cap since construction / clear(). */
    int64_t evictions() const;

    /** LRU capacity (MPS_SCHEDULE_CACHE_MAX unless overridden). */
    size_t max_entries() const { return max_entries_; }
    void set_max_entries(size_t cap);

    /** Drop every entry and zero the hit/miss/eviction counters. */
    void clear();

  private:
    using Key = std::tuple<uint64_t, index_t, index_t>;
    using ReorderKey = std::pair<uint64_t, int>;

    struct Entry
    {
        std::shared_ptr<const MergePathSchedule> schedule;
        /** Creation style, so repair can re-key as a lookup would. */
        bool by_cost = false;
        index_t cost = 0; ///< requested cost (by_cost) else derived
        index_t min_threads = 0;
        uint64_t version = 1;
        uint64_t last_used = 0; ///< LRU tick
        /**
         * Cached write census in chunks of kCensusChunk threads; empty
         * until census_with_cost() asks. Chunk i covers threads
         * [i * kCensusChunk, min((i+1) * kCensusChunk, T)).
         */
        std::vector<ScheduleCensusPart> census_chunks;
    };

    struct HybridEntry
    {
        std::shared_ptr<const HybridSchedule> schedule;
        index_t cost = 0;
        index_t min_threads = 0;
        uint64_t version = 1;
        uint64_t last_used = 0; ///< LRU tick (shared with Entry)
    };

    static constexpr index_t kCensusChunk = 64;

    std::shared_ptr<const MergePathSchedule>
    lookup(const CsrMatrix &a, const Key &key, index_t num_threads,
           bool by_cost, index_t cost, index_t min_threads);

    Entry *find_locked(const Key &key);
    void evict_to_cap_locked();
    void fill_census_locked(Entry &e, const CsrMatrix &a);
    static ScheduleCensus fold_census(const Entry &e);

    mutable std::mutex mutex_;
    std::map<Key, Entry> entries_;
    std::map<Key, HybridEntry> hybrids_;
    std::map<ReorderKey, std::shared_ptr<const ReorderPlan>> reorders_;
    size_t max_entries_ = default_schedule_cache_max();
    uint64_t lru_tick_ = 0;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
    int64_t evictions_ = 0;
};

} // namespace mps

#endif // MPS_CORE_SCHEDULE_CACHE_H
