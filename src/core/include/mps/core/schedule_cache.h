/**
 * @file
 * Process-wide reuse of merge-path schedules.
 *
 * Building a MergePathSchedule costs one O(log) diagonal search per
 * thread — cheap, but a serving system pays it on every SpMM of every
 * layer of every request against the *same* adjacency matrix. The cache
 * keys schedules on (graph fingerprint, thread count, merge-path cost)
 * so each combination is built exactly once and shared read-only across
 * layers, epochs and concurrent requests (a schedule is immutable after
 * construction, so sharing needs no further synchronization).
 *
 * Consumers: the serve subsystem (one cache per Server, or an external
 * one shared across a benchmark sweep), GcnModel / GcnTrainer (via
 * ScheduleCache::global()), and MergePathSpmm::set_schedule_cache().
 */
#ifndef MPS_CORE_SCHEDULE_CACHE_H
#define MPS_CORE_SCHEDULE_CACHE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "mps/core/schedule.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/reorder.h"

namespace mps {

/**
 * Cheap structural fingerprint of a CSR matrix: mixes shape, nnz and a
 * bounded sample of row offsets / column indices. Two matrices with the
 * same fingerprint are treated as the same graph for schedule reuse;
 * schedules only depend on (row_ptr, nnz), so a rare collision between
 * same-shape matrices still yields a *valid* schedule, merely one built
 * for the colliding twin.
 */
uint64_t csr_fingerprint(const CsrMatrix &a);

/** Keyed store of immutable merge-path schedules. Thread-safe. */
class ScheduleCache
{
  public:
    ScheduleCache() = default;

    ScheduleCache(const ScheduleCache &) = delete;
    ScheduleCache &operator=(const ScheduleCache &) = delete;

    /** Process-wide cache (never destroyed; safe during shutdown). */
    static ScheduleCache &global();

    /**
     * Schedule for @p a at an explicit thread count; built on first use
     * (key cost = the items_per_thread the build derives).
     */
    std::shared_ptr<const MergePathSchedule>
    get_or_build(const CsrMatrix &a, index_t num_threads);

    /**
     * Schedule for @p a from a target merge-path cost, applying the
     * same small-graph minimum-thread rule as
     * MergePathSchedule::build_with_cost(). The key includes both the
     * requested cost and the thread count it resolves to.
     */
    std::shared_ptr<const MergePathSchedule>
    get_or_build_with_cost(const CsrMatrix &a, index_t cost,
                           index_t min_threads = 0);

    /**
     * Reorder plan (row permutation + permuted matrix + inverse
     * scatter map) for @p a of @p kind, built on first use and shared
     * read-only afterwards — serving pays the permutation cost once
     * per graph, not once per request. Publishes
     * locality.permutation.hits / .misses. kind must not be kNone.
     */
    std::shared_ptr<const ReorderPlan>
    get_or_build_reorder(const CsrMatrix &a, ReorderKind kind);

    /** Number of distinct (graph, threads, cost) entries held. */
    size_t size() const;

    /** Number of distinct (graph, reorder kind) plans held. */
    size_t reorder_size() const;

    /** Cache hits / misses since construction (or the last clear()). */
    int64_t hits() const;
    int64_t misses() const;

    /** Drop every entry and zero the hit/miss counters. */
    void clear();

  private:
    using Key = std::tuple<uint64_t, index_t, index_t>;
    using ReorderKey = std::pair<uint64_t, int>;

    std::shared_ptr<const MergePathSchedule>
    lookup(const CsrMatrix &a, const Key &key, index_t num_threads);

    mutable std::mutex mutex_;
    std::map<Key, std::shared_ptr<const MergePathSchedule>> entries_;
    std::map<ReorderKey, std::shared_ptr<const ReorderPlan>> reorders_;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
};

} // namespace mps

#endif // MPS_CORE_SCHEDULE_CACHE_H
