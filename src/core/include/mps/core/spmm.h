/**
 * @file
 * MergePath-SpMM kernels (Algorithm 2): C = A * B with A sparse (CSR)
 * and B, C dense row-major. Thread-local accumulation buffers hold the
 * partial-row sums; each split row receives exactly one atomic vector
 * commit per contributing thread, complete rows are plain stores.
 */
#ifndef MPS_CORE_SPMM_H
#define MPS_CORE_SPMM_H

#include "mps/core/schedule.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;

/**
 * Execute MergePath-SpMM single-threaded, processing the schedule's
 * thread shares one after another. Bit-identical to what the parallel
 * version computes modulo floating-point commit order; used as the
 * deterministic reference for the schedule logic.
 *
 * @param a     sparse input, rows x cols CSR
 * @param b     dense input, a.cols() x d
 * @param c     dense output, a.rows() x d (overwritten)
 * @param sched merge-path schedule built for @p a
 */
void mergepath_spmm_sequential(const CsrMatrix &a, const DenseMatrix &b,
                               DenseMatrix &c,
                               const MergePathSchedule &sched);

/**
 * Execute MergePath-SpMM on @p pool, one task per schedule thread.
 * Split-row commits use atomic floating-point adds; complete rows use
 * plain stores, exactly as in the paper.
 */
void mergepath_spmm_parallel(const CsrMatrix &a, const DenseMatrix &b,
                             DenseMatrix &c,
                             const MergePathSchedule &sched,
                             WorkStealPool &pool);

/**
 * Convenience: build a schedule with the tuned default cost for
 * b.cols() (no minimum-thread floor on the CPU; one merge-path thread
 * per pool worker times 16 for dynamic balance) and run in parallel.
 */
void mergepath_spmm(const CsrMatrix &a, const DenseMatrix &b,
                    DenseMatrix &c, WorkStealPool &pool);

/** Plain row-by-row sequential SpMM: the gold reference for tests. */
void reference_spmm(const CsrMatrix &a, const DenseMatrix &b,
                    DenseMatrix &c);

} // namespace mps

#endif // MPS_CORE_SPMM_H
