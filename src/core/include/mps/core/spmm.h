/**
 * @file
 * MergePath-SpMM kernels (Algorithm 2): C = A * B with A sparse (CSR)
 * and B, C dense row-major. Thread-local accumulation buffers hold the
 * partial-row sums; each split row receives exactly one atomic vector
 * commit per contributing thread, complete rows are plain stores.
 */
#ifndef MPS_CORE_SPMM_H
#define MPS_CORE_SPMM_H

#include "mps/core/locality.h"
#include "mps/core/schedule.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;
class DeltaCsr;

/**
 * Execute MergePath-SpMM single-threaded, processing the schedule's
 * thread shares one after another. Bit-identical to what the parallel
 * version computes modulo floating-point commit order; used as the
 * deterministic reference for the schedule logic.
 *
 * @param a     sparse input, rows x cols CSR
 * @param b     dense input, a.cols() x d
 * @param c     dense output, a.rows() x d (overwritten)
 * @param sched merge-path schedule built for @p a
 */
void mergepath_spmm_sequential(const CsrMatrix &a, const DenseMatrix &b,
                               DenseMatrix &c,
                               const MergePathSchedule &sched);

/**
 * Sequential execution with explicit locality options (column tiling,
 * prefetch distance, output-row scatter). Per output element the
 * accumulation order is independent of the tiling — the panel loop
 * partitions columns, never the non-zero stream — so tiling is
 * bit-identical to the untiled run on the same schedule whenever every
 * panel boundary lands on a SIMD block boundary (tile_d a multiple of
 * 16, which every auto-tuned width is). Arbitrary widths remain exact
 * up to the usual FMA-vs-mul/add rounding in sub-block tails.
 */
void mergepath_spmm_sequential(const CsrMatrix &a, const DenseMatrix &b,
                               DenseMatrix &c,
                               const MergePathSchedule &sched,
                               const SpmmLocality &loc);

/**
 * Execute MergePath-SpMM on @p pool, one task per schedule thread.
 * Split-row commits use atomic floating-point adds; complete rows use
 * plain stores, exactly as in the paper. Locality options resolve from
 * the process defaults (MPS_TILE_D / MPS_PREFETCH, auto-tuned from the
 * detected L2 size) with an identity row mapping.
 */
void mergepath_spmm_parallel(const CsrMatrix &a, const DenseMatrix &b,
                             DenseMatrix &c,
                             const MergePathSchedule &sched,
                             WorkStealPool &pool);

/**
 * Parallel execution with explicit locality options. When loc.tile_d
 * tiles b.cols(), the merge-path traversal runs once per column panel
 * against the same schedule (one diagonal search, d/tile_d sweeps) and
 * split rows still receive one atomic commit per contributing thread
 * per panel. loc.row_scatter routes output rows through a permutation
 * (reorder-aware execution; see mps/sparse/reorder.h).
 */
void mergepath_spmm_parallel(const CsrMatrix &a, const DenseMatrix &b,
                             DenseMatrix &c,
                             const MergePathSchedule &sched,
                             WorkStealPool &pool,
                             const SpmmLocality &loc);

/**
 * Convenience: build a schedule with the tuned default cost for
 * b.cols() (no minimum-thread floor on the CPU; one merge-path thread
 * per pool worker times 16 for dynamic balance) and run in parallel.
 */
void mergepath_spmm(const CsrMatrix &a, const DenseMatrix &b,
                    DenseMatrix &c, WorkStealPool &pool);

/** Plain row-by-row sequential SpMM: the gold reference for tests. */
void reference_spmm(const CsrMatrix &a, const DenseMatrix &b,
                    DenseMatrix &c);

/**
 * Overlay correction pass of the dynamic-graph datapath: for every
 * dirty row r of @p dcsr, add sum_k corr_k * B[col_k] onto C's row for
 * r (routed through loc.row_scatter like the base traversal). Run
 * AFTER a base-matrix SpMM into @p c; base + correction equals SpMM
 * over the materialized base ∪ overlay. Plain (non-atomic) adds — each
 * dirty row is owned by exactly one executor. Cost is O(delta · d),
 * independent of the base nnz: the hot gather loop never sees the
 * overlay.
 */
void delta_correction_pass(const DeltaCsr &dcsr, const DenseMatrix &b,
                           DenseMatrix &c, WorkStealPool &pool,
                           const SpmmLocality &loc);

/** Sequential correction pass (deterministic reference). */
void delta_correction_pass(const DeltaCsr &dcsr, const DenseMatrix &b,
                           DenseMatrix &c);

/**
 * C = (base ∪ overlay) * B: unmodified merge-path traversal of
 * dcsr.base() under @p sched (which was built for the BASE matrix and
 * stays valid across every DeltaCsr::apply()), then the correction
 * pass. Exact in real arithmetic; bitwise equal to the rebuilt-CSR
 * SpMM whenever row sums are order-independent.
 */
void dynamic_spmm_parallel(const DeltaCsr &dcsr, const DenseMatrix &b,
                           DenseMatrix &c, const MergePathSchedule &sched,
                           WorkStealPool &pool, const SpmmLocality &loc);

void dynamic_spmm_parallel(const DeltaCsr &dcsr, const DenseMatrix &b,
                           DenseMatrix &c, const MergePathSchedule &sched,
                           WorkStealPool &pool);

/** Sequential dynamic SpMM (deterministic reference for tests). */
void dynamic_spmm_sequential(const DeltaCsr &dcsr, const DenseMatrix &b,
                             DenseMatrix &c,
                             const MergePathSchedule &sched);

} // namespace mps

#endif // MPS_CORE_SPMM_H
