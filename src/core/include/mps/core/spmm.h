/**
 * @file
 * MergePath-SpMM kernels (Algorithm 2): C = A * B with A sparse (CSR)
 * and B, C dense row-major. Thread-local accumulation buffers hold the
 * partial-row sums; each split row receives exactly one atomic vector
 * commit per contributing thread, complete rows are plain stores.
 */
#ifndef MPS_CORE_SPMM_H
#define MPS_CORE_SPMM_H

#include "mps/core/locality.h"
#include "mps/core/schedule.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;
class DeltaCsr;

/**
 * Execute MergePath-SpMM single-threaded, processing the schedule's
 * thread shares one after another. Bit-identical to what the parallel
 * version computes modulo floating-point commit order; used as the
 * deterministic reference for the schedule logic.
 *
 * @param a     sparse input, rows x cols CSR
 * @param b     dense input, a.cols() x d
 * @param c     dense output, a.rows() x d (overwritten)
 * @param sched merge-path schedule built for @p a
 */
void mergepath_spmm_sequential(const CsrMatrix &a, const DenseMatrix &b,
                               DenseMatrix &c,
                               const MergePathSchedule &sched);

/**
 * Sequential execution with explicit locality options (column tiling,
 * prefetch distance, output-row scatter). Per output element the
 * accumulation order is independent of the tiling — the panel loop
 * partitions columns, never the non-zero stream — so tiling is
 * bit-identical to the untiled run on the same schedule whenever every
 * panel boundary lands on a SIMD block boundary (tile_d a multiple of
 * 16, which every auto-tuned width is). Arbitrary widths remain exact
 * up to the usual FMA-vs-mul/add rounding in sub-block tails.
 */
void mergepath_spmm_sequential(const CsrMatrix &a, const DenseMatrix &b,
                               DenseMatrix &c,
                               const MergePathSchedule &sched,
                               const SpmmLocality &loc);

/**
 * Execute MergePath-SpMM on @p pool, one task per schedule thread.
 * Split-row commits use atomic floating-point adds; complete rows use
 * plain stores, exactly as in the paper. Locality options resolve from
 * the process defaults (MPS_TILE_D / MPS_PREFETCH, auto-tuned from the
 * detected L2 size) with an identity row mapping.
 */
void mergepath_spmm_parallel(const CsrMatrix &a, const DenseMatrix &b,
                             DenseMatrix &c,
                             const MergePathSchedule &sched,
                             WorkStealPool &pool);

/**
 * Parallel execution with explicit locality options. When loc.tile_d
 * tiles b.cols(), the merge-path traversal runs once per column panel
 * against the same schedule (one diagonal search, d/tile_d sweeps) and
 * split rows still receive one atomic commit per contributing thread
 * per panel. loc.row_scatter routes output rows through a permutation
 * (reorder-aware execution; see mps/sparse/reorder.h).
 */
void mergepath_spmm_parallel(const CsrMatrix &a, const DenseMatrix &b,
                             DenseMatrix &c,
                             const MergePathSchedule &sched,
                             WorkStealPool &pool,
                             const SpmmLocality &loc);

/**
 * Convenience: build a schedule with the tuned default cost for
 * b.cols() (no minimum-thread floor on the CPU; one merge-path thread
 * per pool worker times 16 for dynamic balance) and run in parallel.
 */
void mergepath_spmm(const CsrMatrix &a, const DenseMatrix &b,
                    DenseMatrix &c, WorkStealPool &pool);

/** Plain row-by-row sequential SpMM: the gold reference for tests. */
void reference_spmm(const CsrMatrix &a, const DenseMatrix &b,
                    DenseMatrix &c);

/**
 * Per-row output epilogue of the fused pipeline: invoked on
 * @p crow = &C(out_row, c_col0) for a width-wide slice the moment the
 * row's value is final. @p row is the TRAVERSAL row id (before any
 * scatter) so structural epilogues can index side inputs. Folded into
 * the plain-commit path of the sweep — a plain commit means the thread
 * owns the entire row, so the value is final right there; atomically
 * committed (split) rows must receive the epilogue in a separate pass
 * after the sweep (FusedLayerPlan precomputes that shared-row list).
 */
using PanelEpilogue = void (*)(value_t *crow, index_t row, index_t c_col0,
                               index_t width, const void *ctx);

/**
 * The "caller supplies the next B-panel" entry point: ONE merge-path
 * sweep of @p sched computing
 *   C[:, c_col0 : c_col0+width) += A * B[:, b_col0 : b_col0+width)
 * where @p b is typically a freshly written panel buffer (b_col0 = 0)
 * rather than a full-width operand. The caller owns the panel loop,
 * zero-fills C's target columns beforehand (commits add), and reuses
 * one schedule across panels exactly like the tiled kernels. @p epi,
 * when non-null, runs on every plain commit (see PanelEpilogue for the
 * split-row caveat). @p count_census folds this sweep into the
 * spmm.mergepath.* write census — pass true on the first panel only.
 * Bit-identical per element to the unfused full-width sweep whenever
 * every panel boundary lands on a SIMD block boundary (width a
 * multiple of 16 for all but the last panel).
 */
void mergepath_spmm_panel(const CsrMatrix &a, const DenseMatrix &b,
                          index_t b_col0, DenseMatrix &c, index_t c_col0,
                          index_t width, const MergePathSchedule &sched,
                          WorkStealPool &pool, const SpmmLocality &loc,
                          PanelEpilogue epi, const void *epi_ctx,
                          bool count_census);

/** Sequential panel sweep (deterministic reference for tests). */
void mergepath_spmm_panel(const CsrMatrix &a, const DenseMatrix &b,
                          index_t b_col0, DenseMatrix &c, index_t c_col0,
                          index_t width, const MergePathSchedule &sched,
                          const SpmmLocality &loc, PanelEpilogue epi,
                          const void *epi_ctx, bool count_census);

/**
 * Overlay correction pass of the dynamic-graph datapath: for every
 * dirty row r of @p dcsr, add sum_k corr_k * B[col_k] onto C's row for
 * r (routed through loc.row_scatter like the base traversal). Run
 * AFTER a base-matrix SpMM into @p c; base + correction equals SpMM
 * over the materialized base ∪ overlay. Plain (non-atomic) adds — each
 * dirty row is owned by exactly one executor. Cost is O(delta · d),
 * independent of the base nnz: the hot gather loop never sees the
 * overlay.
 */
void delta_correction_pass(const DeltaCsr &dcsr, const DenseMatrix &b,
                           DenseMatrix &c, WorkStealPool &pool,
                           const SpmmLocality &loc);

/** Sequential correction pass (deterministic reference). */
void delta_correction_pass(const DeltaCsr &dcsr, const DenseMatrix &b,
                           DenseMatrix &c);

/**
 * Panel-wise correction pass for the fused pipeline: like
 * delta_correction_pass but restricted to output columns
 * [c_col0, c_col0+width), gathering from @p b columns
 * [b_col0, b_col0+width) — so it can run against the fused panel
 * buffer right after each mergepath_spmm_panel sweep, before the
 * buffer is overwritten. Must run BEFORE any activation of the panel
 * (SpMM -> correction -> activation, same order as the unfused path).
 */
void delta_correction_panel(const DeltaCsr &dcsr, const DenseMatrix &b,
                            index_t b_col0, DenseMatrix &c, index_t c_col0,
                            index_t width, WorkStealPool &pool,
                            const index_t *row_scatter);

/**
 * C = (base ∪ overlay) * B: unmodified merge-path traversal of
 * dcsr.base() under @p sched (which was built for the BASE matrix and
 * stays valid across every DeltaCsr::apply()), then the correction
 * pass. Exact in real arithmetic; bitwise equal to the rebuilt-CSR
 * SpMM whenever row sums are order-independent.
 */
void dynamic_spmm_parallel(const DeltaCsr &dcsr, const DenseMatrix &b,
                           DenseMatrix &c, const MergePathSchedule &sched,
                           WorkStealPool &pool, const SpmmLocality &loc);

void dynamic_spmm_parallel(const DeltaCsr &dcsr, const DenseMatrix &b,
                           DenseMatrix &c, const MergePathSchedule &sched,
                           WorkStealPool &pool);

/** Sequential dynamic SpMM (deterministic reference for tests). */
void dynamic_spmm_sequential(const DeltaCsr &dcsr, const DenseMatrix &b,
                             DenseMatrix &c,
                             const MergePathSchedule &sched);

} // namespace mps

#endif // MPS_CORE_SPMM_H
