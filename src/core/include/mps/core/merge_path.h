/**
 * @file
 * Merge-path 2-D diagonal search (Merrill & Garland, PPoPP'16).
 *
 * The merge path treats SpMM scheduling as merging two sorted lists:
 * the CSR row-end offsets (list A, one item per row) and the natural
 * numbers 0..nnz-1 (list B, one item per non-zero). Splitting the merge
 * at equally spaced diagonals gives every thread the same number of
 * row-transitions + non-zeros, which bounds per-thread work regardless
 * of how skewed the row lengths are ("evil rows").
 */
#ifndef MPS_CORE_MERGE_PATH_H
#define MPS_CORE_MERGE_PATH_H

#include <cstdint>

#include "mps/sparse/types.h"

namespace mps {

/**
 * A point on the merge path: @p row rows consumed, @p nz non-zeros
 * consumed (row + nz equals the diagonal the point lies on).
 */
struct MergeCoordinate
{
    index_t row;
    index_t nz;

    bool operator==(const MergeCoordinate &) const = default;
};

/**
 * Locate where the merge path crosses @p diagonal.
 *
 * @param diagonal     the diagonal to search, in [0, num_rows + nnz]
 * @param row_end_offsets pointer to row_ptr[1..num_rows] (CSR row ends)
 * @param num_rows     number of rows of the sparse matrix
 * @param nnz          number of non-zeros of the sparse matrix
 * @return the unique (row, nz) with row + nz == diagonal such that all
 *         row-end items before @p row merge-precede all nnz items from
 *         @p nz onward. O(log(min(diagonal, num_rows))) comparisons.
 */
MergeCoordinate merge_path_search(int64_t diagonal,
                                  const index_t *row_end_offsets,
                                  index_t num_rows, index_t nnz);

/**
 * merge_path_search with the row range of the binary search restricted
 * to [row_lo, row_hi]. The caller must guarantee the path's crossing of
 * @p diagonal lies inside that window — schedule repair knows the
 * crossing row is at least the last clean boundary's row, which shrinks
 * the search to the dirty suffix. Identical result to the unwindowed
 * search, in O(log(row_hi - row_lo)) comparisons.
 */
MergeCoordinate merge_path_search_window(int64_t diagonal,
                                         const index_t *row_end_offsets,
                                         index_t num_rows, index_t nnz,
                                         index_t row_lo, index_t row_hi);

} // namespace mps

#endif // MPS_CORE_MERGE_PATH_H
