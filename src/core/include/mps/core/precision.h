/**
 * @file
 * SIMD-speed quantization of a DenseMatrix B operand.
 *
 * DenseMatrix::quantize() is the sequential scalar reference; this is
 * the hot-path version used by the fused panel pipeline and the serve
 * executor — same bits (the encode microkernels are bit-identical to
 * the quant.h primitives), encoded with the RowKernels encode_* path
 * and optionally parallelized over rows on the WorkStealPool.
 */
#ifndef MPS_CORE_PRECISION_H
#define MPS_CORE_PRECISION_H

#include "mps/sparse/dense_matrix.h"
#include "mps/sparse/quant.h"

namespace mps {

class WorkStealPool;

/**
 * (Re)build @p m's shadow storage for @p mode from its fp32 rows.
 * When @p ncols >= 0 only columns [0, ncols) are encoded (and, for
 * int8, ranged) — panel sources pass the panel width so a narrower
 * final panel never folds stale trailing columns into its row params.
 * @p pool parallelizes over rows when non-null; kF32 just releases
 * the shadow storage.
 */
void quantize_dense(DenseMatrix &m, StorageMode mode,
                    WorkStealPool *pool = nullptr, index_t ncols = -1);

} // namespace mps

#endif // MPS_CORE_PRECISION_H
