/**
 * @file
 * Merge-path SpMV (Merrill & Garland, PPoPP'16): the original
 * algorithm MergePath-SpMM generalizes.
 *
 * y = A * x with x a vector. Each thread processes its merge-path
 * share; complete rows are written directly and the partial last row's
 * running total is saved as a (row, value) carry. A sequential fix-up
 * folds the carries — a single scalar add per thread, which is why the
 * serial phase is tolerable for SpMV but not for SpMM (where each
 * carry is a d-wide vector, see Section III of the paper).
 */
#ifndef MPS_CORE_SPMV_H
#define MPS_CORE_SPMV_H

#include <vector>

#include "mps/core/schedule.h"
#include "mps/sparse/csr_matrix.h"

namespace mps {

class WorkStealPool;

/** Sequential reference y = A * x. */
void reference_spmv(const CsrMatrix &a, const std::vector<value_t> &x,
                    std::vector<value_t> &y);

/**
 * Merge-path SpMV with the serial carry fix-up, parallel over @p pool.
 * @param a     square or rectangular CSR matrix
 * @param x     input vector of length a.cols()
 * @param y     output vector of length a.rows() (overwritten)
 * @param sched merge-path schedule built for @p a
 */
void mergepath_spmv(const CsrMatrix &a, const std::vector<value_t> &x,
                    std::vector<value_t> &y,
                    const MergePathSchedule &sched, WorkStealPool &pool);

} // namespace mps

#endif // MPS_CORE_SPMV_H
